package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximizationAsMinimization(t *testing.T) {
	// max 3x + 2y s.t. x+y ≤ 4, x+3y ≤ 6, x,y ≥ 0  → x=4, y=0, obj 12.
	p := NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{0, 1}, {1, 3}}, LE, 6)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Obj, -12) {
		t.Errorf("obj = %v, want -12", s.Obj)
	}
	if !approx(s.X[0], 4) || !approx(s.X[1], 0) {
		t.Errorf("x = %v, want [4 0]", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 3, x ≥ 1, y ≥ 0 → x=3, y=0, obj 3.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 3)
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Obj, 3) || !approx(s.X[0], 3) || !approx(s.X[1], 0) {
		t.Errorf("obj=%v x=%v", s.Obj, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{0, 1}}, GE, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	if s := Solve(p); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 3, 1)
	if s := Solve(p); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, -1) // maximize x with no upper bound
	if s := Solve(p); s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestVariableBounds(t *testing.T) {
	// min -x - y with 1 ≤ x ≤ 2, 0 ≤ y ≤ 3 → x=2, y=3.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.SetBounds(0, 1, 2)
	p.SetBounds(1, 0, 3)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.X[0], 2) || !approx(s.X[1], 3) {
		t.Errorf("x = %v, want [2 3]", s.X)
	}
}

func TestNonZeroLowerBoundShift(t *testing.T) {
	// min x s.t. x ≥ -5 with bounds [-10, 10] → x = -10?  No: lower bound is
	// -10, constraint x ≥ -5 binds → x = -5.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.SetBounds(0, -10, 10)
	p.AddConstraint([]Term{{0, 1}}, GE, -5)
	s := Solve(p)
	if s.Status != Optimal || !approx(s.X[0], -5) {
		t.Errorf("status=%v x=%v, want x=-5", s.Status, s.X)
	}
}

func TestDegenerateCycleTermination(t *testing.T) {
	// Beale's classic cycling example; Bland's rule must terminate.
	// min -0.75x1 + 150x2 - 0.02x3 + 6x4
	// s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 ≤ 0
	//      0.5x1 - 90x2 - 0.02x3 + 3x4 ≤ 0
	//      x3 ≤ 1
	p := NewProblem(4)
	p.SetObjective(0, -0.75)
	p.SetObjective(1, 150)
	p.SetObjective(2, -0.02)
	p.SetObjective(3, 6)
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !approx(s.Obj, -0.05) {
		t.Errorf("obj = %v, want -0.05", s.Obj)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x + y = 2 stated twice plus its double: redundant rows must not break
	// phase 1.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 4)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.X[0], 0) || !approx(s.X[1], 2) {
		t.Errorf("x = %v, want [0 2]", s.X)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x ≤ -3  ⇔  x ≥ 3.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	s := Solve(p)
	if s.Status != Optimal || !approx(s.X[0], 3) {
		t.Errorf("status=%v x=%v, want x=3", s.Status, s.X)
	}
}

func TestDuplicateTermsMerged(t *testing.T) {
	// x + x ≤ 4 → x ≤ 2.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]Term{{0, 1}, {0, 1}}, LE, 4)
	s := Solve(p)
	if s.Status != Optimal || !approx(s.X[0], 2) {
		t.Errorf("status=%v x=%v, want x=2", s.Status, s.X)
	}
}

func TestAssignmentLPIntegrality(t *testing.T) {
	// The LP relaxation of the assignment problem has integral optima equal
	// to the best permutation. Cross-check against brute force for random
	// 4×4 cost matrices.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		const n = 4
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(50))
			}
		}
		p := NewProblem(n * n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p.SetObjective(i*n+j, cost[i][j])
			}
		}
		for i := 0; i < n; i++ {
			var row, col []Term
			for j := 0; j < n; j++ {
				row = append(row, Term{i*n + j, 1})
				col = append(col, Term{j*n + i, 1})
			}
			p.AddConstraint(row, EQ, 1)
			p.AddConstraint(col, EQ, 1)
		}
		s := Solve(p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status = %v", trial, s.Status)
		}
		want := bruteAssignment(cost)
		if !approx(s.Obj, want) {
			t.Errorf("trial %d: LP obj = %v, brute force = %v", trial, s.Obj, want)
		}
	}
}

func bruteAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var c float64
			for i, j := range perm {
				c += cost[i][j]
			}
			if c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestRandomFeasibleProblemsSolutionIsFeasible(t *testing.T) {
	// Property: on random LPs built to be feasible (constraints a·x ≤ a·x0
	// for a known point x0), the solver returns a feasible point with
	// objective ≤ that of x0.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nv := 2 + rng.Intn(5)
		nr := 1 + rng.Intn(6)
		x0 := make([]float64, nv)
		for i := range x0 {
			x0[i] = float64(rng.Intn(10))
		}
		p := NewProblem(nv)
		var obj0 float64
		for v := 0; v < nv; v++ {
			c := float64(rng.Intn(11) - 5)
			p.SetObjective(v, c)
			p.SetBounds(v, 0, 20)
			obj0 += c * x0[v]
		}
		type rowRec struct {
			a   []float64
			rhs float64
		}
		var recs []rowRec
		for r := 0; r < nr; r++ {
			a := make([]float64, nv)
			var lhs float64
			var terms []Term
			for v := 0; v < nv; v++ {
				a[v] = float64(rng.Intn(7) - 3)
				lhs += a[v] * x0[v]
				if a[v] != 0 {
					terms = append(terms, Term{v, a[v]})
				}
			}
			rhs := lhs + float64(rng.Intn(5))
			p.AddConstraint(terms, LE, rhs)
			recs = append(recs, rowRec{a, rhs})
		}
		s := Solve(p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status = %v (problem is feasible by construction)", trial, s.Status)
		}
		if s.Obj > obj0+1e-6 {
			t.Errorf("trial %d: obj %v worse than known point %v", trial, s.Obj, obj0)
		}
		for ri, rec := range recs {
			var lhs float64
			for v := range rec.a {
				lhs += rec.a[v] * s.X[v]
			}
			if lhs > rec.rhs+1e-6 {
				t.Errorf("trial %d: row %d violated: %v > %v", trial, ri, lhs, rec.rhs)
			}
		}
		for v := 0; v < nv; v++ {
			if s.X[v] < -1e-6 || s.X[v] > 20+1e-6 {
				t.Errorf("trial %d: x[%d]=%v out of bounds", trial, v, s.X[v])
			}
		}
	}
}

func TestClone(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetBounds(1, 0, 5)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 3)
	q := p.Clone()
	q.SetObjective(0, -1)
	q.SetBounds(1, 0, 1)
	q.AddConstraint([]Term{{0, 1}}, GE, 1)
	if p.Objective(0) != 1 {
		t.Error("clone mutated original objective")
	}
	if _, hi := p.Bounds(1); hi != 5 {
		t.Error("clone mutated original bounds")
	}
	if p.NumRows() != 1 || q.NumRows() != 2 {
		t.Errorf("rows: p=%d q=%d", p.NumRows(), q.NumRows())
	}
}

func TestZeroObjective(t *testing.T) {
	// Pure feasibility problem.
	p := NewProblem(2)
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, EQ, 4)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if got := s.X[0] + 2*s.X[1]; !approx(got, 4) {
		t.Errorf("constraint violated: %v", got)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(0)
	s := Solve(p)
	if s.Status != Optimal || !approx(s.Obj, 0) {
		t.Errorf("empty problem: status=%v obj=%v", s.Status, s.Obj)
	}
}

func TestStringsAndAccessors(t *testing.T) {
	for s, want := range map[Sense]string{LE: "<=", GE: ">=", EQ: "="} {
		if s.String() != want {
			t.Errorf("Sense %d = %q, want %q", s, s.String(), want)
		}
	}
	if Sense(9).String() != "?" {
		t.Error("unknown sense should render ?")
	}
	for s, want := range map[Status]string{Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded", IterLimit: "iteration-limit"} {
		if s.String() != want {
			t.Errorf("Status %d = %q, want %q", s, s.String(), want)
		}
	}
	if Status(9).String() != "?" {
		t.Error("unknown status should render ?")
	}
	p := NewProblem(3)
	if p.NumVars() != 3 {
		t.Errorf("NumVars = %d", p.NumVars())
	}
	p.SetBounds(1, -2, 7)
	if lo, hi := p.Bounds(1); lo != -2 || hi != 7 {
		t.Errorf("Bounds = %v, %v", lo, hi)
	}
	if p.Objective(0) != 0 {
		t.Error("default objective should be zero")
	}
}

func TestAddConstraintRejectsBadVar(t *testing.T) {
	p := NewProblem(1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range variable accepted")
		}
	}()
	p.AddConstraint([]Term{{5, 1}}, LE, 1)
}

// TestSolveStopAborts installs an abort hook that trips after a few
// polls and requires the simplex to give up with Aborted instead of
// pivoting to optimality: a caller's deadline must be able to interrupt
// a single long relaxation, not just wait it out.
func TestSolveStopAborts(t *testing.T) {
	// Large enough that phase 1 + phase 2 run well past the first few
	// stop polls (stride 32).
	const n = 60
	p := NewProblem(n)
	for v := 0; v < n; v++ {
		p.SetObjective(v, -1)
		p.SetBounds(v, 0, 10)
	}
	for v := 0; v < n-1; v++ {
		p.AddConstraint([]Term{{v, 1}, {v + 1, 1}}, LE, 5)
	}

	if sol := Solve(p); sol.Status != Optimal {
		t.Fatalf("without stop: status = %v, want optimal", sol.Status)
	}

	p.SetStop(func() bool { return true })
	if sol := Solve(p); sol.Status != Aborted {
		t.Fatalf("with tripped stop: status = %v, want aborted", sol.Status)
	}

	q := p.Clone() // the hook must survive Clone: milp solves per-node clones
	if sol := Solve(q); sol.Status != Aborted {
		t.Fatalf("cloned problem with tripped stop: status = %v, want aborted", sol.Status)
	}
}
