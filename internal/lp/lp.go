// Package lp implements a small, self-contained linear-programming solver:
// a dense two-phase primal simplex with Bland's anti-cycling rule.
//
// It is the foundation of the pure-Go MILP solver in internal/milp, which
// substitutes for the Gurobi optimizer used by the paper. The problems the
// synthesis models generate are small (hundreds of variables and rows), so a
// dense tableau is simple, robust and fast enough.
//
// Problems are stated as
//
//	minimize    c·x
//	subject to  a_k·x (≤ | = | ≥) b_k        for each row k
//	            lower_j ≤ x_j ≤ upper_j      for each variable j
//
// Lower bounds must be finite (the synthesis models use 0); upper bounds may
// be +Inf.
package lp

import (
	"fmt"
	"math"
)

// Sense is the relational operator of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x ≤ b
	GE              // a·x ≥ b
	EQ              // a·x = b
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is one linear row a·x (≤|=|≥) b.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is a linear program. The zero value is unusable; use NewProblem.
type Problem struct {
	numVars int
	obj     []float64
	lower   []float64
	upper   []float64
	rows    []Constraint
	stop    func() bool
}

// NewProblem returns an empty problem with numVars variables, each with
// bounds [0, +Inf) and zero objective coefficient.
func NewProblem(numVars int) *Problem {
	p := &Problem{
		numVars: numVars,
		obj:     make([]float64, numVars),
		lower:   make([]float64, numVars),
		upper:   make([]float64, numVars),
	}
	for i := range p.upper {
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective sets the coefficient of variable v in the minimized objective.
func (p *Problem) SetObjective(v int, c float64) { p.obj[v] = c }

// Objective returns the objective coefficient of variable v.
func (p *Problem) Objective(v int) float64 { return p.obj[v] }

// SetBounds sets the bounds of variable v. The lower bound must be finite.
func (p *Problem) SetBounds(v int, lo, hi float64) {
	p.lower[v] = lo
	p.upper[v] = hi
}

// Bounds returns the bounds of variable v.
func (p *Problem) Bounds(v int) (lo, hi float64) { return p.lower[v], p.upper[v] }

// SetStop installs an abort poll: the simplex checks it periodically
// between pivots and returns Status Aborted when it reports true. A
// single relaxation of a large model can pivot for minutes, so a caller
// enforcing a deadline or a context cannot rely on checking only
// between its own solves.
func (p *Problem) SetStop(stop func() bool) { p.stop = stop }

// AddConstraint appends the row a·x (sense) rhs and returns its index.
// Duplicate variables within terms are summed.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) int {
	merged := make(map[int]float64, len(terms))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.numVars {
			panic(fmt.Sprintf("lp: variable %d out of range", t.Var))
		}
		merged[t.Var] += t.Coef
	}
	row := Constraint{Sense: sense, RHS: rhs}
	for v := 0; v < p.numVars; v++ {
		if c, ok := merged[v]; ok && c != 0 {
			row.Terms = append(row.Terms, Term{v, c})
		}
	}
	p.rows = append(p.rows, row)
	return len(p.rows) - 1
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		numVars: p.numVars,
		obj:     append([]float64(nil), p.obj...),
		lower:   append([]float64(nil), p.lower...),
		upper:   append([]float64(nil), p.upper...),
		rows:    make([]Constraint, len(p.rows)),
		stop:    p.stop,
	}
	for i, r := range p.rows {
		q.rows[i] = Constraint{
			Terms: append([]Term(nil), r.Terms...),
			Sense: r.Sense,
			RHS:   r.RHS,
		}
	}
	return q
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
	Aborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case Aborted:
		return "aborted"
	}
	return "?"
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// X holds the optimal values of the structural variables (Optimal only).
	X []float64
	// Obj is the optimal objective value (Optimal only).
	Obj float64
}

const tol = 1e-9

// Solve solves the problem with the two-phase primal simplex method.
func Solve(p *Problem) Solution {
	for v := 0; v < p.numVars; v++ {
		if math.IsInf(p.lower[v], 0) || math.IsNaN(p.lower[v]) {
			panic(fmt.Sprintf("lp: variable %d has non-finite lower bound", v))
		}
		if p.upper[v] < p.lower[v]-tol {
			return Solution{Status: Infeasible}
		}
	}

	// Shift x_j = y_j + lower_j so that y ≥ 0; finite upper bounds become
	// extra ≤ rows.
	type denseRow struct {
		coefs []float64
		sense Sense
		rhs   float64
	}
	var rows []denseRow
	for _, r := range p.rows {
		dr := denseRow{coefs: make([]float64, p.numVars), sense: r.Sense, rhs: r.RHS}
		for _, t := range r.Terms {
			dr.coefs[t.Var] += t.Coef
			dr.rhs -= t.Coef * p.lower[t.Var]
		}
		rows = append(rows, dr)
	}
	for v := 0; v < p.numVars; v++ {
		if !math.IsInf(p.upper[v], 1) {
			dr := denseRow{coefs: make([]float64, p.numVars), sense: LE, rhs: p.upper[v] - p.lower[v]}
			dr.coefs[v] = 1
			rows = append(rows, dr)
		}
	}

	// Normalize to RHS ≥ 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coefs {
				rows[i].coefs[j] = -rows[i].coefs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}

	// Column layout: structural | slack/surplus | artificial.
	m := len(rows)
	nStruct := p.numVars
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
		if r.sense != LE {
			nArt++
		}
	}
	n := nStruct + nSlack + nArt
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := nStruct
	artCol := nStruct + nSlack
	artStart := artCol
	for i, r := range rows {
		tab[i] = make([]float64, n+1)
		copy(tab[i], r.coefs)
		tab[i][n] = r.rhs
		switch r.sense {
		case LE:
			tab[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			tab[i][slackCol] = -1
			slackCol++
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	s := &simplex{tab: tab, basis: basis, n: n, m: m, stop: p.stop}

	if nArt > 0 {
		// Phase 1: minimize the sum of artificials.
		cost := make([]float64, n)
		for j := artStart; j < n; j++ {
			cost[j] = 1
		}
		st := s.run(cost, artStart)
		if st != Optimal {
			return Solution{Status: st}
		}
		if s.objValue(cost) > 1e-7 {
			return Solution{Status: Infeasible}
		}
		if !s.expelArtificials(artStart) {
			return Solution{Status: Infeasible}
		}
		// Drop artificial columns.
		s.n = artStart
		for i := range s.tab {
			s.tab[i][artStart] = s.tab[i][n] // move RHS next to kept cols
			s.tab[i] = s.tab[i][:artStart+1]
		}
	}

	// Phase 2.
	cost := make([]float64, s.n)
	copy(cost, p.obj)
	st := s.run(cost, s.n)
	if st != Optimal {
		return Solution{Status: st}
	}

	x := make([]float64, p.numVars)
	copy(x, p.lower)
	for i, b := range s.basis {
		if b < p.numVars {
			x[b] += s.tab[i][s.n]
		}
	}
	var obj float64
	for v, c := range p.obj {
		obj += c * x[v]
	}
	return Solution{Status: Optimal, X: x, Obj: obj}
}

// simplex is a dense tableau with an explicit basis.
type simplex struct {
	tab   [][]float64 // m rows × (n+1) columns; column n is the RHS
	basis []int
	n, m  int
	stop  func() bool
}

// objValue returns cost·x_B for the current basic solution.
func (s *simplex) objValue(cost []float64) float64 {
	var v float64
	for i, b := range s.basis {
		if b < len(cost) {
			v += cost[b] * s.tab[i][s.n]
		}
	}
	return v
}

// run performs primal simplex iterations minimizing cost·x. Columns with
// index ≥ banned are never chosen to enter the basis (used to keep phase-2
// from re-entering artificials). It returns Optimal, Unbounded or IterLimit.
func (s *simplex) run(cost []float64, banned int) Status {
	// Reduced costs: r_j = cost_j - cost_B · B⁻¹A_j, computed incrementally
	// by keeping a working cost row.
	red := make([]float64, s.n)
	copy(red, cost[:s.n])
	for i, b := range s.basis {
		cb := 0.0
		if b < len(cost) {
			cb = cost[b]
		}
		if cb != 0 {
			for j := 0; j < s.n; j++ {
				red[j] -= cb * s.tab[i][j]
			}
		}
	}

	maxIter := 200 * (s.m + s.n + 10)
	for iter := 0; iter < maxIter; iter++ {
		// Each pivot is O(m·n), so on large models even the bounded
		// iteration count can run for minutes — poll the abort hook at a
		// stride that keeps the overhead invisible.
		if s.stop != nil && iter%32 == 0 && s.stop() {
			return Aborted
		}
		// Entering column: Bland's rule (smallest index with negative
		// reduced cost) — guarantees termination.
		enter := -1
		for j := 0; j < banned && j < s.n; j++ {
			if red[j] < -tol {
				enter = j
				break
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Ratio test with Bland tie-break on the leaving basic variable.
		leave := -1
		var bestRatio float64
		for i := 0; i < s.m; i++ {
			a := s.tab[i][enter]
			if a > tol {
				ratio := s.tab[i][s.n] / a
				if leave == -1 || ratio < bestRatio-tol ||
					(ratio < bestRatio+tol && s.basis[i] < s.basis[leave]) {
					leave = i
					bestRatio = ratio
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		s.pivot(leave, enter, red)
	}
	return IterLimit
}

// pivot makes column enter basic in row leave, updating the reduced costs.
func (s *simplex) pivot(leave, enter int, red []float64) {
	pr := s.tab[leave]
	pv := pr[enter]
	inv := 1 / pv
	for j := 0; j <= s.n; j++ {
		pr[j] *= inv
	}
	pr[enter] = 1 // exact
	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		f := s.tab[i][enter]
		if f == 0 {
			continue
		}
		row := s.tab[i]
		for j := 0; j <= s.n; j++ {
			row[j] -= f * pr[j]
		}
		row[enter] = 0 // exact
	}
	if red != nil {
		f := red[enter]
		if f != 0 {
			for j := 0; j < s.n; j++ {
				red[j] -= f * pr[j]
			}
			red[enter] = 0
		}
	}
	s.basis[leave] = enter
}

// expelArtificials pivots any artificial variables (columns ≥ artStart) out
// of the basis at the end of phase 1. Rows where that is impossible are
// redundant and are zeroed. Returns false only on internal inconsistency.
func (s *simplex) expelArtificials(artStart int) bool {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < artStart {
			continue
		}
		// The artificial is basic at value ~0. Pivot on any eligible column.
		pivoted := false
		for j := 0; j < artStart; j++ {
			if math.Abs(s.tab[i][j]) > 1e-7 {
				s.pivot(i, j, nil)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: clear it so it never constrains anything.
			for j := 0; j <= s.n; j++ {
				s.tab[i][j] = 0
			}
			// Keep the artificial in the basis of a zero row; harmless, but
			// mark the basis entry so value extraction ignores it.
			s.basis[i] = artStart // first artificial column; value 0
		}
	}
	return true
}
