// The cluster determinism acceptance test, in an external test package:
// it drives the full stack (exp campaign -> client -> daemon handler ->
// cluster middleware), and the client package itself imports cluster, so
// an in-package test would be an import cycle.
//
// The property under test is the tentpole invariant: a fixed campaign
// produces a byte-identical deterministic report no matter the topology
// it ran on — one node, three nodes behind a single entry point, or
// three nodes with one killed mid-run. Sharding decides only WHERE a
// plan is solved, never WHAT the plan is.
package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/client"
	"switchsynth/internal/cluster"
	"switchsynth/internal/contam"
	"switchsynth/internal/exp"
	"switchsynth/internal/planio"
	"switchsynth/internal/report"
	"switchsynth/internal/service"
	"switchsynth/internal/spec"

	"net"
	"net/http/httptest"
)

// detNode is one in-process synthd, wired the way cmd/synthd wires it.
// This mirrors the in-package harness (cluster_test.go); it is
// duplicated here because the external package cannot reach it.
type detNode struct {
	id  string
	url string
	eng *service.Engine
	cl  *cluster.Cluster
	srv *httptest.Server
}

// bootNodes starts n nodes; with repl set, each engine's OnPlanStored
// hook feeds the cluster's replication queue and the push workers run
// (the full cmd/synthd write-path wiring).
func bootNodes(t *testing.T, n int, repl bool) []*detNode {
	t.Helper()
	return bootNodesWire(t, n, repl, "")
}

// bootNodesWire is bootNodes with an explicit plan wire format for
// every engine ("" uses the engine default).
func bootNodesWire(t *testing.T, n int, repl bool, wireFormat string) []*detNode {
	t.Helper()
	return bootNodesCfg(t, n, repl, func(scfg *service.Config) { scfg.WireFormat = wireFormat })
}

// bootNodesCfg is the general form: mut adjusts each node's service
// config before the engine starts.
func bootNodesCfg(t *testing.T, n int, repl bool, mut func(*service.Config)) []*detNode {
	t.Helper()
	peers := make([]cluster.Node, n)
	listeners := make([]net.Listener, n)
	for i := range peers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		peers[i] = cluster.Node{ID: fmt.Sprintf("n%d", i), URL: "http://" + l.Addr().String()}
	}
	nodes := make([]*detNode, n)
	for i := range nodes {
		node := &detNode{id: peers[i].ID, url: peers[i].URL}
		ccfg := cluster.Config{
			SelfID:        node.id,
			Peers:         peers,
			SyncInterval:  -1, // no anti-entropy loop: the campaign is the traffic
			ProbeInterval: time.Hour,
			LocalKeys:     func() []string { return node.eng.PlanKeys() },
			LocalImport:   func(key string, data []byte) error { return node.eng.ImportPlan(key, data) },
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", node.id, err)
		}
		scfg := service.Config{
			Workers:          2,
			PeerFill:         cl.FetchPlan,
			DefaultTimeLimit: 10 * time.Second,
		}
		if mut != nil {
			mut(&scfg)
		}
		if repl {
			scfg.OnPlanStored = cl.ReplicatePlan
		}
		eng := service.New(scfg)
		node.eng, node.cl = eng, cl
		h := cl.Middleware(service.NewHandlerWith(eng, service.HandlerConfig{
			ClusterStatus: func() any { return cl.Status() },
		}))
		srv := httptest.NewUnstartedServer(h)
		srv.Listener.Close()
		srv.Listener = listeners[i]
		srv.Start()
		node.srv = srv
		if repl {
			cl.Start()
		}
		t.Cleanup(cl.Stop) // safe without Start; also hangs up plan streams
		t.Cleanup(srv.Close)
		t.Cleanup(eng.CloseNow)
		nodes[i] = node
	}
	return nodes
}

// TestCampaignDeterministicAcrossTopologies is the acceptance gate from
// the cluster design: the same seeded campaign, byte-identical on one
// node, on three nodes entered through a non-owner, and on three nodes
// with one killed mid-run.
func TestCampaignDeterministicAcrossTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node campaign in -short mode")
	}
	const count, seed = 24, 42
	run := func(url string) (table, stats string) {
		res := exp.RunCampaign(exp.Config{
			DaemonURL: url,
			Workers:   4,
			// Generous per-case budget: a timeout row would be real
			// nondeterminism in this test, not a solver property.
			TimeLimit: 10 * time.Second,
		}, count, seed)
		return report.CampaignTable(res.Rows), res.Stats.DeterministicString()
	}

	single := bootNodes(t, 1, false)
	wantTable, wantStats := run(single[0].url)

	three := bootNodes(t, 3, false)
	gotTable, gotStats := run(three[0].url)
	if gotTable != wantTable {
		t.Errorf("3-node campaign table differs from single-node:\n--- single\n%s\n--- three\n%s", wantTable, gotTable)
	}
	if gotStats != wantStats {
		t.Errorf("3-node campaign stats differ: %q vs %q", gotStats, wantStats)
	}
	// Sanity: the entry node actually exercised the sharded path rather
	// than serving everything locally by accident.
	st := three[0].cl.Status()
	if st.Forwards == 0 {
		t.Error("3-node campaign forwarded nothing; sharding untested")
	}

	killed := bootNodes(t, 3, false)
	timer := time.AfterFunc(75*time.Millisecond, killed[2].srv.Close)
	defer timer.Stop()
	kTable, kStats := run(killed[0].url)
	if kTable != wantTable {
		t.Errorf("kill-one campaign table differs from single-node:\n--- single\n%s\n--- killed\n%s", wantTable, kTable)
	}
	if kStats != wantStats {
		t.Errorf("kill-one campaign stats differ: %q vs %q", kStats, wantStats)
	}
}

// TestCampaignBinaryClusterMatchesJSONSingleNode is the wire-format
// determinism gate: the encoding a cluster moves plans around in is
// invisible in the results. A replicating three-node cluster on the
// binary frame format must produce the byte-identical campaign report
// of a single node pinned to the JSON wire format.
func TestCampaignBinaryClusterMatchesJSONSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node campaign in -short mode")
	}
	const count, seed = 24, 42
	run := func(url string) (table, stats string) {
		res := exp.RunCampaign(exp.Config{
			DaemonURL: url,
			Workers:   4,
			TimeLimit: 10 * time.Second,
		}, count, seed)
		return report.CampaignTable(res.Rows), res.Stats.DeterministicString()
	}

	single := bootNodesWire(t, 1, false, service.WireFormatJSON)
	wantTable, wantStats := run(single[0].url)

	three := bootNodesWire(t, 3, true, service.WireFormatBinary)
	gotTable, gotStats := run(three[0].url)
	if gotTable != wantTable {
		t.Errorf("binary 3-node campaign table differs from JSON single-node:\n--- json single\n%s\n--- binary three\n%s", wantTable, gotTable)
	}
	if gotStats != wantStats {
		t.Errorf("binary 3-node campaign stats differ: %q vs %q", gotStats, wantStats)
	}
	// Sanity: the binary cluster actually moved frames around.
	forwards := int64(0)
	for _, n := range three {
		st := n.cl.Status()
		forwards += st.Forwards
		if st.PushTranscodes != 0 {
			t.Errorf("%s transcoded %d pushes between same-version nodes", n.id, st.PushTranscodes)
		}
	}
	if forwards == 0 {
		t.Error("binary campaign forwarded nothing; sharding untested")
	}
}

// TestFPVAPlanClusterPortfolioMatchesSingleNode is the FPVA acceptance
// gate: an FPVA grid spec served through a replicating three-node
// cluster with portfolio racing returns plan bytes identical to a cold
// single-node solve without racing — and every node returns the same
// bytes, whether it owns the key, forwards to the owner, or peer-fills.
func TestFPVAPlanClusterPortfolioMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node solve in -short mode")
	}
	sp := &switchsynth.Spec{
		Name:     "fpva-cluster",
		Topology: spec.TopologyFPVA,
		GridRows: 3,
		GridCols: 3,
		Modules:  []string{"in1", "in2", "out1", "out2", "out3"},
		Flows: []spec.Flow{
			{From: "in1", To: "out1"},
			{From: "in2", To: "out2"},
			{From: "in1", To: "out3"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
	opts := service.RequestOptions{TimeLimitMS: (10 * time.Second).Milliseconds()}
	solve := func(url string) []byte {
		t.Helper()
		cl, err := client.New(client.Config{BaseURL: url})
		if err != nil {
			t.Fatalf("client.New: %v", err)
		}
		resp, err := cl.Synthesize(context.Background(), sp, opts)
		if err != nil {
			t.Fatalf("synthesize via %s: %v", url, err)
		}
		if !resp.Proven {
			t.Fatalf("FPVA solve via %s returned an unproven plan", url)
		}
		plan, err := planio.Decode(resp.Plan)
		if err != nil {
			t.Fatalf("decode plan from %s: %v", url, err)
		}
		if err := contam.Verify(plan); err != nil {
			t.Fatalf("plan from %s fails verification: %v", url, err)
		}
		if !plan.Spec.IsFPVA() {
			t.Fatalf("plan from %s lost the FPVA topology", url)
		}
		return resp.Plan
	}

	single := bootNodes(t, 1, false)
	want := solve(single[0].url)

	three := bootNodesCfg(t, 3, true, func(scfg *service.Config) { scfg.Portfolio = true })
	for _, n := range three {
		if got := solve(n.url); !bytes.Equal(got, want) {
			t.Errorf("portfolio plan from %s differs from cold single-node solve:\n--- single\n%s\n--- %s\n%s",
				n.id, want, n.id, got)
		}
	}
	// Sanity: only the owner serves the key locally, so querying all
	// three nodes must have exercised the forwarding path.
	forwards := int64(0)
	for _, n := range three {
		forwards += n.cl.Status().Forwards
	}
	if forwards == 0 {
		t.Error("FPVA solve forwarded nothing; sharding untested")
	}
}
