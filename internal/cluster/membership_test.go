package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/service"
)

func TestMembershipFlapDamping(t *testing.T) {
	m := newMembership("self", []Node{{ID: "self"}, {ID: "p"}}, 2, 3)

	if !m.alive("self") {
		t.Fatal("self must always be alive")
	}
	if m.alive("stranger") {
		t.Fatal("unknown peers must not be alive")
	}
	if !m.alive("p") {
		t.Fatal("peers start optimistically up")
	}

	// Two failures are below DownAfter=3: still up.
	m.observe("p", false, "conn refused")
	m.observe("p", false, "conn refused")
	if !m.alive("p") {
		t.Fatal("peer went down after 2/3 failures — damping broken")
	}
	// A success resets the failure streak entirely.
	m.observe("p", true, "")
	m.observe("p", false, "x")
	m.observe("p", false, "x")
	if !m.alive("p") {
		t.Fatal("failure streak survived an intervening success")
	}
	// Third consecutive failure flips the state.
	if flipped := m.observe("p", false, "x"); !flipped {
		t.Fatal("3rd consecutive failure should flip to down")
	}
	if m.alive("p") {
		t.Fatal("peer still alive after DownAfter failures")
	}

	// One success is below UpAfter=2: still down.
	m.observe("p", true, "")
	if m.alive("p") {
		t.Fatal("peer revived after 1/2 successes — damping broken")
	}
	if flipped := m.observe("p", true, ""); !flipped {
		t.Fatal("2nd consecutive success should flip to up")
	}
	if !m.alive("p") {
		t.Fatal("peer not alive after UpAfter successes")
	}

	snap := m.snapshot()
	ps, ok := snap["p"]
	if !ok {
		t.Fatal("snapshot missing peer p")
	}
	if ps.Flaps != 2 {
		t.Errorf("flaps = %d, want 2 (one down, one up)", ps.Flaps)
	}
	if ps.Probes != 8 {
		t.Errorf("probes = %d, want 8", ps.Probes)
	}
	if _, ok := snap["self"]; ok {
		t.Error("snapshot must not include self")
	}

	// Observations about self are ignored, not state-changing.
	for i := 0; i < 10; i++ {
		m.observe("self", false, "x")
	}
	if !m.alive("self") {
		t.Fatal("self went down from observations")
	}
}

// TestMembershipThresholdBoundaries pins the exact flap-damping
// boundaries: upAfter-1 successes keeps a peer down, the downAfter-th
// consecutive failure (not one sooner) flips it, and any contrary
// observation resets the streak in both directions.
func TestMembershipThresholdBoundaries(t *testing.T) {
	tests := []struct {
		name      string
		upAfter   int
		downAfter int
		obs       []bool // observation sequence, in order
		wantUp    bool
	}{
		{"downAfter-1 failures keeps up", 2, 3, []bool{false, false}, true},
		{"exactly downAfter failures flips down", 2, 3, []bool{false, false, false}, false},
		{"success mid-streak resets the failure count", 2, 3, []bool{false, false, true, false, false}, true},
		{"upAfter-1 successes keeps down", 2, 3, []bool{false, false, false, true}, false},
		{"exactly upAfter successes flips up", 2, 3, []bool{false, false, false, true, true}, true},
		{"failure mid-recovery resets the success count", 2, 3, []bool{false, false, false, true, false, true}, false},
		{"downAfter=1 flips on the first failure", 1, 1, []bool{false}, false},
		{"upAfter=1 revives on the first success", 1, 1, []bool{false, true}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := newMembership("self", []Node{{ID: "self"}, {ID: "p"}}, tc.upAfter, tc.downAfter)
			for _, ok := range tc.obs {
				msg := ""
				if !ok {
					msg = "injected failure"
				}
				m.observe("p", ok, msg)
			}
			if got := m.alive("p"); got != tc.wantUp {
				t.Errorf("after %v: alive = %v, want %v", tc.obs, got, tc.wantUp)
			}
			if snap := m.snapshot()["p"]; snap.Probes != int64(len(tc.obs)) {
				t.Errorf("probes = %d, want %d", snap.Probes, len(tc.obs))
			}
		})
	}
}

// TestRequestPathAndProbeObservationsShareThresholds proves a failed
// plan fetch and a failed health probe feed the same damped state
// machine: either source alone is below DownAfter=2, together they
// flip the peer down.
func TestRequestPathAndProbeObservationsShareThresholds(t *testing.T) {
	nodes := startNodes(t, 2, func(i int, ccfg *Config, scfg *service.Config) {
		ccfg.DownAfter = 2
	})
	sp, _ := specOwnedBy(t, nodes[0].cl.Ring(), "n1")
	nodes[1].srv.Close()

	// First evidence: a request-path fetch failure. One observation is
	// below the threshold — and the request itself still succeeds
	// locally (invariant 1).
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := nodes[0].cl.Status(); st.FillErrors != 1 {
		t.Fatalf("fillErrors = %d, want 1 (setup: the fetch must have failed)", st.FillErrors)
	}
	if !nodes[0].cl.mem.alive("n1") {
		t.Fatal("a single request-path failure flipped the peer — damping broken")
	}

	// Second evidence: one probe round. Request-path + probe failures
	// combined reach DownAfter.
	nodes[0].cl.probeOnce()
	if nodes[0].cl.mem.alive("n1") {
		t.Fatal("mixed request-path + probe failures did not accumulate to DownAfter")
	}
}

// TestProbeLoopDetectsDownAndRecovery drives the real probe loop
// against a peer whose /readyz flips from healthy to failing and back,
// checking the damped state machine follows with the configured lag.
func TestProbeLoopDetectsDownAndRecovery(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	c, err := New(Config{
		SelfID: "self",
		Peers: []Node{
			{ID: "self", URL: "http://127.0.0.1:0"},
			{ID: "p", URL: peer.URL},
		},
		ProbeInterval: 10 * time.Millisecond,
		SyncInterval:  -1,
		UpAfter:       2,
		DownAfter:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.mem.alive("p") == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("peer never became %s", what)
	}

	waitFor(true, "up")
	healthy.Store(false)
	waitFor(false, "down (2 consecutive 503 probes)")
	healthy.Store(true)
	waitFor(true, "up again (2 consecutive 200 probes)")

	if st := c.Status(); st.Probes == 0 {
		t.Error("probe counter never advanced")
	}
}
