package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestMembershipFlapDamping(t *testing.T) {
	m := newMembership("self", []Node{{ID: "self"}, {ID: "p"}}, 2, 3)

	if !m.alive("self") {
		t.Fatal("self must always be alive")
	}
	if m.alive("stranger") {
		t.Fatal("unknown peers must not be alive")
	}
	if !m.alive("p") {
		t.Fatal("peers start optimistically up")
	}

	// Two failures are below DownAfter=3: still up.
	m.observe("p", false, "conn refused")
	m.observe("p", false, "conn refused")
	if !m.alive("p") {
		t.Fatal("peer went down after 2/3 failures — damping broken")
	}
	// A success resets the failure streak entirely.
	m.observe("p", true, "")
	m.observe("p", false, "x")
	m.observe("p", false, "x")
	if !m.alive("p") {
		t.Fatal("failure streak survived an intervening success")
	}
	// Third consecutive failure flips the state.
	if flipped := m.observe("p", false, "x"); !flipped {
		t.Fatal("3rd consecutive failure should flip to down")
	}
	if m.alive("p") {
		t.Fatal("peer still alive after DownAfter failures")
	}

	// One success is below UpAfter=2: still down.
	m.observe("p", true, "")
	if m.alive("p") {
		t.Fatal("peer revived after 1/2 successes — damping broken")
	}
	if flipped := m.observe("p", true, ""); !flipped {
		t.Fatal("2nd consecutive success should flip to up")
	}
	if !m.alive("p") {
		t.Fatal("peer not alive after UpAfter successes")
	}

	snap := m.snapshot()
	ps, ok := snap["p"]
	if !ok {
		t.Fatal("snapshot missing peer p")
	}
	if ps.Flaps != 2 {
		t.Errorf("flaps = %d, want 2 (one down, one up)", ps.Flaps)
	}
	if ps.Probes != 8 {
		t.Errorf("probes = %d, want 8", ps.Probes)
	}
	if _, ok := snap["self"]; ok {
		t.Error("snapshot must not include self")
	}

	// Observations about self are ignored, not state-changing.
	for i := 0; i < 10; i++ {
		m.observe("self", false, "x")
	}
	if !m.alive("self") {
		t.Fatal("self went down from observations")
	}
}

// TestProbeLoopDetectsDownAndRecovery drives the real probe loop
// against a peer whose /readyz flips from healthy to failing and back,
// checking the damped state machine follows with the configured lag.
func TestProbeLoopDetectsDownAndRecovery(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	c, err := New(Config{
		SelfID: "self",
		Peers: []Node{
			{ID: "self", URL: "http://127.0.0.1:0"},
			{ID: "p", URL: peer.URL},
		},
		ProbeInterval: 10 * time.Millisecond,
		SyncInterval:  -1,
		UpAfter:       2,
		DownAfter:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.mem.alive("p") == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("peer never became %s", what)
	}

	waitFor(true, "up")
	healthy.Store(false)
	waitFor(false, "down (2 consecutive 503 probes)")
	healthy.Store(true)
	waitFor(true, "up again (2 consecutive 200 probes)")

	if st := c.Status(); st.Probes == 0 {
		t.Error("probe counter never advanced")
	}
}
