// Write-time plan replication and read-repair: the push half of the
// replica-set design (the pull half is anti-entropy, sync.go).
//
// A key's replica set is the first Replication nodes of its rendezvous
// ranking. When the local engine proves and stores a plan, it calls
// ReplicatePlan (wired as service.Config.OnPlanStored), which enqueues
// one push per live replica-set member. Pushes are asynchronous — the
// solve's latency never waits on a peer — and the queue is bounded:
// under sustained overload pushes are dropped and counted, and the
// anti-entropy loop repairs the gap later. Read-repair rides the same
// queue: FetchPlan pushes a served plan back to earlier-ranked replicas
// that answered 404 for it.
//
// The receiving side is PUT /plans/{key} (service layer), which funnels
// into Engine.ImportPlan: decode, Proven check, canonical-key
// re-derivation and full contamination verification before any tier is
// touched. A corrupted or malicious push costs the sender a rejected
// request, never the receiver a wrong plan (invariant 2).
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"switchsynth/internal/faultinject"
	"switchsynth/internal/planio"
	"switchsynth/internal/service"
)

// Wire-protocol names shared with the service layer's HTTP surface.
const (
	planFormatsHeader     = service.PlanFormatsHeader
	contentTypeBinaryPlan = planio.ContentTypeBinary
	contentTypeJSON       = "application/json"
)

const (
	// replQueueDepth bounds the outstanding push backlog; a full queue
	// drops (and counts) rather than blocking the solve path.
	replQueueDepth = 256
	// replWorkers is the number of concurrent push goroutines.
	replWorkers = 2
)

// replTask is one queued push: deliver data (a wire-encoded proven
// plan) for key to node to. repair marks a read-repair push, which is
// counted separately from write-time replication.
type replTask struct {
	key    string
	data   []byte
	to     Node
	repair bool
}

// ReplicatePlan is the engine's write-time replication hook
// (service.Config.OnPlanStored): called after a proven plan is stored
// locally, it enqueues an asynchronous push to every live member of the
// key's replica set except self. The local node need not be in the
// replica set — a fallback solve on a non-replica still pushes toward
// the nodes where readers will look. Members that are down by
// membership are skipped silently; anti-entropy converges them after
// they rejoin.
func (c *Cluster) ReplicatePlan(key string, data []byte) {
	if c.cfg.Replication <= 1 {
		return
	}
	rank := c.ring.Rank(key)
	r := c.cfg.Replication
	if r > len(rank) {
		r = len(rank)
	}
	for _, n := range rank[:r] {
		if n.ID == c.self.ID || !c.mem.alive(n.ID) {
			continue
		}
		c.enqueue(replTask{key: key, data: data, to: n})
	}
}

// enqueue adds a push task unless the queue is full (then it is
// dropped and counted; anti-entropy is the backstop).
func (c *Cluster) enqueue(t replTask) {
	c.replPending.Add(1)
	select {
	case c.replq <- t:
	default:
		c.replPending.Add(-1)
		c.replDropped.Add(1)
	}
}

// replLoop drains the push queue until Stop.
func (c *Cluster) replLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case t := <-c.replq:
			if err := c.pushPlan(t.to, t.key, t.data); err != nil {
				c.replErrors.Add(1)
			} else if t.repair {
				c.repairPushes.Add(1)
			} else {
				c.replPushes.Add(1)
			}
			c.replPending.Add(-1)
		}
	}
}

// pushPlan PUTs the plan bytes to n, which re-verifies them before
// storing (a 422 rejection is the receiver's verify-on-receipt working
// as designed). Uses its own context: pushes are background work not
// tied to any request. Transport failures feed the membership state
// machine like any other peer round trip.
func (c *Cluster) pushPlan(n Node, key string, data []byte) error {
	if c.inj.LinkDown(c.self.ID, n.ID) {
		return fmt.Errorf("injected: link %s->%s cut", c.self.ID, n.ID)
	}
	if c.inj.Fire(faultinject.PeerDown) {
		c.mem.observe(n.ID, false, "injected: peer down")
		return fmt.Errorf("injected: peer down")
	}
	c.inj.Fire(faultinject.PeerSlow)
	// Version negotiation: binary frames are pushed verbatim only to
	// peers that advertised binary support on a readiness probe. Anyone
	// else — an older node, or a peer not yet probed — gets the plan
	// transcoded to the JSON file format, which every version verifies
	// and accepts. The transcode runs the full frame validation, and its
	// output is byte-identical to what a JSON-wire node would have
	// produced, so mixed-version replica sets converge on consistent
	// bytes per format.
	if planio.IsBinary(data) && !c.mem.binaryOK(n.ID) {
		if !c.mem.formatsKnown(n.ID) {
			// A push racing the first probe round would otherwise transcode
			// pessimistically and leave this replica holding different bytes
			// than the owner. Learn the capability now — a one-time /readyz
			// round trip per unprobed peer; if it fails the conservative
			// JSON path below still applies.
			if err := c.probe(n); err == nil {
				c.mem.observe(n.ID, true, "")
			}
		}
		if !c.mem.binaryOK(n.ID) {
			jd, err := planio.ToJSON(data)
			if err != nil {
				return fmt.Errorf("cluster: push plan %s to peer %s: transcode: %w", key, n.ID, err)
			}
			data = jd
			c.pushTranscodes.Add(1)
		}
	}
	if len(data) > 0 && c.inj.Fire(faultinject.ReplCorrupt) {
		// Flip one byte mid-payload on a copy (the caller's slice is
		// shared with local tiers); the receiver must reject it.
		cp := make([]byte, len(data))
		copy(cp, data)
		cp[len(cp)/2] ^= 0x40
		data = cp
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		n.URL+"/plans/"+url.PathEscape(key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", planio.ContentTypeOf(data))
	resp, err := c.hc.Do(req)
	if err != nil {
		c.mem.observe(n.ID, false, err.Error())
		return fmt.Errorf("cluster: push plan %s to peer %s: %w", key, n.ID, err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: push plan %s to peer %s: status %d", key, n.ID, resp.StatusCode)
	}
	c.mem.observe(n.ID, true, "")
	return nil
}
