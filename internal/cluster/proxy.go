// Request forwarding: the middleware that makes any node a valid entry
// point. A /synthesize request landing on a non-owner is proxied to the
// key's owner so the cluster-wide cache and in-flight deduplication
// concentrate per key on one node; everything else (and every failure
// mode) is served by the local engine underneath.
//
// Forwarding rules:
//
//   - POST /synthesize (including ?wait=proof) and GET
//     /synthesize/stream/{key} are routed to the key's owner; all other
//     paths go straight to the local handler. POST /synthesize/batch
//     stays local by design: its members span many canonical keys, so
//     there is no single owner — per-key cache locality is recovered by
//     the engine's peer cache fill instead.
//   - The /synthesize body is read (bounded by service.MaxRequestBody)
//     to compute the canonical job key; a body that cannot be decoded
//     or keyed is handed to the local handler, which owns error
//     reporting. The stream endpoint carries its key in the path.
//   - A request is forwarded only when the owner is a live peer and the
//     X-Synthd-Hop count is below MaxHops. The hop limit makes routing
//     loops (possible transiently when two nodes disagree about
//     liveness) terminate at a node that solves locally.
//   - Failover: a candidate that is down by membership is skipped, and
//     one that fails in transit is retried against the next node in the
//     key's rank order — up to Replication live candidates — before the
//     local fallback. A successor almost certainly holds the owner's
//     replicated plans, so failing over beats re-solving locally.
//   - The query string and the admission identity headers
//     (X-Synthd-Tenant, X-Synthd-Priority) ride along on the forward,
//     and the owner's response is flushed chunk by chunk, so streamed
//     ndjson frames pass through the proxy as they are produced.
//   - A forward that fails in transit, or that the owner sheds
//     (429/502/503/504), falls back to the local engine. Shed statuses
//     that are per-request verdicts (400/404/422 etc.) are relayed
//     as-is — retrying locally would return the same verdict.
//
// Every response carries X-Synthd-Node: the ID of the node whose engine
// actually answered (forwarded responses keep the owner's header).
package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"

	"switchsynth"
	"switchsynth/internal/faultinject"
	"switchsynth/internal/service"
)

// Forwarding headers.
const (
	// HopHeader counts forwards; a request above MaxHops is served
	// locally no matter who owns it.
	HopHeader = "X-Synthd-Hop"
	// NodeHeader names the node whose engine produced the response.
	NodeHeader = "X-Synthd-Node"
)

// shedStatus reports whether a proxied status means the owner refused
// load (fall back to the local engine) rather than judged the request.
func shedStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Middleware wraps a synthd handler with owner routing and the
// /cluster status endpoint.
func (c *Cluster) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/cluster" {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			writeJSON(w, http.StatusOK, c.Status())
			return
		}
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/synthesize/stream/") {
			c.routeStreamKey(w, r, next)
			return
		}
		if r.Method != http.MethodPost || r.URL.Path != "/synthesize" {
			next.ServeHTTP(w, r)
			return
		}
		c.routeSynthesize(w, r, next)
	})
}

// routeSynthesize decides local vs forward for one /synthesize request.
func (c *Cluster) routeSynthesize(w http.ResponseWriter, r *http.Request, next http.Handler) {
	body, err := io.ReadAll(io.LimitReader(r.Body, service.MaxRequestBody+1))
	if err != nil {
		// Couldn't buffer the body; hand the stub downstream so the
		// local handler reports the read error uniformly.
		c.serveLocal(w, r, next, body)
		return
	}
	key, ok := jobKeyOf(body)
	if !ok || len(body) > service.MaxRequestBody {
		// Undecodable or oversized: local handler owns the 400/413.
		c.serveLocal(w, r, next, body)
		return
	}
	c.routeKey(w, r, next, key, body)
}

// routeStreamKey routes GET /synthesize/stream/{key}: the watched
// solve's feed — and its cached plan — live on the key's owner, so a
// watcher landing anywhere else is forwarded there. Local fallback is
// still correct (the local engine answers 404 or serves its own copy).
func (c *Cluster) routeStreamKey(w http.ResponseWriter, r *http.Request, next http.Handler) {
	key := strings.TrimPrefix(r.URL.Path, "/synthesize/stream/")
	if key == "" {
		c.serveLocal(w, r, next, nil)
		return
	}
	c.routeKey(w, r, next, key, nil)
}

// routeKey walks key's rank order — owner first, then successors —
// forwarding to the first live candidate that answers, skipping
// candidates that are down by membership and failing over past ones
// that die in transit, up to Replication attempts. When no candidate
// answers (or the local node outranks every live one) the request is
// served locally: the replica walk narrows where the cluster looks for
// the plan, never whether the request is served (invariant 1).
func (c *Cluster) routeKey(w http.ResponseWriter, r *http.Request, next http.Handler, key string, body []byte) {
	hop, _ := strconv.Atoi(r.Header.Get(HopHeader))
	if hop >= c.cfg.MaxHops {
		c.serveLocal(w, r, next, body)
		return
	}
	failover := false
	tried := 0
	for _, n := range c.ring.Rank(key) {
		if n.ID == c.self.ID || tried >= c.cfg.Replication {
			break
		}
		if !c.mem.alive(n.ID) {
			failover = true
			continue
		}
		tried++
		if c.forward(w, r, n, body, hop) {
			if failover {
				c.forwardFailovers.Add(1)
			}
			return
		}
		failover = true
	}
	if tried > 0 {
		c.forwardFallbacks.Add(1)
	}
	c.serveLocal(w, r, next, body)
}

// serveLocal replays the buffered body into the wrapped handler.
func (c *Cluster) serveLocal(w http.ResponseWriter, r *http.Request, next http.Handler, body []byte) {
	c.localServes.Add(1)
	w.Header().Set(NodeHeader, c.self.ID)
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	next.ServeHTTP(w, r2)
}

// forward proxies the request (same method, path and query) to owner;
// body is the buffered request body, nil for body-less methods. It
// reports whether a response was written; false means the caller must
// fall back to the local engine (nothing has been written yet in that
// case). Transport failures also feed the membership state machine — a
// request-path error is health evidence just like a failed probe.
func (c *Cluster) forward(w http.ResponseWriter, r *http.Request, owner Node, body []byte, hop int) bool {
	if c.inj.LinkDown(c.self.ID, owner.ID) {
		c.mem.observe(owner.ID, false, "injected: link cut")
		return false
	}
	if c.inj.Fire(faultinject.PeerDown) {
		c.mem.observe(owner.ID, false, "injected: peer down")
		return false
	}
	c.inj.Fire(faultinject.PeerSlow)
	target := owner.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, rd)
	if err != nil {
		return false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(HopHeader, strconv.Itoa(hop+1))
	for _, k := range []string{"Idempotency-Key", service.TenantHeader, service.PriorityHeader} {
		if v := r.Header.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	// Streaming forwards stay open for the whole solve; everything else
	// keeps the bounded client so a hung owner falls back quickly.
	hc := c.hc
	if r.Method == http.MethodGet || r.URL.Query().Get("wait") == "proof" {
		hc = c.streamHC
	}
	resp, err := hc.Do(req)
	if err != nil {
		c.mem.observe(owner.ID, false, err.Error())
		return false
	}
	defer resp.Body.Close()
	if shedStatus(resp.StatusCode) {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false
	}
	c.forwards.Add(1)
	c.mem.observe(owner.ID, true, "")
	h := w.Header()
	for _, k := range []string{"Content-Type", "Retry-After", NodeHeader} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	if h.Get(NodeHeader) == "" {
		h.Set(NodeHeader, owner.ID)
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	return true
}

// flushCopy streams src to w, flushing after every chunk, so ndjson
// frames forwarded from an owner's streaming solve reach the client as
// the owner produces them instead of when a proxy buffer fills.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			_ = rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// jobKeyOf extracts the canonical job key from a /synthesize body. The
// decode here is deliberately lenient (no unknown-field rejection) —
// strict validation is the local handler's job; the router only needs
// the key.
func jobKeyOf(body []byte) (string, bool) {
	var req service.SynthesizeRequest
	if err := json.Unmarshal(body, &req); err != nil || req.Spec == nil {
		return "", false
	}
	key, err := service.JobKey(req.Spec, switchsynth.Options{Engine: req.Options.Engine})
	if err != nil {
		return "", false
	}
	return key, true
}
