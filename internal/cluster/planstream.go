// The plan-stream client: a per-peer persistent fetch channel that
// moves plan frames without the per-request HTTP envelope. The server
// side lives in internal/service (the /plans.stream upgrade endpoint);
// the framing in internal/planio. Capability is learned by trying: the
// first fetch to a peer attempts the upgrade, a non-101 answer (an
// older node) pins that peer to plain GETs for the process lifetime,
// while transport errors leave the capability unknown so a rebooted
// peer is retried. Every byte fetched over a stream passes the same
// verification pipeline as an HTTP fetch — the channel changes the
// envelope, never the trust model.
package cluster

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"switchsynth/internal/planio"
)

// Stream capability states, per peer.
const (
	streamUnknown = iota // never tried, or last attempt failed in transit
	streamYes            // upgrade succeeded at least once
	streamNever          // peer answered non-101: it predates the protocol
)

// streamConn is one upgraded connection, owned by a single fetch at a
// time.
type streamConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func (s *streamConn) close() { _ = s.c.Close() }

// planStreams pools at most one idle upgraded connection per peer.
// Concurrent fetches to the same peer either dial a second stream or
// fall back to a plain GET — never block behind each other.
type planStreams struct {
	mu    sync.Mutex
	idle  map[string]*streamConn
	state map[string]int
	done  bool
}

func newPlanStreams() *planStreams {
	return &planStreams{idle: make(map[string]*streamConn), state: make(map[string]int)}
}

// take pops the peer's idle connection, if any, and reports whether
// dialing a new one is worthwhile (false once the peer answered
// non-101, or after closeAll).
func (p *planStreams) take(id string) (*streamConn, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done || p.state[id] == streamNever {
		return nil, false
	}
	s := p.idle[id]
	delete(p.idle, id)
	return s, true
}

// put returns a healthy connection to the pool. With the slot already
// occupied (a concurrent fetch finished first) the extra stream closes.
func (p *planStreams) put(id string, s *streamConn) {
	p.mu.Lock()
	if p.done || p.idle[id] != nil {
		p.mu.Unlock()
		s.close()
		return
	}
	p.idle[id] = s
	p.state[id] = streamYes
	p.mu.Unlock()
}

func (p *planStreams) setState(id string, st int) {
	p.mu.Lock()
	p.state[id] = st
	p.mu.Unlock()
}

// closeAll closes pooled connections and refuses new dials; the owning
// Cluster is stopping.
func (p *planStreams) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done = true
	for id, s := range p.idle {
		s.close()
		delete(p.idle, id)
	}
}

// dialStream performs the upgrade handshake against the peer's one
// listening port. A non-101 answer reports ok=false with a nil error:
// the peer is healthy but pre-stream, and the caller pins it to GETs.
func (c *Cluster) dialStream(n Node) (s *streamConn, ok bool, err error) {
	u, err := url.Parse(n.URL)
	if err != nil || u.Scheme != "http" || u.Host == "" {
		// Only plain TCP is streamed; anything else keeps the verified
		// HTTP client path.
		return nil, false, nil
	}
	conn, err := net.DialTimeout("tcp", u.Host, c.cfg.FetchTimeout)
	if err != nil {
		return nil, false, err
	}
	_ = conn.SetDeadline(time.Now().Add(c.cfg.FetchTimeout))
	if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n",
		planio.PlanStreamPath, u.Host, planio.PlanStreamProto); err != nil {
		conn.Close()
		return nil, false, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		conn.Close()
		return nil, false, err
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		// Drain nothing: the connection dies with the refusal; the
		// answer itself is the capability signal.
		conn.Close()
		return nil, false, nil
	}
	_ = conn.SetDeadline(time.Time{})
	return &streamConn{c: conn, br: br, bw: bufio.NewWriter(conn)}, true, nil
}

// fetchViaStream tries the persistent channel. ok=false means the
// caller must fall back to a plain GET — pre-stream peer, exhausted
// dial, or a mid-exchange transport error (the plain GET then retries
// the fetch from scratch and owns the error accounting).
func (c *Cluster) fetchViaStream(n Node, key string) (data []byte, found, ok bool) {
	s, try := c.streams.take(n.ID)
	if s == nil {
		if !try {
			return nil, false, false
		}
		var err error
		var upgraded bool
		s, upgraded, err = c.dialStream(n)
		c.streamDials.Add(1)
		if err != nil {
			return nil, false, false // transit failure: capability stays unknown
		}
		if !upgraded {
			c.streams.setState(n.ID, streamNever)
			return nil, false, false
		}
	}
	_ = s.c.SetDeadline(time.Now().Add(c.cfg.FetchTimeout))
	if err := planio.WriteFetchRequest(s.bw, key); err != nil {
		s.close()
		return nil, false, false
	}
	if err := s.bw.Flush(); err != nil {
		s.close()
		return nil, false, false
	}
	data, found, err := planio.ReadFetchResponse(s.br, maxPlanBytes)
	if err != nil {
		s.close()
		return nil, false, false
	}
	_ = s.c.SetDeadline(time.Time{})
	c.streams.put(n.ID, s)
	c.streamFetches.Add(1)
	return data, found, true
}
