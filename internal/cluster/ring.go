// Rendezvous-hash ring: the deterministic spec→node ownership map that
// every cluster member (and the owner-routing client) computes
// independently from the same static peer list.
//
// Rendezvous (highest-random-weight) hashing was chosen over a
// vnode-based consistent-hash circle because membership here is a small
// static list: scoring every node per key is O(n) with n ≤ a handful,
// needs no precomputed ring state, and gives the property we actually
// care about — when one node dies, only the keys it owned move, each to
// its next-highest-scoring survivor, while every other key keeps its
// owner. The score is FNV-1a 64 over "nodeID\x00key"; any stable hash
// works as long as every participant uses the same one (the /cluster
// status endpoint reports the scheme so mixed deployments are
// detectable).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// HashScheme names the ownership hash so nodes and clients can check
// they agree; it is reported by the /cluster status endpoint.
const HashScheme = "rendezvous-fnv1a64-fmix64"

// Node identifies one synthd instance in the static peer list.
type Node struct {
	// ID is the stable node name used for hashing. Ownership moves if an
	// ID changes, so IDs should survive restarts.
	ID string `json:"id"`
	// URL is the node's base URL (scheme://host:port, no trailing
	// slash). The self entry may carry its own URL or leave it empty;
	// hashing uses only the ID.
	URL string `json:"url"`
}

// ParsePeers parses a -peers flag value: comma-separated "id=url"
// entries, e.g. "a=http://10.0.0.1:8471,b=http://10.0.0.2:8471".
// The list must include every cluster member, the local node included,
// and must be identical (up to order) on every node — ownership is
// computed independently from it. Returns the nodes sorted by ID.
func ParsePeers(s string) ([]Node, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var nodes []Node
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: peer entry %q is not id=url", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		nodes = append(nodes, Node{ID: id, URL: strings.TrimRight(url, "/")})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return nodes, nil
}

// Ring computes rendezvous-hash ownership over a fixed member list. It
// is immutable after construction and safe for concurrent use; liveness
// is layered on top by the membership tracker, not baked into the ring.
type Ring struct {
	members []Node
}

// NewRing builds a ring over members (order-insensitive; the ring keeps
// its own ID-sorted copy).
func NewRing(members []Node) *Ring {
	ms := make([]Node, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	return &Ring{members: ms}
}

// Members returns the ID-sorted member list (a copy).
func (r *Ring) Members() []Node {
	out := make([]Node, len(r.members))
	copy(out, r.members)
	return out
}

// Rank returns every member ordered by preference for key: the first
// entry is the owner, the second is where the key moves if the owner is
// down, and so on. The order is a pure function of (members, key) —
// every node and client computes the same ranking. Ties (possible only
// by hash collision) break toward the smaller ID so the order stays
// total and deterministic.
func (r *Ring) Rank(key string) []Node {
	type scored struct {
		n Node
		s uint64
	}
	sc := make([]scored, len(r.members))
	for i, n := range r.members {
		sc[i] = scored{n: n, s: score(n.ID, key)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].s != sc[j].s {
			return sc[i].s > sc[j].s
		}
		return sc[i].n.ID < sc[j].n.ID
	})
	out := make([]Node, len(sc))
	for i, s := range sc {
		out[i] = s.n
	}
	return out
}

// OwnerID returns the ID of key's first-preference owner, or "" for an
// empty ring.
func (r *Ring) OwnerID(key string) string {
	rank := r.Rank(key)
	if len(rank) == 0 {
		return ""
	}
	return rank[0].ID
}

// score is the rendezvous weight of (node, key): FNV-1a 64 over the
// node ID and key separated by a NUL (neither may contain NUL — IDs
// come from flags, keys are hex digests plus an engine name), pushed
// through a 64-bit avalanche finalizer. The finalizer matters: raw
// FNV-1a is affine enough that two IDs differing in one byte keep a
// strongly correlated ordering across keys, which skews rendezvous
// ownership badly (one node can win almost every key).
func score(nodeID, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(nodeID))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return fmix64(h.Sum64())
}

// fmix64 is the MurmurHash3 64-bit finalizer (full avalanche: every
// input bit flips every output bit with ~1/2 probability).
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
