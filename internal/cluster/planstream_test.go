// Plan-stream client tests: the persistent fetch channel must be
// invisible except in speed — identical bytes, identical verification,
// graceful fallback for peers that predate it, and a hangup when the
// serving engine retires.
package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"switchsynth"
)

// TestPlanStreamServesFetches: two real nodes; the second's fetches ride
// one upgraded connection and return the owner's exact frame bytes.
func TestPlanStreamServesFetches(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), nodes[0].id)
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	want, ok := nodes[0].eng.PlanBytes(key)
	if !ok {
		t.Fatal("owner holds no plan bytes")
	}

	reader := nodes[1].cl
	for i := 0; i < 3; i++ {
		got, err := reader.FetchPlan(context.Background(), key)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("fetch %d returned different bytes than the owner holds", i)
		}
	}
	st := reader.Status()
	if st.StreamFetches != 3 {
		t.Errorf("streamFetches = %d, want 3", st.StreamFetches)
	}
	if st.StreamDials != 1 {
		t.Errorf("streamDials = %d, want 1 (connection must be reused)", st.StreamDials)
	}
	if st.FillHits != 3 {
		t.Errorf("fillHits = %d, want 3 (stream fetches count as fills)", st.FillHits)
	}

	// A missing key is a clean miss over the same connection.
	data, err := reader.FetchPlan(context.Background(), key+"-missing")
	if err != nil || data != nil {
		t.Fatalf("missing key fetch = (%v, %v), want (nil, nil)", data, err)
	}
	if st := reader.Status(); st.StreamDials != 1 {
		t.Errorf("streamDials after miss = %d, want still 1", st.StreamDials)
	}
}

// TestPlanStreamFallsBackToGET: a peer without the stream endpoint (an
// older build) pins the client to plain GETs after one failed upgrade.
func TestPlanStreamFallsBackToGET(t *testing.T) {
	plan := []byte(`{"not":"a real plan — transport test only"}`)
	mux := http.NewServeMux()
	mux.HandleFunc("/plans/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(plan)
	})
	old := httptest.NewServer(mux)
	t.Cleanup(old.Close)

	cl, err := New(Config{
		SelfID: "b",
		Peers:  []Node{{ID: "a", URL: old.URL}, {ID: "b", URL: "http://127.0.0.1:1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)

	for i := 0; i < 2; i++ {
		data, found, err := cl.fetchFrom(context.Background(), Node{ID: "a", URL: old.URL}, "k")
		if err != nil || !found || !bytes.Equal(data, plan) {
			t.Fatalf("fetch %d = (%q, %v, %v), want the stub's plan", i, data, found, err)
		}
	}
	st := cl.Status()
	if st.StreamFetches != 0 {
		t.Errorf("streamFetches = %d, want 0 against a pre-stream peer", st.StreamFetches)
	}
	if st.StreamDials != 1 {
		t.Errorf("streamDials = %d, want 1 (non-101 must pin the peer to GETs)", st.StreamDials)
	}
}

// TestPlanStreamConcurrentFetches: parallel fetches through one cluster
// never corrupt or cross frames — each either rides a stream or falls
// back to a plain GET, and every byte comes back intact.
func TestPlanStreamConcurrentFetches(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), nodes[0].id)
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	want, _ := nodes[0].eng.PlanBytes(key)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				got, err := nodes[1].cl.FetchPlan(context.Background(), key)
				if err != nil {
					t.Errorf("concurrent fetch: %v", err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Error("concurrent fetch returned different bytes")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPlanStreamHangsUpOnEngineClose: a retired engine must stop
// serving its streams — the chaos tests model node death as server
// close plus engine close, and a surviving hijacked connection would
// keep a corpse answering.
func TestPlanStreamHangsUpOnEngineClose(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), nodes[0].id)
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].cl.FetchPlan(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	if st := nodes[1].cl.Status(); st.StreamFetches != 1 {
		t.Fatalf("streamFetches = %d, want 1", st.StreamFetches)
	}

	// Kill the owner: server and engine. The pooled stream must die
	// with it — the next fetch fails over instead of being served by
	// the corpse's hijacked connection.
	nodes[0].srv.Close()
	nodes[0].eng.CloseNow()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	data, err := nodes[1].cl.FetchPlan(ctx, key)
	if err == nil && data != nil {
		t.Fatal("fetch succeeded against a closed engine; its stream must hang up")
	}
}
