package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"switchsynth/internal/service"
)

// postSynthesize sends one /synthesize request to url and returns the
// status, the answering node (X-Synthd-Node) and the decoded body.
func postSynthesize(t *testing.T, url string, req service.SynthesizeRequest, hop string) (int, string, service.SynthesizeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, url+"/synthesize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if hop != "" {
		httpReq.Header.Set(HopHeader, hop)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out service.SynthesizeResponse
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode response: %v (body %q)", err, raw)
		}
	}
	return resp.StatusCode, resp.Header.Get(NodeHeader), out
}

func TestProxyForwardsToOwner(t *testing.T) {
	nodes := startNodes(t, 3, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n2")

	status, node, out := postSynthesize(t, nodes[0].url, service.SynthesizeRequest{Spec: sp}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if node != "n2" {
		t.Errorf("X-Synthd-Node = %q, want owner n2", node)
	}
	if out.Key != key {
		t.Errorf("response key %q, want %q", out.Key, key)
	}
	if got := nodes[0].cl.Status(); got.Forwards != 1 || got.LocalServes != 0 {
		t.Errorf("entry node forwards=%d localServes=%d, want 1/0", got.Forwards, got.LocalServes)
	}
	// The solve must have happened on the owner, nowhere else.
	if snap := nodes[2].eng.Snapshot(); snap.JobsSubmitted != 1 {
		t.Errorf("owner jobsSubmitted = %d, want 1", snap.JobsSubmitted)
	}
	if snap := nodes[0].eng.Snapshot(); snap.JobsSubmitted != 0 {
		t.Errorf("entry-node jobsSubmitted = %d, want 0", snap.JobsSubmitted)
	}

	// The same request to the owner itself is served locally.
	status, node, _ = postSynthesize(t, nodes[2].url, service.SynthesizeRequest{Spec: sp}, "")
	if status != http.StatusOK || node != "n2" {
		t.Errorf("owner-direct: status=%d node=%q, want 200/n2", status, node)
	}
	if got := nodes[2].cl.Status(); got.LocalServes != 2 {
		t.Errorf("owner localServes = %d, want 2 (forwarded + direct)", got.LocalServes)
	}
}

func TestProxyFallsBackWhenOwnerDown(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n1")
	nodes[1].srv.Close() // owner dies

	status, node, out := postSynthesize(t, nodes[0].url, service.SynthesizeRequest{Spec: sp}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 — a dead owner must not fail the request", status)
	}
	if node != "n0" {
		t.Errorf("X-Synthd-Node = %q, want local fallback n0", node)
	}
	if out.Key != key {
		t.Errorf("response key %q, want %q", out.Key, key)
	}
	st := nodes[0].cl.Status()
	if st.ForwardFallbacks != 1 || st.LocalServes != 1 {
		t.Errorf("fallbacks=%d localServes=%d, want 1/1", st.ForwardFallbacks, st.LocalServes)
	}
}

func TestProxyFallsBackWhenOwnerSheds(t *testing.T) {
	// The owner is up but draining: /synthesize answers 503, which the
	// proxy treats as shed load, not a request verdict.
	nodes := startNodes(t, 2, nil)
	sp, _ := specOwnedBy(t, nodes[0].cl.Ring(), "n1")
	nodes[1].eng.Close() // closed engine → 503 unavailable

	status, node, _ := postSynthesize(t, nodes[0].url, service.SynthesizeRequest{Spec: sp}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 via local fallback", status)
	}
	if node != "n0" {
		t.Errorf("X-Synthd-Node = %q, want n0", node)
	}
	if st := nodes[0].cl.Status(); st.ForwardFallbacks != 1 {
		t.Errorf("forwardFallbacks = %d, want 1", st.ForwardFallbacks)
	}
}

func TestProxyFailsOverToSuccessor(t *testing.T) {
	nodes := startNodes(t, 3, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n0")
	rank := nodes[0].cl.Ring().Rank(key)
	owner := nodeByID(t, nodes, rank[0].ID)
	succ := nodeByID(t, nodes, rank[1].ID)
	third := nodeByID(t, nodes, rank[2].ID)
	owner.srv.Close() // owner dies; membership still optimistically up

	// The entry node tries the owner, fails in transit, and fails over
	// to the successor instead of solving locally.
	status, node, out := postSynthesize(t, third.url, service.SynthesizeRequest{Spec: sp}, "")
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if node != succ.id {
		t.Errorf("X-Synthd-Node = %q, want successor %s", node, succ.id)
	}
	if out.Key != key {
		t.Errorf("response key %q, want %q", out.Key, key)
	}
	st := third.cl.Status()
	if st.Forwards != 1 || st.ForwardFailovers != 1 || st.LocalServes != 0 {
		t.Errorf("forwards=%d failovers=%d localServes=%d, want 1/1/0",
			st.Forwards, st.ForwardFailovers, st.LocalServes)
	}
	// The successor solved it; the entry node did not.
	if snap := succ.eng.Snapshot(); snap.JobsSubmitted != 1 {
		t.Errorf("successor jobsSubmitted = %d, want 1", snap.JobsSubmitted)
	}
	if snap := third.eng.Snapshot(); snap.JobsSubmitted != 0 {
		t.Errorf("entry-node jobsSubmitted = %d, want 0", snap.JobsSubmitted)
	}
}

func TestProxyHopLimit(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, _ := specOwnedBy(t, nodes[0].cl.Ring(), "n1")

	// A request already at the hop limit is served locally even though
	// the peer owns the key — this is what terminates routing loops.
	status, node, _ := postSynthesize(t, nodes[0].url, service.SynthesizeRequest{Spec: sp}, "2")
	if status != http.StatusOK || node != "n0" {
		t.Errorf("at hop limit: status=%d node=%q, want 200 served by n0", status, node)
	}
	if st := nodes[0].cl.Status(); st.Forwards != 0 {
		t.Errorf("forwards = %d, want 0 at the hop limit", st.Forwards)
	}
}

func TestProxyBadBodyHandledLocally(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	resp, err := http.Post(nodes[0].url+"/synthesize", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400 from the local handler", resp.StatusCode)
	}
	if got := resp.Header.Get(NodeHeader); got != "n0" {
		t.Errorf("X-Synthd-Node = %q, want n0", got)
	}
}

func TestClusterStatusEndpoint(t *testing.T) {
	nodes := startNodes(t, 3, nil)
	resp, err := http.Get(nodes[1].url + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != "n1" || st.Hash != HashScheme || len(st.Peers) != 3 {
		t.Errorf("status = self %q hash %q peers %d, want n1/%s/3", st.Self, st.Hash, len(st.Peers), HashScheme)
	}
	for _, p := range st.Peers {
		if !p.Up {
			t.Errorf("peer %s down at boot; membership must start optimistic", p.ID)
		}
		if p.Self != (p.ID == "n1") {
			t.Errorf("peer %s self flag = %v", p.ID, p.Self)
		}
	}

	// /metrics must embed the cluster block when wired via HandlerConfig.
	mresp, err := http.Get(nodes[1].url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics struct {
		PeerFillEnabled bool `json:"peerFillEnabled"`
		Cluster         *Status
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if !metrics.PeerFillEnabled {
		t.Error("peerFillEnabled = false, want true with a cluster fill hook")
	}
	if metrics.Cluster == nil || metrics.Cluster.Self != "n1" {
		t.Errorf("metrics cluster block = %+v, want self n1", metrics.Cluster)
	}
}
