// Write-time replication, successor failover and read-repair: every
// proven plan must end up on Replication nodes, reads must walk the
// replica set instead of giving up at a dead owner, and a replica that
// missed its push must be healed by the read path.
package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/url"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/faultinject"
	"switchsynth/internal/service"
)

func TestWriteTimeReplicationPushesToSuccessor(t *testing.T) {
	nodes := startReplNodes(t, 3, func(i int, ccfg *Config, scfg *service.Config) {
		ccfg.ProbeInterval = time.Hour // one boot round only
	})
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n0")
	rank := nodes[0].cl.Ring().Rank(key)
	owner := nodeByID(t, nodes, rank[0].ID)
	succ := nodeByID(t, nodes, rank[1].ID)
	third := nodeByID(t, nodes, rank[2].ID)

	// A fresh solve on the owner pushes the plan to its successor.
	if _, err := owner.eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	settleRepl(t, nodes)

	a, okA := owner.eng.PlanBytes(key)
	b, okB := succ.eng.PlanBytes(key)
	if !okA || !okB {
		t.Fatalf("plan present: owner=%v successor=%v, want both", okA, okB)
	}
	if !bytes.Equal(a, b) {
		t.Error("replicated plan bytes differ from the owner's")
	}
	// The successor verified and imported; it never solved.
	if snap := succ.eng.Snapshot(); snap.PeerImported != 1 || snap.SolveCount != 0 {
		t.Errorf("successor peerImported=%d solveCount=%d, want 1/0", snap.PeerImported, snap.SolveCount)
	}
	if st := owner.cl.Status(); st.ReplPushes != 1 || st.ReplErrors != 0 {
		t.Errorf("owner replPushes=%d replErrors=%d, want 1/0", st.ReplPushes, st.ReplErrors)
	}
	// Replication is bounded: the node outside the replica set got nothing.
	if _, ok := third.eng.PlanBytes(key); ok {
		t.Error("plan replicated past the replica set")
	}

	// Re-serving from cache must not push again (only fresh solves do).
	if _, err := owner.eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	settleRepl(t, nodes)
	if st := owner.cl.Status(); st.ReplPushes != 1 {
		t.Errorf("cache hit re-pushed: replPushes = %d, want 1", st.ReplPushes)
	}
}

func TestReplicationDisabledAtROne(t *testing.T) {
	nodes := startReplNodes(t, 2, func(i int, ccfg *Config, scfg *service.Config) {
		ccfg.Replication = 1
		ccfg.ProbeInterval = time.Hour
	})
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n0")
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	settleRepl(t, nodes)
	if _, ok := nodes[1].eng.PlanBytes(key); ok {
		t.Error("R=1 must reproduce single-owner behaviour, but the plan was pushed")
	}
	if st := nodes[0].cl.Status(); st.ReplPushes != 0 {
		t.Errorf("replPushes = %d, want 0 at R=1", st.ReplPushes)
	}
}

func TestFetchPlanFailsOverToSuccessor(t *testing.T) {
	nodes := startNodes(t, 3, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n0")
	rank := nodes[0].cl.Ring().Rank(key)
	owner := nodeByID(t, nodes, rank[0].ID)
	succ := nodeByID(t, nodes, rank[1].ID)
	third := nodeByID(t, nodes, rank[2].ID)

	// The successor holds the plan (it solved after a clean fill miss);
	// then the owner dies while membership still believes it is up.
	if _, err := succ.eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	owner.srv.Close()

	// The read fails over: owner errors in transit, successor serves.
	resp, err := third.eng.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.PeerHit {
		t.Fatal("failover read did not serve from the successor's replica")
	}
	st := third.cl.Status()
	if st.FillErrors != 1 || st.FillHits != 1 || st.FillFailovers != 1 {
		t.Errorf("fillErrors=%d fillHits=%d fillFailovers=%d, want 1/1/1",
			st.FillErrors, st.FillHits, st.FillFailovers)
	}
	if snap := third.eng.Snapshot(); snap.SolveCount != 0 {
		t.Errorf("solveCount = %d, want 0 — failover must beat re-solving", snap.SolveCount)
	}
	a, _ := succ.eng.PlanBytes(key)
	b, ok := third.eng.PlanBytes(key)
	if !ok || !bytes.Equal(a, b) {
		t.Errorf("failover-read plan present=%v identical=%v, want true/true", ok, bytes.Equal(a, b))
	}
}

func TestReadRepairHealsLackingReplica(t *testing.T) {
	injs := make([]*faultinject.Injector, 3)
	nodes := startReplNodes(t, 3, func(i int, ccfg *Config, scfg *service.Config) {
		injs[i] = faultinject.New(int64(17 + i))
		ccfg.FaultInjector = injs[i]
		ccfg.ProbeInterval = time.Hour
	})
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n0")
	rank := nodes[0].cl.Ring().Rank(key)
	owner := nodeByID(t, nodes, rank[0].ID)
	succ := nodeByID(t, nodes, rank[1].ID)
	third := nodeByID(t, nodes, rank[2].ID)
	var succInj *faultinject.Injector
	for i, n := range nodes {
		if n == succ {
			succInj = injs[i]
		}
	}

	// The successor solves while its link to the owner is cut: the
	// write-time push fails and the owner is left lacking its own key.
	succInj.CutLink(succ.id, owner.id)
	if _, err := succ.eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	settleRepl(t, nodes)
	if _, ok := owner.eng.PlanBytes(key); ok {
		t.Fatal("push crossed a cut link")
	}
	if st := succ.cl.Status(); st.ReplErrors == 0 {
		t.Error("failed push over the cut link not counted")
	}
	if succInj.Fired(faultinject.PeerPartition) == 0 {
		t.Fatal("partition fault never fired; test exercised nothing")
	}
	succInj.HealAllLinks()

	// A read through the third node finds the owner lacking (404) and the
	// successor serving — and pushes the plan back to the owner.
	resp, err := third.eng.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.PeerHit {
		t.Fatal("read did not hit the successor's replica")
	}
	settleRepl(t, nodes)

	a, _ := succ.eng.PlanBytes(key)
	b, ok := owner.eng.PlanBytes(key)
	if !ok || !bytes.Equal(a, b) {
		t.Fatalf("read-repair: owner plan present=%v identical=%v, want true/true", ok, bytes.Equal(a, b))
	}
	st := third.cl.Status()
	if st.FillMisses != 1 || st.FillHits != 1 || st.FillFailovers != 1 || st.RepairPushes != 1 {
		t.Errorf("fillMisses=%d fillHits=%d fillFailovers=%d repairPushes=%d, want 1/1/1/1",
			st.FillMisses, st.FillHits, st.FillFailovers, st.RepairPushes)
	}
	if snap := owner.eng.Snapshot(); snap.PeerImported != 1 || snap.SolveCount != 0 {
		t.Errorf("owner peerImported=%d solveCount=%d, want 1/0 (healed without solving)",
			snap.PeerImported, snap.SolveCount)
	}
}

func TestCorruptReplicaPushNeverStoredOrServed(t *testing.T) {
	var inj *faultinject.Injector
	nodes := startReplNodes(t, 2, func(i int, ccfg *Config, scfg *service.Config) {
		ccfg.ProbeInterval = time.Hour
		if i == 0 {
			inj = faultinject.New(13).Set(faultinject.ReplCorrupt, faultinject.Rule{Probability: 1})
			ccfg.FaultInjector = inj
		}
	})
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n0")

	// Every push from n0 is corrupted in flight; the receiver's
	// verify-on-receipt must reject it (invariant 2).
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	settleRepl(t, nodes)

	if inj.Fired(faultinject.ReplCorrupt) == 0 {
		t.Fatal("fault never fired; test exercised nothing")
	}
	if _, ok := nodes[1].eng.PlanBytes(key); ok {
		t.Fatal("corrupted push reached the replica's store")
	}
	if snap := nodes[1].eng.Snapshot(); snap.PeerRejected == 0 {
		t.Error("peerRejected = 0, want the rejected push counted")
	}
	st := nodes[0].cl.Status()
	if st.ReplErrors == 0 || st.ReplPushes != 0 {
		t.Errorf("replErrors=%d replPushes=%d, want the 422 counted as an error, not a push", st.ReplErrors, st.ReplPushes)
	}

	// And the replica never serves it either.
	resp, err := http.Get(nodes[1].url + "/plans/" + url.PathEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /plans/{key} on the replica = %d, want 404", resp.StatusCode)
	}
}
