// Anti-entropy plan sync: a background loop that repairs the gaps
// forwarding and replication leave behind. Keys in this node's replica
// sets can be solved elsewhere — by a fallback solve while this node
// was down, by a client talking straight to a non-replica, by a
// replication push that was dropped or black-holed, or by ownership
// moving here after a peer died. The loop periodically pulls each
// peer's key manifest (GET /plans) and fetches every plan this node
// replicates but lacks, which is also how a killed-and-restarted node
// re-converges its replica sets after rejoining.
//
// The replication invariant holds here exactly as on the fill path:
// every pulled plan goes through LocalImport (Engine.ImportPlan), which
// decodes, re-derives the canonical key and fully re-verifies the plan
// before it touches a local tier. Sync converges the cluster toward
// "every replica-set member holds every plan for its keys" without
// ever trusting peer bytes.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"switchsynth/internal/faultinject"
)

// syncLoop runs syncOnce on a fixed period until Stop.
func (c *Cluster) syncLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.syncOnce(context.Background())
		}
	}
}

// syncOnce performs one anti-entropy round against every live peer and
// returns the number of plans imported. Exported to tests via
// export_test.go; production only reaches it through the loop.
func (c *Cluster) syncOnce(ctx context.Context) int {
	c.syncRounds.Add(1)
	local := make(map[string]bool)
	for _, k := range c.cfg.LocalKeys() {
		local[k] = true
	}
	pulled := 0
	for _, n := range c.ring.Members() {
		if n.ID == c.self.ID || !c.mem.alive(n.ID) {
			continue
		}
		keys, err := c.manifest(ctx, n)
		if err != nil {
			c.syncErrors.Add(1)
			c.mem.observe(n.ID, false, err.Error())
			continue
		}
		for _, key := range keys {
			if local[key] {
				continue
			}
			if !c.replicated(key) {
				continue // outside our replica sets; their members pull it
			}
			data, found, err := c.fetchFrom(ctx, n, key)
			if err != nil {
				c.syncErrors.Add(1)
				continue
			}
			if !found {
				continue // evicted between manifest and fetch
			}
			if err := c.cfg.LocalImport(key, data); err != nil {
				// Verification rejected the bytes (or a local tier
				// failed); the plan does not replicate.
				c.syncErrors.Add(1)
				continue
			}
			local[key] = true
			pulled++
			c.syncPulls.Add(1)
		}
	}
	return pulled
}

// manifest fetches n's plan-key list (GET /plans).
func (c *Cluster) manifest(ctx context.Context, n Node) ([]string, error) {
	if c.inj.LinkDown(c.self.ID, n.ID) {
		return nil, fmt.Errorf("injected: link %s->%s cut", c.self.ID, n.ID)
	}
	if c.inj.Fire(faultinject.PeerDown) {
		return nil, fmt.Errorf("injected: peer down")
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/plans", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("plans: status %d", resp.StatusCode)
	}
	var out struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxPlanBytes)).Decode(&out); err != nil {
		return nil, err
	}
	return out.Keys, nil
}
