// Shared multi-node test harness: real engines, real handlers, real
// HTTP servers on loopback listeners, wired exactly as cmd/synthd wires
// them. Background loops (probe, sync) stay off unless a test starts
// them, so membership defaults to the optimistic all-up boot state.
package cluster

import (
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/service"
	"switchsynth/internal/spec"
)

// clusterSpecVariant returns one of a family of small, fast-solving
// specs with pairwise-distinct canonical keys (the canonical key
// ignores Name, so the variants differ structurally: pin count, flow
// set, conflicts).
func clusterSpecVariant(i int) *spec.Spec {
	sp := &spec.Spec{
		Name:       fmt.Sprintf("cluster-%02d", i),
		SwitchPins: 8 + 4*(i/4), // 8, 12, 16, ... — the supported sizes
		Modules:    []string{"sample", "buffer", "mix1", "mix2"},
		Binding:    spec.Unfixed,
	}
	switch i % 4 {
	case 0:
		sp.Flows = []spec.Flow{{From: "sample", To: "mix1"}, {From: "buffer", To: "mix2"}}
		sp.Conflicts = [][2]int{{0, 1}}
	case 1:
		sp.Flows = []spec.Flow{{From: "sample", To: "mix1"}, {From: "buffer", To: "mix2"}}
	case 2:
		sp.Modules = []string{"sample", "mix1"}
		sp.Flows = []spec.Flow{{From: "sample", To: "mix1"}}
	case 3:
		sp.Modules = []string{"sample", "buffer", "rinse", "mix1", "mix2", "mix3"}
		sp.Flows = []spec.Flow{{From: "sample", To: "mix1"}, {From: "buffer", To: "mix2"}, {From: "rinse", To: "mix3"}}
		sp.Conflicts = [][2]int{{0, 1}}
	}
	return sp
}

// specOwnedBy searches the variant family for a spec whose canonical
// job key lands on ownerID under r.
func specOwnedBy(t *testing.T, r *Ring, ownerID string) (*spec.Spec, string) {
	t.Helper()
	for i := 0; i < 20; i++ {
		sp := clusterSpecVariant(i)
		key, err := service.JobKey(sp, switchsynth.Options{})
		if err != nil {
			t.Fatalf("JobKey(variant %d): %v", i, err)
		}
		if r.OwnerID(key) == ownerID {
			return sp, key
		}
	}
	t.Fatalf("no spec variant owned by %q", ownerID)
	return nil, ""
}

// testNode is one in-process synthd: engine + cluster + HTTP server.
type testNode struct {
	id  string
	url string
	eng *service.Engine
	cl  *Cluster
	srv *httptest.Server
}

// startNodes boots n nodes sharing one static peer list. mut (optional)
// customizes node i's cluster and service configs before construction;
// the harness then finishes the synthd wiring: cluster first (its
// engine callbacks late-bind), then the engine with the cluster's fill
// hook, then the middleware-wrapped server on the pre-bound listener.
// Background loops stay off: tests drive syncOnce/probeOnce directly.
func startNodes(t *testing.T, n int, mut func(i int, ccfg *Config, scfg *service.Config)) []*testNode {
	t.Helper()
	return startCluster(t, n, false, mut)
}

// startReplNodes boots n nodes with the full write-path wiring of
// cmd/synthd: each engine's OnPlanStored hook feeds the cluster's
// replication queue and the cluster's background workers (probe loop
// plus push workers) run. The anti-entropy loop still stays off so
// tests drive syncOnce deterministically.
func startReplNodes(t *testing.T, n int, mut func(i int, ccfg *Config, scfg *service.Config)) []*testNode {
	t.Helper()
	return startCluster(t, n, true, mut)
}

func startCluster(t *testing.T, n int, repl bool, mut func(i int, ccfg *Config, scfg *service.Config)) []*testNode {
	t.Helper()
	peers := make([]Node, n)
	listeners := make([]net.Listener, n)
	for i := range peers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		peers[i] = Node{ID: fmt.Sprintf("n%d", i), URL: "http://" + l.Addr().String()}
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		nodes[i] = bootNode(t, peers, listeners[i], i, repl, mut)
	}
	return nodes
}

// bootNode builds and starts one node on a pre-bound listener. It is a
// separate helper so crash tests can restart a killed node on its old
// address with a fresh (empty) engine.
func bootNode(t *testing.T, peers []Node, l net.Listener, i int, repl bool, mut func(i int, ccfg *Config, scfg *service.Config)) *testNode {
	t.Helper()
	node := &testNode{id: peers[i].ID, url: peers[i].URL}
	ccfg := Config{
		SelfID:       node.id,
		Peers:        peers,
		SyncInterval: -1, // loops off by default; tests drive syncOnce
	}
	scfg := service.Config{Workers: 2}
	if mut != nil {
		mut(i, &ccfg, &scfg)
	}
	ccfg.LocalKeys = func() []string { return node.eng.PlanKeys() }
	ccfg.LocalImport = func(key string, data []byte) error { return node.eng.ImportPlan(key, data) }
	cl, err := New(ccfg)
	if err != nil {
		t.Fatalf("cluster.New(%s): %v", node.id, err)
	}
	scfg.PeerFill = cl.FetchPlan
	if repl {
		scfg.OnPlanStored = cl.ReplicatePlan
	}
	eng := service.New(scfg)
	node.eng, node.cl = eng, cl
	h := cl.Middleware(service.NewHandlerWith(eng, service.HandlerConfig{
		ClusterStatus: func() any { return cl.Status() },
	}))
	srv := httptest.NewUnstartedServer(h)
	srv.Listener.Close()
	srv.Listener = l
	srv.Start()
	node.srv = srv
	if repl {
		cl.Start()
	}
	// Stop is safe without Start; it also hangs up the node's pooled
	// plan-stream connections so peers' serving goroutines unblock.
	t.Cleanup(cl.Stop)
	t.Cleanup(srv.Close)
	t.Cleanup(eng.CloseNow)
	return node
}

// nodeByID resolves a rank entry back to its test node.
func nodeByID(t *testing.T, nodes []*testNode, id string) *testNode {
	t.Helper()
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	t.Fatalf("no test node %q", id)
	return nil
}

// settleRepl blocks until every node's replication/repair queue has
// drained, so tests can assert on the post-push state without racing
// the async workers.
func settleRepl(t *testing.T, nodes []*testNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		pending := int64(0)
		for _, n := range nodes {
			pending += n.cl.replPending.Load()
		}
		if pending == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("replication queue never drained")
}
