// The chaos acceptance gate for replication: kill ANY single node of a
// three-node replicated cluster mid-campaign and the campaign output
// stays byte-identical — with zero re-solves of already-proven plans,
// because every plan the victim held is served from a successor's
// replica instead of being recomputed. External package for the same
// import-cycle reason as determinism_test.go.
package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"switchsynth/internal/exp"
	"switchsynth/internal/report"
)

// totalSolves sums actual solver runs across the cluster (counters stay
// readable after a node's server is killed — only its listener died).
func totalSolves(nodes []*detNode) int64 {
	var sum int64
	for _, n := range nodes {
		sum += n.eng.Snapshot().SolveCount
	}
	return sum
}

// waitReplicated blocks until every plan held anywhere in the cluster
// is present on every member of its replica set.
func waitReplicated(t *testing.T, nodes []*detNode) {
	t.Helper()
	byID := make(map[string]*detNode, len(nodes))
	for _, n := range nodes {
		byID[n.id] = n
	}
	keys := make(map[string]bool)
	for _, n := range nodes {
		for _, k := range n.eng.PlanKeys() {
			keys[k] = true
		}
	}
	if len(keys) == 0 {
		t.Fatal("no plans anywhere; the warm campaign solved nothing")
	}
	r := nodes[0].cl.Status().Replication
	deadline := time.Now().Add(10 * time.Second)
	for {
		missing := 0
		for key := range keys {
			rank := nodes[0].cl.Ring().Rank(key)
			rr := r
			if rr > len(rank) {
				rr = len(rank)
			}
			for _, member := range rank[:rr] {
				if _, ok := byID[member.ID].eng.PlanBytes(key); !ok {
					missing++
				}
			}
		}
		if missing == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication never converged: %d replica slots still empty", missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosKillAnyNodeMidCampaignZeroResolves runs the same seeded
// campaign twice against a replicated 3-node cluster — once to warm
// and replicate every plan, once with one node killed mid-run — for
// every choice of victim. The rerun must be byte-identical to a
// single-node reference AND must not re-solve a single plan: failover
// reads serve the dead node's share from its successors' replicas.
func TestChaosKillAnyNodeMidCampaignZeroResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos campaign in -short mode")
	}
	const count, seed = 12, 42
	run := func(url string) (table, stats string) {
		res := exp.RunCampaign(exp.Config{
			DaemonURL: url,
			Workers:   4,
			TimeLimit: 10 * time.Second,
		}, count, seed)
		return report.CampaignTable(res.Rows), res.Stats.DeterministicString()
	}

	single := bootNodes(t, 1, false)
	wantTable, wantStats := run(single[0].url)

	for victim := 0; victim < 3; victim++ {
		victim := victim
		t.Run(fmt.Sprintf("victim=n%d", victim), func(t *testing.T) {
			nodes := bootNodes(t, 3, true)
			// Enter through a survivor: the client targets one URL and the
			// cluster does the routing, so the entry point must outlive the
			// kill for the run to mean anything.
			entry := nodes[(victim+1)%3].url

			// Warm run: solves spread across owners, replication fans each
			// plan out to its successor.
			gotTable, gotStats := run(entry)
			if gotTable != wantTable || gotStats != wantStats {
				t.Fatalf("warm campaign not byte-identical to single-node reference:\n--- want\n%s\n--- got\n%s", wantTable, gotTable)
			}
			waitReplicated(t, nodes)
			before := totalSolves(nodes)

			// Kill the victim mid-rerun. Every plan it held has a live
			// replica, so the rerun completes identically without a single
			// additional solve.
			timer := time.AfterFunc(50*time.Millisecond, nodes[victim].srv.Close)
			defer timer.Stop()
			kTable, kStats := run(entry)
			if kTable != wantTable {
				t.Errorf("kill-n%d campaign table differs:\n--- want\n%s\n--- got\n%s", victim, wantTable, kTable)
			}
			if kStats != wantStats {
				t.Errorf("kill-n%d campaign stats differ: %q vs %q", victim, kStats, wantStats)
			}
			if after := totalSolves(nodes); after != before {
				t.Errorf("kill-n%d rerun re-solved %d plans; replicas must serve instead", victim, after-before)
			}
		})
	}
}
