// Mixed-version interop: one current node (binary wire format) peered
// with a stub speaking the pre-frame protocol — no plan-formats
// advertisement, JSON-only plan bodies, binary PUTs rejected. Every
// exchange (replication push, peer fill, anti-entropy pull) must
// degrade to JSON transparently, the old peer must never see a binary
// frame, and the new node must fully verify every byte it takes from
// the peer: the digest cache never skips verification for bytes that
// did not pass the full pipeline in this process.
package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/planio"
	"switchsynth/internal/service"
	"switchsynth/internal/spec"
)

// oldNode emulates a synthd build that predates the binary frame
// format: /readyz answers without the capability header, GET
// /plans/{key} serves stored JSON verbatim whatever the Accept header
// says, and PUT /plans/{key} rejects anything its JSON-only decoder
// cannot read — exactly what planio.Decode did before frames existed.
type oldNode struct {
	mu        sync.Mutex
	plans     map[string][]byte
	sawBinary bool // any request carried a binary frame or its content type
	srv       *httptest.Server
}

func startOldNode(t *testing.T, l net.Listener) *oldNode {
	t.Helper()
	o := &oldNode{plans: make(map[string][]byte)}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/plans", func(w http.ResponseWriter, r *http.Request) {
		o.mu.Lock()
		keys := make([]string, 0, len(o.plans))
		for k := range o.plans {
			keys = append(keys, k)
		}
		o.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Keys []string `json:"keys"`
		}{keys})
	})
	mux.HandleFunc("/plans/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/plans/")
		switch r.Method {
		case http.MethodGet:
			o.mu.Lock()
			data, ok := o.plans[key]
			o.mu.Unlock()
			if !ok {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data)
		case http.MethodPut:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, "read", http.StatusBadRequest)
				return
			}
			if planio.IsBinary(body) || r.Header.Get("Content-Type") == planio.ContentTypeBinary {
				o.mu.Lock()
				o.sawBinary = true
				o.mu.Unlock()
				http.Error(w, "cannot decode", http.StatusUnprocessableEntity)
				return
			}
			if _, err := planio.Decode(body); err != nil {
				http.Error(w, "cannot decode", http.StatusUnprocessableEntity)
				return
			}
			o.mu.Lock()
			o.plans[key] = body
			o.mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	})
	srv := httptest.NewUnstartedServer(mux)
	srv.Listener.Close()
	srv.Listener = l
	srv.Start()
	o.srv = srv
	t.Cleanup(srv.Close)
	return o
}

func (o *oldNode) get(key string) ([]byte, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	d, ok := o.plans[key]
	return d, ok
}

func (o *oldNode) put(key string, data []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.plans[key] = data
}

// jsonDonorPlan solves sp on a throwaway JSON-wire engine and returns
// the canonical key and JSON plan bytes an old node would hold.
func jsonDonorPlan(t *testing.T, sp *spec.Spec) (string, []byte) {
	t.Helper()
	donor := service.New(service.Config{Workers: 2, WireFormat: service.WireFormatJSON})
	t.Cleanup(donor.CloseNow)
	resp, err := donor.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, ok := donor.PlanBytes(resp.Key)
	if !ok {
		t.Fatal("donor holds no plan bytes")
	}
	if planio.IsBinary(data) {
		t.Fatal("JSON donor produced a binary frame")
	}
	return resp.Key, data
}

func TestMixedVersionClusterInterop(t *testing.T) {
	lNew, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lOld, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []Node{
		{ID: "new", URL: "http://" + lNew.Addr().String()},
		{ID: "old", URL: "http://" + lOld.Addr().String()},
	}
	old := startOldNode(t, lOld)

	// The new node gets a private digest cache so the hit/miss counters
	// below are this test's alone, and the full cmd/synthd replication
	// wiring (OnPlanStored -> push queue, workers running).
	node := &testNode{id: "new", url: peers[0].URL}
	ccfg := Config{
		SelfID:        "new",
		Peers:         peers,
		SyncInterval:  -1, // sync driven via syncOnce below
		ProbeInterval: time.Hour,
		Replication:   2,
		LocalKeys:     func() []string { return node.eng.PlanKeys() },
		LocalImport:   func(key string, data []byte) error { return node.eng.ImportPlan(key, data) },
	}
	cl, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := service.New(service.Config{
		Workers:         2,
		DigestCacheSize: 64,
		PeerFill:        cl.FetchPlan,
		OnPlanStored:    cl.ReplicatePlan,
	})
	node.eng, node.cl = eng, cl
	srv := httptest.NewUnstartedServer(cl.Middleware(service.NewHandler(eng)))
	srv.Listener.Close()
	srv.Listener = lNew
	srv.Start()
	node.srv = srv
	cl.Start()
	t.Cleanup(cl.Stop)
	t.Cleanup(srv.Close)
	t.Cleanup(eng.CloseNow)

	// Fill and sync both pull only keys the new node lacks and the old
	// peer holds, so sp1 and sp2 must be owned by (rank highest on) the
	// old peer — otherwise the fill walk stops at the local rank and
	// solves. sp0 (the push case) can live anywhere: replication pushes
	// to every replica-set member regardless of rank.
	var oldOwned []*spec.Spec
	for i := 0; i < 20 && len(oldOwned) < 2; i++ {
		sp := clusterSpecVariant(i)
		key, err := service.JobKey(sp, switchsynth.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if cl.Ring().OwnerID(key) == "old" {
			oldOwned = append(oldOwned, sp)
		}
	}
	if len(oldOwned) < 2 {
		t.Fatal("no two spec variants owned by the old peer")
	}
	sp1, sp2 := oldOwned[0], oldOwned[1]
	sp0, _ := specOwnedBy(t, cl.Ring(), "new")

	// --- Replication push: a fresh solve pushes to the old peer, and the
	// binary frame is transcoded to JSON on the way out.
	resp0, err := eng.Do(context.Background(), sp0, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	settleRepl(t, []*testNode{node})

	localBytes, ok := eng.PlanBytes(resp0.Key)
	if !ok || !planio.IsBinary(localBytes) {
		t.Fatalf("new node plan present=%v binary=%v, want true/true", ok, planio.IsBinary(localBytes))
	}
	oldBytes, ok := old.get(resp0.Key)
	if !ok {
		t.Fatal("push never reached the old peer")
	}
	if planio.IsBinary(oldBytes) {
		t.Fatal("old peer stored a binary frame")
	}
	wantJSON, err := planio.ToJSON(localBytes)
	if err != nil {
		t.Fatal(err)
	}
	if string(oldBytes) != string(wantJSON) {
		t.Error("old peer's JSON differs from the canonical transcode of the owner's frame")
	}
	st := cl.Status()
	if st.PushTranscodes != 1 || st.ReplPushes != 1 || st.ReplErrors != 0 {
		t.Errorf("pushTranscodes=%d replPushes=%d replErrors=%d, want 1/1/0",
			st.PushTranscodes, st.ReplPushes, st.ReplErrors)
	}
	// The lazy capability probe recorded the old peer as JSON-only.
	for _, ps := range st.Peers {
		if ps.ID == "old" && ps.PlanFormats != "json" {
			t.Errorf("old peer planFormats = %q, want json", ps.PlanFormats)
		}
	}

	// --- Peer fill: a plan only the old peer holds is fetched as JSON
	// and fully verified before it is served (no solve, no digest skip).
	key1, json1 := jsonDonorPlan(t, sp1)
	old.put(key1, json1)
	// Only keys the ring routes to the old peer are fetched from it; with
	// R=2 and two members every key has both nodes in its replica set, so
	// the fill walk always reaches the old peer when the new node lacks
	// the plan.
	resp1, err := eng.Do(context.Background(), sp1, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp1.PeerHit {
		t.Fatal("fill from the old peer did not hit")
	}
	snap := eng.Snapshot()
	if snap.SolveCount != 1 { // sp0 only
		t.Errorf("solveCount = %d, want 1 (the fill must not re-solve)", snap.SolveCount)
	}

	// --- Anti-entropy: a plan appearing on the old peer out of band is
	// pulled, verified, and installed.
	key2, json2 := jsonDonorPlan(t, sp2)
	old.put(key2, json2)
	if pulled := cl.syncOnce(context.Background()); pulled != 1 {
		t.Fatalf("syncOnce pulled %d plans, want 1", pulled)
	}
	if _, ok := eng.PlanBytes(key2); !ok {
		t.Fatal("anti-entropy pull not installed")
	}

	// --- Invariants across all three exchanges.
	if old.sawBinary {
		t.Error("old peer received a binary frame or binary content type")
	}
	snap = eng.Snapshot()
	if snap.DigestCacheHits != 0 {
		t.Errorf("digestCacheHits = %d, want 0 — peer bytes were never seen before and must be fully verified", snap.DigestCacheHits)
	}
	if snap.PeerRejected != 0 {
		t.Errorf("peerRejected = %d, want 0", snap.PeerRejected)
	}
	if snap.PeerImported != 1 {
		t.Errorf("peerImported = %d, want 1 (the sync pull)", snap.PeerImported)
	}
	st = cl.Status()
	if st.SyncPulls != 1 || st.SyncErrors != 0 || st.FillHits != 1 {
		t.Errorf("syncPulls=%d syncErrors=%d fillHits=%d, want 1/0/1", st.SyncPulls, st.SyncErrors, st.FillHits)
	}

	// Every plan the new node now serves decodes and verifies, whatever
	// wire format it arrived in.
	for _, key := range []string{resp0.Key, key1, key2} {
		data, ok := eng.PlanBytes(key)
		if !ok {
			t.Fatalf("plan %s missing", key)
		}
		res, err := planio.DecodeAny(data)
		if err != nil {
			t.Fatalf("plan %s does not decode: %v", key, err)
		}
		if err := switchsynth.Verify(res); err != nil {
			t.Fatalf("plan %s fails verification: %v", key, err)
		}
	}
}
