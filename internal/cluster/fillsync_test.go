// Peer cache fill and anti-entropy sync, including the chaos cases the
// replication invariant exists for: corrupted bytes from a peer must
// never be served or stored, only cost a redundant (and bit-identical)
// local solve.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/faultinject"
	"switchsynth/internal/service"
)

func TestPeerFillServesVerifiedPlan(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n0")

	// Owner solves first; the plan now lives only on n0.
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}

	// n1 misses memory and disk, fetches from the owner, re-verifies,
	// and serves without solving.
	resp, err := nodes[1].eng.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.PeerHit || !resp.CacheHit {
		t.Errorf("peerHit=%v cacheHit=%v, want true/true", resp.PeerHit, resp.CacheHit)
	}
	if err := switchsynth.Verify(resp.Synthesis.Result); err != nil {
		t.Fatalf("peer-filled plan failed verification: %v", err)
	}
	snap := nodes[1].eng.Snapshot()
	if snap.PeerHits != 1 || snap.SolveCount != 0 {
		t.Errorf("peerHits=%d solveCount=%d, want 1/0 (no local solve)", snap.PeerHits, snap.SolveCount)
	}
	if st := nodes[1].cl.Status(); st.FillHits != 1 {
		t.Errorf("fillHits = %d, want 1", st.FillHits)
	}

	// The fill wrote through: both nodes now hold identical plan bytes.
	a, okA := nodes[0].eng.PlanBytes(key)
	b, okB := nodes[1].eng.PlanBytes(key)
	if !okA || !okB {
		t.Fatalf("plan bytes present: owner=%v filler=%v, want both", okA, okB)
	}
	if !bytes.Equal(a, b) {
		t.Error("peer-filled plan bytes differ from the owner's")
	}
}

func TestPeerFillMissFallsThroughToSolve(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, _ := specOwnedBy(t, nodes[0].cl.Ring(), "n0")

	// Owner has nothing: n1's fill is a clean miss and n1 solves.
	resp, err := nodes[1].eng.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PeerHit || resp.CacheHit {
		t.Errorf("peerHit=%v cacheHit=%v, want cold solve", resp.PeerHit, resp.CacheHit)
	}
	snap := nodes[1].eng.Snapshot()
	if snap.PeerMisses != 1 || snap.SolveCount != 1 {
		t.Errorf("peerMisses=%d solveCount=%d, want 1/1", snap.PeerMisses, snap.SolveCount)
	}
}

func TestCorruptFetchNeverServedOrStored(t *testing.T) {
	var inj *faultinject.Injector
	nodes := startNodes(t, 2, func(i int, ccfg *Config, scfg *service.Config) {
		if i == 1 {
			inj = faultinject.New(7).Set(faultinject.FetchCorrupt, faultinject.Rule{Probability: 1})
			ccfg.FaultInjector = inj
		}
	})
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n0")
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}

	// Every fetched byte stream is corrupted; n1 must reject the plan
	// and fall back to solving — the request still succeeds.
	resp, err := nodes[1].eng.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PeerHit {
		t.Fatal("corrupted fetch served as a peer hit")
	}
	if err := switchsynth.Verify(resp.Synthesis.Result); err != nil {
		t.Fatalf("plan failed verification after corrupt-fetch fallback: %v", err)
	}
	if inj.Fired(faultinject.FetchCorrupt) == 0 {
		t.Fatal("fault never fired; test exercised nothing")
	}
	snap := nodes[1].eng.Snapshot()
	if snap.PeerRejected == 0 {
		t.Error("peerRejected = 0, want the corrupted plan counted")
	}
	if snap.SolveCount != 1 {
		t.Errorf("solveCount = %d, want 1 (local fallback solve)", snap.SolveCount)
	}

	// Determinism makes the fallback solve bit-identical to the owner's.
	a, _ := nodes[0].eng.PlanBytes(key)
	b, okB := nodes[1].eng.PlanBytes(key)
	if !okB {
		t.Fatal("fallback solve not stored locally")
	}
	if !bytes.Equal(a, b) {
		t.Error("locally solved plan differs from the owner's — determinism broken")
	}
}

// TestFetchPlanErrorWrapsPeerAndCause pins the fill error contract:
// the returned error names the failing peer and the key, and wraps the
// underlying cause with %w so callers can match it with errors.Is
// through the cluster layer.
func TestFetchPlanErrorWrapsPeerAndCause(t *testing.T) {
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // never answer; the fetch timeout must fire
	}))
	defer hung.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // the port now refuses connections

	tests := []struct {
		name    string
		peerURL string
		want    error
	}{
		{"deadline exceeded", hung.URL, context.DeadlineExceeded},
		{"connection refused", dead.URL, syscall.ECONNREFUSED},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cl, err := New(Config{
				SelfID: "self",
				Peers: []Node{
					{ID: "self", URL: "http://127.0.0.1:1"},
					{ID: "peer-a", URL: tc.peerURL},
				},
				FetchTimeout: 50 * time.Millisecond,
				SyncInterval: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Pick a key the peer outranks self for, so the walk tries it.
			key := ""
			for i := 0; i < 100 && key == ""; i++ {
				if k := fmt.Sprintf("key-%d", i); cl.Ring().OwnerID(k) == "peer-a" {
					key = k
				}
			}
			if key == "" {
				t.Fatal("no key owned by peer-a in 100 tries")
			}
			_, err = cl.FetchPlan(context.Background(), key)
			if err == nil {
				t.Fatal("FetchPlan returned nil error for an unreachable peer")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("errors.Is(%v, %v) = false; the cause must survive the wrap", err, tc.want)
			}
			if !strings.Contains(err.Error(), "peer-a") {
				t.Errorf("error %q does not name the failing peer", err)
			}
			if !strings.Contains(err.Error(), key) {
				t.Errorf("error %q does not name the key", err)
			}
		})
	}
}

func TestAntiEntropyPullsOwnedKeys(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n1")

	// n0 solved a key n1 owns (a fallback solve while n1 was down, say).
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := nodes[1].eng.PlanBytes(key); ok {
		t.Fatal("n1 already has the plan; test setup broken")
	}

	pulled := nodes[1].cl.syncOnce(context.Background())
	if pulled != 1 {
		t.Fatalf("syncOnce pulled %d plans, want 1", pulled)
	}
	a, _ := nodes[0].eng.PlanBytes(key)
	b, ok := nodes[1].eng.PlanBytes(key)
	if !ok || !bytes.Equal(a, b) {
		t.Fatalf("synced plan present=%v identical=%v, want true/true", ok, bytes.Equal(a, b))
	}
	if snap := nodes[1].eng.Snapshot(); snap.PeerImported != 1 {
		t.Errorf("peerImported = %d, want 1", snap.PeerImported)
	}

	// A second round is a no-op: the manifest diff is empty.
	if pulled := nodes[1].cl.syncOnce(context.Background()); pulled != 0 {
		t.Errorf("second syncOnce pulled %d, want 0", pulled)
	}

	// n0 is in the key's replica set (2-node R=2) but already holds the
	// plan, so its round pulls nothing either.
	if pulled := nodes[0].cl.syncOnce(context.Background()); pulled != 0 {
		t.Errorf("already-holding replica syncOnce pulled %d, want 0", pulled)
	}
}

func TestAntiEntropyRejectsCorruptPlans(t *testing.T) {
	var inj *faultinject.Injector
	nodes := startNodes(t, 2, func(i int, ccfg *Config, scfg *service.Config) {
		if i == 1 {
			inj = faultinject.New(11).Set(faultinject.FetchCorrupt, faultinject.Rule{Probability: 1})
			ccfg.FaultInjector = inj
		}
	})
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n1")
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}

	if pulled := nodes[1].cl.syncOnce(context.Background()); pulled != 0 {
		t.Fatalf("syncOnce imported %d corrupted plans, want 0", pulled)
	}
	if inj.Fired(faultinject.FetchCorrupt) == 0 {
		t.Fatal("fault never fired; test exercised nothing")
	}
	if _, ok := nodes[1].eng.PlanBytes(key); ok {
		t.Fatal("corrupted plan reached the local store")
	}
	if st := nodes[1].cl.Status(); st.SyncErrors == 0 {
		t.Error("syncErrors = 0, want the rejected import counted")
	}
	if snap := nodes[1].eng.Snapshot(); snap.PeerRejected == 0 {
		t.Error("peerRejected = 0, want the rejected import counted")
	}
}
