package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers(" b=http://h2:1/ , a=http://h1:1 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{{ID: "a", URL: "http://h1:1"}, {ID: "b", URL: "http://h2:1"}}
	if !reflect.DeepEqual(nodes, want) {
		t.Errorf("ParsePeers = %+v, want %+v (ID-sorted, slash-trimmed)", nodes, want)
	}
	if nodes, err := ParsePeers(""); err != nil || nodes != nil {
		t.Errorf("empty list: got %v, %v; want nil, nil", nodes, err)
	}
	for _, bad := range []string{"a", "a=", "=http://h:1", "a=http://h:1,a=http://h:2"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q): expected error", bad)
		}
	}
}

func TestRingRankTotalAndDeterministic(t *testing.T) {
	r := NewRing([]Node{{ID: "c"}, {ID: "a"}, {ID: "b"}})
	owned := map[string]int{}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("key-%d", i)
		rank := r.Rank(key)
		if len(rank) != 3 {
			t.Fatalf("Rank(%q) has %d entries, want 3", key, len(rank))
		}
		seen := map[string]bool{}
		for _, n := range rank {
			seen[n.ID] = true
		}
		if len(seen) != 3 {
			t.Fatalf("Rank(%q) = %v contains duplicates", key, rank)
		}
		if again := r.Rank(key); !reflect.DeepEqual(rank, again) {
			t.Fatalf("Rank(%q) not deterministic: %v vs %v", key, rank, again)
		}
		owned[rank[0].ID]++
	}
	// Rendezvous should spread ownership; with 60 keys over 3 nodes an
	// empty node means the hash is broken, not unlucky.
	for _, id := range []string{"a", "b", "c"} {
		if owned[id] == 0 {
			t.Errorf("node %s owns no keys out of 60: distribution %v", id, owned)
		}
	}
}

// TestRingMinimalDisruption checks the property rendezvous hashing is
// chosen for: removing one member moves only the keys it owned, each to
// its next-ranked node, and no other key changes owner.
func TestRingMinimalDisruption(t *testing.T) {
	full := NewRing([]Node{{ID: "a"}, {ID: "b"}, {ID: "c"}})
	reduced := NewRing([]Node{{ID: "a"}, {ID: "b"}})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		rank := full.Rank(key)
		want := rank[0].ID
		if want == "c" {
			want = rank[1].ID // c's keys move to their second preference
		}
		if got := reduced.OwnerID(key); got != want {
			t.Errorf("key %q: owner moved %s → %s after removing c (rank %v)",
				key, want, got, rank)
		}
	}
}
