// Package cluster turns a set of independent synthd nodes into a
// consistent-hash sharded cluster with no external dependencies and no
// coordinator: a static peer list, rendezvous hashing for ownership
// (ring.go), health-probed membership with flap damping
// (membership.go), request forwarding with local fallback (proxy.go),
// peer cache fill (FetchPlan below) and background anti-entropy plan
// sync (sync.go).
//
// The design invariants, in priority order:
//
//  1. Never fail a request a single node could have served. Every
//     cluster path — forwarding, peer fill, sync — degrades to "solve
//     it locally" on any error. A fully partitioned node behaves
//     exactly like a single-node synthd.
//  2. Only proven plans propagate. Every plan that crosses a node
//     boundary is re-verified by the receiver (decode, Proven flag,
//     canonical-key re-derivation, full contamination verification)
//     before it is served or stored. A corrupt or malicious peer can
//     cost a redundant solve, never a wrong answer.
//  3. Determinism is topology-independent. The solver produces
//     bit-identical plans at any worker count, so a plan is the same
//     bytes whether solved locally, by the owner, or recovered from a
//     dead node's replica — clients cannot tell which node solved.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"switchsynth/internal/faultinject"
)

// Defaults; each is overridable via Config.
const (
	defaultProbeInterval = 2 * time.Second
	defaultProbeTimeout  = 1 * time.Second
	defaultSyncInterval  = 15 * time.Second
	defaultFetchTimeout  = 5 * time.Second
	defaultMaxHops       = 2

	// maxPlanBytes bounds a fetched plan; real plans are tens of KB.
	maxPlanBytes = 8 << 20
)

// Config wires a Cluster to its node list and to the local engine.
type Config struct {
	// SelfID is this node's ID; it must appear in Peers.
	SelfID string
	// Peers is the full static member list, self included.
	Peers []Node

	// ProbeInterval is the period of the /readyz health-probe loop;
	// ProbeTimeout bounds each probe round trip.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// SyncInterval is the period of the anti-entropy loop; < 0 disables
	// it (0 means default).
	SyncInterval time.Duration
	// FetchTimeout bounds one peer plan fetch.
	FetchTimeout time.Duration
	// MaxHops caps forwarding chains (see proxy.go); 0 means default.
	MaxHops int
	// UpAfter/DownAfter are the flap-damping streak thresholds
	// (membership.go); 0 means default.
	UpAfter   int
	DownAfter int

	// HTTPClient performs all peer traffic; nil uses a private client
	// with sane timeouts.
	HTTPClient *http.Client
	// FaultInjector, when non-nil, lets chaos tests break peer traffic
	// (PeerDown, PeerSlow, FetchCorrupt). Nil in production.
	FaultInjector *faultinject.Injector

	// LocalKeys returns the canonical keys of every plan held locally;
	// LocalImport verifies and stores one fetched plan. Both are
	// engine callbacks (Engine.PlanKeys / Engine.ImportPlan) passed as
	// plain funcs so the service layer never imports cluster.
	LocalKeys   func() []string
	LocalImport func(key string, data []byte) error
}

// Cluster is one node's view of the sharded deployment.
type Cluster struct {
	self Node
	ring *Ring
	mem  *membership
	hc   *http.Client
	// streamHC shares hc's transport but has no whole-request timeout:
	// forwarded streaming solves (?wait=proof, /synthesize/stream/) run
	// as long as the solve does, bounded by the watcher's own context.
	streamHC *http.Client
	inj      *faultinject.Injector
	cfg      Config

	stop chan struct{}
	wg   sync.WaitGroup

	// Counters for /cluster and /metrics.
	forwards         atomic.Int64 // requests proxied to the owner
	forwardFallbacks atomic.Int64 // forwards that fell back to local solve
	localServes      atomic.Int64 // /synthesize served locally (owner or fallback)
	fillHits         atomic.Int64 // peer fills that returned plan bytes
	fillMisses       atomic.Int64 // peer fills answered 404 (owner lacks it)
	fillErrors       atomic.Int64 // peer fills that failed in transit
	syncRounds       atomic.Int64
	syncPulls        atomic.Int64 // plans imported by anti-entropy
	syncErrors       atomic.Int64
	probes           atomic.Int64
}

// New validates cfg and builds the cluster (probe and sync loops start
// with Start). An empty peer list (or a list containing only self) is
// valid and yields a single-node cluster whose middleware and fill hook
// are pass-through.
func New(cfg Config) (*Cluster, error) {
	if cfg.SelfID == "" {
		return nil, fmt.Errorf("cluster: SelfID is required")
	}
	var self *Node
	for i := range cfg.Peers {
		if cfg.Peers[i].ID == cfg.SelfID {
			self = &cfg.Peers[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: SelfID %q not in peer list", cfg.SelfID)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = defaultProbeTimeout
	}
	if cfg.SyncInterval == 0 {
		cfg.SyncInterval = defaultSyncInterval
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = defaultFetchTimeout
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = defaultMaxHops
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Cluster{
		self:     *self,
		ring:     NewRing(cfg.Peers),
		mem:      newMembership(cfg.SelfID, cfg.Peers, cfg.UpAfter, cfg.DownAfter),
		hc:       hc,
		streamHC: &http.Client{Transport: hc.Transport},
		inj:      cfg.FaultInjector,
		cfg:      cfg,
		stop:     make(chan struct{}),
	}, nil
}

// SelfID returns this node's ID.
func (c *Cluster) SelfID() string { return c.self.ID }

// Ring exposes the ownership ring (for the owner-routing client).
func (c *Cluster) Ring() *Ring { return c.ring }

// Start launches the probe loop and, unless disabled, the anti-entropy
// loop. Stop must be called exactly once after a successful Start.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go c.probeLoop()
	if c.cfg.SyncInterval > 0 && c.cfg.LocalKeys != nil && c.cfg.LocalImport != nil {
		c.wg.Add(1)
		go c.syncLoop()
	}
}

// Stop halts the background loops and waits for them to exit.
func (c *Cluster) Stop() {
	close(c.stop)
	c.wg.Wait()
}

// Owner returns key's highest-ranked *alive* node and whether that is
// the local node. With every preferred peer down the local node answers
// for the whole keyspace (invariant 1: a partitioned node is a working
// single node).
func (c *Cluster) Owner(key string) (Node, bool) {
	for _, n := range c.ring.Rank(key) {
		if n.ID == c.self.ID {
			return n, true
		}
		if c.mem.alive(n.ID) {
			return n, false
		}
	}
	return c.self, true
}

// probeLoop hits every peer's /readyz on a fixed period, feeding the
// flap-damped state machines. The first round runs immediately so a
// dead peer at boot is detected within DownAfter probes, not
// DownAfter+1 intervals.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		c.probeOnce()
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
	}
}

// probeOnce probes every non-self peer sequentially (peer lists are
// small; a hung peer is bounded by ProbeTimeout).
func (c *Cluster) probeOnce() {
	for _, n := range c.ring.Members() {
		if n.ID == c.self.ID {
			continue
		}
		c.probes.Add(1)
		err := c.probe(n)
		if err != nil {
			c.mem.observe(n.ID, false, err.Error())
		} else {
			c.mem.observe(n.ID, true, "")
		}
	}
}

// probe performs one /readyz round trip. A 503 (draining) counts as
// down: the peer is alive but asking not to be routed to.
func (c *Cluster) probe(n Node) error {
	if c.inj.Fire(faultinject.PeerDown) {
		return fmt.Errorf("injected: peer down")
	}
	c.inj.Fire(faultinject.PeerSlow)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: status %d", resp.StatusCode)
	}
	return nil
}

// FetchPlan is the engine's peer-fill hook (service.Config.PeerFill):
// on a local memory+disk miss it asks key's owner for the plan bytes
// before solving. Returns (nil, nil) — a clean miss that falls through
// to the local solve — when the local node owns the key, the owner is
// down, or the owner does not have the plan. The engine re-verifies
// whatever comes back; this function only moves bytes.
func (c *Cluster) FetchPlan(ctx context.Context, key string) ([]byte, error) {
	owner, self := c.Owner(key)
	if self {
		return nil, nil
	}
	data, found, err := c.fetchFrom(ctx, owner, key)
	if err != nil {
		c.fillErrors.Add(1)
		c.mem.observe(owner.ID, false, err.Error())
		return nil, err
	}
	if !found {
		c.fillMisses.Add(1)
		return nil, nil
	}
	c.fillHits.Add(1)
	return data, nil
}

// fetchFrom GETs /plans/{key} from n. found is false on 404 (the peer
// does not have the plan — not an error, not evidence of ill health).
func (c *Cluster) fetchFrom(ctx context.Context, n Node, key string) (data []byte, found bool, err error) {
	if c.inj.Fire(faultinject.PeerDown) {
		return nil, false, fmt.Errorf("injected: peer down")
	}
	c.inj.Fire(faultinject.PeerSlow)
	ctx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/plans/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("plans/%s: status %d", key, resp.StatusCode)
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, maxPlanBytes+1))
	if err != nil {
		return nil, false, err
	}
	if len(data) > maxPlanBytes {
		return nil, false, fmt.Errorf("plans/%s: plan exceeds %d bytes", key, maxPlanBytes)
	}
	if len(data) > 0 && c.inj.Fire(faultinject.FetchCorrupt) {
		// Flip one byte mid-payload; the receiver's re-verification must
		// reject the plan (invariant 2).
		data[len(data)/2] ^= 0x40
	}
	return data, true, nil
}

// Status is the /cluster endpoint's payload: ownership scheme, the
// damped health of every peer, and the node's cluster counters.
type Status struct {
	Self    string `json:"self"`
	Hash    string `json:"hash"`
	MaxHops int    `json:"maxHops"`

	// Peers lists every member ID-sorted, self included (self is always
	// up and never probed).
	Peers []PeerStatus `json:"peers"`

	Forwards         int64 `json:"forwards"`
	ForwardFallbacks int64 `json:"forwardFallbacks"`
	LocalServes      int64 `json:"localServes"`
	FillHits         int64 `json:"fillHits"`
	FillMisses       int64 `json:"fillMisses"`
	FillErrors       int64 `json:"fillErrors"`
	SyncRounds       int64 `json:"syncRounds"`
	SyncPulls        int64 `json:"syncPulls"`
	SyncErrors       int64 `json:"syncErrors"`
	Probes           int64 `json:"probes"`
}

// Status snapshots the cluster's externally visible state.
func (c *Cluster) Status() Status {
	health := c.mem.snapshot()
	peers := make([]PeerStatus, 0, len(c.ring.members))
	for _, n := range c.ring.Members() {
		if n.ID == c.self.ID {
			peers = append(peers, PeerStatus{ID: n.ID, URL: n.URL, Self: true, Up: true})
			continue
		}
		if ps, ok := health[n.ID]; ok {
			peers = append(peers, ps)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return Status{
		Self:             c.self.ID,
		Hash:             HashScheme,
		MaxHops:          c.cfg.MaxHops,
		Peers:            peers,
		Forwards:         c.forwards.Load(),
		ForwardFallbacks: c.forwardFallbacks.Load(),
		LocalServes:      c.localServes.Load(),
		FillHits:         c.fillHits.Load(),
		FillMisses:       c.fillMisses.Load(),
		FillErrors:       c.fillErrors.Load(),
		SyncRounds:       c.syncRounds.Load(),
		SyncPulls:        c.syncPulls.Load(),
		SyncErrors:       c.syncErrors.Load(),
		Probes:           c.probes.Load(),
	}
}

// writeJSON is the package's minimal response helper.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
