// Package cluster turns a set of independent synthd nodes into a
// consistent-hash sharded cluster with no external dependencies and no
// coordinator: a static peer list, rendezvous hashing for ownership
// (ring.go), health-probed membership with flap damping
// (membership.go), request forwarding with local fallback (proxy.go),
// peer cache fill (FetchPlan below) and background anti-entropy plan
// sync (sync.go).
//
// The design invariants, in priority order:
//
//  1. Never fail a request a single node could have served. Every
//     cluster path — forwarding, peer fill, sync — degrades to "solve
//     it locally" on any error. A fully partitioned node behaves
//     exactly like a single-node synthd.
//  2. Only proven plans propagate. Every plan that crosses a node
//     boundary is re-verified by the receiver (decode, Proven flag,
//     canonical-key re-derivation, full contamination verification)
//     before it is served or stored. A corrupt or malicious peer can
//     cost a redundant solve, never a wrong answer.
//  3. Determinism is topology-independent. The solver produces
//     bit-identical plans at any worker count, so a plan is the same
//     bytes whether solved locally, by the owner, or recovered from a
//     dead node's replica — clients cannot tell which node solved.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"switchsynth/internal/faultinject"
)

// Defaults; each is overridable via Config.
const (
	defaultProbeInterval = 2 * time.Second
	defaultProbeTimeout  = 1 * time.Second
	defaultSyncInterval  = 15 * time.Second
	defaultFetchTimeout  = 5 * time.Second
	defaultMaxHops       = 2
	defaultReplication   = 2

	// maxPlanBytes bounds a fetched plan; real plans are tens of KB.
	maxPlanBytes = 8 << 20

	// probeFanout bounds concurrent probes per round: enough to overlap
	// the timeouts of several hung peers without opening a connection
	// per member on large rings.
	probeFanout = 4
)

// Config wires a Cluster to its node list and to the local engine.
type Config struct {
	// SelfID is this node's ID; it must appear in Peers.
	SelfID string
	// Peers is the full static member list, self included.
	Peers []Node

	// ProbeInterval is the period of the /readyz health-probe loop;
	// ProbeTimeout bounds each probe round trip.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// SyncInterval is the period of the anti-entropy loop; < 0 disables
	// it (0 means default).
	SyncInterval time.Duration
	// FetchTimeout bounds one peer plan fetch.
	FetchTimeout time.Duration
	// MaxHops caps forwarding chains (see proxy.go); 0 means default.
	MaxHops int
	// Replication is the replica-set size R: every plan lives on the
	// first R nodes of its key's rendezvous ranking (replicate.go).
	// 0 means default (2); values above the cluster size are clamped to
	// it; 1 disables replication and reproduces the single-owner
	// behaviour.
	Replication int
	// UpAfter/DownAfter are the flap-damping streak thresholds
	// (membership.go); 0 means default.
	UpAfter   int
	DownAfter int

	// HTTPClient performs all peer traffic; nil uses a private client
	// with sane timeouts.
	HTTPClient *http.Client
	// FaultInjector, when non-nil, lets chaos tests break peer traffic
	// (PeerDown, PeerSlow, FetchCorrupt). Nil in production.
	FaultInjector *faultinject.Injector

	// LocalKeys returns the canonical keys of every plan held locally;
	// LocalImport verifies and stores one fetched plan. Both are
	// engine callbacks (Engine.PlanKeys / Engine.ImportPlan) passed as
	// plain funcs so the service layer never imports cluster.
	LocalKeys   func() []string
	LocalImport func(key string, data []byte) error
}

// Cluster is one node's view of the sharded deployment.
type Cluster struct {
	self Node
	ring *Ring
	mem  *membership
	hc   *http.Client
	// streamHC shares hc's transport but has no whole-request timeout:
	// forwarded streaming solves (?wait=proof, /synthesize/stream/) run
	// as long as the solve does, bounded by the watcher's own context.
	streamHC *http.Client
	inj      *faultinject.Injector
	cfg      Config

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// replq carries asynchronous replication and read-repair pushes
	// (replicate.go); replPending tracks enqueued-but-unfinished tasks
	// so tests can wait for the queue to settle.
	replq       chan replTask
	replPending atomic.Int64

	// streams pools the persistent plan-fetch channels (planstream.go).
	streams *planStreams

	// Counters for /cluster and /metrics.
	forwards         atomic.Int64 // requests proxied to the owner
	forwardFallbacks atomic.Int64 // forwards that fell back to local solve
	forwardFailovers atomic.Int64 // forwards served by a successor, not the owner
	localServes      atomic.Int64 // /synthesize served locally (owner or fallback)
	fillHits         atomic.Int64 // peer fills that returned plan bytes
	fillMisses       atomic.Int64 // peer fills answered 404 (peer lacks it)
	fillErrors       atomic.Int64 // peer fills that failed in transit
	fillFailovers    atomic.Int64 // peer fills served by a successor, not the owner
	streamFetches    atomic.Int64 // fetches served over the persistent plan stream
	streamDials      atomic.Int64 // plan-stream upgrade attempts (success or not)
	replPushes       atomic.Int64 // write-time replica pushes delivered
	replErrors       atomic.Int64 // replica/repair pushes that failed or were rejected
	replDropped      atomic.Int64 // pushes dropped because the queue was full
	repairPushes     atomic.Int64 // read-repair pushes delivered
	pushTranscodes   atomic.Int64 // binary pushes transcoded to JSON for old peers
	syncRounds       atomic.Int64
	syncPulls        atomic.Int64 // plans imported by anti-entropy
	syncErrors       atomic.Int64
	probes           atomic.Int64
}

// New validates cfg and builds the cluster (probe and sync loops start
// with Start). An empty peer list (or a list containing only self) is
// valid and yields a single-node cluster whose middleware and fill hook
// are pass-through.
func New(cfg Config) (*Cluster, error) {
	if cfg.SelfID == "" {
		return nil, fmt.Errorf("cluster: SelfID is required")
	}
	var self *Node
	for i := range cfg.Peers {
		if cfg.Peers[i].ID == cfg.SelfID {
			self = &cfg.Peers[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: SelfID %q not in peer list", cfg.SelfID)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = defaultProbeTimeout
	}
	if cfg.SyncInterval == 0 {
		cfg.SyncInterval = defaultSyncInterval
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = defaultFetchTimeout
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = defaultMaxHops
	}
	if cfg.Replication <= 0 {
		cfg.Replication = defaultReplication
	}
	if cfg.Replication > len(cfg.Peers) {
		cfg.Replication = len(cfg.Peers)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Cluster{
		self:     *self,
		ring:     NewRing(cfg.Peers),
		mem:      newMembership(cfg.SelfID, cfg.Peers, cfg.UpAfter, cfg.DownAfter),
		hc:       hc,
		streamHC: &http.Client{Transport: hc.Transport},
		inj:      cfg.FaultInjector,
		cfg:      cfg,
		replq:    make(chan replTask, replQueueDepth),
		streams:  newPlanStreams(),
		stop:     make(chan struct{}),
	}, nil
}

// SelfID returns this node's ID.
func (c *Cluster) SelfID() string { return c.self.ID }

// Ring exposes the ownership ring (for the owner-routing client).
func (c *Cluster) Ring() *Ring { return c.ring }

// Start launches the probe loop, the replication push workers and,
// unless disabled, the anti-entropy loop. Call Stop after a successful
// Start.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go c.probeLoop()
	for i := 0; i < replWorkers; i++ {
		c.wg.Add(1)
		go c.replLoop()
	}
	if c.cfg.SyncInterval > 0 && c.cfg.LocalKeys != nil && c.cfg.LocalImport != nil {
		c.wg.Add(1)
		go c.syncLoop()
	}
}

// Stop halts the background loops and waits for them to exit. It is
// idempotent: a crash test that kills a node and a deferred cleanup may
// both call it.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	// Hang up the persistent fetch channels so the peers' stream-serving
	// goroutines unblock; safe (and useful) even if Start never ran.
	c.streams.closeAll()
}

// Owner returns key's highest-ranked *alive* node and whether that is
// the local node. With every preferred peer down the local node answers
// for the whole keyspace (invariant 1: a partitioned node is a working
// single node).
func (c *Cluster) Owner(key string) (Node, bool) {
	for _, n := range c.ring.Rank(key) {
		if n.ID == c.self.ID {
			return n, true
		}
		if c.mem.alive(n.ID) {
			return n, false
		}
	}
	return c.self, true
}

// probeLoop hits every peer's /readyz on a jittered period, feeding the
// flap-damped state machines. The first round runs immediately so a
// dead peer at boot is detected within DownAfter probes, not
// DownAfter+1 intervals. The ±20% jitter keeps a fleet that was
// restarted together from probing in lockstep forever.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	for {
		c.probeOnce()
		t := time.NewTimer(jitterInterval(c.cfg.ProbeInterval))
		select {
		case <-c.stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// jitterInterval spreads d uniformly over [0.8d, 1.2d).
func jitterInterval(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}

// probeOnce probes every non-self peer concurrently with a bounded
// fan-out, so one hung peer costs ProbeTimeout for its slot, not for
// the whole round.
func (c *Cluster) probeOnce() {
	sem := make(chan struct{}, probeFanout)
	var wg sync.WaitGroup
	for _, n := range c.ring.Members() {
		if n.ID == c.self.ID {
			continue
		}
		c.probes.Add(1)
		sem <- struct{}{}
		wg.Add(1)
		go func(n Node) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := c.probe(n); err != nil {
				c.mem.observe(n.ID, false, err.Error())
			} else {
				c.mem.observe(n.ID, true, "")
			}
		}(n)
	}
	wg.Wait()
}

// probe performs one /readyz round trip. A 503 (draining) counts as
// down: the peer is alive but asking not to be routed to.
func (c *Cluster) probe(n Node) error {
	if c.inj.LinkDown(c.self.ID, n.ID) {
		return fmt.Errorf("injected: link %s->%s cut", c.self.ID, n.ID)
	}
	if c.inj.Fire(faultinject.PeerDown) {
		return fmt.Errorf("injected: peer down")
	}
	c.inj.Fire(faultinject.PeerSlow)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: status %d", resp.StatusCode)
	}
	// An answering peer also tells us which plan encodings it accepts;
	// replication pushes consult this to decide between sending binary
	// frames verbatim and transcoding to JSON for older nodes.
	c.mem.setFormats(n.ID, resp.Header.Get(planFormatsHeader))
	return nil
}

// FetchPlan is the engine's peer-fill hook (service.Config.PeerFill):
// on a local memory+disk miss it walks key's replica set in rank order
// — owner first, then successors, up to Replication live candidates —
// asking each for the plan bytes before solving. A candidate that is
// down by membership or fails in transit is skipped (failover); the
// walk stops at the local node's own rank position, since everything
// ranked below it would hold the plan only by accident.
//
// Returns (nil, nil) — a clean miss that falls through to the local
// solve — when the local node is the highest-ranked live replica or no
// candidate has the plan. When every attempted candidate failed in
// transit, the last error is returned wrapped with the peer ID and the
// underlying cause (%w), so errors.Is(err, context.DeadlineExceeded)
// works through the cluster layer.
//
// Read-repair: when a successor serves a plan that an earlier live
// replica answered 404 for, the served bytes are pushed back to the
// lacking replica through the same verify-on-receipt import path as
// write-time replication. The engine re-verifies whatever this
// function returns; it only moves bytes.
func (c *Cluster) FetchPlan(ctx context.Context, key string) ([]byte, error) {
	var (
		lacked   []Node // live replicas that answered 404 before the hit
		lastErr  error
		failover bool
		tried    int
	)
	for _, n := range c.ring.Rank(key) {
		if n.ID == c.self.ID || tried >= c.cfg.Replication {
			break
		}
		if !c.mem.alive(n.ID) {
			failover = true
			continue
		}
		tried++
		data, found, err := c.fetchFrom(ctx, n, key)
		if err != nil {
			c.fillErrors.Add(1)
			c.mem.observe(n.ID, false, err.Error())
			lastErr = fmt.Errorf("cluster: fetch plan %s from peer %s: %w", key, n.ID, err)
			failover = true
			continue
		}
		if !found {
			c.fillMisses.Add(1)
			lacked = append(lacked, n)
			failover = true
			continue
		}
		c.fillHits.Add(1)
		if failover {
			c.fillFailovers.Add(1)
		}
		for _, back := range lacked {
			c.enqueue(replTask{key: key, data: data, to: back, repair: true})
		}
		return data, nil
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, nil
}

// replicated reports whether the local node is in key's replica set —
// the first Replication entries of the rendezvous ranking.
func (c *Cluster) replicated(key string) bool {
	rank := c.ring.Rank(key)
	r := c.cfg.Replication
	if r > len(rank) {
		r = len(rank)
	}
	for _, n := range rank[:r] {
		if n.ID == c.self.ID {
			return true
		}
	}
	return false
}

// fetchFrom GETs /plans/{key} from n. found is false on 404 (the peer
// does not have the plan — not an error, not evidence of ill health).
func (c *Cluster) fetchFrom(ctx context.Context, n Node, key string) (data []byte, found bool, err error) {
	if c.inj.LinkDown(c.self.ID, n.ID) {
		return nil, false, fmt.Errorf("injected: link %s->%s cut", c.self.ID, n.ID)
	}
	if c.inj.Fire(faultinject.PeerDown) {
		return nil, false, fmt.Errorf("injected: peer down")
	}
	c.inj.Fire(faultinject.PeerSlow)
	// Persistent channel first: one length-prefixed exchange instead of
	// a full HTTP round trip. Any stream problem — pre-stream peer,
	// dial failure, mid-exchange error — falls through to the plain GET
	// below, which owns the error accounting.
	if data, found, ok := c.fetchViaStream(n, key); ok {
		if len(data) > 0 && c.inj.Fire(faultinject.FetchCorrupt) {
			data[len(data)/2] ^= 0x40
		}
		return data, found, nil
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/plans/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, false, err
	}
	// Ask for the binary frame; a peer that cannot serve it (or stores
	// JSON) answers JSON, which the engine's DecodeAny handles the same.
	req.Header.Set("Accept", contentTypeBinaryPlan+", "+contentTypeJSON)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("plans/%s: status %d", key, resp.StatusCode)
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, maxPlanBytes+1))
	if err != nil {
		return nil, false, err
	}
	if len(data) > maxPlanBytes {
		return nil, false, fmt.Errorf("plans/%s: plan exceeds %d bytes", key, maxPlanBytes)
	}
	if len(data) > 0 && c.inj.Fire(faultinject.FetchCorrupt) {
		// Flip one byte mid-payload; the receiver's re-verification must
		// reject the plan (invariant 2).
		data[len(data)/2] ^= 0x40
	}
	return data, true, nil
}

// Status is the /cluster endpoint's payload: ownership scheme, the
// damped health of every peer, and the node's cluster counters.
type Status struct {
	Self        string `json:"self"`
	Hash        string `json:"hash"`
	MaxHops     int    `json:"maxHops"`
	Replication int    `json:"replication"`

	// Peers lists every member ID-sorted, self included (self is always
	// up and never probed).
	Peers []PeerStatus `json:"peers"`

	Forwards         int64 `json:"forwards"`
	ForwardFallbacks int64 `json:"forwardFallbacks"`
	ForwardFailovers int64 `json:"forwardFailovers"`
	LocalServes      int64 `json:"localServes"`
	FillHits         int64 `json:"fillHits"`
	FillMisses       int64 `json:"fillMisses"`
	FillErrors       int64 `json:"fillErrors"`
	FillFailovers    int64 `json:"fillFailovers"`
	StreamFetches    int64 `json:"streamFetches"`
	StreamDials      int64 `json:"streamDials"`
	ReplPushes       int64 `json:"replPushes"`
	ReplErrors       int64 `json:"replErrors"`
	ReplDropped      int64 `json:"replDropped"`
	RepairPushes     int64 `json:"repairPushes"`
	PushTranscodes   int64 `json:"pushTranscodes"`
	SyncRounds       int64 `json:"syncRounds"`
	SyncPulls        int64 `json:"syncPulls"`
	SyncErrors       int64 `json:"syncErrors"`
	Probes           int64 `json:"probes"`
}

// Status snapshots the cluster's externally visible state.
func (c *Cluster) Status() Status {
	health := c.mem.snapshot()
	peers := make([]PeerStatus, 0, len(c.ring.members))
	for _, n := range c.ring.Members() {
		if n.ID == c.self.ID {
			peers = append(peers, PeerStatus{ID: n.ID, URL: n.URL, Self: true, Up: true})
			continue
		}
		if ps, ok := health[n.ID]; ok {
			peers = append(peers, ps)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return Status{
		Self:             c.self.ID,
		Hash:             HashScheme,
		MaxHops:          c.cfg.MaxHops,
		Replication:      c.cfg.Replication,
		Peers:            peers,
		Forwards:         c.forwards.Load(),
		ForwardFallbacks: c.forwardFallbacks.Load(),
		ForwardFailovers: c.forwardFailovers.Load(),
		LocalServes:      c.localServes.Load(),
		FillHits:         c.fillHits.Load(),
		FillMisses:       c.fillMisses.Load(),
		FillErrors:       c.fillErrors.Load(),
		FillFailovers:    c.fillFailovers.Load(),
		StreamFetches:    c.streamFetches.Load(),
		StreamDials:      c.streamDials.Load(),
		ReplPushes:       c.replPushes.Load(),
		ReplErrors:       c.replErrors.Load(),
		ReplDropped:      c.replDropped.Load(),
		RepairPushes:     c.repairPushes.Load(),
		PushTranscodes:   c.pushTranscodes.Load(),
		SyncRounds:       c.syncRounds.Load(),
		SyncPulls:        c.syncPulls.Load(),
		SyncErrors:       c.syncErrors.Load(),
		Probes:           c.probes.Load(),
	}
}

// writeJSON is the package's minimal response helper.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
