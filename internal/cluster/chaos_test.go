// Cluster chaos: asymmetric partitions and node crashes, driven
// through the fault injector's directed link cuts and real server
// kills. The property under test is convergence — after the fault
// heals, every plan is present and byte-identical on every member of
// its replica set — plus invariant 1 throughout (no request fails).
package cluster

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/faultinject"
	"switchsynth/internal/service"
)

// replicaSet resolves key's first-R rank members to test nodes.
func replicaSet(t *testing.T, nodes []*testNode, key string) []*testNode {
	t.Helper()
	cl := nodes[0].cl
	rank := cl.Ring().Rank(key)
	r := cl.cfg.Replication
	if r > len(rank) {
		r = len(rank)
	}
	set := make([]*testNode, 0, r)
	for _, n := range rank[:r] {
		set = append(set, nodeByID(t, nodes, n.ID))
	}
	return set
}

// assertConverged checks every solved key is byte-identical on every
// member of its replica set.
func assertConverged(t *testing.T, nodes []*testNode, keys []string) {
	t.Helper()
	for _, key := range keys {
		var want []byte
		for _, member := range replicaSet(t, nodes, key) {
			got, ok := member.eng.PlanBytes(key)
			if !ok {
				t.Errorf("key %s missing on replica %s", key, member.id)
				continue
			}
			if want == nil {
				want = got
			} else if !bytes.Equal(want, got) {
				t.Errorf("key %s differs across its replica set", key)
			}
		}
	}
}

func TestChaosPartitionHealAntiEntropyConverges(t *testing.T) {
	injs := make([]*faultinject.Injector, 3)
	nodes := startReplNodes(t, 3, func(i int, ccfg *Config, scfg *service.Config) {
		injs[i] = faultinject.New(int64(29 + i))
		ccfg.FaultInjector = injs[i]
		ccfg.ProbeInterval = time.Hour
		// Keep membership optimistic through the partition: this test is
		// about anti-entropy convergence, not failure detection, and a
		// peer marked down would (correctly) be skipped by syncOnce.
		ccfg.DownAfter = 100
	})

	// Asymmetric partition: n0 and n2 cannot reach each other, and n1
	// cannot push toward n0 (but n0 can still reach n1).
	injs[0].CutLink("n0", "n2")
	injs[2].CutLink("n2", "n0")
	injs[1].CutLink("n1", "n0")

	// Solves land on every node during the partition; invariant 1 says
	// each succeeds locally no matter which links are dark.
	keys := make([]string, 6)
	for i := range keys {
		sp := clusterSpecVariant(i)
		key, err := service.JobKey(sp, switchsynth.Options{})
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = key
		if _, err := nodes[i%3].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
			t.Fatalf("solve %d during partition: %v", i, err)
		}
	}
	settleRepl(t, nodes)
	fired := injs[0].Fired(faultinject.PeerPartition) +
		injs[1].Fired(faultinject.PeerPartition) +
		injs[2].Fired(faultinject.PeerPartition)
	if fired == 0 {
		t.Fatal("partition fault never fired; test exercised nothing")
	}

	// Heal and run one anti-entropy round per node: every replica set
	// must converge to identical bytes.
	for _, inj := range injs {
		inj.HealAllLinks()
	}
	for _, n := range nodes {
		n.cl.syncOnce(context.Background())
	}
	assertConverged(t, nodes, keys)
}

// listenOn rebinds addr, retrying briefly while the old socket drains.
func listenOn(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			return l
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosKillRestartRejoinConverges(t *testing.T) {
	mut := func(i int, ccfg *Config, scfg *service.Config) {
		ccfg.ProbeInterval = time.Hour
	}
	nodes := startReplNodes(t, 2, mut)
	peers := []Node{
		{ID: nodes[0].id, URL: nodes[0].url},
		{ID: nodes[1].id, URL: nodes[1].url},
	}

	// Warm phase: both nodes solve; replication fills both (2-node R=2
	// puts every key on both nodes).
	keys := make([]string, 5)
	for i := 0; i < 4; i++ {
		sp := clusterSpecVariant(i)
		key, err := service.JobKey(sp, switchsynth.Options{})
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = key
		if _, err := nodes[i%2].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	settleRepl(t, nodes)

	// Kill n1: server, workers and engine all die.
	addr := nodes[1].srv.Listener.Addr().String()
	nodes[1].srv.Close()
	nodes[1].cl.Stop()
	nodes[1].eng.CloseNow()

	// The survivor keeps serving fresh solves; its push to the corpse
	// fails and is counted, not retried inline.
	sp := clusterSpecVariant(4)
	key4, err := service.JobKey(sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys[4] = key4
	if _, err := nodes[0].eng.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
		t.Fatalf("solve during the outage: %v", err)
	}
	settleRepl(t, nodes[:1])
	if st := nodes[0].cl.Status(); st.ReplPushes+st.ReplErrors == 0 {
		t.Error("outage push neither delivered nor counted as an error")
	}

	// Restart n1 empty on its old address; one anti-entropy round
	// recovers every plan in its replica sets.
	restarted := bootNode(t, peers, listenOn(t, addr), 1, true, mut)
	if got := len(restarted.eng.PlanKeys()); got != 0 {
		t.Fatalf("restarted node booted with %d plans, want empty", got)
	}
	pulled := restarted.cl.syncOnce(context.Background())
	if pulled != len(keys) {
		t.Errorf("rejoin syncOnce pulled %d plans, want %d", pulled, len(keys))
	}
	for _, key := range keys {
		a, _ := nodes[0].eng.PlanBytes(key)
		b, ok := restarted.eng.PlanBytes(key)
		if !ok || !bytes.Equal(a, b) {
			t.Errorf("key %s after rejoin: present=%v identical=%v, want true/true", key, ok, bytes.Equal(a, b))
		}
	}
	if snap := restarted.eng.Snapshot(); snap.SolveCount != 0 {
		t.Errorf("rejoined node solveCount = %d, want 0 — recovery must not re-solve", snap.SolveCount)
	}
}
