// Owner routing for the admission tier's streaming surface: the query
// string and identity headers must survive the forward, and
// GET /synthesize/stream/{key} must land on the key's owner.
package cluster

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"switchsynth/internal/service"
)

// TestProxyForwardsWaitProofQuery: a ?wait=proof POST entering at a
// non-owner must reach the owner WITH its query string — the response
// is the ndjson stream, not a plain JSON body.
func TestProxyForwardsWaitProofQuery(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n1")

	body, err := json.Marshal(service.SynthesizeRequest{Spec: sp})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(nodes[0].url+"/synthesize?wait=proof", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(NodeHeader); got != "n1" {
		t.Errorf("X-Synthd-Node = %q, want owner n1", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson — the query string was dropped in the forward", ct)
	}
	var last service.SynthesizeResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	frames := 0
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("frame %d not JSON: %v", frames, err)
		}
		frames++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if frames == 0 || !last.Final || !last.Proven {
		t.Errorf("stream = %d frames, last final=%v proven=%v; want a proven final frame", frames, last.Final, last.Proven)
	}
	if last.Key != key {
		t.Errorf("final frame key %q, want %q", last.Key, key)
	}
	// The solve happened on the owner; the entry node only proxied.
	if snap := nodes[1].eng.Snapshot(); snap.JobsSubmitted != 1 {
		t.Errorf("owner jobsSubmitted = %d, want 1", snap.JobsSubmitted)
	}
	if snap := nodes[0].eng.Snapshot(); snap.JobsSubmitted != 0 {
		t.Errorf("entry-node jobsSubmitted = %d, want 0", snap.JobsSubmitted)
	}
}

// TestProxyRoutesStreamKeyToOwner: a key watcher landing on a non-owner
// is forwarded to the owner, whose cache tier answers with the final
// frame; locally the key is unknown.
func TestProxyRoutesStreamKeyToOwner(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, key := specOwnedBy(t, nodes[0].cl.Ring(), "n1")

	// Solve on the owner first, so its cache holds the plan.
	status, node, out := postSynthesize(t, nodes[1].url, service.SynthesizeRequest{Spec: sp}, "")
	if status != http.StatusOK || node != "n1" || out.Key != key {
		t.Fatalf("seed solve = %d/%s/%s, want 200/n1/%s", status, node, out.Key, key)
	}

	resp, err := http.Get(nodes[0].url + "/synthesize/stream/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream watch via non-owner: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(NodeHeader); got != "n1" {
		t.Errorf("X-Synthd-Node = %q, want owner n1", got)
	}
	var frame service.SynthesizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
		t.Fatal(err)
	}
	if !frame.Final || frame.Key != key {
		t.Errorf("frame = final %v key %q, want the owner's cached final for %q", frame.Final, frame.Key, key)
	}
	if st := nodes[0].cl.Status(); st.Forwards != 1 {
		t.Errorf("entry node forwards = %d, want 1", st.Forwards)
	}
}

// TestProxyForwardsIdentityHeaders: the admission identity must survive
// the forward. A priority class the owner rejects proves the header
// arrived — without forwarding, the request would default to
// interactive and succeed.
func TestProxyForwardsIdentityHeaders(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	sp, _ := specOwnedBy(t, nodes[0].cl.Ring(), "n1")
	body, err := json.Marshal(service.SynthesizeRequest{Spec: sp})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, nodes[0].url+"/synthesize", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.TenantHeader, "acme")
	req.Header.Set(service.PriorityHeader, "bogus-class")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want the owner's 400 for the unknown priority class", resp.StatusCode)
	}
	if got := resp.Header.Get(NodeHeader); got != "n1" {
		t.Errorf("X-Synthd-Node = %q, want n1 — the 400 must be the owner's verdict, not local", got)
	}
}
