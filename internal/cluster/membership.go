// Health-probed membership: per-peer up/down state machines fed by a
// periodic /readyz probe loop and by request-path observations (a
// failed forward or plan fetch is evidence too).
//
// Transitions are flap-damped with consecutive-streak hysteresis: a
// peer marked up must fail DownAfter probes in a row before it is
// marked down, and a down peer must succeed UpAfter times in a row
// before it is trusted again. A single dropped packet therefore does
// not reroute ownership, and a peer rebooting in a crash loop does not
// oscillate the ring's effective owner every probe tick.
package cluster

import (
	"strings"
	"sync"
	"time"
)

// Membership defaults; overridable via Config.
const (
	defaultUpAfter   = 2
	defaultDownAfter = 3
)

// PeerStatus is one peer's externally visible health, served by
// /cluster.
type PeerStatus struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Self marks the local node's own entry (always up, never probed).
	Self bool `json:"self,omitempty"`
	Up   bool `json:"up"`
	// Streak counts consecutive observations agreeing with Up's current
	// value's opposite — i.e. progress toward the next transition. Zero
	// means the last observation matched the current state.
	Streak int `json:"streak,omitempty"`
	// Flaps counts up↔down transitions since boot.
	Flaps int64 `json:"flaps"`
	// Probes counts health observations (periodic probes plus
	// request-path reports).
	Probes  int64  `json:"probes"`
	LastErr string `json:"lastErr,omitempty"`
	// PlanFormats is the peer's advertised plan-encoding capability (the
	// X-Synthd-Plan-Formats value from its last successful readiness
	// probe). Empty until a probe has answered — pushes to such a peer
	// are transcoded to JSON, the encoding every version accepts.
	PlanFormats string `json:"planFormats,omitempty"`
}

// peerState is the damped two-state machine for one peer.
type peerState struct {
	node       Node
	up         bool
	okStreak   int // consecutive successes while down
	failStreak int // consecutive failures while up
	flaps      int64
	probes     int64
	lastErr    string
	lastChange time.Time
	// formats is the peer's advertised plan-format capability, recorded
	// from readiness probes; binaryOK caches whether it includes
	// "binary". Both stay zero-valued until the first successful probe,
	// so an unprobed peer conservatively counts as JSON-only.
	formats  string
	binaryOK bool
}

// membership tracks liveness for every non-self peer. Peers start
// optimistically up: until the first probe round completes, the ring
// routes as if the whole static list were healthy, which at worst costs
// one failed forward (answered by local fallback) rather than wrongly
// claiming ownership of the entire keyspace at boot.
type membership struct {
	mu        sync.Mutex
	selfID    string
	peers     map[string]*peerState
	upAfter   int
	downAfter int
}

func newMembership(selfID string, peers []Node, upAfter, downAfter int) *membership {
	if upAfter <= 0 {
		upAfter = defaultUpAfter
	}
	if downAfter <= 0 {
		downAfter = defaultDownAfter
	}
	m := &membership{
		selfID:    selfID,
		peers:     make(map[string]*peerState),
		upAfter:   upAfter,
		downAfter: downAfter,
	}
	for _, n := range peers {
		if n.ID == selfID {
			continue
		}
		m.peers[n.ID] = &peerState{node: n, up: true}
	}
	return m
}

// alive reports whether id should be routed to. Self is always alive;
// unknown IDs are not.
func (m *membership) alive(id string) bool {
	if id == m.selfID {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	return ok && p.up
}

// observe feeds one health observation into id's state machine and
// reports whether the peer's up/down state flipped. Observations about
// self or unknown peers are ignored.
func (m *membership) observe(id string, ok bool, errMsg string) (flipped bool) {
	if id == m.selfID {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, found := m.peers[id]
	if !found {
		return false
	}
	p.probes++
	if ok {
		p.lastErr = ""
		p.failStreak = 0
		if !p.up {
			p.okStreak++
			if p.okStreak >= m.upAfter {
				p.up = true
				p.okStreak = 0
				p.flaps++
				p.lastChange = time.Now()
				return true
			}
		}
		return false
	}
	p.lastErr = errMsg
	p.okStreak = 0
	if p.up {
		p.failStreak++
		if p.failStreak >= m.downAfter {
			p.up = false
			p.failStreak = 0
			p.flaps++
			p.lastChange = time.Now()
			return true
		}
	}
	return false
}

// setFormats records id's advertised plan-format capability from a
// successful readiness probe. A missing header on an answering peer is
// recorded as "json": the node is alive but predates the binary frame
// format.
func (m *membership) setFormats(id, formats string) {
	if id == m.selfID {
		return
	}
	if formats == "" {
		formats = "json"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[id]; ok {
		p.formats = formats
		p.binaryOK = false
		for _, f := range strings.Split(formats, ",") {
			if strings.TrimSpace(f) == "binary" {
				p.binaryOK = true
			}
		}
	}
}

// formatsKnown reports whether id's plan-format capability has been
// learned from a successful probe (an answering peer without the header
// is recorded as "json", which also counts as known).
func (m *membership) formatsKnown(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	return ok && p.formats != ""
}

// binaryOK reports whether id has advertised binary plan-frame support.
// Unknown or never-probed peers report false, so pushes default to the
// JSON encoding every version accepts.
func (m *membership) binaryOK(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	return ok && p.binaryOK
}

// snapshot returns every peer's status (self excluded), ID-sorted by
// the caller via the ring's member order.
func (m *membership) snapshot() map[string]PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]PeerStatus, len(m.peers))
	for id, p := range m.peers {
		streak := p.failStreak
		if !p.up {
			streak = p.okStreak
		}
		out[id] = PeerStatus{
			ID:          id,
			URL:         p.node.URL,
			Up:          p.up,
			Streak:      streak,
			Flaps:       p.flaps,
			Probes:      p.probes,
			LastErr:     p.lastErr,
			PlanFormats: p.formats,
		}
	}
	return out
}
