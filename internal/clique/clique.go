// Package clique solves the pressure-sharing grouping problem: partition
// valves into a minimum number of groups (cliques of the compatibility
// graph) so that every group can share one control inlet.
//
// A minimum clique cover of the compatibility graph is a minimum proper
// coloring of its complement (the incompatibility graph), which this package
// computes exactly with a DSATUR-style branch & bound. The paper's ILP
// formulation (constraints 3.14–3.17) is also provided, built on
// internal/milp, and the two solvers are cross-checked in tests.
package clique

import (
	"fmt"
	"sort"
	"time"

	"switchsynth/internal/lp"
	"switchsynth/internal/milp"
)

// Cover is a partition of 0..n-1 into groups.
type Cover struct {
	// Groups lists the members of each group in ascending order; groups are
	// ordered by their smallest member.
	Groups [][]int
	// Proven reports whether minimality was proven.
	Proven bool
}

// NumGroups returns the number of groups (control inlets needed).
func (c Cover) NumGroups() int { return len(c.Groups) }

// GroupOf returns a lookup from element to group index.
func (c Cover) GroupOf(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for g, members := range c.Groups {
		for _, m := range members {
			out[m] = g
		}
	}
	return out
}

// MinCover computes a minimum clique cover of the compatibility relation
// comp (symmetric, comp[i][i] true). It colors the complement graph exactly.
func MinCover(comp [][]bool) Cover {
	n := len(comp)
	if n == 0 {
		return Cover{Proven: true}
	}
	// Conflict adjacency = complement of compatibility.
	adj := make([][]bool, n)
	deg := make([]int, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		for j := range adj[i] {
			if i != j && !comp[i][j] {
				adj[i][j] = true
				deg[i]++
			}
		}
	}

	ub, greedy := greedyColor(adj, deg)
	lb := cliqueLB(adj, deg)
	best := greedy
	bestK := ub
	if lb < ub {
		// Branch & bound on the number of colors over a static order.
		order := dsaturOrder(adj, deg)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = -1
		}
		var search func(pos, usedColors int) bool
		search = func(pos, usedColors int) bool {
			if usedColors >= bestK {
				return false
			}
			if pos == n {
				copy(best, assign)
				bestK = usedColors
				return bestK == lb // optimal proven: stop the whole search
			}
			v := order[pos]
			limit := usedColors // usedColors = open a fresh color
			if limit > bestK-2 {
				limit = bestK - 2 // a color ≥ bestK-1 could never improve
			}
			for c := 0; c <= limit; c++ {
				ok := true
				for u := 0; u < n; u++ {
					if adj[v][u] && assign[u] == c {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				assign[v] = c
				nu := usedColors
				if c == usedColors {
					nu++
				}
				if search(pos+1, nu) {
					assign[v] = -1
					return true
				}
				assign[v] = -1
			}
			return false
		}
		search(0, 0)
	}

	groups := make([][]int, 0)
	byColor := map[int][]int{}
	for v, c := range best {
		byColor[c] = append(byColor[c], v)
	}
	var colorsUsed []int
	for c := range byColor {
		colorsUsed = append(colorsUsed, c)
	}
	sort.Ints(colorsUsed)
	for _, c := range colorsUsed {
		sort.Ints(byColor[c])
		groups = append(groups, byColor[c])
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return Cover{Groups: groups, Proven: true}
}

// greedyColor colors the conflict graph with DSATUR and returns the color
// count and assignment.
func greedyColor(adj [][]bool, deg []int) (int, []int) {
	n := len(adj)
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	sat := make([]map[int]bool, n)
	for i := range sat {
		sat[i] = map[int]bool{}
	}
	maxColor := 0
	for done := 0; done < n; done++ {
		// Pick the uncolored vertex with the highest saturation, breaking
		// ties by degree then index.
		v := -1
		for u := 0; u < n; u++ {
			if colors[u] != -1 {
				continue
			}
			if v == -1 || len(sat[u]) > len(sat[v]) ||
				(len(sat[u]) == len(sat[v]) && deg[u] > deg[v]) {
				v = u
			}
		}
		c := 0
		for sat[v][c] {
			c++
		}
		colors[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
		for u := 0; u < n; u++ {
			if adj[v][u] {
				sat[u][c] = true
			}
		}
	}
	return maxColor, colors
}

// cliqueLB finds a large clique in the conflict graph greedily; its size is
// a lower bound on the chromatic number.
func cliqueLB(adj [][]bool, deg []int) int {
	n := len(adj)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return deg[order[a]] > deg[order[b]] })
	best := 0
	for _, start := range order {
		clique := []int{start}
		for _, v := range order {
			if v == start {
				continue
			}
			ok := true
			for _, u := range clique {
				if !adj[v][u] {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, v)
			}
		}
		if len(clique) > best {
			best = len(clique)
		}
	}
	if best == 0 && n > 0 {
		best = 1
	}
	return best
}

// dsaturOrder orders vertices by descending degree (static approximation of
// the DSATUR dynamic order, sufficient for branch & bound).
func dsaturOrder(adj [][]bool, deg []int) []int {
	n := len(adj)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return deg[order[a]] > deg[order[b]] })
	return order
}

// ILPOptions tune the paper-faithful ILP cover.
type ILPOptions struct {
	// MaxCliques caps the clique pool; 0 uses the number of elements (the
	// paper's initial size).
	MaxCliques int
	// TimeLimit bounds the MILP solve (0 = none).
	TimeLimit time.Duration
}

// MinCoverILP solves the clique-cover with the paper's ILP (3.14)–(3.17):
// z_{v,c} assigns valve v to clique c, clique_c marks occupied cliques,
// incompatible valves exclude each other per clique, and the number of
// occupied cliques is minimized.
func MinCoverILP(comp [][]bool, opts ILPOptions) (Cover, error) {
	n := len(comp)
	if n == 0 {
		return Cover{Proven: true}, nil
	}
	nc := opts.MaxCliques
	if nc <= 0 || nc > n {
		nc = n
	}
	m := milp.NewModel("clique-cover")
	z := make([][]milp.Var, n)
	for v := range z {
		z[v] = make([]milp.Var, nc)
		one := milp.NewLinExpr()
		for c := 0; c < nc; c++ {
			z[v][c] = m.NewBinary(fmt.Sprintf("z(%d,%d)", v, c))
			one.Add(1, z[v][c])
		}
		m.AddNamedConstraint("3.14", one, lp.EQ, 1) // each valve in one clique
	}
	cl := make([]milp.Var, nc)
	obj := milp.NewLinExpr()
	for c := 0; c < nc; c++ {
		cl[c] = m.NewBinary(fmt.Sprintf("clique(%d)", c))
		for v := 0; v < n; v++ {
			// clique_c ≥ z_{v,c}   (3.15)
			m.AddNamedConstraint("3.15", milp.NewLinExpr().Add(1, cl[c]).Add(-1, z[v][c]), lp.GE, 0)
		}
		obj.Add(1, cl[c]) // (3.17)
	}
	for v1 := 0; v1 < n; v1++ {
		for v2 := v1 + 1; v2 < n; v2++ {
			if comp[v1][v2] {
				continue // ps=1 rows are tautologies; omit them
			}
			for c := 0; c < nc; c++ {
				// z_{v1,c} + z_{v2,c} ≤ 1   (3.16 with ps = 0)
				m.AddNamedConstraint("3.16",
					milp.NewLinExpr().Add(1, z[v1][c]).Add(1, z[v2][c]), lp.LE, 1)
			}
		}
	}
	// Symmetry breaking: element v may only use cliques 0..v.
	for v := 0; v < n; v++ {
		for c := v + 1; c < nc; c++ {
			m.AddConstraint(milp.NewLinExpr().Add(1, z[v][c]), lp.EQ, 0)
		}
	}
	m.SetObjective(obj)
	sol := m.Solve(milp.Options{TimeLimit: opts.TimeLimit})
	if !sol.HasSolution {
		return Cover{}, fmt.Errorf("clique: ILP returned %v", sol.Status)
	}
	byClique := map[int][]int{}
	for v := 0; v < n; v++ {
		for c := 0; c < nc; c++ {
			if sol.Bool(z[v][c]) {
				byClique[c] = append(byClique[c], v)
				break
			}
		}
	}
	var groups [][]int
	for _, members := range byClique {
		sort.Ints(members)
		groups = append(groups, members)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return Cover{Groups: groups, Proven: sol.Status == milp.Optimal}, nil
}
