package clique

import (
	"math/rand"
	"testing"
	"time"
)

func compFrom(n int, incompatible [][2]int) [][]bool {
	comp := make([][]bool, n)
	for i := range comp {
		comp[i] = make([]bool, n)
		for j := range comp[i] {
			comp[i][j] = true
		}
	}
	for _, p := range incompatible {
		comp[p[0]][p[1]] = false
		comp[p[1]][p[0]] = false
	}
	return comp
}

func checkCover(t *testing.T, comp [][]bool, c Cover) {
	t.Helper()
	n := len(comp)
	seen := make([]bool, n)
	for _, g := range c.Groups {
		for i, a := range g {
			if seen[a] {
				t.Fatalf("element %d in two groups", a)
			}
			seen[a] = true
			for _, b := range g[i+1:] {
				if !comp[a][b] {
					t.Fatalf("group contains incompatible pair %d-%d", a, b)
				}
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("element %d uncovered", i)
		}
	}
}

func TestAllCompatibleOneGroup(t *testing.T) {
	comp := compFrom(5, nil)
	c := MinCover(comp)
	checkCover(t, comp, c)
	if c.NumGroups() != 1 {
		t.Errorf("groups = %d, want 1", c.NumGroups())
	}
}

func TestAllIncompatible(t *testing.T) {
	var inc [][2]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			inc = append(inc, [2]int{i, j})
		}
	}
	comp := compFrom(4, inc)
	c := MinCover(comp)
	checkCover(t, comp, c)
	if c.NumGroups() != 4 {
		t.Errorf("groups = %d, want 4", c.NumGroups())
	}
}

func TestPaperFig32b(t *testing.T) {
	// a compatible with b and c; b and c clash → 2 cliques.
	comp := compFrom(3, [][2]int{{1, 2}})
	c := MinCover(comp)
	checkCover(t, comp, c)
	if c.NumGroups() != 2 {
		t.Errorf("groups = %d, want 2", c.NumGroups())
	}
}

func TestOddCycleNeedsThree(t *testing.T) {
	// C5 conflict graph has chromatic number 3.
	comp := compFrom(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	c := MinCover(comp)
	checkCover(t, comp, c)
	if c.NumGroups() != 3 {
		t.Errorf("groups = %d, want 3 (odd cycle)", c.NumGroups())
	}
}

func TestEmpty(t *testing.T) {
	c := MinCover(nil)
	if c.NumGroups() != 0 || !c.Proven {
		t.Errorf("empty cover = %+v", c)
	}
}

func TestGroupOf(t *testing.T) {
	comp := compFrom(3, [][2]int{{0, 1}})
	c := MinCover(comp)
	g := c.GroupOf(3)
	if g[0] == g[1] {
		t.Error("incompatible pair in same group")
	}
	for i, x := range g {
		if x < 0 {
			t.Errorf("element %d unassigned", i)
		}
	}
}

func TestILPAgreesWithSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		var inc [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					inc = append(inc, [2]int{i, j})
				}
			}
		}
		comp := compFrom(n, inc)
		exact := MinCover(comp)
		checkCover(t, comp, exact)
		ilp, err := MinCoverILP(comp, ILPOptions{TimeLimit: 30 * time.Second})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkCover(t, comp, ilp)
		if !ilp.Proven {
			continue // timeout: counts may differ
		}
		if exact.NumGroups() != ilp.NumGroups() {
			t.Errorf("trial %d (n=%d): search %d groups, ILP %d groups",
				trial, n, exact.NumGroups(), ilp.NumGroups())
		}
	}
}

func TestBruteForceAgreement(t *testing.T) {
	// For tiny instances, compare with exhaustive partition search.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4) // up to 5
		var inc [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					inc = append(inc, [2]int{i, j})
				}
			}
		}
		comp := compFrom(n, inc)
		got := MinCover(comp)
		checkCover(t, comp, got)
		want := bruteMinCover(comp)
		if got.NumGroups() != want {
			t.Errorf("trial %d (n=%d): got %d groups, brute force %d", trial, n, got.NumGroups(), want)
		}
	}
}

// bruteMinCover enumerates all partitions via assignment vectors.
func bruteMinCover(comp [][]bool) int {
	n := len(comp)
	assign := make([]int, n)
	best := n
	var rec func(v, maxG int)
	rec = func(v, maxG int) {
		if maxG >= best {
			return
		}
		if v == n {
			if maxG < best {
				best = maxG
			}
			return
		}
		for g := 0; g <= maxG && g < best; g++ {
			ok := true
			for u := 0; u < v; u++ {
				if assign[u] == g && !comp[u][v] {
					ok = false
					break
				}
			}
			if ok {
				assign[v] = g
				ng := maxG
				if g == maxG {
					ng++
				}
				rec(v+1, ng)
			}
		}
	}
	rec(0, 0)
	return best
}

func TestLargerRandomStaysFast(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	var inc [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(5) == 0 {
				inc = append(inc, [2]int{i, j})
			}
		}
	}
	comp := compFrom(n, inc)
	start := time.Now()
	c := MinCover(comp)
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("MinCover too slow: %v", el)
	}
	checkCover(t, comp, c)
}
