// Property tests for CanonicalKey over randomly generated specs: every
// presentation change (the symmetries documented in canon.go) preserves
// the key, and every single-element semantic mutation changes it. The
// admission tier's batch dedup and cross-batch coalescing both hang off
// this invariant — a false merge here silently serves one tenant
// another tenant's plan.
package spec

import (
	"fmt"
	"math/rand"
	"testing"
)

// genCanonSpec builds a random valid spec: a random supported switch
// size, 1–3 source modules, at least as many destination modules (each
// destination receives exactly one flow, each source feeds at least
// one), random conflicts over distinct-source flow pairs, one of the
// three binding policies and randomized objective knobs.
func genCanonSpec(rng *rand.Rand) *Spec {
	pins := []int{8, 12, 16}[rng.Intn(3)]
	nsrc := 1 + rng.Intn(3)
	maxDst := pins - nsrc - 1 // leave one pin free for the add-module mutation
	ndst := nsrc + rng.Intn(min(4, maxDst-nsrc+1))

	s := &Spec{Name: "prop", SwitchPins: pins}
	for i := 0; i < nsrc; i++ {
		s.Modules = append(s.Modules, fmt.Sprintf("s%d", i))
	}
	for j := 0; j < ndst; j++ {
		s.Modules = append(s.Modules, fmt.Sprintf("d%d", j))
	}
	for j := 0; j < ndst; j++ {
		src := j
		if src >= nsrc {
			src = rng.Intn(nsrc)
		}
		s.Flows = append(s.Flows, Flow{From: fmt.Sprintf("s%d", src), To: fmt.Sprintf("d%d", j)})
	}
	for i := 0; i < len(s.Flows); i++ {
		for j := i + 1; j < len(s.Flows); j++ {
			if s.Flows[i].From != s.Flows[j].From && rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 {
					s.Conflicts = append(s.Conflicts, [2]int{j, i})
				} else {
					s.Conflicts = append(s.Conflicts, [2]int{i, j})
				}
			}
		}
	}
	s.Binding = BindingPolicy(rng.Intn(3))
	if s.Binding == Fixed {
		s.FixedPins = make(map[string]int, len(s.Modules))
		for i, p := range rng.Perm(pins)[:len(s.Modules)] {
			s.FixedPins[s.Modules[i]] = p
		}
	}
	if rng.Intn(2) == 0 {
		s.Alpha = 0.5 + 3*rng.Float64()
	}
	if rng.Intn(2) == 0 {
		s.Beta = 10 + 200*rng.Float64()
	}
	if rng.Intn(3) == 0 {
		s.MaxSets = 1 + rng.Intn(len(s.Flows))
	}
	return s
}

// repackage returns a random alternative presentation of the same
// problem: modules shuffled (rotated under clockwise binding, whose
// cyclic order is semantic), flows permuted with conflicts remapped,
// conflict pairs flipped and reordered, and the presentation-only
// fields (Name, Scalable, implicit-vs-explicit default weights)
// perturbed.
func repackage(rng *rand.Rand, s *Spec) *Spec {
	cp := *s
	cp.Modules = append([]string(nil), s.Modules...)
	if s.Binding == Clockwise {
		r := rng.Intn(len(cp.Modules))
		cp.Modules = append(append([]string{}, s.Modules[r:]...), s.Modules[:r]...)
	} else {
		rng.Shuffle(len(cp.Modules), func(a, b int) {
			cp.Modules[a], cp.Modules[b] = cp.Modules[b], cp.Modules[a]
		})
	}
	out := permuteFlows(&cp, rng.Perm(len(s.Flows)))
	for i, c := range out.Conflicts {
		if rng.Intn(2) == 0 {
			out.Conflicts[i] = [2]int{c[1], c[0]}
		}
	}
	rng.Shuffle(len(out.Conflicts), func(a, b int) {
		out.Conflicts[a], out.Conflicts[b] = out.Conflicts[b], out.Conflicts[a]
	})
	out.Name = fmt.Sprintf("repackaged-%d", rng.Int())
	out.Scalable = !s.Scalable
	if out.Alpha == 0 && rng.Intn(2) == 0 {
		out.Alpha = DefaultAlpha
	}
	if out.Beta == 0 && rng.Intn(2) == 0 {
		out.Beta = DefaultBeta
	}
	return out
}

// TestCanonicalKeyPermutationInvarianceProperty: for random specs under
// all three binding policies, any repackaging of the same problem keys
// identically, and canonicalization is idempotent (the canonical spec
// of every presentation keys to the same class).
func TestCanonicalKeyPermutationInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		s := genCanonSpec(rng)
		want := mustKey(t, s)
		for rep := 0; rep < 3; rep++ {
			p := repackage(rng, s)
			if got := mustKey(t, p); got != want {
				t.Fatalf("trial %d rep %d (binding %s): presentation change altered key\nbase: %+v\nrepackaged: %+v",
					trial, rep, s.Binding, s, p)
			}
			canon, err := p.CanonicalSpec()
			if err != nil {
				t.Fatalf("trial %d: CanonicalSpec: %v", trial, err)
			}
			if got := mustKey(t, canon); got != want {
				t.Fatalf("trial %d: CanonicalSpec not in the same class as its source", trial)
			}
		}
	}
}

// canonMutation is one single-element semantic change. apply returns
// false when the mutation does not apply to this spec (e.g. no
// conflict to remove); otherwise it mutates cp in place, and cp must
// validate and key differently from its source.
type canonMutation struct {
	name  string
	apply func(rng *rand.Rand, cp *Spec) bool
}

func canonMutations() []canonMutation {
	return []canonMutation{
		{"grow-switch", func(rng *rand.Rand, cp *Spec) bool {
			switch cp.SwitchPins {
			case 8:
				cp.SwitchPins = 12
			case 12:
				cp.SwitchPins = 16
			case 16:
				cp.SwitchPins = 20
			default:
				return false
			}
			// Fixed pins stay in range: the switch only grew.
			return true
		}},
		{"reweight-alpha", func(rng *rand.Rand, cp *Spec) bool {
			cp.Alpha = cp.EffectiveAlpha() + 1
			return true
		}},
		{"reweight-beta", func(rng *rand.Rand, cp *Spec) bool {
			cp.Beta = cp.EffectiveBeta() + 1
			return true
		}},
		{"cap-sets", func(rng *rand.Rand, cp *Spec) bool {
			if len(cp.Flows) < 2 || cp.EffectiveMaxSets() == 1 {
				return false
			}
			cp.MaxSets = 1
			return true
		}},
		{"flip-binding", func(rng *rand.Rand, cp *Spec) bool {
			if cp.Binding == Unfixed {
				cp.Binding = Clockwise
			} else {
				cp.Binding = Unfixed
			}
			return true
		}},
		{"drop-conflict", func(rng *rand.Rand, cp *Spec) bool {
			if len(cp.Conflicts) == 0 {
				return false
			}
			i := rng.Intn(len(cp.Conflicts))
			cp.Conflicts = append(append([][2]int(nil), cp.Conflicts[:i]...), cp.Conflicts[i+1:]...)
			return true
		}},
		{"add-conflict", func(rng *rand.Rand, cp *Spec) bool {
			have := make(map[[2]int]bool, len(cp.Conflicts))
			for _, c := range cp.Conflicts {
				a, b := c[0], c[1]
				if a > b {
					a, b = b, a
				}
				have[[2]int{a, b}] = true
			}
			for i := 0; i < len(cp.Flows); i++ {
				for j := i + 1; j < len(cp.Flows); j++ {
					if cp.Flows[i].From != cp.Flows[j].From && !have[[2]int{i, j}] {
						cp.Conflicts = append(append([][2]int(nil), cp.Conflicts...), [2]int{i, j})
						return true
					}
				}
			}
			return false
		}},
		{"swap-flow-targets", func(rng *rand.Rand, cp *Spec) bool {
			for i := 0; i < len(cp.Flows); i++ {
				for j := i + 1; j < len(cp.Flows); j++ {
					if cp.Flows[i].From != cp.Flows[j].From {
						fl := append([]Flow(nil), cp.Flows...)
						fl[i].To, fl[j].To = fl[j].To, fl[i].To
						cp.Flows = fl
						return true
					}
				}
			}
			return false
		}},
		{"add-module-and-flow", func(rng *rand.Rand, cp *Spec) bool {
			if len(cp.Modules) >= cp.SwitchPins {
				return false
			}
			cp.Modules = append(append([]string(nil), cp.Modules...), "dnew")
			cp.Flows = append(append([]Flow(nil), cp.Flows...), Flow{From: cp.Flows[0].From, To: "dnew"})
			if cp.Binding == Fixed {
				used := make(map[int]bool, len(cp.FixedPins))
				pins := make(map[string]int, len(cp.FixedPins)+1)
				for m, p := range cp.FixedPins {
					pins[m] = p
					used[p] = true
				}
				for p := 0; p < cp.SwitchPins; p++ {
					if !used[p] {
						pins["dnew"] = p
						break
					}
				}
				cp.FixedPins = pins
			}
			return true
		}},
		{"rebind-fixed-pins", func(rng *rand.Rand, cp *Spec) bool {
			if cp.Binding != Fixed || len(cp.Modules) < 2 {
				return false
			}
			a, b := cp.Modules[0], cp.Modules[1]
			pins := make(map[string]int, len(cp.FixedPins))
			for m, p := range cp.FixedPins {
				pins[m] = p
			}
			pins[a], pins[b] = pins[b], pins[a]
			cp.FixedPins = pins
			return true
		}},
	}
}

// TestCanonicalKeyMutationSensitivityProperty: every applicable
// single-element semantic mutation of a random spec yields a valid spec
// in a DIFFERENT equivalence class. Each mutation kind must fire on at
// least one trial, so a generator drift can't silently skip a case.
func TestCanonicalKeyMutationSensitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	muts := canonMutations()
	fired := make(map[string]int, len(muts))
	for trial := 0; trial < 300; trial++ {
		s := genCanonSpec(rng)
		want := mustKey(t, s)
		for _, m := range muts {
			cp := *s
			if !m.apply(rng, &cp) {
				continue
			}
			fired[m.name]++
			if err := cp.Validate(); err != nil {
				t.Fatalf("trial %d: mutation %q produced an invalid spec: %v\nbase: %+v", trial, m.name, err, s)
			}
			if got := mustKey(t, &cp); got == want {
				t.Errorf("trial %d: mutation %q did not change the key\nbase: %+v\nmutated: %+v", trial, m.name, s, cp)
			}
		}
	}
	for _, m := range muts {
		if fired[m.name] == 0 {
			t.Errorf("mutation %q never applied across 300 trials — generator no longer covers it", m.name)
		}
	}
}
