package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

func validSpec() *Spec {
	return &Spec{
		Name:       "t",
		SwitchPins: 8,
		Modules:    []string{"in1", "out1", "out2"},
		Flows:      []Flow{{From: "in1", To: "out1"}, {From: "in1", To: "out2"}},
		Binding:    Unfixed,
	}
}

func TestValidateOK(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"bad size", func(s *Spec) { s.SwitchPins = 10 }, "switch size"},
		{"no modules", func(s *Spec) { s.Modules = nil }, "no modules"},
		{"too many modules", func(s *Spec) {
			s.Modules = []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"}
		}, "exceed"},
		{"dup module", func(s *Spec) { s.Modules = []string{"in1", "in1", "out1"} }, "duplicate"},
		{"empty module name", func(s *Spec) { s.Modules = []string{"", "out1", "out2"} }, "empty module"},
		{"no flows", func(s *Spec) { s.Flows = nil }, "no flows"},
		{"unknown source", func(s *Spec) { s.Flows[0].From = "ghost" }, "not a module"},
		{"unknown dest", func(s *Spec) { s.Flows[0].To = "ghost" }, "not a module"},
		{"self flow", func(s *Spec) { s.Flows[0].To = "in1" }, "identical endpoints"},
		{"source and dest", func(s *Spec) {
			s.Flows = []Flow{{From: "in1", To: "out1"}, {From: "out1", To: "out2"}}
		}, "both a source and a destination"},
		{"outlet twice", func(s *Spec) {
			s.Flows = []Flow{{From: "in1", To: "out1"}, {From: "in1", To: "out1"}}
		}, "at most once"},
		{"unused module", func(s *Spec) {
			s.Flows = []Flow{{From: "in1", To: "out1"}}
		}, "unused"},
		{"conflict bad index", func(s *Spec) { s.Conflicts = [][2]int{{0, 5}} }, "invalid flow index"},
		{"conflict self", func(s *Spec) { s.Conflicts = [][2]int{{1, 1}} }, "with itself"},
		{"conflict same inlet", func(s *Spec) { s.Conflicts = [][2]int{{0, 1}} }, "same inlet"},
		{"fixed missing pins", func(s *Spec) { s.Binding = Fixed }, "needs a pin"},
		{"fixed unknown module", func(s *Spec) {
			s.Binding = Fixed
			s.FixedPins = map[string]int{"in1": 0, "out1": 1, "ghost": 2}
		}, "unknown module"},
		{"fixed pin out of range", func(s *Spec) {
			s.Binding = Fixed
			s.FixedPins = map[string]int{"in1": 0, "out1": 1, "out2": 8}
		}, "out of range"},
		{"fixed dup pin", func(s *Spec) {
			s.Binding = Fixed
			s.FixedPins = map[string]int{"in1": 0, "out1": 0, "out2": 1}
		}, "share pin"},
		{"negative weights", func(s *Spec) { s.Alpha = -1 }, "negative"},
		{"negative max sets", func(s *Spec) { s.MaxSets = -2 }, "negative MaxSets"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestEffectiveDefaults(t *testing.T) {
	s := validSpec()
	if s.EffectiveAlpha() != DefaultAlpha {
		t.Errorf("alpha default = %v", s.EffectiveAlpha())
	}
	if s.EffectiveBeta() != DefaultBeta {
		t.Errorf("beta default = %v", s.EffectiveBeta())
	}
	if s.EffectiveMaxSets() != 2 {
		t.Errorf("maxsets default = %v, want 2 (#flows)", s.EffectiveMaxSets())
	}
	s.Alpha, s.Beta, s.MaxSets = 3, 7, 5
	if s.EffectiveAlpha() != 3 || s.EffectiveBeta() != 7 || s.EffectiveMaxSets() != 5 {
		t.Error("explicit values not honoured")
	}
}

func TestSourcesDestinationsConflicts(t *testing.T) {
	s := validSpec()
	s.Conflicts = [][2]int{}
	srcs, dsts := s.Sources(), s.Destinations()
	if srcs[0] != 0 || srcs[1] != 0 {
		t.Errorf("sources = %v", srcs)
	}
	if dsts[0] != 1 || dsts[1] != 2 {
		t.Errorf("destinations = %v", dsts)
	}
	s2 := &Spec{
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
	}
	cw := s2.ConflictsWith()
	if len(cw[0]) != 1 || cw[0][0] != 1 || len(cw[1]) != 1 || cw[1][0] != 0 {
		t.Errorf("ConflictsWith = %v", cw)
	}
}

func TestParseBindingPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want BindingPolicy
	}{{"fixed", Fixed}, {"clockwise", Clockwise}, {"unfixed", Unfixed}} {
		got, err := ParseBindingPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBindingPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("round trip %q -> %q", tc.in, got)
		}
	}
	if _, err := ParseBindingPolicy("diagonal"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.Conflicts = [][2]int{}
	s.FixedPins = map[string]int{"in1": 0}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.SwitchPins != s.SwitchPins ||
		len(back.Modules) != len(s.Modules) || len(back.Flows) != len(s.Flows) {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestErrNoSolution(t *testing.T) {
	err := &ErrNoSolution{SpecName: "x", Policy: Clockwise}
	if !strings.Contains(err.Error(), "clockwise") || !strings.Contains(err.Error(), "x") {
		t.Errorf("error text: %v", err)
	}
}
