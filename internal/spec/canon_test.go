package spec

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func canonSpec() *Spec {
	return &Spec{
		Name:       "canon",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y", "z"},
		Flows: []Flow{
			{From: "a", To: "x"},
			{From: "b", To: "y"},
			{From: "a", To: "z"},
		},
		Conflicts: [][2]int{{0, 1}, {1, 2}},
		Binding:   Unfixed,
	}
}

func mustKey(t *testing.T, s *Spec) string {
	t.Helper()
	k, err := s.CanonicalKey()
	if err != nil {
		t.Fatalf("CanonicalKey(%s): %v", s.Name, err)
	}
	return k
}

// permuteFlows reorders the flows with perm and remaps the conflicts,
// preserving semantics.
func permuteFlows(s *Spec, perm []int) *Spec {
	cp := *s
	cp.Flows = make([]Flow, len(s.Flows))
	pos := make([]int, len(perm)) // old index -> new index
	for newI, oldI := range perm {
		cp.Flows[newI] = s.Flows[oldI]
		pos[oldI] = newI
	}
	cp.Conflicts = make([][2]int, len(s.Conflicts))
	for i, c := range s.Conflicts {
		cp.Conflicts[i] = [2]int{pos[c[0]], pos[c[1]]}
	}
	return &cp
}

func TestCanonicalKeyInvariantUnderPresentation(t *testing.T) {
	base := canonSpec()
	want := mustKey(t, base)

	// Renamed label and drawing variant do not partition the cache.
	relabeled := *base
	relabeled.Name = "other-name"
	relabeled.Scalable = true
	if got := mustKey(t, &relabeled); got != want {
		t.Errorf("name/scalable changed the key")
	}

	// Module order is free under unfixed binding.
	shuffledMods := *base
	shuffledMods.Modules = []string{"z", "x", "b", "a", "y"}
	if got := mustKey(t, &shuffledMods); got != want {
		t.Errorf("module permutation changed the key under unfixed binding")
	}

	// Flow order (with conflicts remapped) is presentation.
	permuted := permuteFlows(base, []int{2, 0, 1})
	if got := mustKey(t, permuted); got != want {
		t.Errorf("flow permutation changed the key")
	}

	// Conflict orientation and order are presentation.
	flipped := *base
	flipped.Conflicts = [][2]int{{2, 1}, {1, 0}}
	if got := mustKey(t, &flipped); got != want {
		t.Errorf("conflict reorder/flip changed the key")
	}

	// Explicit default weights equal implicit defaults.
	weighted := *base
	weighted.Alpha = DefaultAlpha
	weighted.Beta = DefaultBeta
	if got := mustKey(t, &weighted); got != want {
		t.Errorf("explicit default weights changed the key")
	}
}

func TestCanonicalKeyClockwiseRotation(t *testing.T) {
	base := canonSpec()
	base.Binding = Clockwise
	want := mustKey(t, base)

	for r := 1; r < len(base.Modules); r++ {
		rot := *base
		rot.Modules = append(append([]string{}, base.Modules[r:]...), base.Modules[:r]...)
		if got := mustKey(t, &rot); got != want {
			t.Errorf("rotation by %d changed the clockwise key", r)
		}
	}

	// A non-cyclic permutation IS semantic for clockwise binding.
	swapped := *base
	swapped.Modules = []string{"b", "a", "x", "y", "z"}
	if got := mustKey(t, &swapped); got == want {
		t.Errorf("non-cyclic module swap should change the clockwise key")
	}
}

func TestCanonicalKeySeparatesProblems(t *testing.T) {
	base := canonSpec()
	want := mustKey(t, base)

	bigger := *base
	bigger.SwitchPins = 12
	if mustKey(t, &bigger) == want {
		t.Errorf("switch size not in key")
	}

	noConf := *base
	noConf.Conflicts = nil
	if mustKey(t, &noConf) == want {
		t.Errorf("conflicts not in key")
	}

	otherPolicy := *base
	otherPolicy.Binding = Clockwise
	if mustKey(t, &otherPolicy) == want {
		t.Errorf("binding policy not in key")
	}

	reweighted := *base
	reweighted.Beta = 7
	if mustKey(t, &reweighted) == want {
		t.Errorf("objective weights not in key")
	}
}

// TestCanonicalKeyPropertyRandom drives random valid specs through
// random presentation changes and checks key equality each time.
func TestCanonicalKeyPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := canonSpec()
		s.Binding = BindingPolicy(rng.Intn(2) + 1) // clockwise or unfixed
		want := mustKey(t, s)

		cp := *s
		if s.Binding == Unfixed {
			cp.Modules = append([]string(nil), s.Modules...)
			rng.Shuffle(len(cp.Modules), func(a, b int) {
				cp.Modules[a], cp.Modules[b] = cp.Modules[b], cp.Modules[a]
			})
		} else {
			r := rng.Intn(len(s.Modules))
			cp.Modules = append(append([]string{}, s.Modules[r:]...), s.Modules[:r]...)
		}
		perm := rng.Perm(len(s.Flows))
		pcp := permuteFlows(&cp, perm)
		for i, c := range pcp.Conflicts {
			if rng.Intn(2) == 0 {
				pcp.Conflicts[i] = [2]int{c[1], c[0]}
			}
		}
		rng.Shuffle(len(pcp.Conflicts), func(a, b int) {
			pcp.Conflicts[a], pcp.Conflicts[b] = pcp.Conflicts[b], pcp.Conflicts[a]
		})
		if got := mustKey(t, pcp); got != want {
			t.Fatalf("trial %d (binding %s): presentation change altered key", trial, s.Binding)
		}
	}
}

func TestCanonicalFlowOrderTotal(t *testing.T) {
	s := canonSpec()
	perm := s.CanonicalFlowOrder()
	seen := make([]bool, len(s.Flows))
	for _, i := range perm {
		if seen[i] {
			t.Fatalf("index %d repeated", i)
		}
		seen[i] = true
	}
	for i := 1; i < len(perm); i++ {
		a, b := s.Flows[perm[i-1]], s.Flows[perm[i]]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("not strictly ordered at %d", i)
		}
	}
}

func TestValidateHardening(t *testing.T) {
	var nilSpec *Spec
	if err := nilSpec.Validate(); err == nil {
		t.Error("nil spec validated")
	}

	dup := canonSpec()
	dup.Conflicts = [][2]int{{0, 1}, {1, 0}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate (flipped) conflict pair validated")
	}

	nan := canonSpec()
	nan.Alpha = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Error("NaN alpha validated")
	}

	var ve *ValidationError
	if err := dup.Validate(); !errors.As(err, &ve) {
		t.Errorf("Validate error %T is not a *ValidationError", err)
	}
}
