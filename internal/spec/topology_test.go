package spec

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func validFPVASpec() *Spec {
	return &Spec{
		Name:     "fpva-t",
		Topology: TopologyFPVA,
		GridRows: 3,
		GridCols: 4,
		Modules:  []string{"in1", "out1", "out2"},
		Flows:    []Flow{{From: "in1", To: "out1"}, {From: "in1", To: "out2"}},
		Binding:  Unfixed,
	}
}

func TestValidateFPVAOK(t *testing.T) {
	sp := validFPVASpec()
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid FPVA spec rejected: %v", err)
	}
	if !sp.IsFPVA() {
		t.Error("IsFPVA() = false")
	}
	if got, want := sp.Ports(), 14; got != want {
		t.Errorf("Ports() = %d, want %d", got, want)
	}
}

func TestValidateCrossbarAliasOK(t *testing.T) {
	sp := validSpec()
	sp.Topology = TopologyCrossbar
	if err := sp.Validate(); err != nil {
		t.Fatalf("explicit crossbar alias rejected: %v", err)
	}
	if sp.IsFPVA() {
		t.Error("crossbar alias reported as FPVA")
	}
	if got, want := sp.Ports(), sp.SwitchPins; got != want {
		t.Errorf("Ports() = %d, want SwitchPins %d", got, want)
	}
}

func TestValidateTopologyErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"zero grid", func(s *Spec) { s.GridRows, s.GridCols = 0, 0 }, "degenerate"},
		{"one-dim rows", func(s *Spec) { s.GridRows = 1 }, "degenerate"},
		{"one-dim cols", func(s *Spec) { s.GridCols = 1 }, "degenerate"},
		{"negative dims", func(s *Spec) { s.GridRows = -3 }, "degenerate"},
		{"oversized grid", func(s *Spec) { s.GridRows, s.GridCols = 11, 10 }, "exceeding the configured maximum"},
		{"switchPins with fpva", func(s *Spec) { s.SwitchPins = 8 }, "leave switchPins unset"},
		{"unknown topology", func(s *Spec) { s.Topology = "torus" }, "unknown topology"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := validFPVASpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("error %T is not a *ValidationError", err)
			}
		})
	}

	// Grid dimensions on a crossbar spec are rejected with a typed error too.
	s := validSpec()
	s.GridRows = 3
	err := s.Validate()
	if err == nil {
		t.Fatal("crossbar spec with grid dimensions accepted")
	}
	if !strings.Contains(err.Error(), "only valid with topology") {
		t.Fatalf("error %q does not explain the topology mismatch", err)
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("error %T is not a *ValidationError", err)
	}
}

// TestFPVAFixedPinsUseDerivedPortRange: fixed pin bounds come from
// Ports(), not the (zero) SwitchPins field.
func TestFPVAFixedPinsUseDerivedPortRange(t *testing.T) {
	sp := validFPVASpec() // 3×4 → 14 ports
	sp.Binding = Fixed
	sp.FixedPins = map[string]int{"in1": 0, "out1": 7, "out2": 13}
	if err := sp.Validate(); err != nil {
		t.Fatalf("in-range fixed pins rejected: %v", err)
	}
	sp.FixedPins["out2"] = 14
	if err := sp.Validate(); err == nil {
		t.Fatal("fixed pin 14 accepted on a 14-port grid")
	}
}

// TestFPVAModuleCapacityUsesDerivedPorts: the modules-fit-the-switch
// check counts FPVA boundary ports.
func TestFPVAModuleCapacityUsesDerivedPorts(t *testing.T) {
	sp := &Spec{
		Name:     "cap",
		Topology: TopologyFPVA,
		GridRows: 2,
		GridCols: 2, // 8 ports
		Binding:  Unfixed,
	}
	for i := 0; i < 4; i++ {
		in := "in" + string(rune('1'+i))
		out := "out" + string(rune('1'+i))
		sp.Modules = append(sp.Modules, in, out)
		sp.Flows = append(sp.Flows, Flow{From: in, To: out})
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("8 modules on 8 ports rejected: %v", err)
	}
	sp.Modules = append(sp.Modules, "in5", "out5")
	sp.Flows = append(sp.Flows, Flow{From: "in5", To: "out5"})
	if err := sp.Validate(); err == nil {
		t.Fatal("10 modules accepted on an 8-port grid")
	}
}

// TestSharedTopologyDispatch: the spec-level topology accessors resolve
// to the matching shared substrate.
func TestSharedTopologyDispatch(t *testing.T) {
	fsw, fpt, err := validFPVASpec().SharedTopology()
	if err != nil {
		t.Fatal(err)
	}
	if fsw.Kind != "fpva" || fsw.Rows != 3 || fsw.Cols != 4 || fpt == nil {
		t.Errorf("FPVA spec resolved to %q %dx%d", fsw.Kind, fsw.Rows, fsw.Cols)
	}
	csw, cpt, err := validSpec().SharedTopology()
	if err != nil {
		t.Fatal(err)
	}
	if csw.Kind != "grid" || csw.NumPins != 8 || cpt == nil {
		t.Errorf("crossbar spec resolved to %q with %d pins", csw.Kind, csw.NumPins)
	}
}

// TestCanonicalKeyTopologySeparation: an FPVA spec and a crossbar spec
// with the same port count and identical flows must canonicalize to
// different keys, transposed grids stay distinct, and the explicit
// crossbar alias canonicalizes to the default spelling's key.
func TestCanonicalKeyTopologySeparation(t *testing.T) {
	xbar := validSpec() // 8 pins
	fpva := &Spec{
		Name:     xbar.Name,
		Topology: TopologyFPVA,
		GridRows: 2,
		GridCols: 2, // 8 ports, same as the crossbar
		Modules:  append([]string(nil), xbar.Modules...),
		Flows:    append([]Flow(nil), xbar.Flows...),
		Binding:  xbar.Binding,
	}
	xk, err := xbar.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	fk, err := fpva.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if xk == fk {
		t.Error("crossbar and FPVA specs with equal port counts share a canonical key")
	}

	transposed := *fpva
	transposed.GridRows, transposed.GridCols = 3, 2
	flat := *fpva
	flat.GridRows, flat.GridCols = 2, 3
	tk, err := transposed.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	lk, err := flat.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if tk == lk {
		t.Error("transposed FPVA grids share a canonical key")
	}

	alias := *xbar
	alias.Topology = TopologyCrossbar
	ak, err := alias.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if ak != xk {
		t.Error("explicit crossbar alias changed the canonical key")
	}
}

// TestFPVASpecJSONRoundTrip: topology fields survive JSON and crossbar
// specs never serialize them (wire compatibility).
func TestFPVASpecJSONRoundTrip(t *testing.T) {
	sp := validFPVASpec()
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Topology != TopologyFPVA || back.GridRows != 3 || back.GridCols != 4 {
		t.Errorf("round trip lost topology fields: %+v", back)
	}

	cdata, err := json.Marshal(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"topology", "gridRows", "gridCols"} {
		if strings.Contains(string(cdata), field) {
			t.Errorf("crossbar spec JSON mentions %q: %s", field, cdata)
		}
	}
}
