// Package spec defines the synthesis problem statement — the inputs of the
// paper's problem formulation (Section 2.3) — and the synthesized plan that
// the engines return.
//
// Input: the groups of flows to execute, the conflicting flow pairs, the
// binding policy (fixed, clockwise or unfixed) and, for clockwise binding,
// the order of the connected modules.
//
// Output: the parallel-executable flow sets, contamination-free routing
// paths, module–pin binding, the used flow channels and their total length.
package spec

import (
	"fmt"
	"math"
	"time"

	"switchsynth/internal/topo"
)

// BindingPolicy selects how modules are bound to switch pins.
type BindingPolicy int

// Binding policies from the paper.
const (
	// Fixed binds every module to the pin given in Spec.FixedPins.
	Fixed BindingPolicy = iota
	// Clockwise assigns modules to pins so that walking the module list
	// wraps exactly once clockwise around the switch (pins may be skipped).
	Clockwise
	// Unfixed lets the synthesizer choose any module-to-pin assignment.
	Unfixed
)

// String implements fmt.Stringer.
func (b BindingPolicy) String() string {
	switch b {
	case Fixed:
		return "fixed"
	case Clockwise:
		return "clockwise"
	case Unfixed:
		return "unfixed"
	}
	return "?"
}

// ParseBindingPolicy converts a policy name to its value.
func ParseBindingPolicy(s string) (BindingPolicy, error) {
	switch s {
	case "fixed":
		return Fixed, nil
	case "clockwise":
		return Clockwise, nil
	case "unfixed":
		return Unfixed, nil
	}
	return 0, fmt.Errorf("spec: unknown binding policy %q", s)
}

// Flow is one fluid transport: from a source module to a destination module.
type Flow struct {
	// From and To are module names. From is the inlet side.
	From string `json:"from"`
	To   string `json:"to"`
}

// Spec is the full synthesis input.
type Spec struct {
	// Name labels the case in reports.
	Name string `json:"name"`
	// SwitchPins is the switch model size. The paper's sizes are 8, 12
	// and 16; this library additionally supports 20 and 24 (the "larger
	// switch structures" of the paper's future work). Crossbar topology
	// only: FPVA specs leave it zero and derive their port count from
	// the grid dimensions (see Ports).
	SwitchPins int `json:"switchPins"`
	// Topology selects the switch substrate: "" or "crossbar" (the
	// paper's reconfigurable crossbar, the default) or "fpva" (a fully
	// programmable valve array — an N×M junction grid with a valve on
	// every channel segment and boundary I/O ports, sized by GridRows ×
	// GridCols). The zero value keeps every pre-existing spec byte-for-
	// byte compatible.
	Topology string `json:"topology,omitempty"`
	// GridRows and GridCols are the FPVA junction-grid dimensions
	// (Topology == "fpva" only; both must be ≥ 2 and their product at
	// most MaxGridCells).
	GridRows int `json:"gridRows,omitempty"`
	GridCols int `json:"gridCols,omitempty"`
	// Modules lists the connected modules. For the clockwise policy the
	// list order is the user-defined clockwise order.
	Modules []string `json:"modules"`
	// Flows lists the fluid transports to route.
	Flows []Flow `json:"flows"`
	// Conflicts lists pairs of flow indices whose fluids must never share a
	// node or segment (the paper's set CF).
	Conflicts [][2]int `json:"conflicts,omitempty"`
	// Binding selects the module-to-pin binding policy.
	Binding BindingPolicy `json:"binding"`
	// FixedPins maps module name to clockwise pin order (Fixed policy only).
	FixedPins map[string]int `json:"fixedPins,omitempty"`
	// Alpha weights the number of flow sets in the objective (default 1).
	Alpha float64 `json:"alpha,omitempty"`
	// Beta weights the flow channel length in mm (default 100, the paper's
	// setting).
	Beta float64 `json:"beta,omitempty"`
	// MaxSets caps the number of flow sets (default: number of flows).
	MaxSets int `json:"maxSets,omitempty"`
	// Scalable requests the Columba-S-compatible drawing variant; it does
	// not change the routing topology.
	Scalable bool `json:"scalable,omitempty"`
}

// Default objective weights (Section 4: α = 1, β = 100).
const (
	DefaultAlpha = 1
	DefaultBeta  = 100
)

// Topology names accepted by Spec.Topology. The empty string is the
// canonical crossbar spelling; TopologyCrossbar is accepted as an
// explicit alias and normalized away by CanonicalSpec.
const (
	TopologyCrossbar = "crossbar"
	TopologyFPVA     = "fpva"
)

// MaxGridCells caps an FPVA spec's junction count (GridRows × GridCols).
// The bound keeps the worst-case topology inside the fixed 256-bit
// vertex/edge masks of the synthesis engines: at 100 cells the most
// extreme aspect ratio (2×50) still needs only 204 vertices and 252
// edges.
const MaxGridCells = 100

// IsFPVA reports whether the spec targets the FPVA grid topology.
func (s *Spec) IsFPVA() bool { return s.Topology == TopologyFPVA }

// Ports returns the number of boundary I/O ports of the spec's switch:
// SwitchPins for the crossbar, 2·(GridRows+GridCols) for an FPVA grid.
// Every pin-order range in the codebase (bindings, fixed pins, route
// endpoints) is [0, Ports()).
func (s *Spec) Ports() int {
	if s.IsFPVA() {
		return 2 * (s.GridRows + s.GridCols)
	}
	return s.SwitchPins
}

// SharedSwitch returns the process-shared switch model for the spec's
// topology, without a path table (plan decoding does not need one).
func (s *Spec) SharedSwitch() (*topo.Switch, error) {
	if s.IsFPVA() {
		return topo.SharedFPVASwitch(s.GridRows, s.GridCols)
	}
	return topo.SharedSwitch(s.SwitchPins)
}

// SharedTopology returns the process-shared switch model and path table
// for the spec's topology — the single dispatch point the synthesis
// engines use, so crossbar and FPVA specs flow through identical solver
// machinery on different substrates.
func (s *Spec) SharedTopology() (*topo.Switch, *topo.PathTable, error) {
	if s.IsFPVA() {
		return topo.SharedFPVA(s.GridRows, s.GridCols)
	}
	return topo.SharedGrid(s.SwitchPins)
}

// EffectiveAlpha returns Alpha or its default.
func (s *Spec) EffectiveAlpha() float64 {
	if s.Alpha > 0 {
		return s.Alpha
	}
	return DefaultAlpha
}

// EffectiveBeta returns Beta or its default.
func (s *Spec) EffectiveBeta() float64 {
	if s.Beta > 0 {
		return s.Beta
	}
	return DefaultBeta
}

// EffectiveMaxSets returns MaxSets or its default (one set per flow).
func (s *Spec) EffectiveMaxSets() int {
	if s.MaxSets > 0 {
		return s.MaxSets
	}
	return len(s.Flows)
}

// ModuleIndex returns the index of the named module, or -1.
func (s *Spec) ModuleIndex(name string) int {
	for i, m := range s.Modules {
		if m == name {
			return i
		}
	}
	return -1
}

// Sources returns, per flow, the module index of the flow's source.
func (s *Spec) Sources() []int {
	out := make([]int, len(s.Flows))
	for i, f := range s.Flows {
		out[i] = s.ModuleIndex(f.From)
	}
	return out
}

// Destinations returns, per flow, the module index of the flow's destination.
func (s *Spec) Destinations() []int {
	out := make([]int, len(s.Flows))
	for i, f := range s.Flows {
		out[i] = s.ModuleIndex(f.To)
	}
	return out
}

// ConflictsWith returns a symmetric lookup: m[i] is the set of flows
// conflicting with flow i.
func (s *Spec) ConflictsWith() [][]int {
	out := make([][]int, len(s.Flows))
	for _, c := range s.Conflicts {
		out[c[0]] = append(out[c[0]], c[1])
		out[c[1]] = append(out[c[1]], c[0])
	}
	return out
}

// ValidationError reports a malformed spec. Every failure of Validate is
// (or wraps) one, so service layers can classify client errors with
// errors.As instead of matching message strings.
type ValidationError struct{ msg string }

// Error implements error.
func (e *ValidationError) Error() string { return e.msg }

// errf builds a ValidationError.
func errf(format string, args ...any) error {
	return &ValidationError{msg: fmt.Sprintf(format, args...)}
}

// Validate checks the spec against the model's preconditions (Section 4.2
// defaults): switch size is supported; every module is used and is
// exclusively a source or a destination; destination modules receive at most
// one flow; conflicts reference distinct flows with distinct sources and no
// pair appears twice (in either orientation); fixed binding covers every
// module with distinct, in-range pins; objective weights are finite.
func (s *Spec) Validate() error {
	if s == nil {
		return errf("spec: nil spec")
	}
	if err := s.validateTopology(); err != nil {
		return err
	}
	if len(s.Modules) == 0 {
		return errf("spec %q: no modules", s.Name)
	}
	if len(s.Modules) > s.Ports() {
		return errf("spec %q: %d modules exceed %d pins", s.Name, len(s.Modules), s.Ports())
	}
	seen := make(map[string]bool, len(s.Modules))
	for _, m := range s.Modules {
		if m == "" {
			return errf("spec %q: empty module name", s.Name)
		}
		if seen[m] {
			return errf("spec %q: duplicate module %q", s.Name, m)
		}
		seen[m] = true
	}
	if len(s.Flows) == 0 {
		return errf("spec %q: no flows", s.Name)
	}
	isSource := make(map[string]bool)
	isDest := make(map[string]bool)
	destCount := make(map[string]int)
	for i, f := range s.Flows {
		if !seen[f.From] {
			return errf("spec %q: flow %d source %q is not a module", s.Name, i, f.From)
		}
		if !seen[f.To] {
			return errf("spec %q: flow %d destination %q is not a module", s.Name, i, f.To)
		}
		if f.From == f.To {
			return errf("spec %q: flow %d has identical endpoints %q", s.Name, i, f.From)
		}
		isSource[f.From] = true
		isDest[f.To] = true
		destCount[f.To]++
	}
	for m := range isSource {
		if isDest[m] {
			return errf("spec %q: module %q is both a source and a destination (each module must be either the inlet or the outlet to the switch)", s.Name, m)
		}
	}
	for m, c := range destCount {
		if c > 1 {
			return errf("spec %q: outlet module %q receives %d flows (each outlet pin can be accessed at most once)", s.Name, m, c)
		}
	}
	for _, m := range s.Modules {
		if !isSource[m] && !isDest[m] {
			return errf("spec %q: module %q is connected but unused by any flow", s.Name, m)
		}
	}
	conflictSeen := make(map[[2]int]int, len(s.Conflicts))
	for ci, c := range s.Conflicts {
		a, b := c[0], c[1]
		if a < 0 || a >= len(s.Flows) || b < 0 || b >= len(s.Flows) {
			return errf("spec %q: conflict %d references invalid flow index (pair [%d %d], %d flows)", s.Name, ci, a, b, len(s.Flows))
		}
		if a == b {
			return errf("spec %q: conflict %d pairs flow %d with itself", s.Name, ci, a)
		}
		if s.Flows[a].From == s.Flows[b].From {
			return errf("spec %q: conflict %d pairs flows with the same inlet %q (same fluid cannot conflict with itself)", s.Name, ci, s.Flows[a].From)
		}
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if prev, dup := conflictSeen[key]; dup {
			return errf("spec %q: conflict %d duplicates conflict %d (flows %d and %d)", s.Name, ci, prev, key[0], key[1])
		}
		conflictSeen[key] = ci
	}
	if s.Binding == Fixed {
		if len(s.FixedPins) != len(s.Modules) {
			return errf("spec %q: fixed binding needs a pin for each of the %d modules, got %d", s.Name, len(s.Modules), len(s.FixedPins))
		}
		pinUsed := make(map[int]string)
		for m, p := range s.FixedPins {
			if !seen[m] {
				return errf("spec %q: fixed pin for unknown module %q", s.Name, m)
			}
			if p < 0 || p >= s.Ports() {
				return errf("spec %q: module %q pin %d out of range [0,%d)", s.Name, m, p, s.Ports())
			}
			if other, dup := pinUsed[p]; dup {
				return errf("spec %q: modules %q and %q share pin %d", s.Name, other, m, p)
			}
			pinUsed[p] = m
		}
	}
	if s.Alpha < 0 || s.Beta < 0 {
		return errf("spec %q: negative objective weights", s.Name)
	}
	if math.IsNaN(s.Alpha) || math.IsInf(s.Alpha, 0) || math.IsNaN(s.Beta) || math.IsInf(s.Beta, 0) {
		return errf("spec %q: objective weights must be finite (alpha=%v beta=%v)", s.Name, s.Alpha, s.Beta)
	}
	if s.MaxSets < 0 {
		return errf("spec %q: negative MaxSets", s.Name)
	}
	return nil
}

// validateTopology checks the substrate selection: the crossbar branch
// keeps the paper's supported pin sizes and must not carry FPVA grid
// dimensions; the FPVA branch rejects degenerate (0- or 1-dimensional)
// and oversized grids with typed ValidationErrors and derives its port
// count from the dimensions, so SwitchPins must stay unset.
func (s *Spec) validateTopology() error {
	switch s.Topology {
	case "", TopologyCrossbar:
		if s.GridRows != 0 || s.GridCols != 0 {
			return errf("spec %q: grid dimensions %dx%d are only valid with topology %q (crossbar sizes come from switchPins)",
				s.Name, s.GridRows, s.GridCols, TopologyFPVA)
		}
		switch s.SwitchPins {
		case 8, 12, 16, 20, 24:
		default:
			return errf("spec %q: switch size %d not supported (want 8, 12, 16, 20 or 24)", s.Name, s.SwitchPins)
		}
	case TopologyFPVA:
		if s.SwitchPins != 0 {
			return errf("spec %q: fpva topology derives its %d ports from the %dx%d grid; leave switchPins unset (got %d)",
				s.Name, s.Ports(), s.GridRows, s.GridCols, s.SwitchPins)
		}
		if s.GridRows < 2 || s.GridCols < 2 {
			return errf("spec %q: fpva grid %dx%d is degenerate (both dimensions must be at least 2)",
				s.Name, s.GridRows, s.GridCols)
		}
		if cells := s.GridRows * s.GridCols; cells > MaxGridCells {
			return errf("spec %q: fpva grid %dx%d has %d cells, exceeding the configured maximum of %d",
				s.Name, s.GridRows, s.GridCols, cells, MaxGridCells)
		}
	default:
		return errf("spec %q: unknown topology %q (want %q or %q)", s.Name, s.Topology, TopologyCrossbar, TopologyFPVA)
	}
	return nil
}

// Route is one synthesized flow route.
type Route struct {
	// Flow indexes Spec.Flows.
	Flow int
	// Set is the flow set (execution phase) the flow is scheduled in.
	Set int
	// Path is the chosen contamination-checked path, inlet pin → outlet pin.
	Path topo.Path
}

// Result is a synthesized application-specific switch plan.
type Result struct {
	// Spec echoes the input.
	Spec *Spec
	// Switch is the full switch model the plan routes on. The
	// application-specific switch keeps exactly the UsedEdges of it.
	Switch *topo.Switch
	// PinOf maps module name to the clockwise pin order it is bound to.
	PinOf map[string]int
	// Routes holds one entry per flow, in flow order.
	Routes []Route
	// NumSets is the number of non-empty flow sets.
	NumSets int
	// UsedEdgeMask is the bitset of switch edge IDs used by any route.
	UsedEdgeMask topo.Bits
	// Length is the total length in mm of the used flow channels (the
	// channel length of the reduced, application-specific switch).
	Length float64
	// Objective is α·NumSets + β·Length.
	Objective float64
	// Proven reports whether the engine proved the plan optimal.
	Proven bool
	// Degraded reports that the plan was returned without an optimality
	// proof because a resource limit (deadline, cancellation) cut the
	// optimization short: the best incumbent found so far, or a greedy
	// first-fit fallback plan. Degraded plans still satisfy every
	// feasibility rule and pass contam.Verify.
	Degraded bool
	// LowerBound is the best proven lower bound on the objective. For a
	// proven plan it equals Objective; for a degraded plan it is the
	// admissible root bound the search established before being cut off.
	LowerBound float64
	// Gap is the relative optimality gap (Objective − LowerBound) /
	// Objective, in [0, 1]. Zero for proven plans.
	Gap float64
	// Runtime is the wall-clock synthesis time.
	Runtime time.Duration
	// Engine names the engine that produced the plan.
	Engine string
}

// UsedEdges returns the IDs of the used switch edges in ascending order.
func (r *Result) UsedEdges() []int {
	var out []int
	for e := range r.Switch.Edges {
		if r.UsedEdgeMask.Has(e) {
			out = append(out, e)
		}
	}
	return out
}

// SetOf returns the routes grouped by flow set.
func (r *Result) SetOf() [][]Route {
	out := make([][]Route, r.NumSets)
	for _, rt := range r.Routes {
		out[rt.Set] = append(out[rt.Set], rt)
	}
	return out
}

// InletPinOrder returns the clockwise pin order of the inlet of flow i.
func (r *Result) InletPinOrder(i int) int {
	return r.PinOf[r.Spec.Flows[i].From]
}

// OutletPinOrder returns the clockwise pin order of the outlet of flow i.
func (r *Result) OutletPinOrder(i int) int {
	return r.PinOf[r.Spec.Flows[i].To]
}

// ErrNoSolution is returned by engines that prove the spec infeasible under
// its binding policy — the paper's "no solution" table entries.
type ErrNoSolution struct {
	SpecName string
	Policy   BindingPolicy
}

// Error implements error.
func (e *ErrNoSolution) Error() string {
	return fmt.Sprintf("no solution for %q under %s binding", e.SpecName, e.Policy)
}
