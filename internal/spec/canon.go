// Canonicalization of synthesis specs.
//
// Two specs that differ only in presentation — the order of the module
// list (where the policy permits), the order of the flow list, or the
// order and orientation of the conflict pairs — describe the same
// synthesis problem and admit the same plans. CanonicalKey maps every
// member of such an equivalence class to one hash, so a service-level
// result cache can solve the class once and serve every member from the
// single stored plan (adapted back onto the requesting spec's flow
// indexing).
//
// The normalizations mirror the symmetries the engines already exploit:
//
//   - Unfixed and Fixed binding: the module list order carries no
//     meaning (unfixed lets the solver pick any pin; fixed pins are
//     keyed by name), so modules are sorted. This is the spec-level
//     analog of the rotational pin-symmetry cut in internal/search.
//   - Clockwise binding: the module list is a cyclic order — rotating
//     it yields the identical feasibility region (the engine's descent
//     count is rotation-invariant) — so the list is rotated to its
//     lexicographically smallest rotation. Reversal is NOT a symmetry
//     (it turns clockwise into counter-clockwise) and is not applied.
//   - Flows: sorted by (From, To). Conflict pairs follow the flow
//     permutation, are oriented low-index-first and sorted.
//   - Name and Scalable are presentation-only and excluded; the
//     objective weights and set cap enter via their effective values.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// CanonicalKey returns a stable hex digest identifying sp's equivalence
// class under the presentation symmetries above. Specs with equal keys
// are solvable by the same plan (modulo flow reindexing; see
// CanonicalFlowOrder). The spec must be valid.
func (s *Spec) CanonicalKey() (string, error) {
	if s == nil {
		return "", fmt.Errorf("spec: CanonicalKey on nil spec")
	}
	if err := s.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v1|pins=%d|binding=%s|alpha=%g|beta=%g|maxsets=%d\n",
		s.Ports(), s.Binding, s.EffectiveAlpha(), s.EffectiveBeta(), s.EffectiveMaxSets())

	// The topology line appears only for non-crossbar substrates, so
	// every pre-existing crossbar key digest is unchanged, while an FPVA
	// spec whose port count collides with a crossbar size (e.g. a 2×2
	// grid's 8 ports vs the 8-pin crossbar) can never share its key.
	if s.IsFPVA() {
		fmt.Fprintf(&b, "topology=%s|rows=%d|cols=%d\n", TopologyFPVA, s.GridRows, s.GridCols)
	}

	b.WriteString("modules=")
	b.WriteString(strings.Join(s.canonicalModules(), "\x1f"))
	b.WriteByte('\n')

	perm := s.CanonicalFlowOrder()
	b.WriteString("flows=")
	for i, fi := range perm {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		f := s.Flows[fi]
		b.WriteString(f.From)
		b.WriteByte('\x1e')
		b.WriteString(f.To)
	}
	b.WriteByte('\n')

	// Conflict pairs in the canonical flow indexing, oriented and sorted.
	pos := make([]int, len(s.Flows)) // original index -> canonical index
	for ci, fi := range perm {
		pos[fi] = ci
	}
	pairs := s.canonicalConflicts(pos)
	b.WriteString("conflicts=")
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		fmt.Fprintf(&b, "%d-%d", p[0], p[1])
	}
	b.WriteByte('\n')

	if s.Binding == Fixed {
		names := make([]string, 0, len(s.FixedPins))
		for m := range s.FixedPins {
			names = append(names, m)
		}
		sort.Strings(names)
		b.WriteString("fixedpins=")
		for i, m := range names {
			if i > 0 {
				b.WriteByte('\x1f')
			}
			fmt.Fprintf(&b, "%s\x1e%d", m, s.FixedPins[m])
		}
		b.WriteByte('\n')
	}

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), nil
}

// CanonicalSpec returns a semantically identical copy of s in canonical
// presentation: canonical module order, flows in canonical (From, To)
// order, conflicts remapped onto the new flow indices, oriented
// low-first, sorted and deduplicated. Every member of one equivalence
// class maps to the same canonical presentation (up to Name and
// Scalable, which no engine consults), so solving the canonical spec
// yields one deterministic plan per class — independent of which member
// triggered the solve.
func (s *Spec) CanonicalSpec() (*Spec, error) {
	if s == nil {
		return nil, fmt.Errorf("spec: CanonicalSpec on nil spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cp := *s
	// "crossbar" is an accepted alias for the default topology; the
	// canonical presentation always uses the zero value, so plans solved
	// for the canonical spec serialize without the redundant selector.
	if cp.Topology == TopologyCrossbar {
		cp.Topology = ""
	}
	cp.Modules = s.canonicalModules()
	perm := s.CanonicalFlowOrder()
	cp.Flows = make([]Flow, len(perm))
	pos := make([]int, len(perm))
	for ci, fi := range perm {
		cp.Flows[ci] = s.Flows[fi]
		pos[fi] = ci
	}
	cp.Conflicts = s.canonicalConflicts(pos)
	return &cp, nil
}

// canonicalConflicts maps the conflict pairs through pos (original flow
// index → canonical index), orients each pair low-first, sorts and
// deduplicates.
func (s *Spec) canonicalConflicts(pos []int) [][2]int {
	pairs := make([][2]int, 0, len(s.Conflicts))
	seen := make(map[[2]int]bool, len(s.Conflicts))
	for _, c := range s.Conflicts {
		p := [2]int{pos[c[0]], pos[c[1]]}
		if p[0] > p[1] {
			p[0], p[1] = p[1], p[0]
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	return pairs
}

// canonicalModules returns the module list in canonical order: sorted
// for fixed/unfixed binding, the lexicographically smallest rotation for
// clockwise binding (whose cyclic order is semantic).
func (s *Spec) canonicalModules() []string {
	mods := append([]string(nil), s.Modules...)
	if s.Binding != Clockwise {
		sort.Strings(mods)
		return mods
	}
	best := 0
	for r := 1; r < len(mods); r++ {
		if rotationLess(mods, r, best) {
			best = r
		}
	}
	out := make([]string, 0, len(mods))
	out = append(out, mods[best:]...)
	out = append(out, mods[:best]...)
	return out
}

// rotationLess reports whether rotation a of mods sorts before rotation b.
func rotationLess(mods []string, a, b int) bool {
	n := len(mods)
	for i := 0; i < n; i++ {
		ma, mb := mods[(a+i)%n], mods[(b+i)%n]
		if ma != mb {
			return ma < mb
		}
	}
	return false
}

// CanonicalFlowOrder returns a permutation perm of the flow indices such
// that walking Flows[perm[0]], Flows[perm[1]], … visits the flows in
// canonical (From, To)-lexicographic order. Because every outlet module
// receives at most one flow (Validate's outlet-once rule), the (From,
// To) pair identifies a flow uniquely, so the permutation is total and
// deterministic for every valid spec.
func (s *Spec) CanonicalFlowOrder() []int {
	perm := make([]int, len(s.Flows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		fa, fb := s.Flows[perm[a]], s.Flows[perm[b]]
		if fa.From != fb.From {
			return fa.From < fb.From
		}
		return fa.To < fb.To
	})
	return perm
}
