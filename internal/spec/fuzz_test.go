package spec

import (
	"errors"
	"fmt"
	"testing"
)

// FuzzValidate hammers Validate with structurally diverse specs across
// both topologies. The properties: Validate never panics; every
// rejection is a typed *ValidationError; and every accepted spec is
// fully usable — its port count is positive and consistent, its shared
// switch model resolves with a matching port count, and its canonical
// key is computable and stable under canonicalization.
func FuzzValidate(f *testing.F) {
	f.Add("", 8, 0, 0, uint8(1), uint8(2), uint8(0), false)
	f.Add("crossbar", 12, 0, 0, uint8(2), uint8(3), uint8(1), false)
	f.Add("fpva", 0, 3, 4, uint8(2), uint8(2), uint8(2), false)
	f.Add("fpva", 0, 2, 2, uint8(1), uint8(1), uint8(0), true)
	f.Add("fpva", 8, 1, 200, uint8(1), uint8(1), uint8(0), false)
	f.Add("torus", 8, 3, 3, uint8(1), uint8(1), uint8(0), false)
	f.Add("fpva", 0, -5, 1<<30, uint8(9), uint8(0), uint8(255), true)

	f.Fuzz(func(t *testing.T, topology string, pins, rows, cols int, nIn, nOut, conflictMask uint8, fixed bool) {
		sp := &Spec{
			Name:       "fuzz",
			Topology:   topology,
			SwitchPins: pins,
			GridRows:   rows,
			GridCols:   cols,
			Binding:    Unfixed,
		}
		// Deterministic module/flow structure from the counts: each
		// inlet feeds outlets round-robin so every module is used.
		in := int(nIn%8) + 1
		out := int(nOut%8) + 1
		for i := 0; i < in; i++ {
			sp.Modules = append(sp.Modules, fmt.Sprintf("in%d", i+1))
		}
		for i := 0; i < out; i++ {
			sp.Modules = append(sp.Modules, fmt.Sprintf("out%d", i+1))
			sp.Flows = append(sp.Flows, Flow{
				From: fmt.Sprintf("in%d", i%in+1),
				To:   fmt.Sprintf("out%d", i+1),
			})
		}
		for i := 0; i+1 < len(sp.Flows) && i < 8; i++ {
			if conflictMask&(1<<i) != 0 {
				sp.Conflicts = append(sp.Conflicts, [2]int{i, i + 1})
			}
		}
		if fixed {
			sp.Binding = Fixed
			sp.FixedPins = map[string]int{}
			for i, m := range sp.Modules {
				sp.FixedPins[m] = i
			}
		}

		err := sp.Validate()
		if err != nil {
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("Validate returned %T, want *ValidationError: %v", err, err)
			}
			return
		}

		// Accepted: the derived port count must be positive, bound the
		// modules, and agree with the shared switch model.
		ports := sp.Ports()
		if ports <= 0 {
			t.Fatalf("accepted spec has %d ports", ports)
		}
		if len(sp.Modules) > ports {
			t.Fatalf("accepted spec binds %d modules on %d ports", len(sp.Modules), ports)
		}
		sw, errSw := sp.SharedSwitch()
		if errSw != nil {
			t.Fatalf("accepted spec has no switch model: %v", errSw)
		}
		if sw.NumPins != ports {
			t.Fatalf("switch has %d pins, Ports() says %d", sw.NumPins, ports)
		}
		if sp.IsFPVA() != (sw.Kind == "fpva") {
			t.Fatalf("topology %q resolved to switch kind %q", sp.Topology, sw.Kind)
		}

		// Canonicalization must succeed and be a fixed point key-wise.
		key, errKey := sp.CanonicalKey()
		if errKey != nil {
			t.Fatalf("accepted spec has no canonical key: %v", errKey)
		}
		canon, errCanon := sp.CanonicalSpec()
		if errCanon != nil {
			t.Fatalf("accepted spec does not canonicalize: %v", errCanon)
		}
		if errV := canon.Validate(); errV != nil {
			t.Fatalf("canonical spec fails validation: %v", errV)
		}
		key2, errKey2 := canon.CanonicalKey()
		if errKey2 != nil || key2 != key {
			t.Fatalf("canonicalization changed the key: %q vs %q (%v)", key, key2, errKey2)
		}
	})
}
