// Package sim executes a synthesized switch plan on a fluidic simulator:
// an independent, dynamic check of the guarantees the synthesizer proves
// statically.
//
// The simulator runs the flow sets in order. In each set it derives the
// effective valve states (closed valves from the valve analysis, optionally
// resolved through the shared pressure sequences of a clique cover, every
// removed valve permanently open), injects each active inlet's fluid at its
// pin, and floods the fluid through every reachable open channel — the
// conservative model of pressure-driven flow. It reports:
//
//   - Misroute: fluid reaching a pin of a module that is never a
//     destination of that fluid — the failure the paper ascribes to
//     valve-less spine switches ("some of the fluids from RC1 may go to
//     p_c2").
//   - Collision: two different inlets' fluids meeting in the same flow set.
//   - Unreached: a scheduled flow whose outlet its fluid cannot reach
//     (an over-closed valve).
//   - Contamination: fluid touching the residue of a conflicting fluid.
//     Residue persists on every channel and junction a fluid ever touched.
//
// A verified synthesis must simulate with a clean report; the baselines
// must not. Both facts are asserted in the test suites.
package sim

import (
	"fmt"
	"sort"

	"switchsynth/internal/clique"
	"switchsynth/internal/spec"
	"switchsynth/internal/valve"
)

// EventKind classifies simulation findings.
type EventKind int

// Event kinds.
const (
	Misroute EventKind = iota
	Collision
	Unreached
	Contamination
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Misroute:
		return "misroute"
	case Collision:
		return "collision"
	case Unreached:
		return "unreached"
	case Contamination:
		return "contamination"
	}
	return "?"
}

// Event is one simulation finding.
type Event struct {
	Kind EventKind
	// Set is the flow set during which the event occurred.
	Set int
	// Fluid is the inlet module whose fluid triggered the event.
	Fluid string
	// Other is the second fluid (Collision/Contamination) or the wrongly
	// reached module (Misroute) or the unreached destination (Unreached).
	Other string
	// Where names the vertex or edge of the event.
	Where string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("set %d: %s of %s vs %s at %s", e.Set+1, e.Kind, e.Fluid, e.Other, e.Where)
}

// Report is a full simulation outcome.
type Report struct {
	Events []Event
	// FluidReach[set][inlet] holds the vertices each fluid reached per set.
	FluidReach []map[string][]int
}

// Clean reports whether the simulation found no problems.
func (r *Report) Clean() bool { return len(r.Events) == 0 }

// Count returns the number of events of kind k.
func (r *Report) Count(k EventKind) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Options configure a simulation run.
type Options struct {
	// Valves is the valve analysis of the plan; nil simulates with every
	// valve permanently open (the valve-less spine situation).
	Valves *valve.Analysis
	// Pressure optionally resolves don't-care states through the shared
	// pressure sequences of the cover's groups: a valve is closed whenever
	// its control inlet pressurizes, even in its own X sets.
	Pressure *clique.Cover
	// SetOrder optionally overrides the execution order of the flow sets
	// (used by wash-aware schedules). Defaults to 0..NumSets-1.
	SetOrder []int
	// WashAfter optionally flushes all residue after given execution
	// positions (aligned with SetOrder).
	WashAfter []bool
}

// Run simulates the plan.
func Run(res *spec.Result, opts Options) (*Report, error) {
	sw := res.Switch
	nSets := res.NumSets
	order := opts.SetOrder
	if order == nil {
		order = make([]int, nSets)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != nSets {
		return nil, fmt.Errorf("sim: order covers %d sets, plan has %d", len(order), nSets)
	}

	closedInSet, err := effectiveClosures(res, opts)
	if err != nil {
		return nil, err
	}

	// Destinations each fluid may legitimately reach (in any set).
	mayReach := map[string]map[string]bool{}
	for _, f := range res.Spec.Flows {
		if mayReach[f.From] == nil {
			mayReach[f.From] = map[string]bool{}
		}
		mayReach[f.From][f.To] = true
	}
	moduleAtPin := map[int]string{}
	for m, p := range res.PinOf {
		moduleAtPin[sw.PinVertex(p)] = m
	}
	// Conflicting fluid pairs (by inlet module).
	conflictFluid := map[[2]string]bool{}
	for _, c := range res.Spec.Conflicts {
		a := res.Spec.Flows[c[0]].From
		b := res.Spec.Flows[c[1]].From
		conflictFluid[[2]string{a, b}] = true
		conflictFluid[[2]string{b, a}] = true
	}

	rep := &Report{FluidReach: make([]map[string][]int, nSets)}
	// Residues on vertices and edges: fluid name → touched.
	vertResidue := make([]map[string]bool, len(sw.Vertices))
	edgeResidue := make([]map[string]bool, len(sw.Edges))
	for i := range vertResidue {
		vertResidue[i] = map[string]bool{}
	}
	for i := range edgeResidue {
		edgeResidue[i] = map[string]bool{}
	}

	for pos, set := range order {
		closed := closedInSet[set]
		// Which fluids are active, and which outlets they expect this set.
		active := map[string]bool{}
		expect := map[string]map[int]bool{} // fluid → outlet pin vertices
		for _, rt := range res.Routes {
			if rt.Set != set {
				continue
			}
			f := res.Spec.Flows[rt.Flow]
			active[f.From] = true
			if expect[f.From] == nil {
				expect[f.From] = map[int]bool{}
			}
			expect[f.From][sw.PinVertex(res.PinOf[f.To])] = true
		}
		var fluids []string
		for f := range active {
			fluids = append(fluids, f)
		}
		sort.Strings(fluids)

		// Active sinks of this set: the outlet pins of all scheduled flows.
		// Module ports of inactive modules are gated by the modules' own
		// valves, so flow only runs between active inlets and active
		// outlets; everything else is dead-end wetting (PDMS is
		// gas-permeable, so dead ends do fill and collect residue, but no
		// through-flow and hence no misrouting happens there).
		sinks := map[int]bool{}
		for _, outs := range expect {
			for out := range outs {
				sinks[out] = true
			}
		}

		reach := map[string][]int{}
		reachE := map[string][]int{}
		vertFluid := map[int][]string{}
		for _, fluid := range fluids {
			inletPin := sw.PinVertex(res.PinOf[fluid])
			wetV, wetE := flood(res, inletPin, closed)
			reach[fluid] = wetV
			reachE[fluid] = wetE
			flowV := flowRegion(res, wetV, closed, inletPin, sinks)
			for _, v := range flowV {
				vertFluid[v] = append(vertFluid[v], fluid)
				// Misroute: flowing into a pin of a foreign module.
				if mod, isPin := moduleAtPin[v]; isPin && mod != fluid && !mayReach[fluid][mod] {
					rep.Events = append(rep.Events, Event{
						Kind: Misroute, Set: set, Fluid: fluid, Other: mod,
						Where: sw.Vertices[v].Name,
					})
				}
			}
			// Contamination by older residue of a conflicting fluid: any
			// wetted channel counts, dead ends included.
			for _, v := range wetV {
				for other := range vertResidue[v] {
					if conflictFluid[[2]string{fluid, other}] {
						rep.Events = append(rep.Events, Event{
							Kind: Contamination, Set: set, Fluid: fluid, Other: other,
							Where: sw.Vertices[v].Name,
						})
					}
				}
			}
			for _, e := range wetE {
				for other := range edgeResidue[e] {
					if conflictFluid[[2]string{fluid, other}] {
						rep.Events = append(rep.Events, Event{
							Kind: Contamination, Set: set, Fluid: fluid, Other: other,
							Where: sw.Edges[e].Name,
						})
					}
				}
			}
			// Unreached outlets.
			reached := map[int]bool{}
			for _, v := range flowV {
				reached[v] = true
			}
			for out := range expect[fluid] {
				if !reached[out] {
					rep.Events = append(rep.Events, Event{
						Kind: Unreached, Set: set, Fluid: fluid,
						Other: moduleAtPin[out], Where: sw.Vertices[out].Name,
					})
				}
			}
		}
		// Collisions: two active fluids at one vertex.
		var cverts []int
		for v, fs := range vertFluid {
			if len(fs) > 1 {
				cverts = append(cverts, v)
			}
		}
		sort.Ints(cverts)
		for _, v := range cverts {
			fs := vertFluid[v]
			sort.Strings(fs)
			rep.Events = append(rep.Events, Event{
				Kind: Collision, Set: set, Fluid: fs[0], Other: fs[1],
				Where: sw.Vertices[v].Name,
			})
		}
		// Deposit residue on everything wetted.
		for fluid, verts := range reach {
			for _, v := range verts {
				vertResidue[v][fluid] = true
			}
			for _, e := range reachE[fluid] {
				edgeResidue[e][fluid] = true
			}
		}
		rep.FluidReach[set] = reach

		// Wash flush.
		if opts.WashAfter != nil && pos < len(opts.WashAfter) && opts.WashAfter[pos] {
			for i := range vertResidue {
				vertResidue[i] = map[string]bool{}
			}
			for i := range edgeResidue {
				edgeResidue[i] = map[string]bool{}
			}
		}
	}
	sortEvents(rep.Events)
	return rep, nil
}

// effectiveClosures derives, per flow set, the set of closed edges.
func effectiveClosures(res *spec.Result, opts Options) ([]map[int]bool, error) {
	nSets := res.NumSets
	out := make([]map[int]bool, nSets)
	for s := range out {
		out[s] = map[int]bool{}
	}
	if opts.Valves == nil {
		return out, nil // everything open
	}
	va := opts.Valves
	if va.NumSets != nSets {
		return nil, fmt.Errorf("sim: valve analysis covers %d sets, plan has %d", va.NumSets, nSets)
	}
	if opts.Pressure == nil {
		for _, v := range va.Valves {
			for s, st := range v.Sequence {
				if st == valve.Closed {
					out[s][v.Edge] = true
				}
			}
		}
		return out, nil
	}
	// Shared pressure: every valve of a group follows the merged sequence.
	ess := va.EssentialValves()
	for _, group := range opts.Pressure.Groups {
		members := make([]valve.Valve, len(group))
		for i, m := range group {
			members[i] = ess[m]
		}
		merged, err := valve.MergedSequence(members)
		if err != nil {
			return nil, err
		}
		for s, st := range merged {
			if st == valve.Closed {
				for _, v := range members {
					out[s][v.Edge] = true
				}
			}
		}
	}
	return out, nil
}

// flood returns the vertices and edges the fluid reaches from the start pin
// through open, present channels. Only used edges exist on the reduced
// switch.
func flood(res *spec.Result, start int, closed map[int]bool) ([]int, []int) {
	sw := res.Switch
	seenV := map[int]bool{start: true}
	var verts, edges []int
	verts = append(verts, start)
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range sw.IncidentEdges(v) {
			if !res.UsedEdgeMask.Has(eid) {
				continue // segment removed from the application switch
			}
			if closed[eid] {
				continue
			}
			edges = append(edges, eid)
			u := sw.Edges[eid].Other(v)
			if !seenV[u] {
				seenV[u] = true
				verts = append(verts, u)
				queue = append(queue, u)
			}
		}
	}
	sort.Ints(verts)
	edges = dedupInts(edges)
	return verts, edges
}

// flowRegion reduces a fluid's wetted subgraph to the part that carries
// through-flow: leaves that are neither the inlet nor an active sink are
// pruned iteratively, leaving the union of channels between the inlet and
// the open outlets.
func flowRegion(res *spec.Result, wetV []int, closed map[int]bool, inlet int, sinks map[int]bool) []int {
	sw := res.Switch
	inRegion := map[int]bool{}
	for _, v := range wetV {
		inRegion[v] = true
	}
	deg := map[int]int{}
	present := func(eid, v int) (int, bool) {
		if !res.UsedEdgeMask.Has(eid) || closed[eid] {
			return 0, false
		}
		u := sw.Edges[eid].Other(v)
		if !inRegion[u] {
			return 0, false
		}
		return u, true
	}
	for _, v := range wetV {
		for _, eid := range sw.IncidentEdges(v) {
			if _, ok := present(eid, v); ok {
				deg[v]++
			}
		}
	}
	queue := []int{}
	for _, v := range wetV {
		if deg[v] <= 1 && v != inlet && !sinks[v] {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if !inRegion[v] {
			continue
		}
		inRegion[v] = false
		for _, eid := range sw.IncidentEdges(v) {
			if u, ok := present(eid, v); ok {
				deg[u]--
				if deg[u] <= 1 && u != inlet && !sinks[u] && inRegion[u] {
					queue = append(queue, u)
				}
			}
		}
	}
	var out []int
	for _, v := range wetV {
		if inRegion[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func sortEvents(evts []Event) {
	sort.SliceStable(evts, func(a, b int) bool {
		if evts[a].Set != evts[b].Set {
			return evts[a].Set < evts[b].Set
		}
		if evts[a].Kind != evts[b].Kind {
			return evts[a].Kind < evts[b].Kind
		}
		if evts[a].Fluid != evts[b].Fluid {
			return evts[a].Fluid < evts[b].Fluid
		}
		return evts[a].Where < evts[b].Where
	})
}
