package sim

import (
	"testing"
	"time"

	"switchsynth/internal/cases"
	"switchsynth/internal/clique"
	"switchsynth/internal/contam"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
	"switchsynth/internal/valve"
)

func solve(t *testing.T, sp *spec.Spec) (*spec.Result, *valve.Analysis) {
	t.Helper()
	res, err := search.Solve(sp, search.Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	va, err := valve.Analyze(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, va
}

func crossingSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "sim-crossing",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
}

func TestSynthesizedPlanSimulatesClean(t *testing.T) {
	res, va := solve(t, crossingSpec())
	rep, err := Run(res, Options{Valves: va})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, e := range rep.Events {
			t.Log(e)
		}
		t.Fatal("verified plan must simulate clean")
	}
	// Every fluid reached something in its set.
	for s, reach := range rep.FluidReach {
		for fluid, verts := range reach {
			if len(verts) == 0 {
				t.Errorf("set %d: fluid %s reached nothing", s, fluid)
			}
		}
	}
}

func TestSharedPressureSequencesStillRouteCorrectly(t *testing.T) {
	// Resolving X states through the merged group sequences must not break
	// routing: the shared control inlet closes a valve in sets where its
	// own status was don't-care.
	res, va := solve(t, crossingSpec())
	cover := clique.MinCover(valve.CompatibilityMatrix(va.EssentialValves()))
	rep, err := Run(res, Options{Valves: va, Pressure: &cover})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, e := range rep.Events {
			t.Log(e)
		}
		t.Fatal("pressure-shared plan must simulate clean")
	}
}

func TestValvelessSpineMisroutesParallelFlows(t *testing.T) {
	// The paper's Figure 4.2(d) argument: without valves along the spine,
	// parallel flows misroute ("some of the fluids from RC1 may go to
	// p_c2"). Simulate two parallel flows on a spine with every valve open.
	sp := &spec.Spec{
		Name:       "sim-spine",
		SwitchPins: 8,
		Modules:    []string{"RC1", "RC2", "p_c1", "p_c2"},
		Flows: []spec.Flow{
			{From: "RC1", To: "p_c1"},
			{From: "RC2", To: "p_c2"},
		},
		Binding: spec.Unfixed,
	}
	spine, err := topo.NewSpine(4)
	if err != nil {
		t.Fatal(err)
	}
	pinOf := contam.SourceFirstBinding(sp, spine)
	routes, err := contam.BaselineRoutes(sp, spine, pinOf)
	if err != nil {
		t.Fatal(err)
	}
	// Execute them in parallel (one set), all valves open.
	for i := range routes {
		routes[i].Set = 0
	}
	res := &spec.Result{
		Spec: sp, Switch: spine, PinOf: pinOf, Routes: routes, NumSets: 1,
	}
	for _, rt := range routes {
		res.UsedEdgeMask = res.UsedEdgeMask.Or(rt.Path.EdgeMask)
	}
	rep, err := Run(res, Options{Valves: nil})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(Misroute) == 0 {
		t.Error("valve-less spine should misroute parallel flows")
	}
	if rep.Count(Collision) == 0 {
		t.Error("parallel spine flows should collide")
	}
}

func TestSpineResidueContamination(t *testing.T) {
	// Sequential conflicting flows over a shared spine leave residue that
	// contaminates the later flow.
	sp := &spec.Spec{
		Name:       "sim-residue",
		SwitchPins: 8,
		Modules:    []string{"M1", "M2", "RC1", "RC2"},
		Flows: []spec.Flow{
			{From: "M1", To: "RC1"},
			{From: "M2", To: "RC2"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
	spine, err := topo.NewSpine(4)
	if err != nil {
		t.Fatal(err)
	}
	pinOf := contam.SourceFirstBinding(sp, spine)
	routes, err := contam.BaselineRoutes(sp, spine, pinOf)
	if err != nil {
		t.Fatal(err)
	}
	res := &spec.Result{
		Spec: sp, Switch: spine, PinOf: pinOf, Routes: routes, NumSets: 2,
	}
	for _, rt := range routes {
		res.UsedEdgeMask = res.UsedEdgeMask.Or(rt.Path.EdgeMask)
	}
	rep, err := Run(res, Options{Valves: nil})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(Contamination) == 0 {
		t.Error("conflicting flows sharing the spine must contaminate")
	}
}

func TestSabotagedValveCausesContamination(t *testing.T) {
	// Three fluids: a and c conflict and are routed fully apart, but b's
	// channel bridges their regions (harmless: b conflicts with nobody and
	// runs in its own set; the closed valves on the bridge protect a and
	// c). Sabotaging the closed valves open lets fluid a wet c's channels
	// through the bridge, so c later touches a's residue.
	sw, err := topo.NewGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.Spec{
		Name:       "sabotage",
		SwitchPins: 8,
		Modules:    []string{"a", "x", "b", "y", "c", "z"},
		Flows: []spec.Flow{
			{From: "a", To: "x"},
			{From: "b", To: "y"},
			{From: "c", To: "z"},
		},
		Conflicts: [][2]int{{0, 2}},
		Binding:   spec.Fixed,
		FixedPins: map[string]int{
			"a": 1, "x": 5, // T2 → B1: path T-C-B
			"b": 3, "y": 6, // R2 → L2(BL): bridge path R-C-L-BL
			"c": 7, "z": 0, // L1 → T1: path L-TL
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	pathWith := func(inPin, outPin int, mustUse ...string) topo.Path {
		t.Helper()
		for _, p := range sw.AllShortestPaths(sw.PinVertex(inPin), sw.PinVertex(outPin)) {
			ok := true
			for _, name := range mustUse {
				v, _ := sw.VertexByName(name)
				if !p.UsesVertex(v.ID) {
					ok = false
					break
				}
			}
			if ok {
				return p
			}
		}
		t.Fatalf("no shortest path %d→%d through %v", inPin, outPin, mustUse)
		return topo.Path{}
	}
	res := &spec.Result{
		Spec:   sp,
		Switch: sw,
		PinOf:  map[string]int{"a": 1, "x": 5, "b": 3, "y": 6, "c": 7, "z": 0},
		Routes: []spec.Route{
			{Flow: 0, Set: 0, Path: pathWith(1, 5, "C")},
			{Flow: 1, Set: 1, Path: pathWith(3, 6, "C", "L")},
			{Flow: 2, Set: 2, Path: pathWith(7, 0, "L", "TL")},
		},
		NumSets: 3,
	}
	for _, rt := range res.Routes {
		res.UsedEdgeMask = res.UsedEdgeMask.Or(rt.Path.EdgeMask)
	}
	for _, e := range res.UsedEdgeMask.Indices() {
		res.Length += sw.Edges[e].Length
	}
	if err := contam.Verify(res); err != nil {
		t.Fatalf("hand-built plan invalid: %v", err)
	}
	va, err := valve.Analyze(res)
	if err != nil {
		t.Fatal(err)
	}
	// Honest valves: the simulation is clean.
	rep, err := Run(res, Options{Valves: va})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, e := range rep.Events {
			t.Log(e)
		}
		t.Fatal("honest plan should simulate clean")
	}
	// Sabotage: force every closed valve open.
	for i := range va.Valves {
		for s := range va.Valves[i].Sequence {
			if va.Valves[i].Sequence[s] == valve.Closed {
				va.Valves[i].Sequence[s] = valve.Open
			}
		}
	}
	rep, err = Run(res, Options{Valves: va})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(Contamination) == 0 {
		for _, e := range rep.Events {
			t.Log(e)
		}
		t.Error("sabotaged valves must contaminate the conflicting fluids")
	}
}

func TestOverClosedValveCausesUnreached(t *testing.T) {
	res, va := solve(t, crossingSpec())
	// Close every valve in every set: nothing can flow.
	for i := range va.Valves {
		for s := range va.Valves[i].Sequence {
			va.Valves[i].Sequence[s] = valve.Closed
		}
	}
	rep, err := Run(res, Options{Valves: va})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(Unreached) == 0 {
		t.Error("fully closed switch must report unreached outlets")
	}
}

func TestWashFlushPreventsContamination(t *testing.T) {
	// Conflicting flows over shared channels, executed with a wash between
	// the sets: the flush must remove the residue events.
	sp := crossingSpec()
	sp.Conflicts = [][2]int{{0, 1}}
	// The strict synthesizer would refuse (crossing conflict on fixed
	// pins); build the relaxed routing directly as wash scheduling does.
	relaxed := *sp
	relaxed.Conflicts = nil
	res, err := search.Solve(&relaxed, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Spec = sp
	va, err := valve.Analyze(res)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Run(res, Options{Valves: va})
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Count(Contamination) == 0 {
		t.Fatal("without washes the shared centre must contaminate")
	}
	clean, err := Run(res, Options{Valves: va, WashAfter: []bool{true, false}})
	if err != nil {
		t.Fatal(err)
	}
	if got := clean.Count(Contamination); got != 0 {
		t.Errorf("wash flush left %d contamination events", got)
	}
}

func TestApplicationCasesSimulateClean(t *testing.T) {
	// The paper's headline, dynamically: every synthesizable benchmark plan
	// passes the conservative flood simulation.
	for _, c := range []cases.Case{cases.ChIPSw1(), cases.NucleicAcid(), cases.MRNAIsolation(), cases.SchedulingExample()} {
		sp := c.WithBinding(spec.Unfixed)
		if c.Spec.Name == "scheduling-example" {
			sp = c.Spec
		}
		res, err := search.Solve(sp, search.Options{TimeLimit: 30 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		va, err := valve.Analyze(res)
		if err != nil {
			t.Fatal(err)
		}
		cover := clique.MinCover(valve.CompatibilityMatrix(va.EssentialValves()))
		rep, err := Run(res, Options{Valves: va, Pressure: &cover})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range rep.Events {
			t.Errorf("%s: %v", sp.Name, e)
		}
	}
}

func TestRunRejectsMismatchedOrder(t *testing.T) {
	res, _ := solve(t, crossingSpec())
	if _, err := Run(res, Options{SetOrder: []int{0}}); err == nil {
		t.Error("short SetOrder accepted")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: Contamination, Set: 1, Fluid: "a", Other: "b", Where: "C"}
	if s := e.String(); s == "" {
		t.Error("empty event string")
	}
	for _, k := range []EventKind{Misroute, Collision, Unreached, Contamination} {
		if k.String() == "?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestArtificialCampaignSimulatesClean(t *testing.T) {
	// End-to-end invariant over a deterministic batch of random cases:
	// every synthesizable plan, with its analyzed valve states resolved
	// through shared pressure sequences, passes the conservative fluidic
	// simulation.
	for _, c := range cases.Artificial(15, 99) {
		res, err := search.Solve(c.Spec, search.Options{TimeLimit: 10 * time.Second})
		if err != nil {
			continue // infeasible or timed-out random cases are fine
		}
		va, err := valve.Analyze(res)
		if err != nil {
			t.Fatalf("%s: %v", c.Spec.Name, err)
		}
		cover := clique.MinCover(valve.CompatibilityMatrix(va.EssentialValves()))
		rep, err := Run(res, Options{Valves: va, Pressure: &cover})
		if err != nil {
			t.Fatalf("%s: %v", c.Spec.Name, err)
		}
		for _, e := range rep.Events {
			t.Errorf("%s: %v", c.Spec.Name, e)
		}
	}
}
