package model

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// crossCheck solves sp with both the faithful IQP encoding and the dedicated
// search engine and requires equal optima (the plans themselves may differ —
// optima are often degenerate).
func crossCheck(t *testing.T, sp *spec.Spec) {
	t.Helper()
	iqp, errM := Solve(sp, Options{TimeLimit: 2 * time.Minute})
	se, errS := search.Solve(sp, search.Options{})

	var noSolM, noSolS *spec.ErrNoSolution
	mInfeas := errors.As(errM, &noSolM)
	sInfeas := errors.As(errS, &noSolS)
	if mInfeas != sInfeas {
		t.Fatalf("engines disagree on feasibility: iqp err=%v, search err=%v", errM, errS)
	}
	if mInfeas {
		return
	}
	if errM != nil {
		t.Fatalf("iqp: %v", errM)
	}
	if errS != nil {
		t.Fatalf("search: %v", errS)
	}
	if err := contam.Verify(iqp); err != nil {
		t.Fatalf("iqp plan invalid: %v", err)
	}
	if err := contam.Verify(se); err != nil {
		t.Fatalf("search plan invalid: %v", err)
	}
	if !iqp.Proven {
		t.Skip("iqp hit its limit; cannot compare optima")
	}
	if !approx(iqp.Objective, se.Objective) {
		t.Fatalf("optima differ: iqp %v (sets=%d len=%v), search %v (sets=%d len=%v)",
			iqp.Objective, iqp.NumSets, iqp.Length, se.Objective, se.NumSets, se.Length)
	}
}

func TestCrossCheckFixedSimple(t *testing.T) {
	crossCheck(t, &spec.Spec{
		Name:       "xc-fixed",
		SwitchPins: 8,
		Modules:    []string{"in", "out"},
		Flows:      []spec.Flow{{From: "in", To: "out"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"in": 0, "out": 4},
	})
}

func TestCrossCheckFixedScheduling(t *testing.T) {
	// Crossing flows on fixed pins: both engines must schedule 2 sets.
	crossCheck(t, &spec.Spec{
		Name:       "xc-sched",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	})
}

func TestCrossCheckFixedConflictInfeasible(t *testing.T) {
	crossCheck(t, &spec.Spec{
		Name:       "xc-nosol",
		SwitchPins: 8,
		Modules:    []string{"in1", "in2", "out1", "out2"},
		Flows:      []spec.Flow{{From: "in1", To: "out1"}, {From: "in2", To: "out2"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"in1": 0, "out1": 2, "in2": 1, "out2": 3},
	})
}

func TestCrossCheckFixedConflictFeasible(t *testing.T) {
	// Conflicting flows on opposite sides: disjoint shortest paths exist.
	crossCheck(t, &spec.Spec{
		Name:       "xc-conflict",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 0, "x": 1, "b": 4, "y": 5},
	})
}

func TestCrossCheckFixedFanOut(t *testing.T) {
	crossCheck(t, &spec.Spec{
		Name:       "xc-fan",
		SwitchPins: 8,
		Modules:    []string{"in", "o1", "o2"},
		Flows:      []spec.Flow{{From: "in", To: "o1"}, {From: "in", To: "o2"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"in": 0, "o1": 3, "o2": 6},
	})
}

func TestIQPPlanStructure(t *testing.T) {
	sp := &spec.Spec{
		Name:       "iqp-basic",
		SwitchPins: 8,
		Modules:    []string{"in", "out"},
		Flows:      []spec.Flow{{From: "in", To: "out"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"in": 0, "out": 1},
	}
	res, err := Solve(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "iqp" {
		t.Errorf("engine = %q", res.Engine)
	}
	if !res.Proven {
		t.Error("tiny model should be proven optimal")
	}
	if err := contam.Verify(res); err != nil {
		t.Fatal(err)
	}
	if res.NumSets != 1 || len(res.Routes) != 1 {
		t.Errorf("sets=%d routes=%d", res.NumSets, len(res.Routes))
	}
}

func TestIQPInvalidSpec(t *testing.T) {
	if _, err := Solve(&spec.Spec{SwitchPins: 7}, Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestCrossCheckUnfixedSingle(t *testing.T) {
	crossCheck(t, &spec.Spec{
		Name:       "xc-unfixed",
		SwitchPins: 8,
		Modules:    []string{"in", "out"},
		Flows:      []spec.Flow{{From: "in", To: "out"}},
		Binding:    spec.Unfixed,
	})
}

func TestCrossCheckUnfixedConflict(t *testing.T) {
	if os.Getenv("SWITCHSYNTH_SLOW_TESTS") == "" {
		t.Skip("set SWITCHSYNTH_SLOW_TESTS=1 to run the multi-minute IQP cross-checks")
	}
	crossCheck(t, &spec.Spec{
		Name:       "xc-unfixed-conf",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Unfixed,
	})
}

func TestCrossCheckClockwiseTwoFlows(t *testing.T) {
	if os.Getenv("SWITCHSYNTH_SLOW_TESTS") == "" {
		t.Skip("set SWITCHSYNTH_SLOW_TESTS=1 to run the multi-minute IQP cross-checks")
	}
	crossCheck(t, &spec.Spec{
		Name:       "xc-cw2",
		SwitchPins: 8,
		Modules:    []string{"a", "x", "b", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Clockwise,
	})
}

func TestCrossCheckClockwiseSingle(t *testing.T) {
	crossCheck(t, &spec.Spec{
		Name:       "xc-cw1",
		SwitchPins: 8,
		Modules:    []string{"in", "out"},
		Flows:      []spec.Flow{{From: "in", To: "out"}},
		Binding:    spec.Clockwise,
	})
}

func TestCrossCheckRandomFixedSpecs(t *testing.T) {
	// Property test: on random small fixed-binding specs the faithful IQP
	// encoding and the dedicated search agree on feasibility and optimum.
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 8; trial++ {
		nFlows := 1 + rng.Intn(3)
		nInlets := 1 + rng.Intn(2)
		if nInlets > nFlows {
			nInlets = nFlows
		}
		mods := make([]string, 0, nInlets+nFlows)
		for i := 0; i < nInlets; i++ {
			mods = append(mods, fmt.Sprintf("in%d", i))
		}
		flows := make([]spec.Flow, nFlows)
		for f := 0; f < nFlows; f++ {
			in := f % nInlets
			out := fmt.Sprintf("out%d", f)
			mods = append(mods, out)
			flows[f] = spec.Flow{From: fmt.Sprintf("in%d", in), To: out}
		}
		perm := rng.Perm(8)
		pins := make(map[string]int, len(mods))
		for i, m := range mods {
			pins[m] = perm[i]
		}
		var conflicts [][2]int
		for a := 0; a < nFlows; a++ {
			for b := a + 1; b < nFlows; b++ {
				if flows[a].From != flows[b].From && rng.Intn(3) == 0 {
					conflicts = append(conflicts, [2]int{a, b})
				}
			}
		}
		sp := &spec.Spec{
			Name:       fmt.Sprintf("xc-rand-%d", trial),
			SwitchPins: 8,
			Modules:    mods,
			Flows:      flows,
			Conflicts:  conflicts,
			Binding:    spec.Fixed,
			FixedPins:  pins,
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid spec: %v", trial, err)
		}
		crossCheck(t, sp)
	}
}
