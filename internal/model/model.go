// Package model is the faithful encoding of the paper's integer quadratic
// program (Section 3) onto the pure-Go MILP solver in internal/milp.
//
// Variables and constraints map one-to-one to the thesis:
//
//	x_{i,d}   — flow i uses path d            (3.1)–(3.2)
//	conflict node-disjointness                (3.3)
//	flow-set scheduling, one inlet per node   (3.4)–(3.6, modeled via exact
//	           products instead of big-M — equivalent feasible region)
//	objective α·N_Sets + β·L_flow             (3.7)
//	y_{m,p}   — module–pin binding            (3.9)–(3.10)
//	fixed binding                             (3.11)
//	clockwise binding with pin_m and q_m      (3.12)–(3.13)
//
// The quadratic terms (path-choice × set-choice) are linearized exactly by
// milp.Product, so the solved MILP is equivalent to the paper's IQP. This
// engine is exponentially slower than internal/search and exists for
// cross-validation (property tests check both engines agree on optima) and
// for the ablation experiments; use internal/search for real workloads.
package model

import (
	"context"
	"fmt"
	"time"

	"switchsynth/internal/lp"
	"switchsynth/internal/milp"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// Options tune the IQP solve.
type Options struct {
	// TimeLimit bounds the underlying branch & bound (0 = none).
	TimeLimit time.Duration
	// MaxNodes bounds the explored nodes (0 = none).
	MaxNodes int
	// Ctx, when non-nil, cancels the underlying branch & bound promptly
	// (polled once per node); a cancelled solve surfaces as ErrLimit
	// wrapping Ctx.Err().
	Ctx context.Context
}

// ErrLimit is returned when the MILP search hit its node or time limit —
// or was cancelled — before proving optimality or infeasibility. Cause
// carries the cancellation error (context.Canceled or
// context.DeadlineExceeded) when the cut-off was external, so
// errors.Is(err, context.Canceled) works through the chain.
type ErrLimit struct {
	SpecName string
	Cause    error
}

// Error implements error.
func (e *ErrLimit) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("model: limit hit before solving %q: %v", e.SpecName, e.Cause)
	}
	return fmt.Sprintf("model: limit hit before solving %q", e.SpecName)
}

// Unwrap exposes the cancellation cause to errors.Is/As.
func (e *ErrLimit) Unwrap() error { return e.Cause }

// Solve builds the paper's IQP for sp and solves it exactly.
func Solve(sp *spec.Spec, opts Options) (*spec.Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	sw, pt, err := sp.SharedTopology()
	if err != nil {
		return nil, err
	}
	return SolveOn(sp, sw, pt, opts)
}

// SolveOn builds and solves the IQP on a prebuilt switch and path table.
func SolveOn(sp *spec.Spec, sw *topo.Switch, pt *topo.PathTable, opts Options) (*spec.Result, error) {
	start := time.Now()
	b := build(sp, sw, pt)
	sol := b.m.Solve(milp.Options{TimeLimit: opts.TimeLimit, MaxNodes: opts.MaxNodes, Ctx: opts.Ctx})
	switch sol.Status {
	case milp.Infeasible:
		return nil, &spec.ErrNoSolution{SpecName: sp.Name, Policy: sp.Binding}
	case milp.Limit:
		if !sol.HasSolution {
			return nil, &ErrLimit{SpecName: sp.Name, Cause: sol.Err}
		}
	}
	res, err := b.extract(&sol)
	if err != nil {
		return nil, err
	}
	res.Proven = sol.Status == milp.Optimal
	res.Degraded = !res.Proven
	if res.Proven {
		res.LowerBound = res.Objective
	} else {
		// The MILP substrate exposes no global dual bound; report the
		// trivial admissible one (every plan needs at least one flow set).
		res.LowerBound = sp.EffectiveAlpha()
		if res.LowerBound > res.Objective {
			res.LowerBound = res.Objective
		}
		if res.Objective > 0 {
			res.Gap = (res.Objective - res.LowerBound) / res.Objective
		}
	}
	res.Runtime = time.Since(start)
	res.Engine = "iqp"
	return res, nil
}

type pathCand struct {
	pIn, pOut int // clockwise pin orders
	path      topo.Path
	global    int // index into the global path list (constraint 3.2)
}

type builder struct {
	sp    *spec.Spec
	sw    *topo.Switch
	pt    *topo.PathTable
	m     *milp.Model
	cands [][]pathCand // per flow
	x     [][]milp.Var // x[i][k] for cands[i][k]
	y     [][]milp.Var // y[moduleIdx][pinOrder]
	w     [][]milp.Var // w[i][s]
	used  []milp.Var   // per edge
	nSets int
}

func build(sp *spec.Spec, sw *topo.Switch, pt *topo.PathTable) *builder {
	b := &builder{
		sp:    sp,
		sw:    sw,
		pt:    pt,
		m:     milp.NewModel("iqp:" + sp.Name),
		nSets: sp.EffectiveMaxSets(),
	}
	m := b.m
	nFlows := len(sp.Flows)
	nMods := len(sp.Modules)
	nPins := sw.NumPins
	srcs, dsts := sp.Sources(), sp.Destinations()

	// Binding variables y_{m,p} with (3.9) and (3.10).
	b.y = make([][]milp.Var, nMods)
	for mi := range b.y {
		b.y[mi] = make([]milp.Var, nPins)
		rowEq := milp.NewLinExpr()
		for p := 0; p < nPins; p++ {
			b.y[mi][p] = m.NewBinary(fmt.Sprintf("y(%s,%d)", sp.Modules[mi], p))
			rowEq.Add(1, b.y[mi][p])
		}
		m.AddNamedConstraint("3.9", rowEq, lp.EQ, 1)
	}
	for p := 0; p < nPins; p++ {
		row := milp.NewLinExpr()
		for mi := 0; mi < nMods; mi++ {
			row.Add(1, b.y[mi][p])
		}
		m.AddNamedConstraint("3.10", row, lp.LE, 1)
	}

	switch sp.Binding {
	case spec.Fixed:
		// (3.11): bind each module to its specified pin.
		for mi, name := range sp.Modules {
			m.AddNamedConstraint("3.11", milp.NewLinExpr().Add(1, b.y[mi][sp.FixedPins[name]]), lp.EQ, 1)
		}
	case spec.Clockwise:
		// (3.12)–(3.13): pin_m = Σ_p (p+1)·y_{m,p}; successive modules get
		// increasing pins except at exactly one wrap module q_m.
		pinOf := make([]milp.Var, nMods)
		qs := make([]milp.Var, nMods)
		for mi := range pinOf {
			pinOf[mi] = m.NewInt(fmt.Sprintf("pin(%s)", sp.Modules[mi]), 1, float64(nPins))
			link := milp.NewLinExpr().Add(-1, pinOf[mi])
			for p := 0; p < nPins; p++ {
				link.Add(float64(p+1), b.y[mi][p])
			}
			m.AddNamedConstraint("pin-link", link, lp.EQ, 0)
			qs[mi] = m.NewBinary(fmt.Sprintf("q(%s)", sp.Modules[mi]))
		}
		for a := 0; a < nMods; a++ {
			bNext := (a + 1) % nMods
			// pin_a ≤ pin_b − 1 + q_a·N_Pins   (3.12)
			row := milp.NewLinExpr().Add(1, pinOf[a]).Add(-1, pinOf[bNext]).Add(-float64(nPins), qs[a])
			m.AddNamedConstraint("3.12", row, lp.LE, -1)
		}
		sum := milp.NewLinExpr()
		for _, q := range qs {
			sum.Add(1, q)
		}
		m.AddNamedConstraint("3.13", sum, lp.EQ, 1) // exactly one wrap
	}

	// Path candidates and x_{i,d} with (3.1), (3.2) and binding links.
	globalIdx := map[[3]int]int{} // (pIn, pOut, k) -> global path index
	nextGlobal := 0
	globalOf := func(pIn, pOut, k int) int {
		key := [3]int{pIn, pOut, k}
		if g, ok := globalIdx[key]; ok {
			return g
		}
		globalIdx[key] = nextGlobal
		nextGlobal++
		return globalIdx[key]
	}
	b.cands = make([][]pathCand, nFlows)
	b.x = make([][]milp.Var, nFlows)
	for i := 0; i < nFlows; i++ {
		var pairs [][2]int
		if sp.Binding == spec.Fixed {
			pairs = [][2]int{{
				sp.FixedPins[sp.Flows[i].From],
				sp.FixedPins[sp.Flows[i].To],
			}}
		} else {
			for pIn := 0; pIn < nPins; pIn++ {
				for pOut := 0; pOut < nPins; pOut++ {
					if pIn != pOut {
						pairs = append(pairs, [2]int{pIn, pOut})
					}
				}
			}
		}
		chooseOne := milp.NewLinExpr()
		for _, pr := range pairs {
			paths := pt.PathsBetween(pr[0], pr[1])
			for k, p := range paths {
				c := pathCand{pIn: pr[0], pOut: pr[1], path: p, global: globalOf(pr[0], pr[1], k)}
				v := m.NewBinary(fmt.Sprintf("x(%d,%d-%d#%d)", i, pr[0], pr[1], k))
				b.cands[i] = append(b.cands[i], c)
				b.x[i] = append(b.x[i], v)
				chooseOne.Add(1, v)
				// Binding links: a path is usable only if its endpoints are
				// the flow's bound pins.
				m.AddConstraint(milp.NewLinExpr().Add(1, v).Add(-1, b.y[srcs[i]][pr[0]]), lp.LE, 0)
				m.AddConstraint(milp.NewLinExpr().Add(1, v).Add(-1, b.y[dsts[i]][pr[1]]), lp.LE, 0)
			}
		}
		m.AddNamedConstraint("3.1", chooseOne, lp.EQ, 1)
	}
	// (3.2): each path chosen at most once across flows.
	pathUsers := map[int]*milp.LinExpr{}
	for i := range b.x {
		for k, c := range b.cands[i] {
			e, ok := pathUsers[c.global]
			if !ok {
				e = milp.NewLinExpr()
				pathUsers[c.global] = e
			}
			e.Add(1, b.x[i][k])
		}
	}
	for _, e := range pathUsers {
		m.AddNamedConstraint("3.2", e, lp.LE, 1)
	}

	// Node-usage indicators nu_{i,v} over interior junctions.
	nodeIDs := sw.NodeIDs()
	nu := make([]map[int]milp.Var, nFlows)
	for i := 0; i < nFlows; i++ {
		nu[i] = make(map[int]milp.Var, len(nodeIDs))
		for _, v := range nodeIDs {
			link := milp.NewLinExpr()
			any := false
			for k, c := range b.cands[i] {
				if c.path.UsesVertex(v) {
					link.Add(1, b.x[i][k])
					any = true
				}
			}
			if !any {
				continue
			}
			nv := m.NewBinary(fmt.Sprintf("nu(%d,%s)", i, sw.Vertices[v].Name))
			link.Add(-1, nv)
			m.AddConstraint(link, lp.EQ, 0)
			nu[i][v] = nv
		}
	}

	// (3.3): conflicting flows never share a junction.
	for _, c := range sp.Conflicts {
		for _, v := range nodeIDs {
			a, okA := nu[c[0]][v]
			bb, okB := nu[c[1]][v]
			if okA && okB {
				m.AddNamedConstraint("3.3", milp.NewLinExpr().Add(1, a).Add(1, bb), lp.LE, 1)
			}
		}
	}

	// Scheduling: w_{i,s} with symmetry breaking (flow i uses sets ≤ i).
	b.w = make([][]milp.Var, nFlows)
	for i := 0; i < nFlows; i++ {
		b.w[i] = make([]milp.Var, b.nSets)
		one := milp.NewLinExpr()
		for s := 0; s < b.nSets; s++ {
			b.w[i][s] = m.NewBinary(fmt.Sprintf("w(%d,%d)", i, s))
			if s > i {
				m.AddConstraint(milp.NewLinExpr().Add(1, b.w[i][s]), lp.EQ, 0)
			}
			one.Add(1, b.w[i][s])
		}
		m.AddNamedConstraint("one-set", one, lp.EQ, 1)
	}
	// One inlet per junction per set (the paper's 3.4–3.6, as products).
	for i := 0; i < nFlows; i++ {
		for j := i + 1; j < nFlows; j++ {
			if srcs[i] == srcs[j] {
				continue // branching from one inlet is allowed
			}
			for _, v := range nodeIDs {
				a, okA := nu[i][v]
				bb, okB := nu[j][v]
				if !okA || !okB {
					continue
				}
				for s := 0; s < b.nSets && s <= j; s++ {
					ti := m.Product(a, b.w[i][s])
					tj := m.Product(bb, b.w[j][s])
					m.AddNamedConstraint("sched", milp.NewLinExpr().Add(1, ti).Add(1, tj), lp.LE, 1)
				}
			}
		}
	}

	// Used channels and objective (3.7).
	b.used = make([]milp.Var, len(sw.Edges))
	obj := milp.NewLinExpr()
	beta := sp.EffectiveBeta()
	for e := range sw.Edges {
		b.used[e] = m.NewBinary(fmt.Sprintf("used(%s)", sw.Edges[e].Name))
		obj.Add(beta*sw.Edges[e].Length, b.used[e])
		for i := range b.x {
			row := milp.NewLinExpr().Add(1, b.used[e])
			any := false
			for k, c := range b.cands[i] {
				if c.path.UsesEdge(e) {
					row.Add(-1, b.x[i][k])
					any = true
				}
			}
			if any {
				m.AddConstraint(row, lp.GE, 0)
			}
		}
	}
	alpha := sp.EffectiveAlpha()
	for s := 0; s < b.nSets; s++ {
		su := m.NewBinary(fmt.Sprintf("setUsed(%d)", s))
		for i := 0; i < nFlows; i++ {
			m.AddConstraint(milp.NewLinExpr().Add(1, su).Add(-1, b.w[i][s]), lp.GE, 0)
		}
		obj.Add(alpha, su)
	}
	m.SetObjective(obj)
	return b
}

// extract converts a MILP solution back into a synthesis plan.
func (b *builder) extract(sol *milp.Solution) (*spec.Result, error) {
	sp := b.sp
	res := &spec.Result{
		Spec:   sp,
		Switch: b.sw,
		PinOf:  make(map[string]int, len(sp.Modules)),
		Engine: "iqp",
	}
	for mi, name := range sp.Modules {
		found := false
		for p := range b.y[mi] {
			if sol.Bool(b.y[mi][p]) {
				res.PinOf[name] = p
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("model: module %q unbound in solution", name)
		}
	}
	res.Routes = make([]spec.Route, len(sp.Flows))
	for i := range sp.Flows {
		ki := -1
		for k := range b.x[i] {
			if sol.Bool(b.x[i][k]) {
				ki = k
				break
			}
		}
		if ki == -1 {
			return nil, fmt.Errorf("model: flow %d has no path in solution", i)
		}
		set := -1
		for s := range b.w[i] {
			if sol.Bool(b.w[i][s]) {
				set = s
				break
			}
		}
		if set == -1 {
			return nil, fmt.Errorf("model: flow %d has no set in solution", i)
		}
		res.Routes[i] = spec.Route{Flow: i, Set: set, Path: b.cands[i][ki].path}
		res.UsedEdgeMask = res.UsedEdgeMask.Or(b.cands[i][ki].path.EdgeMask)
	}
	for e := range b.sw.Edges {
		if res.UsedEdgeMask.Has(e) {
			res.Length += b.sw.Edges[e].Length
		}
	}
	// Renumber sets contiguously by first use.
	next := 0
	remap := map[int]int{}
	for i := range res.Routes {
		old := res.Routes[i].Set
		if _, ok := remap[old]; !ok {
			remap[old] = next
			next++
		}
		res.Routes[i].Set = remap[old]
	}
	res.NumSets = next
	res.Objective = sp.EffectiveAlpha()*float64(res.NumSets) + sp.EffectiveBeta()*res.Length
	return res, nil
}
