// Package report formats experiment results as the text tables of the
// paper's evaluation section (Tables 4.1–4.3) and as campaign summaries.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a simple text-table builder with fixed-width columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len([]rune(c)) > width[i] {
				width[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(width)-1)) + "\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// ResultRow is one synthesized (or failed) case for the paper-style tables.
type ResultRow struct {
	ID         int
	App        string
	Modules    int
	SwitchSize int
	Binding    string
	NoSolution bool
	Timeout    bool
	T          float64 // runtime seconds
	L          float64 // flow channel length, mm
	Valves     int
	Sets       int
	Proven     bool
}

// Table41 renders contamination-avoidance results in the layout of the
// paper's Table 4.1 (id, application, #m, sw. size, binding, T, L, #v, #s).
func Table41(rows []ResultRow) string {
	t := NewTable("id", "application", "#m", "sw. size", "binding", "T(s)", "L(mm)", "#v", "#s")
	for _, r := range rows {
		if r.NoSolution {
			t.AddRow(fmt.Sprint(r.ID), r.App, fmt.Sprint(r.Modules),
				fmt.Sprintf("%d-pin", r.SwitchSize), r.Binding, "no solution", "", "", "")
			continue
		}
		if r.Timeout {
			t.AddRow(fmt.Sprint(r.ID), r.App, fmt.Sprint(r.Modules),
				fmt.Sprintf("%d-pin", r.SwitchSize), r.Binding, "timeout", "", "", "")
			continue
		}
		t.AddRow(fmt.Sprint(r.ID), r.App, fmt.Sprint(r.Modules),
			fmt.Sprintf("%d-pin", r.SwitchSize), r.Binding,
			fmtRuntime(r), fmt.Sprintf("%.1f", r.L),
			fmt.Sprint(r.Valves), fmt.Sprint(r.Sets))
	}
	return t.String()
}

// Table43 renders binding-policy results in the layout of the paper's
// Table 4.3 (id, application, #m, sw. size, binding, T, L).
func Table43(rows []ResultRow) string {
	t := NewTable("id", "application", "#m", "sw. size", "binding", "T(s)", "L(mm)")
	for _, r := range rows {
		if r.NoSolution {
			t.AddRow(fmt.Sprint(r.ID), r.App, fmt.Sprint(r.Modules),
				fmt.Sprintf("%d-pin", r.SwitchSize), r.Binding, "no solution", "")
			continue
		}
		t.AddRow(fmt.Sprint(r.ID), r.App, fmt.Sprint(r.Modules),
			fmt.Sprintf("%d-pin", r.SwitchSize), r.Binding,
			fmtRuntime(r), fmt.Sprintf("%.1f", r.L))
	}
	return t.String()
}

// CampaignTable renders campaign rows without the runtime column, so the
// output is byte-identical across runs and worker counts. Rows are
// emitted in ascending case-ID order regardless of completion order.
func CampaignTable(rows []ResultRow) string {
	sorted := make([]ResultRow, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	t := NewTable("id", "application", "#m", "sw. size", "binding", "L(mm)", "#v", "#s")
	for _, r := range sorted {
		status := ""
		switch {
		case r.NoSolution:
			status = "no solution"
		case r.Timeout:
			status = "timeout"
		}
		if status != "" {
			t.AddRow(fmt.Sprint(r.ID), r.App, fmt.Sprint(r.Modules),
				fmt.Sprintf("%d-pin", r.SwitchSize), r.Binding, status, "", "")
			continue
		}
		t.AddRow(fmt.Sprint(r.ID), r.App, fmt.Sprint(r.Modules),
			fmt.Sprintf("%d-pin", r.SwitchSize), r.Binding,
			fmt.Sprintf("%.1f", r.L), fmt.Sprint(r.Valves), fmt.Sprint(r.Sets))
	}
	return t.String()
}

func fmtRuntime(r ResultRow) string {
	s := fmt.Sprintf("%.3f", r.T)
	if !r.Proven {
		s += "*"
	}
	return s
}

// Example42 renders the input/output feature block of the paper's Table 4.2.
type Example42 struct {
	InputFlows      string
	ModuleOrder     string
	Conflicts       string
	SwitchSize      int
	Binding         string
	ScheduledFlows  []string // one line per flow set
	NumSets         int
	NumValves       int
	L               float64
	ControlInlets   int
	PressureSharing bool
}

// String renders the example block.
func (e Example42) String() string {
	var b strings.Builder
	w := func(k, v string) { fmt.Fprintf(&b, "%-24s %s\n", k, v) }
	w("input flows", e.InputFlows)
	w("connected module order", e.ModuleOrder)
	w("conflicting flows", e.Conflicts)
	w("switch size", fmt.Sprintf("%d-pin", e.SwitchSize))
	w("binding policy", e.Binding)
	for i, s := range e.ScheduledFlows {
		key := ""
		if i == 0 {
			key = "scheduled flows"
		}
		w(key, s)
	}
	w("#flow sets", fmt.Sprint(e.NumSets))
	w("#valves", fmt.Sprint(e.NumValves))
	w("L(mm)", fmt.Sprintf("%.1f", e.L))
	if e.PressureSharing {
		w("#control inlets", fmt.Sprint(e.ControlInlets))
	}
	return b.String()
}

// CampaignStats aggregates the Section 4.2 artificial campaign.
type CampaignStats struct {
	Total      int
	Solved     int
	NoSolution int
	Timeout    int
	// ByPolicy counts solved cases per binding policy name.
	ByPolicy map[string]int
	// NoSolutionByPolicy counts proven-infeasible cases per policy.
	NoSolutionByPolicy map[string]int
	// MeanRuntimeBySize maps switch size to mean runtime seconds.
	MeanRuntimeBySize map[int]float64
	// MeanLengthBySize maps switch size to mean channel length (mm).
	MeanLengthBySize map[int]float64
	// AllScheduled reports whether every solved case scheduled all flows.
	AllScheduled bool
}

// String renders the campaign summary, including the (run-dependent)
// mean runtimes. For file output that must be byte-identical across
// runs, use DeterministicString.
func (c CampaignStats) String() string {
	return c.render(true)
}

// DeterministicString renders the campaign summary without any
// wall-clock-derived values: with a fixed seed the output depends only
// on the solver, never on machine speed or worker count.
func (c CampaignStats) DeterministicString() string {
	return c.render(false)
}

func (c CampaignStats) render(withRuntimes bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "artificial campaign: %d cases, %d solved, %d no-solution, %d timeout\n",
		c.Total, c.Solved, c.NoSolution, c.Timeout)
	var pols []string
	for p := range c.ByPolicy {
		pols = append(pols, p)
	}
	sort.Strings(pols)
	for _, p := range pols {
		fmt.Fprintf(&b, "  %-10s solved=%d no-solution=%d\n", p, c.ByPolicy[p], c.NoSolutionByPolicy[p])
	}
	var sizes []int
	for s := range c.MeanLengthBySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		if withRuntimes {
			fmt.Fprintf(&b, "  %d-pin: mean T=%.3fs mean L=%.1fmm\n", s, c.MeanRuntimeBySize[s], c.MeanLengthBySize[s])
		} else {
			fmt.Fprintf(&b, "  %d-pin: mean L=%.1fmm\n", s, c.MeanLengthBySize[s])
		}
	}
	fmt.Fprintf(&b, "  all flows scheduled in every solved case: %v\n", c.AllScheduled)
	return b.String()
}
