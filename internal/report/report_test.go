package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("a", "bbbb", "c")
	tb.AddRow("xxxxx", "y", "z")
	tb.AddRow("1", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	// Header columns align with row columns.
	if strings.Index(lines[0], "bbbb") != strings.Index(lines[2], "y") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTable41Rendering(t *testing.T) {
	rows := []ResultRow{
		{ID: 1, App: "ChIP", Modules: 9, SwitchSize: 12, Binding: "clockwise", T: 1.25, L: 13.6, Valves: 6, Sets: 2, Proven: true},
		{ID: 2, App: "nucleic acid", Modules: 7, SwitchSize: 8, Binding: "fixed", NoSolution: true},
		{ID: 2, App: "nucleic acid", Modules: 7, SwitchSize: 8, Binding: "unfixed", T: 100, L: 9.8, Valves: 6, Sets: 2},
		{ID: 3, App: "mRNA", Modules: 10, SwitchSize: 12, Binding: "clockwise", Timeout: true},
	}
	out := Table41(rows)
	for _, want := range []string{"no solution", "timeout", "12-pin", "8-pin", "13.6", "9.8", "#v", "#s", "100.000*", "1.250"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table41 missing %q:\n%s", want, out)
		}
	}
	// The unproven row is starred, the proven one is not.
	if strings.Contains(out, "1.250*") {
		t.Error("proven runtime should not be starred")
	}
}

func TestTable43Rendering(t *testing.T) {
	rows := []ResultRow{
		{ID: 1, App: "kinase", Modules: 4, SwitchSize: 12, Binding: "fixed", T: 0.05, L: 46, Proven: true},
		{ID: 1, App: "kinase", Modules: 4, SwitchSize: 12, Binding: "clockwise", NoSolution: true},
	}
	out := Table43(rows)
	if !strings.Contains(out, "46.0") || !strings.Contains(out, "no solution") {
		t.Errorf("Table43 incomplete:\n%s", out)
	}
	if strings.Contains(out, "#v") {
		t.Error("Table43 must not have the #v column")
	}
}

func TestExample42Rendering(t *testing.T) {
	e := Example42{
		InputFlows:      "1→(7,10,11), 2→(5,8,9), 3→(4,6,12)",
		ModuleOrder:     "1,2,...,12",
		Conflicts:       "none",
		SwitchSize:      12,
		Binding:         "clockwise",
		ScheduledFlows:  []string{"[3→(4,6,12)]", "[2→(5,8,9)]", "[1→(7,10,11)]"},
		NumSets:         3,
		NumValves:       15,
		L:               21.2,
		PressureSharing: true,
		ControlInlets:   4,
	}
	out := e.String()
	for _, want := range []string{"input flows", "12-pin", "clockwise", "#flow sets", "3", "#valves", "15", "21.2", "#control inlets", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Example42 missing %q:\n%s", want, out)
		}
	}
}

func TestCampaignStatsRendering(t *testing.T) {
	c := CampaignStats{
		Total: 90, Solved: 80, NoSolution: 8, Timeout: 2,
		ByPolicy:           map[string]int{"fixed": 25, "clockwise": 26, "unfixed": 29},
		NoSolutionByPolicy: map[string]int{"fixed": 5, "clockwise": 3},
		MeanRuntimeBySize:  map[int]float64{8: 0.01, 12: 0.2},
		MeanLengthBySize:   map[int]float64{8: 7.4, 12: 11.2},
		AllScheduled:       true,
	}
	out := c.String()
	for _, want := range []string{"90 cases", "80 solved", "8-pin", "12-pin", "unfixed", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign summary missing %q:\n%s", want, out)
		}
	}
}
