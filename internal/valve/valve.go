// Package valve derives the control-layer behaviour of a synthesized switch:
// per-flow-set valve status sequences (open / closed / don't-care), the
// essentiality analysis that removes unnecessary valves (the paper's "carry"
// rule, Section 3.5), and the compatibility relation used for pressure
// sharing.
//
// The reconfigurable switch model places one valve on every flow segment.
// After synthesis the unused segments disappear, taking their valves along;
// the remaining valves are classified per flow set:
//
//   - Open: the valve's segment carries a flow in this set.
//   - Closed: the segment is idle but fluid is present at one of its end
//     junctions from an inlet that never routes through this segment — an
//     open valve would let that fluid leak in and contaminate or misroute.
//   - DontCare (X): no fluid can reach the valve in this set; its state is
//     irrelevant and may follow any shared pressure source [PACOR-style X
//     states].
//
// A valve whose sequence never requires Closed can permanently stay open:
// it "can carry all flows in its neighbor segments" and is removed as
// unnecessary. The remaining essential valves are the #v column of the
// paper's result tables.
package valve

import (
	"fmt"
	"sort"
	"strings"

	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// Status is a valve state in one flow set.
type Status byte

// Valve states.
const (
	Open     Status = 'O'
	Closed   Status = 'C'
	DontCare Status = 'X'
)

// String implements fmt.Stringer.
func (s Status) String() string { return string(rune(s)) }

// Valve is one valve of the reduced, application-specific switch.
type Valve struct {
	// Edge is the flow segment (switch edge ID) the valve sits on.
	Edge int
	// Sequence holds one Status per flow set.
	Sequence []Status
	// Essential reports whether the valve must ever close. Non-essential
	// valves are removed from the design.
	Essential bool
}

// SequenceString renders the status sequence, e.g. "OXC".
func (v Valve) SequenceString() string {
	var b strings.Builder
	for _, s := range v.Sequence {
		b.WriteByte(byte(s))
	}
	return b.String()
}

// Analysis is the control-layer view of a synthesis result.
type Analysis struct {
	// Valves holds one entry per used segment, ordered by edge ID.
	Valves []Valve
	// Essential lists the indices into Valves of the essential valves.
	Essential []int
	// NumSets is the number of flow sets analyzed.
	NumSets int
}

// NumValves returns the number of essential valves (the paper's #v).
func (a *Analysis) NumValves() int { return len(a.Essential) }

// EssentialValves returns the essential valves in edge order.
func (a *Analysis) EssentialValves() []Valve {
	out := make([]Valve, len(a.Essential))
	for i, idx := range a.Essential {
		out[i] = a.Valves[idx]
	}
	return out
}

// Analyze computes valve status sequences and essentiality for a verified
// synthesis result.
func Analyze(res *spec.Result) (*Analysis, error) {
	sp := res.Spec
	sw := res.Switch
	nSets := res.NumSets
	if nSets == 0 {
		return nil, fmt.Errorf("valve: result has no flow sets")
	}

	// inletsThrough[e] = set of inlet modules whose flows traverse edge e,
	// aggregated over all sets (residue persists across sets).
	inletsThrough := make(map[int]map[string]bool)
	// usedInSet[s][e] = edge carries a flow in set s.
	usedInSet := make([]map[int]bool, nSets)
	// vertexInlets[s][v] = inlet modules with fluid at vertex v in set s.
	vertexInlets := make([]map[int]map[string]bool, nSets)
	for s := 0; s < nSets; s++ {
		usedInSet[s] = make(map[int]bool)
		vertexInlets[s] = make(map[int]map[string]bool)
	}
	for _, rt := range res.Routes {
		inlet := sp.Flows[rt.Flow].From
		for _, e := range rt.Path.EdgeIDs {
			if inletsThrough[e] == nil {
				inletsThrough[e] = make(map[string]bool)
			}
			inletsThrough[e][inlet] = true
			usedInSet[rt.Set][e] = true
		}
		for _, v := range rt.Path.Verts {
			if vertexInlets[rt.Set][v] == nil {
				vertexInlets[rt.Set][v] = make(map[string]bool)
			}
			vertexInlets[rt.Set][v][inlet] = true
		}
	}

	usedEdges := res.UsedEdges()
	analysis := &Analysis{NumSets: nSets}
	for _, e := range usedEdges {
		v := Valve{Edge: e, Sequence: make([]Status, nSets)}
		edge := sw.Edges[e]
		for s := 0; s < nSets; s++ {
			switch {
			case usedInSet[s][e]:
				v.Sequence[s] = Open
			case mustClose(edge, s, vertexInlets, inletsThrough[e]):
				v.Sequence[s] = Closed
				v.Essential = true
			default:
				v.Sequence[s] = DontCare
			}
		}
		analysis.Valves = append(analysis.Valves, v)
	}
	sort.Slice(analysis.Valves, func(i, j int) bool {
		return analysis.Valves[i].Edge < analysis.Valves[j].Edge
	})
	for i, v := range analysis.Valves {
		if v.Essential {
			analysis.Essential = append(analysis.Essential, i)
		}
	}
	return analysis, nil
}

// mustClose reports whether the valve on edge must block in set s: fluid is
// present at an endpoint junction from an inlet that never routes through
// the edge, so leaving the valve open would leak that fluid into the
// segment (contaminating it or misrouting the flow).
func mustClose(edge topo.Edge, s int, vertexInlets []map[int]map[string]bool, carried map[string]bool) bool {
	for _, end := range [2]int{edge.U, edge.V} {
		for inlet := range vertexInlets[s][end] {
			if !carried[inlet] {
				return true
			}
		}
	}
	return false
}

// Compatible reports whether two valves can share one pressure source: no
// flow set may demand one open and the other closed. The wildcard X matches
// either state, and because a set with an O–C clash breaks every pair
// containing it, pairwise compatibility within a group implies group
// compatibility — the premise of the paper's clique-cover formulation.
func Compatible(a, b Valve) bool {
	if len(a.Sequence) != len(b.Sequence) {
		return false
	}
	for s := range a.Sequence {
		x, y := a.Sequence[s], b.Sequence[s]
		if (x == Open && y == Closed) || (x == Closed && y == Open) {
			return false
		}
	}
	return true
}

// CompatibilityMatrix returns the pairwise pressure-sharing relation of the
// given valves.
func CompatibilityMatrix(valves []Valve) [][]bool {
	n := len(valves)
	comp := make([][]bool, n)
	for i := range comp {
		comp[i] = make([]bool, n)
		comp[i][i] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := Compatible(valves[i], valves[j])
			comp[i][j], comp[j][i] = c, c
		}
	}
	return comp
}

// MergedSequence returns the pressure sequence a group of mutually
// compatible valves shares: per set, Open if any member is open, Closed if
// any member is closed, X otherwise. It returns an error if the group has
// an O–C clash.
func MergedSequence(valves []Valve) ([]Status, error) {
	if len(valves) == 0 {
		return nil, fmt.Errorf("valve: empty group")
	}
	n := len(valves[0].Sequence)
	out := make([]Status, n)
	for s := 0; s < n; s++ {
		st := DontCare
		for _, v := range valves {
			if len(v.Sequence) != n {
				return nil, fmt.Errorf("valve: mismatched sequence lengths")
			}
			switch v.Sequence[s] {
			case Open:
				if st == Closed {
					return nil, fmt.Errorf("valve: O-C clash in set %d", s)
				}
				st = Open
			case Closed:
				if st == Open {
					return nil, fmt.Errorf("valve: O-C clash in set %d", s)
				}
				st = Closed
			}
		}
		out[s] = st
	}
	return out, nil
}
