package valve

import (
	"strings"
	"testing"
	"time"

	"switchsynth/internal/cases"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// crossingResult synthesizes the canonical crossing case: T2→B1 and L1→R2
// on the 8-pin switch, which must schedule into two sets through node C.
func crossingResult(t *testing.T) *spec.Result {
	t.Helper()
	sp := &spec.Spec{
		Name:       "crossing",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalyzeCrossingFlows(t *testing.T) {
	res := crossingResult(t)
	a, err := Analyze(res)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSets != 2 {
		t.Fatalf("NumSets = %d, want 2", a.NumSets)
	}
	// 8 used segments: 2 stubs + 2 grid edges per flow.
	if len(a.Valves) != 8 {
		t.Fatalf("valves on used segments = %d, want 8", len(a.Valves))
	}
	// The four grid segments incident to C must close while the crossing
	// flow runs; the four stubs never see foreign fluid.
	if got := a.NumValves(); got != 4 {
		for _, v := range a.Valves {
			t.Logf("valve %s seq=%s essential=%v", res.Switch.Edges[v.Edge].Name, v.SequenceString(), v.Essential)
		}
		t.Fatalf("essential valves = %d, want 4", got)
	}
	for _, v := range a.EssentialValves() {
		name := res.Switch.Edges[v.Edge].Name
		if !strings.Contains(name, "C") {
			t.Errorf("essential valve %s is not incident to the centre", name)
		}
		seq := v.SequenceString()
		if seq != "OC" && seq != "CO" {
			t.Errorf("valve %s sequence %q, want OC or CO", name, seq)
		}
	}
}

func TestAnalyzeFanOutNeedsNoValves(t *testing.T) {
	// A single inlet fanning out in one set: every used segment is open in
	// the only set, no foreign fluid exists, so no valve is essential.
	sp := &spec.Spec{
		Name:       "fan",
		SwitchPins: 8,
		Modules:    []string{"in", "o1", "o2"},
		Flows:      []spec.Flow{{From: "in", To: "o1"}, {From: "in", To: "o2"}},
		Binding:    spec.Unfixed,
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(res)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumValves() != 0 {
		t.Errorf("essential valves = %d, want 0", a.NumValves())
	}
	for _, v := range a.Valves {
		for _, s := range v.Sequence {
			if s == Closed {
				t.Errorf("unexpected Closed status on %s", res.Switch.Edges[v.Edge].Name)
			}
		}
	}
}

func TestAnalyzeRejectsEmptyResult(t *testing.T) {
	if _, err := Analyze(&spec.Result{Spec: &spec.Spec{}, NumSets: 0}); err == nil {
		t.Fatal("want error for zero sets")
	}
}

func TestCompatible(t *testing.T) {
	mk := func(s string) Valve {
		v := Valve{Sequence: make([]Status, len(s))}
		for i := range s {
			v.Sequence[i] = Status(s[i])
		}
		return v
	}
	tests := []struct {
		a, b string
		want bool
	}{
		{"OXC", "XOC", true},  // paper Fig 3.2(a): a and b share
		{"OXC", "OOC", true},  // a and c share
		{"XOC", "OOC", true},  // b and c share: all three one clique
		{"OXX", "CXX", false}, // O–C clash in set 0
		{"XXX", "OCO", true},  // wildcards match anything
		{"OC", "OCX", false},  // different lengths are incompatible
	}
	for _, tc := range tests {
		if got := Compatible(mk(tc.a), mk(tc.b)); got != tc.want {
			t.Errorf("Compatible(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompatibilityMatrix(t *testing.T) {
	mk := func(s string) Valve {
		v := Valve{Sequence: make([]Status, len(s))}
		for i := range s {
			v.Sequence[i] = Status(s[i])
		}
		return v
	}
	// Paper Fig 3.2(b): a pairs with b or c, but b and c clash.
	valves := []Valve{mk("XXC"), mk("OXC"), mk("CXC")}
	comp := CompatibilityMatrix(valves)
	if !comp[0][1] || !comp[0][2] {
		t.Error("valve a should be compatible with both b and c")
	}
	if comp[1][2] || comp[2][1] {
		t.Error("valves b and c must clash")
	}
	for i := range comp {
		if !comp[i][i] {
			t.Error("diagonal must be true")
		}
	}
}

func TestMergedSequence(t *testing.T) {
	mk := func(s string) Valve {
		v := Valve{Sequence: make([]Status, len(s))}
		for i := range s {
			v.Sequence[i] = Status(s[i])
		}
		return v
	}
	seq, err := MergedSequence([]Valve{mk("OXC"), mk("XOC"), mk("OOC")})
	if err != nil {
		t.Fatal(err)
	}
	if got := string([]byte{byte(seq[0]), byte(seq[1]), byte(seq[2])}); got != "OOC" {
		t.Errorf("merged = %q, want OOC", got)
	}
	if _, err := MergedSequence([]Valve{mk("O"), mk("C")}); err == nil {
		t.Error("O-C clash not detected")
	}
	if _, err := MergedSequence(nil); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := MergedSequence([]Valve{mk("OX"), mk("O")}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestValveSequenceString(t *testing.T) {
	v := Valve{Sequence: []Status{Open, DontCare, Closed}}
	if got := v.SequenceString(); got != "OXC" {
		t.Errorf("SequenceString = %q", got)
	}
}

func TestValveStatusConsistencyProperty(t *testing.T) {
	// Property over random artificial cases: a valve is Open in exactly the
	// sets where its segment carries a flow, Closed only when foreign fluid
	// is scheduled at an adjacent junction, and X otherwise.
	for _, c := range casesSample(t) {
		res, err := search.Solve(c, search.Options{TimeLimit: 10 * time.Second})
		if err != nil {
			continue // infeasible random cases are fine
		}
		a, err := Analyze(res)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		// Edge usage per set from the routes.
		usedIn := map[[2]int]bool{} // (edge, set)
		for _, rt := range res.Routes {
			for _, e := range rt.Path.EdgeIDs {
				usedIn[[2]int{e, rt.Set}] = true
			}
		}
		for _, v := range a.Valves {
			for s, st := range v.Sequence {
				carried := usedIn[[2]int{v.Edge, s}]
				if carried && st != Open {
					t.Fatalf("%s: valve %s set %d: carries flow but status %c",
						c.Name, res.Switch.Edges[v.Edge].Name, s, st)
				}
				if !carried && st == Open {
					t.Fatalf("%s: valve %s set %d: open without flow",
						c.Name, res.Switch.Edges[v.Edge].Name, s)
				}
			}
			if v.Essential != hasClosed(v) {
				t.Fatalf("%s: essentiality mismatch on %s", c.Name, res.Switch.Edges[v.Edge].Name)
			}
		}
	}
}

func hasClosed(v Valve) bool {
	for _, s := range v.Sequence {
		if s == Closed {
			return true
		}
	}
	return false
}

// casesSample yields a deterministic batch of random specs.
func casesSample(t *testing.T) []*spec.Spec {
	t.Helper()
	var out []*spec.Spec
	for _, c := range cases.Artificial(10, 77) {
		out = append(out, c.Spec)
	}
	return out
}
