package topo

import "sync"

// topoCache memoizes the shared switch/path-table builders: one entry
// per (kind, parameters) for the lifetime of the process. Entries are
// never evicted — the supported parameter space is tiny and bounded (a
// built 16-pin path table is ~1 MB, and the spec layer caps FPVA grids
// at MaxGridCells cells).
//
// The key carries the topology kind explicitly so distinct families can
// never collide on raw parameters: a "grid" crossbar keyed by its pin
// count and an "fpva" grid keyed by (rows, cols) stay separate even
// when the integers coincide (e.g. an 8-pin crossbar vs a hypothetical
// fpva entry with a = 8).
var topoCache sync.Map // cacheKey -> *topoEntry

// cacheKey identifies one shared topology: the family plus its
// integer parameters (numPins for "grid"; rows, cols for "fpva").
type cacheKey struct {
	kind string
	a, b int
}

type topoEntry struct {
	swOnce sync.Once
	ptOnce sync.Once
	sw     *Switch
	pt     *PathTable
	err    error
}

func sharedEntry(key cacheKey) *topoEntry {
	v, _ := topoCache.LoadOrStore(key, &topoEntry{})
	return v.(*topoEntry)
}

// SharedSwitch returns the process-wide shared crossbar grid switch for
// numPins, building it on first use — without the path table, which
// plan decoding does not need and which dominates first-use cost at
// large pin counts.
//
// Sharing is safe because the Switch is immutable once built: NewGrid
// publishes it only after finish() seals it, and every accessor either
// returns a copy or reads data that is never written again. The
// concurrent-read guarantee is exercised under the race detector by
// TestSharedGridConcurrent.
//
// Construction errors (unsupported pin counts) are memoized too, so
// repeated lookups of a bad size stay cheap.
func SharedSwitch(numPins int) (*Switch, error) {
	e := sharedEntry(cacheKey{kind: "grid", a: numPins})
	e.swOnce.Do(func() { e.sw, e.err = NewGrid(numPins) })
	return e.sw, e.err
}

// SharedGrid returns the shared switch of SharedSwitch together with the
// process-wide shared path table for numPins, building each on first
// use. Every caller at the same pin count receives the same *Switch and
// *PathTable pointers; BuildPathTable only reads the sealed switch.
func SharedGrid(numPins int) (*Switch, *PathTable, error) {
	sw, err := SharedSwitch(numPins)
	if err != nil {
		return nil, nil, err
	}
	e := sharedEntry(cacheKey{kind: "grid", a: numPins})
	e.ptOnce.Do(func() { e.pt = BuildPathTable(sw) })
	return sw, e.pt, nil
}

// SharedFPVASwitch returns the process-wide shared FPVA switch for a
// rows×cols junction grid, building it on first use, without the path
// table. The cache entry is keyed by ("fpva", rows, cols) and can never
// alias a crossbar entry, whatever the parameter values.
func SharedFPVASwitch(rows, cols int) (*Switch, error) {
	e := sharedEntry(cacheKey{kind: "fpva", a: rows, b: cols})
	e.swOnce.Do(func() { e.sw, e.err = NewFPVA(rows, cols) })
	return e.sw, e.err
}

// SharedFPVA returns the shared FPVA switch together with its shared
// path table, building each on first use — the FPVA analogue of
// SharedGrid, with identical immutability and concurrency guarantees.
func SharedFPVA(rows, cols int) (*Switch, *PathTable, error) {
	sw, err := SharedFPVASwitch(rows, cols)
	if err != nil {
		return nil, nil, err
	}
	e := sharedEntry(cacheKey{kind: "fpva", a: rows, b: cols})
	e.ptOnce.Do(func() { e.pt = BuildPathTable(sw) })
	return sw, e.pt, nil
}
