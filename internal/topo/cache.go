package topo

import "sync"

// gridCache memoizes SharedSwitch/SharedGrid results: one entry per pin
// count for the lifetime of the process. Entries are never evicted — the
// supported pin counts form a tiny fixed set, and a built 16-pin path
// table is ~1 MB.
var gridCache sync.Map // numPins -> *gridEntry

type gridEntry struct {
	swOnce sync.Once
	ptOnce sync.Once
	sw     *Switch
	pt     *PathTable
	err    error
}

func sharedEntry(numPins int) *gridEntry {
	v, _ := gridCache.LoadOrStore(numPins, &gridEntry{})
	return v.(*gridEntry)
}

// SharedSwitch returns the process-wide shared grid switch for numPins,
// building it on first use — without the path table, which plan decoding
// does not need and which dominates first-use cost at large pin counts.
//
// Sharing is safe because the Switch is immutable once built: NewGrid
// publishes it only after finish() seals it, and every accessor either
// returns a copy or reads data that is never written again. The
// concurrent-read guarantee is exercised under the race detector by
// TestSharedGridConcurrent.
//
// Construction errors (unsupported pin counts) are memoized too, so
// repeated lookups of a bad size stay cheap.
func SharedSwitch(numPins int) (*Switch, error) {
	e := sharedEntry(numPins)
	e.swOnce.Do(func() { e.sw, e.err = NewGrid(numPins) })
	return e.sw, e.err
}

// SharedGrid returns the shared switch of SharedSwitch together with the
// process-wide shared path table for numPins, building each on first
// use. Every caller at the same pin count receives the same *Switch and
// *PathTable pointers; BuildPathTable only reads the sealed switch.
func SharedGrid(numPins int) (*Switch, *PathTable, error) {
	sw, err := SharedSwitch(numPins)
	if err != nil {
		return nil, nil, err
	}
	e := sharedEntry(numPins)
	e.ptOnce.Do(func() { e.pt = BuildPathTable(sw) })
	return sw, e.pt, nil
}
