package topo

import "sync"

// gridCache memoizes SharedGrid results: one entry per pin count for the
// lifetime of the process. Entries are never evicted — the supported pin
// counts form a tiny fixed set, and a built 16-pin path table is ~1 MB.
var gridCache sync.Map // numPins -> *gridEntry

type gridEntry struct {
	once sync.Once
	sw   *Switch
	pt   *PathTable
	err  error
}

// SharedGrid returns the process-wide shared grid switch and path table
// for numPins, building them on first use. Every caller at the same pin
// count receives the same *Switch and *PathTable pointers.
//
// Sharing is safe because both structures are immutable once built:
// NewGrid publishes the Switch only after finish() seals it, every
// Switch accessor either returns a copy or reads data that is never
// written again, and BuildPathTable only reads the sealed switch. The
// concurrent-read guarantee is exercised under the race detector by
// TestSharedGridConcurrent.
//
// Construction errors (unsupported pin counts) are memoized too, so
// repeated lookups of a bad size stay cheap.
func SharedGrid(numPins int) (*Switch, *PathTable, error) {
	v, _ := gridCache.LoadOrStore(numPins, &gridEntry{})
	e := v.(*gridEntry)
	e.once.Do(func() {
		e.sw, e.err = NewGrid(numPins)
		if e.err != nil {
			return
		}
		e.pt = BuildPathTable(e.sw)
	})
	return e.sw, e.pt, e.err
}
