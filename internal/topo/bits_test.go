package topo

import (
	"testing"
	"testing/quick"
)

func TestBitsBasics(t *testing.T) {
	var b Bits
	if !b.IsZero() {
		t.Error("zero value should be empty")
	}
	b.Set(3)
	b.Set(64)
	b.Set(200)
	for _, i := range []int{3, 64, 200} {
		if !b.Has(i) {
			t.Errorf("missing bit %d", i)
		}
	}
	if b.Has(4) || b.Has(63) || b.Has(199) {
		t.Error("spurious bits")
	}
	if b.OnesCount() != 3 {
		t.Errorf("OnesCount = %d", b.OnesCount())
	}
	got := b.Indices()
	want := []int{3, 64, 200}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Indices = %v, want %v", got, want)
	}
	b.Clear(64)
	if b.Has(64) || b.OnesCount() != 2 {
		t.Error("Clear failed")
	}
}

func TestBitsSetOps(t *testing.T) {
	a := BitsOf(1, 65, 130)
	b := BitsOf(65, 200)
	if !a.Intersects(b) {
		t.Error("should intersect at 65")
	}
	if got := a.And(b); got != BitsOf(65) {
		t.Errorf("And = %v", got.Indices())
	}
	if got := a.Or(b); got != BitsOf(1, 65, 130, 200) {
		t.Errorf("Or = %v", got.Indices())
	}
	if got := a.AndNot(b); got != BitsOf(1, 130) {
		t.Errorf("AndNot = %v", got.Indices())
	}
	if a.Intersects(BitsOf(2, 66)) {
		t.Error("spurious intersection")
	}
}

func TestBitsPropertyAgainstMapModel(t *testing.T) {
	// Model-based property test: Bits behaves like a set of small ints.
	f := func(xs, ys []uint8) bool {
		var a, b Bits
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			a.Set(int(x))
			ma[int(x)] = true
		}
		for _, y := range ys {
			b.Set(int(y))
			mb[int(y)] = true
		}
		if a.OnesCount() != len(ma) {
			return false
		}
		inter := false
		for k := range ma {
			if mb[k] {
				inter = true
			}
			if !a.Has(k) {
				return false
			}
		}
		if a.Intersects(b) != inter {
			return false
		}
		union := a.Or(b)
		for k := range ma {
			if !union.Has(k) {
				return false
			}
		}
		for k := range mb {
			if !union.Has(k) {
				return false
			}
		}
		if union.OnesCount() != len(ma)+len(mb)-a.And(b).OnesCount() {
			return false
		}
		diff := a.AndNot(b)
		for k := range ma {
			if diff.Has(k) == mb[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsIndicesSorted(t *testing.T) {
	f := func(xs []uint8) bool {
		var b Bits
		for _, x := range xs {
			b.Set(int(x))
		}
		idx := b.Indices()
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				return false
			}
		}
		return len(idx) == b.OnesCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargeGridSizes(t *testing.T) {
	// The future-work sizes enabled by the multi-word masks.
	tests := []struct {
		pins, nodes, edges int
	}{
		{20, 36, 80},  // 6×6 grid + 20 stubs
		{24, 49, 108}, // 7×7 grid + 24 stubs
	}
	for _, tc := range tests {
		sw, err := NewGrid(tc.pins)
		if err != nil {
			t.Fatalf("NewGrid(%d): %v", tc.pins, err)
		}
		if got := len(sw.NodeIDs()); got != tc.nodes {
			t.Errorf("%d-pin: nodes = %d, want %d", tc.pins, got, tc.nodes)
		}
		if got := len(sw.Edges); got != tc.edges {
			t.Errorf("%d-pin: edges = %d, want %d", tc.pins, got, tc.edges)
		}
		// Paths across the large switch still enumerate and mask correctly.
		paths := sw.AllShortestPaths(sw.PinVertex(0), sw.PinVertex(tc.pins/2))
		if len(paths) == 0 {
			t.Fatalf("%d-pin: no corner paths", tc.pins)
		}
		for _, p := range paths {
			if p.PopCountVerts() != len(p.Verts) {
				t.Fatalf("%d-pin: mask mismatch", tc.pins)
			}
		}
	}
}
