package topo

import (
	"math"
	"testing"
	"testing/quick"

	"switchsynth/internal/geom"
)

func mustGrid(t *testing.T, pins int) *Switch {
	t.Helper()
	sw, err := NewGrid(pins)
	if err != nil {
		t.Fatalf("NewGrid(%d): %v", pins, err)
	}
	return sw
}

func TestNewGridSizes(t *testing.T) {
	tests := []struct {
		pins, wantNodes, wantEdges int
	}{
		// (m+1)² nodes, 2(m+1)m grid edges + numPins stubs.
		{8, 9, 20},
		{12, 16, 36},
		{16, 25, 56},
	}
	for _, tc := range tests {
		sw := mustGrid(t, tc.pins)
		if got := len(sw.NodeIDs()); got != tc.wantNodes {
			t.Errorf("%d-pin: nodes = %d, want %d", tc.pins, got, tc.wantNodes)
		}
		if got := len(sw.Edges); got != tc.wantEdges {
			t.Errorf("%d-pin: edges = %d, want %d", tc.pins, got, tc.wantEdges)
		}
		if got := len(sw.Pins()); got != tc.pins {
			t.Errorf("%d-pin: pins = %d, want %d", tc.pins, got, tc.pins)
		}
	}
}

func TestNewGridRejectsBadSizes(t *testing.T) {
	for _, pins := range []int{0, -4, 3, 6, 10} {
		if _, err := NewGrid(pins); err == nil {
			t.Errorf("NewGrid(%d) succeeded, want error", pins)
		}
	}
}

func TestEightPinPaperStructure(t *testing.T) {
	sw := mustGrid(t, 8)
	// The paper: "In the 8-pin switch, the pins are T1, T2, R1, R2, B2, B1,
	// L2, L1" (clockwise) and "The nodes are C, T, L, R, B".
	wantPins := []string{"T1", "T2", "R1", "R2", "B2", "B1", "L2", "L1"}
	for order, name := range wantPins {
		v := sw.Vertices[sw.PinVertex(order)]
		if v.Name != name {
			t.Errorf("pin order %d = %q, want %q", order, v.Name, name)
		}
		if v.Kind != PinVertex {
			t.Errorf("pin %q has kind %v", name, v.Kind)
		}
	}
	for _, name := range []string{"C", "T", "L", "R", "B", "TL", "TR", "BL", "BR"} {
		if _, ok := sw.VertexByName(name); !ok {
			t.Errorf("missing node %q", name)
		}
	}
	// "There are 20 flow segments in the 8-pin switch, such as T1-TL and TL-T."
	t1, _ := sw.VertexByName("T1")
	tl, _ := sw.VertexByName("TL")
	tn, _ := sw.VertexByName("T")
	if _, ok := sw.EdgeBetween(t1.ID, tl.ID); !ok {
		t.Error("segment T1-TL missing")
	}
	if _, ok := sw.EdgeBetween(tl.ID, tn.ID); !ok {
		t.Error("segment TL-T missing")
	}
	// Centre has degree 4, corners degree 3 (two grid edges + one pin stub).
	c, _ := sw.VertexByName("C")
	if sw.Degree(c.ID) != 4 {
		t.Errorf("degree(C) = %d, want 4", sw.Degree(c.ID))
	}
	if sw.Degree(tl.ID) != 3 {
		t.Errorf("degree(TL) = %d, want 3", sw.Degree(tl.ID))
	}
}

func TestPinsOnePerBorderNode(t *testing.T) {
	for _, pins := range []int{8, 12, 16} {
		sw := mustGrid(t, pins)
		attached := map[int]int{}
		for _, pid := range sw.Pins() {
			edges := sw.IncidentEdges(pid)
			if len(edges) != 1 {
				t.Fatalf("%d-pin: pin %d has %d incident edges", pins, pid, len(edges))
			}
			node := sw.Edges[edges[0]].Other(pid)
			attached[node]++
		}
		for node, cnt := range attached {
			if cnt != 1 {
				t.Errorf("%d-pin: node %s hosts %d pins, want 1", pins, sw.Vertices[node].Name, cnt)
			}
			v := sw.Vertices[node]
			m := sw.PerSide
			onBorder := v.Row == 0 || v.Row == m || v.Col == 0 || v.Col == m
			if !onBorder {
				t.Errorf("%d-pin: pin attached to interior node %s", pins, v.Name)
			}
		}
		if len(attached) != pins {
			t.Errorf("%d-pin: %d distinct attachment nodes, want %d", pins, len(attached), pins)
		}
	}
}

func TestClockwisePinOrderIsMonotoneAngle(t *testing.T) {
	// Walking the pins in clockwise order must wind exactly once around the
	// switch centre.
	for _, pins := range []int{8, 12, 16} {
		sw := mustGrid(t, pins)
		b := sw.Bounds()
		cx, cy := (b.Min.X+b.Max.X)/2, (b.Min.Y+b.Max.Y)/2
		var total float64
		prev := math.NaN()
		for _, pid := range append(sw.Pins(), sw.PinVertex(0)) {
			p := sw.Vertices[pid].Pos
			// Screen coordinates have y growing downward, so clockwise on
			// screen is counter-clockwise in math convention.
			a := math.Atan2(p.Y-cy, p.X-cx)
			if !math.IsNaN(prev) {
				d := a - prev
				for d <= -math.Pi {
					d += 2 * math.Pi
				}
				for d > math.Pi {
					d -= 2 * math.Pi
				}
				total += d
			}
			prev = a
		}
		if math.Abs(total-2*math.Pi) > 1e-6 {
			t.Errorf("%d-pin: winding = %v, want 2π", pins, total)
		}
	}
}

func TestEdgeLengths(t *testing.T) {
	sw := mustGrid(t, 12)
	for _, e := range sw.Edges {
		uPin := sw.Vertices[e.U].Kind == PinVertex
		vPin := sw.Vertices[e.V].Kind == PinVertex
		want := geom.GridPitch
		if uPin || vPin {
			want = geom.PinStubLength
		}
		if math.Abs(e.Length-want) > 1e-9 {
			t.Errorf("edge %s length = %v, want %v", e.Name, e.Length, want)
		}
	}
}

func TestAllShortestPathsCornerToCorner(t *testing.T) {
	sw := mustGrid(t, 8)
	t1, _ := sw.VertexByName("T1") // attaches at TL
	b2, _ := sw.VertexByName("B2") // attaches at BR
	paths := sw.AllShortestPaths(t1.ID, b2.ID)
	// TL→BR in a 3×3 grid: C(4,2) = 6 monotone lattice paths.
	if len(paths) != 6 {
		t.Fatalf("T1→B2 shortest paths = %d, want 6", len(paths))
	}
	wantLen := 2*geom.PinStubLength + 4*geom.GridPitch
	for _, p := range paths {
		if math.Abs(p.Length-wantLen) > 1e-9 {
			t.Errorf("path length = %v, want %v", p.Length, wantLen)
		}
		if p.Verts[0] != t1.ID || p.Verts[len(p.Verts)-1] != b2.ID {
			t.Error("path endpoints wrong")
		}
		if len(p.Verts) != len(p.EdgeIDs)+1 {
			t.Error("vertex/edge count mismatch")
		}
	}
}

func TestAllShortestPathsAdjacentPins(t *testing.T) {
	sw := mustGrid(t, 8)
	t1, _ := sw.VertexByName("T1")
	t2, _ := sw.VertexByName("T2")
	paths := sw.AllShortestPaths(t1.ID, t2.ID)
	// T1 at TL, T2 at T: single path T1-TL-T-T2.
	if len(paths) != 1 {
		t.Fatalf("T1→T2 paths = %d, want 1", len(paths))
	}
	if got, want := paths[0].Length, 2*geom.PinStubLength+geom.GridPitch; math.Abs(got-want) > 1e-9 {
		t.Errorf("T1→T2 length = %v, want %v", got, want)
	}
}

func TestPathsDoNotRouteThroughPins(t *testing.T) {
	for _, pins := range []int{8, 12} {
		sw := mustGrid(t, pins)
		pt := BuildPathTable(sw)
		for _, p := range pt.All {
			for _, v := range p.Verts[1 : len(p.Verts)-1] {
				if sw.Vertices[v].Kind == PinVertex {
					t.Fatalf("%d-pin: path routes through pin %s", pins, sw.Vertices[v].Name)
				}
			}
		}
	}
}

func TestPathsAreSimpleAndConnected(t *testing.T) {
	sw := mustGrid(t, 12)
	pt := BuildPathTable(sw)
	for _, p := range pt.All {
		seen := map[int]bool{}
		for _, v := range p.Verts {
			if seen[v] {
				t.Fatalf("path revisits vertex %d", v)
			}
			seen[v] = true
		}
		for i, eid := range p.EdgeIDs {
			e := sw.Edges[eid]
			u, v := p.Verts[i], p.Verts[i+1]
			if !((e.U == u && e.V == v) || (e.U == v && e.V == u)) {
				t.Fatalf("edge %d does not connect consecutive vertices", eid)
			}
		}
		if p.PopCountVerts() != len(p.Verts) {
			t.Fatal("vertex mask popcount mismatch")
		}
	}
}

func TestShortestPathsAreShortest(t *testing.T) {
	// Property: for random pin pairs on the 12-pin switch, every enumerated
	// path has exactly the Dijkstra distance, and no shorter path exists.
	sw := mustGrid(t, 12)
	f := func(a, b uint8) bool {
		i := int(a) % sw.NumPins
		j := int(b) % sw.NumPins
		if i == j {
			return true
		}
		in, out := sw.PinVertex(i), sw.PinVertex(j)
		paths := sw.AllShortestPaths(in, out)
		if len(paths) == 0 {
			return false
		}
		want := paths[0].Length
		for _, p := range paths {
			if math.Abs(p.Length-want) > 1e-9 {
				return false
			}
		}
		// Lower bound: stub + Manhattan grid distance + stub.
		na := sw.Edges[sw.IncidentEdges(in)[0]].Other(in)
		nb := sw.Edges[sw.IncidentEdges(out)[0]].Other(out)
		manh := sw.Vertices[na].Pos.Manhattan(sw.Vertices[nb].Pos)
		lb := 2*geom.PinStubLength + manh
		return math.Abs(want-lb) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathReverse(t *testing.T) {
	sw := mustGrid(t, 8)
	paths := sw.AllShortestPaths(sw.PinVertex(0), sw.PinVertex(4))
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	p := paths[0]
	r := p.Reverse()
	if r.In != p.Out || r.Out != p.In {
		t.Error("reverse endpoints wrong")
	}
	if r.VertMask != p.VertMask || r.EdgeMask != p.EdgeMask || r.Length != p.Length {
		t.Error("reverse must preserve masks and length")
	}
	for i := range p.Verts {
		if r.Verts[i] != p.Verts[len(p.Verts)-1-i] {
			t.Fatal("reverse vertex order wrong")
		}
	}
}

func TestBuildPathTableSymmetry(t *testing.T) {
	sw := mustGrid(t, 8)
	pt := BuildPathTable(sw)
	n := sw.NumPins
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				if pt.PathsBetween(i, j) != nil {
					t.Fatal("self pair must have no paths")
				}
				continue
			}
			a, b := pt.PathsBetween(i, j), pt.PathsBetween(j, i)
			if len(a) != len(b) {
				t.Errorf("asymmetric path counts %d→%d: %d vs %d", i, j, len(a), len(b))
			}
			if len(a) == 0 {
				t.Errorf("no path between pins %d and %d", i, j)
			}
		}
	}
	if pt.NumPaths() == 0 {
		t.Fatal("empty path table")
	}
}

func TestSpine(t *testing.T) {
	sw, err := NewSpine(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sw.NodeIDs()); got != 4 {
		t.Errorf("junctions = %d, want 4", got)
	}
	if got := len(sw.Edges); got != 11 { // 3 spine + 8 stubs
		t.Errorf("edges = %d, want 11", got)
	}
	// Every pin-to-pin route on a spine is unique.
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			paths := sw.AllShortestPaths(sw.PinVertex(i), sw.PinVertex(j))
			if len(paths) != 1 {
				t.Fatalf("spine p%d→p%d has %d paths, want 1", i+1, j+1, len(paths))
			}
		}
	}
	if _, err := NewSpine(1); err == nil {
		t.Error("NewSpine(1) succeeded, want error")
	}
}

func TestSpineSharedSegments(t *testing.T) {
	// The contamination premise: on a spine, flows between pins on opposite
	// ends must share spine segments.
	sw, _ := NewSpine(8)
	p1 := sw.AllShortestPaths(sw.PinVertex(0), sw.PinVertex(7))[0] // p1→p8
	p2 := sw.AllShortestPaths(sw.PinVertex(1), sw.PinVertex(6))[0] // p2→p7
	if !p1.SharesEdge(p2) {
		t.Error("spine routes p1→p8 and p2→p7 should share spine segments")
	}
}

func TestGridVsSpineRoutingRichness(t *testing.T) {
	grid := mustGrid(t, 8)
	spine, _ := NewSpine(8)
	gPaths := BuildPathTable(grid).NumPaths()
	sPaths := BuildPathTable(spine).NumPaths()
	if gPaths <= sPaths {
		t.Errorf("grid should offer more routing choice: grid %d vs spine %d", gPaths, sPaths)
	}
}

func TestDesignRuleSpacing(t *testing.T) {
	// Parallel grid channels are one pitch apart: spacing must satisfy the
	// Stanford rule (the previous GRU-based design violated it).
	sw := mustGrid(t, 16)
	for i, e1 := range sw.Edges {
		s1 := geom.Seg(sw.Vertices[e1.U].Pos, sw.Vertices[e1.V].Pos)
		for _, e2 := range sw.Edges[i+1:] {
			if e1.U == e2.U || e1.U == e2.V || e1.V == e2.U || e1.V == e2.V {
				continue // sharing a junction is not a spacing violation
			}
			s2 := geom.Seg(sw.Vertices[e2.U].Pos, sw.Vertices[e2.V].Pos)
			if sp := geom.ChannelSpacing(s1, s2, geom.FlowChannelWidth); sp < geom.MinChannelSpacing-1e-9 {
				t.Fatalf("segments %s and %s spacing %.3f < %.3f", e1.Name, e2.Name, sp, geom.MinChannelSpacing)
			}
		}
	}
}

func TestSwitchBounds(t *testing.T) {
	sw := mustGrid(t, 8)
	b := sw.Bounds()
	want := 2*geom.GridPitch + 2*geom.PinStubLength
	if math.Abs(b.Width()-want) > 1e-9 || math.Abs(b.Height()-want) > 1e-9 {
		t.Errorf("bounds = %v × %v, want %v square", b.Width(), b.Height(), want)
	}
}

func TestTotalLength(t *testing.T) {
	sw := mustGrid(t, 8)
	want := 12*geom.GridPitch + 8*geom.PinStubLength
	if got := sw.TotalLength(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalLength = %v, want %v", got, want)
	}
}

func TestNewGRUStructure(t *testing.T) {
	gru, err := NewGRU(1)
	if err != nil {
		t.Fatal(err)
	}
	if gru.NumPins != 8 {
		t.Errorf("pins = %d, want 8", gru.NumPins)
	}
	// Paper: pins TL, T, TR, R, BR, B, BL, L; nodes C, N, E, W, S.
	wantPins := []string{"TL", "T", "TR", "R", "BR", "B", "BL", "L"}
	for order, name := range wantPins {
		if got := gru.Vertices[gru.PinVertex(order)].Name; got != name {
			t.Errorf("pin %d = %q, want %q", order, got, name)
		}
	}
	if got := len(gru.NodeIDs()); got != 5 {
		t.Errorf("nodes = %d, want 5", got)
	}
	// 8 GRU edges + 8 pin stubs.
	if got := len(gru.Edges); got != 16 {
		t.Errorf("edges = %d, want 16", got)
	}
	// The paper's first criticism: TL and T connect to the same node N.
	tl, _ := gru.VertexByName("TL")
	tt, _ := gru.VertexByName("T")
	n1, _ := gru.VertexByName("N1")
	if _, ok := gru.EdgeBetween(tl.ID, n1.ID); !ok {
		t.Error("TL not attached to N")
	}
	if _, ok := gru.EdgeBetween(tt.ID, n1.ID); !ok {
		t.Error("T not attached to N")
	}
	// Every TL→anywhere path must pass N: N is a cut vertex for TL.
	for order := 1; order < 8; order++ {
		for _, p := range gru.AllShortestPaths(tl.ID, gru.PinVertex(order)) {
			if !p.UsesVertex(n1.ID) {
				t.Fatalf("path TL→%s avoids N", gru.Vertices[gru.PinVertex(order)].Name)
			}
		}
	}
}

func TestNewGRUTwoUnits(t *testing.T) {
	gru, err := NewGRU(2)
	if err != nil {
		t.Fatal(err)
	}
	if gru.NumPins != 12 {
		t.Errorf("pins = %d, want 12", gru.NumPins)
	}
	if got := len(gru.NodeIDs()); got != 10 {
		t.Errorf("nodes = %d, want 10", got)
	}
	// 8 + 8 GRU edges + 1 connector + 12 stubs.
	if got := len(gru.Edges); got != 29 {
		t.Errorf("edges = %d, want 29", got)
	}
	// Cross-unit routing exists.
	tl, _ := gru.VertexByName("TL")
	r, _ := gru.VertexByName("R")
	if paths := gru.AllShortestPaths(tl.ID, r.ID); len(paths) == 0 {
		t.Error("no route across the two GRUs")
	}
}

func TestNewGRURejectsBadUnits(t *testing.T) {
	for _, u := range []int{0, -1, 3} {
		if _, err := NewGRU(u); err == nil {
			t.Errorf("NewGRU(%d) accepted", u)
		}
	}
}

func TestGRUCollisionExampleFromPaper(t *testing.T) {
	// "if two flows are going from pin L and pin BL simultaneously, they
	// would come across with each other at the intersection node W."
	gru, _ := NewGRU(1)
	l, _ := gru.VertexByName("L")
	bl, _ := gru.VertexByName("BL")
	w, _ := gru.VertexByName("W1")
	for _, dst := range gru.Pins() {
		if dst == l.ID || dst == bl.ID {
			continue
		}
		for _, p := range gru.AllShortestPaths(l.ID, dst) {
			if !p.UsesVertex(w.ID) {
				t.Fatal("L-flow avoiding W should be impossible")
			}
		}
		for _, p := range gru.AllShortestPaths(bl.ID, dst) {
			if !p.UsesVertex(w.ID) {
				t.Fatal("BL-flow avoiding W should be impossible")
			}
		}
	}
}
