// Package topo models the flow-layer topology of microfluidic switches.
//
// The paper's reconfigurable switch comes in three sizes — 8-pin, 12-pin and
// 16-pin — built as a crossbar-like structure. We model the N-pin switch
// (m = N/4 pins per side) as an (m+1)×(m+1) grid of junction nodes with one
// flow-pin stub per border node. For the 8-pin switch this yields exactly the
// structure described in the text: 9 junctions (centre C, edge-midpoints
// T/R/B/L and corners TL/TR/BR/BL), 20 flow segments including T1–TL and
// TL–T, and the clockwise pin order T1, T2, R1, R2, B2, B1, L2, L1.
//
// The package also models the spine-with-junctions switch used by the
// Columba family of synthesis tools, which serves as the contamination
// baseline, and enumerates all shortest flow paths between pin pairs.
package topo

import (
	"fmt"
	"math"
	"sort"

	"switchsynth/internal/geom"
)

// VertexKind distinguishes junction nodes from flow pins.
type VertexKind int

const (
	// NodeVertex is an interior junction of flow segments.
	NodeVertex VertexKind = iota
	// PinVertex is a flow-channel end that connects to another module.
	PinVertex
)

// Side identifies the border of the switch a pin exits from.
type Side int

// Sides in clockwise order starting at the top.
const (
	Top Side = iota
	Right
	Bottom
	Left
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case Top:
		return "T"
	case Right:
		return "R"
	case Bottom:
		return "B"
	case Left:
		return "L"
	}
	return "?"
}

// Vertex is a node or pin of the switch flow graph.
type Vertex struct {
	ID   int
	Kind VertexKind
	Name string
	Pos  geom.Point

	// Row, Col locate node vertices on the junction grid (nodes only).
	Row, Col int

	// PinSide and PinIndex identify pin vertices: PinIndex is the 1-based
	// index along the side (T1, T2, ...). Pins only.
	PinSide  Side
	PinIndex int

	// PinOrder is the 0-based clockwise position of a pin around the
	// switch (T1=0, ..., L1=last). -1 for nodes.
	PinOrder int
}

// Edge is a flow segment between two vertices.
type Edge struct {
	ID     int
	U, V   int // vertex IDs, U < V for determinism
	Name   string
	Length float64 // millimetres
}

// Other returns the endpoint of e opposite v.
func (e Edge) Other(v int) int {
	if e.U == v {
		return e.V
	}
	return e.U
}

// Switch is an immutable flow-layer topology: the full (unreduced)
// reconfigurable switch model from which application-specific switches are
// synthesized, or a baseline spine.
//
// A Switch is sealed by its constructor and never mutated afterwards;
// accessors return copies or read-only views. One instance may therefore
// be read by any number of goroutines concurrently without locking —
// SharedGrid hands out exactly such shared instances.
type Switch struct {
	// Kind describes the topology family ("grid", "spine", "fpva").
	Kind string
	// NumPins is the number of flow pins.
	NumPins int
	// PerSide is the number of pins per side (grid switches only).
	PerSide int
	// RotStep is the clockwise pin-order shift of the topology's smallest
	// rotational automorphism: rotating the physical switch by that
	// symmetry maps pin order p to (p+RotStep) mod NumPins while
	// preserving every edge length. The crossbar grid has a 90° rotation
	// (RotStep = PerSide); the FPVA grid only a 180° one (RotStep =
	// Rows+Cols = NumPins/2). Zero disables rotational symmetry breaking
	// (the spine has no rotational symmetry).
	RotStep int
	// Rows and Cols are the junction-grid dimensions of an FPVA switch
	// (fpva only; zero otherwise).
	Rows, Cols int

	Vertices []Vertex
	Edges    []Edge

	adj     [][]int // vertex ID -> incident edge IDs
	pins    []int   // clockwise pin order -> vertex ID
	byName  map[string]int
	edgeAt  map[[2]int]int // (u,v) u<v -> edge ID
	nodeIDs []int
}

// MaxVertices and MaxEdges bound the topology size so that vertex and edge
// sets fit in the fixed-size Bits masks used throughout the synthesis
// engines (64·BitsWords indices each).
const (
	MaxVertices = 64 * BitsWords
	MaxEdges    = 64 * BitsWords
)

// NewGrid constructs the reconfigurable crossbar-like switch model with
// numPins flow pins. numPins must be a positive multiple of 4; the paper's
// sizes are 8, 12 and 16.
func NewGrid(numPins int) (*Switch, error) {
	if numPins <= 0 || numPins%4 != 0 {
		return nil, fmt.Errorf("topo: numPins must be a positive multiple of 4, got %d", numPins)
	}
	m := numPins / 4
	n := m + 1 // grid dimension
	sw := &Switch{
		Kind:    "grid",
		NumPins: numPins,
		PerSide: m,
		RotStep: m,
		byName:  make(map[string]int),
		edgeAt:  make(map[[2]int]int),
	}

	// Junction nodes at (row, col), row 0 at the top, pitch geom.GridPitch.
	nodeID := make([][]int, n)
	for r := 0; r < n; r++ {
		nodeID[r] = make([]int, n)
		for c := 0; c < n; c++ {
			v := Vertex{
				ID:       len(sw.Vertices),
				Kind:     NodeVertex,
				Name:     gridNodeName(n, r, c),
				Pos:      geom.Pt(float64(c)*geom.GridPitch, float64(r)*geom.GridPitch),
				Row:      r,
				Col:      c,
				PinOrder: -1,
			}
			nodeID[r][c] = v.ID
			sw.Vertices = append(sw.Vertices, v)
			sw.nodeIDs = append(sw.nodeIDs, v.ID)
		}
	}

	// Grid edges.
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				sw.addEdge(nodeID[r][c], nodeID[r][c+1])
			}
			if r+1 < n {
				sw.addEdge(nodeID[r][c], nodeID[r+1][c])
			}
		}
	}

	// Pins: one per border node, distributed rotationally. Clockwise order
	// T1..Tm, R1..Rm, Bm..B1, Lm..L1 (matching the paper's 8-pin order
	// T1, T2, R1, R2, B2, B1, L2, L1).
	type pinSpec struct {
		side  Side
		index int // 1-based along the side
		node  int // attached node vertex ID
		pos   geom.Point
	}
	var specs []pinSpec
	stub := geom.PinStubLength
	for i := 0; i < m; i++ { // T1..Tm at top row, cols 0..m-1
		id := nodeID[0][i]
		specs = append(specs, pinSpec{Top, i + 1, id, sw.Vertices[id].Pos.Add(geom.Pt(0, -stub))})
	}
	for i := 0; i < m; i++ { // R1..Rm at right col, rows 0..m-1
		id := nodeID[i][m]
		specs = append(specs, pinSpec{Right, i + 1, id, sw.Vertices[id].Pos.Add(geom.Pt(stub, 0))})
	}
	for i := 0; i < m; i++ { // clockwise along the bottom: Bm..B1 at cols m..1
		idx := m - i
		id := nodeID[m][idx]
		specs = append(specs, pinSpec{Bottom, idx, id, sw.Vertices[id].Pos.Add(geom.Pt(0, stub))})
	}
	for i := 0; i < m; i++ { // clockwise along the left: Lm..L1 at rows m..1
		idx := m - i
		id := nodeID[idx][0]
		specs = append(specs, pinSpec{Left, idx, id, sw.Vertices[id].Pos.Add(geom.Pt(-stub, 0))})
	}
	for order, ps := range specs {
		v := Vertex{
			ID:       len(sw.Vertices),
			Kind:     PinVertex,
			Name:     fmt.Sprintf("%s%d", ps.side, ps.index),
			Pos:      ps.pos,
			Row:      -1,
			Col:      -1,
			PinSide:  ps.side,
			PinIndex: ps.index,
			PinOrder: order,
		}
		sw.Vertices = append(sw.Vertices, v)
		sw.pins = append(sw.pins, v.ID)
		sw.addEdge(v.ID, ps.node)
	}

	if err := sw.finish(); err != nil {
		return nil, err
	}
	return sw, nil
}

// gridNodeName names junction nodes. The 8-pin (3×3) switch uses the paper's
// names C, T, R, B, L, TL, TR, BL, BR; larger grids use coordinates.
func gridNodeName(n, r, c int) string {
	if n == 3 {
		switch {
		case r == 1 && c == 1:
			return "C"
		case r == 0 && c == 0:
			return "TL"
		case r == 0 && c == 1:
			return "T"
		case r == 0 && c == 2:
			return "TR"
		case r == 1 && c == 0:
			return "L"
		case r == 1 && c == 2:
			return "R"
		case r == 2 && c == 0:
			return "BL"
		case r == 2 && c == 1:
			return "B"
		case r == 2 && c == 2:
			return "BR"
		}
	}
	return fmt.Sprintf("n%d_%d", r, c)
}

// NewSpine constructs the Columba-style spine-with-junctions baseline switch:
// a horizontal spine of junction nodes with pin stubs alternating above and
// below. Valves sit only at the stub ends in the real Columba module; this
// model keeps a valve slot on every segment so the same analyses apply, but
// the routing structure (every path shares the spine) is what matters.
func NewSpine(numPins int) (*Switch, error) {
	if numPins < 2 {
		return nil, fmt.Errorf("topo: spine needs at least 2 pins, got %d", numPins)
	}
	nJunc := (numPins + 1) / 2
	sw := &Switch{
		Kind:    "spine",
		NumPins: numPins,
		byName:  make(map[string]int),
		edgeAt:  make(map[[2]int]int),
	}
	juncs := make([]int, nJunc)
	for j := 0; j < nJunc; j++ {
		v := Vertex{
			ID:       len(sw.Vertices),
			Kind:     NodeVertex,
			Name:     fmt.Sprintf("J%d", j+1),
			Pos:      geom.Pt(float64(j)*geom.GridPitch, 0),
			Row:      0,
			Col:      j,
			PinOrder: -1,
		}
		juncs[j] = v.ID
		sw.Vertices = append(sw.Vertices, v)
		sw.nodeIDs = append(sw.nodeIDs, v.ID)
	}
	for j := 0; j+1 < nJunc; j++ {
		sw.addEdge(juncs[j], juncs[j+1])
	}
	stub := geom.PinStubLength
	for p := 0; p < numPins; p++ {
		j := p / 2
		dy := -stub // even pins above the spine
		side := Top
		if p%2 == 1 {
			dy = stub
			side = Bottom
		}
		v := Vertex{
			ID:       len(sw.Vertices),
			Kind:     PinVertex,
			Name:     fmt.Sprintf("p%d", p+1),
			Pos:      sw.Vertices[juncs[j]].Pos.Add(geom.Pt(0, dy)),
			Row:      -1,
			Col:      -1,
			PinSide:  side,
			PinIndex: p + 1,
			PinOrder: p,
		}
		sw.Vertices = append(sw.Vertices, v)
		sw.pins = append(sw.pins, v.ID)
		sw.addEdge(v.ID, juncs[j])
	}
	if err := sw.finish(); err != nil {
		return nil, err
	}
	return sw, nil
}

func (sw *Switch) addEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	e := Edge{
		ID:     len(sw.Edges),
		U:      u,
		V:      v,
		Name:   sw.Vertices[u].Name + "-" + sw.Vertices[v].Name,
		Length: sw.Vertices[u].Pos.Dist(sw.Vertices[v].Pos),
	}
	sw.Edges = append(sw.Edges, e)
	sw.edgeAt[[2]int{u, v}] = e.ID
}

func (sw *Switch) finish() error {
	if len(sw.Vertices) > MaxVertices {
		return fmt.Errorf("topo: %d vertices exceeds the %d-vertex bitmask limit", len(sw.Vertices), MaxVertices)
	}
	if len(sw.Edges) > MaxEdges {
		return fmt.Errorf("topo: %d edges exceeds the %d-edge bitmask limit", len(sw.Edges), MaxEdges)
	}
	sw.adj = make([][]int, len(sw.Vertices))
	for _, e := range sw.Edges {
		sw.adj[e.U] = append(sw.adj[e.U], e.ID)
		sw.adj[e.V] = append(sw.adj[e.V], e.ID)
	}
	for _, v := range sw.Vertices {
		if _, dup := sw.byName[v.Name]; dup {
			return fmt.Errorf("topo: duplicate vertex name %q", v.Name)
		}
		sw.byName[v.Name] = v.ID
	}
	return nil
}

// Pins returns the pin vertex IDs in clockwise order.
func (sw *Switch) Pins() []int {
	out := make([]int, len(sw.pins))
	copy(out, sw.pins)
	return out
}

// NodeIDs returns the junction-node vertex IDs.
func (sw *Switch) NodeIDs() []int {
	out := make([]int, len(sw.nodeIDs))
	copy(out, sw.nodeIDs)
	return out
}

// PinVertex returns the vertex ID of the pin at the given clockwise order.
func (sw *Switch) PinVertex(order int) int { return sw.pins[order] }

// PinOrderOf returns the clockwise order of a pin vertex, or -1.
func (sw *Switch) PinOrderOf(vertexID int) int { return sw.Vertices[vertexID].PinOrder }

// VertexByName returns the vertex with the given name.
func (sw *Switch) VertexByName(name string) (Vertex, bool) {
	id, ok := sw.byName[name]
	if !ok {
		return Vertex{}, false
	}
	return sw.Vertices[id], true
}

// EdgeBetween returns the edge connecting u and v, if any.
func (sw *Switch) EdgeBetween(u, v int) (Edge, bool) {
	if u > v {
		u, v = v, u
	}
	id, ok := sw.edgeAt[[2]int{u, v}]
	if !ok {
		return Edge{}, false
	}
	return sw.Edges[id], true
}

// IncidentEdges returns the IDs of the edges incident to vertex v.
func (sw *Switch) IncidentEdges(v int) []int {
	out := make([]int, len(sw.adj[v]))
	copy(out, sw.adj[v])
	return out
}

// Degree returns the number of edges incident to vertex v.
func (sw *Switch) Degree(v int) int { return len(sw.adj[v]) }

// TotalLength returns the summed length of all flow segments (mm).
func (sw *Switch) TotalLength() float64 {
	var sum float64
	for _, e := range sw.Edges {
		sum += e.Length
	}
	return sum
}

// Bounds returns the bounding box of the full switch.
func (sw *Switch) Bounds() geom.Rect {
	pts := make([]geom.Point, len(sw.Vertices))
	for i, v := range sw.Vertices {
		pts[i] = v.Pos
	}
	return geom.Bounds(pts)
}

// Path is a simple flow path between two pins.
type Path struct {
	// In and Out are the inlet and outlet pin vertex IDs.
	In, Out int
	// Verts lists the vertex IDs from In to Out inclusive.
	Verts []int
	// EdgeIDs lists the traversed edge IDs, len(Verts)-1 of them.
	EdgeIDs []int
	// Length is the total path length in mm.
	Length float64
	// VertMask and EdgeMask are bitsets over vertex and edge IDs.
	VertMask, EdgeMask Bits
}

// InteriorNodes returns the junction vertices of p (all vertices except the
// two pin endpoints).
func (p Path) InteriorNodes() []int {
	if len(p.Verts) <= 2 {
		return nil
	}
	out := make([]int, len(p.Verts)-2)
	copy(out, p.Verts[1:len(p.Verts)-1])
	return out
}

// UsesVertex reports whether p passes through vertex v.
func (p Path) UsesVertex(v int) bool { return p.VertMask.Has(v) }

// UsesEdge reports whether p traverses edge e.
func (p Path) UsesEdge(e int) bool { return p.EdgeMask.Has(e) }

// SharesVertex reports whether p and q have any vertex in common other than
// allowed shared pins (none by default).
func (p Path) SharesVertex(q Path) bool { return p.VertMask.Intersects(q.VertMask) }

// SharesEdge reports whether p and q traverse a common edge.
func (p Path) SharesEdge(q Path) bool { return p.EdgeMask.Intersects(q.EdgeMask) }

// NumVerts returns the number of vertices on the path.
func (p Path) NumVerts() int { return len(p.Verts) }

// String renders the path as a dash-separated vertex-name list.
func (p Path) String() string { return fmt.Sprintf("path(%d verts, %.2fmm)", len(p.Verts), p.Length) }

// Reverse returns the same path traversed Out→In.
func (p Path) Reverse() Path {
	r := Path{
		In:       p.Out,
		Out:      p.In,
		Verts:    make([]int, len(p.Verts)),
		EdgeIDs:  make([]int, len(p.EdgeIDs)),
		Length:   p.Length,
		VertMask: p.VertMask,
		EdgeMask: p.EdgeMask,
	}
	for i, v := range p.Verts {
		r.Verts[len(p.Verts)-1-i] = v
	}
	for i, e := range p.EdgeIDs {
		r.EdgeIDs[len(p.EdgeIDs)-1-i] = e
	}
	return r
}

// PopCountVerts returns the number of vertices in the path mask.
func (p Path) PopCountVerts() int { return p.VertMask.OnesCount() }

// AllShortestPaths enumerates every minimum-length simple path from pin
// vertex in to pin vertex out. Paths never pass through a third pin (pins
// are channel dead-ends connected to modules). The result is deterministic:
// paths are sorted by their vertex sequences.
func (sw *Switch) AllShortestPaths(in, out int) []Path {
	if in == out {
		return nil
	}
	dist := sw.distancesFrom(out, in)
	if math.IsInf(dist[in], 1) {
		return nil
	}
	var (
		paths []Path
		verts []int
		edges []int
	)
	var walk func(v int)
	walk = func(v int) {
		verts = append(verts, v)
		if v == out {
			p := Path{
				In:      in,
				Out:     out,
				Verts:   append([]int(nil), verts...),
				EdgeIDs: append([]int(nil), edges...),
				Length:  dist[in],
			}
			for _, u := range p.Verts {
				p.VertMask.Set(u)
			}
			for _, e := range p.EdgeIDs {
				p.EdgeMask.Set(e)
			}
			paths = append(paths, p)
		} else {
			for _, eid := range sw.adj[v] {
				e := sw.Edges[eid]
				u := e.Other(v)
				if math.Abs(dist[v]-(e.Length+dist[u])) < 1e-9 {
					edges = append(edges, eid)
					walk(u)
					edges = edges[:len(edges)-1]
				}
			}
		}
		verts = verts[:len(verts)-1]
	}
	walk(in)
	sort.Slice(paths, func(i, j int) bool {
		a, b := paths[i].Verts, paths[j].Verts
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return paths
}

// distancesFrom computes shortest distances from src to every vertex,
// refusing to route *through* pin vertices other than src and allow.
func (sw *Switch) distancesFrom(src, allow int) []float64 {
	const inf = math.MaxFloat64
	dist := make([]float64, len(sw.Vertices))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	// Dijkstra with a simple linear scan: the graphs are tiny (≤64 verts).
	done := make([]bool, len(sw.Vertices))
	for {
		best, bestD := -1, inf
		for v := range dist {
			if !done[v] && dist[v] < bestD {
				best, bestD = v, dist[v]
			}
		}
		if best == -1 {
			break
		}
		done[best] = true
		// Pins are dead-ends for through-routing: do not relax out of a pin
		// unless it is the source itself.
		if sw.Vertices[best].Kind == PinVertex && best != src {
			continue
		}
		for _, eid := range sw.adj[best] {
			e := sw.Edges[eid]
			u := e.Other(best)
			if sw.Vertices[u].Kind == PinVertex && u != src && u != allow {
				continue
			}
			if d := dist[best] + e.Length; d < dist[u]-1e-12 {
				dist[u] = d
			}
		}
	}
	return dist
}

// PathTable holds all shortest paths for every ordered pin pair of a switch.
// Like Switch it is immutable once BuildPathTable returns and safe for
// unsynchronized concurrent reads; SharedGrid shares one instance per pin
// count across all solver goroutines.
type PathTable struct {
	Switch *Switch
	// ByPair maps [inOrder][outOrder] to the candidate paths, indexed by the
	// clockwise pin orders.
	ByPair [][][]Path
	// All is the flattened, deterministic path list; Path d of the paper's
	// x_{i,d} variables refers to All[d].
	All []Path
}

// BuildPathTable enumerates all shortest paths between every ordered pin
// pair of sw.
func BuildPathTable(sw *Switch) *PathTable {
	n := len(sw.pins)
	pt := &PathTable{Switch: sw, ByPair: make([][][]Path, n)}
	for i := range pt.ByPair {
		pt.ByPair[i] = make([][]Path, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			var paths []Path
			if j < i {
				// Reuse the reverse direction for determinism and speed.
				for _, p := range pt.ByPair[j][i] {
					paths = append(paths, p.Reverse())
				}
			} else {
				paths = sw.AllShortestPaths(sw.pins[i], sw.pins[j])
			}
			pt.ByPair[i][j] = paths
			pt.All = append(pt.All, paths...)
		}
	}
	return pt
}

// PathsBetween returns the candidate paths from pin order in to pin order out.
func (pt *PathTable) PathsBetween(in, out int) []Path { return pt.ByPair[in][out] }

// NumPaths returns the total number of enumerated paths.
func (pt *PathTable) NumPaths() int { return len(pt.All) }
