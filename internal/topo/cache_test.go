package topo

import (
	"sync"
	"testing"
)

// TestSharedGridConcurrent is the concurrent-read guarantee promised in
// the SharedGrid docs: many goroutines resolving and reading the same
// pin count must observe one shared, race-free instance. Run under the
// race detector in CI.
func TestSharedGridConcurrent(t *testing.T) {
	baseSw, basePt, err := SharedGrid(12)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sw, pt, err := SharedGrid(12)
			if err != nil {
				t.Error(err)
				return
			}
			if sw != baseSw || pt != basePt {
				t.Error("SharedGrid returned distinct instances for one pin count")
				return
			}
			// Exercise unsynchronized reads of both structures.
			for p := 0; p < sw.NumPins; p++ {
				_ = sw.IncidentEdges(sw.PinVertex(p))
			}
			if len(pt.PathsBetween(0, 5)) == 0 {
				t.Error("shared path table returned no paths")
			}
		}()
	}
	wg.Wait()
}

func TestSharedGridDistinctSizes(t *testing.T) {
	sw8, _, err := SharedGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	sw16, _, err := SharedGrid(16)
	if err != nil {
		t.Fatal(err)
	}
	if sw8 == sw16 || sw8.NumPins != 8 || sw16.NumPins != 16 {
		t.Errorf("cache mixed up sizes: %d and %d pins", sw8.NumPins, sw16.NumPins)
	}
}

func TestSharedGridMemoizesErrors(t *testing.T) {
	_, _, err1 := SharedGrid(7)
	_, _, err2 := SharedGrid(7)
	if err1 == nil || err2 == nil {
		t.Fatal("unsupported pin count did not error")
	}
	if err1 != err2 {
		t.Errorf("error not memoized: %v vs %v", err1, err2)
	}
}
