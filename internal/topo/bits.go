package topo

import "math/bits"

// BitsWords is the number of 64-bit words in a Bits set; 4 words cover 256
// vertices or edges — enough for switches well beyond the paper's 16 pins
// (a 24-pin switch has 73 vertices and 108 segments).
const BitsWords = 4

// Bits is a fixed-size bitset over vertex or edge IDs. The zero value is
// the empty set; Bits is comparable with ==.
type Bits [BitsWords]uint64

// Set adds index i to the set.
func (b *Bits) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear removes index i from the set.
func (b *Bits) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Has reports whether index i is in the set.
func (b Bits) Has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// IsZero reports whether the set is empty.
func (b Bits) IsZero() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share any index.
func (b Bits) Intersects(o Bits) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// And returns the intersection of b and o.
func (b Bits) And(o Bits) Bits {
	var out Bits
	for i := range b {
		out[i] = b[i] & o[i]
	}
	return out
}

// Or returns the union of b and o.
func (b Bits) Or(o Bits) Bits {
	var out Bits
	for i := range b {
		out[i] = b[i] | o[i]
	}
	return out
}

// AndNot returns b minus o.
func (b Bits) AndNot(o Bits) Bits {
	var out Bits
	for i := range b {
		out[i] = b[i] &^ o[i]
	}
	return out
}

// OnesCount returns the number of indices in the set.
func (b Bits) OnesCount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Indices returns the set indices in ascending order.
func (b Bits) Indices() []int {
	out := make([]int, 0, b.OnesCount())
	for wi, w := range b {
		for w != 0 {
			out = append(out, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// BitsOf builds a set from indices.
func BitsOf(indices ...int) Bits {
	var b Bits
	for _, i := range indices {
		b.Set(i)
	}
	return b
}
