package topo

import (
	"fmt"
	"math"
	"testing"

	"switchsynth/internal/geom"
)

func TestNewFPVAStructure(t *testing.T) {
	sw, err := NewFPVA(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Kind != "fpva" {
		t.Errorf("Kind = %q", sw.Kind)
	}
	if sw.Rows != 3 || sw.Cols != 4 {
		t.Errorf("dims = %dx%d, want 3x4", sw.Rows, sw.Cols)
	}
	if sw.NumPins != 14 {
		t.Errorf("NumPins = %d, want 2*(3+4) = 14", sw.NumPins)
	}
	if sw.RotStep != 7 {
		t.Errorf("RotStep = %d, want 7 (the 180° rotation)", sw.RotStep)
	}
	if got, want := len(sw.NodeIDs()), 12; got != want {
		t.Errorf("%d junctions, want %d", got, want)
	}
	// Edges: 3 rows × 3 horizontals + 2×4 verticals + 14 stubs.
	if got, want := len(sw.Edges), 9+8+14; got != want {
		t.Errorf("%d edges, want %d", got, want)
	}
	// Clockwise port naming: T1..T4, R1..R3, B4..B1, L3..L1.
	wantNames := []string{
		"T1", "T2", "T3", "T4",
		"R1", "R2", "R3",
		"B4", "B3", "B2", "B1",
		"L3", "L2", "L1",
	}
	for order, want := range wantNames {
		v := sw.Vertices[sw.PinVertex(order)]
		if v.Name != want {
			t.Errorf("pin order %d = %q, want %q", order, v.Name, want)
		}
		if v.PinOrder != order {
			t.Errorf("pin %q PinOrder = %d, want %d", v.Name, v.PinOrder, order)
		}
		if Degree := sw.Degree(v.ID); Degree != 1 {
			t.Errorf("port %q has degree %d, want 1 (single stub)", v.Name, Degree)
		}
	}
	// Junction degree = grid neighbors + one stub per exposed side.
	for _, id := range sw.NodeIDs() {
		v := sw.Vertices[id]
		deg := sw.Degree(id)
		grid := 0
		if v.Row > 0 {
			grid++
		}
		if v.Row < sw.Rows-1 {
			grid++
		}
		if v.Col > 0 {
			grid++
		}
		if v.Col < sw.Cols-1 {
			grid++
		}
		stubs := 0
		if v.Row == 0 {
			stubs++
		}
		if v.Row == sw.Rows-1 {
			stubs++
		}
		if v.Col == 0 {
			stubs++
		}
		if v.Col == sw.Cols-1 {
			stubs++
		}
		if deg != grid+stubs {
			t.Errorf("junction %s degree %d, want %d grid + %d stubs", v.Name, deg, grid, stubs)
		}
	}
}

func TestNewFPVARejectsDegenerate(t *testing.T) {
	for _, dim := range [][2]int{{0, 0}, {1, 1}, {1, 5}, {5, 1}, {0, 4}, {-2, 3}} {
		if _, err := NewFPVA(dim[0], dim[1]); err == nil {
			t.Errorf("NewFPVA(%d, %d) accepted a degenerate grid", dim[0], dim[1])
		}
	}
}

// TestFPVARotationalSymmetry proves the RotStep contract geometrically:
// rotating any port's position 180° about the grid center lands exactly
// on the port RotStep later in clockwise order — and the crossbar's 90°
// rotation is absent (FPVA grids are not square in general, and even
// square ones break 90° symmetry only when rows == cols, which still
// maps ports correctly under 180°).
func TestFPVARotationalSymmetry(t *testing.T) {
	for _, dim := range [][2]int{{2, 2}, {3, 4}, {5, 3}, {4, 4}} {
		rows, cols := dim[0], dim[1]
		sw, err := NewFPVA(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		b := sw.Bounds()
		cx, cy := (b.Min.X+b.Max.X)/2, (b.Min.Y+b.Max.Y)/2
		for p := 0; p < sw.NumPins; p++ {
			pos := sw.Vertices[sw.PinVertex(p)].Pos
			want := geom.Pt(2*cx-pos.X, 2*cy-pos.Y)
			q := (p + sw.RotStep) % sw.NumPins
			got := sw.Vertices[sw.PinVertex(q)].Pos
			if math.Abs(got.X-want.X) > 1e-9 || math.Abs(got.Y-want.Y) > 1e-9 {
				t.Fatalf("%dx%d: pin %d rotated 180° is not pin %d (RotStep %d)",
					rows, cols, p, q, sw.RotStep)
			}
		}
	}
}

// TestSharedTopologyCacheKeysNeverCollide is the cache-key separation
// guarantee: a crossbar and an FPVA grid exposing the same port count —
// or FPVA grids with transposed dimensions — must never share a cache
// entry, and repeated lookups of the same topology must return the very
// same instances.
func TestSharedTopologyCacheKeysNeverCollide(t *testing.T) {
	// An 8-pin crossbar and a 2×2 FPVA both expose 8 ports.
	xbar, xbarPT, err := SharedGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	fpva, fpvaPT, err := SharedFPVA(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if xbar.NumPins != 8 || fpva.NumPins != 8 {
		t.Fatalf("port counts %d and %d, want both 8", xbar.NumPins, fpva.NumPins)
	}
	if xbar == fpva {
		t.Fatal("crossbar and FPVA with colliding parameters share a switch instance")
	}
	if xbarPT == fpvaPT {
		t.Fatal("crossbar and FPVA with colliding parameters share a path table")
	}
	if xbar.Kind != "grid" || fpva.Kind != "fpva" {
		t.Errorf("kinds %q and %q, want grid and fpva", xbar.Kind, fpva.Kind)
	}

	// Transposed FPVA dimensions are distinct topologies.
	ab, _, err := SharedFPVA(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ba, _, err := SharedFPVA(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ab == ba {
		t.Fatal("transposed FPVA dimensions share a cache entry")
	}
	if ab.Rows != 2 || ab.Cols != 3 || ba.Rows != 3 || ba.Cols != 2 {
		t.Errorf("cached dims mixed up: %dx%d and %dx%d", ab.Rows, ab.Cols, ba.Rows, ba.Cols)
	}

	// Same parameters → same instances, for both families.
	if sw2, pt2, err := SharedFPVA(2, 2); err != nil || sw2 != fpva || pt2 != fpvaPT {
		t.Errorf("SharedFPVA(2,2) not memoized (err %v)", err)
	}
	if sw2, pt2, err := SharedGrid(8); err != nil || sw2 != xbar || pt2 != xbarPT {
		t.Errorf("SharedGrid(8) not memoized (err %v)", err)
	}

	// The switch-only accessors resolve to the same cached instances.
	if sw, err := SharedFPVASwitch(2, 2); err != nil || sw != fpva {
		t.Errorf("SharedFPVASwitch(2,2) returned a different instance (err %v)", err)
	}
	if sw, err := SharedSwitch(8); err != nil || sw != xbar {
		t.Errorf("SharedSwitch(8) returned a different instance (err %v)", err)
	}
}

func TestSharedFPVAMemoizesErrors(t *testing.T) {
	_, _, err1 := SharedFPVA(1, 9)
	_, _, err2 := SharedFPVA(1, 9)
	if err1 == nil || err2 == nil {
		t.Fatal("degenerate grid did not error")
	}
	if err1 != err2 {
		t.Errorf("error not memoized: %v vs %v", err1, err2)
	}
}

// TestFPVAPathTable spot-checks that the shared path table serves
// shortest routes between FPVA ports through the junction grid.
func TestFPVAPathTable(t *testing.T) {
	sw, pt, err := SharedFPVA(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// T1 (above junction n0_0) to L1 (left of the same junction): the
	// shortest route is stub + stub through one junction.
	t1, _ := sw.VertexByName("T1")
	l1, _ := sw.VertexByName("L1")
	paths := pt.PathsBetween(t1.PinOrder, l1.PinOrder)
	if len(paths) == 0 {
		t.Fatal("no T1→L1 paths")
	}
	want := 2 * geom.PinStubLength
	if math.Abs(paths[0].Length-want) > 1e-9 {
		t.Errorf("T1→L1 shortest length %v, want %v", paths[0].Length, want)
	}
	for _, p := range paths {
		if p.Verts[0] != t1.ID || p.Verts[len(p.Verts)-1] != l1.ID {
			t.Errorf("path endpoints %v do not join T1 and L1", p.Verts)
		}
	}
	// Opposite corners route through rows+cols junctions.
	b3, _ := sw.VertexByName("B3")
	cross := pt.PathsBetween(t1.PinOrder, b3.PinOrder)
	if len(cross) == 0 {
		t.Fatal("no T1→B3 paths")
	}
	wantCross := 2*geom.PinStubLength + 4*geom.GridPitch
	if math.Abs(cross[0].Length-wantCross) > 1e-9 {
		t.Errorf("T1→B3 shortest length %v, want %v", cross[0].Length, wantCross)
	}
}

func TestFPVAFitsBitsMasksAtSpecCap(t *testing.T) {
	// The binding worst cases under the spec layer's 100-cell cap.
	for _, dim := range [][2]int{{10, 10}, {2, 50}, {50, 2}, {4, 25}} {
		rows, cols := dim[0], dim[1]
		sw, err := NewFPVA(rows, cols)
		if err != nil {
			t.Fatalf("NewFPVA(%d, %d): %v", rows, cols, err)
		}
		if len(sw.Vertices) > MaxVertices || len(sw.Edges) > MaxEdges {
			t.Errorf("%dx%d: %d vertices / %d edges exceed the mask limits",
				rows, cols, len(sw.Vertices), len(sw.Edges))
		}
	}
}

func TestFPVAVertexNamesUnique(t *testing.T) {
	sw, err := NewFPVA(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, v := range sw.Vertices {
		if seen[v.Name] {
			t.Errorf("duplicate vertex name %q", v.Name)
		}
		seen[v.Name] = true
	}
	// Junction naming is positional.
	for _, id := range sw.NodeIDs() {
		v := sw.Vertices[id]
		if want := fmt.Sprintf("n%d_%d", v.Row, v.Col); v.Name != want {
			t.Errorf("junction at (%d,%d) named %q, want %q", v.Row, v.Col, v.Name, want)
		}
	}
}
