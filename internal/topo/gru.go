package topo

import (
	"fmt"

	"switchsynth/internal/geom"
)

// NewGRU constructs the General-Routing-Unit switch of the predecessor
// design the paper analyzes in Section 2.1 (Ma's thesis, built from the
// PSION GRUs): a diamond of nodes N, E, S, W around a centre C, with two
// flow pins per outer node and 45° diagonal segments.
//
// units selects one GRU (8 pins: TL, T, TR, R, BR, B, BL, L) or two chained
// GRUs (12 pins): the second GRU's W node fuses onto the first GRU's E node
// through a connecting segment, and the facing pins disappear.
//
// The paper identifies three flow-layer flaws that this model reproduces
// faithfully so they can be demonstrated:
//
//   - pins TL and T connect to the same and only node N, so conflicting
//     flows from TL and T can never be routed apart;
//   - flows from L and BL collide at W even without a conflict;
//   - the diagonals meet the spokes at ~45°, violating the angular
//     clearance the crossbar grid keeps at 90° (see internal/drc).
func NewGRU(units int) (*Switch, error) {
	if units != 1 && units != 2 {
		return nil, fmt.Errorf("topo: NewGRU supports 1 or 2 units, got %d", units)
	}
	sw := &Switch{
		Kind:    "gru",
		NumPins: 8 + 4*(units-1),
		byName:  make(map[string]int),
		edgeAt:  make(map[[2]int]int),
	}
	const (
		r    = 1.0 // node distance from each GRU centre
		stub = geom.PinStubLength
	)
	diag := stub / 1.4142135623730951 // 45° pin stubs

	addNode := func(name string, p geom.Point) int {
		v := Vertex{
			ID:       len(sw.Vertices),
			Kind:     NodeVertex,
			Name:     name,
			Pos:      p,
			Row:      -1,
			Col:      -1,
			PinOrder: -1,
		}
		sw.Vertices = append(sw.Vertices, v)
		sw.nodeIDs = append(sw.nodeIDs, v.ID)
		return v.ID
	}
	type pinSpec struct {
		name string
		node int
		pos  geom.Point
		side Side
	}
	var pins []pinSpec

	// GRU 1 centred at the origin.
	c1 := addNode("C1", geom.Pt(0, 0))
	n1 := addNode("N1", geom.Pt(0, -r))
	e1 := addNode("E1", geom.Pt(r, 0))
	s1 := addNode("S1", geom.Pt(0, r))
	w1 := addNode("W1", geom.Pt(-r, 0))
	for _, pair := range [][2]int{{n1, c1}, {e1, c1}, {s1, c1}, {w1, c1},
		{w1, n1}, {n1, e1}, {e1, s1}, {s1, w1}} {
		sw.addEdge(pair[0], pair[1])
	}

	if units == 1 {
		pins = []pinSpec{
			{"TL", n1, geom.Pt(-diag, -r-diag), Top},
			{"T", n1, geom.Pt(0, -r-stub), Top},
			{"TR", e1, geom.Pt(r+diag, -diag), Right},
			{"R", e1, geom.Pt(r+stub, 0), Right},
			{"BR", s1, geom.Pt(diag, r+diag), Bottom},
			{"B", s1, geom.Pt(0, r+stub), Bottom},
			{"BL", w1, geom.Pt(-r-diag, diag), Left},
			{"L", w1, geom.Pt(-r-stub, 0), Left},
		}
	} else {
		// GRU 2 centred to the right; E1–W2 is the connecting segment, and
		// the pins that faced each other (TR/R of GRU1, BL/L of GRU2)
		// disappear.
		off := 2*r + 1.0
		c2 := addNode("C2", geom.Pt(off, 0))
		n2 := addNode("N2", geom.Pt(off, -r))
		e2 := addNode("E2", geom.Pt(off+r, 0))
		s2 := addNode("S2", geom.Pt(off, r))
		w2 := addNode("W2", geom.Pt(off-r, 0))
		for _, pair := range [][2]int{{n2, c2}, {e2, c2}, {s2, c2}, {w2, c2},
			{w2, n2}, {n2, e2}, {e2, s2}, {s2, w2}} {
			sw.addEdge(pair[0], pair[1])
		}
		sw.addEdge(e1, w2)
		pins = []pinSpec{
			{"TL", n1, geom.Pt(-diag, -r-diag), Top},
			{"T", n1, geom.Pt(0, -r-stub), Top},
			{"T2", n2, geom.Pt(off, -r-stub), Top},
			{"TR", e2, geom.Pt(off+r+diag, -diag), Right},
			{"R", e2, geom.Pt(off+r+stub, 0), Right},
			{"BR", s2, geom.Pt(off+diag, r+diag), Bottom},
			{"B2", s2, geom.Pt(off, r+stub), Bottom},
			{"B", s1, geom.Pt(0, r+stub), Bottom},
			{"BL", w1, geom.Pt(-r-diag, diag), Left},
			{"L", w1, geom.Pt(-r-stub, 0), Left},
			{"TL2", n2, geom.Pt(off-diag, -r-diag), Top},
			{"BR1", s1, geom.Pt(diag, r+diag), Bottom},
		}
	}

	for order, ps := range pins {
		v := Vertex{
			ID:       len(sw.Vertices),
			Kind:     PinVertex,
			Name:     ps.name,
			Pos:      ps.pos,
			Row:      -1,
			Col:      -1,
			PinSide:  ps.side,
			PinIndex: order + 1,
			PinOrder: order,
		}
		sw.Vertices = append(sw.Vertices, v)
		sw.pins = append(sw.pins, v.ID)
		sw.addEdge(v.ID, ps.node)
	}
	if err := sw.finish(); err != nil {
		return nil, err
	}
	return sw, nil
}
