package topo

import (
	"fmt"

	"switchsynth/internal/geom"
)

// NewFPVA constructs a fully programmable valve array flow topology: an
// rows×cols grid of junction nodes where every channel segment between
// adjacent junctions carries its own valve, with one boundary I/O port
// per border junction per exposed side (corner junctions expose two).
//
// The model generalizes the paper's fixed crossbar to the N×M valve
// arrays of the FPVA literature: where the crossbar derives its grid
// dimension from the pin count (m+1 per side for 4m pins), the FPVA is
// parameterized directly by its junction grid, and every junction —
// not only border ones — is a routing point. The port convention
// mirrors the crossbar's: clockwise order T1..Tcols, R1..Rrows,
// Bcols..B1, Lrows..L1, so all pin-order-based machinery (binding,
// clockwise winding, canonical keys) carries over unchanged.
//
// rows and cols must each be at least 2 — a 1-dimensional array
// degenerates to a spine with no routing freedom — and small enough
// that the vertex and edge sets fit the fixed Bits masks (the spec
// layer additionally caps rows·cols at spec.MaxGridCells).
func NewFPVA(rows, cols int) (*Switch, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("topo: FPVA grid must be at least 2x2, got %dx%d", rows, cols)
	}
	sw := &Switch{
		Kind:    "fpva",
		NumPins: 2 * (rows + cols),
		RotStep: rows + cols,
		Rows:    rows,
		Cols:    cols,
		byName:  make(map[string]int),
		edgeAt:  make(map[[2]int]int),
	}

	// Junction nodes at (row, col), row 0 at the top, pitch geom.GridPitch.
	nodeID := make([][]int, rows)
	for r := 0; r < rows; r++ {
		nodeID[r] = make([]int, cols)
		for c := 0; c < cols; c++ {
			v := Vertex{
				ID:       len(sw.Vertices),
				Kind:     NodeVertex,
				Name:     fmt.Sprintf("n%d_%d", r, c),
				Pos:      geom.Pt(float64(c)*geom.GridPitch, float64(r)*geom.GridPitch),
				Row:      r,
				Col:      c,
				PinOrder: -1,
			}
			nodeID[r][c] = v.ID
			sw.Vertices = append(sw.Vertices, v)
			sw.nodeIDs = append(sw.nodeIDs, v.ID)
		}
	}

	// Channel segments between adjacent junctions; each carries a valve.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				sw.addEdge(nodeID[r][c], nodeID[r][c+1])
			}
			if r+1 < rows {
				sw.addEdge(nodeID[r][c], nodeID[r+1][c])
			}
		}
	}

	// Boundary I/O ports, one per border junction per exposed side, in
	// clockwise order T1..Tcols, R1..Rrows, Bcols..B1, Lrows..L1. Under
	// the 180° rotation (r,c) → (rows-1-r, cols-1-c) every port maps to
	// the diametrically opposite one, shifting each clockwise order by
	// rows+cols — the RotStep recorded above.
	type pinSpec struct {
		side  Side
		index int // 1-based along the side
		node  int // attached junction vertex ID
		pos   geom.Point
	}
	var specs []pinSpec
	stub := geom.PinStubLength
	for c := 0; c < cols; c++ { // T1..Tcols across the top row
		id := nodeID[0][c]
		specs = append(specs, pinSpec{Top, c + 1, id, sw.Vertices[id].Pos.Add(geom.Pt(0, -stub))})
	}
	for r := 0; r < rows; r++ { // R1..Rrows down the right column
		id := nodeID[r][cols-1]
		specs = append(specs, pinSpec{Right, r + 1, id, sw.Vertices[id].Pos.Add(geom.Pt(stub, 0))})
	}
	for c := cols - 1; c >= 0; c-- { // clockwise along the bottom: Bcols..B1
		id := nodeID[rows-1][c]
		specs = append(specs, pinSpec{Bottom, c + 1, id, sw.Vertices[id].Pos.Add(geom.Pt(0, stub))})
	}
	for r := rows - 1; r >= 0; r-- { // clockwise up the left: Lrows..L1
		id := nodeID[r][0]
		specs = append(specs, pinSpec{Left, r + 1, id, sw.Vertices[id].Pos.Add(geom.Pt(-stub, 0))})
	}
	for order, ps := range specs {
		v := Vertex{
			ID:       len(sw.Vertices),
			Kind:     PinVertex,
			Name:     fmt.Sprintf("%s%d", ps.side, ps.index),
			Pos:      ps.pos,
			Row:      -1,
			Col:      -1,
			PinSide:  ps.side,
			PinIndex: ps.index,
			PinOrder: order,
		}
		sw.Vertices = append(sw.Vertices, v)
		sw.pins = append(sw.pins, v.ID)
		sw.addEdge(v.ID, ps.node)
	}

	if err := sw.finish(); err != nil {
		return nil, err
	}
	return sw, nil
}
