// Package drc checks switch flow-layer geometry against the Stanford
// Foundry basic design rules the paper cites, plus the angular-clearance
// criterion behind the paper's critique of the GRU predecessor design
// (flow segments meeting at ~45° leave reagent residue at the turn and
// crowd the layout).
package drc

import (
	"fmt"
	"math"
	"sort"

	"switchsynth/internal/geom"
	"switchsynth/internal/topo"
)

// Rules are the checked design rules. The zero value is unusable; use
// DefaultRules.
type Rules struct {
	// ChannelWidth is the flow channel width (mm).
	ChannelWidth float64
	// MinSpacing is the minimum clear space between non-adjacent channel
	// segments (mm).
	MinSpacing float64
	// MinJunctionAngleDeg is the minimum angle between segments meeting at
	// a junction (degrees). The crossbar grid keeps 90°; the GRU design's
	// 45° turns violate it.
	MinJunctionAngleDeg float64
	// MinSegmentLength ensures every segment can host a valve (mm).
	MinSegmentLength float64
}

// DefaultRules returns the Stanford-Foundry-derived rule set used by the
// paper: 0.1 mm channels, 0.1 mm spacing, 60° angular clearance and enough
// segment length for a 0.3 mm valve crossing with spacing on both sides.
func DefaultRules() Rules {
	return Rules{
		ChannelWidth:        geom.FlowChannelWidth,
		MinSpacing:          geom.MinChannelSpacing,
		MinJunctionAngleDeg: 60,
		MinSegmentLength:    geom.ValveChannelWidth + 2*geom.MinChannelSpacing,
	}
}

// Kind classifies a violation.
type Kind int

// Violation kinds.
const (
	// SpacingViolation: two non-adjacent segments are too close.
	SpacingViolation Kind = iota
	// AngleViolation: two segments meet at a junction below the minimum
	// angle.
	AngleViolation
	// LengthViolation: a segment is too short to host a valve.
	LengthViolation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SpacingViolation:
		return "spacing"
	case AngleViolation:
		return "angle"
	case LengthViolation:
		return "length"
	}
	return "?"
}

// Violation is one design-rule breach.
type Violation struct {
	Kind Kind
	// EdgeA and EdgeB identify the involved segments (EdgeB = -1 for
	// LengthViolation).
	EdgeA, EdgeB int
	// Value is the measured spacing (mm), angle (deg) or length (mm).
	Value float64
	// Limit is the rule threshold the value fell below.
	Limit float64
	// Detail names the segments.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (%.3g < %.3g)", v.Kind, v.Detail, v.Value, v.Limit)
}

// Check verifies the whole switch flow layer against the rules and returns
// the violations sorted by kind then edge IDs.
func Check(sw *topo.Switch, rules Rules) []Violation {
	var out []Violation
	segs := make([]geom.Segment, len(sw.Edges))
	for i, e := range sw.Edges {
		segs[i] = geom.Seg(sw.Vertices[e.U].Pos, sw.Vertices[e.V].Pos)
	}
	adjacent := func(a, b topo.Edge) bool {
		return a.U == b.U || a.U == b.V || a.V == b.U || a.V == b.V
	}
	for i, ea := range sw.Edges {
		if l := segs[i].Length(); l < rules.MinSegmentLength-1e-9 {
			out = append(out, Violation{
				Kind:  LengthViolation,
				EdgeA: ea.ID, EdgeB: -1,
				Value: l, Limit: rules.MinSegmentLength,
				Detail: ea.Name,
			})
		}
		for j := i + 1; j < len(sw.Edges); j++ {
			eb := sw.Edges[j]
			if adjacent(ea, eb) {
				ang := geom.AngleBetweenDeg(segs[i], segs[j])
				if !math.IsNaN(ang) && ang < rules.MinJunctionAngleDeg-1e-9 {
					out = append(out, Violation{
						Kind:  AngleViolation,
						EdgeA: ea.ID, EdgeB: eb.ID,
						Value: ang, Limit: rules.MinJunctionAngleDeg,
						Detail: ea.Name + " / " + eb.Name,
					})
				}
				continue
			}
			sp := geom.SegmentDistance(segs[i], segs[j]) - rules.ChannelWidth
			if sp < rules.MinSpacing-1e-9 {
				out = append(out, Violation{
					Kind:  SpacingViolation,
					EdgeA: ea.ID, EdgeB: eb.ID,
					Value: sp, Limit: rules.MinSpacing,
					Detail: ea.Name + " / " + eb.Name,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Kind != out[b].Kind {
			return out[a].Kind < out[b].Kind
		}
		if out[a].EdgeA != out[b].EdgeA {
			return out[a].EdgeA < out[b].EdgeA
		}
		return out[a].EdgeB < out[b].EdgeB
	})
	return out
}

// Clean reports whether the switch passes all rules.
func Clean(sw *topo.Switch, rules Rules) bool { return len(Check(sw, rules)) == 0 }
