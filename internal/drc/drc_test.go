package drc

import (
	"strings"
	"testing"

	"switchsynth/internal/topo"
)

func TestGridSwitchesAreClean(t *testing.T) {
	// The paper's crossbar models follow the Stanford rules; the previous
	// GRU-based design did not (Section 2.1).
	for _, pins := range []int{8, 12, 16} {
		sw, err := topo.NewGrid(pins)
		if err != nil {
			t.Fatal(err)
		}
		if vs := Check(sw, DefaultRules()); len(vs) != 0 {
			t.Errorf("%d-pin grid: %d violations, first: %v", pins, len(vs), vs[0])
		}
		if !Clean(sw, DefaultRules()) {
			t.Errorf("%d-pin grid: Clean() = false", pins)
		}
	}
}

func TestGRUViolatesAngularClearance(t *testing.T) {
	for _, units := range []int{1, 2} {
		sw, err := topo.NewGRU(units)
		if err != nil {
			t.Fatal(err)
		}
		vs := Check(sw, DefaultRules())
		if len(vs) == 0 {
			t.Fatalf("GRU(%d) passes DRC; the paper documents its 45° turns", units)
		}
		angles := 0
		for _, v := range vs {
			if v.Kind == AngleViolation {
				angles++
				if v.Value > 46 {
					t.Errorf("GRU(%d): angle violation at %.1f°, expected ~45°", units, v.Value)
				}
			}
		}
		if angles == 0 {
			t.Errorf("GRU(%d): no angle violations among %d", units, len(vs))
		}
	}
}

func TestSpineIsClean(t *testing.T) {
	sw, err := topo.NewSpine(8)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Check(sw, DefaultRules()); len(vs) != 0 {
		t.Errorf("spine: unexpected violations %v", vs)
	}
}

func TestLengthViolation(t *testing.T) {
	sw, _ := topo.NewGrid(8)
	rules := DefaultRules()
	rules.MinSegmentLength = 0.7 // pin stubs are 0.6 mm
	vs := Check(sw, rules)
	lengths := 0
	for _, v := range vs {
		if v.Kind == LengthViolation {
			lengths++
			if v.EdgeB != -1 {
				t.Error("length violation should not reference a second edge")
			}
		}
	}
	if lengths != 8 {
		t.Errorf("length violations = %d, want 8 (one per stub)", lengths)
	}
}

func TestSpacingViolation(t *testing.T) {
	sw, _ := topo.NewGrid(8)
	rules := DefaultRules()
	rules.MinSpacing = 1.0 // grid channels sit 0.9 mm apart clear
	vs := Check(sw, rules)
	found := false
	for _, v := range vs {
		if v.Kind == SpacingViolation {
			found = true
			if v.Value >= v.Limit {
				t.Errorf("reported spacing %v not below limit %v", v.Value, v.Limit)
			}
		}
	}
	if !found {
		t.Error("tight spacing rule found no violations")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: AngleViolation, Detail: "a / b", Value: 45, Limit: 60}
	s := v.String()
	if !strings.Contains(s, "angle") || !strings.Contains(s, "a / b") {
		t.Errorf("violation string %q", s)
	}
	if SpacingViolation.String() != "spacing" || LengthViolation.String() != "length" {
		t.Error("kind strings wrong")
	}
}

func TestDeterministicOrder(t *testing.T) {
	sw, _ := topo.NewGRU(2)
	a := Check(sw, DefaultRules())
	b := Check(sw, DefaultRules())
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("violation %d differs", i)
		}
	}
}
