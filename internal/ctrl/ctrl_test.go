package ctrl

import (
	"math"
	"testing"

	"switchsynth/internal/clique"
	"switchsynth/internal/geom"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
	"switchsynth/internal/valve"
)

// crossingSynthesis builds the canonical two-crossing-flows case with four
// essential valves in two pressure groups.
func crossingSynthesis(t *testing.T) (*spec.Result, *valve.Analysis, *clique.Cover) {
	t.Helper()
	sp := &spec.Spec{
		Name:       "ctrl-crossing",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	va, err := valve.Analyze(res)
	if err != nil {
		t.Fatal(err)
	}
	cover := clique.MinCover(valve.CompatibilityMatrix(va.EssentialValves()))
	return res, va, &cover
}

func TestRouteCrossingCase(t *testing.T) {
	res, va, cover := crossingSynthesis(t)
	plan, err := Route(res, va, cover)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(plan, res, va); err != nil {
		t.Fatal(err)
	}
	if len(plan.Nets) != cover.NumGroups() {
		t.Fatalf("nets = %d, want %d", len(plan.Nets), cover.NumGroups())
	}
	for _, net := range plan.Nets {
		if math.IsNaN(net.Inlet.X) {
			t.Errorf("net %d has no inlet", net.Group)
		}
		if net.Length <= 0 {
			t.Errorf("net %d has zero length", net.Group)
		}
	}
	if plan.TotalLength <= 0 {
		t.Error("zero total control length")
	}
}

func TestRouteWithoutCoverOneNetPerValve(t *testing.T) {
	res, va, _ := crossingSynthesis(t)
	plan, err := Route(res, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(plan, res, va); err != nil {
		t.Fatal(err)
	}
	if len(plan.Nets) != va.NumValves() {
		t.Fatalf("nets = %d, want %d (one per valve)", len(plan.Nets), va.NumValves())
	}
}

func TestPressureSharingReducesInlets(t *testing.T) {
	res, va, cover := crossingSynthesis(t)
	shared, err := Route(res, va, cover)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared.Nets) >= va.NumValves() {
		t.Errorf("pressure sharing did not reduce inlets: %d vs %d valves",
			len(shared.Nets), va.NumValves())
	}
}

func TestRouteEmptyValveSet(t *testing.T) {
	// A fan-out case has no essential valves: routing is a no-op.
	sp := &spec.Spec{
		Name:       "ctrl-empty",
		SwitchPins: 8,
		Modules:    []string{"in", "o1", "o2"},
		Flows:      []spec.Flow{{From: "in", To: "o1"}, {From: "in", To: "o2"}},
		Binding:    spec.Unfixed,
	}
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	va, err := valve.Analyze(res)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Route(res, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Nets) != 0 || plan.TotalLength != 0 {
		t.Errorf("expected empty plan, got %+v", plan)
	}
}

func TestCrossingsAreCounted(t *testing.T) {
	// Valves at the centre of the switch cannot reach the border without
	// crossing at least... zero flow channels if routed between them; but
	// at least the counter must be consistent and non-negative.
	res, va, cover := crossingSynthesis(t)
	plan, err := Route(res, va, cover)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range plan.Nets {
		if n.Crossings < 0 {
			t.Errorf("negative crossings on net %d", n.Group)
		}
		sum += n.Crossings
	}
	if sum != plan.TotalCrossings {
		t.Errorf("crossing accounting: %d != %d", sum, plan.TotalCrossings)
	}
}

func TestRouteDeterministic(t *testing.T) {
	res, va, cover := crossingSynthesis(t)
	p1, err := Route(res, va, cover)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Route(res, va, cover)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalLength != p2.TotalLength || p1.TotalCrossings != p2.TotalCrossings {
		t.Fatal("routing not deterministic")
	}
	for i := range p1.Nets {
		if len(p1.Nets[i].Cells) != len(p2.Nets[i].Cells) || p1.Nets[i].Inlet != p2.Nets[i].Inlet {
			t.Fatalf("net %d differs between runs", i)
		}
	}
}

func TestCellPoint(t *testing.T) {
	plan := &Plan{Pitch: 0.2, Origin: geom.Pt(1, 2)}
	p := plan.CellPoint(Cell{Row: 3, Col: 5})
	if math.Abs(p.X-2.0) > 1e-9 || math.Abs(p.Y-2.6) > 1e-9 {
		t.Errorf("CellPoint = %v", p)
	}
}
