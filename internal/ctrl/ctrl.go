// Package ctrl routes the control layer of a synthesized switch: one
// control net per pressure-sharing group, from a control-inlet punch at the
// chip border to every valve the group drives.
//
// The thesis leaves control-channel routing as future work ("control channel
// routing should be considered for pressure sharing", Section 5); this
// package implements it in the style of practical control-layer routers
// (PACOR-like grid routing):
//
//   - control channels are Manhattan polylines on a 0.2 mm routing raster
//     covering the switch plus a border margin;
//   - channels of different nets never share a raster cell (0.2 mm pitch
//     with 0.1 mm channels keeps exactly the Stanford 0.1 mm spacing);
//   - a control channel crossing a flow channel is expensive (every
//     crossing is a parasitic valve membrane) and is only allowed
//     perpendicular to the flow channel; crossing another net's valve
//     position is forbidden outright;
//   - each net terminates at the border of the routing area, where its
//     1 mm² control-inlet punch is placed.
//
// Nets are routed sequentially, largest group first, each valve connecting
// to the growing net of its group (cheapest-path Steiner approximation).
package ctrl

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"switchsynth/internal/clique"
	"switchsynth/internal/geom"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
	"switchsynth/internal/valve"
)

// RasterPitch is the routing raster spacing in mm: channel width plus the
// minimum clearance.
const RasterPitch = geom.FlowChannelWidth + geom.MinChannelSpacing

// CrossingCost is the extra cost (in raster steps) of crossing one flow
// channel with a control channel.
const CrossingCost = 10

// Net is one routed control net (one control inlet).
type Net struct {
	// Group indexes the pressure-sharing cover group this net drives.
	Group int
	// Valves lists the valve edge IDs the net actuates.
	Valves []int
	// Cells lists the raster cells of the net in routing order.
	Cells []Cell
	// Inlet is the control-inlet punch location (mm).
	Inlet geom.Point
	// Length is the routed channel length in mm.
	Length float64
	// Crossings counts flow-channel crossings (parasitic membranes).
	Crossings int
}

// Cell is a raster coordinate.
type Cell struct{ Row, Col int }

// Plan is a routed control layer.
type Plan struct {
	// Nets holds one net per pressure group, ordered by group index.
	Nets []Net
	// TotalLength is the summed control channel length (mm).
	TotalLength float64
	// TotalCrossings counts all parasitic flow crossings.
	TotalCrossings int
	// Pitch is the raster pitch used (mm).
	Pitch float64
	// Origin is the position of raster cell (0, 0) (mm).
	Origin geom.Point
	// Rows and Cols are the raster dimensions.
	Rows, Cols int
}

// CellPoint returns the physical position of a raster cell.
func (p *Plan) CellPoint(c Cell) geom.Point {
	return geom.Pt(p.Origin.X+float64(c.Col)*p.Pitch, p.Origin.Y+float64(c.Row)*p.Pitch)
}

// Route routes the control layer for a verified synthesis plan, its valve
// analysis and its pressure-sharing cover. With a nil cover every essential
// valve gets its own net (one control inlet per valve).
func Route(res *spec.Result, va *valve.Analysis, cover *clique.Cover) (*Plan, error) {
	ess := va.EssentialValves()
	if len(ess) == 0 {
		return &Plan{Pitch: RasterPitch}, nil
	}
	groups := make([][]int, 0)
	if cover != nil {
		for _, g := range cover.Groups {
			groups = append(groups, append([]int(nil), g...))
		}
	} else {
		for i := range ess {
			groups = append(groups, []int{i})
		}
	}

	r := newRaster(res)
	// Forbid other valves' positions; collect per-valve cells.
	valveCell := make([]Cell, len(ess))
	for i, v := range ess {
		e := res.Switch.Edges[v.Edge]
		mid := res.Switch.Vertices[e.U].Pos.Mid(res.Switch.Vertices[e.V].Pos)
		valveCell[i] = r.cellAt(mid)
	}

	// Route the largest groups first: they need the most freedom.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if len(groups[order[a]]) != len(groups[order[b]]) {
			return len(groups[order[a]]) > len(groups[order[b]])
		}
		return order[a] < order[b]
	})

	plan := &Plan{
		Pitch:  r.pitch,
		Origin: r.origin,
		Rows:   r.rows,
		Cols:   r.cols,
		Nets:   make([]Net, len(groups)),
	}
	for _, g := range order {
		net, err := r.routeGroup(g, groups[g], ess, valveCell)
		if err != nil {
			return nil, fmt.Errorf("ctrl: group %d: %w", g, err)
		}
		plan.Nets[g] = net
		plan.TotalLength += net.Length
		plan.TotalCrossings += net.Crossings
	}
	return plan, nil
}

// raster is the routing grid state.
type raster struct {
	sw     *topo.Switch
	pitch  float64
	origin geom.Point
	rows   int
	cols   int
	// flowEdge[idx] = flow edge ID occupying the cell, or -1.
	flowEdge []int
	// horizontal[idx] reports the flow channel direction in the cell.
	horizontal []bool
	// owner[idx] = group owning the cell as control channel, or -1.
	owner []int
	// blocked[idx] marks other valves' membranes and inlet punches.
	blocked []bool
}

func newRaster(res *spec.Result) *raster {
	b := res.Switch.Bounds()
	const margin = 1.6 // room for border routing and 1 mm² punches
	r := &raster{
		sw:     res.Switch,
		pitch:  RasterPitch,
		origin: geom.Pt(b.Min.X-margin, b.Min.Y-margin),
	}
	r.cols = int(math.Ceil((b.Width()+2*margin)/r.pitch)) + 1
	r.rows = int(math.Ceil((b.Height()+2*margin)/r.pitch)) + 1
	n := r.rows * r.cols
	r.flowEdge = make([]int, n)
	r.horizontal = make([]bool, n)
	r.owner = make([]int, n)
	r.blocked = make([]bool, n)
	for i := range r.flowEdge {
		r.flowEdge[i] = -1
		r.owner[i] = -1
	}
	// Mark used flow channels by sampling each used edge.
	for _, eid := range res.UsedEdges() {
		e := res.Switch.Edges[eid]
		a := res.Switch.Vertices[e.U].Pos
		bb := res.Switch.Vertices[e.V].Pos
		horizontal := math.Abs(a.Y-bb.Y) < math.Abs(a.X-bb.X)
		steps := int(a.Dist(bb)/(r.pitch/2)) + 1
		for s := 0; s <= steps; s++ {
			t := float64(s) / float64(steps)
			p := geom.Pt(a.X+(bb.X-a.X)*t, a.Y+(bb.Y-a.Y)*t)
			c := r.cellAt(p)
			idx := r.idx(c)
			r.flowEdge[idx] = eid
			r.horizontal[idx] = horizontal
		}
	}
	return r
}

func (r *raster) idx(c Cell) int { return c.Row*r.cols + c.Col }

func (r *raster) cellAt(p geom.Point) Cell {
	return Cell{
		Row: int(math.Round((p.Y - r.origin.Y) / r.pitch)),
		Col: int(math.Round((p.X - r.origin.X) / r.pitch)),
	}
}

func (r *raster) inBounds(c Cell) bool {
	return c.Row >= 0 && c.Row < r.rows && c.Col >= 0 && c.Col < r.cols
}

func (r *raster) border(c Cell) bool {
	return c.Row == 0 || c.Row == r.rows-1 || c.Col == 0 || c.Col == r.cols-1
}

type pqItem struct {
	cell Cell
	cost int
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(a, b int) bool  { return q[a].cost < q[b].cost }
func (q pq) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// routeGroup connects every valve of the group into one net ending at a
// border inlet.
func (r *raster) routeGroup(group int, members []int, ess []valve.Valve, valveCell []Cell) (Net, error) {
	net := Net{Group: group, Inlet: geom.Pt(math.NaN(), math.NaN())}
	for _, m := range members {
		net.Valves = append(net.Valves, ess[m].Edge)
	}
	// Forbid all other valves' membrane cells for this group.
	otherValve := make(map[int]bool)
	for i := range ess {
		inGroup := false
		for _, m := range members {
			if m == i {
				inGroup = true
				break
			}
		}
		if !inGroup {
			otherValve[r.idx(valveCell[i])] = true
		}
	}

	inNet := make(map[int]bool)
	// Route valves nearest the border first so the trunk starts outside.
	ms := append([]int(nil), members...)
	sort.SliceStable(ms, func(a, b int) bool {
		da := r.borderDist(valveCell[ms[a]])
		db := r.borderDist(valveCell[ms[b]])
		if da != db {
			return da < db
		}
		return ms[a] < ms[b]
	})
	for k, m := range ms {
		start := valveCell[m]
		target := func(c Cell) bool {
			if k == 0 {
				return r.border(c)
			}
			return inNet[r.idx(c)]
		}
		path, crossings, err := r.dijkstra(start, target, group, otherValve)
		if err != nil {
			return net, fmt.Errorf("valve %s: %w", r.sw.Edges[ess[m].Edge].Name, err)
		}
		for _, c := range path {
			idx := r.idx(c)
			if r.owner[idx] == -1 {
				r.owner[idx] = group
			}
			if !inNet[idx] {
				inNet[idx] = true
				net.Cells = append(net.Cells, c)
			}
		}
		net.Crossings += crossings
		if k == 0 {
			end := path[len(path)-1]
			net.Inlet = geom.Pt(r.origin.X+float64(end.Col)*r.pitch, r.origin.Y+float64(end.Row)*r.pitch)
			r.blockPunch(end)
		}
	}
	net.Length = float64(len(net.Cells)-1) * r.pitch
	if net.Length < 0 {
		net.Length = 0
	}
	return net, nil
}

func (r *raster) borderDist(c Cell) int {
	d := c.Row
	if x := r.rows - 1 - c.Row; x < d {
		d = x
	}
	if c.Col < d {
		d = c.Col
	}
	if x := r.cols - 1 - c.Col; x < d {
		d = x
	}
	return d
}

// blockPunch reserves a 1 mm² region around an inlet for the punch.
func (r *raster) blockPunch(c Cell) {
	half := int(math.Ceil(math.Sqrt(geom.ControlInletArea) / 2 / r.pitch))
	for dr := -half; dr <= half; dr++ {
		for dc := -half; dc <= half; dc++ {
			cc := Cell{c.Row + dr, c.Col + dc}
			if r.inBounds(cc) && r.owner[r.idx(cc)] == -1 {
				r.blocked[r.idx(cc)] = true
			}
		}
	}
}

// dijkstra finds a cheapest control path from start to any target cell.
func (r *raster) dijkstra(start Cell, target func(Cell) bool, group int, otherValve map[int]bool) ([]Cell, int, error) {
	const inf = math.MaxInt32
	n := r.rows * r.cols
	dist := make([]int32, n)
	prev := make([]int32, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	sIdx := r.idx(start)
	if !r.inBounds(start) {
		return nil, 0, fmt.Errorf("start cell out of raster")
	}
	dist[sIdx] = 0
	q := &pq{{start, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		idx := r.idx(it.cell)
		if int32(it.cost) > dist[idx] {
			continue
		}
		if target(it.cell) {
			// Reconstruct.
			var cells []Cell
			cur := int32(idx)
			crossings := 0
			for cur != -1 {
				c := Cell{int(cur) / r.cols, int(cur) % r.cols}
				cells = append(cells, c)
				if r.flowEdge[cur] != -1 && int(cur) != sIdx {
					crossings++
				}
				cur = prev[cur]
			}
			// Reverse to start→target order.
			for i, j := 0, len(cells)-1; i < j; i, j = i+1, j-1 {
				cells[i], cells[j] = cells[j], cells[i]
			}
			return cells, crossings, nil
		}
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nc := Cell{it.cell.Row + d[0], it.cell.Col + d[1]}
			if !r.inBounds(nc) {
				continue
			}
			nIdx := r.idx(nc)
			if r.blocked[nIdx] || otherValve[nIdx] {
				continue
			}
			if o := r.owner[nIdx]; o != -1 && o != group {
				continue // another net's channel
			}
			step := 1
			if fe := r.flowEdge[nIdx]; fe != -1 {
				// Crossing a flow channel: only perpendicular movement.
				movingHorizontally := d[0] == 0
				if movingHorizontally == r.horizontal[nIdx] {
					continue
				}
				step += CrossingCost
			}
			ncost := dist[idx] + int32(step)
			if ncost < dist[nIdx] {
				dist[nIdx] = ncost
				prev[nIdx] = int32(idx)
				heap.Push(q, pqItem{nc, int(ncost)})
			}
		}
	}
	return nil, 0, fmt.Errorf("no control route found")
}

// Verify checks a routed plan for structural soundness: nets are non-empty
// and cell-disjoint, every valve's membrane cell belongs to its net, and
// inlets lie on the routing border region.
func Verify(plan *Plan, res *spec.Result, va *valve.Analysis) error {
	seen := map[Cell]int{}
	for _, net := range plan.Nets {
		if len(net.Valves) == 0 {
			return fmt.Errorf("ctrl: net %d drives no valves", net.Group)
		}
		if len(net.Cells) == 0 {
			return fmt.Errorf("ctrl: net %d has no cells", net.Group)
		}
		for _, c := range net.Cells {
			if g, dup := seen[c]; dup && g != net.Group {
				return fmt.Errorf("ctrl: cell %v shared by nets %d and %d", c, g, net.Group)
			}
			seen[c] = net.Group
		}
	}
	// Each essential valve's membrane cell must be covered by exactly the
	// net that drives it.
	ess := va.EssentialValves()
	for _, v := range ess {
		e := res.Switch.Edges[v.Edge]
		mid := res.Switch.Vertices[e.U].Pos.Mid(res.Switch.Vertices[e.V].Pos)
		cell := Cell{
			Row: int(math.Round((mid.Y - plan.Origin.Y) / plan.Pitch)),
			Col: int(math.Round((mid.X - plan.Origin.X) / plan.Pitch)),
		}
		driving := -1
		for _, net := range plan.Nets {
			for _, ve := range net.Valves {
				if ve == v.Edge {
					driving = net.Group
				}
			}
		}
		if driving == -1 {
			return fmt.Errorf("ctrl: valve %s driven by no net", e.Name)
		}
		if g, ok := seen[cell]; !ok || g != driving {
			return fmt.Errorf("ctrl: valve %s membrane cell not on its net %d", e.Name, driving)
		}
	}
	return nil
}
