package cases

import (
	"errors"
	"testing"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

func TestAllCasesValidate(t *testing.T) {
	all := []Case{
		ChIPSw1(), ChIPSw2(), NucleicAcid(), MRNAIsolation(),
		KinaseSw1(), KinaseSw2(), SchedulingExample(), MRNAStress16(),
	}
	for _, c := range all {
		if err := c.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", c.Spec.Name, err)
		}
		// Each case must also validate under every policy it is used with.
		for _, b := range []spec.BindingPolicy{spec.Clockwise, spec.Unfixed} {
			if err := c.WithBinding(b).Validate(); err != nil {
				t.Errorf("%s/%s: %v", c.Spec.Name, b, err)
			}
		}
		if len(c.Spec.FixedPins) > 0 {
			if err := c.WithBinding(spec.Fixed).Validate(); err != nil {
				t.Errorf("%s/fixed: %v", c.Spec.Name, err)
			}
		}
	}
}

func TestModuleCountsMatchPaper(t *testing.T) {
	tests := []struct {
		c     Case
		mods  int
		pins  int
		flows int
	}{
		{ChIPSw1(), 9, 12, 6},
		{ChIPSw2(), 10, 12, 8},
		{NucleicAcid(), 7, 8, 4},
		{MRNAIsolation(), 10, 12, 5},
		{KinaseSw1(), 4, 12, 2},
		{KinaseSw2(), 6, 12, 4},
		{SchedulingExample(), 12, 12, 9},
		{MRNAStress16(), 13, 16, 7},
	}
	for _, tc := range tests {
		if got := len(tc.c.Spec.Modules); got != tc.mods {
			t.Errorf("%s: %d modules, want %d (paper's #m)", tc.c.Spec.Name, got, tc.mods)
		}
		if got := tc.c.Spec.SwitchPins; got != tc.pins {
			t.Errorf("%s: %d pins, want %d (paper's sw. size)", tc.c.Spec.Name, got, tc.pins)
		}
		if got := len(tc.c.Spec.Flows); got != tc.flows {
			t.Errorf("%s: %d flows, want %d", tc.c.Spec.Name, got, tc.flows)
		}
	}
}

// TestTable41FeasibilityPattern reproduces the headline of Table 4.1: the
// ChIP switch is synthesizable under all three binding policies, while the
// nucleic-acid and mRNA switches admit solutions only under the unfixed
// policy.
func TestTable41FeasibilityPattern(t *testing.T) {
	type row struct {
		c        Case
		feasible map[spec.BindingPolicy]bool
	}
	rows := []row{
		{ChIPSw1(), map[spec.BindingPolicy]bool{spec.Fixed: true, spec.Clockwise: true, spec.Unfixed: true}},
		{NucleicAcid(), map[spec.BindingPolicy]bool{spec.Fixed: false, spec.Clockwise: false, spec.Unfixed: true}},
		{MRNAIsolation(), map[spec.BindingPolicy]bool{spec.Fixed: false, spec.Clockwise: false, spec.Unfixed: true}},
	}
	for _, r := range rows {
		for policy, wantFeasible := range r.feasible {
			sp := r.c.WithBinding(policy)
			res, err := search.Solve(sp, search.Options{TimeLimit: 60 * time.Second})
			if wantFeasible {
				if err != nil {
					t.Errorf("%s/%s: want solution, got %v", sp.Name, policy, err)
					continue
				}
				if verr := contam.Verify(res); verr != nil {
					t.Errorf("%s/%s: invalid plan: %v", sp.Name, policy, verr)
				}
			} else {
				var nosol *spec.ErrNoSolution
				if !errors.As(err, &nosol) {
					t.Errorf("%s/%s: want proven no-solution, got res=%v err=%v", sp.Name, policy, res != nil, err)
				}
			}
		}
	}
}

func TestSchedulingExampleThreeSets(t *testing.T) {
	// Table 4.2: the 9 fan-out flows from 3 inlets schedule into 3 sets.
	c := SchedulingExample()
	res, err := search.Solve(c.Spec, search.Options{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if verr := contam.Verify(res); verr != nil {
		t.Fatal(verr)
	}
	if res.NumSets != 3 {
		t.Errorf("NumSets = %d, want 3 (one per inlet, as in Table 4.2)", res.NumSets)
	}
}

func TestArtificialDeterministicAndValid(t *testing.T) {
	a := Artificial(90, 42)
	b := Artificial(90, 42)
	if len(a) != 90 || len(b) != 90 {
		t.Fatalf("campaign sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if err := a[i].Spec.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
		if a[i].Spec.Name != b[i].Spec.Name || len(a[i].Spec.Flows) != len(b[i].Spec.Flows) {
			t.Errorf("case %d not deterministic", i)
		}
		for f := range a[i].Spec.Flows {
			if a[i].Spec.Flows[f] != b[i].Spec.Flows[f] {
				t.Errorf("case %d flow %d differs between runs", i, f)
			}
		}
	}
	// The campaign must cover both sizes and all three policies.
	sizes := map[int]int{}
	policies := map[spec.BindingPolicy]int{}
	for _, c := range a {
		sizes[c.Spec.SwitchPins]++
		policies[c.Spec.Binding]++
	}
	if sizes[8] == 0 || sizes[12] == 0 {
		t.Errorf("sizes covered: %v", sizes)
	}
	if policies[spec.Fixed] == 0 || policies[spec.Clockwise] == 0 || policies[spec.Unfixed] == 0 {
		t.Errorf("policies covered: %v", policies)
	}
}

func TestArtificialSample(t *testing.T) {
	// Spot-run a handful of artificial cases end to end.
	for _, c := range Artificial(12, 7) {
		res, err := search.Solve(c.Spec, search.Options{TimeLimit: 20 * time.Second})
		if err != nil {
			// Constrained random cases may legitimately have no solution
			// under fixed/clockwise binding; that is a valid outcome.
			var nosol *spec.ErrNoSolution
			var tout *search.ErrTimeout
			if !errors.As(err, &nosol) && !errors.As(err, &tout) {
				t.Errorf("%s: %v", c.Spec.Name, err)
			}
			continue
		}
		if verr := contam.Verify(res); verr != nil {
			t.Errorf("%s: invalid plan: %v", c.Spec.Name, verr)
		}
	}
}

func TestArtificialFPVADeterministicAndValid(t *testing.T) {
	a := ArtificialFPVA(30, 42)
	b := ArtificialFPVA(30, 42)
	if len(a) != 30 || len(b) != 30 {
		t.Fatalf("campaign sizes %d/%d", len(a), len(b))
	}
	dims := map[[2]int]int{}
	policies := map[spec.BindingPolicy]int{}
	withConf, without := 0, 0
	for i := range a {
		sp := a[i].Spec
		if err := sp.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
		if !sp.IsFPVA() {
			t.Errorf("case %d is not an FPVA spec", i)
		}
		if sp.Name != b[i].Spec.Name ||
			sp.GridRows != b[i].Spec.GridRows || sp.GridCols != b[i].Spec.GridCols ||
			len(sp.Flows) != len(b[i].Spec.Flows) || len(sp.Conflicts) != len(b[i].Spec.Conflicts) {
			t.Errorf("case %d not deterministic", i)
		}
		dims[[2]int{sp.GridRows, sp.GridCols}]++
		policies[sp.Binding]++
		if len(sp.Conflicts) > 0 {
			withConf++
		} else {
			without++
		}
	}
	// The campaign must vary grid dimensions, policies and conflict
	// density (some cases with conflicts, some without).
	if len(dims) < 3 {
		t.Errorf("only %d distinct grid dimensions: %v", len(dims), dims)
	}
	if policies[spec.Fixed] == 0 || policies[spec.Clockwise] == 0 || policies[spec.Unfixed] == 0 {
		t.Errorf("policies covered: %v", policies)
	}
	if withConf == 0 || without == 0 {
		t.Errorf("conflict density not varied: %d with, %d without", withConf, without)
	}
}

func TestArtificialFPVASample(t *testing.T) {
	// Spot-run a handful of FPVA cases end to end on the grid substrate.
	for _, c := range ArtificialFPVA(9, 7) {
		res, err := search.Solve(c.Spec, search.Options{TimeLimit: 20 * time.Second})
		if err != nil {
			var nosol *spec.ErrNoSolution
			var tout *search.ErrTimeout
			if !errors.As(err, &nosol) && !errors.As(err, &tout) {
				t.Errorf("%s: %v", c.Spec.Name, err)
			}
			continue
		}
		if res.Switch.Kind != "fpva" {
			t.Errorf("%s solved on a %q switch", c.Spec.Name, res.Switch.Kind)
		}
		if err := contam.Verify(res); err != nil {
			t.Errorf("%s: plan fails verification: %v", c.Spec.Name, err)
		}
	}
}
