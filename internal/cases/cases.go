// Package cases provides the synthesis inputs of the paper's evaluation:
// the four real applications (ChIP, nucleic-acid processor, mRNA isolation,
// kinase activity) and the generator for the 90 artificial flow-scheduling
// cases of Section 4.2.
//
// The paper takes its switch inputs from the Cloud Columba case library,
// which is not redistributable; the specs here are reconstructed from the
// thesis text, Table 4.1/4.3 and Figures 4.1/4.2: module counts, switch
// sizes, conflict structure and the qualitative outcomes (which binding
// policies admit solutions) all match the published tables.
//
// Two reconstruction choices matter for reproducing the "no solution" rows:
//
//   - Fixed bindings of the conflict-heavy cases pin conflicting flows onto
//     crossing axes (every shortest path between the pinned pins runs
//     through the grid centre), which provably forbids node-disjoint routes.
//   - Clockwise module orders of those cases interleave the endpoints of
//     conflicting flows around the switch; since all pins lie on the outer
//     face of the planar switch graph, interleaved chords must share a
//     vertex, so no clockwise assignment can separate them.
package cases

import (
	"fmt"
	"math/rand"

	"switchsynth/internal/spec"
)

// Case is one benchmark input with its citation metadata.
type Case struct {
	Spec *spec.Spec
	// Ref cites the application's source, as in the paper's tables.
	Ref string
	// ID is the row id used in the paper's tables (1-based), 0 for extras.
	ID int
}

// WithBinding returns a copy of the case's spec with the given policy.
func (c Case) WithBinding(b spec.BindingPolicy) *spec.Spec {
	cp := *c.Spec
	cp.Binding = b
	return &cp
}

// ChIPSw1 is the first ChIP switch (Table 4.1 id 1, Table 4.3 id 1,
// Figure 4.1): 9 connected modules on a 12-pin switch. Flows from inlet i10
// conflict with the flows from inlet i11 (different DNA samples).
func ChIPSw1() Case {
	return Case{
		ID:  1,
		Ref: "ChIP [Wu et al., Lab Chip 2009]",
		Spec: &spec.Spec{
			Name:       "chip-sw1",
			SwitchPins: 12,
			// Clockwise order groups each inlet with its mixers so the
			// clockwise policy can separate the two sample streams.
			Modules: []string{"i10", "M1", "i12", "M5", "M6", "i11", "M2", "M3", "M4"},
			Flows: []spec.Flow{
				{From: "i10", To: "M1"},
				{From: "i11", To: "M2"},
				{From: "i11", To: "M3"},
				{From: "i11", To: "M4"},
				{From: "i12", To: "M5"},
				{From: "i12", To: "M6"},
			},
			Conflicts: [][2]int{{0, 1}, {0, 2}, {0, 3}},
			Binding:   spec.Unfixed,
			// Fixed pins keep i10/M1 at the top and the i11 group at the
			// bottom, so the fixed policy also has a (longer) solution.
			FixedPins: map[string]int{
				"i10": 0, "M1": 2, // T1, T3 (detour: fixed L exceeds unfixed)
				"i12": 3, "M5": 4, "M6": 5, // R1, R2, R3
				"i11": 7, "M2": 6, "M3": 8, "M4": 9, // B2, B3, B1, L3
			},
		},
	}
}

// ChIPSw2 is the second ChIP switch (Table 4.3 id 2): 10 modules, 12-pin,
// no conflicting flows.
func ChIPSw2() Case {
	return Case{
		ID:  2,
		Ref: "ChIP [Wu et al., Lab Chip 2009]",
		Spec: &spec.Spec{
			Name:       "chip-sw2",
			SwitchPins: 12,
			Modules:    []string{"i1", "M1", "M2", "M3", "M4", "i2", "M5", "M6", "M7", "M8"},
			Flows: []spec.Flow{
				{From: "i1", To: "M1"},
				{From: "i1", To: "M2"},
				{From: "i1", To: "M3"},
				{From: "i1", To: "M4"},
				{From: "i2", To: "M5"},
				{From: "i2", To: "M6"},
				{From: "i2", To: "M7"},
				{From: "i2", To: "M8"},
			},
			Binding: spec.Unfixed,
			// A deliberately spread-out fixed binding: the paper observes
			// the fixed policy yields the largest channel length.
			FixedPins: map[string]int{
				"i1": 0, "M1": 2, "M2": 5, "M3": 8, "M4": 11,
				"i2": 6, "M5": 1, "M6": 4, "M7": 7, "M8": 10,
			},
		},
	}
}

// NucleicAcid is the nucleic-acid processor switch (Table 4.1 id 2,
// Figure 4.2(a)): 7 modules on an 8-pin switch. Each mixer's product must
// reach its dedicated reaction chamber without touching the others.
func NucleicAcid() Case {
	return Case{
		ID:  2,
		Ref: "nucleic acid processor [Cho et al., Nat. Biotechnol. 2004]",
		Spec: &spec.Spec{
			Name:       "nucleic-acid",
			SwitchPins: 8,
			// The clockwise order interleaves M1→RC1 with M2→RC2: the two
			// chords cross for every clockwise assignment, so the clockwise
			// policy has no solution (as in Table 4.1).
			Modules: []string{"M1", "M2", "RC1", "RC2", "M3", "RC3", "W"},
			Flows: []spec.Flow{
				{From: "M1", To: "RC1"},
				{From: "M2", To: "RC2"},
				{From: "M3", To: "RC3"},
				{From: "M1", To: "W"},
			},
			Conflicts: [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}},
			Binding:   spec.Unfixed,
			// The fixed pins put M1→RC1 on the vertical axis and M2→RC2 on
			// the horizontal axis: both must route through the centre, so
			// the fixed policy has no solution either.
			FixedPins: map[string]int{
				"M1": 1, "RC1": 5, // T2 → B1 (through C)
				"M2": 7, "RC2": 3, // L1 → R2 (through C)
				"M3": 0, "RC3": 2, "W": 6,
			},
		},
	}
}

// MRNAIsolation is the mRNA isolation switch (Table 4.1 id 3,
// Figure 4.2(b)): 10 modules on a 12-pin switch; the four reaction-chamber
// products go to dedicated collection outlets and must stay apart.
func MRNAIsolation() Case {
	return Case{
		ID:  3,
		Ref: "mRNA isolation [Marcus et al., Anal. Chem. 2006]",
		Spec: &spec.Spec{
			Name:       "mrna-isolation",
			SwitchPins: 12,
			// Interleaved order RC1, RC2, p_c1, p_c2 ... forces crossing
			// chords under every clockwise assignment.
			Modules: []string{"RC1", "RC2", "p_c1", "p_c2", "RC3", "RC4", "p_c3", "p_c4", "lys", "W"},
			Flows: []spec.Flow{
				{From: "RC1", To: "p_c1"},
				{From: "RC2", To: "p_c2"},
				{From: "RC3", To: "p_c3"},
				{From: "RC4", To: "p_c4"},
				{From: "lys", To: "W"},
			},
			Conflicts: [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
			Binding:   spec.Unfixed,
			// Crossing axes again: RC1→p_c1 vertical, RC2→p_c2 horizontal.
			FixedPins: map[string]int{
				"RC1": 1, "p_c1": 7, // T2 → B2 (centre column)
				"RC2": 10, "p_c2": 4, // L2 → R2 (centre row)
				"RC3": 0, "p_c3": 2,
				"RC4": 6, "p_c4": 8,
				"lys": 3, "W": 5,
			},
		},
	}
}

// KinaseSw1 is the first kinase-activity switch (Table 4.3 id 3): 4 modules
// on a 12-pin switch, no conflicts.
func KinaseSw1() Case {
	return Case{
		ID:  3,
		Ref: "kinase activity [Fang et al., Cancer Res. 2010]",
		Spec: &spec.Spec{
			Name:       "kinase-sw1",
			SwitchPins: 12,
			Modules:    []string{"in1", "o1", "in2", "o2"},
			Flows: []spec.Flow{
				{From: "in1", To: "o1"},
				{From: "in2", To: "o2"},
			},
			Binding: spec.Unfixed,
			FixedPins: map[string]int{
				"in1": 0, "o1": 5, "in2": 6, "o2": 11,
			},
		},
	}
}

// KinaseSw2 is the second kinase-activity switch (Table 4.3 id 4): 6
// modules on a 12-pin switch, no conflicts.
func KinaseSw2() Case {
	return Case{
		ID:  4,
		Ref: "kinase activity [Fang et al., Cancer Res. 2010]",
		Spec: &spec.Spec{
			Name:       "kinase-sw2",
			SwitchPins: 12,
			Modules:    []string{"i1", "o1", "o2", "i2", "o3", "o4"},
			Flows: []spec.Flow{
				{From: "i1", To: "o1"},
				{From: "i1", To: "o2"},
				{From: "i2", To: "o3"},
				{From: "i2", To: "o4"},
			},
			Binding: spec.Unfixed,
			FixedPins: map[string]int{
				"i1": 0, "o1": 4, "o2": 8, "i2": 2, "o3": 6, "o4": 10,
			},
		},
	}
}

// SchedulingExample is the Table 4.2 / Figure 4.4 example: a 12-pin switch
// with 12 connected modules bound clockwise, inputs 1, 2, 3 fanning out to
// nine outputs, scheduled into three flow sets.
func SchedulingExample() Case {
	mods := make([]string, 12)
	for i := range mods {
		mods[i] = fmt.Sprintf("%d", i+1)
	}
	return Case{
		Ref: "Table 4.2 example",
		Spec: &spec.Spec{
			Name:       "scheduling-example",
			SwitchPins: 12,
			Modules:    mods,
			Flows: []spec.Flow{
				{From: "1", To: "7"}, {From: "1", To: "10"}, {From: "1", To: "11"},
				{From: "2", To: "5"}, {From: "2", To: "8"}, {From: "2", To: "9"},
				{From: "3", To: "4"}, {From: "3", To: "6"}, {From: "3", To: "12"},
			},
			Binding: spec.Clockwise,
		},
	}
}

// MRNAStress16 is the Section 5 stress case: the 13-module mRNA switch on a
// 16-pin switch, for which the paper's Gurobi run exceeded five hours.
func MRNAStress16() Case {
	return Case{
		Ref: "mRNA isolation, 13-module 16-pin stress case (Section 5)",
		Spec: &spec.Spec{
			Name:       "mrna-stress-16",
			SwitchPins: 16,
			Modules: []string{
				"RC1", "RC2", "p_c1", "p_c2", "RC3", "RC4", "p_c3", "p_c4",
				"lys", "W", "in2", "x1", "x2",
			},
			Flows: []spec.Flow{
				{From: "RC1", To: "p_c1"},
				{From: "RC2", To: "p_c2"},
				{From: "RC3", To: "p_c3"},
				{From: "RC4", To: "p_c4"},
				{From: "lys", To: "W"},
				{From: "in2", To: "x1"},
				{From: "in2", To: "x2"},
			},
			Conflicts: [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
			Binding:   spec.Unfixed,
		},
	}
}

// Table41 returns the three contamination-avoidance cases of Table 4.1.
func Table41() []Case {
	return []Case{ChIPSw1(), NucleicAcid(), MRNAIsolation()}
}

// Table43 returns the four binding-policy cases of Table 4.3.
func Table43() []Case {
	return []Case{ChIPSw1(), ChIPSw2(), KinaseSw1(), KinaseSw2()}
}

// Artificial generates the deterministic artificial scheduling campaign of
// Section 4.2: count cases spread over 8- and 12-pin switches with varying
// numbers of flows, inlets, conflicts and binding policies. The same seed
// always yields the same cases.
func Artificial(count int, seed int64) []Case {
	return ArtificialSized(count, seed, []int{8, 12})
}

// ArtificialSized is Artificial with the switch sizes cycled from
// pinSizes instead of the campaign's 8/12 alternation; the resilience
// tests use it to stress 16-pin cases under tiny time limits.
func ArtificialSized(count int, seed int64, pinSizes []int) []Case {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Case, 0, count)
	for i := 0; i < count; i++ {
		pins := pinSizes[i%len(pinSizes)]
		policy := spec.BindingPolicy(i % 3)
		sp := randomSpec(rng, fmt.Sprintf("artificial-%02d", i), pins, policy)
		out = append(out, Case{Spec: sp, Ref: "artificial (Section 4.2)", ID: i + 1})
	}
	return out
}

// randomSpec builds a random valid spec. Flows fan out from 1–3 inlets to
// distinct outlets; some cases add conflicts between different inlets.
func randomSpec(rng *rand.Rand, name string, pins int, policy spec.BindingPolicy) *spec.Spec {
	nInlets := 1 + rng.Intn(3)
	maxFlows := pins - nInlets
	nFlows := 2 + rng.Intn(5)
	if nFlows > maxFlows {
		nFlows = maxFlows
	}
	if nFlows < nInlets {
		nFlows = nInlets
	}
	mods := make([]string, 0, nInlets+nFlows)
	for k := 0; k < nInlets; k++ {
		mods = append(mods, fmt.Sprintf("in%d", k+1))
	}
	for k := 0; k < nFlows; k++ {
		mods = append(mods, fmt.Sprintf("out%d", k+1))
	}
	// Shuffle the module order (it is the clockwise order input).
	rng.Shuffle(len(mods), func(a, b int) { mods[a], mods[b] = mods[b], mods[a] })

	// The first nInlets flows use each inlet once (so validation's no-unused
	// rule holds); the rest pick inlets at random.
	flows := make([]spec.Flow, nFlows)
	inletOf := make([]int, nFlows)
	for k := 0; k < nFlows; k++ {
		in := k
		if k >= nInlets {
			in = rng.Intn(nInlets)
		}
		inletOf[k] = in
		flows[k] = spec.Flow{From: fmt.Sprintf("in%d", in+1), To: fmt.Sprintf("out%d", k+1)}
	}

	var conflicts [][2]int
	if rng.Intn(2) == 0 {
		for a := 0; a < nFlows; a++ {
			for b := a + 1; b < nFlows; b++ {
				if inletOf[a] != inletOf[b] && rng.Intn(4) == 0 {
					conflicts = append(conflicts, [2]int{a, b})
				}
			}
		}
	}

	sp := &spec.Spec{
		Name:       name,
		SwitchPins: pins,
		Modules:    mods,
		Flows:      flows,
		Conflicts:  conflicts,
		Binding:    policy,
	}
	if policy == spec.Fixed {
		perm := rng.Perm(pins)
		sp.FixedPins = make(map[string]int, len(mods))
		for i, m := range mods {
			sp.FixedPins[m] = perm[i]
		}
	}
	return sp
}

// ArtificialFPVA generates a deterministic campaign of randomized FPVA
// synthesis cases: grid dimensions, flow counts, conflict density and
// binding policy all vary with the generator stream, and the same seed
// always yields the same cases. Grids are kept small enough (2–4
// junctions per side) that exact synthesis stays interactive while the
// port counts (8–16) match the crossbar campaign's range.
func ArtificialFPVA(count int, seed int64) []Case {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Case, 0, count)
	for i := 0; i < count; i++ {
		rows := 2 + rng.Intn(3)
		cols := 2 + rng.Intn(3)
		policy := spec.BindingPolicy(i % 3)
		sp := randomFPVASpec(rng, fmt.Sprintf("fpva-%02d", i), rows, cols, policy)
		out = append(out, Case{Spec: sp, Ref: "artificial FPVA", ID: i + 1})
	}
	return out
}

// randomFPVASpec builds a random valid FPVA spec on a rows×cols grid.
// Flows fan out from 1–3 inlets to distinct outlets; the conflict
// density is itself randomized per case (none, sparse or dense) between
// flows of different inlets.
func randomFPVASpec(rng *rand.Rand, name string, rows, cols int, policy spec.BindingPolicy) *spec.Spec {
	ports := 2 * (rows + cols)
	nInlets := 1 + rng.Intn(3)
	maxFlows := ports - nInlets
	nFlows := 2 + rng.Intn(5)
	if nFlows > maxFlows {
		nFlows = maxFlows
	}
	if nFlows < nInlets {
		nFlows = nInlets
	}
	mods := make([]string, 0, nInlets+nFlows)
	for k := 0; k < nInlets; k++ {
		mods = append(mods, fmt.Sprintf("in%d", k+1))
	}
	for k := 0; k < nFlows; k++ {
		mods = append(mods, fmt.Sprintf("out%d", k+1))
	}
	rng.Shuffle(len(mods), func(a, b int) { mods[a], mods[b] = mods[b], mods[a] })

	flows := make([]spec.Flow, nFlows)
	inletOf := make([]int, nFlows)
	for k := 0; k < nFlows; k++ {
		in := k
		if k >= nInlets {
			in = rng.Intn(nInlets)
		}
		inletOf[k] = in
		flows[k] = spec.Flow{From: fmt.Sprintf("in%d", in+1), To: fmt.Sprintf("out%d", k+1)}
	}

	// Conflict density: a third of the cases have none, a third are
	// sparse (1 in 4 cross-inlet pairs), a third dense (1 in 2).
	var conflicts [][2]int
	if odds := []int{0, 4, 2}[rng.Intn(3)]; odds > 0 {
		for a := 0; a < nFlows; a++ {
			for b := a + 1; b < nFlows; b++ {
				if inletOf[a] != inletOf[b] && rng.Intn(odds) == 0 {
					conflicts = append(conflicts, [2]int{a, b})
				}
			}
		}
	}

	sp := &spec.Spec{
		Name:      name,
		Topology:  spec.TopologyFPVA,
		GridRows:  rows,
		GridCols:  cols,
		Modules:   mods,
		Flows:     flows,
		Conflicts: conflicts,
		Binding:   policy,
	}
	if policy == spec.Fixed {
		perm := rng.Perm(ports)
		sp.FixedPins = make(map[string]int, len(mods))
		for i, m := range mods {
			sp.FixedPins[m] = perm[i]
		}
	}
	return sp
}
