package admission

import (
	"testing"
	"time"
)

func TestBreakersOpenAtThresholdAndProbe(t *testing.T) {
	g := NewBreakers(2, 30*time.Millisecond)
	if ok, _ := g.Allow("k"); !ok {
		t.Fatal("fresh key not allowed")
	}
	g.RecordFailure("k")
	if ok, _ := g.Allow("k"); !ok {
		t.Fatal("key blocked below threshold")
	}
	g.RecordFailure("k")
	ok, retry := g.Allow("k")
	if ok {
		t.Fatal("key allowed at threshold")
	}
	if retry <= 0 || retry > 30*time.Millisecond {
		t.Errorf("retryAfter = %v, want within (0, cooldown]", retry)
	}
	if g.OpenCount() != 1 {
		t.Errorf("OpenCount = %d, want 1", g.OpenCount())
	}

	// After the cooldown one half-open probe is admitted; a second
	// concurrent request is still shed.
	time.Sleep(35 * time.Millisecond)
	if ok, _ := g.Allow("k"); !ok {
		t.Fatal("half-open probe not admitted after cooldown")
	}
	if ok, _ := g.Allow("k"); ok {
		t.Fatal("second request admitted during half-open probe")
	}

	// A failed probe re-opens immediately; a successful one closes.
	g.RecordFailure("k")
	if ok, _ := g.Allow("k"); ok {
		t.Fatal("key allowed right after failed probe")
	}
	g.RecordSuccess("k")
	if ok, _ := g.Allow("k"); !ok {
		t.Fatal("key blocked after success")
	}
	if g.OpenCount() != 0 {
		t.Errorf("OpenCount = %d after recovery, want 0", g.OpenCount())
	}
}

func TestBreakersNilIsDisabled(t *testing.T) {
	var g *Breakers
	g.RecordFailure("k")
	g.RecordFailure("k")
	g.RecordSuccess("k")
	if ok, _ := g.Allow("k"); !ok {
		t.Fatal("nil Breakers must admit everything")
	}
	if g.OpenCount() != 0 {
		t.Fatal("nil Breakers must report zero open")
	}
}
