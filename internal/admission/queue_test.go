package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func submit(t *testing.T, q *Queue, tenant string, class Class, payload any) {
	t.Helper()
	if err := q.Submit(context.Background(), Caller{Tenant: tenant, Class: class}, payload); err != nil {
		t.Fatalf("Submit(%s/%s): %v", tenant, class, err)
	}
}

func drain(t *testing.T, q *Queue, n int) []Item {
	t.Helper()
	out := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		it, ok := q.Next()
		if !ok {
			t.Fatalf("Next returned ok=false after %d of %d items", i, n)
		}
		out = append(out, it)
	}
	return out
}

func TestQueueFIFOWithinTenant(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 8})
	defer q.Close()
	for i := 0; i < 4; i++ {
		submit(t, q, "a", Interactive, i)
	}
	for i, it := range drain(t, q, 4) {
		if it.Payload.(int) != i {
			t.Errorf("pop %d = payload %v, want %d (FIFO)", i, it.Payload, i)
		}
	}
}

func TestQueueTenantRoundRobinWithinClass(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 32})
	defer q.Close()
	// Tenant a floods; tenant b submits two. b must not wait behind
	// a's whole backlog.
	for i := 0; i < 10; i++ {
		submit(t, q, "a", Interactive, fmt.Sprintf("a%d", i))
	}
	submit(t, q, "b", Interactive, "b0")
	submit(t, q, "b", Interactive, "b1")

	items := drain(t, q, 12)
	posB1 := -1
	for i, it := range items {
		if it.Payload == "b1" {
			posB1 = i
		}
	}
	// Round robin alternates a,b while both are backlogged, so b's
	// second item surfaces within the first four pops.
	if posB1 < 0 || posB1 > 3 {
		t.Errorf("tenant b's second item popped at position %d, want <= 3 (round robin)", posB1)
	}
}

func TestQueueDRRClassWeights(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 64})
	defer q.Close()
	// Saturate all three classes, then count the class mix of one full
	// DRR rotation: 16 interactive, 4 batch, 1 background per 21 pops.
	// (Submit batch/background first: depth watermarks check total
	// backlog, so fill the low classes while the queue is still short.)
	for i := 0; i < 21; i++ {
		submit(t, q, "bg", Background, i)
	}
	for i := 0; i < 21; i++ {
		submit(t, q, "bt", Batch, i)
	}
	for i := 0; i < 21; i++ {
		submit(t, q, "it", Interactive, i)
	}

	var got [NumClasses]int
	for _, it := range drain(t, q, 21) {
		got[it.Class]++
	}
	want := [NumClasses]int{Interactive: 16, Batch: 4, Background: 1}
	if got != want {
		t.Errorf("class mix over one rotation = %v, want %v", got, want)
	}
}

func TestQueueDepthWatermarksShedBatchAndBackgroundNotInteractive(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 16})
	defer q.Close()
	// Fill to 8/16 (the background watermark, below batch's 12/16).
	for i := 0; i < 8; i++ {
		submit(t, q, "a", Interactive, i)
	}
	err := q.Submit(context.Background(), Caller{Tenant: "b", Class: Background}, "x")
	var shed *ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("background submit at 50%% depth: err = %v, want *ErrShed", err)
	}
	if shed.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s (clamped)", shed.RetryAfter)
	}
	// Batch still fits below its 75% watermark...
	for q.Stats().Depth < 11 {
		submit(t, q, "b", Batch, "y")
	}
	// ...and sheds at 12/16.
	submit(t, q, "b", Batch, "y")
	if err := q.Submit(context.Background(), Caller{Tenant: "b", Class: Batch}, "z"); !errors.Is(err, &ErrShed{}) {
		t.Fatalf("batch submit at 75%% depth: err = %v, want *ErrShed", err)
	}
	// Interactive never depth-sheds: it fills right up to capacity.
	for q.Stats().Depth < 16 {
		submit(t, q, "a", Interactive, "w")
	}
	st := q.Stats()
	if st.Shed[Interactive] != 0 {
		t.Errorf("interactive sheds = %d, want 0", st.Shed[Interactive])
	}
	if st.Shed[Batch] == 0 || st.Shed[Background] == 0 {
		t.Errorf("batch/background sheds = %d/%d, want both > 0", st.Shed[Batch], st.Shed[Background])
	}
}

func TestQueueSubmitBlocksAtCapacityAndRespectsContext(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 2})
	defer q.Close()
	submit(t, q, "a", Interactive, 1)
	submit(t, q, "a", Interactive, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Submit(ctx, Caller{}, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit to full queue: err = %v, want DeadlineExceeded", err)
	}

	// A consumer frees a slot; the blocked producer proceeds.
	done := make(chan error, 1)
	go func() {
		done <- q.Submit(context.Background(), Caller{}, 4)
	}()
	time.Sleep(10 * time.Millisecond)
	if _, ok := q.Next(); !ok {
		t.Fatal("Next returned ok=false on a non-empty open queue")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unblocked submit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after a slot freed")
	}
}

func TestQueueCloseUnblocksProducersAndDrainsBacklog(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 2})
	submit(t, q, "a", Interactive, 1)
	submit(t, q, "a", Interactive, 2)

	blocked := make(chan error, 1)
	go func() {
		blocked <- q.Submit(context.Background(), Caller{}, 3)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()

	select {
	case err := <-blocked:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked producer after Close: err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after Close")
	}
	// The backlog drains, then Next reports closed.
	if got := len(drain(t, q, 2)); got != 2 {
		t.Fatalf("drained %d items, want 2", got)
	}
	if _, ok := q.Next(); ok {
		t.Fatal("Next returned an item from a closed empty queue")
	}
	if err := q.Submit(context.Background(), Caller{}, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrClosed", err)
	}
}

func TestQueueMeasuredRetryAfterTracksDequeueRate(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 64, MaxWait: -1})
	defer q.Close()
	// A consumer popping every ~5ms from a standing backlog gives a
	// measurable gap EWMA.
	for i := 0; i < 20; i++ {
		submit(t, q, "a", Interactive, i)
	}
	for i := 0; i < 10; i++ {
		if _, ok := q.Next(); !ok {
			t.Fatal("unexpected close")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := q.Stats()
	if st.DequeueGapSeconds <= 0 {
		t.Fatal("no dequeue-gap sample after 10 backlogged pops")
	}
	hint := q.RetryAfterHint()
	if hint < time.Second || hint > 30*time.Second {
		t.Errorf("RetryAfterHint = %v, want within [1s, 30s]", hint)
	}
	// The unclamped estimate is (backlog+1)×gap ≈ 11 × 5ms ≈ 55ms; the
	// clamp floors it at 1s.
	if hint != time.Second {
		t.Errorf("RetryAfterHint = %v, want exactly the 1s floor for a fast queue", hint)
	}
}

func TestQueueWaitWatermarkShedsWhenDrainTooSlow(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 64, MaxWait: 50 * time.Millisecond})
	defer q.Close()
	for i := 0; i < 10; i++ {
		submit(t, q, "a", Interactive, i)
	}
	// Slow consumer: ~20ms per item with a standing backlog → predicted
	// wait for a new item ≈ 10 × 20ms = 200ms > the 50ms watermark.
	for i := 0; i < 5; i++ {
		if _, ok := q.Next(); !ok {
			t.Fatal("unexpected close")
		}
		time.Sleep(20 * time.Millisecond)
	}
	err := q.Submit(context.Background(), Caller{Tenant: "b", Class: Interactive}, "late")
	if !errors.Is(err, &ErrShed{}) {
		t.Fatalf("submit over wait watermark: err = %v, want *ErrShed", err)
	}
}

// TestQueueWatermarksCountPendingSubmitters: producers blocked on the
// capacity semaphore are backlog the shed math must see — the depth
// watermarks and the Retry-After prediction count queued items plus
// pending submissions, so a wall of stalled producers cannot make the
// queue admit work it has no room to absorb.
func TestQueueWatermarksCountPendingSubmitters(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 16})
	defer q.Close()
	q.mu.Lock()
	q.total = 4 // alone: below both the 8/16 and 12/16 depth watermarks
	shedBatch, _ := q.shouldShedLocked(Batch)
	shedBG, _ := q.shouldShedLocked(Background)
	q.mu.Unlock()
	if shedBatch || shedBG {
		t.Fatalf("shed at depth 4/16 with nothing pending: batch=%v background=%v, want neither", shedBatch, shedBG)
	}
	q.mu.Lock()
	q.pending = 8 // effective backlog 12: both depth watermarks trip
	shedBatch, _ = q.shouldShedLocked(Batch)
	shedBG, _ = q.shouldShedLocked(Background)
	q.gapEWMA = 0.2 // 200ms per dequeue: (4+8+1) slots predict ~2.6s
	hint := q.retryAfterLocked()
	q.mu.Unlock()
	if !shedBatch || !shedBG {
		t.Errorf("shed with 8 pending producers behind depth 4: batch=%v background=%v, want both", shedBatch, shedBG)
	}
	if hint < 2*time.Second || hint > 3*time.Second {
		t.Errorf("retryAfterLocked = %v, want ~2.6s ((4+8+1) × 200ms), not the 1s floor of the queued items alone", hint)
	}
	q.mu.Lock()
	q.total, q.pending, q.gapEWMA = 0, 0, 0
	q.mu.Unlock()
}

// TestQueuePendingGaugeTracksBlockedProducers: the pending gauge rises
// while producers sit on the full semaphore, falls when one lands after
// a pop, and drains to zero when the rest give up.
func TestQueuePendingGaugeTracksBlockedProducers(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 2})
	defer q.Close()
	submit(t, q, "a", Interactive, 1)
	submit(t, q, "a", Interactive, 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = q.Submit(ctx, Caller{Tenant: "a", Class: Interactive}, "blocked")
		}()
	}
	waitFor := func(desc string, cond func(Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond(q.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("%s: stats = %+v", desc, q.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("3 producers pending", func(s Stats) bool { return s.Pending == 3 })

	// One pop frees a slot: a blocked producer lands.
	if _, ok := q.Next(); !ok {
		t.Fatal("unexpected close")
	}
	waitFor("one producer landed", func(s Stats) bool { return s.Pending == 2 && s.Depth == 2 })

	// The rest give up; pending drains without items appearing.
	cancel()
	wg.Wait()
	if s := q.Stats(); s.Pending != 0 || s.Depth != 2 {
		t.Fatalf("after cancel: stats = %+v, want pending 0 depth 2", s)
	}
}

// TestQueueFairnessTwoTenantSaturation is the fairness gate: tenant
// "flood" saturates the queue with background batches while tenant
// "user" submits interactive singles. The interactive tenant must never
// be shed (total stays below the global watermark) and its p99 queue
// wait must stay bounded — within a small multiple of the per-item
// service time, not the flood's backlog.
func TestQueueFairnessTwoTenantSaturation(t *testing.T) {
	const serviceTime = 2 * time.Millisecond
	q := NewQueue(QueueConfig{Capacity: 128, MaxWait: -1})
	defer q.Close()

	// One consumer simulating a worker with a fixed service time.
	var mu sync.Mutex
	waits := map[string][]time.Duration{}
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for {
			it, ok := q.Next()
			if !ok {
				return
			}
			d := time.Since(it.enqueued)
			mu.Lock()
			waits[it.Tenant] = append(waits[it.Tenant], d)
			mu.Unlock()
			time.Sleep(serviceTime)
		}
	}()

	// The flood: keep ~40 background items queued at all times.
	floodCtx, stopFlood := context.WithCancel(context.Background())
	var floodWG sync.WaitGroup
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		for floodCtx.Err() == nil {
			err := q.Submit(floodCtx, Caller{Tenant: "flood", Class: Background}, "bulk")
			if err != nil {
				// Shed by the background watermark: back off briefly.
				time.Sleep(serviceTime)
			}
		}
	}()

	// The interactive tenant: 30 singles, one at a time.
	const singles = 30
	for i := 0; i < singles; i++ {
		if err := q.Submit(context.Background(), Caller{Tenant: "user", Class: Interactive}, i); err != nil {
			t.Fatalf("interactive single %d shed: %v", i, err)
		}
		time.Sleep(serviceTime)
	}

	// Let the consumer catch up on the interactive items, then stop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(waits["user"])
		mu.Unlock()
		if n == singles || time.Now().After(deadline) {
			break
		}
		time.Sleep(serviceTime)
	}
	stopFlood()
	floodWG.Wait()
	q.Close()
	<-consumerDone

	userWaits := waits["user"]
	if len(userWaits) != singles {
		t.Fatalf("consumer saw %d interactive items, want %d", len(userWaits), singles)
	}
	var p99 time.Duration
	for _, d := range userWaits {
		if d > p99 {
			p99 = d // 30 samples: the max is the p99
		}
	}
	// With DRR weight 16:1 the interactive tenant waits behind at most a
	// handful of background items, never the flood's whole backlog
	// (~40 items ≈ 80ms+). Allow generous CI scheduling slack.
	bound := 25 * serviceTime
	if p99 > bound {
		t.Errorf("interactive p99 wait = %v under background flood, want <= %v", p99, bound)
	}
	if q.Stats().Shed[Interactive] != 0 {
		t.Errorf("interactive sheds = %d, want 0", q.Stats().Shed[Interactive])
	}
}

func TestQueueConcurrentSubmitNextRaceClean(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 8})
	var wg sync.WaitGroup
	const producers, perProducer = 8, 50
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", p%3)
			class := Class(p % NumClasses)
			for i := 0; i < perProducer; i++ {
				_ = q.Submit(context.Background(), Caller{Tenant: tenant, Class: class}, i)
			}
		}(p)
	}
	var consumed int
	var cwg sync.WaitGroup
	var cmu sync.Mutex
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if _, ok := q.Next(); !ok {
					return
				}
				cmu.Lock()
				consumed++
				cmu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	st := q.Stats()
	var submitted, shed int64
	for i := 0; i < NumClasses; i++ {
		submitted += st.Submitted[i]
		shed += st.Shed[i]
	}
	if int64(consumed)+shed != submitted {
		t.Errorf("consumed %d + shed %d != submitted %d", consumed, shed, submitted)
	}
	if st.Depth != 0 {
		t.Errorf("depth = %d after full drain, want 0", st.Depth)
	}
}

func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", Interactive, true},
		{"interactive", Interactive, true},
		{"batch", Batch, true},
		{"background", Background, true},
		{"urgent", 0, false},
		{"Interactive", 0, false},
	} {
		got, ok := ParseClass(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseClass(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestCallerContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if c := CallerFrom(ctx); c.Tenant != DefaultTenant || c.Class != Interactive {
		t.Errorf("CallerFrom(empty ctx) = %+v, want default/interactive", c)
	}
	ctx = WithCaller(ctx, Caller{Tenant: "acme", Class: Batch})
	if c := CallerFrom(ctx); c.Tenant != "acme" || c.Class != Batch {
		t.Errorf("CallerFrom = %+v, want acme/batch", c)
	}
	// The zero caller normalizes on the way in.
	ctx = WithCaller(context.Background(), Caller{})
	if c := CallerFrom(ctx); c.Tenant != DefaultTenant || c.Class != Interactive {
		t.Errorf("CallerFrom(zero caller) = %+v, want default/interactive", c)
	}
}
