// Typed admission errors. Each carries a RetryAfter hint derived from
// measured state (breaker cooldown remainder, observed dequeue rate) so
// the HTTP layer never has to fall back to a made-up constant.
package admission

import (
	"errors"
	"fmt"
	"time"
)

// ErrClosed is returned by Queue.Submit after Close. The service layer
// translates it into its own typed engine-closed error.
var ErrClosed = errors.New("admission: queue is closed")

// ErrShed reports that a request was rejected by a load watermark
// before entering the queue: the class's depth watermark tripped, or
// the estimated queue wait exceeded the configured bound. RetryAfter is
// the measured backlog-drain estimate.
type ErrShed struct {
	Tenant     string
	Class      Class
	RetryAfter time.Duration
}

// Error implements error.
func (e *ErrShed) Error() string {
	return fmt.Sprintf("admission: %s queue over watermark for tenant %q, retry in %s",
		e.Class, e.Tenant, e.RetryAfter.Round(time.Millisecond))
}

// Is makes every *ErrShed match every other under errors.Is.
func (e *ErrShed) Is(target error) bool {
	var other *ErrShed
	return errors.As(target, &other)
}

// ErrDraining reports that the engine is gracefully draining: in-flight
// and queued work keeps completing, but new solves are rejected so the
// load balancer's next attempt lands on a healthy node. RetryAfter is
// the measured backlog-drain estimate.
type ErrDraining struct {
	RetryAfter time.Duration
}

// Error implements error.
func (e *ErrDraining) Error() string {
	return fmt.Sprintf("admission: engine is draining, retry in %s", e.RetryAfter.Round(time.Millisecond))
}

// Is makes every *ErrDraining match every other under errors.Is.
func (e *ErrDraining) Is(target error) bool {
	var other *ErrDraining
	return errors.As(target, &other)
}

// ErrOverloaded is returned (without queueing a solve) while a key's
// circuit breaker is open. RetryAfter tells the caller when the next
// half-open probe will be admitted.
type ErrOverloaded struct {
	Key        string
	RetryAfter time.Duration
}

// Error implements error.
func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("admission: circuit breaker open for this spec, retry in %s", e.RetryAfter.Round(time.Millisecond))
}

// Is makes every *ErrOverloaded match every other under errors.Is.
func (e *ErrOverloaded) Is(target error) bool {
	var other *ErrOverloaded
	return errors.As(target, &other)
}
