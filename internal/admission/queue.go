// The fair admission queue: a bounded, multi-tenant, priority-classed
// queue dispensing worker slots by deficit round robin.
//
// Scheduling is two-level. Across classes, a deficit-round-robin (DRR)
// cursor walks interactive → batch → background; each backlogged class
// earns its weight in credits per full rotation (16 : 4 : 1), so under
// saturation interactive work receives 16/21 of the dequeue bandwidth
// while batch and background still make guaranteed progress (no
// starvation, unlike strict priority). Within one class, tenants form a
// round-robin ring with per-tenant FIFO order, so one tenant's 10k-item
// burst costs other tenants of the same class at most one item of extra
// wait per dequeue.
//
// Load shedding happens at Submit, before a slot is consumed, from two
// watermarks:
//
//   - depth: batch submissions are shed when the total backlog reaches
//     75% of capacity, background at 50%. Interactive never sheds on
//     depth — it blocks at the hard capacity bound, preserving the
//     pre-admission engine semantics for default callers.
//   - wait: when the measured dequeue rate predicts a queue wait beyond
//     MaxWait, every class sheds — this is the global watermark.
//
// Both produce *ErrShed carrying a measured Retry-After: the queue
// EWMA-tracks the gap between consecutive dequeues while backlogged, so
// the hint is (backlog+1) × observed-gap, clamped to [1s, 30s]. The
// backlog both watermarks and the hint see counts queued items AND
// submissions blocked on the capacity semaphore — work the queue has
// already committed to absorb, even though it holds no slot yet.
package admission

import (
	"context"
	"sync"
	"time"
)

// classWeights are the DRR credits each backlogged class earns per full
// cursor rotation.
var classWeights = [NumClasses]int{
	Interactive: 16,
	Batch:       4,
	Background:  1,
}

// Depth-watermark fractions of capacity at which a class sheds instead
// of queueing. Interactive has no depth watermark (it blocks at the
// hard capacity bound instead).
const (
	batchShedFraction      = 0.75
	backgroundShedFraction = 0.50
)

// Retry-After clamp bounds (satellite: the hint is measured, but stays
// inside [1s, 30s] so clients neither hammer nor stall).
const (
	minRetryAfter = 1 * time.Second
	maxRetryAfter = 30 * time.Second
)

// DefaultMaxWait is the wait watermark applied when QueueConfig.MaxWait
// is zero.
const DefaultMaxWait = 30 * time.Second

// ewmaAlpha is the smoothing factor for the dequeue-gap and class-wait
// averages (new sample weight 0.2).
const ewmaAlpha = 0.2

// QueueConfig sizes a Queue.
type QueueConfig struct {
	// Capacity is the hard bound on queued items; Submit blocks (context
	// aware) when the queue is full and no watermark applies. Default 16.
	Capacity int
	// MaxWait is the wait watermark: once the measured dequeue rate
	// predicts a queue wait beyond it, submissions of every class shed
	// with *ErrShed. Zero means DefaultMaxWait; negative disables the
	// wait watermark.
	MaxWait time.Duration
}

func (c QueueConfig) capacity() int {
	if c.Capacity > 0 {
		return c.Capacity
	}
	return 16
}

func (c QueueConfig) maxWait() time.Duration {
	switch {
	case c.MaxWait > 0:
		return c.MaxWait
	case c.MaxWait < 0:
		return 0
	default:
		return DefaultMaxWait
	}
}

// Item is one queued unit of work.
type Item struct {
	Tenant  string
	Class   Class
	Payload any

	enqueued time.Time
}

// tenantQueue is one tenant's FIFO within a class: a head-indexed slice
// compacted once the dead prefix dominates.
type tenantQueue struct {
	tenant string
	items  []Item
	head   int
}

func (t *tenantQueue) push(it Item) { t.items = append(t.items, it) }

func (t *tenantQueue) pop() Item {
	it := t.items[t.head]
	t.items[t.head] = Item{} // release payload for GC
	t.head++
	if t.head == len(t.items) {
		t.items = t.items[:0]
		t.head = 0
	} else if t.head >= 32 && t.head*2 >= len(t.items) {
		n := copy(t.items, t.items[t.head:])
		t.items = t.items[:n]
		t.head = 0
	}
	return it
}

func (t *tenantQueue) empty() bool { return t.head == len(t.items) }

// classQueue is one priority class: a round-robin ring of tenant FIFOs.
type classQueue struct {
	byTenant map[string]*tenantQueue
	ring     []*tenantQueue
	cursor   int
	depth    int
}

func newClassQueue() *classQueue {
	return &classQueue{byTenant: make(map[string]*tenantQueue)}
}

func (c *classQueue) push(it Item) {
	tq := c.byTenant[it.Tenant]
	if tq == nil {
		tq = &tenantQueue{tenant: it.Tenant}
		c.byTenant[it.Tenant] = tq
		c.ring = append(c.ring, tq)
	}
	tq.push(it)
	c.depth++
}

// pop removes the next item in tenant round-robin order. The ring holds
// only tenants with queued items (empty tenants are unlinked on pop),
// so the tenant at the cursor always has one.
func (c *classQueue) pop() Item {
	if c.cursor >= len(c.ring) {
		c.cursor = 0
	}
	tq := c.ring[c.cursor]
	it := tq.pop()
	c.depth--
	if tq.empty() {
		delete(c.byTenant, tq.tenant)
		c.ring = append(c.ring[:c.cursor], c.ring[c.cursor+1:]...)
		// The cursor now points at the next tenant already.
	} else {
		c.cursor++
	}
	if c.cursor >= len(c.ring) {
		c.cursor = 0
	}
	return it
}

// Queue is the bounded fair admission queue. Create with NewQueue,
// submit with Submit, consume with Next from worker goroutines, retire
// with Close. All methods are safe for concurrent use.
type Queue struct {
	cfg QueueConfig

	// space is a counting semaphore with one token per queued item:
	// producers acquire before pushing (blocking, context-aware, when
	// the queue is at capacity), consumers release after popping.
	space chan struct{}
	done  chan struct{} // closed by Close; unblocks producers

	mu     sync.Mutex
	cond   *sync.Cond // signals consumers waiting in Next
	closed bool

	classes [NumClasses]*classQueue
	credit  [NumClasses]int
	cursor  int // DRR class cursor
	total   int
	// pending counts submissions that passed the shed check but have not
	// landed as items yet — producers blocked on (or racing for) the
	// capacity semaphore. The watermarks count them as backlog: work the
	// queue has already committed to absorb must not be invisible to the
	// shed math just because it has no slot yet.
	pending int

	// Dequeue-rate measurement: the EWMA of the gap between consecutive
	// pops, sampled only across intervals where the queue stayed
	// backlogged (an idle queue's gaps measure traffic, not capacity).
	gapEWMA        float64 // seconds
	lastPop        time.Time
	lastBacklogged bool
	// Per-class queue-wait EWMA, sampled at pop time.
	waitEWMA [NumClasses]float64 // seconds

	submitted [NumClasses]int64
	shed      [NumClasses]int64
}

// NewQueue creates an empty queue.
func NewQueue(cfg QueueConfig) *Queue {
	q := &Queue{
		cfg:   cfg,
		space: make(chan struct{}, cfg.capacity()),
		done:  make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	for i := range q.classes {
		q.classes[i] = newClassQueue()
	}
	return q
}

// Capacity returns the hard queue bound.
func (q *Queue) Capacity() int { return cap(q.space) }

// Submit enqueues payload for the caller, blocking — respecting ctx —
// while the queue is at capacity. It returns *ErrShed when a load
// watermark rejects the request before queueing, ErrClosed after Close,
// or ctx.Err() when the caller gives up waiting for a slot.
func (q *Queue) Submit(ctx context.Context, caller Caller, payload any) error {
	caller = caller.normalize()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	q.submitted[caller.Class]++
	if shed, hint := q.shouldShedLocked(caller.Class); shed {
		q.shed[caller.Class]++
		q.mu.Unlock()
		return &ErrShed{Tenant: caller.Tenant, Class: caller.Class, RetryAfter: hint}
	}
	q.pending++
	q.mu.Unlock()

	select {
	case q.space <- struct{}{}:
	case <-q.done:
		q.unpend()
		return ErrClosed
	case <-ctx.Done():
		q.unpend()
		return ctx.Err()
	}

	q.mu.Lock()
	q.pending--
	if q.closed {
		q.mu.Unlock()
		<-q.space // hand the slot back; nobody will consume the item
		return ErrClosed
	}
	q.classes[caller.Class].push(Item{
		Tenant:   caller.Tenant,
		Class:    caller.Class,
		Payload:  payload,
		enqueued: time.Now(),
	})
	q.total++
	q.cond.Signal()
	q.mu.Unlock()
	return nil
}

// unpend drops an in-transit submission that never became an item (the
// producer gave up waiting for a slot, or the queue closed under it).
func (q *Queue) unpend() {
	q.mu.Lock()
	q.pending--
	q.mu.Unlock()
}

// backlogLocked is the effective backlog the watermarks and the
// Retry-After estimate see: queued items plus in-transit submissions
// blocked on the capacity semaphore. Without the pending term, a wall of
// producers stalled on a full queue would be invisible to the shed math
// — depth checks and the wait prediction would admit work the queue
// cannot absorb.
func (q *Queue) backlogLocked() int { return q.total + q.pending }

// shouldShedLocked applies the depth and wait watermarks for class.
func (q *Queue) shouldShedLocked(class Class) (bool, time.Duration) {
	capy := cap(q.space)
	backlog := q.backlogLocked()
	switch class {
	case Batch:
		if float64(backlog) >= batchShedFraction*float64(capy) {
			return true, q.retryAfterLocked()
		}
	case Background:
		if float64(backlog) >= backgroundShedFraction*float64(capy) {
			return true, q.retryAfterLocked()
		}
	}
	// Wait watermark (the global one): only once a dequeue-rate sample
	// exists — before the first measured gap the queue cannot honestly
	// predict anything.
	if maxWait := q.cfg.maxWait(); maxWait > 0 && q.gapEWMA > 0 {
		est := time.Duration(q.gapEWMA * float64(backlog+1) * float64(time.Second))
		if est > maxWait {
			return true, q.retryAfterLocked()
		}
	}
	return false, 0
}

// retryAfterLocked derives the Retry-After hint from the measured
// dequeue rate: the time to drain the current backlog (queued plus
// blocked submissions) and one more slot, clamped to [1s, 30s]. Without
// a rate sample it returns the minimum.
func (q *Queue) retryAfterLocked() time.Duration {
	if q.gapEWMA <= 0 {
		return minRetryAfter
	}
	est := time.Duration(q.gapEWMA * float64(q.backlogLocked()+1) * float64(time.Second))
	if est < minRetryAfter {
		return minRetryAfter
	}
	if est > maxRetryAfter {
		return maxRetryAfter
	}
	return est
}

// RetryAfterHint is the exported measured backoff hint (clamped to
// [1s, 30s]): how long a rejected caller should wait before the backlog
// has likely drained.
func (q *Queue) RetryAfterHint() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.retryAfterLocked()
}

// Next blocks until an item is available and returns it in DRR order.
// After Close it keeps draining the backlog; once the queue is both
// closed and empty it returns ok == false (the worker-pool exit
// signal).
func (q *Queue) Next() (Item, bool) {
	q.mu.Lock()
	for q.total == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.total == 0 {
		q.mu.Unlock()
		return Item{}, false
	}
	it := q.popLocked()
	q.mu.Unlock()
	// Release the item's capacity token. Tokens and items are 1:1, so
	// this never blocks.
	<-q.space
	return it, true
}

// popLocked removes the next item by deficit round robin across the
// classes, and feeds the rate and wait estimators.
func (q *Queue) popLocked() Item {
	// Walking the cursor visits each class at most once per rotation and
	// credits are refilled at the wrap, so with a non-empty queue the
	// walk finds an item within two rotations.
	for steps := 0; ; steps++ {
		c := q.classes[q.cursor]
		if c.depth > 0 && q.credit[q.cursor] > 0 {
			q.credit[q.cursor]--
			it := c.pop()
			q.total--
			q.observePopLocked(it)
			return it
		}
		q.cursor++
		if q.cursor == NumClasses {
			q.cursor = 0
			for i := range q.credit {
				if q.classes[i].depth > 0 {
					q.credit[i] = classWeights[i]
				} else {
					q.credit[i] = 0
				}
			}
		}
		if steps > 2*NumClasses {
			// Defensive: cannot happen while total > 0, but a scheduling
			// bug must not become a spin under the lock.
			for i := range q.classes {
				if q.classes[i].depth > 0 {
					it := q.classes[i].pop()
					q.total--
					q.observePopLocked(it)
					return it
				}
			}
		}
	}
}

// observePopLocked updates the dequeue-gap and class-wait EWMAs for one
// popped item.
func (q *Queue) observePopLocked(it Item) {
	now := time.Now()
	if !q.lastPop.IsZero() && q.lastBacklogged {
		gap := now.Sub(q.lastPop).Seconds()
		if q.gapEWMA == 0 {
			q.gapEWMA = gap
		} else {
			q.gapEWMA = (1-ewmaAlpha)*q.gapEWMA + ewmaAlpha*gap
		}
	}
	q.lastPop = now
	q.lastBacklogged = q.total > 0

	wait := now.Sub(it.enqueued).Seconds()
	if q.waitEWMA[it.Class] == 0 {
		q.waitEWMA[it.Class] = wait
	} else {
		q.waitEWMA[it.Class] = (1-ewmaAlpha)*q.waitEWMA[it.Class] + ewmaAlpha*wait
	}
}

// Close stops accepting submissions and unblocks every producer and
// consumer. Items already queued keep draining through Next; once
// empty, Next reports ok == false. Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.done)
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// Stats is a point-in-time snapshot of the queue, shaped for the
// /metrics endpoint.
type Stats struct {
	// Depth is the total backlog; DepthByClass breaks it down. Pending
	// counts submissions blocked on the capacity semaphore — admitted by
	// the watermarks but not yet holding a slot; the shed math treats
	// Depth+Pending as the effective backlog.
	Depth        int               `json:"depth"`
	Pending      int               `json:"pending"`
	Capacity     int               `json:"capacity"`
	DepthByClass [NumClasses]int   `json:"depthByClass"`
	Submitted    [NumClasses]int64 `json:"submittedByClass"`
	Shed         [NumClasses]int64 `json:"shedByClass"`
	// Tenants is the number of distinct tenants currently backlogged.
	Tenants int `json:"tenants"`
	// DequeueGapSeconds is the measured EWMA gap between dequeues while
	// backlogged (0 until the first sample); WaitSecondsByClass the
	// measured EWMA queue wait per class.
	DequeueGapSeconds  float64             `json:"dequeueGapSeconds"`
	WaitSecondsByClass [NumClasses]float64 `json:"waitSecondsByClass"`
	// RetryAfterSeconds is the current measured backoff hint.
	RetryAfterSeconds float64 `json:"retryAfterSeconds"`
}

// Stats snapshots the queue gauges and estimators.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{
		Depth:             q.total,
		Pending:           q.pending,
		Capacity:          cap(q.space),
		Submitted:         q.submitted,
		Shed:              q.shed,
		DequeueGapSeconds: q.gapEWMA,
		RetryAfterSeconds: q.retryAfterLocked().Seconds(),
	}
	tenants := map[string]struct{}{}
	for i, c := range q.classes {
		s.DepthByClass[i] = c.depth
		s.WaitSecondsByClass[i] = q.waitEWMA[i]
		for t := range c.byTenant {
			tenants[t] = struct{}{}
		}
	}
	s.Tenants = len(tenants)
	return s
}
