// Per-canonical-key circuit breaker (moved here from internal/service:
// the breaker is admission control, deciding before a worker slot is
// burned, so it lives with the queue and the watermarks).
//
// The breaker sheds load for keys that repeatedly burn a worker slot
// without producing a plan (timeouts, solver panics): after Threshold
// consecutive failures the key opens and requests fast-fail with
// *ErrOverloaded (HTTP 429 + Retry-After) instead of queueing. Once the
// cooldown elapses a single half-open probe is admitted; its outcome
// closes the breaker again or re-opens it.
package admission

import (
	"sync"
	"time"
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	state      breakerState
	fails      int       // consecutive breaker-relevant failures
	openedAt   time.Time // when the breaker last opened
	probeStart time.Time // when the current half-open probe was admitted
}

// Breakers tracks one circuit breaker per canonical job key. A nil
// *Breakers is the disabled breaker: every method is a safe no-op that
// admits everything.
type Breakers struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*breaker
}

// NewBreakers creates a breaker group opening after threshold
// consecutive failures and admitting a half-open probe after cooldown.
func NewBreakers(threshold int, cooldown time.Duration) *Breakers {
	return &Breakers{threshold: threshold, cooldown: cooldown, m: make(map[string]*breaker)}
}

// Allow reports whether a request for key may proceed; when it may not,
// retryAfter is the time until the next half-open probe.
func (g *Breakers) Allow(key string) (ok bool, retryAfter time.Duration) {
	if g == nil {
		return true, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.m[key]
	if b == nil {
		return true, 0
	}
	now := time.Now()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if wait := g.cooldown - now.Sub(b.openedAt); wait > 0 {
			return false, wait
		}
		b.state = breakerHalfOpen
		b.probeStart = now
		return true, 0 // the half-open probe
	default: // breakerHalfOpen
		// One probe at a time; if the probe itself got stuck (its job was
		// never recorded — e.g. the engine rejected the enqueue), admit a
		// fresh probe after another cooldown.
		if now.Sub(b.probeStart) >= g.cooldown {
			b.probeStart = now
			return true, 0
		}
		return false, g.cooldown - now.Sub(b.probeStart)
	}
}

// RecordFailure notes a breaker-relevant failure (timeout or panic) for
// key, opening the breaker at the threshold or on a failed probe.
func (g *Breakers) RecordFailure(key string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.m[key]
	if b == nil {
		b = &breaker{}
		g.m[key] = b
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= g.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// RecordSuccess resets key's breaker: any completed solve — including a
// proven ErrNoSolution — shows the key is not burning worker slots.
func (g *Breakers) RecordSuccess(key string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.m, key)
}

// OpenCount reports how many breakers are currently open or half-open
// (a metrics gauge).
func (g *Breakers) OpenCount() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, b := range g.m {
		if b.state != breakerClosed {
			n++
		}
	}
	return n
}
