// Package admission owns everything that happens to a synthesis request
// before it burns a worker slot: per-tenant weighted fair queuing across
// priority classes, load-aware shedding with measured Retry-After hints,
// and the per-canonical-key circuit breaker.
//
// The package sits between the HTTP surface and the solve engine
// (internal/service). The service enqueues (tenant, class, job) triples
// through Queue.Submit; workers pull them back out through Queue.Next in
// deficit-round-robin order, so one tenant's 10k-spec batch cannot
// starve another tenant's single interactive solve. The queue measures
// its own dequeue rate and per-class waiting time, which is what turns
// "try again later" into a concrete Retry-After second count.
//
// Identity travels on the request context: the HTTP layer parses the
// X-Synthd-Tenant and X-Synthd-Priority headers into a Caller and
// attaches it with WithCaller; the engine recovers it with CallerFrom at
// enqueue time. Requests without a caller run as the default tenant at
// interactive priority — single-node library users and existing tests
// keep today's exact semantics.
package admission

import "context"

// Class is a request priority class. Lower values are more latency
// sensitive and receive proportionally more of the dequeue bandwidth
// (see Queue).
type Class int

const (
	// Interactive is the default class: a human (or a latency-sensitive
	// caller) waiting on one solve. Interactive requests are never shed
	// on queue depth — they block at the hard capacity bound instead —
	// and they hold the largest deficit-round-robin weight.
	Interactive Class = iota
	// Batch is the class for bulk work submitted through the batch
	// endpoint: throughput-oriented, shed early under load.
	Batch
	// Background is the lowest class: best-effort work that yields to
	// everything else and is shed first.
	Background

	// NumClasses is the number of priority classes.
	NumClasses = 3
)

// String returns the wire name of the class (the X-Synthd-Priority
// header values).
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Background:
		return "background"
	default:
		return "unknown"
	}
}

// ParseClass parses a wire class name. The empty string is Interactive
// (the default for requests that carry no priority header); unknown
// names report ok == false so the HTTP layer can reject them as invalid
// rather than silently reclassifying.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "", "interactive":
		return Interactive, true
	case "batch":
		return Batch, true
	case "background":
		return Background, true
	default:
		return 0, false
	}
}

// DefaultTenant is the tenant requests without an X-Synthd-Tenant
// header are accounted to.
const DefaultTenant = "default"

// Caller identifies who submitted a request and at what priority, for
// fair-queuing purposes. The zero value normalizes to the default
// tenant at interactive priority.
type Caller struct {
	Tenant string
	Class  Class
}

// normalize fills the zero-value defaults.
func (c Caller) normalize() Caller {
	if c.Tenant == "" {
		c.Tenant = DefaultTenant
	}
	if c.Class < 0 || c.Class >= NumClasses {
		c.Class = Interactive
	}
	return c
}

type callerKey struct{}

// WithCaller attaches the caller identity to ctx; the engine recovers
// it at enqueue time with CallerFrom.
func WithCaller(ctx context.Context, c Caller) context.Context {
	return context.WithValue(ctx, callerKey{}, c.normalize())
}

// CallerFrom returns the caller attached to ctx, or the normalized zero
// caller (default tenant, interactive) when none is attached.
func CallerFrom(ctx context.Context) Caller {
	if c, ok := ctx.Value(callerKey{}).(Caller); ok {
		return c
	}
	return Caller{}.normalize()
}
