package portfolio

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/planio"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

func baseSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "pf-base",
		SwitchPins: 12,
		Modules:    []string{"a", "b", "o1", "o2", "o3", "o4"},
		Flows: []spec.Flow{
			{From: "a", To: "o1"}, {From: "a", To: "o2"},
			{From: "b", To: "o3"}, {From: "b", To: "o4"},
		},
		Conflicts: [][2]int{{0, 2}, {1, 3}},
		Binding:   spec.Unfixed,
	}
}

// smallSpec is an 8-pin fixed-binding instance tractable for the exact
// MILP lane (the IQP encoding is only practical for small fixed-binding
// instances; see internal/model's cross-check suite).
func smallSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "pf-small",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "o1", "o2"},
		Flows:      []spec.Flow{{From: "a", To: "o1"}, {From: "b", To: "o2"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 0, "o1": 1, "b": 4, "o2": 5},
	}
}

// biggerSpec is baseSpec plus one module and one flow: a one-edit
// neighbor in the "query = stored + one flow" direction.
func biggerSpec() *spec.Spec {
	sp := baseSpec()
	sp.Name = "pf-bigger"
	sp.Modules = append(sp.Modules, "o5")
	sp.Flows = append(sp.Flows, spec.Flow{From: "b", To: "o5"})
	return sp
}

func encode(t *testing.T, res *spec.Result) []byte {
	t.Helper()
	data, err := planio.Encode(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

func TestParseLanes(t *testing.T) {
	lanes, err := ParseLanes("milp, search")
	if err != nil || len(lanes) != 2 || lanes[0] != LaneMILP || lanes[1] != LaneSearch {
		t.Fatalf("ParseLanes = %v, %v", lanes, err)
	}
	if def, err := ParseLanes(""); err != nil || len(def) != 3 {
		t.Fatalf("empty lane list: %v, %v", def, err)
	}
	if _, err := ParseLanes("search,quantum"); err == nil {
		t.Error("unknown lane accepted")
	}
	if _, err := ParseLanes("search,search"); err == nil {
		t.Error("duplicate lane accepted")
	}
}

// TestRaceMatchesSequentialSearch: a proven race outcome must be
// byte-identical to a lone sequential search.Solve, whichever lane wins.
func TestRaceMatchesSequentialSearch(t *testing.T) {
	sp := smallSpec()
	cold, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d0 := Disagreements()
	for _, lanes := range [][]Lane{
		nil, // default: all three
		{LaneSearch},
		{LaneMILP},
		{LaneMILP, LaneGreedy},
	} {
		out, err := Race(context.Background(), smallSpec(), Options{Lanes: lanes})
		if err != nil {
			t.Fatalf("lanes %v: %v", lanes, err)
		}
		if !out.Result.Proven {
			t.Fatalf("lanes %v: race result not proven", lanes)
		}
		if !bytes.Equal(encode(t, out.Result), encode(t, cold)) {
			t.Errorf("lanes %v: race plan differs from sequential search plan", lanes)
		}
		if len(out.Reports) != len(lanes) && lanes != nil {
			t.Errorf("lanes %v: got %d reports", lanes, len(out.Reports))
		}
	}
	if d := Disagreements() - d0; d != 0 {
		t.Errorf("disagreement counter moved by %d on agreeing backends", d)
	}
}

// TestRaceGreedyOnlyDegraded: with only the greedy lane nothing can be
// proven; the race serves the verified first-fit plan as degraded.
func TestRaceGreedyOnlyDegraded(t *testing.T) {
	out, err := Race(context.Background(), baseSpec(), Options{Lanes: []Lane{LaneGreedy}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Proven || !out.Result.Degraded {
		t.Errorf("Proven=%v Degraded=%v, want degraded", out.Result.Proven, out.Result.Degraded)
	}
	if out.Winner != LaneGreedy {
		t.Errorf("winner = %q", out.Winner)
	}
	if verr := contam.Verify(out.Result); verr != nil {
		t.Errorf("degraded race plan failed verification: %v", verr)
	}
}

// TestRaceProvenInfeasibility: every proving lane agrees the spec is
// infeasible; the race surfaces ErrNoSolution and no disagreement.
func TestRaceProvenInfeasibility(t *testing.T) {
	sp := &spec.Spec{
		Name:       "pf-nosol",
		SwitchPins: 8,
		Modules:    []string{"in1", "in2", "out1", "out2"},
		Flows:      []spec.Flow{{From: "in1", To: "out1"}, {From: "in2", To: "out2"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"in1": 0, "out1": 2, "in2": 1, "out2": 3},
	}
	d0 := Disagreements()
	out, err := Race(context.Background(), sp, Options{Lanes: []Lane{LaneSearch, LaneMILP}})
	var nosol *spec.ErrNoSolution
	if !errors.As(err, &nosol) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
	if out.Result != nil {
		t.Error("infeasible race returned a plan")
	}
	if d := Disagreements() - d0; d != 0 {
		t.Errorf("disagreement counter moved by %d", d)
	}
}

// TestRaceCancelledContext: a pre-cancelled context yields a timeout-like
// error, not a hang.
func TestRaceCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Race(ctx, smallSpec(), Options{Lanes: []Lane{LaneSearch, LaneMILP}})
	if err == nil {
		t.Skip("race won before the cancellation was observed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to wrap context.Canceled", err)
	}
}

// TestCrossCheckDisagreements exercises the fail-closed comparisons with
// synthetic lane outcomes.
func TestCrossCheckDisagreements(t *testing.T) {
	sp := baseSpec()
	win, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A second "proof" with a different cost.
	forged := *win
	forged.Objective += 5
	err = crossCheck(sp, LaneSearch, win, LaneMILP, laneDone{res: &forged})
	var dis *ErrBackendDisagreement
	if !errors.As(err, &dis) {
		t.Fatalf("conflicting proofs: err = %v, want ErrBackendDisagreement", err)
	}
	if !errors.Is(err, &ErrBackendDisagreement{}) {
		t.Error("errors.Is does not match ErrBackendDisagreement")
	}

	// A degraded plan strictly beating the proven optimum.
	cheat := *win
	cheat.Proven = false
	cheat.Degraded = true
	cheat.Objective -= 5
	if err := crossCheck(sp, LaneSearch, win, LaneGreedy, laneDone{res: &cheat}); !errors.As(err, &dis) {
		t.Errorf("bound-beating degraded plan: err = %v, want disagreement", err)
	}

	// An equal-cost second proof agrees.
	agree := *win
	if err := crossCheck(sp, LaneSearch, win, LaneMILP, laneDone{res: &agree}); err != nil {
		t.Errorf("agreeing proof flagged: %v", err)
	}

	// A loser that proved infeasibility against a real plan.
	nosol := &spec.ErrNoSolution{SpecName: sp.Name, Policy: sp.Binding}
	if err := crossCheck(sp, LaneSearch, win, LaneMILP, laneDone{err: nosol}); !errors.As(err, &dis) {
		t.Errorf("infeasibility vs plan: err = %v, want disagreement", err)
	}

	// A lane that timed out with nothing carries no evidence.
	if err := crossCheck(sp, LaneSearch, win, LaneMILP, laneDone{err: &search.ErrTimeout{SpecName: sp.Name}}); err != nil {
		t.Errorf("empty loser flagged: %v", err)
	}
}

func TestSimIndexExactAndRestriction(t *testing.T) {
	idx := NewSimIndex(0)
	if idx.Stats().Capacity != DefaultSimIndexCapacity {
		t.Fatalf("default capacity = %d", idx.Stats().Capacity)
	}

	big := biggerSpec()
	bigPlan, err := search.Solve(big, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx.Add(big, bigPlan)
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}

	// Exact hit.
	if seed := idx.Lookup(biggerSpec()); seed == nil {
		t.Error("exact lookup missed")
	} else if verr := contam.Verify(seed); verr != nil {
		t.Errorf("exact seed failed verification: %v", verr)
	}

	// Restriction hit: baseSpec = biggerSpec minus one flow (and the
	// module that flow freed).
	seed := idx.Lookup(baseSpec())
	if seed == nil {
		t.Fatal("restriction lookup missed")
	}
	if verr := contam.Verify(seed); verr != nil {
		t.Fatalf("restricted seed failed verification: %v", verr)
	}
	if len(seed.Routes) != len(baseSpec().Flows) {
		t.Fatalf("restricted seed has %d routes", len(seed.Routes))
	}

	// The adapted seed must reproduce the cold plan byte-for-byte when
	// fed to the search.
	cold, err := search.Solve(baseSpec(), search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := search.Solve(baseSpec(), search.Options{SeedIncumbent: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, warm), encode(t, cold)) {
		t.Error("warm-started plan differs from cold plan")
	}
}

func TestSimIndexCompletion(t *testing.T) {
	idx := NewSimIndex(16)
	basePlan, err := search.Solve(baseSpec(), search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx.Add(baseSpec(), basePlan)

	// biggerSpec = baseSpec plus one flow: the completion direction.
	seed := idx.Lookup(biggerSpec())
	if seed == nil {
		t.Fatal("completion lookup missed")
	}
	if verr := contam.Verify(seed); verr != nil {
		t.Fatalf("completed seed failed verification: %v", verr)
	}
	if len(seed.Routes) != len(biggerSpec().Flows) {
		t.Fatalf("completed seed has %d routes", len(seed.Routes))
	}
	cold, err := search.Solve(biggerSpec(), search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := search.Solve(biggerSpec(), search.Options{SeedIncumbent: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, warm), encode(t, cold)) {
		t.Error("completion-seeded plan differs from cold plan")
	}
}

func TestSimIndexConflictToggle(t *testing.T) {
	idx := NewSimIndex(16)
	withConf := baseSpec()
	plan, err := search.Solve(withConf, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx.Add(withConf, plan)

	// Minus one conflict: the stored plan serves directly.
	fewer := baseSpec()
	fewer.Name = "pf-fewer-conf"
	fewer.Conflicts = [][2]int{{0, 2}}
	if seed := idx.Lookup(fewer); seed == nil {
		t.Error("minus-conflict lookup missed")
	} else if verr := contam.Verify(seed); verr != nil {
		t.Errorf("minus-conflict seed failed verification: %v", verr)
	}

	// Plus one conflict: served only if the stored plan already
	// respects it (re-verified either way — a nil result is acceptable,
	// a bad seed is not).
	more := baseSpec()
	more.Name = "pf-more-conf"
	more.Conflicts = append(more.Conflicts, [2]int{0, 3})
	if seed := idx.Lookup(more); seed != nil {
		if verr := contam.Verify(seed); verr != nil {
			t.Errorf("plus-conflict seed failed verification: %v", verr)
		}
	}
}

func TestSimIndexEviction(t *testing.T) {
	idx := NewSimIndex(2)
	specs := make([]*spec.Spec, 3)
	for i := range specs {
		sp := baseSpec()
		sp.Name = fmt.Sprintf("pf-evict-%d", i)
		// Distinct equivalence classes: vary the conflict set.
		sp.Conflicts = sp.Conflicts[:i]
		specs[i] = sp
		plan, err := search.Solve(sp, search.Options{})
		if err != nil {
			t.Fatal(err)
		}
		idx.Add(sp, plan)
	}
	if idx.Len() != 2 {
		t.Fatalf("Len = %d after overflow, want 2", idx.Len())
	}
	// The oldest entry (specs[0]) must be gone from both maps.
	st := idx.Stats()
	if st.Entries != 2 {
		t.Fatalf("stats entries = %d", st.Entries)
	}
}

func TestSimIndexIgnoresUnproven(t *testing.T) {
	idx := NewSimIndex(4)
	plan, err := search.GreedyFirstFit(baseSpec(), search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx.Add(baseSpec(), plan)
	if idx.Len() != 0 {
		t.Errorf("unproven plan was indexed (Len = %d)", idx.Len())
	}
}

// TestRaceWarmStartSeed: racing with a SimIndex seed still reproduces
// the canonical plan.
func TestRaceWarmStartSeed(t *testing.T) {
	idx := NewSimIndex(16)
	basePlan, err := search.Solve(baseSpec(), search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx.Add(baseSpec(), basePlan)
	seed := idx.Lookup(biggerSpec())
	if seed == nil {
		t.Fatal("completion lookup missed")
	}
	cold, err := search.Solve(biggerSpec(), search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Race(context.Background(), biggerSpec(), Options{
		// No MILP lane: the IQP encoding is intractable at 12 pins.
		Lanes: []Lane{LaneSearch, LaneGreedy},
		Seed:  seed, TimeLimit: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, out.Result), encode(t, cold)) {
		t.Error("seeded race plan differs from cold sequential plan")
	}
}
