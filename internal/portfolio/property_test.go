package portfolio

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"switchsynth/internal/cases"
	"switchsynth/internal/planio"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// TestPropertyWarmStartAndRaceMatchCold is the randomized determinism
// property behind the whole portfolio tier, over 200 generated specs:
//
//  1. a solve seeded with its own optimum (the hardest tie-break case —
//     the seed matches the canonical leaf's cost exactly) is
//     byte-identical to the cold solve;
//  2. a solve seeded from the similarity index — which adapts whatever
//     structural neighbor it finds, not necessarily an optimal plan for
//     this spec — is byte-identical to the cold solve;
//  3. a Race is byte-identical to the cold solve, and agrees with it on
//     infeasibility;
//
// and the process-wide disagreement counter never moves.
func TestPropertyWarmStartAndRaceMatchCold(t *testing.T) {
	if testing.Short() {
		t.Skip("200-spec property sweep")
	}
	const timeLimit = 10 * time.Second
	d0 := Disagreements()
	idx := NewSimIndex(0)
	cs := cases.Artificial(200, 20260808)
	var proven, warmHits, infeasible int
	for _, c := range cs {
		sp := c.Spec
		cold, err := search.Solve(sp, search.Options{TimeLimit: timeLimit})
		if err != nil {
			var nosol *spec.ErrNoSolution
			if !errors.As(err, &nosol) {
				t.Fatalf("%s: cold solve: %v", sp.Name, err)
			}
			infeasible++
			// The race must agree the spec is infeasible.
			_, rerr := Race(context.Background(), sp, Options{
				Lanes: []Lane{LaneSearch, LaneGreedy}, TimeLimit: timeLimit,
			})
			if !errors.As(rerr, &nosol) {
				t.Fatalf("%s: race = %v, want ErrNoSolution like the cold solve", sp.Name, rerr)
			}
			continue
		}
		if !cold.Proven {
			continue // timed out: nothing canonical to compare against
		}
		proven++
		coldBytes, err := planio.Encode(cold)
		if err != nil {
			t.Fatalf("%s: encode: %v", sp.Name, err)
		}

		// Property 1: self-seeded solve is byte-identical.
		self, err := search.Solve(sp, search.Options{TimeLimit: timeLimit, SeedIncumbent: cold})
		if err != nil {
			t.Fatalf("%s: self-seeded solve: %v", sp.Name, err)
		}
		if selfBytes, _ := planio.Encode(self); !bytes.Equal(coldBytes, selfBytes) {
			t.Fatalf("%s: self-seeded plan differs from cold", sp.Name)
		}

		// Property 2: similarity-index-seeded solve is byte-identical.
		// The index accumulates every proven plan as the sweep goes, so
		// later specs hit both exact and adapted-neighbor entries.
		idx.Add(sp, cold)
		if seed := idx.Lookup(sp); seed != nil {
			warmHits++
			warm, err := search.Solve(sp, search.Options{TimeLimit: timeLimit, SeedIncumbent: seed})
			if err != nil {
				t.Fatalf("%s: warm solve: %v", sp.Name, err)
			}
			if warmBytes, _ := planio.Encode(warm); !bytes.Equal(coldBytes, warmBytes) {
				t.Fatalf("%s: warm-started plan differs from cold", sp.Name)
			}
		}

		// Property 3: the race winner is byte-identical.
		out, err := Race(context.Background(), sp, Options{
			Lanes: []Lane{LaneSearch, LaneGreedy}, TimeLimit: timeLimit,
		})
		if err != nil {
			t.Fatalf("%s: race: %v", sp.Name, err)
		}
		if raceBytes, _ := planio.Encode(out.Result); !bytes.Equal(coldBytes, raceBytes) {
			t.Fatalf("%s: raced plan (winner %s) differs from cold", sp.Name, out.Winner)
		}
	}
	if proven == 0 {
		t.Fatal("no proven cases — the sweep tested nothing")
	}
	if warmHits == 0 {
		t.Fatal("similarity index never hit — the warm-start property went untested")
	}
	if d := Disagreements() - d0; d != 0 {
		t.Fatalf("disagreement counter moved by %d across the sweep", d)
	}
	t.Logf("200 specs: %d proven, %d warm-start hits, %d infeasible", proven, warmHits, infeasible)
}
