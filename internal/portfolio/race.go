// Package portfolio races heterogeneous proof engines against each other
// per solve and warm-starts the branch-and-bound from structurally
// similar, previously proven specs.
//
// The two halves share one safety posture: nothing a backend produces is
// trusted until it re-verifies. Race cross-checks every lane that
// finishes against the winner — cost agreement for proofs, bound sanity
// for degraded plans, full contamination re-verification for whatever is
// served — and fails closed with ErrBackendDisagreement on any mismatch:
// a disagreement means one of the independent optimality proofs is wrong,
// which is a bug to page on, never a plan to serve. SimIndex hands out
// adapted neighbor plans only as *seeds*, which internal/search
// re-validates once more before adoption, so a stale index entry can
// waste a little work but never change an answer.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/model"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// Lane identifies one racing backend.
type Lane string

const (
	// LaneSearch is the parallel branch-and-bound (internal/search).
	LaneSearch Lane = "search"
	// LaneMILP is the exact IQP-as-MILP encoding (internal/model), with
	// its winning plans canonicalized through a seeded search solve so
	// every proven race outcome is byte-identical to a plain search.
	LaneMILP Lane = "milp"
	// LaneGreedy is the first-fit incumbent lane: never proves, exists
	// to guarantee a fast feasible plan when both provers time out.
	LaneGreedy Lane = "greedy"
)

// DefaultLanes is the lane set used when Options.Lanes is empty.
func DefaultLanes() []Lane { return []Lane{LaneSearch, LaneMILP, LaneGreedy} }

// ParseLanes parses a comma-separated lane list ("search,milp,greedy").
func ParseLanes(s string) ([]Lane, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultLanes(), nil
	}
	var lanes []Lane
	seen := map[Lane]bool{}
	for _, part := range strings.Split(s, ",") {
		l := Lane(strings.TrimSpace(part))
		switch l {
		case LaneSearch, LaneMILP, LaneGreedy:
		default:
			return nil, fmt.Errorf("portfolio: unknown lane %q (want search, milp or greedy)", part)
		}
		if seen[l] {
			return nil, fmt.Errorf("portfolio: duplicate lane %q", l)
		}
		seen[l] = true
		lanes = append(lanes, l)
	}
	return lanes, nil
}

// Options configure a Race.
type Options struct {
	// Lanes are the backends to race; empty means DefaultLanes.
	Lanes []Lane
	// TimeLimit bounds every lane's solve (zero = no limit).
	TimeLimit time.Duration
	// SearchWorkers is the branch-and-bound worker count for the search
	// lane (and for the canonicalizing solve of the MILP lane).
	SearchWorkers int
	// Seed optionally warm-starts the search lane (see
	// search.Options.SeedIncumbent).
	Seed *spec.Result
	// OnIncumbent, when non-nil, receives each anytime incumbent the
	// search lane installs (see search.Options.OnIncumbent). Only the
	// search lane publishes: it is the lane whose incumbents are ordered
	// and canonical; surfacing a MILP or greedy interim plan would leak
	// non-canonical snapshots into streams.
	OnIncumbent func(*spec.Result)
}

// LaneReport describes how one lane finished.
type LaneReport struct {
	Lane      Lane
	Proven    bool
	HasPlan   bool
	Objective float64
	Runtime   time.Duration
	// Cancelled marks a lane stopped because the race was already
	// decided; its Err (a timeout wrapping context.Canceled) is expected.
	Cancelled bool
	Err       error
}

// Outcome is a decided race.
type Outcome struct {
	// Result is the winning plan (nil when the race proves
	// infeasibility; the Race error is then ErrNoSolution).
	Result *spec.Result
	// Winner is the lane whose result is served.
	Winner Lane
	// Reports lists every lane in Options.Lanes order.
	Reports []LaneReport
}

// costEps is the objective agreement tolerance between independent
// backends. Objectives are quantized by the grid pitch (distinct values
// differ by ≥ β·0.1) so anything beyond this is a genuine disagreement,
// not float noise.
const costEps = 1e-6

var disagreements atomic.Int64

// Disagreements returns the process-lifetime count of backend
// disagreements detected by Race. It must stay zero; the CI chaos and
// determinism gates fail on any nonzero value.
func Disagreements() int64 { return disagreements.Load() }

// ErrBackendDisagreement reports that two independently proven (or
// verified) backends disagreed about a spec: different optimal costs, a
// degraded plan beating a "proven" optimum, or a backend emitting a plan
// that fails contamination verification. It is never served as a plan —
// the race fails closed.
type ErrBackendDisagreement struct {
	SpecName   string
	Winner     Lane
	Loser      Lane
	WinnerCost float64
	LoserCost  float64
	Detail     string
}

func (e *ErrBackendDisagreement) Error() string {
	return fmt.Sprintf("portfolio: backend disagreement on %q: %s lane (cost %g) vs %s lane (cost %g): %s",
		e.SpecName, e.Winner, e.WinnerCost, e.Loser, e.LoserCost, e.Detail)
}

// Is supports errors.Is(err, &ErrBackendDisagreement{}).
func (e *ErrBackendDisagreement) Is(target error) bool {
	_, ok := target.(*ErrBackendDisagreement)
	return ok
}

type laneDone struct {
	idx     int
	res     *spec.Result
	err     error
	runtime time.Duration
}

// Race launches the configured lanes concurrently on sp and serves the
// first *proven* outcome — an optimal plan or an infeasibility proof —
// cancelling the losers via context. Every lane that still completes is
// cross-checked against the winner; any inconsistency returns
// ErrBackendDisagreement and no plan. When no lane proves anything
// before the limit, the best degraded plan (by objective, then lane
// order) is returned, Degraded and unproven, exactly like a lone
// search.Solve under the same limit.
//
// A proven Race result is byte-identical to sequential search.Solve on
// the same spec: the search lane emits the canonical plan by
// construction, and the MILP lane canonicalizes its win through a
// search solve seeded with the MILP plan (the seeded search re-proves
// optimality from the tight bound and lands on the same canonical leaf,
// while disagreeing costs between the two provers surface as
// ErrBackendDisagreement).
func Race(ctx context.Context, sp *spec.Spec, opts Options) (*Outcome, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	lanes := opts.Lanes
	if len(lanes) == 0 {
		lanes = DefaultLanes()
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := make(chan laneDone, len(lanes))
	for i, lane := range lanes {
		go func(i int, lane Lane) {
			start := time.Now()
			res, err := runLane(rctx, lane, sp, opts)
			ch <- laneDone{idx: i, res: res, err: err, runtime: time.Since(start)}
		}(i, lane)
	}

	// Collect every lane; the first proven outcome (optimal plan or
	// infeasibility proof) decides the race and cancels the rest. The
	// losers stop at their next cancellation poll, so waiting for them
	// is cheap and buys the cross-check.
	done := make([]laneDone, len(lanes))
	winner := -1
	for range lanes {
		d := <-ch
		done[d.idx] = d
		if winner < 0 && laneProven(d) {
			winner = d.idx
			cancel()
		}
	}

	out := &Outcome{Reports: make([]LaneReport, len(lanes))}
	for i, d := range done {
		rep := LaneReport{Lane: lanes[i], Runtime: d.runtime, Err: d.err}
		if d.res != nil {
			rep.HasPlan = true
			rep.Proven = d.res.Proven
			rep.Objective = d.res.Objective
		}
		if winner >= 0 && i != winner && errors.Is(d.err, context.Canceled) {
			rep.Cancelled = true
		}
		out.Reports[i] = rep
	}

	// Any lane that detected a disagreement itself (MILP vs its
	// canonicalizing search) fails the whole race, regardless of who won.
	for _, d := range done {
		var dis *ErrBackendDisagreement
		if errors.As(d.err, &dis) {
			disagreements.Add(1)
			return out, d.err
		}
	}

	if winner < 0 {
		return raceDegraded(sp, lanes, done, out)
	}
	w := done[winner]
	out.Winner = lanes[winner]

	if w.res == nil {
		// Proven infeasible. Any completed verified plan from another
		// lane contradicts the proof.
		for i, d := range done {
			if i == winner || d.res == nil {
				continue
			}
			if contam.Verify(d.res) == nil {
				disagreements.Add(1)
				err := &ErrBackendDisagreement{
					SpecName: sp.Name, Winner: lanes[winner], Loser: lanes[i],
					LoserCost: d.res.Objective,
					Detail:    "lane produced a verified plan for a spec proven infeasible",
				}
				return out, err
			}
		}
		return out, w.err
	}

	// The served plan is always re-verified, whatever lane it came from.
	if verr := contam.Verify(w.res); verr != nil {
		disagreements.Add(1)
		return out, &ErrBackendDisagreement{
			SpecName: sp.Name, Winner: lanes[winner], Loser: lanes[winner],
			WinnerCost: w.res.Objective,
			Detail:     fmt.Sprintf("winning plan failed contamination verification: %v", verr),
		}
	}
	for i, d := range done {
		if i == winner {
			continue
		}
		if err := crossCheck(sp, lanes[winner], w.res, lanes[i], d); err != nil {
			disagreements.Add(1)
			return out, err
		}
	}
	out.Result = w.res
	return out, nil
}

// laneProven reports whether a lane outcome decides the race: a proven
// optimal plan or a proven infeasibility.
func laneProven(d laneDone) bool {
	if d.res != nil {
		return d.res.Proven
	}
	var nosol *spec.ErrNoSolution
	return errors.As(d.err, &nosol)
}

// crossCheck compares a finished losing lane against the proven winner.
func crossCheck(sp *spec.Spec, winner Lane, wres *spec.Result, loser Lane, d laneDone) error {
	if d.res == nil {
		var nosol *spec.ErrNoSolution
		if errors.As(d.err, &nosol) {
			return &ErrBackendDisagreement{
				SpecName: sp.Name, Winner: winner, Loser: loser,
				WinnerCost: wres.Objective,
				Detail:     "lane proved infeasibility against a verified winning plan",
			}
		}
		return nil // timed out / cancelled with nothing: no evidence either way
	}
	if verr := contam.Verify(d.res); verr != nil {
		return &ErrBackendDisagreement{
			SpecName: sp.Name, Winner: winner, Loser: loser,
			WinnerCost: wres.Objective, LoserCost: d.res.Objective,
			Detail: fmt.Sprintf("losing lane emitted a plan that fails verification: %v", verr),
		}
	}
	diff := d.res.Objective - wres.Objective
	if d.res.Proven && (diff > costEps || diff < -costEps) {
		return &ErrBackendDisagreement{
			SpecName: sp.Name, Winner: winner, Loser: loser,
			WinnerCost: wres.Objective, LoserCost: d.res.Objective,
			Detail: "two proven optimality claims with different costs",
		}
	}
	if !d.res.Proven && diff < -costEps {
		return &ErrBackendDisagreement{
			SpecName: sp.Name, Winner: winner, Loser: loser,
			WinnerCost: wres.Objective, LoserCost: d.res.Objective,
			Detail: "degraded plan beats the proven optimum: the proof is wrong",
		}
	}
	return nil
}

// raceDegraded picks the best anytime plan when no lane proved anything:
// lowest objective wins, lane order breaks ties. With no plan at all the
// first lane error (in lane order) is surfaced.
func raceDegraded(sp *spec.Spec, lanes []Lane, done []laneDone, out *Outcome) (*Outcome, error) {
	best := -1
	for i, d := range done {
		if d.res == nil || contam.Verify(d.res) != nil {
			continue
		}
		if best < 0 || d.res.Objective < done[best].res.Objective-costEps {
			best = i
		}
	}
	if best >= 0 {
		out.Winner = lanes[best]
		out.Result = done[best].res
		return out, nil
	}
	for _, d := range done {
		if d.err != nil {
			return out, d.err
		}
	}
	return out, &search.ErrTimeout{SpecName: sp.Name}
}

// runLane executes one backend under the race context.
func runLane(ctx context.Context, lane Lane, sp *spec.Spec, opts Options) (*spec.Result, error) {
	switch lane {
	case LaneSearch:
		return search.Solve(sp, search.Options{
			Ctx:           ctx,
			TimeLimit:     opts.TimeLimit,
			Workers:       opts.SearchWorkers,
			SeedIncumbent: opts.Seed,
			OnIncumbent:   opts.OnIncumbent,
		})
	case LaneGreedy:
		return search.GreedyFirstFit(sp, search.Options{Ctx: ctx, TimeLimit: opts.TimeLimit})
	case LaneMILP:
		return runMILPLane(ctx, sp, opts)
	default:
		return nil, fmt.Errorf("portfolio: unknown lane %q", lane)
	}
}

// runMILPLane solves via the exact MILP encoding and, on a proven win,
// canonicalizes the plan through a search solve seeded with it. The
// seeded search re-proves optimality from the MILP bound and lands on
// the canonical leaf, so a MILP win is byte-identical to a search win;
// if the two provers disagree on the optimal cost — or the MILP plan
// does not even verify — the lane reports ErrBackendDisagreement.
func runMILPLane(ctx context.Context, sp *spec.Spec, opts Options) (*spec.Result, error) {
	res, err := model.Solve(sp, model.Options{TimeLimit: opts.TimeLimit, Ctx: ctx})
	if err != nil || !res.Proven {
		return res, err
	}
	if verr := contam.Verify(res); verr != nil {
		return nil, &ErrBackendDisagreement{
			SpecName: sp.Name, Winner: LaneMILP, Loser: LaneMILP,
			WinnerCost: res.Objective,
			Detail:     fmt.Sprintf("MILP optimal plan failed contamination verification: %v", verr),
		}
	}
	cres, cerr := search.Solve(sp, search.Options{
		Ctx:           ctx,
		TimeLimit:     opts.TimeLimit,
		Workers:       opts.SearchWorkers,
		SeedIncumbent: res,
	})
	if cerr != nil {
		// Cancelled or timed out before re-proving: fall back to the
		// (verified) MILP plan demoted to degraded, so a slow
		// canonicalization can't fake a second independent proof.
		demoted := *res
		demoted.Proven = false
		demoted.Degraded = true
		return &demoted, nil
	}
	if cres.Proven {
		if diff := cres.Objective - res.Objective; diff > costEps || diff < -costEps {
			return nil, &ErrBackendDisagreement{
				SpecName: sp.Name, Winner: LaneMILP, Loser: LaneSearch,
				WinnerCost: res.Objective, LoserCost: cres.Objective,
				Detail: "MILP and seeded-search optimality proofs disagree on cost",
			}
		}
	}
	return cres, nil
}
