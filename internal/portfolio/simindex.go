package portfolio

import (
	"container/list"
	"math/bits"
	"sort"
	"sync"

	"switchsynth/internal/contam"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// DefaultSimIndexCapacity is the entry cap used when NewSimIndex is
// given a non-positive capacity.
const DefaultSimIndexCapacity = 512

// SimIndex is an LRU index of proven plans keyed by the canonical key of
// their spec AND by the canonical keys of the spec's one-edit deletion
// neighbors: the spec minus one flow (with the modules that become
// unused dropped — removing a flow always frees its outlet module, so
// "minus one module" rides on "minus one flow") and the spec minus one
// conflict. A cold lookup that lands exactly one edit away from a stored
// spec — in either direction — adapts the stored plan into a verified
// starting incumbent for the branch-and-bound:
//
//   - stored = query + one flow  → drop the extra route, renumber.
//   - stored = query + one conflict → reuse the plan as-is.
//   - query = stored + one flow  → complete the plan with a bounded
//     enumeration of pin/set/path choices for the new flow.
//   - query = stored + one conflict → reuse the stored plan if it
//     happens to respect the new conflict (re-verified like the rest).
//
// Two stored specs that are both one edit from the query but not from
// each other are deliberately NOT matched through sibling signature
// intersection: "nearest neighbor" here means exactly one edit away,
// which keeps adaptation exact and cheap.
//
// Every adapted plan is renumbered, recomputed against the target's
// geometry and weights, and contamination-verified before it is handed
// out; internal/search re-validates the seed once more on adoption, so
// a stale or corrupt entry can only cost time, never correctness.
type SimIndex struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*simEntry            // canonical key -> entry
	bySig   map[string]map[string]*simEntry // neighbor sig -> entries by key
	order   *list.List                      // LRU, front = most recent
	lookups int64
	hits    int64
}

type simEntry struct {
	key  string
	sp   *spec.Spec   // canonical spec the plan proves
	res  *spec.Result // proven plan for sp
	sigs []simSig
	elem *list.Element
}

// simSig is one deletion-neighbor signature of a spec.
type simSig struct {
	key      string
	flow     int // dropped flow index, -1 for a conflict signature
	conflict int // dropped conflict index, -1 for a flow signature
}

// SimStats is a point-in-time snapshot of index effectiveness.
type SimStats struct {
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Lookups  int64 `json:"lookups"`
	Hits     int64 `json:"hits"`
}

// NewSimIndex creates an index holding at most capacity proven plans
// (non-positive capacity = DefaultSimIndexCapacity).
func NewSimIndex(capacity int) *SimIndex {
	if capacity <= 0 {
		capacity = DefaultSimIndexCapacity
	}
	return &SimIndex{
		cap:     capacity,
		entries: make(map[string]*simEntry),
		bySig:   make(map[string]map[string]*simEntry),
		order:   list.New(),
	}
}

// Stats returns current index counters.
func (x *SimIndex) Stats() SimStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return SimStats{Entries: len(x.entries), Capacity: x.cap, Lookups: x.lookups, Hits: x.hits}
}

// Len returns the number of stored plans.
func (x *SimIndex) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.entries)
}

// Add indexes a proven plan under its spec's canonical key and neighbor
// signatures. Unproven plans and specs that fail validation are ignored.
func (x *SimIndex) Add(sp *spec.Spec, res *spec.Result) {
	if res == nil || !res.Proven || res.Spec == nil {
		return
	}
	canon, err := sp.CanonicalSpec()
	if err != nil {
		return
	}
	key, err := canon.CanonicalKey()
	if err != nil {
		return
	}
	// Membership check before signature derivation: plans are
	// deterministic per canonical key, so a repeat add only refreshes
	// recency — paying neighborSigs for it would dominate warm paths
	// (replica re-imports, repeat peer fills) that add mostly-known keys.
	x.mu.Lock()
	if e, ok := x.entries[key]; ok {
		x.order.MoveToFront(e.elem)
		x.mu.Unlock()
		return
	}
	x.mu.Unlock()
	sigs := neighborSigs(canon)

	x.mu.Lock()
	defer x.mu.Unlock()
	if e, ok := x.entries[key]; ok {
		x.order.MoveToFront(e.elem)
		return // plans are deterministic per canonical key; nothing to update
	}
	e := &simEntry{key: key, sp: canon, res: res, sigs: sigs}
	e.elem = x.order.PushFront(e)
	x.entries[key] = e
	for _, sg := range sigs {
		m := x.bySig[sg.key]
		if m == nil {
			m = make(map[string]*simEntry)
			x.bySig[sg.key] = m
		}
		m[key] = e
	}
	for len(x.entries) > x.cap {
		x.evictOldest()
	}
}

func (x *SimIndex) evictOldest() {
	back := x.order.Back()
	if back == nil {
		return
	}
	e := back.Value.(*simEntry)
	x.order.Remove(back)
	delete(x.entries, e.key)
	for _, sg := range e.sigs {
		if m := x.bySig[sg.key]; m != nil {
			delete(m, e.key)
			if len(m) == 0 {
				delete(x.bySig, sg.key)
			}
		}
	}
}

// Lookup returns a verified warm-start seed for sp, or nil when no
// stored plan is within one edit. The returned Result targets sp's
// canonical spec and is safe to pass as search.Options.SeedIncumbent.
func (x *SimIndex) Lookup(sp *spec.Spec) *spec.Result {
	canon, err := sp.CanonicalSpec()
	if err != nil {
		return nil
	}
	key, err := canon.CanonicalKey()
	if err != nil {
		return nil
	}
	sw, pt, err := canon.SharedTopology()
	if err != nil {
		return nil
	}

	x.mu.Lock()
	x.lookups++
	// Collect candidates under the lock, adapt outside it: adaptation
	// runs verification and (for completion) path enumeration.
	type candidate struct {
		entry *simEntry
		sig   simSig // the edit linking entry and query
		dir   int    // +1: stored = query + edit; -1: query = stored + edit
	}
	var cands []candidate
	if e, ok := x.entries[key]; ok {
		x.order.MoveToFront(e.elem)
		cands = append(cands, candidate{entry: e, dir: 0})
	}
	// Stored specs that reduce to the query by one deletion.
	if m := x.bySig[key]; m != nil {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic probe order
		for _, k := range keys {
			e := m[k]
			for _, sg := range e.sigs {
				if sg.key == key {
					cands = append(cands, candidate{entry: e, sig: sg, dir: +1})
					break
				}
			}
		}
	}
	// Stored specs the query reduces to by one deletion.
	for _, sg := range neighborSigs(canon) {
		if e, ok := x.entries[sg.key]; ok {
			cands = append(cands, candidate{entry: e, sig: sg, dir: -1})
		}
	}
	x.mu.Unlock()

	for _, c := range cands {
		var seed *spec.Result
		switch c.dir {
		case 0:
			seed = reindexPlan(c.entry, canon, sw, pt)
		case +1:
			if c.sig.flow >= 0 {
				seed = restrictPlan(c.entry, c.sig.flow, canon, sw)
			} else {
				seed = reindexPlan(c.entry, canon, sw, pt)
			}
		case -1:
			if c.sig.flow >= 0 {
				seed = completePlan(c.entry, c.sig.flow, canon, sw, pt)
			} else {
				// Query added a conflict; the stored plan may or may
				// not respect it — reindex and let Verify decide.
				seed = reindexPlan(c.entry, canon, sw, pt)
			}
		}
		if seed != nil {
			x.mu.Lock()
			x.hits++
			if e, ok := x.entries[c.entry.key]; ok {
				x.order.MoveToFront(e.elem)
			}
			x.mu.Unlock()
			return seed
		}
	}
	return nil
}

// neighborSigs computes the deletion signatures of a canonical spec:
// one per removable flow (dropping the flow, the conflicts touching it,
// and the modules left unused — always at least its outlet) and one per
// conflict. Reductions that fail validation (e.g. the last flow) are
// skipped.
func neighborSigs(canon *spec.Spec) []simSig {
	var sigs []simSig
	for fi := range canon.Flows {
		if red := dropFlow(canon, fi); red != nil {
			if k, err := red.CanonicalKey(); err == nil {
				sigs = append(sigs, simSig{key: k, flow: fi, conflict: -1})
			}
		}
	}
	for ci := range canon.Conflicts {
		if red := dropConflict(canon, ci); red != nil {
			if k, err := red.CanonicalKey(); err == nil {
				sigs = append(sigs, simSig{key: k, flow: -1, conflict: ci})
			}
		}
	}
	return sigs
}

// dropFlow returns sp minus flow fi: conflicts touching fi are removed,
// remaining conflict indices shifted, and modules no longer used by any
// flow dropped (with their fixed pins). Returns nil if the reduced spec
// does not validate.
func dropFlow(sp *spec.Spec, fi int) *spec.Spec {
	if len(sp.Flows) <= 1 {
		return nil
	}
	red := *sp
	red.Name = sp.Name + "~f"
	red.Flows = make([]spec.Flow, 0, len(sp.Flows)-1)
	for i, f := range sp.Flows {
		if i != fi {
			red.Flows = append(red.Flows, f)
		}
	}
	red.Conflicts = nil
	for _, c := range sp.Conflicts {
		if c[0] == fi || c[1] == fi {
			continue
		}
		p := c
		if p[0] > fi {
			p[0]--
		}
		if p[1] > fi {
			p[1]--
		}
		red.Conflicts = append(red.Conflicts, p)
	}
	used := make(map[string]bool, len(sp.Modules))
	for _, f := range red.Flows {
		used[f.From] = true
		used[f.To] = true
	}
	red.Modules = make([]string, 0, len(sp.Modules))
	for _, m := range sp.Modules {
		if used[m] {
			red.Modules = append(red.Modules, m)
		}
	}
	if sp.FixedPins != nil {
		red.FixedPins = make(map[string]int, len(red.Modules))
		for _, m := range red.Modules {
			if p, ok := sp.FixedPins[m]; ok {
				red.FixedPins[m] = p
			}
		}
	}
	if red.Validate() != nil {
		return nil
	}
	return &red
}

// dropConflict returns sp minus conflict ci, or nil if invalid.
func dropConflict(sp *spec.Spec, ci int) *spec.Spec {
	red := *sp
	red.Name = sp.Name + "~c"
	red.Conflicts = make([][2]int, 0, len(sp.Conflicts)-1)
	for i, c := range sp.Conflicts {
		if i != ci {
			red.Conflicts = append(red.Conflicts, c)
		}
	}
	if red.Validate() != nil {
		return nil
	}
	return &red
}

// maskLen sums edge lengths over a mask in ascending-bit order, matching
// the solver's own float summation order so recomputed objectives agree
// bit-for-bit with what seed adoption recomputes.
func maskLen(sw *topo.Switch, mask topo.Bits) float64 {
	var sum float64
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			sum += sw.Edges[base+bits.TrailingZeros64(w)].Length
			w &= w - 1
		}
	}
	return sum
}

// finalizePlan fills the derived fields of an adapted plan (set
// renumbering, edge union, length, objective) and verifies it. Returns
// nil unless the plan fully checks out against the target spec.
func finalizePlan(res *spec.Result, sw *topo.Switch) *spec.Result {
	sp := res.Spec
	var edges topo.Bits
	for _, rt := range res.Routes {
		edges = edges.Or(rt.Path.EdgeMask)
	}
	res.UsedEdgeMask = edges
	res.Length = maskLen(sw, edges)
	renumberRoutes(res)
	if res.NumSets > sp.EffectiveMaxSets() {
		return nil
	}
	res.Objective = sp.EffectiveAlpha()*float64(res.NumSets) + sp.EffectiveBeta()*res.Length
	res.Proven = false
	res.Degraded = true
	if contam.Verify(res) != nil {
		return nil
	}
	return res
}

// renumberRoutes compacts set numbers in first-use order.
func renumberRoutes(res *spec.Result) {
	next := 0
	remap := map[int]int{}
	for i := range res.Routes {
		old := res.Routes[i].Set
		if _, ok := remap[old]; !ok {
			remap[old] = next
			next++
		}
		res.Routes[i].Set = remap[old]
	}
	res.NumSets = next
}

// reindexPlan maps a stored plan onto the target spec's flow order (the
// specs have identical flow sets; conflicts may differ). Used for exact
// hits and conflict-toggle neighbors.
func reindexPlan(e *simEntry, target *spec.Spec, sw *topo.Switch, _ *topo.PathTable) *spec.Result {
	if len(e.sp.Flows) != len(target.Flows) {
		return nil
	}
	routes, ok := reindexRoutes(e, target, -1)
	if !ok {
		return nil
	}
	pins := make(map[string]int, len(target.Modules))
	for _, m := range target.Modules {
		p, ok := e.res.PinOf[m]
		if !ok {
			return nil
		}
		pins[m] = p
	}
	return finalizePlan(&spec.Result{
		Spec:   target,
		Switch: sw,
		PinOf:  pins,
		Routes: routes,
		Engine: e.res.Engine,
	}, sw)
}

// reindexRoutes maps the stored entry's routes onto target flow indices
// by (From, To) — To is unique per flow by the outlet-once rule. Flows
// of the stored spec absent from the target are only tolerated when
// skipFlow names them (the restriction case). Routes are returned
// indexed by target flow; missing target flows leave ok == false unless
// the caller fills them (the completion case marks them Set: -1).
func reindexRoutes(e *simEntry, target *spec.Spec, skipFlow int) ([]spec.Route, bool) {
	byTo := make(map[string]int, len(target.Flows))
	for fi, f := range target.Flows {
		byTo[f.To] = fi
	}
	routes := make([]spec.Route, len(target.Flows))
	covered := make([]bool, len(target.Flows))
	for i := range routes {
		routes[i].Set = -1
	}
	for _, rt := range e.res.Routes {
		if rt.Flow < 0 || rt.Flow >= len(e.sp.Flows) {
			return nil, false
		}
		if rt.Flow == skipFlow {
			continue
		}
		sf := e.sp.Flows[rt.Flow]
		ti, ok := byTo[sf.To]
		if !ok || target.Flows[ti].From != sf.From || covered[ti] {
			return nil, false
		}
		covered[ti] = true
		routes[ti] = spec.Route{Flow: ti, Set: rt.Set, Path: rt.Path}
	}
	return routes, true
}

// restrictPlan adapts a stored plan to a query that equals the stored
// spec minus flow dropIdx: the extra route is dropped, pin bindings for
// vanished modules are dropped, and everything is recomputed against
// the target.
func restrictPlan(e *simEntry, dropIdx int, target *spec.Spec, sw *topo.Switch) *spec.Result {
	if len(e.sp.Flows) != len(target.Flows)+1 {
		return nil
	}
	routes, ok := reindexRoutes(e, target, dropIdx)
	if !ok {
		return nil
	}
	for _, rt := range routes {
		if rt.Set < 0 {
			return nil
		}
	}
	pins := make(map[string]int, len(target.Modules))
	for _, m := range target.Modules {
		p, ok := e.res.PinOf[m]
		if !ok {
			return nil
		}
		pins[m] = p
	}
	return finalizePlan(&spec.Result{
		Spec:   target,
		Switch: sw,
		PinOf:  pins,
		Routes: routes,
		Engine: e.res.Engine,
	}, sw)
}

// completePlan adapts a stored plan to a query that equals the stored
// spec plus one flow (target index newFlow, per the query's own
// deletion signature): the existing routes and bindings carry over and
// the new flow's pin(s), set and path are found by bounded deterministic
// enumeration — free pins in ascending order, existing sets plus one
// fresh set, shortest-path alternatives in table order — keeping the
// cheapest candidate that verifies.
func completePlan(e *simEntry, newFlow int, target *spec.Spec, sw *topo.Switch, pt *topo.PathTable) *spec.Result {
	if len(target.Flows) != len(e.sp.Flows)+1 {
		return nil
	}
	base, ok := reindexRoutes(e, target, -1)
	if !ok {
		return nil
	}
	for fi, rt := range base {
		if fi != newFlow && rt.Set < 0 {
			return nil
		}
	}
	f := target.Flows[newFlow]

	pins := make(map[string]int, len(target.Modules))
	usedPin := make(map[int]bool, len(target.Modules))
	for _, m := range target.Modules {
		if m == f.From || m == f.To {
			continue
		}
		p, ok := e.res.PinOf[m]
		if !ok {
			return nil
		}
		pins[m] = p
		usedPin[p] = true
	}
	numSets := 0
	for fi, rt := range base {
		if fi != newFlow && rt.Set+1 > numSets {
			numSets = rt.Set + 1
		}
	}

	fromPins := candidatePins(e, target, f.From, usedPin)
	var best *spec.Result
	for _, pf := range fromPins {
		toPins := candidatePins(e, target, f.To, usedPin)
		for _, pto := range toPins {
			if pto == pf {
				continue
			}
			for set := 0; set <= numSets; set++ {
				for _, path := range pt.PathsBetween(pf, pto) {
					routes := append([]spec.Route(nil), base...)
					routes[newFlow] = spec.Route{Flow: newFlow, Set: set, Path: path}
					cpins := make(map[string]int, len(pins)+2)
					for m, p := range pins {
						cpins[m] = p
					}
					cpins[f.From] = pf
					cpins[f.To] = pto
					cand := finalizePlan(&spec.Result{
						Spec:   target,
						Switch: sw,
						PinOf:  cpins,
						Routes: routes,
						Engine: e.res.Engine,
					}, sw)
					if cand != nil && (best == nil || cand.Objective < best.Objective-costEps) {
						best = cand
					}
				}
			}
		}
	}
	return best
}

// candidatePins lists the pins a module of the target spec may bind to,
// given the pins already taken by carried-over modules: the stored
// binding if the module already existed, the fixed pin under a fixed
// policy, else every free pin in ascending order.
func candidatePins(e *simEntry, target *spec.Spec, module string, usedPin map[int]bool) []int {
	if p, ok := e.res.PinOf[module]; ok {
		return []int{p}
	}
	if target.Binding == spec.Fixed {
		if p, ok := target.FixedPins[module]; ok {
			return []int{p}
		}
		return nil
	}
	var free []int
	for p := 0; p < target.Ports(); p++ {
		if !usedPin[p] {
			free = append(free, p)
		}
	}
	return free
}
