// Package render draws synthesized switches as SVG (for the paper's figures
// 4.1–4.4) and as ASCII art for terminals.
//
// Conventions follow the thesis figures: flow channels in the reduced
// switch are colored by flow set, removed segments are drawn as faint dashed
// lines, essential valves are rectangles across their segment colored by
// pressure-sharing group, pins are labeled circles annotated with their
// bound modules.
package render

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"switchsynth/internal/clique"
	"switchsynth/internal/ctrl"
	"switchsynth/internal/geom"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
	"switchsynth/internal/valve"
)

// setPalette colors one flow set each, cycling if needed. The first entries
// mirror the thesis figures (green, yellow, blue).
var setPalette = []string{
	"#2e8b57", // green
	"#d4a017", // yellow
	"#1e6fd9", // blue
	"#c0392b", // red
	"#8e44ad", // purple
	"#16a085", // teal
	"#d35400", // orange
	"#2c3e50", // slate
}

// groupPalette colors pressure-sharing valve groups.
var groupPalette = []string{
	"#e67e22", "#9b59b6", "#27ae60", "#e74c3c",
	"#3498db", "#f1c40f", "#1abc9c", "#7f8c8d",
}

// SVGOptions tune the SVG output.
type SVGOptions struct {
	// Scale is pixels per millimetre (default 80).
	Scale float64
	// ShowRemoved draws the removed (unused) segments as faint dashed lines.
	ShowRemoved bool
	// Scalable draws the Columba-S-compatible variant: all pin leads are
	// extended horizontally to the switch sides so flow enters and leaves
	// left/right, as in Figures 2.5, 2.6 and 4.3.
	Scalable bool
	// Title is drawn above the switch when non-empty.
	Title string
	// Control overlays a routed control layer: one thin green polyline per
	// control net plus its inlet punch (thesis figures draw the control
	// layer in green).
	Control *ctrl.Plan
}

// SVG renders a synthesis result. valves and cover may be nil to omit the
// control-layer annotations.
func SVG(res *spec.Result, valves *valve.Analysis, cover *clique.Cover, opts SVGOptions) string {
	sw := res.Switch
	scale := opts.Scale
	if scale <= 0 {
		scale = 80
	}
	b := sw.Bounds()
	margin := 0.9
	if opts.Scalable {
		margin = 1.9
	}
	minX, minY := b.Min.X-margin, b.Min.Y-margin
	w := (b.Width() + 2*margin) * scale
	h := (b.Height() + 2*margin) * scale
	tx := func(p geom.Point) (float64, float64) {
		return (p.X - minX) * scale, (p.Y - minY) * scale
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if opts.Title != "" {
		fmt.Fprintf(&sb, `<text x="%.0f" y="%.0f" font-family="sans-serif" font-size="%.0f" fill="#333">%s</text>`+"\n",
			8.0, 18.0, 14.0, xmlEscape(opts.Title))
	}

	// Removed segments first (underneath).
	if opts.ShowRemoved {
		for _, e := range sw.Edges {
			if res.UsedEdgeMask.Has(e.ID) {
				continue
			}
			x1, y1 := tx(sw.Vertices[e.U].Pos)
			x2, y2 := tx(sw.Vertices[e.V].Pos)
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#cccccc" stroke-width="2" stroke-dasharray="6,6"/>`+"\n", x1, y1, x2, y2)
		}
	}

	// Used segments colored by the sets routing through them (a segment
	// shared across sets gets parallel strokes).
	edgeSets := make(map[int][]int) // edge -> sorted distinct sets
	for _, rt := range res.Routes {
		for _, e := range rt.Path.EdgeIDs {
			if !containsInt(edgeSets[e], rt.Set) {
				edgeSets[e] = append(edgeSets[e], rt.Set)
			}
		}
	}
	for e := range edgeSets {
		sort.Ints(edgeSets[e])
	}
	var edgeIDs []int
	for e := range edgeSets {
		edgeIDs = append(edgeIDs, e)
	}
	sort.Ints(edgeIDs)
	for _, eid := range edgeIDs {
		e := sw.Edges[eid]
		x1, y1 := tx(sw.Vertices[e.U].Pos)
		x2, y2 := tx(sw.Vertices[e.V].Pos)
		sets := edgeSets[eid]
		// Offset perpendicular for multiple sets.
		dx, dy := x2-x1, y2-y1
		l := math.Hypot(dx, dy)
		if l == 0 {
			l = 1
		}
		px, py := -dy/l, dx/l
		for i, set := range sets {
			off := (float64(i) - float64(len(sets)-1)/2) * 5
			fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="4" stroke-linecap="round"/>`+"\n",
				x1+px*off, y1+py*off, x2+px*off, y2+py*off, setPalette[set%len(setPalette)])
		}
	}

	// Valves: rectangles across their segment.
	if valves != nil {
		groupOf := map[int]int{}
		if cover != nil {
			ess := valves.Essential
			g := cover.GroupOf(len(ess))
			for i, vi := range ess {
				groupOf[valves.Valves[vi].Edge] = g[i]
			}
		}
		for _, v := range valves.EssentialValves() {
			e := sw.Edges[v.Edge]
			mid := sw.Vertices[e.U].Pos.Mid(sw.Vertices[e.V].Pos)
			cx, cy := tx(mid)
			color := "#e67e22"
			if g, ok := groupOf[v.Edge]; ok {
				color = groupPalette[g%len(groupPalette)]
			}
			// Orient across the channel.
			wv, hv := 8.0, 22.0
			if math.Abs(sw.Vertices[e.U].Pos.Y-sw.Vertices[e.V].Pos.Y) < 1e-9 {
				wv, hv = 8.0, 22.0 // horizontal channel: tall valve
			} else {
				wv, hv = 22.0, 8.0
			}
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#7a4a12" stroke-width="1"><title>valve %s seq=%s</title></rect>`+"\n",
				cx-wv/2, cy-hv/2, wv, hv, color, xmlEscape(e.Name), v.SequenceString())
		}
	}

	// Scalable pin leads (drawn before pins so pins sit on top).
	if opts.Scalable {
		drawScalableLeads(&sb, res, tx, scale, b)
	}

	// Control-layer overlay.
	if opts.Control != nil {
		drawControl(&sb, opts.Control, tx)
	}

	// Pins and module labels.
	moduleAt := map[int]string{}
	for m, p := range res.PinOf {
		moduleAt[p] = m
	}
	for _, pid := range sw.Pins() {
		v := sw.Vertices[pid]
		x, y := tx(v.Pos)
		fill := "#ffffff"
		if _, bound := moduleAt[v.PinOrder]; bound {
			fill = "#444444"
		}
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="6" fill="%s" stroke="#333" stroke-width="1.5"/>`+"\n", x, y, fill)
		lx, ly := labelOffset(v.PinSide)
		label := v.Name
		if mod, ok := moduleAt[v.PinOrder]; ok {
			label = fmt.Sprintf("%s:%s", v.Name, mod)
		}
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" fill="#222" text-anchor="middle">%s</text>`+"\n",
			x+lx, y+ly, xmlEscape(label))
	}

	// Junction nodes.
	for _, nid := range sw.NodeIDs() {
		v := sw.Vertices[nid]
		x, y := tx(v.Pos)
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="#555"/>`+"\n", x, y)
	}

	// Legend: one line per flow set.
	ly := h - 14*float64(res.NumSets) - 6
	for s := 0; s < res.NumSets; s++ {
		fmt.Fprintf(&sb, `<rect x="8" y="%.1f" width="12" height="8" fill="%s"/>`+"\n", ly+float64(s)*14, setPalette[s%len(setPalette)])
		fmt.Fprintf(&sb, `<text x="26" y="%.1f" font-family="sans-serif" font-size="11" fill="#222">flow set %d</text>`+"\n", ly+8+float64(s)*14, s+1)
	}

	sb.WriteString("</svg>\n")
	return sb.String()
}

// drawControl overlays the routed control nets in green, with a square
// marking each control-inlet punch.
func drawControl(sb *strings.Builder, plan *ctrl.Plan, tx func(geom.Point) (float64, float64)) {
	for _, net := range plan.Nets {
		color := groupPalette[net.Group%len(groupPalette)]
		for _, c := range net.Cells {
			x, y := tx(plan.CellPoint(c))
			fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="3" height="3" fill="%s" opacity="0.7"/>`+"\n", x-1.5, y-1.5, color)
		}
		if !math.IsNaN(net.Inlet.X) {
			x, y := tx(net.Inlet)
			fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="16" height="16" fill="none" stroke="%s" stroke-width="2"><title>control inlet %d</title></rect>`+"\n",
				x-8, y-8, color, net.Group+1)
		}
	}
}

// drawScalableLeads extends every bound pin's channel horizontally to the
// switch border, Columba-S style.
func drawScalableLeads(sb *strings.Builder, res *spec.Result, tx func(geom.Point) (float64, float64), scale float64, b geom.Rect) {
	sw := res.Switch
	lane := 0
	for _, pid := range sw.Pins() {
		v := sw.Vertices[pid]
		if _, bound := pinBound(res, v.PinOrder); !bound {
			continue
		}
		switch v.PinSide {
		case topo.Left, topo.Right:
			continue // already horizontal
		}
		// Route top/bottom pins horizontally: short vertical jog then a
		// horizontal run to the nearer side.
		dir := 1.0
		if v.Pos.X < (b.Min.X+b.Max.X)/2 {
			dir = -1
		}
		jog := 0.35 + 0.25*float64(lane%3)
		lane++
		yOut := v.Pos.Y - jog
		if v.PinSide == topo.Bottom {
			yOut = v.Pos.Y + jog
		}
		xEnd := b.Max.X + 1.2
		if dir < 0 {
			xEnd = b.Min.X - 1.2
		}
		x0, y0 := tx(v.Pos)
		x1, y1 := tx(geom.Pt(v.Pos.X, yOut))
		x2, y2 := tx(geom.Pt(xEnd, yOut))
		fmt.Fprintf(sb, `<polyline points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="none" stroke="#888" stroke-width="3"/>`+"\n",
			x0, y0, x1, y1, x2, y2)
	}
}

func pinBound(res *spec.Result, pinOrder int) (string, bool) {
	for m, p := range res.PinOf {
		if p == pinOrder {
			return m, true
		}
	}
	return "", false
}

func labelOffset(s topo.Side) (float64, float64) {
	switch s {
	case topo.Top:
		return 0, -12
	case topo.Bottom:
		return 0, 20
	case topo.Left:
		return -24, 4
	case topo.Right:
		return 24, 4
	}
	return 0, -12
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ASCII renders the used flow channels of a synthesis result as a text
// diagram: '#' junctions, '○'/'●' pins (free/bound), set digits on used
// channels, '.' on removed channels.
func ASCII(res *spec.Result) string {
	sw := res.Switch
	// Snap coordinates to a character grid: 6 columns and 3 rows per mm.
	const cx, cy = 6.0, 3.0
	b := sw.Bounds()
	cols := int(math.Round(b.Width()*cx)) + 5
	rows := int(math.Round(b.Height()*cy)) + 3
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	at := func(p geom.Point) (int, int) {
		return int(math.Round((p.Y - b.Min.Y) * cy)), int(math.Round((p.X - b.Min.X) * cx))
	}
	plot := func(r, c int, ch rune) {
		if r >= 0 && r < rows && c >= 0 && c < cols {
			grid[r][c] = ch
		}
	}
	edgeChar := func(e topo.Edge) rune {
		if math.Abs(sw.Vertices[e.U].Pos.Y-sw.Vertices[e.V].Pos.Y) < 1e-9 {
			return '-'
		}
		return '|'
	}
	// Which set uses each edge (lowest set wins for labeling).
	edgeSet := map[int]int{}
	for _, rt := range res.Routes {
		for _, e := range rt.Path.EdgeIDs {
			if cur, ok := edgeSet[e]; !ok || rt.Set < cur {
				edgeSet[e] = rt.Set
			}
		}
	}
	for _, e := range sw.Edges {
		r1, c1 := at(sw.Vertices[e.U].Pos)
		r2, c2 := at(sw.Vertices[e.V].Pos)
		used := res.UsedEdgeMask.Has(e.ID)
		ch := edgeChar(e)
		if !used {
			ch = '.'
		}
		steps := maxInt(absInt(r2-r1), absInt(c2-c1))
		for s := 1; s < steps; s++ {
			r := r1 + (r2-r1)*s/steps
			c := c1 + (c2-c1)*s/steps
			if used {
				if set, ok := edgeSet[e.ID]; ok && s == steps/2 {
					plot(r, c, rune('1'+set%9))
					continue
				}
			}
			plot(r, c, ch)
		}
	}
	boundPins := map[int]bool{}
	for _, p := range res.PinOf {
		boundPins[p] = true
	}
	for _, v := range sw.Vertices {
		r, c := at(v.Pos)
		if v.Kind == topo.NodeVertex {
			plot(r, c, '#')
		} else if boundPins[v.PinOrder] {
			plot(r, c, '@')
		} else {
			plot(r, c, 'o')
		}
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.WriteString(strings.TrimRight(string(row), " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
