package render

import (
	"strings"
	"testing"

	"switchsynth/internal/clique"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
	"switchsynth/internal/valve"
)

func synthesize(t *testing.T, sp *spec.Spec) (*spec.Result, *valve.Analysis, *clique.Cover) {
	t.Helper()
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	va, err := valve.Analyze(res)
	if err != nil {
		t.Fatal(err)
	}
	cover := clique.MinCover(valve.CompatibilityMatrix(va.EssentialValves()))
	return res, va, &cover
}

func crossing(t *testing.T) (*spec.Result, *valve.Analysis, *clique.Cover) {
	return synthesize(t, &spec.Spec{
		Name:       "crossing",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	})
}

func TestSVGWellFormed(t *testing.T) {
	res, va, cover := crossing(t)
	svg := SVG(res, va, cover, SVGOptions{ShowRemoved: true, Title: "test <case>"})
	if !strings.HasPrefix(svg, "<svg ") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("bad SVG envelope")
	}
	// Escaping.
	if strings.Contains(svg, "<case>") {
		t.Error("title not XML-escaped")
	}
	if !strings.Contains(svg, "&lt;case&gt;") {
		t.Error("escaped title missing")
	}
	// Both flow sets appear in the legend.
	if !strings.Contains(svg, "flow set 1") || !strings.Contains(svg, "flow set 2") {
		t.Error("legend incomplete")
	}
	// Valve rectangles with tooltips.
	if !strings.Contains(svg, "<rect") || !strings.Contains(svg, "<title>valve") {
		t.Error("valve rectangles missing")
	}
	// Dangling open tags would break balance.
	if strings.Count(svg, "<svg") != strings.Count(svg, "</svg>") {
		t.Error("unbalanced svg tags")
	}
}

func TestSVGShowsRemovedSegments(t *testing.T) {
	res, va, cover := crossing(t)
	with := SVG(res, va, cover, SVGOptions{ShowRemoved: true})
	without := SVG(res, va, cover, SVGOptions{ShowRemoved: false})
	if strings.Count(with, "stroke-dasharray") <= strings.Count(without, "stroke-dasharray") {
		t.Error("ShowRemoved should add dashed segments")
	}
}

func TestSVGScalableLeads(t *testing.T) {
	res, va, cover := crossing(t)
	svg := SVG(res, va, cover, SVGOptions{Scalable: true})
	if !strings.Contains(svg, "polyline") {
		t.Error("scalable variant should draw pin leads")
	}
}

func TestSVGDefaultScale(t *testing.T) {
	res, va, cover := crossing(t)
	if svg := SVG(res, va, cover, SVGOptions{}); !strings.Contains(svg, "<svg") {
		t.Error("default options should render")
	}
}

func TestSVGNilAnalyses(t *testing.T) {
	res, _, _ := crossing(t)
	svg := SVG(res, nil, nil, SVGOptions{})
	if !strings.Contains(svg, "</svg>") {
		t.Error("nil analyses should still render")
	}
	if strings.Contains(svg, "<title>valve") {
		t.Error("valves drawn without analysis")
	}
}

func TestASCIIStructure(t *testing.T) {
	res, _, _ := crossing(t)
	art := ASCII(res)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("ASCII too small:\n%s", art)
	}
	for _, ch := range []string{"#", "@", "o", "."} {
		if !strings.Contains(art, ch) {
			t.Errorf("ASCII missing %q:\n%s", ch, art)
		}
	}
	// Set digits label the used channels.
	if !strings.Contains(art, "1") || !strings.Contains(art, "2") {
		t.Errorf("ASCII missing set labels:\n%s", art)
	}
}

func TestASCIIDeterministic(t *testing.T) {
	res, _, _ := crossing(t)
	if ASCII(res) != ASCII(res) {
		t.Error("ASCII not deterministic")
	}
}
