// Package wash implements wash-aware switch scheduling, the fallback the
// paper's related work (Hu et al., "Wash optimization for cross-
// contamination removal", ASP-DAC 2014) applies when strictly
// contamination-free routing is impossible — e.g. the paper's Table 4.1
// cases that have "no solution" under the fixed or clockwise binding
// policies.
//
// Instead of forcing conflicting flows onto disjoint channels, the flows
// are routed with only the collision rules (one inlet per junction per flow
// set), the flow sets are executed in an explicit order, and a wash
// operation — a full flush of the switch — is inserted between two sets
// whenever a conflicting pair left residue on shared channels. The
// scheduler picks the set execution order and the wash positions that
// minimize the number of washes (each wash costs reagent and time).
package wash

import (
	"fmt"
	"sort"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// Options tune the wash scheduler.
type Options struct {
	// TimeLimit bounds the underlying routing search (0 = none).
	TimeLimit time.Duration
}

// Plan is a wash-aware schedule.
type Plan struct {
	// Result is the routed plan, with conflicts relaxed to wash separation.
	Result *spec.Result
	// SetOrder gives the execution order: SetOrder[k] is the flow set
	// executed k-th.
	SetOrder []int
	// WashAfter[k] reports whether a wash runs after the k-th executed set.
	// The last entry is always false (no trailing wash needed).
	WashAfter []bool
	// NumWashes is the number of inserted wash operations.
	NumWashes int
	// SharedPairs lists the conflicting flow pairs that share channels and
	// therefore forced wash separation.
	SharedPairs [][2]int
}

// Schedule routes sp with conflicts relaxed and inserts the minimum number
// of washes that restores safety. It fails only if even the relaxed routing
// is infeasible.
func Schedule(sp *spec.Spec, opts Options) (*Plan, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	relaxed := *sp
	relaxed.Conflicts = nil
	res, err := search.Solve(&relaxed, search.Options{TimeLimit: opts.TimeLimit})
	if err != nil {
		return nil, fmt.Errorf("wash: relaxed routing failed: %w", err)
	}
	// Re-attach the real conflicts for reporting.
	full := *sp
	res.Spec = &full

	plan := &Plan{Result: res}
	// Which conflicting pairs share geometry? Those need wash separation.
	var needs []need
	for _, c := range sp.Conflicts {
		pa, pb := res.Routes[c[0]].Path, res.Routes[c[1]].Path
		if !pa.VertMask.Intersects(pb.VertMask) && !pa.EdgeMask.Intersects(pb.EdgeMask) {
			continue // routed apart: no residue interaction
		}
		sa, sb := res.Routes[c[0]].Set, res.Routes[c[1]].Set
		if sa == sb {
			// Cannot happen for different inlets (collision rule), and
			// conflicts between same-inlet flows are rejected by Validate.
			return nil, fmt.Errorf("wash: conflicting flows %d and %d share a set", c[0], c[1])
		}
		plan.SharedPairs = append(plan.SharedPairs, c)
		needs = append(needs, need{sa, sb})
	}

	k := res.NumSets
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	if len(needs) == 0 {
		plan.SetOrder = order
		plan.WashAfter = make([]bool, k)
		return plan, nil
	}

	// Choose the set execution order minimizing the number of washes. Flow
	// set counts are small (≤ #flows), so enumerate permutations up to 7
	// sets and fall back to the identity order beyond.
	bestOrder := append([]int(nil), order...)
	bestWashes := washesFor(bestOrder, needs)
	if k <= 7 {
		perm := append([]int(nil), order...)
		var rec func(i int)
		rec = func(i int) {
			if i == k {
				if w := washesFor(perm, needs); w < bestWashes {
					bestWashes = w
					copy(bestOrder, perm)
				}
				return
			}
			for j := i; j < k; j++ {
				perm[i], perm[j] = perm[j], perm[i]
				rec(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
		}
		rec(0)
	}
	plan.SetOrder = bestOrder
	plan.NumWashes = bestWashes
	plan.WashAfter = washPositions(bestOrder, needs)
	return plan, nil
}

// need records two flow sets that must be separated by a wash.
type need struct{ a, b int }

// washesFor counts the minimum washes for a given execution order: every
// needed pair becomes an interval of execution positions, and the classic
// greedy stabbing (by right endpoint) covers all intervals optimally.
func washesFor(order []int, needs []need) int {
	w := washPositions(order, needs)
	n := 0
	for _, x := range w {
		if x {
			n++
		}
	}
	return n
}

// washPositions returns, for the given order, the optimal wash slots:
// WashAfter[k] means a wash between executed set k and k+1.
func washPositions(order []int, needs []need) []bool {
	pos := make(map[int]int, len(order))
	for p, s := range order {
		pos[s] = p
	}
	type interval struct{ lo, hi int } // wash needed in slot lo..hi-1
	var ivs []interval
	for _, nd := range needs {
		a, b := pos[nd.a], pos[nd.b]
		if a > b {
			a, b = b, a
		}
		ivs = append(ivs, interval{a, b})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].hi < ivs[j].hi })
	out := make([]bool, len(order))
	last := -1
	for _, iv := range ivs {
		if last >= iv.lo && last < iv.hi {
			continue // already stabbed
		}
		last = iv.hi - 1
		out[last] = true
	}
	return out
}

// Verify checks a wash plan: the routing obeys the collision rules, the set
// order is a permutation, and every sharing conflict pair has a wash
// between its two sets' execution positions.
func (p *Plan) Verify() error {
	res := p.Result
	rep := contam.Analyze(res.Spec, res.Switch, res.Routes)
	if len(rep.CollidingVertices) > 0 {
		return fmt.Errorf("wash: collision at vertex %d", rep.CollidingVertices[0])
	}
	if len(p.SetOrder) != res.NumSets {
		return fmt.Errorf("wash: order over %d sets, plan has %d", len(p.SetOrder), res.NumSets)
	}
	seen := make([]bool, res.NumSets)
	pos := make(map[int]int)
	for k, s := range p.SetOrder {
		if s < 0 || s >= res.NumSets || seen[s] {
			return fmt.Errorf("wash: SetOrder is not a permutation")
		}
		seen[s] = true
		pos[s] = k
	}
	if len(p.WashAfter) != res.NumSets {
		return fmt.Errorf("wash: WashAfter has wrong length")
	}
	for _, c := range p.SharedPairs {
		a := pos[res.Routes[c[0]].Set]
		b := pos[res.Routes[c[1]].Set]
		if a > b {
			a, b = b, a
		}
		washed := false
		for k := a; k < b; k++ {
			if p.WashAfter[k] {
				washed = true
				break
			}
		}
		if !washed {
			return fmt.Errorf("wash: conflict pair %v not separated by a wash", c)
		}
	}
	return nil
}
