package wash

import (
	"testing"
	"time"

	"switchsynth/internal/cases"
	"switchsynth/internal/spec"
)

func TestWashRecoversInfeasibleFixedCase(t *testing.T) {
	// The nucleic-acid case is provably unsolvable under fixed binding
	// (Table 4.1); wash scheduling recovers it with at least one wash.
	c := cases.NucleicAcid()
	sp := c.WithBinding(spec.Fixed)
	plan, err := Schedule(sp, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(plan.SharedPairs) == 0 {
		t.Fatal("the fixed binding forces sharing; SharedPairs should not be empty")
	}
	if plan.NumWashes == 0 {
		t.Error("sharing conflicts require at least one wash")
	}
	if plan.NumWashes >= plan.Result.NumSets {
		t.Errorf("washes = %d should be below sets = %d", plan.NumWashes, plan.Result.NumSets)
	}
}

func TestWashNotNeededWhenDisjoint(t *testing.T) {
	// A case whose optimum already separates the conflicting flows needs no
	// washes.
	sp := &spec.Spec{
		Name:       "no-wash",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 0, "x": 1, "b": 4, "y": 5},
	}
	plan, err := Schedule(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.NumWashes != 0 || len(plan.SharedPairs) != 0 {
		t.Errorf("expected wash-free plan, got %d washes, %d shared pairs",
			plan.NumWashes, len(plan.SharedPairs))
	}
}

func TestWashCrossingCase(t *testing.T) {
	// Conflicting flows forced through the centre: exactly one wash between
	// the two sets suffices.
	sp := &spec.Spec{
		Name:       "wash-crossing",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
	plan, err := Schedule(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.NumWashes != 1 {
		t.Errorf("washes = %d, want 1", plan.NumWashes)
	}
	if plan.Result.NumSets != 2 {
		t.Errorf("sets = %d, want 2", plan.Result.NumSets)
	}
}

func TestWashOrderingMinimizesWashes(t *testing.T) {
	// Three inlets a, b, c crossing the centre column pairwise: conflicts
	// (a,b) and (b,c) but not (a,c). Executing b between washes of a and c
	// as [a, b, c] needs 2 washes; the order [b, a, c] or [a, c, b] needs...
	// each shared pair needs separation: (a,b) and (b,c). Order [a, c, b]
	// gives intervals (a..b) = slots 0..2 and (c..b) = 1..2 → one wash at
	// slot 1 covers both? (a..b) spans 0-2 and includes slot 1 ✓. So the
	// optimal is 1 wash; the scheduler must find an order achieving it.
	sp := &spec.Spec{
		Name:       "wash-three",
		SwitchPins: 12,
		Modules:    []string{"a", "b", "c", "x", "y", "z"},
		Flows: []spec.Flow{
			{From: "a", To: "x"},
			{From: "b", To: "y"},
			{From: "c", To: "z"},
		},
		Conflicts: [][2]int{{0, 1}, {1, 2}},
		Binding:   spec.Fixed,
		// All three flows run top→bottom through the same column.
		FixedPins: map[string]int{"a": 1, "x": 7, "b": 10, "y": 4, "c": 0, "z": 2},
	}
	plan, err := Schedule(sp, Options{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.NumWashes > 2 {
		t.Errorf("washes = %d, want ≤ 2", plan.NumWashes)
	}
}

func TestWashInvalidSpec(t *testing.T) {
	if _, err := Schedule(&spec.Spec{SwitchPins: 7}, Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestWashDeterministic(t *testing.T) {
	c := cases.NucleicAcid()
	sp := c.WithBinding(spec.Fixed)
	p1, err := Schedule(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Schedule(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumWashes != p2.NumWashes || len(p1.SharedPairs) != len(p2.SharedPairs) {
		t.Error("wash scheduling not deterministic")
	}
	for i := range p1.SetOrder {
		if p1.SetOrder[i] != p2.SetOrder[i] {
			t.Fatal("set order differs")
		}
	}
}
