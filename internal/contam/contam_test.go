package contam_test

import (
	"strings"
	"testing"

	"switchsynth/internal/contam"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

func conflictSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "conf",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Unfixed,
	}
}

func solved(t *testing.T, sp *spec.Spec) *spec.Result {
	t.Helper()
	res, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerifyAcceptsValidPlan(t *testing.T) {
	if err := contam.Verify(solved(t, conflictSpec())); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	tests := []struct {
		name   string
		tamper func(*spec.Result)
		want   string
	}{
		{"missing route", func(r *spec.Result) { r.Routes = r.Routes[:1] }, "routes for"},
		{"wrong flow id", func(r *spec.Result) { r.Routes[0].Flow = 1 }, "is for flow"},
		{"bad set", func(r *spec.Result) { r.Routes[0].Set = 99 }, "beyond MaxSets"},
		{"wrong set count", func(r *spec.Result) { r.NumSets++ }, "sets in use"},
		{"edge mask tampered", func(r *spec.Result) { r.UsedEdgeMask.Set(63) }, "mask mismatch"},
		{"length tampered", func(r *spec.Result) { r.Length += 1 }, "used channels sum"},
		{"unbound module", func(r *spec.Result) { delete(r.PinOf, "a") }, "unbound"},
		{"pin collision", func(r *spec.Result) { r.PinOf["a"] = r.PinOf["b"] }, "share pin"},
		{"pin out of range", func(r *spec.Result) { r.PinOf["a"] = 99 }, "out of range"},
		{"swap paths", func(r *spec.Result) {
			r.Routes[0].Path, r.Routes[1].Path = r.Routes[1].Path, r.Routes[0].Path
		}, "does not start"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res := solved(t, conflictSpec())
			tc.tamper(res)
			err := contam.Verify(res)
			if err == nil {
				t.Fatal("tampered plan accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestVerifyDetectsConflictViolation(t *testing.T) {
	// Re-route both conflicting flows over the same path's switch region:
	// craft a plan where flow 1 reuses flow 0's vertices.
	res := solved(t, conflictSpec())
	sw := res.Switch
	// Bind both flows' modules to the same pins' paths: replace route 1 with
	// a path that shares vertices with route 0.
	p0 := res.Routes[0].Path
	in1 := sw.PinVertex(res.PinOf[res.Spec.Flows[1].From])
	out1 := sw.PinVertex(res.PinOf[res.Spec.Flows[1].To])
	var overlapping *topo.Path
	for _, p := range sw.AllShortestPaths(in1, out1) {
		if p.VertMask.Intersects(p0.VertMask) {
			pp := p
			overlapping = &pp
			break
		}
	}
	if overlapping == nil {
		t.Skip("no overlapping alternative path for this binding")
	}
	res.Routes[1].Path = *overlapping
	res.UsedEdgeMask = p0.EdgeMask.Or(overlapping.EdgeMask)
	res.Length = 0
	for _, e := range res.UsedEdgeMask.Indices() {
		res.Length += sw.Edges[e].Length
	}
	err := contam.Verify(res)
	if err == nil || !strings.Contains(err.Error(), "share a node") {
		t.Fatalf("err = %v, want conflicting-share error", err)
	}
}

func TestVerifyClockwiseViolation(t *testing.T) {
	sp := &spec.Spec{
		Name:       "cw",
		SwitchPins: 8,
		Modules:    []string{"m1", "m2", "m3", "m4"},
		Flows:      []spec.Flow{{From: "m1", To: "m2"}, {From: "m3", To: "m4"}},
		Binding:    spec.Clockwise,
	}
	res := solved(t, sp)
	if err := contam.Verify(res); err != nil {
		t.Fatalf("valid clockwise plan rejected: %v", err)
	}
	// Swap two modules' pins to break the cyclic order. m1→m2 and m3→m4 in
	// order; swapping m2 and m4 makes the sequence non-cyclic.
	res.PinOf["m2"], res.PinOf["m4"] = res.PinOf["m4"], res.PinOf["m2"]
	err := contam.Verify(res)
	if err == nil {
		t.Fatal("broken clockwise order accepted")
	}
	// Either the cyclic check or the path-endpoint check must fire.
	if !strings.Contains(err.Error(), "clockwise") && !strings.Contains(err.Error(), "does not") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSpineBaselineIsPolluted(t *testing.T) {
	// The nucleic-acid-style conflicts on a Columba spine: conflicting
	// flows inevitably share spine segments.
	sp := &spec.Spec{
		Name:       "spine-base",
		SwitchPins: 8,
		Modules:    []string{"M1", "M2", "M3", "RC1", "RC2", "RC3"},
		Flows: []spec.Flow{
			{From: "M1", To: "RC1"},
			{From: "M2", To: "RC2"},
			{From: "M3", To: "RC3"},
		},
		Conflicts: [][2]int{{0, 1}, {0, 2}, {1, 2}},
		Binding:   spec.Unfixed,
	}
	spine, err := topo.NewSpine(6)
	if err != nil {
		t.Fatal(err)
	}
	pinOf := contam.SequentialBinding(sp, spine)
	routes, err := contam.BaselineRoutes(sp, spine, pinOf)
	if err != nil {
		t.Fatal(err)
	}
	rep := contam.Analyze(sp, spine, routes)
	if rep.Clean() {
		t.Fatal("spine baseline should be polluted")
	}
	if rep.ConflictPairsPolluted == 0 {
		t.Error("no polluted conflict pairs reported")
	}
	if len(rep.ContaminatedVertices) == 0 {
		t.Error("no contaminated junctions reported")
	}
}

func TestGridSynthesisIsCleanWhereSpineIsNot(t *testing.T) {
	// The same conflicts on the paper's switch synthesize contamination-free.
	sp := &spec.Spec{
		Name:       "grid-clean",
		SwitchPins: 8,
		Modules:    []string{"M1", "M2", "M3", "RC1", "RC2", "RC3"},
		Flows: []spec.Flow{
			{From: "M1", To: "RC1"},
			{From: "M2", To: "RC2"},
			{From: "M3", To: "RC3"},
		},
		Conflicts: [][2]int{{0, 1}, {0, 2}, {1, 2}},
		Binding:   spec.Unfixed,
	}
	res := solved(t, sp)
	rep := contam.Analyze(sp, res.Switch, res.Routes)
	if !rep.Clean() {
		t.Fatalf("synthesized plan polluted: %+v", rep)
	}
}

func TestBaselineRoutesErrors(t *testing.T) {
	sp := &spec.Spec{
		Name:       "x",
		SwitchPins: 8,
		Modules:    []string{"a", "b"},
		Flows:      []spec.Flow{{From: "a", To: "b"}},
	}
	spine, _ := topo.NewSpine(4)
	if _, err := contam.BaselineRoutes(sp, spine, map[string]int{"a": 0}); err == nil {
		t.Error("missing binding accepted")
	}
}

func TestSequentialBinding(t *testing.T) {
	sp := &spec.Spec{Modules: []string{"a", "b", "c"}}
	spine, _ := topo.NewSpine(4)
	pinOf := contam.SequentialBinding(sp, spine)
	if pinOf["a"] != 0 || pinOf["b"] != 1 || pinOf["c"] != 2 {
		t.Errorf("binding = %v", pinOf)
	}
}

func TestSourceFirstBinding(t *testing.T) {
	sp := &spec.Spec{
		Modules: []string{"out1", "in1", "out2", "in2"},
		Flows:   []spec.Flow{{From: "in1", To: "out1"}, {From: "in2", To: "out2"}},
	}
	spine, _ := topo.NewSpine(4)
	pinOf := contam.SourceFirstBinding(sp, spine)
	if pinOf["in1"] != 0 || pinOf["in2"] != 1 {
		t.Errorf("sources not clustered first: %v", pinOf)
	}
	if pinOf["out1"] != 2 || pinOf["out2"] != 3 {
		t.Errorf("destinations not after sources: %v", pinOf)
	}
}

func TestSpineBaselineChIPLikePollution(t *testing.T) {
	// Inlet-clustered spine binding: the two conflicting sample streams of
	// a ChIP-like case share the spine stretch between inlets and mixers.
	sp := &spec.Spec{
		Name:       "chip-like",
		SwitchPins: 12,
		Modules:    []string{"i10", "M1", "i11", "M2", "M3"},
		Flows: []spec.Flow{
			{From: "i10", To: "M1"},
			{From: "i11", To: "M2"},
			{From: "i11", To: "M3"},
		},
		Conflicts: [][2]int{{0, 1}, {0, 2}},
	}
	spine, err := topo.NewSpine(len(sp.Modules))
	if err != nil {
		t.Fatal(err)
	}
	routes, err := contam.BaselineRoutes(sp, spine, contam.SourceFirstBinding(sp, spine))
	if err != nil {
		t.Fatal(err)
	}
	rep := contam.Analyze(sp, spine, routes)
	if rep.ConflictPairsPolluted == 0 {
		t.Error("inlet-clustered spine should pollute the ChIP-like conflicts")
	}
}
