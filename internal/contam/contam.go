// Package contam verifies synthesized switch plans against the paper's
// contamination and collision rules, and quantifies the pollution incurred
// by contamination-unaware baselines such as the Columba spine switch.
//
// Rules verified (Sections 3.1–3.4 and the Section 4.2 defaults):
//
//   - every flow follows one valid path from its inlet pin to its outlet pin;
//   - conflicting flows never share a node or segment, at any time;
//   - within one flow set, every node and segment is used by flows of at
//     most one inlet module (branching from a shared inlet is allowed);
//   - modules bind to distinct pins; fixed bindings match the spec; the
//     clockwise policy winds the module order exactly once around the switch;
//   - each outlet pin is targeted by at most one flow.
package contam

import (
	"fmt"
	"math"
	"sort"

	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// Verify checks a synthesized plan in full. It returns nil only when the
// plan is contamination-free, collision-free and structurally consistent.
func Verify(res *spec.Result) error {
	sp := res.Spec
	if err := sp.Validate(); err != nil {
		return err
	}
	sw := res.Switch
	if len(res.Routes) != len(sp.Flows) {
		return fmt.Errorf("contam: %d routes for %d flows", len(res.Routes), len(sp.Flows))
	}

	// Binding checks.
	pinSeen := make(map[int]string)
	for m, p := range res.PinOf {
		if sp.ModuleIndex(m) < 0 {
			return fmt.Errorf("contam: binding for unknown module %q", m)
		}
		if p < 0 || p >= sw.NumPins {
			return fmt.Errorf("contam: module %q bound to pin %d out of range", m, p)
		}
		if other, dup := pinSeen[p]; dup {
			return fmt.Errorf("contam: modules %q and %q share pin %d", other, m, p)
		}
		pinSeen[p] = m
	}
	for _, mod := range sp.Modules {
		if _, ok := res.PinOf[mod]; !ok {
			return fmt.Errorf("contam: module %q unbound", mod)
		}
	}
	switch sp.Binding {
	case spec.Fixed:
		for m, want := range sp.FixedPins {
			if got := res.PinOf[m]; got != want {
				return fmt.Errorf("contam: fixed binding violated: module %q on pin %d, want %d", m, got, want)
			}
		}
	case spec.Clockwise:
		if err := verifyClockwise(sp, res.PinOf); err != nil {
			return err
		}
	}

	// Route checks.
	var unionEdges topo.Bits
	usedSets := make(map[int]bool)
	for i, rt := range res.Routes {
		if rt.Flow != i {
			return fmt.Errorf("contam: route %d is for flow %d", i, rt.Flow)
		}
		if rt.Set < 0 || rt.Set >= sp.EffectiveMaxSets() {
			return fmt.Errorf("contam: flow %d scheduled in set %d beyond MaxSets %d", i, rt.Set, sp.EffectiveMaxSets())
		}
		usedSets[rt.Set] = true
		if err := verifyPath(sw, rt.Path); err != nil {
			return fmt.Errorf("contam: flow %d: %w", i, err)
		}
		inPin := sw.PinVertex(res.PinOf[sp.Flows[i].From])
		outPin := sw.PinVertex(res.PinOf[sp.Flows[i].To])
		if rt.Path.In != inPin || rt.Path.Verts[0] != inPin {
			return fmt.Errorf("contam: flow %d does not start at its inlet pin", i)
		}
		if rt.Path.Out != outPin || rt.Path.Verts[len(rt.Path.Verts)-1] != outPin {
			return fmt.Errorf("contam: flow %d does not end at its outlet pin", i)
		}
		unionEdges = unionEdges.Or(rt.Path.EdgeMask)
	}
	if len(usedSets) != res.NumSets {
		return fmt.Errorf("contam: NumSets=%d but %d sets in use", res.NumSets, len(usedSets))
	}
	if unionEdges != res.UsedEdgeMask {
		return fmt.Errorf("contam: used-edge mask mismatch")
	}
	var wantLen float64
	for _, e := range unionEdges.Indices() {
		wantLen += sw.Edges[e].Length
	}
	if math.Abs(wantLen-res.Length) > 1e-6 {
		return fmt.Errorf("contam: Length=%v but used channels sum to %v", res.Length, wantLen)
	}

	// Contamination: conflicting flows must be fully node- (hence segment-)
	// disjoint across all time.
	for _, c := range sp.Conflicts {
		a, b := res.Routes[c[0]], res.Routes[c[1]]
		if a.Path.VertMask.Intersects(b.Path.VertMask) {
			return fmt.Errorf("contam: conflicting flows %d and %d share a node", c[0], c[1])
		}
	}

	// Collision: per set, one inlet per node and per segment.
	rep := Analyze(sp, sw, res.Routes)
	if len(rep.CollidingVertices) > 0 {
		v := rep.CollidingVertices[0]
		return fmt.Errorf("contam: node %s used by multiple inlets in one set", sw.Vertices[v].Name)
	}
	return nil
}

func verifyPath(sw *topo.Switch, p topo.Path) error {
	if len(p.Verts) < 2 || len(p.EdgeIDs) != len(p.Verts)-1 {
		return fmt.Errorf("malformed path")
	}
	for i, eid := range p.EdgeIDs {
		if eid < 0 || eid >= len(sw.Edges) {
			return fmt.Errorf("edge %d out of range", eid)
		}
		e := sw.Edges[eid]
		u, v := p.Verts[i], p.Verts[i+1]
		if !((e.U == u && e.V == v) || (e.U == v && e.V == u)) {
			return fmt.Errorf("edge %d does not join path vertices %d-%d", eid, u, v)
		}
	}
	seen := make(map[int]bool, len(p.Verts))
	for _, v := range p.Verts {
		if seen[v] {
			return fmt.Errorf("path revisits vertex %d", v)
		}
		seen[v] = true
	}
	for _, v := range p.Verts[1 : len(p.Verts)-1] {
		if sw.Vertices[v].Kind == topo.PinVertex {
			return fmt.Errorf("path routes through pin %s", sw.Vertices[v].Name)
		}
	}
	return nil
}

func verifyClockwise(sp *spec.Spec, pinOf map[string]int) error {
	if len(sp.Modules) <= 1 {
		return nil
	}
	pins := make([]int, len(sp.Modules))
	for i, m := range sp.Modules {
		pins[i] = pinOf[m]
	}
	descents := 0
	for i := range pins {
		if pins[(i+1)%len(pins)] < pins[i] {
			descents++
		}
	}
	if descents != 1 {
		return fmt.Errorf("contam: clockwise binding violated: pin sequence %v has %d cyclic descents, want 1", pins, descents)
	}
	return nil
}

// Report quantifies contamination and collisions in a set of routes. It is
// meaningful for baselines that cannot satisfy the rules (e.g. spine
// switches); for verified plans all slices are empty.
type Report struct {
	// ContaminatedVertices are nodes shared by at least one conflicting
	// flow pair.
	ContaminatedVertices []int
	// ContaminatedEdges are segments shared by at least one conflicting
	// flow pair.
	ContaminatedEdges []int
	// ConflictPairsPolluted counts the conflicting pairs that share a node
	// or segment anywhere.
	ConflictPairsPolluted int
	// CollidingVertices are nodes used, within one set, by flows of more
	// than one inlet module.
	CollidingVertices []int
}

// Clean reports whether no contamination and no collisions were found.
func (r Report) Clean() bool {
	return len(r.ContaminatedVertices) == 0 && len(r.ContaminatedEdges) == 0 &&
		r.ConflictPairsPolluted == 0 && len(r.CollidingVertices) == 0
}

// Analyze computes the pollution report for routes on sw under sp.
func Analyze(sp *spec.Spec, sw *topo.Switch, routes []spec.Route) Report {
	var rep Report
	vSet := map[int]bool{}
	eSet := map[int]bool{}
	for _, c := range sp.Conflicts {
		if c[0] >= len(routes) || c[1] >= len(routes) {
			continue
		}
		a, b := routes[c[0]].Path, routes[c[1]].Path
		shared := a.VertMask.And(b.VertMask)
		sharedE := a.EdgeMask.And(b.EdgeMask)
		if !shared.IsZero() || !sharedE.IsZero() {
			rep.ConflictPairsPolluted++
		}
		for _, v := range shared.Indices() {
			vSet[v] = true
		}
		for _, e := range sharedE.Indices() {
			eSet[e] = true
		}
	}
	rep.ContaminatedVertices = sortedKeys(vSet)
	rep.ContaminatedEdges = sortedKeys(eSet)

	// Collisions: group routes by set; within a set, each interior vertex
	// must be used by flows from one inlet module only.
	bySet := map[int][]spec.Route{}
	for _, rt := range routes {
		bySet[rt.Set] = append(bySet[rt.Set], rt)
	}
	collide := map[int]bool{}
	for _, rts := range bySet {
		ownerOf := map[int]string{}
		for _, rt := range rts {
			inlet := sp.Flows[rt.Flow].From
			for _, v := range rt.Path.Verts[1 : len(rt.Path.Verts)-1] {
				if o, ok := ownerOf[v]; ok && o != inlet {
					collide[v] = true
				} else {
					ownerOf[v] = inlet
				}
			}
		}
	}
	rep.CollidingVertices = sortedKeys(collide)
	return rep
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// BaselineRoutes routes every flow of sp on sw along the lexicographically
// first shortest path between its bound pins, each flow in its own set —
// the behaviour of a contamination-unaware tool. pinOf maps module names to
// clockwise pin orders. Used to reproduce the Columba spine comparisons
// (Figures 4.1(d) and 4.2(c)(d)).
func BaselineRoutes(sp *spec.Spec, sw *topo.Switch, pinOf map[string]int) ([]spec.Route, error) {
	routes := make([]spec.Route, len(sp.Flows))
	for i, f := range sp.Flows {
		pIn, okIn := pinOf[f.From]
		pOut, okOut := pinOf[f.To]
		if !okIn || !okOut {
			return nil, fmt.Errorf("contam: baseline binding misses module of flow %d", i)
		}
		paths := sw.AllShortestPaths(sw.PinVertex(pIn), sw.PinVertex(pOut))
		if len(paths) == 0 {
			return nil, fmt.Errorf("contam: no path for flow %d", i)
		}
		routes[i] = spec.Route{Flow: i, Set: i, Path: paths[0]}
	}
	return routes, nil
}

// SequentialBinding binds the modules of sp to pins 0..n-1 of sw in module
// order — the natural spine binding for baselines.
func SequentialBinding(sp *spec.Spec, sw *topo.Switch) map[string]int {
	pinOf := make(map[string]int, len(sp.Modules))
	for i, m := range sp.Modules {
		pinOf[m] = i % sw.NumPins
	}
	return pinOf
}

// SourceFirstBinding binds source modules to the low pins and destination
// modules to the following pins — the inlet-clustered layout typical of
// Columba placements, under which spine flows traverse long shared spine
// stretches (the situation of Figures 4.1(d) and 4.2(c)).
func SourceFirstBinding(sp *spec.Spec, sw *topo.Switch) map[string]int {
	isSource := map[string]bool{}
	for _, f := range sp.Flows {
		isSource[f.From] = true
	}
	pinOf := make(map[string]int, len(sp.Modules))
	next := 0
	for _, m := range sp.Modules {
		if isSource[m] {
			pinOf[m] = next % sw.NumPins
			next++
		}
	}
	for _, m := range sp.Modules {
		if !isSource[m] {
			pinOf[m] = next % sw.NumPins
			next++
		}
	}
	return pinOf
}
