package search

import (
	"bytes"
	"testing"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/planio"
	"switchsynth/internal/spec"
)

// seedSpec is a 12-pin instance with conflicts: small enough to prove
// quickly, large enough that the DFS visits many leaves (so a wrong
// seed tie-break would actually change which leaf wins).
func seedSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "seed-base",
		SwitchPins: 12,
		Modules:    []string{"a", "b", "o1", "o2", "o3", "o4"},
		Flows: []spec.Flow{
			{From: "a", To: "o1"}, {From: "a", To: "o2"},
			{From: "b", To: "o3"}, {From: "b", To: "o4"},
		},
		Conflicts: [][2]int{{0, 2}, {1, 3}},
		Binding:   spec.Unfixed,
	}
}

func encodePlan(t *testing.T, res *spec.Result) []byte {
	t.Helper()
	data, err := planio.Encode(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

func seedDelta(t *testing.T, f func()) (adopted, rejected int64) {
	t.Helper()
	a0, r0 := SeedCounters()
	f()
	a1, r1 := SeedCounters()
	return a1 - a0, r1 - r0
}

// TestSeededMatchesColdByteForByte is the core determinism guarantee:
// seeding with any valid plan — including the optimum itself, the
// hardest tie-break case — must reproduce the cold proven plan
// byte-for-byte at every worker count.
func TestSeededMatchesColdByteForByte(t *testing.T) {
	sp := seedSpec()
	cold, err := Solve(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldBytes := encodePlan(t, cold)

	greedy, err := GreedyFirstFit(seedSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		for name, seed := range map[string]*spec.Result{
			"optimum": cold, // equal-cost seed: pure tie-break stress
			"greedy":  greedy,
		} {
			adopted, rejected := seedDelta(t, func() {
				res, err := Solve(seedSpec(), Options{Workers: workers, SeedIncumbent: seed})
				if err != nil {
					t.Fatalf("workers=%d seed=%s: %v", workers, name, err)
				}
				if !res.Proven {
					t.Fatalf("workers=%d seed=%s: not proven", workers, name)
				}
				if got := encodePlan(t, res); !bytes.Equal(got, coldBytes) {
					t.Errorf("workers=%d seed=%s: seeded plan differs from cold plan\ncold:   %s\nseeded: %s",
						workers, name, coldBytes, got)
				}
			})
			if adopted != 1 || rejected != 0 {
				t.Errorf("workers=%d seed=%s: counters adopted=%d rejected=%d, want 1/0",
					workers, name, adopted, rejected)
			}
		}
	}
}

// TestSeedReindexedAcrossFlowPermutation: a seed solved under a permuted
// flow order must be re-indexed onto the target spec's order and still
// reproduce the cold plan exactly.
func TestSeedReindexedAcrossFlowPermutation(t *testing.T) {
	sp := seedSpec()
	cold, err := Solve(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perm := seedSpec()
	perm.Flows = []spec.Flow{
		{From: "b", To: "o4"}, {From: "a", To: "o2"},
		{From: "b", To: "o3"}, {From: "a", To: "o1"},
	}
	perm.Conflicts = [][2]int{{3, 2}, {1, 0}}
	seed, err := Solve(perm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adopted, rejected := seedDelta(t, func() {
		res, err := Solve(seedSpec(), Options{SeedIncumbent: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodePlan(t, res), encodePlan(t, cold)) {
			t.Error("permuted-flow seed changed the proven plan")
		}
	})
	if adopted != 1 || rejected != 0 {
		t.Errorf("counters adopted=%d rejected=%d, want 1/0", adopted, rejected)
	}
}

// TestStaleSeedRejected: a seed whose recorded objective disagrees with
// its own plan is stale and must be ignored (counted, never fatal).
func TestStaleSeedRejected(t *testing.T) {
	sp := seedSpec()
	cold, err := Solve(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale := *cold
	stale.Objective += 1.0
	adopted, rejected := seedDelta(t, func() {
		res, err := Solve(seedSpec(), Options{SeedIncumbent: &stale})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodePlan(t, res), encodePlan(t, cold)) {
			t.Error("stale seed changed the proven plan")
		}
	})
	if adopted != 0 || rejected != 1 {
		t.Errorf("counters adopted=%d rejected=%d, want 0/1", adopted, rejected)
	}
}

// TestInfeasibleSeedRejected covers seeds that fail re-verification:
// a plan mutated into a contamination violation, and a plan missing a
// module binding.
func TestInfeasibleSeedRejected(t *testing.T) {
	sp := seedSpec()
	cold, err := Solve(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Two modules forced onto the same pin: the plan's recomputed
	// objective is unchanged (routes untouched) so only the full
	// re-verification can catch it — and must.
	broken := *cold
	broken.PinOf = make(map[string]int, len(cold.PinOf))
	for name, p := range cold.PinOf {
		broken.PinOf[name] = p
	}
	broken.PinOf["o2"] = broken.PinOf["o1"]
	adopted, rejected := seedDelta(t, func() {
		if _, err := Solve(seedSpec(), Options{SeedIncumbent: &broken}); err != nil {
			t.Fatal(err)
		}
	})
	if adopted != 0 || rejected != 1 {
		t.Errorf("duplicate-pin seed: adopted=%d rejected=%d, want 0/1", adopted, rejected)
	}

	// Missing module binding.
	unbound := *cold
	unbound.PinOf = map[string]int{"a": cold.PinOf["a"]}
	adopted, rejected = seedDelta(t, func() {
		if _, err := Solve(seedSpec(), Options{SeedIncumbent: &unbound}); err != nil {
			t.Fatal(err)
		}
	})
	if adopted != 0 || rejected != 1 {
		t.Errorf("unbound seed: adopted=%d rejected=%d, want 0/1", adopted, rejected)
	}
}

// TestWrongSpecSeedRejected: a plan for an unrelated spec must never be
// adopted.
func TestWrongSpecSeedRejected(t *testing.T) {
	other := &spec.Spec{
		Name:       "seed-other",
		SwitchPins: 12,
		Modules:    []string{"x", "y1", "y2"},
		Flows:      []spec.Flow{{From: "x", To: "y1"}, {From: "x", To: "y2"}},
		Binding:    spec.Unfixed,
	}
	seed, err := Solve(other, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adopted, rejected := seedDelta(t, func() {
		if _, err := Solve(seedSpec(), Options{SeedIncumbent: seed}); err != nil {
			t.Fatal(err)
		}
	})
	if adopted != 0 || rejected != 1 {
		t.Errorf("counters adopted=%d rejected=%d, want 0/1", adopted, rejected)
	}
}

// TestSeededTimeoutReturnsSeedAsDegraded: when the deadline expires
// before the search beats the seed, the seed itself is the degraded
// incumbent — no greedy fallback, no ErrTimeout.
func TestSeededTimeoutReturnsSeedAsDegraded(t *testing.T) {
	seed, err := GreedyFirstFit(anytimeSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(anytimeSpec(), Options{TimeLimit: time.Nanosecond, SeedIncumbent: seed})
	if err != nil {
		t.Fatalf("seeded timeout must return the seed, got err = %v", err)
	}
	if res.Proven {
		return // solved inside the nanosecond somehow; nothing degraded to check
	}
	if !res.Degraded {
		t.Error("timeout plan not tagged Degraded")
	}
	if res.Objective > seed.Objective+1e-9 {
		t.Errorf("timeout plan objective %v worse than seed %v", res.Objective, seed.Objective)
	}
	if verr := contam.Verify(res); verr != nil {
		t.Errorf("timeout plan failed verification: %v", verr)
	}
}
