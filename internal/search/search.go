// Package search implements the dedicated exact synthesis engine: a
// combinatorial branch & bound over module→pin binding, flow→path assignment
// and flow→set scheduling.
//
// It optimizes exactly the paper's objective α·N_Sets + β·L_flow over exactly
// the paper's feasible region (constraints 3.1–3.13 plus the Section 4.2
// defaults), but replaces the monolithic IQP solve with problem-structured
// search: the paper reports multi-hour Gurobi runtimes on the 12- and 16-pin
// cases, and the pure-Go LP-based branch & bound in internal/milp — the
// faithful encoding, kept in internal/model — does not scale past toy sizes.
// Property tests cross-check the two engines' optima on small instances.
//
// With Options.Workers > 1 the DFS runs on a parallel driver (parallel.go):
// the canonical search-tree frontier is split into work units consumed by a
// pool of workers that share one incumbent bound. Results are bit-identical
// for every worker count; see DESIGN.md "Parallel search".
package search

import (
	"context"
	"errors"
	"fmt"
	mathbits "math/bits"
	"runtime"
	"slices"
	"sort"
	"time"

	"switchsynth/internal/geom"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// Options tune the search.
type Options struct {
	// TimeLimit bounds the wall-clock search time; 0 means no limit. On
	// timeout the best incumbent is returned with Result.Proven == false
	// and Result.Degraded == true (anytime solving); if no incumbent
	// exists yet the greedy first-fit fallback runs (see GreedyBudget).
	TimeLimit time.Duration
	// Ctx, when non-nil, cancels the search: on ctx expiry or
	// cancellation the best incumbent found so far is returned with
	// Result.Degraded == true, or an ErrTimeout wrapping ctx.Err() if no
	// plan was found yet. A ctx deadline and TimeLimit compose; whichever
	// fires first stops the search. Explicit cancellation (ctx.Canceled)
	// skips the greedy fallback: the caller no longer wants any result.
	Ctx context.Context
	// GreedyBudget bounds the greedy first-fit fallback that runs when a
	// deadline expires before any incumbent exists. Zero means the
	// default (100ms); negative disables the fallback entirely. The
	// fallback may therefore overrun the deadline by up to this budget.
	GreedyBudget time.Duration
	// DisableSymmetryBreaking turns off the rotational pin-symmetry cut
	// (used by ablation benchmarks).
	DisableSymmetryBreaking bool
	// Workers is the number of branch-and-bound goroutines exploring the
	// tree (0 or 1 = the sequential driver). The returned plan is
	// bit-identical for every value — parallelism only changes how fast
	// it is found — so callers may tune this freely without invalidating
	// caches or reproducibility. The greedy first-fit mode is always
	// sequential regardless of this setting.
	Workers int
	// SeedIncumbent, when non-nil, is a plan for (a spec equivalent to)
	// the same spec — typically an adapted neighbor plan from a
	// similarity index — installed as the starting incumbent so the
	// branch and bound begins with a tight upper bound instead of +inf.
	// The seed is fully re-validated before adoption (flow re-indexing
	// onto this spec, contamination re-verify, objective recomputation);
	// an invalid or stale seed is counted (SeedCounters) and ignored,
	// never fatal. Seeding never changes the answer: a seeded solve that
	// runs to completion emits a byte-identical proven plan to an
	// unseeded one at every worker count — the seed ranks strictly after
	// every leaf the search itself reaches, so it only prunes provably
	// worse subtrees. On timeout the seed is returned as the degraded
	// incumbent if nothing better was found. Ignored in greedy
	// first-fit mode.
	SeedIncumbent *spec.Result
	// OnIncumbent, when non-nil, is invoked each time the search installs
	// a new best incumbent, with a self-contained snapshot Result
	// (Degraded: true, LowerBound/Gap filled from the admissible root
	// bound). This is the anytime-streaming hook: a service can forward
	// successively better plans to a waiting client while the proof is
	// still running. On the parallel driver the callback fires from
	// multiple solver goroutines — concurrently and possibly with a
	// stale (worse) incumbent racing a fresh one — so it must be safe
	// for concurrent use and must order updates itself (e.g. by
	// Objective). It must not block: the solver calls it inline.
	OnIncumbent func(*spec.Result)
}

// DefaultGreedyBudget is the fallback search budget applied when
// Options.GreedyBudget is zero.
const DefaultGreedyBudget = 100 * time.Millisecond

func (o Options) greedyBudget() time.Duration {
	switch {
	case o.GreedyBudget > 0:
		return o.GreedyBudget
	case o.GreedyBudget < 0:
		return 0
	default:
		return DefaultGreedyBudget
	}
}

// ErrTimeout is returned when the time limit expires (or Options.Ctx is
// cancelled) before any feasible plan is found.
//
// It participates in the errors.Is/As chains: errors.As matches
// *ErrTimeout through any wrapping, errors.Is(err, &ErrTimeout{})
// matches any timeout regardless of field values, and Unwrap exposes the
// cause — context.DeadlineExceeded for an expired limit, or the
// cancelled context's error — so errors.Is(err,
// context.DeadlineExceeded) also classifies deadline-driven timeouts.
type ErrTimeout struct {
	SpecName string
	// Cause is context.DeadlineExceeded for an expired TimeLimit or ctx
	// deadline, context.Canceled for a cancelled Options.Ctx.
	Cause error
}

// Error implements error.
func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("search: time limit hit before finding a plan for %q", e.SpecName)
}

// Unwrap exposes the timeout cause (context.DeadlineExceeded unless the
// search was cancelled).
func (e *ErrTimeout) Unwrap() error {
	if e.Cause != nil {
		return e.Cause
	}
	return context.DeadlineExceeded
}

// Is makes every *ErrTimeout match every other under errors.Is, so
// callers can classify with errors.Is(err, &ErrTimeout{}) without
// knowing the spec name.
func (e *ErrTimeout) Is(target error) bool {
	var other *ErrTimeout
	return errors.As(target, &other)
}

// Solve synthesizes an application-specific switch plan for sp. The
// switch model and path table come from the process-wide topo cache —
// crossbar or FPVA grid, selected by the spec's topology — so repeated
// solves on the same substrate share one immutable topology.
func Solve(sp *spec.Spec, opts Options) (*spec.Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	sw, pt, err := sp.SharedTopology()
	if err != nil {
		return nil, err
	}
	return SolveOn(sp, sw, pt, opts)
}

// SolveOn synthesizes on a prebuilt switch and path table so that callers
// running many cases can share them. The switch must match the spec's
// topology and port count.
func SolveOn(sp *spec.Spec, sw *topo.Switch, pt *topo.PathTable, opts Options) (*spec.Result, error) {
	if err := matchTopology(sp, sw); err != nil {
		return nil, err
	}
	s := newSolver(sp, sw, pt, opts)
	return s.run()
}

// matchTopology rejects a prebuilt switch that does not model the
// spec's substrate: the port counts must agree and a crossbar spec must
// never run on an FPVA grid (or vice versa) — an FPVA grid can expose
// the same port count as a crossbar (2×2 → 8 ports), so the kind check
// is load-bearing, not cosmetic.
func matchTopology(sp *spec.Spec, sw *topo.Switch) error {
	if sw.NumPins != sp.Ports() {
		return fmt.Errorf("search: switch has %d pins, spec wants %d", sw.NumPins, sp.Ports())
	}
	if (sw.Kind == "fpva") != sp.IsFPVA() {
		return fmt.Errorf("search: %s switch does not match the spec's topology %q", sw.Kind, sp.Topology)
	}
	return nil
}

type incumbent struct {
	routes []spec.Route
	pinOf  []int
	cost   float64
	sets   int
	length float64
	edges  topo.Bits
}

// cand is one (inlet pin, outlet pin, path) choice for a flow, ordered
// canonically by (length, pIn, pOut, pathIdx). The integer triple is
// unique per candidate, so the order is strict and total.
type cand struct {
	pIn, pOut int
	pathIdx   int
	length    float64
}

// compareCands is the canonical candidate order shared by the sequential
// DFS and the parallel frontier expansion.
func compareCands(a, b cand) int {
	switch {
	case a.length < b.length:
		return -1
	case a.length > b.length:
		return 1
	case a.pIn != b.pIn:
		return a.pIn - b.pIn
	case a.pOut != b.pOut:
		return a.pOut - b.pOut
	default:
		return a.pathIdx - b.pathIdx
	}
}

type cwBound struct{ idx, pin int }

type solver struct {
	sp    *spec.Spec
	sw    *topo.Switch
	pt    *topo.PathTable
	opts  Options
	alpha float64
	beta  float64

	order    []int   // DFS position -> flow index
	srcs     []int   // flow -> source module index
	dsts     []int   // flow -> destination module index
	conf     [][]int // flow -> conflicting flows
	maxSets  int
	numPins  int
	rotStep  int
	stubEdge []int // pin order -> stub edge ID
	stubLen  float64

	// Mutable state.
	pinOf      []int // module -> pin order, -1 unbound
	modOf      []int // pin order -> module, -1 free
	boundCount int
	routes     []spec.Route // per flow; valid when assigned
	assigned   []bool
	vmask      []topo.Bits // per flow: chosen path vertex mask
	owner      [][]int     // set × vertex -> owning inlet module, -1
	setCount   []int
	usedSets   int
	usedEdges  topo.Bits
	curLen     float64

	// Per-depth scratch reused across nodes at the same depth (the DFS
	// holds at most one frame per depth, so no aliasing is possible).
	candBuf [][]cand
	inPins  [][]int
	outPins [][]int
	// remainingLB scratch: stamp array instead of a per-node map.
	seenGen []int64
	gen     int64
	cwBuf   []cwBound

	arena *arena // backing storage for the slices above; pooled

	best     *incumbent
	bestCost float64
	// seedBest marks that the current incumbent is an externally adopted
	// seed (Options.SeedIncumbent) rather than a leaf this search
	// reached. A seed ranks strictly after every native leaf: acceptLeaf
	// replaces it on any leaf within tolerance of its cost (not just a
	// strict improvement) and pruneBound keeps equal-cost subtrees open,
	// so a completed seeded solve lands on exactly the same canonical
	// leaf as an unseeded one. Cleared on the first acceptance.
	seedBest bool
	deadline time.Time
	hasDL    bool
	ctx      context.Context
	nodes    int64
	timedOut bool
	stopErr  error // context/deadline cause when timedOut

	// Parallel-driver fields: shared is the cross-worker incumbent and
	// stop state (nil on the sequential driver), unit the canonical index
	// of the frontier unit this worker is currently exploring.
	shared *sharedState
	unit   int

	// stopAtFirst makes the DFS return at the first feasible leaf (the
	// greedy first-fit mode); done records that it fired.
	stopAtFirst bool
	done        bool
	// rootLB is the admissible objective lower bound established at the
	// root, reported as Result.LowerBound for degraded plans.
	rootLB float64
	// started is the solve start time, stamped onto streamed incumbent
	// snapshots as their Runtime (parallel workers inherit the root's).
	started time.Time
}

// halted reports whether the DFS must unwind (deadline, cancellation, or
// the first-fit stop).
func (s *solver) halted() bool {
	return s.timedOut || s.done
}

func newSolver(sp *spec.Spec, sw *topo.Switch, pt *topo.PathTable, opts Options) *solver {
	s := &solver{
		sp:       sp,
		sw:       sw,
		pt:       pt,
		opts:     opts,
		alpha:    sp.EffectiveAlpha(),
		beta:     sp.EffectiveBeta(),
		srcs:     sp.Sources(),
		dsts:     sp.Destinations(),
		conf:     sp.ConflictsWith(),
		maxSets:  sp.EffectiveMaxSets(),
		numPins:  sw.NumPins,
		rotStep:  sw.RotStep,
		stubLen:  geom.PinStubLength,
		bestCost: inf,
		unit:     maxUnit,
	}
	nFlows := len(sp.Flows)
	a := acquireArena()
	s.arena = a
	a.bind(s, len(sp.Modules), nFlows, s.numPins, s.maxSets, len(sw.Vertices))

	for p := 0; p < s.numPins; p++ {
		pv := sw.PinVertex(p)
		edges := sw.IncidentEdges(pv)
		s.stubEdge[p] = edges[0]
	}

	// Flow ordering: conflicted flows first (most constrained), then by
	// flow index for determinism.
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		ca, cb := len(s.conf[s.order[a]]), len(s.conf[s.order[b]])
		if ca != cb {
			return ca > cb
		}
		return s.order[a] < s.order[b]
	})
	return s
}

const (
	inf = 1e18
	// eps is the float tolerance separating genuinely better objective
	// values from reordering noise. Objective values are quantized far
	// above it: edge lengths are multiples of the grid pitch and stub
	// length, so distinct costs differ by ≥ β·0.1 while float summation
	// order perturbs them by ~1e-12.
	eps = 1e-9
)

// startClock arms the deadline from TimeLimit and the optional context.
func (s *solver) startClock(start time.Time) {
	if s.opts.TimeLimit > 0 {
		s.deadline = start.Add(s.opts.TimeLimit)
		s.hasDL = true
	}
	if s.opts.Ctx != nil {
		s.ctx = s.opts.Ctx
		if dl, ok := s.ctx.Deadline(); ok && (!s.hasDL || dl.Before(s.deadline)) {
			s.deadline = dl
			s.hasDL = true
		}
	}
}

// bindFixed applies the spec's fixed module→pin binding up front;
// infeasible cyclic constraints cannot occur for fixed bindings (the
// spec validated distinctness).
func (s *solver) bindFixed() {
	if s.sp.Binding != spec.Fixed {
		return
	}
	for mi, name := range s.sp.Modules {
		p := s.sp.FixedPins[name]
		s.pinOf[mi] = p
		s.modOf[p] = mi
		s.boundCount++
	}
}

func (s *solver) run() (*spec.Result, error) {
	start := time.Now()
	s.started = start
	s.startClock(start)
	s.bindFixed()

	// Admissible root bound: at least one flow set, plus the stub length
	// every flow must add. Reported as LowerBound on degraded plans.
	s.rootLB = s.alpha + s.remainingLB(0)

	// Adopt the external seed (root solver only — parallel workers
	// inherit it through the shared incumbent, never re-adopt). Greedy
	// first-fit ignores seeds: its contract is "first feasible leaf".
	if s.opts.SeedIncumbent != nil && !s.stopAtFirst {
		if inc := s.adoptSeed(); inc != nil {
			s.best = inc
			s.bestCost = inc.cost
			s.seedBest = true
			s.publishIncumbent(inc)
		}
	}

	if s.opts.Workers > 1 && !s.stopAtFirst && len(s.order) > 0 {
		s.runParallel()
	} else {
		s.dfs(0)
	}
	return s.finish(start)
}

// finish turns the search outcome into a Result (or error), releases the
// pooled solver state, and flushes the node counter into the package
// telemetry.
func (s *solver) finish(start time.Time) (*spec.Result, error) {
	totalNodes.Add(s.nodes)
	defer s.release()

	rt := time.Since(start)
	if s.best == nil {
		if !s.timedOut {
			return nil, &spec.ErrNoSolution{SpecName: s.sp.Name, Policy: s.sp.Binding}
		}
		// Anytime contract: the deadline expired before any incumbent.
		// Unless the caller explicitly cancelled (it no longer wants any
		// result) or this run IS the fallback, degrade to greedy
		// first-fit instead of failing with ErrTimeout.
		if !s.stopAtFirst && !errors.Is(s.stopErr, context.Canceled) {
			if budget := s.opts.greedyBudget(); budget > 0 {
				res, gerr := greedyOn(s.sp, s.sw, s.pt, s.opts, budget)
				if gerr == nil {
					res.Runtime = time.Since(start)
					return res, nil
				}
				var nosol *spec.ErrNoSolution
				if errors.As(gerr, &nosol) {
					// The fallback exhausted the tree inside its budget:
					// a genuine infeasibility proof.
					return nil, gerr
				}
			}
		}
		return nil, &ErrTimeout{SpecName: s.sp.Name, Cause: s.stopErr}
	}
	proven := !s.timedOut && !s.stopAtFirst
	res := &spec.Result{
		Spec:         s.sp,
		Switch:       s.sw,
		PinOf:        make(map[string]int, len(s.sp.Modules)),
		Routes:       s.best.routes,
		NumSets:      s.best.sets,
		UsedEdgeMask: s.best.edges,
		Length:       s.best.length,
		Objective:    s.best.cost,
		Proven:       proven,
		Degraded:     !proven,
		Runtime:      rt,
		Engine:       "search",
	}
	for mi, name := range s.sp.Modules {
		if p := s.best.pinOf[mi]; p >= 0 {
			res.PinOf[name] = p
		}
	}
	// Compact set numbering in first-use order (already contiguous by
	// construction, but renumber defensively).
	renumberSets(res)
	s.normalizeDerived(res)
	s.fillBound(res)
	return res, nil
}

// normalizeDerived recomputes Length and Objective from the union edge
// mask in one flat ascending-bit pass. The search tracks length
// incrementally (curLen adds each placement's new edges as they come),
// which can differ from a flat pass by an ulp; every downstream
// recompute — plan decoding, seed adoption, the similarity index — uses
// the flat order, so the emitted Result is normalized to it and a
// decoded round trip reproduces Length and Objective bit-for-bit.
func (s *solver) normalizeDerived(res *spec.Result) {
	res.Length = s.edgeMaskLen(res.UsedEdgeMask)
	res.Objective = s.alpha*float64(res.NumSets) + s.beta*res.Length
}

// release returns the solver's pooled state. The Result never aliases
// arena memory: incumbent routes and pin assignments are fresh copies.
func (s *solver) release() {
	if s.arena == nil {
		return
	}
	// clockwiseFeasible may have regrown its scratch past the arena's
	// copy; hand the larger buffer back so the capacity is recycled.
	s.arena.cwBuf = s.cwBuf
	releaseArena(s.arena)
	s.arena = nil
}

// fillBound records the optimality-gap metadata: proven plans are their
// own bound; degraded plans report the admissible root bound and the
// relative gap to it.
func (s *solver) fillBound(res *spec.Result) {
	if res.Proven {
		res.LowerBound = res.Objective
		res.Gap = 0
		return
	}
	lb := s.rootLB
	if lb > res.Objective {
		lb = res.Objective
	}
	res.LowerBound = lb
	if res.Objective > 0 {
		res.Gap = (res.Objective - lb) / res.Objective
	}
}

// renumberSets makes set indices contiguous starting at 0 in order of first
// use by flow index, and recomputes NumSets.
func renumberSets(res *spec.Result) {
	next := 0
	remap := map[int]int{}
	for i := range res.Routes {
		old := res.Routes[i].Set
		if _, ok := remap[old]; !ok {
			remap[old] = next
			next++
		}
		res.Routes[i].Set = remap[old]
	}
	res.NumSets = next
}

// expired counts a search node and, every 256 nodes, polls the stop
// sources: the shared stop flag (parallel driver), the context, and the
// deadline. Oversubscribed parallel runs also yield the processor here
// so that sibling workers interleave finely even on a single core.
func (s *solver) expired() bool {
	s.nodes++
	if s.nodes&255 != 0 {
		return s.timedOut
	}
	if sh := s.shared; sh != nil {
		if sh.stopped.Load() {
			s.timedOut = true
			s.stopErr = sh.cause()
			return true
		}
		if sh.oversub {
			runtime.Gosched()
		}
	}
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			s.halt(err)
			return true
		}
	}
	if s.hasDL && time.Now().After(s.deadline) {
		s.halt(context.DeadlineExceeded)
	}
	return s.timedOut
}

// halt marks this solver timed out and, on the parallel driver,
// propagates the stop to the sibling workers.
func (s *solver) halt(causeErr error) {
	s.timedOut = true
	s.stopErr = causeErr
	if s.shared != nil {
		s.shared.halt(causeErr)
	}
}

func (s *solver) cost() float64 {
	return s.alpha*float64(s.usedSets) + s.beta*s.curLen
}

// remainingLB is an admissible lower bound on the extra cost the unassigned
// flows must add: every unassigned flow ends at a distinct outlet pin whose
// stub cannot be in use yet, and each distinct unassigned inlet module whose
// stub is unused adds its stub too.
func (s *solver) remainingLB(pos int) float64 {
	var extra float64
	s.gen++
	gen := s.gen
	for k := pos; k < len(s.order); k++ {
		f := s.order[k]
		extra += s.stubLen // outlet stub is always fresh (outlet-once rule)
		ms := s.srcs[f]
		if s.seenGen[ms] == gen {
			continue
		}
		s.seenGen[ms] = gen
		if p := s.pinOf[ms]; p >= 0 {
			if !s.usedEdges.Has(s.stubEdge[p]) {
				extra += s.stubLen
			}
		} else {
			extra += s.stubLen // unbound module's pin is free, stub unused
		}
	}
	return s.beta * extra
}

// acceptLeaf records the complete assignment at the current leaf if it
// beats the incumbent. On the parallel driver the decision is delegated
// to the shared (cost, unit) order; sequentially a strict improvement is
// required, so among equal-cost optima the first one in canonical DFS
// order wins — the tie-break the parallel driver reproduces exactly.
func (s *solver) acceptLeaf() {
	c := s.cost()
	if s.shared != nil {
		s.shared.offer(s, c)
		return
	}
	if c < s.bestCost-eps || (s.seedBest && c < s.bestCost+eps) {
		s.seedBest = false
		s.bestCost = c
		s.best = s.snapshotIncumbent(c)
		if s.stopAtFirst {
			s.done = true
		}
		s.publishIncumbent(s.best)
	}
}

// publishIncumbent hands a fresh incumbent snapshot to the OnIncumbent
// hook as a self-contained degraded Result. The routes are copied —
// renumberSets mutates Route.Set in place, and finish() will renumber
// the same incumbent again for the final Result — so the published plan
// never aliases solver state. Greedy first-fit runs never publish: the
// deadline fallback is a fresh solver with its own Options and no hook.
func (s *solver) publishIncumbent(inc *incumbent) {
	cb := s.opts.OnIncumbent
	if cb == nil || s.stopAtFirst {
		return
	}
	res := &spec.Result{
		Spec:         s.sp,
		Switch:       s.sw,
		PinOf:        make(map[string]int, len(s.sp.Modules)),
		Routes:       append([]spec.Route(nil), inc.routes...),
		NumSets:      inc.sets,
		UsedEdgeMask: inc.edges,
		Length:       inc.length,
		Objective:    inc.cost,
		Proven:       false,
		Degraded:     true,
		Runtime:      time.Since(s.started),
		Engine:       "search",
	}
	for mi, name := range s.sp.Modules {
		if p := inc.pinOf[mi]; p >= 0 {
			res.PinOf[name] = p
		}
	}
	renumberSets(res)
	s.normalizeDerived(res)
	s.fillBound(res)
	cb(res)
}

// snapshotIncumbent copies the current assignment out of the (pooled,
// mutable) solver state into a standalone incumbent.
func (s *solver) snapshotIncumbent(c float64) *incumbent {
	return &incumbent{
		routes: append([]spec.Route(nil), s.routes...),
		pinOf:  append([]int(nil), s.pinOf...),
		cost:   c,
		sets:   s.usedSets,
		length: s.curLen,
		edges:  s.usedEdges,
	}
}

// pruneBound returns the value a node's cost-plus-lower-bound must stay
// below to be worth exploring. Sequentially that is the incumbent cost
// (minus tolerance). On the parallel driver the bound depends on where
// the incumbent came from: against an incumbent from this or an earlier
// unit the sequential rule applies unchanged, but against one from a
// later unit only strictly worse subtrees may be cut — an equal-cost
// leaf here would still win the (cost, unit) tie-break.
func (s *solver) pruneBound() float64 {
	if s.shared == nil {
		if s.seedBest {
			// The incumbent is an external seed: an equal-cost leaf
			// must still be reachable so the seeded run lands on the
			// same canonical leaf as an unseeded one.
			return s.bestCost + eps
		}
		return s.bestCost - eps
	}
	b := s.shared.best.Load()
	if s.unit < b.unit {
		return b.cost + eps
	}
	return b.cost - eps
}

func (s *solver) dfs(pos int) {
	if s.halted() {
		return
	}
	if pos == len(s.order) {
		s.acceptLeaf()
		return
	}
	if s.expired() {
		return
	}
	if s.cost()+s.remainingLB(pos) >= s.pruneBound() {
		return
	}

	f := s.order[pos]
	ms, md := s.srcs[f], s.dsts[f]
	cands := s.enumCands(pos)

	for i := range cands {
		if s.halted() {
			return
		}
		c := cands[i]
		boundIn := s.bindIfNeeded(ms, c.pIn)
		if boundIn == bindConflict {
			continue
		}
		boundOut := s.bindIfNeeded(md, c.pOut)
		if boundOut == bindConflict {
			s.unbind(ms, c.pIn, boundIn)
			continue
		}
		if s.sp.Binding == spec.Clockwise && (boundIn == bindDone || boundOut == bindDone) && !s.clockwiseFeasible() {
			s.unbind(md, c.pOut, boundOut)
			s.unbind(ms, c.pIn, boundIn)
			continue
		}

		path := s.pt.PathsBetween(c.pIn, c.pOut)[c.pathIdx]
		if s.conflictClash(f, path) {
			s.unbind(md, c.pOut, boundOut)
			s.unbind(ms, c.pIn, boundIn)
			continue
		}

		// Try every non-empty set plus exactly one empty set: empty sets are
		// interchangeable, so trying more than one is pure symmetry.
		maxIdx := -1
		for i, cnt := range s.setCount {
			if cnt > 0 && i > maxIdx {
				maxIdx = i
			}
		}
		freshTried := false
		for set := 0; set < s.maxSets && set <= maxIdx+1; set++ {
			if s.setCount[set] == 0 {
				if freshTried {
					continue
				}
				freshTried = true
			}
			if !s.setFits(set, ms, path) {
				continue
			}
			s.place(f, ms, set, path)
			s.dfs(pos + 1)
			s.unplace(f, ms, set, path)
			if s.halted() {
				break
			}
		}

		s.unbind(md, c.pOut, boundOut)
		s.unbind(ms, c.pIn, boundIn)
	}
}

// enumCands fills the depth's candidate buffer with flow pos's
// (inlet pin, outlet pin, path) choices in canonical order. The outlet
// pin set is loop-invariant during enumeration (nothing binds until a
// candidate is tried), so it is computed once, not per inlet pin.
func (s *solver) enumCands(pos int) []cand {
	f := s.order[pos]
	ms, md := s.srcs[f], s.dsts[f]
	cands := s.candBuf[pos][:0]
	// The rotational symmetry cut may only constrain the module that is
	// bound first (the inlet): the outlet binds second, when the rotation
	// is already fixed.
	ins := s.candidatePins(ms, true, &s.inPins[pos])
	outs := s.candidatePins(md, false, &s.outPins[pos])
	for _, pIn := range ins {
		for _, pOut := range outs {
			if pIn == pOut {
				continue
			}
			paths := s.pt.PathsBetween(pIn, pOut)
			for pi := range paths {
				cands = append(cands, cand{pIn, pOut, pi, paths[pi].Length})
			}
		}
	}
	// The comparator is a strict total order (the pin/path triple is
	// unique), so the unstable sort is deterministic.
	slices.SortFunc(cands, compareCands)
	s.candBuf[pos] = cands
	return cands
}

type bindOutcome int

const (
	bindAlready  bindOutcome = iota // module was already on this pin
	bindDone                        // module newly bound here (undo needed)
	bindConflict                    // impossible (other pin / pin taken)
)

// candidatePins appends the pins a module may use into *buf: its bound
// pin, or all free pins. With allowCut, the very first binding of the
// search is restricted to one orbit representative per rotation class:
// the topology's smallest rotational automorphism shifts every pin
// order by Switch.RotStep (90° → PerSide on the crossbar, 180° →
// Rows+Cols on the FPVA grid), so the first bound module only needs the
// first RotStep pins. A topology without rotational symmetry reports
// RotStep 0 and disables the cut.
func (s *solver) candidatePins(module int, allowCut bool, buf *[]int) []int {
	out := (*buf)[:0]
	if p := s.pinOf[module]; p >= 0 {
		out = append(out, p)
		*buf = out
		return out
	}
	limit := s.numPins
	if allowCut && !s.opts.DisableSymmetryBreaking && s.boundCount == 0 && s.rotStep > 0 {
		limit = s.rotStep
	}
	for p := 0; p < limit; p++ {
		if s.modOf[p] == -1 {
			out = append(out, p)
		}
	}
	*buf = out
	return out
}

func (s *solver) bindIfNeeded(module, pin int) bindOutcome {
	if s.pinOf[module] == pin {
		return bindAlready
	}
	if s.pinOf[module] != -1 || s.modOf[pin] != -1 {
		return bindConflict
	}
	s.pinOf[module] = pin
	s.modOf[pin] = module
	s.boundCount++
	return bindDone
}

func (s *solver) unbind(module, pin int, oc bindOutcome) {
	if oc != bindDone {
		return
	}
	s.pinOf[module] = -1
	s.modOf[pin] = -1
	s.boundCount--
}

// conflictClash reports whether routing flow f over path would make it share
// a vertex (hence possibly a segment) with an already-routed conflicting flow.
func (s *solver) conflictClash(f int, path topo.Path) bool {
	for _, g := range s.conf[f] {
		if s.assigned[g] && s.vmask[g].Intersects(path.VertMask) {
			return true
		}
	}
	return false
}

// setFits reports whether every junction on the path is free or already
// owned by the same inlet module in the given set.
func (s *solver) setFits(set, inletModule int, path topo.Path) bool {
	for _, v := range path.Verts[1 : len(path.Verts)-1] {
		if o := s.owner[set][v]; o != -1 && o != inletModule {
			return false
		}
	}
	return true
}

func (s *solver) place(f, inletModule, set int, path topo.Path) {
	for _, v := range path.Verts[1 : len(path.Verts)-1] {
		if s.owner[set][v] == -1 {
			s.owner[set][v] = inletModule
		}
	}
	if s.setCount[set] == 0 {
		s.usedSets++
	}
	s.setCount[set]++
	newEdges := path.EdgeMask.AndNot(s.usedEdges)
	s.usedEdges = s.usedEdges.Or(path.EdgeMask)
	s.curLen += s.edgeMaskLen(newEdges)
	s.assigned[f] = true
	s.vmask[f] = path.VertMask
	s.routes[f] = spec.Route{Flow: f, Set: set, Path: path}
}

func (s *solver) unplace(f, inletModule, set int, path topo.Path) {
	s.assigned[f] = false
	s.vmask[f] = topo.Bits{}
	s.setCount[set]--
	if s.setCount[set] == 0 {
		s.usedSets--
	}
	// Recompute ownership for the set's vertices touched by this path: a
	// vertex stays owned if another flow of this set still uses it.
	for _, v := range path.Verts[1 : len(path.Verts)-1] {
		stillUsed := false
		for g, a := range s.assigned {
			if !a || s.routes[g].Set != set {
				continue
			}
			if s.routes[g].Path.UsesVertex(v) {
				stillUsed = true
				break
			}
		}
		if !stillUsed {
			s.owner[set][v] = -1
		}
	}
	// Recompute the used-edge union and length.
	var union topo.Bits
	for g, a := range s.assigned {
		if a {
			union = union.Or(s.routes[g].Path.EdgeMask)
		}
	}
	s.usedEdges = union
	s.curLen = s.edgeMaskLen(union)
}

// edgeMaskLen sums edge lengths over a mask, iterating set bits in
// ascending order (the same order Bits.Indices would produce, so float
// summation is bit-identical) without materializing an index slice.
func (s *solver) edgeMaskLen(mask topo.Bits) float64 {
	var sum float64
	for wi, w := range mask {
		base := wi * 64
		for w != 0 {
			sum += s.sw.Edges[base+mathbits.TrailingZeros64(w)].Length
			w &= w - 1
		}
	}
	return sum
}

// clockwiseFeasible checks that the partial module→pin binding can still be
// completed into an assignment where the module list order winds exactly
// once clockwise around the switch (constraints 3.12–3.13).
func (s *solver) clockwiseFeasible() bool {
	// Appending in module-index order keeps bs sorted by idx.
	bs := s.cwBuf[:0]
	for mi, p := range s.pinOf {
		if p >= 0 {
			bs = append(bs, cwBound{mi, p})
		}
	}
	s.cwBuf = bs
	if len(bs) <= 1 {
		return true
	}
	// The pins must appear in the same cyclic order as the modules: exactly
	// one descent around the cycle.
	descents := 0
	for i := range bs {
		next := bs[(i+1)%len(bs)]
		if next.pin < bs[i].pin {
			descents++
		}
	}
	if descents != 1 {
		return false
	}
	// Capacity: between consecutive bound modules there must be enough free
	// pins in the corresponding clockwise pin arc for the unbound modules.
	nMod := len(s.sp.Modules)
	for i := range bs {
		next := bs[(i+1)%len(bs)]
		unboundBetween := 0
		for j := (bs[i].idx + 1) % nMod; j != next.idx; j = (j + 1) % nMod {
			if s.pinOf[j] == -1 {
				unboundBetween++
			}
		}
		freeInArc := 0
		for p := (bs[i].pin + 1) % s.numPins; p != next.pin; p = (p + 1) % s.numPins {
			if s.modOf[p] == -1 {
				freeInArc++
			}
		}
		if freeInArc < unboundBetween {
			return false
		}
	}
	return true
}
