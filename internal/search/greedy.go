package search

import (
	"time"

	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// GreedyEngine names the engine recorded on plans produced by the greedy
// first-fit fallback.
const GreedyEngine = "search+greedy"

// GreedyFirstFit synthesizes the first feasible plan the DFS encounters,
// without optimizing: module→pin candidates, paths and sets are still
// tried in the deterministic shortest-first order, but the search stops
// at the first feasible leaf. The returned plan satisfies every
// feasibility rule (it is produced by the same placement machinery as
// the exact search, so it passes contam.Verify) and is tagged
// Degraded with Proven == false.
//
// Because branch & bound never prunes before an incumbent exists, an
// exhausted tree here is a genuine infeasibility proof: GreedyFirstFit
// returns *spec.ErrNoSolution exactly when no plan exists.
func GreedyFirstFit(sp *spec.Spec, opts Options) (*spec.Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	sw, pt, err := sp.SharedTopology()
	if err != nil {
		return nil, err
	}
	return GreedyFirstFitOn(sp, sw, pt, opts)
}

// GreedyFirstFitOn is GreedyFirstFit on a prebuilt switch and path table.
func GreedyFirstFitOn(sp *spec.Spec, sw *topo.Switch, pt *topo.PathTable, opts Options) (*spec.Result, error) {
	if err := matchTopology(sp, sw); err != nil {
		return nil, err
	}
	s := newSolver(sp, sw, pt, opts)
	s.stopAtFirst = true
	res, err := s.run()
	if err != nil {
		return nil, err
	}
	res.Engine = GreedyEngine
	return res, nil
}

// greedyOn runs the deadline-fallback flavor of the first-fit search: a
// fresh solver with its own budget, deliberately detached from the
// caller's already-expired deadline and context.
func greedyOn(sp *spec.Spec, sw *topo.Switch, pt *topo.PathTable, opts Options, budget time.Duration) (*spec.Result, error) {
	gopts := Options{
		TimeLimit:               budget,
		GreedyBudget:            -1, // the fallback has no fallback
		DisableSymmetryBreaking: opts.DisableSymmetryBreaking,
	}
	return GreedyFirstFitOn(sp, sw, pt, gopts)
}
