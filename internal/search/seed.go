package search

import (
	"sync/atomic"

	"switchsynth/internal/contam"
	"switchsynth/internal/spec"
)

// Seed adoption telemetry: how many external seeds (Options.SeedIncumbent)
// were validated and installed as starting incumbents, and how many were
// rejected as stale, infeasible, or mismatched. Rejection is never fatal —
// the solve simply starts cold — but a nonzero rejected count means the
// similarity index handed out plans that no longer verify.
var (
	seedAdopted  atomic.Int64
	seedRejected atomic.Int64
)

// SeedCounters returns the process-lifetime seed adoption counters.
func SeedCounters() (adopted, rejected int64) {
	return seedAdopted.Load(), seedRejected.Load()
}

// adoptSeed validates Options.SeedIncumbent against the solver's spec and,
// if it survives, returns it as an incumbent ready to install. The seed is
// never trusted: flows are re-indexed onto this spec by (From, To) — legal
// because the outlet-once rule makes To unique per flow — the pin binding
// is rebuilt by module name, sets are renumbered, length and objective are
// recomputed from this solver's switch geometry, and the reconstructed plan
// must pass the full contamination verifier. A recomputed objective that
// drifts from the seed's recorded one beyond float tolerance marks the
// seed stale (it was computed against different geometry or a mutated
// plan) and rejects it. Any failure increments the rejected counter and
// returns nil.
func (s *solver) adoptSeed() *incumbent {
	inc := s.buildSeedIncumbent()
	if inc == nil {
		seedRejected.Add(1)
		return nil
	}
	seedAdopted.Add(1)
	return inc
}

func (s *solver) buildSeedIncumbent() *incumbent {
	seed := s.opts.SeedIncumbent
	if seed == nil || seed.Spec == nil {
		return nil
	}
	// The seed must come from the same substrate: equal port counts are
	// not enough, since an FPVA grid can expose the same port count as a
	// crossbar (2×2 → 8), and its paths would reference foreign geometry.
	if seed.Spec.SwitchPins != s.sp.SwitchPins ||
		seed.Spec.IsFPVA() != s.sp.IsFPVA() ||
		seed.Spec.GridRows != s.sp.GridRows || seed.Spec.GridCols != s.sp.GridCols {
		return nil
	}
	nFlows := len(s.sp.Flows)
	if len(seed.Routes) == 0 || len(seed.Routes) != nFlows {
		return nil
	}

	// Re-index seed routes onto this spec's flow order. The outlet-once
	// rule guarantees To is unique per flow, so (From, To) → index is a
	// bijection when the flow sets match.
	byTo := make(map[string]int, nFlows)
	for fi, f := range s.sp.Flows {
		byTo[f.To] = fi
	}
	routes := make([]spec.Route, nFlows)
	covered := make([]bool, nFlows)
	for _, rt := range seed.Routes {
		if rt.Flow < 0 || rt.Flow >= len(seed.Spec.Flows) || rt.Set < 0 {
			return nil
		}
		sf := seed.Spec.Flows[rt.Flow]
		fi, ok := byTo[sf.To]
		if !ok || s.sp.Flows[fi].From != sf.From || covered[fi] {
			return nil
		}
		covered[fi] = true
		routes[fi] = spec.Route{Flow: fi, Set: rt.Set, Path: rt.Path}
	}

	// Rebuild the pin binding by module name; every module of this spec
	// must be bound in the seed. Pin validity, distinctness, fixed-pin
	// agreement, and clockwise winding are all checked by the verifier.
	pinOf := make([]int, len(s.sp.Modules))
	pins := make(map[string]int, len(s.sp.Modules))
	for mi, name := range s.sp.Modules {
		p, ok := seed.PinOf[name]
		if !ok {
			return nil
		}
		pinOf[mi] = p
		pins[name] = p
	}

	// Recompute every derived quantity from this solver's geometry; the
	// seed's own numbers are only consulted for the staleness check.
	var edges = routes[0].Path.EdgeMask
	for _, rt := range routes[1:] {
		edges = edges.Or(rt.Path.EdgeMask)
	}
	res := &spec.Result{
		Spec:         s.sp,
		Switch:       s.sw,
		PinOf:        pins,
		Routes:       routes,
		UsedEdgeMask: edges,
	}
	renumberSets(res)
	if res.NumSets > s.maxSets {
		return nil
	}
	res.Length = s.edgeMaskLen(edges)
	cost := s.alpha*float64(res.NumSets) + s.beta*res.Length
	res.Objective = cost
	if diff := cost - seed.Objective; diff > 1e-6 || diff < -1e-6 {
		return nil // stale: recorded objective disagrees with the plan
	}
	if err := contam.Verify(res); err != nil {
		return nil
	}
	return &incumbent{
		routes: routes,
		pinOf:  pinOf,
		cost:   cost,
		sets:   res.NumSets,
		length: res.Length,
		edges:  edges,
	}
}
