package search

import (
	"errors"
	"math"
	"testing"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/geom"
	"switchsynth/internal/spec"
)

func mustSolve(t *testing.T, sp *spec.Spec) *spec.Result {
	t.Helper()
	res, err := Solve(sp, Options{})
	if err != nil {
		t.Fatalf("Solve(%s): %v", sp.Name, err)
	}
	if err := contam.Verify(res); err != nil {
		t.Fatalf("Verify(%s): %v", sp.Name, err)
	}
	return res
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSingleFlowUnfixedOptimal(t *testing.T) {
	sp := &spec.Spec{
		Name:       "single",
		SwitchPins: 8,
		Modules:    []string{"in", "out"},
		Flows:      []spec.Flow{{From: "in", To: "out"}},
		Binding:    spec.Unfixed,
	}
	res := mustSolve(t, sp)
	// Optimal: adjacent pins, one grid edge between their border nodes.
	want := 2*geom.PinStubLength + geom.GridPitch
	if !approx(res.Length, want) {
		t.Errorf("Length = %v, want %v", res.Length, want)
	}
	if res.NumSets != 1 {
		t.Errorf("NumSets = %d, want 1", res.NumSets)
	}
	if !res.Proven {
		t.Error("optimum not proven")
	}
	if !approx(res.Objective, sp.EffectiveAlpha()*1+sp.EffectiveBeta()*want) {
		t.Errorf("Objective = %v", res.Objective)
	}
}

func TestFixedBindingAdjacentPins(t *testing.T) {
	sp := &spec.Spec{
		Name:       "fixed-adj",
		SwitchPins: 8,
		Modules:    []string{"in", "out"},
		Flows:      []spec.Flow{{From: "in", To: "out"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"in": 0, "out": 1}, // T1 → T2
	}
	res := mustSolve(t, sp)
	want := 2*geom.PinStubLength + geom.GridPitch
	if !approx(res.Length, want) {
		t.Errorf("Length = %v, want %v", res.Length, want)
	}
	if res.PinOf["in"] != 0 || res.PinOf["out"] != 1 {
		t.Errorf("binding not respected: %v", res.PinOf)
	}
}

func TestFixedBindingOppositeCorners(t *testing.T) {
	sp := &spec.Spec{
		Name:       "fixed-corner",
		SwitchPins: 8,
		Modules:    []string{"in", "out"},
		Flows:      []spec.Flow{{From: "in", To: "out"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"in": 0, "out": 4}, // T1 (TL) → B2 (BR)
	}
	res := mustSolve(t, sp)
	want := 2*geom.PinStubLength + 4*geom.GridPitch
	if !approx(res.Length, want) {
		t.Errorf("Length = %v, want %v", res.Length, want)
	}
}

func TestConflictingFlowsAreNodeDisjoint(t *testing.T) {
	sp := &spec.Spec{
		Name:       "conflict",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Unfixed,
	}
	res := mustSolve(t, sp)
	p0, p1 := res.Routes[0].Path, res.Routes[1].Path
	if p0.VertMask.Intersects(p1.VertMask) {
		t.Error("conflicting flows share a node")
	}
	if p0.EdgeMask.Intersects(p1.EdgeMask) {
		t.Error("conflicting flows share a segment")
	}
}

func TestFixedBindingNoSolutionWithConflicts(t *testing.T) {
	// in1@T1 → out1@R1 has the unique shortest path T1-TL-T-TR-R1. A
	// conflicting flow from in2@T2 must start at node T, which that path
	// occupies: provably no solution.
	sp := &spec.Spec{
		Name:       "fixed-nosol",
		SwitchPins: 8,
		Modules:    []string{"in1", "in2", "out1", "out2"},
		Flows:      []spec.Flow{{From: "in1", To: "out1"}, {From: "in2", To: "out2"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"in1": 0, "out1": 2, "in2": 1, "out2": 3},
	}
	_, err := Solve(sp, Options{})
	var nosol *spec.ErrNoSolution
	if !errors.As(err, &nosol) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
	// The same case is solvable under the unfixed policy.
	sp2 := *sp
	sp2.Name = "unfixed-sol"
	sp2.Binding = spec.Unfixed
	sp2.FixedPins = nil
	mustSolve(t, &sp2)
}

func TestSchedulingSplitsCollidingInlets(t *testing.T) {
	// Force two flows from different inlets through the centre by capping
	// the switch at 8 pins and pinning all four modules to opposite sides:
	// T2 (node T) → B1 (node B) and L1 (node L) → R2 (node R). Every
	// shortest path T→B or L→R passes node C, so with one set this is
	// infeasible, with two sets it works.
	base := spec.Spec{
		Name:       "collide",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"a": 1, "x": 5, "b": 7, "y": 3},
	}
	one := base
	one.MaxSets = 1
	if _, err := Solve(&one, Options{}); err == nil {
		t.Fatal("one set should be infeasible for crossing flows")
	}
	two := base
	res := mustSolve(t, &two)
	if res.NumSets != 2 {
		t.Errorf("NumSets = %d, want 2", res.NumSets)
	}
}

func TestBranchingFromSameInletSharesSet(t *testing.T) {
	// Flows from one inlet may share segments in one set.
	sp := &spec.Spec{
		Name:       "branch",
		SwitchPins: 8,
		Modules:    []string{"in", "o1", "o2", "o3"},
		Flows: []spec.Flow{
			{From: "in", To: "o1"},
			{From: "in", To: "o2"},
			{From: "in", To: "o3"},
		},
		Binding: spec.Unfixed,
	}
	res := mustSolve(t, sp)
	if res.NumSets != 1 {
		t.Errorf("NumSets = %d, want 1 (branching from one inlet)", res.NumSets)
	}
}

func TestClockwiseBindingRespectsOrder(t *testing.T) {
	sp := &spec.Spec{
		Name:       "cw",
		SwitchPins: 12,
		Modules:    []string{"m1", "m2", "m3", "m4"},
		Flows: []spec.Flow{
			{From: "m1", To: "m2"},
			{From: "m3", To: "m4"},
		},
		Binding: spec.Clockwise,
	}
	res := mustSolve(t, sp) // Verify() checks the cyclic order
	if len(res.PinOf) != 4 {
		t.Errorf("PinOf = %v", res.PinOf)
	}
}

func TestClockwiseMatchesUnfixedWhenOrderIsFree(t *testing.T) {
	// With two modules any binding is cyclically ordered, so clockwise and
	// unfixed must find the same optimum.
	mk := func(b spec.BindingPolicy) *spec.Spec {
		return &spec.Spec{
			Name:       "cw-vs-unfixed",
			SwitchPins: 8,
			Modules:    []string{"in", "out"},
			Flows:      []spec.Flow{{From: "in", To: "out"}},
			Binding:    b,
		}
	}
	r1 := mustSolve(t, mk(spec.Clockwise))
	r2 := mustSolve(t, mk(spec.Unfixed))
	if !approx(r1.Objective, r2.Objective) {
		t.Errorf("clockwise obj %v != unfixed obj %v", r1.Objective, r2.Objective)
	}
}

func TestDeterminism(t *testing.T) {
	sp := &spec.Spec{
		Name:       "det",
		SwitchPins: 12,
		Modules:    []string{"a", "b", "x", "y", "z"},
		Flows: []spec.Flow{
			{From: "a", To: "x"},
			{From: "a", To: "y"},
			{From: "b", To: "z"},
		},
		Conflicts: [][2]int{{0, 2}},
		Binding:   spec.Unfixed,
	}
	r1 := mustSolve(t, sp)
	r2 := mustSolve(t, sp)
	if !approx(r1.Objective, r2.Objective) || r1.NumSets != r2.NumSets {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", r1.Objective, r1.NumSets, r2.Objective, r2.NumSets)
	}
	for m, p := range r1.PinOf {
		if r2.PinOf[m] != p {
			t.Errorf("binding differs for %s: %d vs %d", m, p, r2.PinOf[m])
		}
	}
	for i := range r1.Routes {
		if r1.Routes[i].Set != r2.Routes[i].Set ||
			r1.Routes[i].Path.VertMask != r2.Routes[i].Path.VertMask {
			t.Errorf("route %d differs", i)
		}
	}
}

func TestSymmetryBreakingPreservesOptimum(t *testing.T) {
	sp := &spec.Spec{
		Name:       "sym",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Unfixed,
	}
	withCut := mustSolve(t, sp)
	noCut, err := Solve(sp, Options{DisableSymmetryBreaking: true})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(withCut.Objective, noCut.Objective) {
		t.Errorf("symmetry cut changed optimum: %v vs %v", withCut.Objective, noCut.Objective)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	sp := &spec.Spec{Name: "bad", SwitchPins: 9}
	if _, err := Solve(sp, Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestTimeoutReturnsQuickly(t *testing.T) {
	sp := &spec.Spec{
		Name:       "big",
		SwitchPins: 16,
		Modules:    []string{"a", "b", "c", "o1", "o2", "o3", "o4", "o5", "o6", "o7", "o8", "o9"},
		Flows: []spec.Flow{
			{From: "a", To: "o1"}, {From: "a", To: "o2"}, {From: "a", To: "o3"},
			{From: "b", To: "o4"}, {From: "b", To: "o5"}, {From: "b", To: "o6"},
			{From: "c", To: "o7"}, {From: "c", To: "o8"}, {From: "c", To: "o9"},
		},
		Binding: spec.Unfixed,
	}
	start := time.Now()
	res, err := Solve(sp, Options{TimeLimit: 150 * time.Millisecond})
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("timeout ignored: %v", el)
	}
	if err == nil {
		if res.Proven {
			// A genuine fast proof is fine; otherwise Proven must be false.
			return
		}
		if verr := contam.Verify(res); verr != nil {
			t.Errorf("unproven incumbent invalid: %v", verr)
		}
		return
	}
	var to *ErrTimeout
	if !errors.As(err, &to) {
		t.Errorf("err = %v, want ErrTimeout or incumbent", err)
	}
}

func TestLengthIsUnionOfUsedChannels(t *testing.T) {
	// Two flows from the same inlet sharing a stub: length counts the stub
	// once (the application-specific switch keeps each segment once).
	sp := &spec.Spec{
		Name:       "union",
		SwitchPins: 8,
		Modules:    []string{"in", "o1", "o2"},
		Flows:      []spec.Flow{{From: "in", To: "o1"}, {From: "in", To: "o2"}},
		Binding:    spec.Unfixed,
	}
	res := mustSolve(t, sp)
	var sum float64
	for _, rt := range res.Routes {
		sum += rt.Path.Length
	}
	if res.Length >= sum {
		t.Errorf("union length %v should be below path-length sum %v (shared inlet stub)", res.Length, sum)
	}
}

func TestTwelveAndSixteenPinSolvable(t *testing.T) {
	for _, pins := range []int{12, 16} {
		sp := &spec.Spec{
			Name:       "size",
			SwitchPins: pins,
			Modules:    []string{"a", "b", "x", "y"},
			Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
			Conflicts:  [][2]int{{0, 1}},
			Binding:    spec.Unfixed,
		}
		res := mustSolve(t, sp)
		if res.NumSets < 1 || res.Length <= 0 {
			t.Errorf("%d-pin: degenerate result %+v", pins, res)
		}
	}
}

func TestLargeSwitchSizesSolvable(t *testing.T) {
	// 20- and 24-pin switches (the future-work sizes enabled by the
	// multi-word masks) synthesize small workloads end to end.
	for _, pins := range []int{20, 24} {
		sp := &spec.Spec{
			Name:       "large",
			SwitchPins: pins,
			Modules:    []string{"a", "b", "x", "y"},
			Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
			Conflicts:  [][2]int{{0, 1}},
			Binding:    spec.Unfixed,
		}
		res, err := Solve(sp, Options{TimeLimit: 30 * time.Second})
		if err != nil {
			t.Fatalf("%d-pin: %v", pins, err)
		}
		if err := contam.Verify(res); err != nil {
			t.Fatalf("%d-pin: %v", pins, err)
		}
	}
}
