package search

import (
	"context"
	"errors"
	"testing"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/spec"
)

// anytimeSpec is a 16-pin instance big enough that a millisecond budget
// cannot prove optimality but small enough that greedy first-fit is
// instant.
func anytimeSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "anytime",
		SwitchPins: 16,
		Modules:    []string{"a", "b", "c", "o1", "o2", "o3", "o4", "o5", "o6", "o7", "o8", "o9"},
		Flows: []spec.Flow{
			{From: "a", To: "o1"}, {From: "a", To: "o2"}, {From: "a", To: "o3"},
			{From: "b", To: "o4"}, {From: "b", To: "o5"}, {From: "b", To: "o6"},
			{From: "c", To: "o7"}, {From: "c", To: "o8"}, {From: "c", To: "o9"},
		},
		Binding: spec.Unfixed,
	}
}

func TestAnytimeDegradedUnderTinyLimit(t *testing.T) {
	res, err := Solve(anytimeSpec(), Options{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatalf("anytime contract violated: err = %v, want a degraded plan", err)
	}
	if res.Proven {
		return // genuinely proved inside 1ms; nothing degraded to check
	}
	if !res.Degraded {
		t.Error("unproven plan not tagged Degraded")
	}
	if verr := contam.Verify(res); verr != nil {
		t.Errorf("degraded plan failed verification: %v", verr)
	}
	if res.LowerBound <= 0 || res.LowerBound > res.Objective+1e-9 {
		t.Errorf("LowerBound = %v, want in (0, %v]", res.LowerBound, res.Objective)
	}
	if res.Gap < 0 || res.Gap > 1 {
		t.Errorf("Gap = %v, want in [0, 1]", res.Gap)
	}
}

func TestAnytimeProvenPlanHasZeroGap(t *testing.T) {
	sp := &spec.Spec{
		Name:       "anytime-proven",
		SwitchPins: 8,
		Modules:    []string{"in", "o1", "o2"},
		Flows:      []spec.Flow{{From: "in", To: "o1"}, {From: "in", To: "o2"}},
		Binding:    spec.Unfixed,
	}
	res, err := Solve(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || res.Degraded {
		t.Fatalf("Proven = %v, Degraded = %v, want proven", res.Proven, res.Degraded)
	}
	if res.LowerBound != res.Objective || res.Gap != 0 {
		t.Errorf("proven plan: LowerBound = %v (objective %v), Gap = %v", res.LowerBound, res.Objective, res.Gap)
	}
}

func TestCancelledContextSkipsGreedyFallback(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	res, err := Solve(hardSpec(), Options{Ctx: ctx})
	if err == nil {
		if res.Proven {
			return // solved before the cancel landed
		}
		if !res.Degraded {
			t.Error("unproven incumbent not tagged Degraded")
		}
		return
	}
	// No incumbent: cancellation must surface as ErrTimeout without a
	// greedy plan (the caller no longer wants any result).
	if !errors.Is(err, &ErrTimeout{}) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want *ErrTimeout wrapping context.Canceled", err)
	}
}

func TestGreedyFirstFitFeasible(t *testing.T) {
	res, err := GreedyFirstFit(anytimeSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven || !res.Degraded {
		t.Errorf("Proven = %v, Degraded = %v, want unproven degraded", res.Proven, res.Degraded)
	}
	if res.Engine != GreedyEngine {
		t.Errorf("Engine = %q, want %q", res.Engine, GreedyEngine)
	}
	if verr := contam.Verify(res); verr != nil {
		t.Errorf("greedy plan failed verification: %v", verr)
	}
	if res.Gap < 0 || res.Gap > 1 {
		t.Errorf("Gap = %v, want in [0, 1]", res.Gap)
	}
}

func TestGreedyFirstFitProvesInfeasibility(t *testing.T) {
	sp := &spec.Spec{
		Name:       "greedy-nosol",
		SwitchPins: 8,
		Modules:    []string{"in1", "in2", "out1", "out2"},
		Flows:      []spec.Flow{{From: "in1", To: "out1"}, {From: "in2", To: "out2"}},
		Conflicts:  [][2]int{{0, 1}},
		Binding:    spec.Fixed,
		FixedPins:  map[string]int{"in1": 0, "out1": 2, "in2": 1, "out2": 3},
	}
	_, err := GreedyFirstFit(sp, Options{})
	var nosol *spec.ErrNoSolution
	if !errors.As(err, &nosol) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
}

func TestGreedyFallbackOnExpiredDeadline(t *testing.T) {
	// A deadline that expires immediately leaves no time to find an
	// incumbent; the greedy fallback must still produce a verified plan.
	res, err := Solve(anytimeSpec(), Options{TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatalf("err = %v, want a greedy fallback plan", err)
	}
	if !res.Degraded {
		t.Error("fallback plan not tagged Degraded")
	}
	if verr := contam.Verify(res); verr != nil {
		t.Errorf("fallback plan failed verification: %v", verr)
	}
}

func TestGreedyFallbackDisabled(t *testing.T) {
	_, err := Solve(anytimeSpec(), Options{TimeLimit: time.Nanosecond, GreedyBudget: -1})
	if err == nil {
		// An incumbent can still sneak in before the first deadline check.
		return
	}
	if !errors.Is(err, &ErrTimeout{}) {
		t.Fatalf("err = %v, want *ErrTimeout with fallback disabled", err)
	}
}
