package search

import (
	"sync"
	"testing"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/spec"
)

// TestOnIncumbentSequentialPublishesImprovingPlans checks the streaming
// hook's sequential contract: every published snapshot is a verified,
// degraded plan with bound metadata, objectives strictly improve, and
// the last snapshot is the plan the solve finally returns.
func TestOnIncumbentSequentialPublishesImprovingPlans(t *testing.T) {
	var frames []*spec.Result
	res, err := Solve(anytimeSpec(), Options{
		TimeLimit:   200 * time.Millisecond,
		OnIncumbent: func(r *spec.Result) { frames = append(frames, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no incumbents published for a solve that returned a plan")
	}
	prev := inf
	for i, f := range frames {
		if !f.Degraded || f.Proven {
			t.Errorf("frame %d: Degraded = %v, Proven = %v, want degraded snapshot", i, f.Degraded, f.Proven)
		}
		if f.Objective >= prev {
			t.Errorf("frame %d: objective %v did not improve on %v", i, f.Objective, prev)
		}
		prev = f.Objective
		if f.LowerBound <= 0 || f.LowerBound > f.Objective+eps {
			t.Errorf("frame %d: LowerBound = %v, want in (0, %v]", i, f.LowerBound, f.Objective)
		}
		if f.Gap < 0 || f.Gap > 1 {
			t.Errorf("frame %d: Gap = %v, want in [0, 1]", i, f.Gap)
		}
		if verr := contam.Verify(f); verr != nil {
			t.Errorf("frame %d failed verification: %v", i, verr)
		}
	}
	last := frames[len(frames)-1]
	if last.Objective != res.Objective {
		t.Errorf("last frame objective = %v, final result = %v", last.Objective, res.Objective)
	}
	if len(last.Routes) != len(res.Routes) {
		t.Fatalf("last frame has %d routes, final result %d", len(last.Routes), len(res.Routes))
	}
	for i := range res.Routes {
		lf, rf := last.Routes[i], res.Routes[i]
		if lf.Flow != rf.Flow || lf.Set != rf.Set || lf.Path.Length != rf.Path.Length {
			t.Errorf("route %d differs between last frame and final result", i)
		}
	}
}

// TestOnIncumbentParallelConcurrencySafe checks the parallel contract:
// the hook fires from worker goroutines (race detector covers the
// safety), frames may arrive out of objective order, but the best frame
// matches the final plan and every frame verifies.
func TestOnIncumbentParallelConcurrencySafe(t *testing.T) {
	var mu sync.Mutex
	var frames []*spec.Result
	res, err := Solve(anytimeSpec(), Options{
		TimeLimit: 200 * time.Millisecond,
		Workers:   4,
		OnIncumbent: func(r *spec.Result) {
			mu.Lock()
			frames = append(frames, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(frames) == 0 {
		t.Fatal("no incumbents published for a parallel solve that returned a plan")
	}
	best := inf
	for i, f := range frames {
		if f.Objective < best {
			best = f.Objective
		}
		if verr := contam.Verify(f); verr != nil {
			t.Errorf("frame %d failed verification: %v", i, verr)
		}
	}
	if best != res.Objective {
		t.Errorf("best published objective = %v, final result = %v", best, res.Objective)
	}
}

// TestOnIncumbentGreedyModesNeverPublish pins that the first-fit mode
// and the deadline greedy fallback do not stream: their plans are
// one-shot degraded results, not refinement sequences.
func TestOnIncumbentGreedyModesNeverPublish(t *testing.T) {
	var calls int
	if _, err := GreedyFirstFit(anytimeSpec(), Options{
		OnIncumbent: func(*spec.Result) { calls++ },
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("greedy first-fit published %d incumbents, want 0", calls)
	}
}
