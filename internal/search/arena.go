package search

import (
	"sync"

	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// arena is the pooled backing storage for one solver's mutable state.
// Solvers are short-lived and allocate the same slice shapes on every
// call (and, on the parallel driver, once per worker), so recycling the
// buffers through a sync.Pool removes the dominant per-solve allocations.
//
// An arena is bound to exactly one solver at a time. Results never alias
// arena memory — incumbents are snapshotted into fresh slices — so
// releasing the arena after finish() is safe.
type arena struct {
	pinOf    []int
	modOf    []int
	setCount []int
	stubEdge []int
	order    []int
	seenGen  []int64

	// owner is a maxSets × numVertices matrix carved out of one flat
	// backing slice so the pool recycles a single allocation.
	ownerFlat []int
	owner     [][]int

	routes   []spec.Route
	assigned []bool
	vmask    []topo.Bits

	candBuf [][]cand
	inPins  [][]int
	outPins [][]int
	cwBuf   []cwBound

	// replay backs the parallel driver's prefix replay (see runUnit).
	replay []replayFrame
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

func acquireArena() *arena { return arenaPool.Get().(*arena) }

// releaseArena drops the pointer-bearing contents (routes hold path
// slices) and returns the arena to the pool.
func releaseArena(a *arena) {
	clearSlice(a.routes)
	clearSlice(a.replay)
	arenaPool.Put(a)
}

// bind sizes the arena for one solve and points the solver's state at it.
// Every buffer is reset to its initial value; capacity is retained across
// solves.
func (a *arena) bind(s *solver, nModules, nFlows, numPins, maxSets, numVerts int) {
	a.pinOf = resetInts(a.pinOf, nModules, -1)
	a.modOf = resetInts(a.modOf, numPins, -1)
	a.setCount = resetInts(a.setCount, maxSets, 0)
	a.stubEdge = grown(a.stubEdge, numPins)
	a.order = grown(a.order, nFlows)
	a.seenGen = grown(a.seenGen, nModules)
	for i := range a.seenGen {
		a.seenGen[i] = 0
	}

	a.ownerFlat = resetInts(a.ownerFlat, maxSets*numVerts, -1)
	a.owner = grown(a.owner, maxSets)
	for i := range a.owner {
		a.owner[i] = a.ownerFlat[i*numVerts : (i+1)*numVerts]
	}

	a.routes = grown(a.routes, nFlows)
	clearSlice(a.routes)
	a.assigned = grown(a.assigned, nFlows)
	for i := range a.assigned {
		a.assigned[i] = false
	}
	a.vmask = grown(a.vmask, nFlows)
	clearSlice(a.vmask)

	// Per-depth scratch: keep inner capacities, they rebuild via [:0].
	a.candBuf = grown(a.candBuf, nFlows)
	a.inPins = grown(a.inPins, nFlows)
	a.outPins = grown(a.outPins, nFlows)

	s.pinOf = a.pinOf
	s.modOf = a.modOf
	s.setCount = a.setCount
	s.stubEdge = a.stubEdge
	s.order = a.order
	s.seenGen = a.seenGen
	s.owner = a.owner
	s.routes = a.routes
	s.assigned = a.assigned
	s.vmask = a.vmask
	s.candBuf = a.candBuf
	s.inPins = a.inPins
	s.outPins = a.outPins
	s.cwBuf = a.cwBuf[:0]
}

// grown returns buf resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func grown[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

func resetInts(buf []int, n, fill int) []int {
	buf = grown(buf, n)
	for i := range buf {
		buf[i] = fill
	}
	return buf
}

func clearSlice[T any](buf []T) {
	var zero T
	for i := range buf {
		buf[i] = zero
	}
}
