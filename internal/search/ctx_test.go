package search

import (
	"context"
	"errors"
	"testing"
	"time"

	"switchsynth/internal/spec"
)

// hardSpec is large enough that the solver cannot finish before noticing
// a cancelled context.
func hardSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "ctx-hard",
		SwitchPins: 24,
		Modules:    []string{"a", "b", "c", "d", "s1", "s2", "s3", "s4", "s5", "s6"},
		Flows: []spec.Flow{
			{From: "a", To: "s1"}, {From: "b", To: "s2"},
			{From: "c", To: "s3"}, {From: "d", To: "s4"},
			{From: "a", To: "s5"}, {From: "b", To: "s6"},
		},
		Conflicts: [][2]int{{0, 1}, {2, 3}, {4, 5}, {0, 5}, {1, 2}},
		Binding:   spec.Unfixed,
	}
}

func TestSolveContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead on entry
	_, err := Solve(hardSpec(), Options{Ctx: ctx})
	var te *ErrTimeout
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *ErrTimeout", err)
	}
	if te.SpecName != "ctx-hard" {
		t.Errorf("SpecName = %q", te.SpecName)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause %v does not unwrap to context.Canceled", te.Cause)
	}
}

func TestSolveContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Solve(hardSpec(), Options{Ctx: ctx})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("solver ignored context deadline (%v)", elapsed)
	}
	if err != nil && !errors.Is(err, &ErrTimeout{}) {
		t.Fatalf("err = %v, want nil or *ErrTimeout", err)
	}
}

func TestErrTimeoutErgonomics(t *testing.T) {
	base := &ErrTimeout{SpecName: "x", Cause: context.DeadlineExceeded}

	// Is matches any *ErrTimeout, regardless of field values.
	if !errors.Is(base, &ErrTimeout{}) {
		t.Error("Is does not match the zero *ErrTimeout sentinel")
	}
	wrapped := errorsJoinLike(base)
	if !errors.Is(wrapped, &ErrTimeout{}) {
		t.Error("Is fails through wrapping")
	}

	// As extracts the typed error through wrapping.
	var te *ErrTimeout
	if !errors.As(wrapped, &te) || te.SpecName != "x" {
		t.Errorf("As extracted %+v", te)
	}

	// Unwrap surfaces the cause; a nil cause defaults to deadline-exceeded
	// so errors.Is(err, context.DeadlineExceeded) always works.
	if !errors.Is(base, context.DeadlineExceeded) {
		t.Error("cause not reachable via Is")
	}
	bare := &ErrTimeout{SpecName: "y"}
	if !errors.Is(bare, context.DeadlineExceeded) {
		t.Error("nil cause does not default to context.DeadlineExceeded")
	}
	cancelled := &ErrTimeout{SpecName: "z", Cause: context.Canceled}
	if !errors.Is(cancelled, context.Canceled) || errors.Is(cancelled, context.DeadlineExceeded) {
		t.Error("explicit cause not honored")
	}

	// ErrTimeout is not mistaken for other error types.
	if errors.Is(errors.New("plain"), &ErrTimeout{}) {
		t.Error("plain error matched *ErrTimeout")
	}
}

// errorsJoinLike wraps err one level the way callers typically do.
func errorsJoinLike(err error) error {
	return &wrapErr{err}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }
