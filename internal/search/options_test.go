package search

import (
	"context"
	"errors"
	"testing"
	"time"

	"switchsynth/internal/spec"
)

func TestGreedyBudgetResolution(t *testing.T) {
	tests := []struct {
		name string
		in   time.Duration
		want time.Duration
	}{
		{"zero means default", 0, DefaultGreedyBudget},
		{"negative disables", -1, 0},
		{"very negative disables", -5 * time.Second, 0},
		{"positive passes through", 42 * time.Millisecond, 42 * time.Millisecond},
		{"sub-millisecond passes through", 10 * time.Microsecond, 10 * time.Microsecond},
	}
	for _, tc := range tests {
		if got := (Options{GreedyBudget: tc.in}).greedyBudget(); got != tc.want {
			t.Errorf("%s: greedyBudget(%v) = %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestRenumberSetsEdgeCases(t *testing.T) {
	// Zero flows: nothing to renumber, zero sets.
	empty := &spec.Result{NumSets: 7}
	renumberSets(empty)
	if empty.NumSets != 0 {
		t.Errorf("zero flows: NumSets = %d, want 0", empty.NumSets)
	}

	// Single set with a gappy index compacts to 0.
	single := &spec.Result{Routes: []spec.Route{
		{Flow: 0, Set: 5}, {Flow: 1, Set: 5}, {Flow: 2, Set: 5},
	}}
	renumberSets(single)
	for i, r := range single.Routes {
		if r.Set != 0 {
			t.Errorf("single set: route %d set = %d, want 0", i, r.Set)
		}
	}
	if single.NumSets != 1 {
		t.Errorf("single set: NumSets = %d, want 1", single.NumSets)
	}

	// Sets renumber in first-use order by flow, not by old index.
	gappy := &spec.Result{Routes: []spec.Route{
		{Flow: 0, Set: 9}, {Flow: 1, Set: 2}, {Flow: 2, Set: 9}, {Flow: 3, Set: 4},
	}}
	renumberSets(gappy)
	want := []int{0, 1, 0, 2}
	for i, r := range gappy.Routes {
		if r.Set != want[i] {
			t.Errorf("gappy: route %d set = %d, want %d", i, r.Set, want[i])
		}
	}
	if gappy.NumSets != 3 {
		t.Errorf("gappy: NumSets = %d, want 3", gappy.NumSets)
	}
}

// fallbackSpec is a saturated 16-pin instance (a module on every pin)
// whose first feasible leaf sits thousands of nodes deep: an immediately
// expired deadline is guaranteed to fire before any incumbent exists,
// forcing the greedy-fallback decision.
func fallbackSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "fallback-sat16",
		SwitchPins: 16,
		Modules: []string{
			"a", "b", "c", "d",
			"o1", "o2", "o3", "o4", "o5", "o6", "o7", "o8", "o9", "o10", "o11", "o12",
		},
		Flows: []spec.Flow{
			{From: "a", To: "o1"}, {From: "a", To: "o2"}, {From: "a", To: "o3"},
			{From: "b", To: "o4"}, {From: "b", To: "o5"}, {From: "b", To: "o6"},
			{From: "c", To: "o7"}, {From: "c", To: "o8"}, {From: "c", To: "o9"},
			{From: "d", To: "o10"}, {From: "d", To: "o11"}, {From: "d", To: "o12"},
		},
		Conflicts: [][2]int{
			{0, 3}, {1, 4}, {2, 5}, {3, 6}, {4, 7}, {5, 8}, {6, 9}, {7, 10}, {8, 11},
			{0, 9}, {1, 10}, {2, 11}, {0, 6}, {3, 9}, {1, 7}, {4, 10},
		},
		Binding: spec.Unfixed,
	}
}

// TestExpiredDeadlineFallbackDisabled: a deadline that expires before
// any incumbent, with the fallback disabled, must surface ErrTimeout
// wrapping context.DeadlineExceeded.
func TestExpiredDeadlineFallbackDisabled(t *testing.T) {
	_, err := Solve(fallbackSpec(), Options{TimeLimit: time.Nanosecond, GreedyBudget: -1})
	var te *ErrTimeout
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause %v, want context.DeadlineExceeded", te.Cause)
	}
}

// TestExpiredDeadlineGreedyFallback: same expired deadline, fallback
// enabled: the anytime contract degrades to a greedy first-fit plan.
func TestExpiredDeadlineGreedyFallback(t *testing.T) {
	res, err := Solve(fallbackSpec(), Options{TimeLimit: time.Nanosecond, GreedyBudget: 5 * time.Second})
	if err != nil {
		t.Fatalf("fallback did not rescue the expired deadline: %v", err)
	}
	if res.Engine != GreedyEngine {
		t.Errorf("Engine = %q, want %q", res.Engine, GreedyEngine)
	}
	if res.Proven || !res.Degraded {
		t.Errorf("Proven = %v, Degraded = %v, want unproven degraded", res.Proven, res.Degraded)
	}
}
