package search

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"switchsynth/internal/contam"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// parallelSpecs are the determinism corpus: every binding policy, with
// and without conflicts, trivial and branchy instances.
func parallelSpecs() []*spec.Spec {
	return []*spec.Spec{
		{
			Name:       "par-single",
			SwitchPins: 8,
			Modules:    []string{"in", "out"},
			Flows:      []spec.Flow{{From: "in", To: "out"}},
			Binding:    spec.Unfixed,
		},
		{
			Name:       "par-conflict",
			SwitchPins: 8,
			Modules:    []string{"a", "b", "x", "y"},
			Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
			Conflicts:  [][2]int{{0, 1}},
			Binding:    spec.Unfixed,
		},
		{
			Name:       "par-fixed",
			SwitchPins: 8,
			Modules:    []string{"in", "mid", "out"},
			Flows:      []spec.Flow{{From: "in", To: "mid"}, {From: "in", To: "out"}},
			Binding:    spec.Fixed,
			FixedPins:  map[string]int{"in": 0, "mid": 3, "out": 5},
		},
		{
			Name:       "par-clockwise",
			SwitchPins: 8,
			Modules:    []string{"a", "x", "b", "y"},
			Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
			Binding:    spec.Clockwise,
		},
		{
			Name:       "par-branchy",
			SwitchPins: 12,
			Modules:    []string{"a", "b", "o1", "o2", "o3", "o4"},
			Flows: []spec.Flow{
				{From: "a", To: "o1"}, {From: "a", To: "o2"},
				{From: "b", To: "o3"}, {From: "b", To: "o4"},
			},
			Conflicts: [][2]int{{0, 2}, {1, 3}},
			Binding:   spec.Unfixed,
		},
	}
}

// samePlan asserts bit-identical solver output: every field that the
// campaign report or a cache key could observe must match exactly —
// including float costs, which the determinism contract promises to the
// last bit.
func samePlan(t *testing.T, name string, want, got *spec.Result) {
	t.Helper()
	if want.Objective != got.Objective || want.Length != got.Length {
		t.Errorf("%s: objective/length diverged: (%v, %v) vs (%v, %v)",
			name, want.Objective, want.Length, got.Objective, got.Length)
	}
	if want.NumSets != got.NumSets || want.Proven != got.Proven || want.Engine != got.Engine {
		t.Errorf("%s: sets/proven/engine diverged: (%d,%v,%q) vs (%d,%v,%q)",
			name, want.NumSets, want.Proven, want.Engine, got.NumSets, got.Proven, got.Engine)
	}
	if want.UsedEdgeMask != got.UsedEdgeMask {
		t.Errorf("%s: used-edge masks diverged", name)
	}
	if len(want.PinOf) != len(got.PinOf) {
		t.Fatalf("%s: PinOf sizes diverged: %v vs %v", name, want.PinOf, got.PinOf)
	}
	for m, p := range want.PinOf {
		if got.PinOf[m] != p {
			t.Errorf("%s: module %q pin %d vs %d", name, m, p, got.PinOf[m])
		}
	}
	if len(want.Routes) != len(got.Routes) {
		t.Fatalf("%s: route counts diverged", name)
	}
	for i := range want.Routes {
		w, g := want.Routes[i], got.Routes[i]
		if w.Flow != g.Flow || w.Set != g.Set || !slices.Equal(w.Path.Verts, g.Path.Verts) {
			t.Errorf("%s: route %d diverged: %+v vs %+v", name, i, w, g)
		}
	}
}

// TestParallelMatchesSequential is the bit-determinism gate: for every
// corpus spec, every worker count must reproduce the sequential plan
// exactly — same pins, same routes, same sets, same floats.
func TestParallelMatchesSequential(t *testing.T) {
	for _, sp := range parallelSpecs() {
		seq, err := Solve(sp, Options{})
		if err != nil {
			t.Fatalf("%s sequential: %v", sp.Name, err)
		}
		if verr := contam.Verify(seq); verr != nil {
			t.Fatalf("%s sequential verify: %v", sp.Name, verr)
		}
		for _, workers := range []int{2, 3, 4, 8} {
			par, err := Solve(sp, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", sp.Name, workers, err)
			}
			if verr := contam.Verify(par); verr != nil {
				t.Fatalf("%s workers=%d verify: %v", sp.Name, workers, verr)
			}
			samePlan(t, sp.Name, seq, par)
		}
	}
}

// TestParallelTieBreakCanonical hammers a tie-rich instance (a single
// flow on a symmetric switch has many equal-cost optima) repeatedly: the
// (cost, unit) tie-break must always pick the sequential DFS's first
// optimal leaf no matter how the workers interleave.
func TestParallelTieBreakCanonical(t *testing.T) {
	sp := &spec.Spec{
		Name:       "par-ties",
		SwitchPins: 12,
		Modules:    []string{"a", "b", "x", "y"},
		Flows:      []spec.Flow{{From: "a", To: "x"}, {From: "b", To: "y"}},
		Binding:    spec.Unfixed,
	}
	seq, err := Solve(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		par, err := Solve(sp, Options{Workers: 4})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		samePlan(t, sp.Name, seq, par)
	}
}

// TestParallelAnytimeDegraded checks that the PR-2 anytime contract
// survives the parallel driver: a too-small deadline yields either a
// proven plan or a verified degraded one with sane bound metadata —
// never a bare error.
func TestParallelAnytimeDegraded(t *testing.T) {
	res, err := Solve(anytimeSpec(), Options{TimeLimit: 2 * time.Millisecond, Workers: 4})
	if err != nil {
		t.Fatalf("anytime contract violated under parallel driver: %v", err)
	}
	if res.Proven {
		return
	}
	if !res.Degraded {
		t.Error("unproven plan not tagged Degraded")
	}
	if verr := contam.Verify(res); verr != nil {
		t.Errorf("degraded plan failed verification: %v", verr)
	}
	if res.LowerBound <= 0 || res.LowerBound > res.Objective+1e-9 {
		t.Errorf("LowerBound = %v, want in (0, %v]", res.LowerBound, res.Objective)
	}
	if res.Gap < 0 || res.Gap > 1 {
		t.Errorf("Gap = %v, want in [0, 1]", res.Gap)
	}
}

// TestParallelCancelledContext: explicit cancellation must stop the
// whole pool. Like the sequential driver, the anytime contract allows a
// degraded incumbent if one was found before the workers noticed the
// cancel; otherwise the error must be ErrTimeout wrapping
// context.Canceled with no greedy fallback.
func TestParallelCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(hardSpec(), Options{Ctx: ctx, Workers: 4})
	if err == nil {
		if !res.Proven && !res.Degraded {
			t.Error("unproven incumbent not tagged Degraded")
		}
		return
	}
	if !errors.Is(err, &ErrTimeout{}) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want *ErrTimeout wrapping context.Canceled", err)
	}
	var te *ErrTimeout
	if errors.As(err, &te) && te.SpecName != "ctx-hard" {
		t.Errorf("SpecName = %q", te.SpecName)
	}
}

// TestGreedyIgnoresWorkers: the first-fit mode is documented sequential;
// a worker budget must not change its plan.
func TestGreedyIgnoresWorkers(t *testing.T) {
	base, err := GreedyFirstFit(anytimeSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	withWorkers, err := GreedyFirstFit(anytimeSpec(), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	samePlan(t, "greedy", base, withWorkers)
}

// TestClaimOrderPermutation: the bit-reversal claim order must be a
// permutation of 0..n-1 for any frontier size, pow2 or not.
func TestClaimOrderPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 64, 65, 100, 127, 128} {
		order := claimOrder(n)
		if len(order) != n {
			t.Fatalf("n=%d: len = %d", n, len(order))
		}
		seen := make([]bool, n)
		for _, v := range order {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("n=%d: bad or duplicate index %d in %v", n, v, order)
			}
			seen[v] = true
		}
	}
	// Diversification property: for pow2 sizes the second claim lands in
	// the far half of the frontier, not adjacent to the first.
	if order := claimOrder(64); order[0] != 0 || order[1] != 32 {
		t.Errorf("claimOrder(64) starts %v, want bit-reversal [0 32 ...]", order[:2])
	}
}

// TestCountersAdvance: solving must advance the package node telemetry
// (the /metrics gauges are fed from it).
func TestCountersAdvance(t *testing.T) {
	nodes0, _ := Counters()
	if _, err := Solve(parallelSpecs()[4], Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	nodes1, _ := Counters()
	if nodes1 <= nodes0 {
		t.Errorf("solver_nodes_total did not advance: %d -> %d", nodes0, nodes1)
	}
}

// A spec with fewer flows than the frontier depth is carved entirely into
// complete-assignment units, so the workers' DFS only accepts leaves; the
// node count must still advance, via the frontier expansion itself.
func TestCountersAdvanceShallowFrontier(t *testing.T) {
	sp := &spec.Spec{
		Name:       "shallow",
		SwitchPins: 8,
		Modules:    []string{"a", "b", "x", "y"},
		Flows: []spec.Flow{
			{From: "a", To: "x"},
			{From: "b", To: "y"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
	nodes0, _ := Counters()
	if _, err := Solve(sp, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	nodes1, _ := Counters()
	if nodes1 <= nodes0 {
		t.Errorf("solver_nodes_total did not advance on a shallow frontier: %d -> %d", nodes0, nodes1)
	}
}

// TestCountersFrontierSingleCount pins the node-accounting contract of
// the iterative-deepening frontier: however many deepening rounds
// expandFrontier runs, each interior node above the final frontier depth
// is counted exactly once — the same accounting the sequential DFS gives
// those nodes. A frontier that re-counted the shallow rounds would
// inflate solver_nodes_total whenever a request both expands and replays.
func TestCountersFrontierSingleCount(t *testing.T) {
	deepened := false
	for _, sp := range parallelSpecs() {
		if err := sp.Validate(); err != nil {
			t.Fatal(err)
		}
		sw, pt, err := topo.SharedGrid(sp.SwitchPins)
		if err != nil {
			t.Fatal(err)
		}

		a := newSolver(sp, sw, pt, Options{Workers: 2})
		a.bindFixed()
		units := a.expandFrontier()
		got := a.nodes
		a.release()
		if len(units) == 0 {
			t.Fatalf("%s: empty frontier", sp.Name)
		}
		depth := len(units[0].steps)
		if depth > 1 {
			deepened = true
		}

		// Reference: one expansion pass straight at the final depth.
		b := newSolver(sp, sw, pt, Options{Workers: 2})
		b.bindFixed()
		var ref []workUnit
		b.expand(0, depth, make([]unitStep, 0, depth), &ref)
		want := b.nodes
		b.release()

		if len(ref) != len(units) {
			t.Errorf("%s: deepened frontier has %d units, single depth-%d pass %d",
				sp.Name, len(units), depth, len(ref))
		}
		if got != want {
			t.Errorf("%s: expandFrontier counted %d nodes, single depth-%d pass counts %d (iterative deepening double-counts interior nodes)",
				sp.Name, got, depth, want)
		}
	}
	if !deepened {
		t.Fatal("no corpus spec deepened past depth 1; the single-count assertion exercised nothing")
	}
}
