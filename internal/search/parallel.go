package search

import (
	"math"
	mathbits "math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// The parallel driver splits the canonical DFS tree at a shallow
// frontier into work units (feasible branch prefixes, numbered in
// preorder), runs them on Options.Workers solver goroutines, and shares
// one incumbent across the pool.
//
// Bit-determinism invariant: the final incumbent is exactly the leaf the
// sequential DFS would keep — the first leaf in canonical preorder
// attaining the optimal cost. Two rules enforce this regardless of how
// units interleave:
//
//   - acceptance is lexicographic on (cost, unit): a leaf replaces the
//     incumbent if it is strictly cheaper (beyond eps), or cost-tied but
//     from an earlier unit (offer);
//   - pruning is asymmetric: against an incumbent from this or an
//     earlier unit, a subtree is cut when its bound reaches cost-eps
//     (the sequential rule); against an incumbent from a LATER unit only
//     strictly worse subtrees (bound ≥ cost+eps) are cut, because an
//     equal-cost leaf here would still win the tie-break (pruneBound).
//
// Within one unit the DFS is sequential, so the first cost-c leaf of
// each unit is reached before any pruning against cost c from that same
// unit can occur; across units the incumbent order is CAS-monotone in
// (cost, unit). Together these give the sequential answer for every
// worker count and claim order.

// Frontier sizing: expand to at least minUnits units (iterative
// deepening to depth maxFrontierDepth). Both are constants — the
// frontier must not depend on the worker count, or determinism would
// only hold per configuration instead of globally.
const (
	minUnits         = 64
	maxFrontierDepth = 3
)

// maxUnit orders the "no incumbent yet" sentinel after every real unit.
const maxUnit = math.MaxInt

// Package-level solver telemetry, exported to the service layer's
// /metrics endpoint via Counters.
var (
	totalNodes  atomic.Int64
	totalSteals atomic.Int64
)

// Counters reports process-wide solver telemetry: the total number of
// branch-and-bound nodes expanded and the total number of work units
// claimed by a worker other than the one the round-robin split assigned
// them to (steals). Both are cumulative across all solves.
func Counters() (nodes, steals int64) {
	return totalNodes.Load(), totalSteals.Load()
}

// unitStep is one frozen branch decision: flow order[k] takes candidate
// (pIn, pOut, pathIdx) in the given set.
type unitStep struct {
	pIn, pOut, pathIdx, set int
}

// workUnit is a feasible prefix of branch decisions for flows
// order[0..len(steps)-1]; running it means replaying the prefix and
// exhausting the subtree below it.
type workUnit struct {
	steps []unitStep
}

// sharedBest is the cross-worker incumbent: the best (cost, unit) pair
// seen so far plus the snapshotted assignment. Replaced atomically as a
// unit so readers always see a consistent triple.
type sharedBest struct {
	cost float64
	unit int
	inc  *incumbent
}

// sharedState is the coordination block for one parallel solve.
type sharedState struct {
	best   atomic.Pointer[sharedBest]
	next   atomic.Int64 // claim cursor into the unit permutation
	steals atomic.Int64

	stopped  atomic.Bool
	causeMu  sync.Mutex
	causeErr error

	workers int
	// oversub is set when workers exceed GOMAXPROCS; workers then yield
	// in their periodic poll so sibling goroutines interleave finely even
	// on fewer cores (the bound sharing needs the interleaving to pay
	// off).
	oversub bool
}

// halt requests a pool-wide stop, keeping the first cause.
func (sh *sharedState) halt(err error) {
	sh.causeMu.Lock()
	if sh.causeErr == nil {
		sh.causeErr = err
	}
	sh.causeMu.Unlock()
	sh.stopped.Store(true)
}

func (sh *sharedState) cause() error {
	sh.causeMu.Lock()
	defer sh.causeMu.Unlock()
	return sh.causeErr
}

// offer proposes the worker's current complete assignment (cost c, unit
// s.unit) as the incumbent. It wins if strictly cheaper, or cost-tied
// from an earlier unit — the lexicographic (cost, unit) order whose
// minimum is provably the sequential DFS's final incumbent.
func (sh *sharedState) offer(s *solver, c float64) {
	var inc *incumbent
	for {
		b := sh.best.Load()
		if !(c < b.cost-eps || (s.unit < b.unit && c < b.cost+eps)) {
			return
		}
		if inc == nil {
			inc = s.snapshotIncumbent(c)
		}
		if sh.best.CompareAndSwap(b, &sharedBest{cost: c, unit: s.unit, inc: inc}) {
			// Publish outside the CAS loop's retry path but after the
			// install: concurrent workers may publish out of order (a
			// worse incumbent after a better one) — the hook contract
			// makes ordering the subscriber's job.
			s.publishIncumbent(inc)
			return
		}
	}
}

// expandFrontier enumerates the canonical work units by iterative
// deepening: depth 1 first, going deeper until the frontier has at least
// minUnits units or maxFrontierDepth is reached. Units are emitted in
// preorder, which is exactly the order the sequential DFS visits their
// subtrees — the unit index is the determinism tie-break.
func (s *solver) expandFrontier() []workUnit {
	maxD := maxFrontierDepth
	if len(s.order) < maxD {
		maxD = len(s.order)
	}
	var units []workUnit
	// Each deepening round re-walks the tree from the root, so without a
	// reset the shallow interior nodes would be counted once per round —
	// inflating solver_nodes_total relative to the sequential DFS, which
	// visits them exactly once. Only the final round's walk is kept.
	base := s.nodes
	for d := 1; d <= maxD; d++ {
		s.nodes = base
		units = units[:0]
		prefix := make([]unitStep, 0, d)
		s.expand(0, d, prefix, &units)
		if len(units) >= minUnits {
			break
		}
	}
	return units
}

// expand mirrors dfs's candidate/set enumeration — same feasibility
// checks, same canonical order — but instead of recursing to leaves it
// emits the branch prefix once pos reaches the frontier depth (or a
// complete assignment, whichever comes first). No pruning and no
// deadline checks: the frontier must be identical for every run.
func (s *solver) expand(pos, depth int, prefix []unitStep, out *[]workUnit) {
	if pos == depth || pos == len(s.order) {
		*out = append(*out, workUnit{steps: slices.Clone(prefix)})
		return
	}
	// Count the visit (an interior node the sequential DFS would also
	// count) but never poll stop sources here: truncating the expansion
	// on a deadline would make the frontier depend on timing.
	s.nodes++
	f := s.order[pos]
	ms, md := s.srcs[f], s.dsts[f]
	cands := s.enumCands(pos)
	for i := range cands {
		c := cands[i]
		boundIn := s.bindIfNeeded(ms, c.pIn)
		if boundIn == bindConflict {
			continue
		}
		boundOut := s.bindIfNeeded(md, c.pOut)
		if boundOut == bindConflict {
			s.unbind(ms, c.pIn, boundIn)
			continue
		}
		if s.sp.Binding == spec.Clockwise && (boundIn == bindDone || boundOut == bindDone) && !s.clockwiseFeasible() {
			s.unbind(md, c.pOut, boundOut)
			s.unbind(ms, c.pIn, boundIn)
			continue
		}
		path := s.pt.PathsBetween(c.pIn, c.pOut)[c.pathIdx]
		if s.conflictClash(f, path) {
			s.unbind(md, c.pOut, boundOut)
			s.unbind(ms, c.pIn, boundIn)
			continue
		}
		maxIdx := -1
		for i, cnt := range s.setCount {
			if cnt > 0 && i > maxIdx {
				maxIdx = i
			}
		}
		freshTried := false
		for set := 0; set < s.maxSets && set <= maxIdx+1; set++ {
			if s.setCount[set] == 0 {
				if freshTried {
					continue
				}
				freshTried = true
			}
			if !s.setFits(set, ms, path) {
				continue
			}
			s.place(f, ms, set, path)
			s.expand(pos+1, depth, append(prefix, unitStep{c.pIn, c.pOut, c.pathIdx, set}), out)
			s.unplace(f, ms, set, path)
		}
		s.unbind(md, c.pOut, boundOut)
		s.unbind(ms, c.pIn, boundIn)
	}
}

// claimOrder returns the bit-reversal permutation of 0..n-1: workers
// claim units in an order that spreads consecutive claims across the
// whole frontier. Early incumbents from diverse regions tighten the
// shared bound much faster than a left-to-right sweep — this is where
// the parallel driver's superlinear pruning comes from — and because
// acceptance is order-independent (see the determinism invariant), the
// claim order is free to optimize for exactly that.
func claimOrder(n int) []int {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	order := make([]int, 0, n)
	for i := 0; i < 1<<bits; i++ {
		r := int(mathbits.Reverse64(uint64(i)) >> (64 - bits))
		if r < n {
			order = append(order, r)
		}
	}
	return order
}

// replayFrame records one replayed prefix step so runUnit can unwind it.
type replayFrame struct {
	f, ms, md         int
	pIn, pOut         int
	boundIn, boundOut bindOutcome
	set               int
	path              topo.Path
}

// runUnit replays the unit's branch prefix onto the worker's (clean)
// state, exhausts the subtree with the regular DFS, and unwinds. The
// prefix was feasible during expansion from the same clean state, so the
// replay cannot fail.
func (s *solver) runUnit(unitIdx int, u workUnit) {
	s.unit = unitIdx
	frames := grown(s.arena.replay, len(u.steps))
	s.arena.replay = frames
	for k, st := range u.steps {
		f := s.order[k]
		ms, md := s.srcs[f], s.dsts[f]
		boundIn := s.bindIfNeeded(ms, st.pIn)
		boundOut := s.bindIfNeeded(md, st.pOut)
		path := s.pt.PathsBetween(st.pIn, st.pOut)[st.pathIdx]
		s.place(f, ms, st.set, path)
		frames[k] = replayFrame{f, ms, md, st.pIn, st.pOut, boundIn, boundOut, st.set, path}
	}

	s.dfs(len(u.steps))

	for k := len(frames) - 1; k >= 0; k-- {
		fr := frames[k]
		s.unplace(fr.f, fr.ms, fr.set, fr.path)
		s.unbind(fr.md, fr.pOut, fr.boundOut)
		s.unbind(fr.ms, fr.pIn, fr.boundIn)
	}
}

// newWorker builds a worker solver sharing the root solver's immutable
// inputs, deadline and coordination block. Each worker owns its own
// pooled arena, so state never crosses goroutines except through sh.
func newWorker(root *solver, sh *sharedState) *solver {
	w := newSolver(root.sp, root.sw, root.pt, root.opts)
	w.deadline = root.deadline
	w.hasDL = root.hasDL
	w.ctx = root.ctx
	w.shared = sh
	// Workers never run run(), so the root bound and start time used by
	// published incumbent snapshots must be inherited explicitly.
	w.rootLB = root.rootLB
	w.started = root.started
	w.bindFixed()
	return w
}

// runParallel is the parallel driver behind run(): expand the frontier,
// fan the units out to Options.Workers workers over an atomic claim
// cursor, and adopt the shared incumbent as this solver's result so
// finish() proceeds exactly as in the sequential case.
func (s *solver) runParallel() {
	units := s.expandFrontier()
	if len(units) == 0 {
		// No feasible prefix ⇒ no feasible plan; finish() reports
		// ErrNoSolution via the regular best == nil path.
		return
	}
	workers := s.opts.Workers
	if workers > len(units) {
		workers = len(units)
	}
	sh := &sharedState{
		workers: workers,
		oversub: workers > runtime.GOMAXPROCS(0),
	}
	if s.seedBest && s.best != nil {
		// An adopted external seed becomes the shared starting incumbent.
		// Its unit is maxUnit — notionally "after every real unit" — so
		// the existing offer/prune tie-break makes every worker treat it
		// exactly like a later-unit incumbent: equal-cost leaves still
		// win, and the canonical first-optimal leaf replaces it whenever
		// the run completes. Seeded and unseeded complete runs therefore
		// emit byte-identical plans at every worker count.
		sh.best.Store(&sharedBest{cost: s.bestCost, unit: maxUnit, inc: s.best})
	} else {
		sh.best.Store(&sharedBest{cost: inf, unit: maxUnit})
	}

	order := claimOrder(len(units))
	ws := make([]*solver, workers)
	for w := range ws {
		ws[w] = newWorker(s, sh)
	}
	var wg sync.WaitGroup
	for w := range ws {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := ws[w]
			for !wk.timedOut {
				i := int(sh.next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				if i%workers != w {
					// The unit round-robin "belongs" to another worker:
					// this claim is a steal in work-stealing terms.
					sh.steals.Add(1)
				}
				wk.runUnit(order[i], units[order[i]])
			}
		}(w)
	}
	wg.Wait()

	if b := sh.best.Load(); b.inc != nil {
		s.best = b.inc
		s.bestCost = b.cost
	}
	for _, wk := range ws {
		s.nodes += wk.nodes
		if wk.timedOut && !s.timedOut {
			s.timedOut = true
			s.stopErr = wk.stopErr
		}
		wk.release()
	}
	totalSteals.Add(sh.steals.Load())
}
