// Package fpva generates manufacturing test patterns for fully
// programmable valve array (FPVA) switch topologies and diagnoses
// observed failures.
//
// # Fault model
//
// Every channel segment of an FPVA grid (topo.NewFPVA) carries its own
// valve — interior segments between adjacent junctions and the boundary
// stubs connecting border junctions to I/O ports alike. A fabricated
// chip can fail per valve in two single-fault modes:
//
//   - stuck-open: the valve no longer seals; fluid crosses the segment
//     even when the controller commands it closed.
//   - stuck-closed: the membrane is bonded shut (or the control channel
//     is blocked); fluid never crosses, even when commanded open.
//
// A test pattern is one stimulus: a single boundary port is pressurized
// with dyed fluid while a chosen set of valves is held open and all
// others closed. The observable outcome is exactly which boundary ports
// the fluid reaches — interior junctions cannot be inspected. A pattern
// detects a fault when the fault changes that observation relative to a
// healthy chip.
//
// # Pattern generation
//
// TestPatterns builds a candidate family whose union provably covers
// every single fault, then minimizes it by deterministic greedy set
// cover over the exhaustively simulated fault×pattern detection matrix:
//
//   - one path pattern per grid row (source at the row's left port, the
//     row's horizontal segments and both end stubs open) and per column
//     (source at the top port) — any stuck-closed valve on the path
//     breaks the source→drain connection, and a stuck-open stub on the
//     path's junctions leaks to an observable port;
//   - one pair pattern per adjacent row pair (the active row's path plus
//     the passive row's horizontals and its left stub as a drain) — a
//     stuck-open vertical valve between the rows leaks fluid into the
//     passive row, which carries it to the drain port; and the
//     symmetric column-pair patterns for stuck-open horizontals.
//
// Coverage is never assumed: TestPatterns re-simulates every fault
// under every selected pattern and fails loudly if any fault would
// escape, so the 100% single-fault guarantee is checked, not derived.
//
// Diagnose inverts the process: given the wetted-port observation of
// every pattern from a physical run, it returns exactly the single
// faults (or the healthy hypothesis) consistent with all observations.
package fpva

import (
	"fmt"
	"sort"

	"switchsynth/internal/topo"
)

// FaultKind distinguishes the two single-valve failure modes.
type FaultKind int

const (
	// StuckOpen: the valve no longer seals; the segment always conducts.
	StuckOpen FaultKind = iota
	// StuckClosed: the valve never opens; the segment never conducts.
	StuckClosed
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	if k == StuckOpen {
		return "stuck-open"
	}
	return "stuck-closed"
}

// Fault identifies one single-valve fault hypothesis.
type Fault struct {
	// Edge is the faulty segment's edge ID on the switch.
	Edge int
	// Kind is the failure mode.
	Kind FaultKind
}

// Pattern is one test stimulus: pressurize one boundary port with the
// given valves open, observe which boundary ports wet.
type Pattern struct {
	// Source is the clockwise pin order of the pressurized port.
	Source int
	// Open is the set of edge IDs whose valves are held open; every
	// other valve is commanded closed.
	Open topo.Bits
	// Expect is the healthy-chip observation: the pin orders that wet,
	// as a bitmask (always includes Source).
	Expect topo.Bits
}

// AllFaults enumerates every single-fault hypothesis of the switch in
// deterministic (edge ID, stuck-open-first) order.
func AllFaults(sw *topo.Switch) []Fault {
	out := make([]Fault, 0, 2*len(sw.Edges))
	for e := range sw.Edges {
		out = append(out, Fault{Edge: e, Kind: StuckOpen}, Fault{Edge: e, Kind: StuckClosed})
	}
	return out
}

// Simulate floods the switch from the pattern's source port through the
// open valves and returns the wetted boundary ports as a pin-order
// bitmask. A non-nil fault perturbs the open set first: stuck-open
// forces the faulty segment to conduct, stuck-closed forces it shut.
// The source port always wets (fluid is injected there); it reaches any
// other port only through a conducting path, including that port's own
// stub valve.
func Simulate(sw *topo.Switch, p Pattern, fault *Fault) topo.Bits {
	open := p.Open
	if fault != nil {
		if fault.Kind == StuckOpen {
			open.Set(fault.Edge)
		} else {
			open.Clear(fault.Edge)
		}
	}
	src := sw.PinVertex(p.Source)
	var wetVerts topo.Bits
	wetVerts.Set(src)
	stack := []int{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range sw.IncidentEdges(v) {
			if !open.Has(eid) {
				continue
			}
			u := sw.Edges[eid].Other(v)
			if wetVerts.Has(u) {
				continue
			}
			wetVerts.Set(u)
			stack = append(stack, u)
		}
	}
	var wet topo.Bits
	for order, vid := range sw.Pins() {
		if wetVerts.Has(vid) {
			wet.Set(order)
		}
	}
	return wet
}

// Detects reports whether the pattern distinguishes the fault from a
// healthy chip.
func Detects(sw *topo.Switch, p Pattern, f Fault) bool {
	return Simulate(sw, p, &f) != p.Expect
}

// grid captures the FPVA geometry TestPatterns works in terms of.
type grid struct {
	sw         *topo.Switch
	rows, cols int
	nodes      []int // junction vertex IDs, row-major
}

func newGrid(sw *topo.Switch) (*grid, error) {
	if sw == nil || sw.Kind != "fpva" {
		return nil, fmt.Errorf("fpva: test patterns require an FPVA switch, not %q", kindOf(sw))
	}
	g := &grid{sw: sw, rows: sw.Rows, cols: sw.Cols, nodes: sw.NodeIDs()}
	if len(g.nodes) != g.rows*g.cols {
		return nil, fmt.Errorf("fpva: switch has %d junctions for a %dx%d grid", len(g.nodes), g.rows, g.cols)
	}
	return g, nil
}

func kindOf(sw *topo.Switch) string {
	if sw == nil {
		return "<nil>"
	}
	return sw.Kind
}

// node returns the junction vertex ID at (r, c).
func (g *grid) node(r, c int) int { return g.nodes[r*g.cols+c] }

// Pin orders under the clockwise T1..Tcols, R1..Rrows, Bcols..B1,
// Lrows..L1 convention, addressed by 0-based grid row/column.
func (g *grid) topPin(c int) int    { return c }
func (g *grid) rightPin(r int) int  { return g.cols + r }
func (g *grid) bottomPin(c int) int { return g.cols + g.rows + (g.cols - 1 - c) }
func (g *grid) leftPin(r int) int   { return 2*g.cols + g.rows + (g.rows - 1 - r) }

// stubEdge returns the edge ID of a port's boundary stub valve.
func (g *grid) stubEdge(pinOrder int) int {
	return g.sw.IncidentEdges(g.sw.PinVertex(pinOrder))[0]
}

// edge returns the edge ID between two junctions (must be adjacent).
func (g *grid) edge(u, v int) int {
	e, ok := g.sw.EdgeBetween(u, v)
	if !ok {
		panic(fmt.Sprintf("fpva: no segment between junctions %d and %d", u, v))
	}
	return e.ID
}

// rowOpen returns the open set of the row-r path pattern: the row's
// horizontal segments plus its left and right port stubs.
func (g *grid) rowOpen(r int) topo.Bits {
	var open topo.Bits
	open.Set(g.stubEdge(g.leftPin(r)))
	open.Set(g.stubEdge(g.rightPin(r)))
	for c := 0; c+1 < g.cols; c++ {
		open.Set(g.edge(g.node(r, c), g.node(r, c+1)))
	}
	return open
}

// colOpen returns the open set of the column-c path pattern: the
// column's vertical segments plus its top and bottom port stubs.
func (g *grid) colOpen(c int) topo.Bits {
	var open topo.Bits
	open.Set(g.stubEdge(g.topPin(c)))
	open.Set(g.stubEdge(g.bottomPin(c)))
	for r := 0; r+1 < g.rows; r++ {
		open.Set(g.edge(g.node(r, c), g.node(r+1, c)))
	}
	return open
}

// candidates builds the full candidate pattern family in deterministic
// order: row paths, column paths, row pairs, column pairs.
func (g *grid) candidates() []Pattern {
	out := make([]Pattern, 0, 2*(g.rows+g.cols)-2)
	for r := 0; r < g.rows; r++ {
		out = append(out, Pattern{Source: g.leftPin(r), Open: g.rowOpen(r)})
	}
	for c := 0; c < g.cols; c++ {
		out = append(out, Pattern{Source: g.topPin(c), Open: g.colOpen(c)})
	}
	// Row pair (r, r+1): the active row-r path plus the passive row's
	// horizontals and left stub as a drain. Healthy, the passive row
	// stays dry; a stuck-open vertical between the rows wets the drain.
	for r := 0; r+1 < g.rows; r++ {
		open := g.rowOpen(r).Or(g.rowOpen(r + 1))
		open.Clear(g.stubEdge(g.rightPin(r + 1)))
		out = append(out, Pattern{Source: g.leftPin(r), Open: open})
	}
	// Column pair (c, c+1), symmetric: detects stuck-open horizontals.
	for c := 0; c+1 < g.cols; c++ {
		open := g.colOpen(c).Or(g.colOpen(c + 1))
		open.Clear(g.stubEdge(g.bottomPin(c + 1)))
		out = append(out, Pattern{Source: g.topPin(c), Open: open})
	}
	for i := range out {
		out[i].Expect = Simulate(g.sw, out[i], nil)
	}
	return out
}

// TestPatterns computes a minimal set of test patterns detecting every
// single stuck-open and stuck-closed valve fault of an FPVA switch.
//
// The candidate family (see the package comment) is reduced by greedy
// set cover over the exhaustively simulated detection matrix: at each
// step the candidate detecting the most still-uncovered faults is
// selected, ties broken by candidate order, until every fault is
// covered. The result is deterministic for a given grid. If any fault
// were undetectable by the whole family the function returns an error
// rather than a silently incomplete pattern set; for grids built by
// topo.NewFPVA this cannot happen (the property tests simulate every
// fault to prove it).
func TestPatterns(sw *topo.Switch) ([]Pattern, error) {
	g, err := newGrid(sw)
	if err != nil {
		return nil, err
	}
	cands := g.candidates()
	faults := AllFaults(sw)

	// detected[i] is the set of fault indices candidate i detects.
	detected := make([][]int, len(cands))
	for i, p := range cands {
		for fi, f := range faults {
			if Detects(sw, p, f) {
				detected[i] = append(detected[i], fi)
			}
		}
	}

	uncovered := make([]bool, len(faults))
	remaining := len(faults)
	for fi := range faults {
		uncovered[fi] = true
	}
	var selected []Pattern
	used := make([]bool, len(cands))
	for remaining > 0 {
		best, bestGain := -1, 0
		for i := range cands {
			if used[i] {
				continue
			}
			gain := 0
			for _, fi := range detected[i] {
				if uncovered[fi] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			fi := 0
			for fi < len(uncovered) && !uncovered[fi] {
				fi++
			}
			f := faults[fi]
			return nil, fmt.Errorf("fpva: fault %s on segment %s is undetectable by the candidate family",
				f.Kind, sw.Edges[f.Edge].Name)
		}
		used[best] = true
		selected = append(selected, cands[best])
		for _, fi := range detected[best] {
			if uncovered[fi] {
				uncovered[fi] = false
				remaining--
			}
		}
	}
	return selected, nil
}

// Diagnosis is the outcome of matching observed pattern results against
// every single-fault hypothesis.
type Diagnosis struct {
	// Healthy reports whether the observations match a fault-free chip.
	Healthy bool
	// Candidates lists every single fault whose predicted observations
	// match all observed ones, in (edge ID, stuck-open-first) order.
	// Empty with Healthy == false means no single-fault hypothesis
	// explains the observations (a multiple fault or a bad run).
	Candidates []Fault
}

// Diagnose narrows observed test results to the consistent fault
// hypotheses. wet holds one observation per pattern, in pattern order:
// the pin-order bitmask of ports that wetted when the pattern ran.
func Diagnose(sw *topo.Switch, patterns []Pattern, wet []topo.Bits) (Diagnosis, error) {
	if _, err := newGrid(sw); err != nil {
		return Diagnosis{}, err
	}
	if len(wet) != len(patterns) {
		return Diagnosis{}, fmt.Errorf("fpva: %d observations for %d patterns", len(wet), len(patterns))
	}
	var d Diagnosis
	d.Healthy = true
	for i, p := range patterns {
		if wet[i] != p.Expect {
			d.Healthy = false
			break
		}
	}
	for _, f := range AllFaults(sw) {
		consistent := true
		for i, p := range patterns {
			if Simulate(sw, p, &f) != wet[i] {
				consistent = false
				break
			}
		}
		if consistent {
			d.Candidates = append(d.Candidates, f)
		}
	}
	sort.Slice(d.Candidates, func(i, j int) bool {
		if d.Candidates[i].Edge != d.Candidates[j].Edge {
			return d.Candidates[i].Edge < d.Candidates[j].Edge
		}
		return d.Candidates[i].Kind < d.Candidates[j].Kind
	})
	return d, nil
}
