package fpva

import (
	"bytes"
	"fmt"
	"testing"

	"switchsynth/internal/contam"
	"switchsynth/internal/planio"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
	"switchsynth/internal/topo"
)

// TestFaultCoverage is the core property: on every gate grid size the
// generated pattern set detects 100% of single stuck-open and
// stuck-closed valve faults, proved by simulating every fault under
// every pattern.
func TestFaultCoverage(t *testing.T) {
	for _, dim := range [][2]int{{2, 2}, {2, 5}, {3, 4}, {4, 4}, {6, 6}, {8, 8}} {
		rows, cols := dim[0], dim[1]
		t.Run(fmt.Sprintf("%dx%d", rows, cols), func(t *testing.T) {
			sw, err := topo.NewFPVA(rows, cols)
			if err != nil {
				t.Fatal(err)
			}
			patterns, err := TestPatterns(sw)
			if err != nil {
				t.Fatal(err)
			}
			if len(patterns) == 0 {
				t.Fatal("no patterns generated")
			}
			faults := AllFaults(sw)
			if want := 2 * len(sw.Edges); len(faults) != want {
				t.Fatalf("AllFaults returned %d hypotheses, want %d", len(faults), want)
			}
			covered := 0
			for _, f := range faults {
				hit := false
				for _, p := range patterns {
					if Detects(sw, p, f) {
						hit = true
						break
					}
				}
				if hit {
					covered++
				} else {
					t.Errorf("fault %s on %s escapes every pattern", f.Kind, sw.Edges[f.Edge].Name)
				}
			}
			if covered != len(faults) {
				t.Fatalf("coverage %d/%d", covered, len(faults))
			}
			// The minimized set must not exceed the candidate family.
			if max := 2*(rows+cols) - 2; len(patterns) > max {
				t.Errorf("%d patterns selected from a %d-candidate family", len(patterns), max)
			}
			t.Logf("%dx%d: %d patterns cover %d faults", rows, cols, len(patterns), len(faults))
		})
	}
}

// TestPatternsDeterministic: identical grids yield identical pattern
// sets, call after call.
func TestPatternsDeterministic(t *testing.T) {
	sw, err := topo.NewFPVA(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := TestPatterns(sw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TestPatterns(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("pattern counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Source != b[i].Source || a[i].Open != b[i].Open || a[i].Expect != b[i].Expect {
			t.Fatalf("pattern %d differs between runs", i)
		}
	}
}

// TestPatternsRejectNonFPVA: the generator refuses crossbar and nil
// switches instead of producing meaningless patterns.
func TestPatternsRejectNonFPVA(t *testing.T) {
	sw, err := topo.NewGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TestPatterns(sw); err == nil {
		t.Error("TestPatterns accepted a crossbar switch")
	}
	if _, err := TestPatterns(nil); err == nil {
		t.Error("TestPatterns accepted a nil switch")
	}
	if _, err := Diagnose(sw, nil, nil); err == nil {
		t.Error("Diagnose accepted a crossbar switch")
	}
}

// TestDiagnoseHealthy: observations matching every expectation diagnose
// as healthy with no fault candidates — 100% coverage means every
// single fault is excluded by at least one pattern.
func TestDiagnoseHealthy(t *testing.T) {
	sw, err := topo.NewFPVA(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := TestPatterns(sw)
	if err != nil {
		t.Fatal(err)
	}
	wet := make([]topo.Bits, len(patterns))
	for i, p := range patterns {
		wet[i] = p.Expect
	}
	d, err := Diagnose(sw, patterns, wet)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Healthy {
		t.Error("healthy observations diagnosed as faulty")
	}
	if len(d.Candidates) != 0 {
		t.Errorf("healthy observations left %d fault candidates", len(d.Candidates))
	}
}

// TestDiagnoseInjectedFaults: for every single fault, observations
// simulated under that fault diagnose as unhealthy and include the
// injected fault among the candidates.
func TestDiagnoseInjectedFaults(t *testing.T) {
	sw, err := topo.NewFPVA(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := TestPatterns(sw)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range AllFaults(sw) {
		f := f
		wet := make([]topo.Bits, len(patterns))
		for i, p := range patterns {
			wet[i] = Simulate(sw, p, &f)
		}
		d, err := Diagnose(sw, patterns, wet)
		if err != nil {
			t.Fatal(err)
		}
		if d.Healthy {
			t.Errorf("fault %s on %s diagnosed as healthy", f.Kind, sw.Edges[f.Edge].Name)
			continue
		}
		found := false
		for _, c := range d.Candidates {
			if c == f {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fault %s on %s missing from its own candidate set %v", f.Kind, sw.Edges[f.Edge].Name, d.Candidates)
		}
	}
}

// TestDiagnoseObservationCountMismatch: a run with missing observations
// is an error, not a silent partial diagnosis.
func TestDiagnoseObservationCountMismatch(t *testing.T) {
	sw, err := topo.NewFPVA(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := TestPatterns(sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diagnose(sw, patterns, make([]topo.Bits, len(patterns)-1)); err == nil {
		t.Error("Diagnose accepted a short observation list")
	}
}

// fpvaSpec is a small but non-trivial FPVA synthesis input used by the
// determinism gate.
func fpvaSpec() *spec.Spec {
	return &spec.Spec{
		Name:     "fpva-gate",
		Topology: spec.TopologyFPVA,
		GridRows: 3,
		GridCols: 3,
		Modules:  []string{"in1", "in2", "out1", "out2", "out3"},
		Flows: []spec.Flow{
			{From: "in1", To: "out1"},
			{From: "in2", To: "out2"},
			{From: "in1", To: "out3"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
}

// TestSynthesisDeterminismAcrossWorkers is the FPVA half of the
// repo-wide determinism invariant: solving an FPVA spec must produce a
// byte-identical binary plan frame at every solver worker count.
func TestSynthesisDeterminismAcrossWorkers(t *testing.T) {
	sp := fpvaSpec()
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		res, err := search.Solve(sp, search.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := contam.Verify(res); err != nil {
			t.Fatalf("workers=%d: plan fails verification: %v", workers, err)
		}
		if !res.Proven {
			t.Fatalf("workers=%d: optimum not proven", workers)
		}
		if res.Switch.Kind != "fpva" {
			t.Fatalf("workers=%d: solved on a %q switch", workers, res.Switch.Kind)
		}
		frame, err := planio.EncodeBinary(res)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = frame
		} else if !bytes.Equal(frame, want) {
			t.Fatalf("workers=%d produced a different plan frame", workers)
		}
	}
}

// TestSynthesisSymmetryBreakingSound: the FPVA 180° symmetry cut must
// not change the answer, only prune — the plan with the cut disabled is
// byte-identical to the default solve.
func TestSynthesisSymmetryBreakingSound(t *testing.T) {
	sp := fpvaSpec()
	base, err := search.Solve(sp, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	noCut, err := search.Solve(sp, search.Options{DisableSymmetryBreaking: true})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := planio.EncodeBinary(base)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := planio.EncodeBinary(noCut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa, fb) {
		t.Fatal("symmetry breaking changed the synthesized plan")
	}
}
