package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -1)
	if got := p.Add(q); got != Pt(4, 1) {
		t.Errorf("Add = %v, want (4, 1)", got)
	}
	if got := p.Sub(q); got != Pt(-2, 3) {
		t.Errorf("Sub = %v, want (-2, 3)", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v, want (2, 4)", got)
	}
	if got := p.Mid(q); got != Pt(2, 0.5) {
		t.Errorf("Mid = %v, want (2, 0.5)", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, 0), Pt(2, 0), 3},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); !almostEqual(got, tc.want) {
			t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestManhattan(t *testing.T) {
	if got := Pt(0, 0).Manhattan(Pt(3, 4)); !almostEqual(got, 7) {
		t.Errorf("Manhattan = %v, want 7", got)
	}
	if got := Pt(-1, -1).Manhattan(Pt(1, 1)); !almostEqual(got, 4) {
		t.Errorf("Manhattan = %v, want 4", got)
	}
}

func TestDistPropertyNonNegativeSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		p, q := Pt(ax, ay), Pt(bx, by)
		d1, d2 := p.Dist(q), q.Dist(p)
		return d1 >= 0 && (d1 == d2 || math.IsNaN(d1) == math.IsNaN(d2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanDominatesEuclidean(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		p := Pt(float64(ax), float64(ay))
		q := Pt(float64(bx), float64(by))
		return p.Manhattan(q)+1e-9 >= p.Dist(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegment(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(0, 2))
	if !almostEqual(s.Length(), 2) {
		t.Errorf("Length = %v, want 2", s.Length())
	}
	if s.Mid() != Pt(0, 1) {
		t.Errorf("Mid = %v, want (0, 1)", s.Mid())
	}
	if !s.Vertical(1e-9) || s.Horizontal(1e-9) {
		t.Error("segment should be vertical, not horizontal")
	}
	h := Seg(Pt(0, 1), Pt(5, 1))
	if !h.Horizontal(1e-9) || h.Vertical(1e-9) {
		t.Error("segment should be horizontal, not vertical")
	}
	if !h.IsAxisAligned(1e-9) {
		t.Error("horizontal segment should be axis aligned")
	}
	d := Seg(Pt(0, 0), Pt(1, 1))
	if d.IsAxisAligned(1e-9) {
		t.Error("diagonal segment should not be axis aligned")
	}
}

func TestBounds(t *testing.T) {
	r := Bounds([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)})
	if r.Min != Pt(-2, -1) || r.Max != Pt(4, 5) {
		t.Errorf("Bounds = %+v", r)
	}
	if !almostEqual(r.Width(), 6) || !almostEqual(r.Height(), 6) {
		t.Errorf("Width/Height = %v/%v, want 6/6", r.Width(), r.Height())
	}
	if !almostEqual(r.Area(), 36) {
		t.Errorf("Area = %v, want 36", r.Area())
	}
	if got := Bounds(nil); got != (Rect{}) {
		t.Errorf("Bounds(nil) = %+v, want zero", got)
	}
}

func TestRectContainsInsetUnion(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 4)}
	if !r.Contains(Pt(2, 2)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(4, 4)) {
		t.Error("Contains failed on interior/boundary points")
	}
	if r.Contains(Pt(5, 2)) || r.Contains(Pt(2, -0.1)) {
		t.Error("Contains accepted exterior point")
	}
	in := r.Inset(1)
	if in.Min != Pt(1, 1) || in.Max != Pt(3, 3) {
		t.Errorf("Inset = %+v", in)
	}
	u := r.Union(Rect{Min: Pt(-1, 2), Max: Pt(2, 6)})
	if u.Min != Pt(-1, 0) || u.Max != Pt(4, 6) {
		t.Errorf("Union = %+v", u)
	}
}

func TestChannelSpacing(t *testing.T) {
	// Two horizontal channels 0.2 mm apart centre-to-centre, width 0.1:
	// clear space is 0.1 mm — exactly at the design-rule minimum.
	a := Seg(Pt(0, 0), Pt(2, 0))
	b := Seg(Pt(1, 0.2), Pt(3, 0.2))
	if got := ChannelSpacing(a, b, FlowChannelWidth); !almostEqual(got, 0.1) {
		t.Errorf("ChannelSpacing = %v, want 0.1", got)
	}
	// Non-overlapping extents: no spacing constraint.
	c := Seg(Pt(5, 0.2), Pt(7, 0.2))
	if got := ChannelSpacing(a, c, FlowChannelWidth); !math.IsInf(got, 1) {
		t.Errorf("ChannelSpacing non-overlapping = %v, want +Inf", got)
	}
	// Perpendicular segments: not checked by this rule.
	v := Seg(Pt(1, -1), Pt(1, 1))
	if got := ChannelSpacing(a, v, FlowChannelWidth); !math.IsInf(got, 1) {
		t.Errorf("ChannelSpacing perpendicular = %v, want +Inf", got)
	}
	// Vertical pair.
	v2 := Seg(Pt(1.5, -1), Pt(1.5, 1))
	if got := ChannelSpacing(v, v2, FlowChannelWidth); !almostEqual(got, 0.4) {
		t.Errorf("ChannelSpacing vertical = %v, want 0.4", got)
	}
}

func TestDesignRuleConstants(t *testing.T) {
	// Sanity: grid pitch must leave room for a valve plus spacing on a segment.
	if GridPitch < ValveChannelWidth+2*MinChannelSpacing {
		t.Errorf("GridPitch %v too small for valve %v + spacing", GridPitch, ValveChannelWidth)
	}
	if PinStubLength <= ValveLength {
		t.Errorf("PinStubLength %v must exceed ValveLength %v", PinStubLength, ValveLength)
	}
}

func TestDistToSegment(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 0))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(2, 3), 3},  // above the middle
		{Pt(-3, 4), 5}, // beyond A
		{Pt(7, 4), 5},  // beyond B
		{Pt(2, 0), 0},  // on the segment
		{Pt(0, 0), 0},  // endpoint
	}
	for _, tc := range tests {
		if got := DistToSegment(tc.p, s); !almostEqual(got, tc.want) {
			t.Errorf("DistToSegment(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Degenerate segment.
	if got := DistToSegment(Pt(3, 4), Seg(Pt(0, 0), Pt(0, 0))); !almostEqual(got, 5) {
		t.Errorf("degenerate = %v, want 5", got)
	}
}

func TestSegmentDistance(t *testing.T) {
	tests := []struct {
		a, b Segment
		want float64
	}{
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(0, 2), Pt(4, 2)), 2},             // parallel
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, -1), Pt(2, 1)), 0},            // crossing
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(4, 0), Pt(6, 3)), 0},             // touching
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(3, 0), Pt(5, 0)), 2},             // collinear gap
		{Seg(Pt(0, 0), Pt(0, 1)), Seg(Pt(3, 4), Pt(3, 8)), math.Sqrt(18)}, // endpoint pair (0,1)-(3,4)
	}
	for _, tc := range tests {
		if got := SegmentDistance(tc.a, tc.b); !almostEqual(got, tc.want) {
			t.Errorf("SegmentDistance(%v-%v, %v-%v) = %v, want %v",
				tc.a.A, tc.a.B, tc.b.A, tc.b.B, got, tc.want)
		}
		if got := SegmentDistance(tc.b, tc.a); !almostEqual(got, tc.want) {
			t.Errorf("SegmentDistance not symmetric for %v", tc)
		}
	}
}

func TestSegmentDistancePropertySymmetricNonNegative(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		a := Seg(Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by)))
		b := Seg(Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy)))
		d1, d2 := SegmentDistance(a, b), SegmentDistance(b, a)
		return d1 >= 0 && almostEqual(d1, d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentDistanceUpperBoundedByEndpointDistance(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		a := Seg(Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by)))
		b := Seg(Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy)))
		return SegmentDistance(a, b) <= a.A.Dist(b.A)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleBetweenDeg(t *testing.T) {
	// Right angle at origin.
	a := Seg(Pt(0, 0), Pt(1, 0))
	b := Seg(Pt(0, 0), Pt(0, 1))
	if got := AngleBetweenDeg(a, b); !almostEqual(got, 90) {
		t.Errorf("angle = %v, want 90", got)
	}
	// 45° (the GRU geometry the paper criticizes).
	c := Seg(Pt(0, 0), Pt(1, 1))
	if got := AngleBetweenDeg(a, c); !almostEqual(got, 45) {
		t.Errorf("angle = %v, want 45", got)
	}
	// Shared at the other endpoint.
	d := Seg(Pt(1, 0), Pt(1, 1))
	if got := AngleBetweenDeg(a, d); !almostEqual(got, 90) {
		t.Errorf("angle (shared B-A) = %v, want 90", got)
	}
	// Disjoint segments have no junction angle.
	e := Seg(Pt(5, 5), Pt(6, 6))
	if got := AngleBetweenDeg(a, e); !math.IsNaN(got) {
		t.Errorf("angle disjoint = %v, want NaN", got)
	}
}

func TestCrossDot(t *testing.T) {
	if Cross(Pt(1, 0), Pt(0, 1)) != 1 || Cross(Pt(0, 1), Pt(1, 0)) != -1 {
		t.Error("cross product wrong")
	}
	if Dot(Pt(2, 3), Pt(4, -1)) != 5 {
		t.Error("dot product wrong")
	}
}
