// Package geom provides the 2-D geometric primitives and microfluidic
// design-rule constants used by the switch topology models.
//
// All coordinates and lengths are in millimetres. The constants follow the
// Stanford Foundry basic design rules cited by the paper: flow channels are
// 0.1 mm wide, valves are 0.1 mm long with a 0.3 mm wide control channel
// crossing, the minimum space between channels is 0.1 mm, and a control
// inlet punch occupies roughly 1 mm².
package geom

import (
	"fmt"
	"math"
)

// Stanford Foundry basic design rules (millimetres).
const (
	// FlowChannelWidth is the width of a flow-layer channel.
	FlowChannelWidth = 0.1
	// ValveLength is the extent of a valve along the flow channel.
	ValveLength = 0.1
	// ValveChannelWidth is the width of the control channel forming a valve.
	ValveChannelWidth = 0.3
	// MinChannelSpacing is the minimum space between adjacent channels.
	MinChannelSpacing = 0.1
	// ControlInletArea is the chip area taken by one control inlet punch (mm²).
	ControlInletArea = 1.0
)

// Grid geometry of the crossbar-like switch models. The pitch is the distance
// between adjacent junction nodes; the stub is the length of the channel from
// a border node to its flow pin. Chosen so that an 8-pin switch fits in a
// ~3.2 mm square, comfortably satisfying the spacing rule at 1.0 mm pitch.
const (
	// GridPitch is the node-to-node spacing of the switch junction grid.
	GridPitch = 1.0
	// PinStubLength is the channel length from a border node to its pin.
	PinStubLength = 0.6
)

// Point is a 2-D location in millimetres.
type Point struct {
	X, Y float64
}

// Pt returns the point (x, y).
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3g, %.3g)", p.X, p.Y) }

// Segment is a straight channel segment between two points.
type Segment struct {
	A, B Point
}

// Seg returns the segment from a to b.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Mid returns the midpoint of s.
func (s Segment) Mid() Point { return s.A.Mid(s.B) }

// IsAxisAligned reports whether s is horizontal or vertical within eps.
func (s Segment) IsAxisAligned(eps float64) bool {
	return math.Abs(s.A.X-s.B.X) <= eps || math.Abs(s.A.Y-s.B.Y) <= eps
}

// Horizontal reports whether s is horizontal within eps.
func (s Segment) Horizontal(eps float64) bool {
	return math.Abs(s.A.Y-s.B.Y) <= eps && math.Abs(s.A.X-s.B.X) > eps
}

// Vertical reports whether s is vertical within eps.
func (s Segment) Vertical(eps float64) bool {
	return math.Abs(s.A.X-s.B.X) <= eps && math.Abs(s.A.Y-s.B.Y) > eps
}

// Rect is an axis-aligned rectangle given by its min and max corners.
type Rect struct {
	Min, Max Point
}

// Bounds returns the smallest Rect containing all the given points.
// It returns the zero Rect if pts is empty.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Inset returns r shrunk by d on every side (grown for negative d).
func (r Rect) Inset(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X + d, r.Min.Y + d},
		Max: Point{r.Max.X - d, r.Max.Y - d},
	}
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ChannelSpacing returns the clear space between two parallel axis-aligned
// segments of channels with the given width, or +Inf if they are not
// parallel axis-aligned segments. It is used by design-rule checks.
func ChannelSpacing(a, b Segment, width float64) float64 {
	const eps = 1e-9
	switch {
	case a.Horizontal(eps) && b.Horizontal(eps):
		if !overlap1D(a.A.X, a.B.X, b.A.X, b.B.X) {
			return math.Inf(1)
		}
		return math.Abs(a.A.Y-b.A.Y) - width
	case a.Vertical(eps) && b.Vertical(eps):
		if !overlap1D(a.A.Y, a.B.Y, b.A.Y, b.B.Y) {
			return math.Inf(1)
		}
		return math.Abs(a.A.X-b.A.X) - width
	default:
		return math.Inf(1)
	}
}

func overlap1D(a1, a2, b1, b2 float64) bool {
	lo1, hi1 := math.Min(a1, a2), math.Max(a1, a2)
	lo2, hi2 := math.Min(b1, b2), math.Max(b1, b2)
	return hi1 >= lo2 && hi2 >= lo1
}

// Dot returns the dot product of vectors p and q.
func Dot(p, q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of vectors p and q.
func Cross(p, q Point) float64 { return p.X*q.Y - p.Y*q.X }

// DistToSegment returns the distance from point p to segment s.
func DistToSegment(p Point, s Segment) float64 {
	d := s.B.Sub(s.A)
	l2 := Dot(d, d)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := Dot(p.Sub(s.A), d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(s.A.Add(d.Scale(t)))
}

// SegmentDistance returns the minimum distance between two segments; zero
// if they intersect or touch.
func SegmentDistance(a, b Segment) float64 {
	if segmentsIntersect(a, b) {
		return 0
	}
	d := DistToSegment(a.A, b)
	if x := DistToSegment(a.B, b); x < d {
		d = x
	}
	if x := DistToSegment(b.A, a); x < d {
		d = x
	}
	if x := DistToSegment(b.B, a); x < d {
		d = x
	}
	return d
}

func segmentsIntersect(a, b Segment) bool {
	d1 := Cross(a.B.Sub(a.A), b.A.Sub(a.A))
	d2 := Cross(a.B.Sub(a.A), b.B.Sub(a.A))
	d3 := Cross(b.B.Sub(b.A), a.A.Sub(b.A))
	d4 := Cross(b.B.Sub(b.A), a.B.Sub(b.A))
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	const eps = 1e-12
	onSeg := func(p Point, s Segment) bool {
		return math.Abs(Cross(s.B.Sub(s.A), p.Sub(s.A))) < eps &&
			p.X >= math.Min(s.A.X, s.B.X)-eps && p.X <= math.Max(s.A.X, s.B.X)+eps &&
			p.Y >= math.Min(s.A.Y, s.B.Y)-eps && p.Y <= math.Max(s.A.Y, s.B.Y)+eps
	}
	return onSeg(b.A, a) || onSeg(b.B, a) || onSeg(a.A, b) || onSeg(a.B, b)
}

// AngleBetweenDeg returns the smaller angle in degrees between two segments
// that share an endpoint, or NaN if they do not share one.
func AngleBetweenDeg(a, b Segment) float64 {
	var pivot, pa, pb Point
	switch {
	case a.A == b.A:
		pivot, pa, pb = a.A, a.B, b.B
	case a.A == b.B:
		pivot, pa, pb = a.A, a.B, b.A
	case a.B == b.A:
		pivot, pa, pb = a.B, a.A, b.B
	case a.B == b.B:
		pivot, pa, pb = a.B, a.A, b.A
	default:
		return math.NaN()
	}
	u, v := pa.Sub(pivot), pb.Sub(pivot)
	lu, lv := math.Hypot(u.X, u.Y), math.Hypot(v.X, v.Y)
	if lu == 0 || lv == 0 {
		return math.NaN()
	}
	c := Dot(u, v) / (lu * lv)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c) * 180 / math.Pi
}
