package faultinject

import "testing"

// TestNilInjectorIsNop: the production path passes a nil *Injector; every
// probe must be a cheap no-op.
func TestNilInjectorIsNop(t *testing.T) {
	var inj *Injector
	for i := 0; i < 100; i++ {
		if inj.Fire(SolvePanic) {
			t.Fatal("nil injector fired")
		}
	}
	if inj.Fired(SolvePanic) != 0 {
		t.Fatal("nil injector counted fires")
	}
}

// TestDeterministicPerSeed: the same seed and probe sequence must yield
// the same fault schedule, or chaos runs would not be reproducible.
func TestDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []bool {
		inj := New(seed).
			Set(SolvePanic, Rule{Probability: 0.3}).
			Set(CacheCorrupt, Rule{Probability: 0.5})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, inj.Fire(SolvePanic), inj.Fire(CacheCorrupt))
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at probe %d", i)
		}
	}
	diff := schedule(8)
	same := true
	for i := range a {
		if a[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 400-probe schedules")
	}
}

// TestUnsetPointNeverFiresNorConsumesRandomness: probing a point with no
// rule must not advance the RNG, so adding instrumentation points to the
// engine cannot shift existing fault schedules.
func TestUnsetPointNeverFiresNorConsumesRandomness(t *testing.T) {
	with := New(3).Set(SolvePanic, Rule{Probability: 0.5})
	without := New(3).Set(SolvePanic, Rule{Probability: 0.5})
	for i := 0; i < 100; i++ {
		if with.Fire(HTTPDelay) {
			t.Fatal("unset point fired")
		}
		a, b := with.Fire(SolvePanic), without.Fire(SolvePanic)
		if a != b {
			t.Fatalf("probe %d: unset-point probes perturbed the schedule", i)
		}
	}
}

// TestFiredCounts tallies per-point fire counts.
func TestFiredCounts(t *testing.T) {
	inj := New(1).Set(QueueStall, Rule{Probability: 1})
	for i := 0; i < 5; i++ {
		if !inj.Fire(QueueStall) {
			t.Fatal("probability-1 rule did not fire")
		}
	}
	if got := inj.Fired(QueueStall); got != 5 {
		t.Errorf("Fired = %d, want 5", got)
	}
	if got := inj.Fired(SolveSlow); got != 0 {
		t.Errorf("Fired(unset) = %d, want 0", got)
	}
}
