// Package faultinject provides deterministic, seedable fault injection
// for the synthesis service's chaos tests. An Injector carries a set of
// rules keyed by named injection points; production code probes the
// points unconditionally and the injector decides — from its own seeded
// RNG, never the global one — whether the fault fires.
//
// The package is build-tag-free and nop by default: a nil *Injector is
// valid, every probe on it returns false immediately, and no injection
// point costs anything beyond a nil check when no injector is
// configured.
package faultinject

import (
	"math/rand"
	"sync"
	"time"
)

// Point names an injection site.
type Point string

// Injection points probed by internal/service.
const (
	// SolvePanic makes the optimizer panic inside a worker.
	SolvePanic Point = "solve.panic"
	// SolveSlow stretches a solve by the rule's Delay.
	SolveSlow Point = "solve.slow"
	// QueueStall delays a dequeued job before it executes.
	QueueStall Point = "queue.stall"
	// CacheCorrupt corrupts the plan copy stored in the result cache
	// (the flight's own copy stays intact).
	CacheCorrupt Point = "cache.corrupt"
	// HTTPDelay stalls a request inside the HTTP handler.
	HTTPDelay Point = "http.delay"
)

// Injection points probed by internal/cluster (the multi-node tier).
const (
	// PeerDown makes a peer HTTP round trip (probe, forward, or plan
	// fetch) fail as if the peer were unreachable.
	PeerDown Point = "peer.down"
	// PeerSlow stretches a peer round trip by the rule's Delay.
	PeerSlow Point = "peer.slow"
	// FetchCorrupt flips a byte of a plan fetched from a peer; the
	// receiver's re-verification must catch it and fall back to solving.
	FetchCorrupt Point = "peer.corruptfetch"
	// ReplCorrupt flips a byte of a plan as it is pushed to a replica;
	// the receiver's verify-on-receipt must reject it — a corrupted push
	// is never stored or served.
	ReplCorrupt Point = "peer.corruptpush"
	// PeerPartition is the directed-link black hole (see CutLink): it is
	// not configured with Set but fires whenever a cut link is probed,
	// so chaos tests can count how much traffic the partition absorbed.
	PeerPartition Point = "peer.partition"
)

// Injection points probed by internal/store (the durable plan store).
const (
	// DiskShortWrite tears a WAL append: only a prefix of the record
	// reaches the file and the put fails, leaving a torn tail exactly as
	// a crash mid-write would.
	DiskShortWrite Point = "disk.shortwrite"
	// DiskCorrupt flips a payload byte of a record on its way to disk;
	// the put succeeds but the record fails its CRC on read.
	DiskCorrupt Point = "disk.corrupt"
	// DiskFsyncErr fails a group-commit fsync: the flush is skipped and
	// the durable offset does not advance.
	DiskFsyncErr Point = "disk.fsyncerr"
	// DiskCrashBeforeRename aborts a compaction after the new segment is
	// fully written but before the atomic rename, leaving a stray .tmp
	// file exactly as a crash at that instant would.
	DiskCrashBeforeRename Point = "disk.crashbeforerename"
)

// Rule configures one injection point.
type Rule struct {
	// Probability in [0, 1] that the fault fires at each probe; 1 fires
	// always, 0 (the zero value) never.
	Probability float64
	// Delay is slept before Fire returns true. Zero-delay faults fire
	// instantaneously (panics, corruption).
	Delay time.Duration
}

// Injector is a seeded set of fault rules. The zero of its pointer type
// (nil) is the production configuration: every probe is a nop.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[Point]Rule
	fired map[Point]int64
	// links is the partition state: a set of directed (from → to) node
	// pairs whose traffic is black-holed. Directed edges make asymmetric
	// partitions expressible — A can reach B while B cannot reach A.
	links map[[2]string]bool
}

// New creates an injector whose fault decisions replay deterministically
// for a given seed and probe sequence.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[Point]Rule),
		fired: make(map[Point]int64),
		links: make(map[[2]string]bool),
	}
}

// Set installs (or replaces) the rule for p and returns the injector for
// chaining.
func (in *Injector) Set(p Point, r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[p] = r
	return in
}

// Fire probes the injection point: it reports whether the fault fires,
// sleeping the rule's Delay first when it does. Nil-safe; a nil injector
// (or an unset point) never fires.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	r, ok := in.rules[p]
	if !ok || r.Probability <= 0 || in.rng.Float64() >= r.Probability {
		in.mu.Unlock()
		return false
	}
	in.fired[p]++
	in.mu.Unlock()
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	return true
}

// Fired reports how many times the point's fault has fired. Nil-safe.
func (in *Injector) Fired(p Point) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}

// CutLink black-holes traffic on the directed link from → to. Cutting
// both directions partitions the pair; cutting one models an asymmetric
// partition. Nil-safe nop.
func (in *Injector) CutLink(from, to string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.links[[2]string{from, to}] = true
}

// HealLink restores the directed link from → to. Nil-safe nop.
func (in *Injector) HealLink(from, to string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.links, [2]string{from, to})
}

// HealAllLinks restores every cut link. Nil-safe nop.
func (in *Injector) HealAllLinks() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.links = make(map[[2]string]bool)
}

// LinkDown reports whether the directed link from → to is currently cut,
// counting a hit against PeerPartition so tests can assert the partition
// actually absorbed traffic. Nil-safe; a nil injector has no cut links.
func (in *Injector) LinkDown(from, to string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.links[[2]string{from, to}] {
		return false
	}
	in.fired[PeerPartition]++
	return true
}
