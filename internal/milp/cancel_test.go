package milp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"switchsynth/internal/lp"
)

// hardKnapsack builds a deliberately nasty 0/1 instance: near-uniform
// weights with a tight capacity make the LP bound weak, so branch and
// bound explores many nodes before proving optimality.
func hardKnapsack(n int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel("hard-knapsack")
	weights := NewLinExpr()
	obj := NewLinExpr()
	total := 0.0
	for i := 0; i < n; i++ {
		v := m.NewBinary("x")
		w := 100 + rng.Float64()
		weights.Add(w, v)
		obj.Add(-(w + rng.Float64()*0.1), v)
		total += w
	}
	m.AddConstraint(weights, lp.LE, total/2)
	m.SetObjective(obj)
	return m
}

func TestSolveCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := hardKnapsack(30, 1).Solve(Options{Ctx: ctx})
	if s.Status != Limit {
		t.Fatalf("status = %v, want limit", s.Status)
	}
	if !errors.Is(s.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", s.Err)
	}
	if s.Nodes != 0 {
		t.Errorf("explored %d nodes after cancellation", s.Nodes)
	}
}

func TestSolveCancelledMidSearch(t *testing.T) {
	m := hardKnapsack(40, 7)
	// Sanity: unbounded, this instance takes far longer than the cancel
	// window (it branches on dozens of near-tied binaries).
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	s := m.Solve(Options{Ctx: ctx})
	elapsed := time.Since(start)
	if s.Status == Optimal && elapsed < 10*time.Millisecond {
		t.Skip("instance solved before the cancel fired; nothing to assert")
	}
	if s.Status != Limit {
		t.Fatalf("status = %v after cancel (elapsed %s)", s.Status, elapsed)
	}
	if !errors.Is(s.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", s.Err)
	}
	// The poll runs once per node, so the solve must stop within one
	// LP relaxation of the cancel — generously, well under 5 seconds.
	if elapsed > 5*time.Second {
		t.Errorf("cancelled solve ran %s, want prompt return", elapsed)
	}
}

func TestSolveDeadlineSurfacesCause(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	s := hardKnapsack(40, 11).Solve(Options{Ctx: ctx})
	if s.Status == Optimal {
		t.Skip("instance solved inside the deadline; nothing to assert")
	}
	if !errors.Is(s.Err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", s.Err)
	}
}

func TestTimeLimitLeavesErrNil(t *testing.T) {
	s := hardKnapsack(40, 13).Solve(Options{TimeLimit: time.Millisecond})
	if s.Status == Optimal {
		t.Skip("instance solved inside the limit; nothing to assert")
	}
	if s.Err != nil {
		t.Errorf("internal time limit set Err = %v, want nil (Err is for external cancellation)", s.Err)
	}
}

// TestSolveCancelledMidRelaxation cancels while the solver is inside a
// single large LP relaxation. The per-node poll alone cannot see this —
// the first relaxation of a big model can pivot for minutes — so the
// abort has to come from the in-LP stop hook.
func TestSolveCancelledMidRelaxation(t *testing.T) {
	// A dense model whose root relaxation alone takes far longer than
	// the cancellation delay below.
	rng := rand.New(rand.NewSource(11))
	m := NewModel("big-lp")
	const n, rows = 220, 220
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = m.NewBinary("x")
	}
	obj := NewLinExpr()
	for _, v := range vars {
		obj.Add(-(1 + rng.Float64()), v)
	}
	m.SetObjective(obj)
	for r := 0; r < rows; r++ {
		e := NewLinExpr()
		for _, v := range vars {
			e.Add(1+rng.Float64(), v)
		}
		m.AddConstraint(e, lp.LE, float64(n)/3)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	sol := m.Solve(Options{Ctx: ctx})
	elapsed := time.Since(start)
	if sol.Status != Limit {
		t.Fatalf("status = %v, want Limit", sol.Status)
	}
	if !errors.Is(sol.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", sol.Err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the in-LP stop hook is not firing", elapsed)
	}
}
