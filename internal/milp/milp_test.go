package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"switchsynth/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6 → a=1,c=1 (17) vs b=1 (13)
	// vs a=1,b=0,c=1... best is a+c=17? b+c: 4+2=6 → 20. Optimal: b=1,c=1.
	m := NewModel("knapsack")
	a := m.NewBinary("a")
	b := m.NewBinary("b")
	c := m.NewBinary("c")
	m.AddConstraint(NewLinExpr().Add(3, a).Add(4, b).Add(2, c), lp.LE, 6)
	m.SetObjective(NewLinExpr().Add(-10, a).Add(-13, b).Add(-7, c))
	s := m.Solve(Options{})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Obj, -20) {
		t.Errorf("obj = %v, want -20", s.Obj)
	}
	if s.Bool(a) || !s.Bool(b) || !s.Bool(c) {
		t.Errorf("x = %v, want b=c=1", s.X)
	}
}

func TestIntegerVariable(t *testing.T) {
	// min -x s.t. 2x ≤ 7, x integer → x = 3 (LP gives 3.5).
	m := NewModel("int")
	x := m.NewInt("x", 0, 100)
	m.AddConstraint(NewLinExpr().Add(2, x), lp.LE, 7)
	m.SetObjective(NewLinExpr().Add(-1, x))
	s := m.Solve(Options{})
	if s.Status != Optimal || !approx(s.Value(x), 3) {
		t.Errorf("status=%v x=%v, want 3", s.Status, s.Value(x))
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 ≤ x ≤ 0.6 with x integer: LP feasible, IP infeasible.
	m := NewModel("infeas")
	x := m.NewInt("x", 0, 1)
	m.AddConstraint(NewLinExpr().Add(1, x), lp.GE, 0.4)
	m.AddConstraint(NewLinExpr().Add(1, x), lp.LE, 0.6)
	if s := m.Solve(Options{}); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	m := NewModel("infeaslp")
	x := m.NewBinary("x")
	m.AddConstraint(NewLinExpr().Add(1, x), lp.GE, 2)
	if s := m.Solve(Options{}); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestProductLinearization(t *testing.T) {
	// Force each combination of (x, y) and check z = x·y.
	for _, tc := range []struct{ x, y, want float64 }{
		{0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {1, 1, 1},
	} {
		m := NewModel("prod")
		x := m.NewBinary("x")
		y := m.NewBinary("y")
		z := m.Product(x, y)
		m.AddConstraint(NewLinExpr().Add(1, x), lp.EQ, tc.x)
		m.AddConstraint(NewLinExpr().Add(1, y), lp.EQ, tc.y)
		// Objective pulls z both ways to prove it is *determined*.
		for _, sign := range []float64{1, -1} {
			m2 := NewModel("prod2")
			x2 := m2.NewBinary("x")
			y2 := m2.NewBinary("y")
			z2 := m2.Product(x2, y2)
			m2.AddConstraint(NewLinExpr().Add(1, x2), lp.EQ, tc.x)
			m2.AddConstraint(NewLinExpr().Add(1, y2), lp.EQ, tc.y)
			m2.SetObjective(NewLinExpr().Add(sign, z2))
			s := m2.Solve(Options{})
			if s.Status != Optimal {
				t.Fatalf("x=%v y=%v sign=%v: status %v", tc.x, tc.y, sign, s.Status)
			}
			if !approx(s.Value(z2), tc.want) {
				t.Errorf("x=%v y=%v sign=%v: z=%v want %v", tc.x, tc.y, sign, s.Value(z2), tc.want)
			}
		}
		_ = z
	}
}

func TestProductMemoized(t *testing.T) {
	m := NewModel("memo")
	x := m.NewBinary("x")
	y := m.NewBinary("y")
	z1 := m.Product(x, y)
	z2 := m.Product(y, x)
	if z1 != z2 {
		t.Error("Product not memoized across operand order")
	}
	if zz := m.Product(x, x); zz != x {
		t.Error("x·x should be x for binary x")
	}
}

func TestSetCover(t *testing.T) {
	// Universe {1..5}; sets: {1,2,3}, {2,4}, {3,4}, {4,5}, {1,5}.
	// Optimal cover: {1,2,3} + {4,5} = 2 sets.
	sets := [][]int{{1, 2, 3}, {2, 4}, {3, 4}, {4, 5}, {1, 5}}
	m := NewModel("cover")
	use := make([]Var, len(sets))
	for i := range sets {
		use[i] = m.NewBinary("s")
	}
	for e := 1; e <= 5; e++ {
		expr := NewLinExpr()
		for i, s := range sets {
			for _, x := range s {
				if x == e {
					expr.Add(1, use[i])
				}
			}
		}
		m.AddConstraint(expr, lp.GE, 1)
	}
	obj := NewLinExpr()
	for _, u := range use {
		obj.Add(1, u)
	}
	m.SetObjective(obj)
	s := m.Solve(Options{})
	if s.Status != Optimal || !approx(s.Obj, 2) {
		t.Errorf("status=%v obj=%v, want optimal 2", s.Status, s.Obj)
	}
}

func TestRandomBinaryMILPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nv := 3 + rng.Intn(7) // up to 9 binaries
		nr := 1 + rng.Intn(5)
		m := NewModel("rand")
		vars := make([]Var, nv)
		objC := make([]float64, nv)
		for i := range vars {
			vars[i] = m.NewBinary("x")
			objC[i] = float64(rng.Intn(21) - 10)
		}
		type row struct {
			a     []float64
			sense lp.Sense
			rhs   float64
		}
		var rowsR []row
		for r := 0; r < nr; r++ {
			a := make([]float64, nv)
			expr := NewLinExpr()
			for i := range a {
				a[i] = float64(rng.Intn(7) - 3)
				expr.Add(a[i], vars[i])
			}
			sense := lp.Sense(rng.Intn(2)) // LE or GE
			rhs := float64(rng.Intn(9) - 4)
			m.AddConstraint(expr, sense, rhs)
			rowsR = append(rowsR, row{a, sense, rhs})
		}
		obj := NewLinExpr()
		for i, v := range vars {
			obj.Add(objC[i], v)
		}
		m.SetObjective(obj)
		s := m.Solve(Options{})

		// Brute force.
		bestObj := math.Inf(1)
		feasible := false
		for mask := 0; mask < 1<<nv; mask++ {
			ok := true
			for _, r := range rowsR {
				var lhs float64
				for i := 0; i < nv; i++ {
					if mask&(1<<i) != 0 {
						lhs += r.a[i]
					}
				}
				if (r.sense == lp.LE && lhs > r.rhs+1e-9) || (r.sense == lp.GE && lhs < r.rhs-1e-9) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			feasible = true
			var o float64
			for i := 0; i < nv; i++ {
				if mask&(1<<i) != 0 {
					o += objC[i]
				}
			}
			if o < bestObj {
				bestObj = o
			}
		}

		if feasible {
			if s.Status != Optimal {
				t.Fatalf("trial %d: status %v, brute force found feasible obj %v", trial, s.Status, bestObj)
			}
			if !approx(s.Obj, bestObj) {
				t.Errorf("trial %d: obj %v, brute force %v", trial, s.Obj, bestObj)
			}
			if err := m.CheckFeasible(s.X); err != nil {
				t.Errorf("trial %d: solution infeasible: %v", trial, err)
			}
		} else if s.Status != Infeasible {
			t.Errorf("trial %d: status %v, brute force proves infeasible", trial, s.Status)
		}
	}
}

func TestRandomQuadraticObjectiveAgainstBruteForce(t *testing.T) {
	// Minimize a random binary quadratic form via Product linearization and
	// compare against exhaustive enumeration.
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		nv := 3 + rng.Intn(4) // up to 6 binaries
		lin := make([]float64, nv)
		quad := make(map[[2]int]float64)
		for i := range lin {
			lin[i] = float64(rng.Intn(11) - 5)
		}
		for i := 0; i < nv; i++ {
			for j := i + 1; j < nv; j++ {
				if rng.Intn(2) == 0 {
					quad[[2]int{i, j}] = float64(rng.Intn(11) - 5)
				}
			}
		}
		m := NewModel("quad")
		vars := make([]Var, nv)
		for i := range vars {
			vars[i] = m.NewBinary("x")
		}
		obj := NewLinExpr()
		for i, c := range lin {
			obj.Add(c, vars[i])
		}
		for k, c := range quad {
			obj.Add(c, m.Product(vars[k[0]], vars[k[1]]))
		}
		m.SetObjective(obj)
		s := m.Solve(Options{})
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}

		best := math.Inf(1)
		for mask := 0; mask < 1<<nv; mask++ {
			var o float64
			for i := 0; i < nv; i++ {
				if mask&(1<<i) != 0 {
					o += lin[i]
				}
			}
			for k, c := range quad {
				if mask&(1<<k[0]) != 0 && mask&(1<<k[1]) != 0 {
					o += c
				}
			}
			if o < best {
				best = o
			}
		}
		if !approx(s.Obj, best) {
			t.Errorf("trial %d: obj %v, brute force %v", trial, s.Obj, best)
		}
	}
}

func TestNodeLimit(t *testing.T) {
	m := NewModel("limit")
	// An equality-sum problem with many symmetric solutions to force search.
	n := 14
	expr := NewLinExpr()
	obj := NewLinExpr()
	for i := 0; i < n; i++ {
		v := m.NewBinary("x")
		expr.Add(1, v)
		obj.Add(float64(i%3)-1, v)
	}
	m.AddConstraint(expr, lp.EQ, float64(n/2))
	m.SetObjective(obj)
	s := m.Solve(Options{MaxNodes: 1})
	if s.Status == Optimal && s.Nodes > 1 {
		t.Errorf("node limit ignored: %d nodes", s.Nodes)
	}
}

func TestTimeLimitReturnsQuickly(t *testing.T) {
	m := NewModel("time")
	n := 16
	expr := NewLinExpr()
	for i := 0; i < n; i++ {
		expr.Add(1, m.NewBinary("x"))
	}
	m.AddConstraint(expr, lp.EQ, float64(n/2))
	start := time.Now()
	s := m.Solve(Options{TimeLimit: 50 * time.Millisecond})
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("time limit ignored: took %v", el)
	}
	_ = s
}

func TestCheckFeasible(t *testing.T) {
	m := NewModel("chk")
	x := m.NewBinary("x")
	y := m.NewInt("y", 0, 5)
	m.AddConstraint(NewLinExpr().Add(1, x).Add(1, y), lp.LE, 3)
	if err := m.CheckFeasible([]float64{1, 2}); err != nil {
		t.Errorf("feasible point rejected: %v", err)
	}
	if err := m.CheckFeasible([]float64{1, 3}); err == nil {
		t.Error("infeasible point accepted (1+3 > 3)")
	}
	if err := m.CheckFeasible([]float64{0.5, 1}); err == nil {
		t.Error("fractional binary accepted")
	}
	if err := m.CheckFeasible([]float64{0, 6}); err == nil {
		t.Error("out-of-bounds integer accepted")
	}
	if err := m.CheckFeasible([]float64{0}); err == nil {
		t.Error("wrong arity accepted")
	}
	_ = y
}

func TestLinExprOps(t *testing.T) {
	e := NewLinExpr()
	a, b := Var{0}, Var{1}
	e.Add(2, a).Add(3, b).Add(-2, a).AddConst(5)
	terms := e.Terms()
	if len(terms) != 1 || terms[0].Var != 1 || terms[0].Coef != 3 {
		t.Errorf("terms = %v, want [{1 3}]", terms)
	}
	f := NewLinExpr().AddExpr(2, e)
	if f.Const != 10 || f.coefs[1] != 6 {
		t.Errorf("AddExpr wrong: %+v", f)
	}
	if got := e.Eval([]float64{0, 4}); !approx(got, 17) {
		t.Errorf("Eval = %v, want 17", got)
	}
}

func TestEqualityConstraintConstFolding(t *testing.T) {
	// expr with constant: (x + 2) = 3  ⇔  x = 1.
	m := NewModel("const")
	x := m.NewInt("x", 0, 9)
	m.AddConstraint(NewLinExpr().Add(1, x).AddConst(2), lp.EQ, 3)
	m.SetObjective(NewLinExpr().Add(1, x))
	s := m.Solve(Options{})
	if s.Status != Optimal || !approx(s.Value(x), 1) {
		t.Errorf("status=%v x=%v, want 1", s.Status, s.Value(x))
	}
}

func TestGracefulZeroModel(t *testing.T) {
	m := NewModel("empty")
	s := m.Solve(Options{})
	if s.Status != Optimal || !approx(s.Obj, 0) {
		t.Errorf("empty model: status=%v obj=%v", s.Status, s.Obj)
	}
}

func TestModelAccessors(t *testing.T) {
	m := NewModel("acc")
	if m.Name() != "acc" {
		t.Errorf("Name = %q", m.Name())
	}
	x := m.NewBinary("x")
	c := m.NewContinuous("c", -1, 4)
	if m.NumVars() != 2 {
		t.Errorf("NumVars = %d", m.NumVars())
	}
	if m.VarName(x) != "x" || m.VarName(c) != "c" {
		t.Error("VarName wrong")
	}
	if x.ID() != 0 || c.ID() != 1 {
		t.Error("IDs wrong")
	}
	m.AddConstraint(NewLinExpr().Add(1, x).Add(1, c), lp.LE, 3)
	if m.NumRows() != 1 {
		t.Errorf("NumRows = %d", m.NumRows())
	}
	// Continuous variables stay fractional in the optimum.
	m.SetObjective(NewLinExpr().Add(-1, c))
	s := m.Solve(Options{})
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Value(c), 3) { // c ≤ 3 - x; optimum x=0, c=3
		t.Errorf("c = %v, want 3", s.Value(c))
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{Optimal: "optimal", Infeasible: "infeasible", Limit: "limit"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	if Status(42).String() != "?" {
		t.Error("unknown status should render ?")
	}
}

func TestProductPanicsOnNonBinary(t *testing.T) {
	m := NewModel("p")
	x := m.NewBinary("x")
	y := m.NewInt("y", 0, 3)
	defer func() {
		if recover() == nil {
			t.Error("Product accepted a non-binary operand")
		}
	}()
	m.Product(x, y)
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max x + 2c s.t. x + c ≤ 2.5, x integer 0..2, c ∈ [0, 1].
	m := NewModel("mix")
	x := m.NewInt("x", 0, 2)
	c := m.NewContinuous("c", 0, 1)
	m.AddConstraint(NewLinExpr().Add(1, x).Add(1, c), lp.LE, 2.5)
	m.SetObjective(NewLinExpr().Add(-1, x).Add(-2, c))
	s := m.Solve(Options{})
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	// Optimal: c=1 (worth 2 per unit), x=1 (x=2 would need c ≤ 0.5 →
	// 2+1 = 3 < 1+2 = 3... tie; check objective only).
	if !approx(s.Obj, -3) {
		t.Errorf("obj = %v, want -3", s.Obj)
	}
}
