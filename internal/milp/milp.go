// Package milp provides a modeling API and exact solver for mixed-integer
// linear programs, plus binary-quadratic products via exact linearization.
// Together with internal/lp it substitutes for the Gurobi optimizer used by
// the paper: the paper's synthesis model is an integer *quadratic* program
// whose only nonlinearities are products of binary variables, which
// linearize exactly (z = x·y ⇔ z ≤ x, z ≤ y, z ≥ x + y − 1 for binaries).
//
// The solver is LP-based branch & bound with depth-first search, a rounding
// heuristic for early incumbents, and most-fractional branching.
package milp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"switchsynth/internal/lp"
)

// VarKind classifies decision variables.
type VarKind int

// Variable kinds.
const (
	Continuous VarKind = iota
	Integer
	Binary
)

// Var is a handle to a model variable.
type Var struct {
	id int
}

// ID returns the dense variable index.
func (v Var) ID() int { return v.id }

// LinExpr is a linear expression  Σ coef_i · var_i + Const.
type LinExpr struct {
	coefs map[int]float64
	Const float64
}

// NewLinExpr returns the zero expression.
func NewLinExpr() *LinExpr { return &LinExpr{coefs: make(map[int]float64)} }

// Add adds coef·v to the expression and returns the expression.
func (e *LinExpr) Add(coef float64, v Var) *LinExpr {
	e.coefs[v.id] += coef
	return e
}

// AddConst adds a constant and returns the expression.
func (e *LinExpr) AddConst(c float64) *LinExpr {
	e.Const += c
	return e
}

// AddExpr adds f·other to the expression and returns the expression.
func (e *LinExpr) AddExpr(f float64, other *LinExpr) *LinExpr {
	for id, c := range other.coefs {
		e.coefs[id] += f * c
	}
	e.Const += f * other.Const
	return e
}

// Terms returns the expression's terms in variable order.
func (e *LinExpr) Terms() []lp.Term {
	ids := make([]int, 0, len(e.coefs))
	for id, c := range e.coefs {
		if c != 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	out := make([]lp.Term, len(ids))
	for i, id := range ids {
		out[i] = lp.Term{Var: id, Coef: e.coefs[id]}
	}
	return out
}

// Eval evaluates the expression at x (indexed by variable id).
func (e *LinExpr) Eval(x []float64) float64 {
	v := e.Const
	for id, c := range e.coefs {
		v += c * x[id]
	}
	return v
}

type varInfo struct {
	name   string
	kind   VarKind
	lo, hi float64
}

type rowInfo struct {
	expr  *LinExpr
	sense lp.Sense
	rhs   float64
	name  string
}

// Model is a MILP under construction.
type Model struct {
	name     string
	vars     []varInfo
	rows     []rowInfo
	obj      *LinExpr
	products map[[2]int]Var // memoized binary products
}

// NewModel returns an empty model.
func NewModel(name string) *Model {
	return &Model{name: name, obj: NewLinExpr(), products: make(map[[2]int]Var)}
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// NumVars returns the number of variables (including linearization
// auxiliaries).
func (m *Model) NumVars() int { return len(m.vars) }

// NumRows returns the number of constraint rows.
func (m *Model) NumRows() int { return len(m.rows) }

// NewBinary adds a 0/1 variable.
func (m *Model) NewBinary(name string) Var {
	return m.newVar(name, Binary, 0, 1)
}

// NewInt adds an integer variable with bounds [lo, hi].
func (m *Model) NewInt(name string, lo, hi float64) Var {
	return m.newVar(name, Integer, lo, hi)
}

// NewContinuous adds a continuous variable with bounds [lo, hi].
func (m *Model) NewContinuous(name string, lo, hi float64) Var {
	return m.newVar(name, Continuous, lo, hi)
}

func (m *Model) newVar(name string, kind VarKind, lo, hi float64) Var {
	m.vars = append(m.vars, varInfo{name: name, kind: kind, lo: lo, hi: hi})
	return Var{id: len(m.vars) - 1}
}

// VarName returns the name of v.
func (m *Model) VarName(v Var) string { return m.vars[v.id].name }

// AddConstraint adds expr (sense) rhs. The expression's constant is moved to
// the right-hand side.
func (m *Model) AddConstraint(expr *LinExpr, sense lp.Sense, rhs float64) {
	m.AddNamedConstraint("", expr, sense, rhs)
}

// AddNamedConstraint adds a labeled constraint (labels aid debugging).
func (m *Model) AddNamedConstraint(name string, expr *LinExpr, sense lp.Sense, rhs float64) {
	cp := NewLinExpr().AddExpr(1, expr)
	m.rows = append(m.rows, rowInfo{expr: cp, sense: sense, rhs: rhs - cp.Const, name: name})
	cp.Const = 0
}

// Product returns a binary variable constrained to equal x·y, where x and y
// must be binary. Repeated calls with the same pair return the same variable.
// This is the exact linearization that turns the paper's IQP into a MILP.
func (m *Model) Product(x, y Var) Var {
	if m.vars[x.id].kind != Binary || m.vars[y.id].kind != Binary {
		panic("milp: Product requires binary operands")
	}
	if x.id == y.id {
		return x // x·x = x for binaries
	}
	key := [2]int{x.id, y.id}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	if z, ok := m.products[key]; ok {
		return z
	}
	z := m.NewBinary(fmt.Sprintf("prod(%s,%s)", m.vars[x.id].name, m.vars[y.id].name))
	m.AddConstraint(NewLinExpr().Add(1, z).Add(-1, x), lp.LE, 0)
	m.AddConstraint(NewLinExpr().Add(1, z).Add(-1, y), lp.LE, 0)
	m.AddConstraint(NewLinExpr().Add(1, z).Add(-1, x).Add(-1, y), lp.GE, -1)
	m.products[key] = z
	return z
}

// SetObjective sets the minimized objective expression.
func (m *Model) SetObjective(expr *LinExpr) {
	m.obj = NewLinExpr().AddExpr(1, expr)
}

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an integer-optimal solution was found and proven.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Limit means the node or time limit was hit; Solution may still carry
	// the best incumbent found (check HasSolution).
	Limit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Limit:
		return "limit"
	}
	return "?"
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status Status
	// HasSolution reports whether X/Obj hold an integer-feasible incumbent.
	HasSolution bool
	// X holds variable values indexed by Var.ID().
	X []float64
	// Obj is the objective value of X.
	Obj float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
	// Err records why a Limit status was reached when the cause was
	// external cancellation (Options.Ctx): context.Canceled or
	// context.DeadlineExceeded. Nil for node/time limits and for
	// Optimal/Infeasible outcomes.
	Err error
}

// Value returns the value of v in the solution.
func (s *Solution) Value(v Var) float64 { return s.X[v.id] }

// Bool returns whether binary variable v is set in the solution.
func (s *Solution) Bool(v Var) bool { return s.X[v.id] > 0.5 }

// Options control the branch-and-bound search.
type Options struct {
	// TimeLimit bounds the wall-clock solve time (0 = no limit).
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes (0 = no limit).
	MaxNodes int
	// Ctx, when non-nil, is polled once per branch-and-bound node AND
	// periodically inside each LP relaxation (a single simplex solve on
	// a large model can otherwise run for minutes): a cancelled context
	// stops the solve promptly with Status Limit and Solution.Err =
	// Ctx.Err(), so a losing portfolio lane stops burning CPU the
	// moment its race is decided. TimeLimit is enforced at the same two
	// granularities.
	Ctx context.Context
}

const intTol = 1e-6

// Solve runs branch & bound and returns the best integer solution.
func (m *Model) Solve(opts Options) Solution {
	start := time.Now()
	base := lp.NewProblem(len(m.vars))
	for i, vi := range m.vars {
		base.SetBounds(i, vi.lo, vi.hi)
	}
	for _, t := range m.obj.Terms() {
		base.SetObjective(t.Var, t.Coef)
	}
	for _, r := range m.rows {
		base.AddConstraint(r.expr.Terms(), r.sense, r.rhs)
	}
	// Abort in-flight LP relaxations too: the per-node limit checks
	// below cannot interrupt a single large simplex solve, which is
	// where nearly all of the wall clock goes on big models.
	base.SetStop(func() bool {
		if opts.TimeLimit > 0 && time.Since(start) > opts.TimeLimit {
			return true
		}
		return opts.Ctx != nil && opts.Ctx.Err() != nil
	})

	intVars := make([]int, 0, len(m.vars))
	for i, vi := range m.vars {
		if vi.kind != Continuous {
			intVars = append(intVars, i)
		}
	}

	type node struct {
		lo, hi []float64
	}
	var (
		best     []float64
		found    bool
		bestObj  = math.Inf(1)
		nodes    int
		hitLimit bool
		cause    error
	)
	rootLo := make([]float64, len(m.vars))
	rootHi := make([]float64, len(m.vars))
	for i, vi := range m.vars {
		rootLo[i], rootHi[i] = vi.lo, vi.hi
	}
	stack := []node{{lo: rootLo, hi: rootHi}}

	for len(stack) > 0 {
		if opts.MaxNodes > 0 && nodes >= opts.MaxNodes {
			hitLimit = true
			break
		}
		if opts.TimeLimit > 0 && time.Since(start) > opts.TimeLimit {
			hitLimit = true
			break
		}
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				hitLimit = true
				cause = err
				break
			}
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		prob := base.Clone()
		for i := range nd.lo {
			prob.SetBounds(i, nd.lo[i], nd.hi[i])
		}
		rel := lp.Solve(prob)
		if rel.Status == lp.Aborted {
			// The deadline or context fired mid-relaxation. This node is
			// unresolved, so it must NOT be pruned as infeasible — stop
			// the whole solve exactly like the per-node limit checks.
			hitLimit = true
			if opts.Ctx != nil {
				cause = opts.Ctx.Err()
			}
			break
		}
		if rel.Status != lp.Optimal {
			continue // infeasible or unbounded branch: prune
		}
		if rel.Obj >= bestObj-1e-9 {
			continue // bound: cannot improve the incumbent
		}

		// Find the most fractional integer variable.
		branchVar, branchFrac := -1, 0.0
		for _, v := range intVars {
			f := rel.X[v] - math.Floor(rel.X[v])
			d := math.Min(f, 1-f)
			if d > intTol && d > branchFrac {
				branchVar, branchFrac = v, d
			}
		}
		if branchVar == -1 {
			// Integer feasible.
			if rel.Obj < bestObj-1e-9 {
				bestObj = rel.Obj
				best = roundInts(rel.X, intVars)
				found = true
			}
			continue
		}

		// Rounding heuristic for an early incumbent.
		if !found {
			if cand, ok := m.tryRound(rel.X, intVars); ok {
				obj := m.obj.Eval(cand)
				if obj < bestObj {
					bestObj = obj
					best = cand
					found = true
				}
			}
		}

		fl := math.Floor(rel.X[branchVar])
		// Explore the nearer side first (pushed last → popped first).
		loNode := node{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...)}
		loNode.hi[branchVar] = fl
		hiNode := node{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...)}
		hiNode.lo[branchVar] = fl + 1
		if rel.X[branchVar]-fl > 0.5 {
			stack = append(stack, loNode, hiNode)
		} else {
			stack = append(stack, hiNode, loNode)
		}
	}

	sol := Solution{Nodes: nodes, Runtime: time.Since(start), Err: cause}
	switch {
	case found && !hitLimit:
		sol.Status = Optimal
		sol.HasSolution = true
		sol.X = best
		sol.Obj = bestObj
	case found:
		sol.Status = Limit
		sol.HasSolution = true
		sol.X = best
		sol.Obj = bestObj
	case hitLimit:
		sol.Status = Limit
	default:
		sol.Status = Infeasible
	}
	return sol
}

// roundInts snaps near-integers exactly.
func roundInts(x []float64, intVars []int) []float64 {
	out := append([]float64(nil), x...)
	for _, v := range intVars {
		out[v] = math.Round(out[v])
	}
	return out
}

// tryRound rounds the relaxation and accepts the point only if it satisfies
// every constraint and bound.
func (m *Model) tryRound(x []float64, intVars []int) ([]float64, bool) {
	cand := roundInts(x, intVars)
	for i, vi := range m.vars {
		if cand[i] < vi.lo-1e-9 || cand[i] > vi.hi+1e-9 {
			return nil, false
		}
	}
	for _, r := range m.rows {
		v := r.expr.Eval(cand)
		switch r.sense {
		case lp.LE:
			if v > r.rhs+1e-7 {
				return nil, false
			}
		case lp.GE:
			if v < r.rhs-1e-7 {
				return nil, false
			}
		case lp.EQ:
			if math.Abs(v-r.rhs) > 1e-7 {
				return nil, false
			}
		}
	}
	return cand, true
}

// CheckFeasible reports whether x satisfies all constraints, bounds and
// integrality requirements of the model. Used by tests and cross-checks.
func (m *Model) CheckFeasible(x []float64) error {
	if len(x) != len(m.vars) {
		return fmt.Errorf("milp: point has %d values, model has %d vars", len(x), len(m.vars))
	}
	for i, vi := range m.vars {
		if x[i] < vi.lo-1e-6 || x[i] > vi.hi+1e-6 {
			return fmt.Errorf("milp: %s = %v out of [%v, %v]", vi.name, x[i], vi.lo, vi.hi)
		}
		if vi.kind != Continuous && math.Abs(x[i]-math.Round(x[i])) > 1e-6 {
			return fmt.Errorf("milp: %s = %v not integral", vi.name, x[i])
		}
	}
	for ri, r := range m.rows {
		v := r.expr.Eval(x)
		bad := false
		switch r.sense {
		case lp.LE:
			bad = v > r.rhs+1e-6
		case lp.GE:
			bad = v < r.rhs-1e-6
		case lp.EQ:
			bad = math.Abs(v-r.rhs) > 1e-6
		}
		if bad {
			return fmt.Errorf("milp: row %d (%s): %v %v %v violated", ri, r.name, v, r.sense, r.rhs)
		}
	}
	return nil
}
