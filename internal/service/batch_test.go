package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/planio"
	"switchsynth/internal/spec"
)

// batchSpecVariant returns the i-th member of a batch drawn from
// distinct canonical equivalence classes: Alpha partitions the key
// space, and odd members are permuted presentations of the same problem
// (isomorphic under the canonical key).
func batchSpecVariant(i, distinct int) *spec.Spec {
	var sp *spec.Spec
	if i%2 == 1 {
		sp = permutedServiceSpec(fmt.Sprintf("batch-%d", i))
	} else {
		sp = serviceSpec(fmt.Sprintf("batch-%d", i))
	}
	sp.Alpha = float64(i%distinct + 1)
	return sp
}

// TestBatchHundredSpecsSevenKeys is the dedup acceptance check: a
// 100-spec batch spanning 7 canonical keys must perform exactly 7
// solves, answering the other 93 members by plan adaptation.
func TestBatchHundredSpecsSevenKeys(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 4})
	items := make([]BatchSpec, 100)
	for i := range items {
		items[i] = BatchSpec{Spec: batchSpecVariant(i, 7)}
	}
	before := e.Snapshot()
	out := e.DoBatch(context.Background(), items)
	after := e.Snapshot()

	if solves := after.SolveCount - before.SolveCount; solves != 7 {
		t.Errorf("batch performed %d solves, want exactly 7", solves)
	}
	if after.BatchDeduped-before.BatchDeduped != 93 {
		t.Errorf("batchDeduped advanced by %d, want 93", after.BatchDeduped-before.BatchDeduped)
	}
	keys := map[string]float64{}
	for i, oc := range out {
		if oc.Err != nil {
			t.Fatalf("item %d failed: %v", i, oc.Err)
		}
		obj := oc.Resp.Synthesis.Objective
		if prev, ok := keys[oc.Key]; ok && prev != obj {
			t.Errorf("item %d: objective %v differs from its group's %v", i, obj, prev)
		}
		keys[oc.Key] = obj
		if err := switchsynth.Verify(oc.Resp.Synthesis.Result); err != nil {
			t.Errorf("item %d plan failed verification: %v", i, err)
		}
	}
	if len(keys) != 7 {
		t.Errorf("batch spanned %d distinct keys, want 7", len(keys))
	}
}

// TestBatchMatchesSequentialByteForByte is the batch-determinism gate:
// one batch of N specs must produce, member for member, plans
// byte-identical to N sequential solves on a fresh engine.
func TestBatchMatchesSequentialByteForByte(t *testing.T) {
	const n = 12
	items := make([]BatchSpec, n)
	for i := range items {
		items[i] = BatchSpec{Spec: batchSpecVariant(i, 3)}
	}

	eBatch := newTestEngine(t, Config{Workers: 4})
	out := eBatch.DoBatch(context.Background(), items)

	eSeq := newTestEngine(t, Config{Workers: 1})
	for i := range items {
		if out[i].Err != nil {
			t.Fatalf("batch item %d failed: %v", i, out[i].Err)
		}
		seq, err := eSeq.Do(context.Background(), items[i].Spec, items[i].Opts)
		if err != nil {
			t.Fatalf("sequential solve %d failed: %v", i, err)
		}
		got, err := planio.EncodeWire(out[i].Resp.Synthesis.Result)
		if err != nil {
			t.Fatal(err)
		}
		want, err := planio.EncodeWire(seq.Synthesis.Result)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("item %d: batch plan differs from sequential solve", i)
		}
	}
}

// TestBatchPartialFailure: a batch mixing solvable, degraded-anytime,
// invalid and absent specs reports each member's outcome independently —
// one bad member never fails its neighbours.
func TestBatchPartialFailure(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	bad := serviceSpec("bad")
	bad.Flows = append(bad.Flows, spec.Flow{From: "sample", To: "nowhere"})
	out := e.DoBatch(context.Background(), []BatchSpec{
		{Spec: serviceSpec("good")},
		{Spec: bad},
		{Spec: nil},
		{Spec: hardSpec16(0), Opts: switchsynth.Options{TimeLimit: 50 * time.Millisecond}},
	})

	if out[0].Err != nil {
		t.Errorf("valid member failed: %v", out[0].Err)
	}
	var verr *spec.ValidationError
	if !errors.As(out[1].Err, &verr) {
		t.Errorf("invalid member error = %v, want *spec.ValidationError", out[1].Err)
	}
	if out[2].Err == nil {
		t.Error("nil-spec member did not fail")
	}
	if status, kind := classifyHTTP(out[2].Err); status != http.StatusBadRequest || kind != "invalid" {
		t.Errorf("nil-spec member classified %d/%s, want 400/invalid", status, kind)
	}
	if out[3].Err != nil {
		t.Fatalf("anytime member failed: %v", out[3].Err)
	}
	if !out[3].Resp.Synthesis.Degraded || out[3].Resp.Synthesis.Proven {
		t.Errorf("50ms 16-pin member: Degraded=%v Proven=%v, want a degraded anytime plan",
			out[3].Resp.Synthesis.Degraded, out[3].Resp.Synthesis.Proven)
	}
	if got := e.Snapshot().JobsInvalid; got < 2 {
		t.Errorf("JobsInvalid = %d, want >= 2 (invalid and nil members)", got)
	}
}

// TestHTTPBatchEndpoint drives POST /synthesize/batch end to end: dedup
// flags, distinct-key and solve accounting, and per-item error envelopes
// in one mixed batch.
func TestHTTPBatchEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	distinct := serviceSpec("b-alpha2")
	distinct.Alpha = 2
	req := BatchRequest{Specs: []BatchRequestItem{
		{Spec: serviceSpec("b0")},
		{Spec: serviceSpec("b0-dup")},
		{Spec: permutedServiceSpec("b0-perm")},
		{Spec: distinct},
		{Spec: &spec.Spec{Name: "malformed"}},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, srv.URL+"/synthesize/batch", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200: %.300s", resp.StatusCode, raw)
	}
	var out BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	if out.Specs != 5 || out.DistinctKeys != 2 || out.Solves != 2 || out.Failed != 1 {
		t.Errorf("envelope = specs %d, distinct %d, solves %d, failed %d; want 5/2/2/1",
			out.Specs, out.DistinctKeys, out.Solves, out.Failed)
	}
	for _, i := range []int{1, 2} {
		if !out.Items[i].Dedup || out.Items[i].Response == nil {
			t.Errorf("item %d: dedup=%v response=%v, want deduped success", i, out.Items[i].Dedup, out.Items[i].Response != nil)
		}
	}
	if out.Items[0].Dedup || out.Items[3].Dedup {
		t.Error("group representatives flagged as dedup")
	}
	if out.Items[0].Response.Key != out.Items[2].Response.Key {
		t.Error("isomorphic members landed on different canonical keys")
	}
	fail := out.Items[4]
	if fail.Status != http.StatusBadRequest || fail.Kind != "invalid" || fail.Error == "" {
		t.Errorf("invalid member = %+v, want status 400 kind invalid with a message", fail)
	}
}

// TestHTTPBatchLimits pins the envelope-level rejections: an empty batch
// is a 400 and an over-long one a 413, both as JSON envelopes.
func TestHTTPBatchLimits(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, raw := postJSON(t, srv.URL+"/synthesize/batch", `{"specs": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400: %.200s", resp.StatusCode, raw)
	}

	over := BatchRequest{Specs: make([]BatchRequestItem, maxBatchSpecs+1)}
	for i := range over.Specs {
		over.Specs[i].Spec = serviceSpec("x")
	}
	body, err := json.Marshal(over)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw = postJSON(t, srv.URL+"/synthesize/batch", string(body))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413: %.200s", resp.StatusCode, raw)
	}
	var env errorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Kind != "invalid" {
		t.Errorf("413 envelope = %+v (err %v), want kind invalid", env, err)
	}
}
