// Metrics for the synthesis service: lock-free counters and a
// fixed-bucket latency histogram, aggregated into an immutable Snapshot
// for the /metrics endpoint and for tests. Everything here is safe for
// concurrent use; counters are monotonic over the engine's lifetime.
package service

import (
	"sync/atomic"
	"time"

	"switchsynth/internal/admission"
)

// solveBuckets are the upper bounds (seconds) of the solve-latency
// histogram buckets; the final implicit bucket is +Inf. The range covers
// sub-millisecond cache-adjacent solves up to the paper's multi-minute
// unfixed cases.
var solveBuckets = [...]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250,
}

// numSolveBuckets includes the +Inf overflow bucket.
const numSolveBuckets = len(solveBuckets) + 1

// Metrics aggregates the engine's observability counters.
type Metrics struct {
	jobsSubmitted atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsTimedOut  atomic.Int64

	// Failure-kind breakdown (each also counts in jobsFailed above,
	// except timeouts which count in jobsTimedOut).
	jobsInfeasible atomic.Int64
	jobsInvalid    atomic.Int64
	jobsPanicked   atomic.Int64
	// jobsShed counts requests fast-failed by an open circuit breaker
	// (these never reach a worker and count in no other bucket).
	jobsShed atomic.Int64
	// jobsShedQueue counts requests shed by the admission queue's depth
	// or wait watermarks (429 + measured Retry-After), and
	// jobsDrainRejected counts requests refused because the engine was
	// draining (503). Like breaker sheds, neither reaches a worker and
	// neither counts in any other bucket.
	jobsShedQueue     atomic.Int64
	jobsDrainRejected atomic.Int64

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	dedupCoalesced atomic.Int64
	negCacheHits   atomic.Int64
	cacheHealed    atomic.Int64

	// Durable-tier counters (all zero when no store is configured).
	// storeHits/storeMisses count engine-level lookups that reached the
	// disk tier; storeHealed counts persisted entries that read back but
	// failed to decode, adapt or verify and were evicted and re-solved.
	storeHits   atomic.Int64
	storeMisses atomic.Int64
	storeHealed atomic.Int64

	// Cluster-tier counters (all zero when no peer fill is configured).
	// peerHits count plans fetched from the owning peer, re-verified and
	// served without a local solve; peerMisses count fill attempts that
	// found no plan (owner down, not owner of the key, or owner lacks
	// it); peerRejected counts fetched plans that failed decoding, key
	// re-derivation or verification — these never reach a client or the
	// local store. peerImported counts plans pulled in by anti-entropy
	// sync and verified into the local tiers.
	peerHits     atomic.Int64
	peerMisses   atomic.Int64
	peerRejected atomic.Int64
	peerImported atomic.Int64

	// Batch intake counters: batchRequests counts POST /synthesize/batch
	// calls (Engine.DoBatch), batchSpecs the specs they carried, and
	// batchDeduped the members answered from another member's solve —
	// the intra-batch dedup the admission tier exists for.
	batchRequests atomic.Int64
	batchSpecs    atomic.Int64
	batchDeduped  atomic.Int64

	// Streaming counters: incumbentsPublished counts anytime plans the
	// optimizer pushed through the incumbent hook; streamWatches counts
	// DoStream/WatchKey subscriptions.
	incumbentsPublished atomic.Int64
	streamWatches       atomic.Int64

	// Portfolio-tier counters. portfolioRaces counts solves routed through
	// portfolio.Race; the three win counters break them down by which lane
	// supplied the served plan (they sum to the races that served one).
	// portfolioDisagreements counts raced solves failed closed by a
	// backend disagreement — it must stay zero; the CI chaos and
	// determinism gates assert on it.
	portfolioRaces         atomic.Int64
	portfolioWinsSearch    atomic.Int64
	portfolioWinsMILP      atomic.Int64
	portfolioWinsGreedy    atomic.Int64
	portfolioDisagreements atomic.Int64

	// Warm-start counters. warmStartHits/warmStartMisses count similarity
	// index probes on cold search-engine solves; seedTightened counts
	// proven solves whose optimum strictly beat their adapted seed (the
	// seed bounded the search but was not itself optimal).
	warmStartHits   atomic.Int64
	warmStartMisses atomic.Int64
	seedTightened   atomic.Int64

	solveCount   atomic.Int64
	solveNanos   atomic.Int64
	solveBucket  [numSolveBuckets]atomic.Int64
	solveMaxNano atomic.Int64
}

// observeSolve records one completed (or failed) solve's wall-clock time.
func (m *Metrics) observeSolve(d time.Duration) {
	m.solveCount.Add(1)
	m.solveNanos.Add(d.Nanoseconds())
	for {
		prev := m.solveMaxNano.Load()
		if d.Nanoseconds() <= prev || m.solveMaxNano.CompareAndSwap(prev, d.Nanoseconds()) {
			break
		}
	}
	sec := d.Seconds()
	for i, ub := range solveBuckets {
		if sec <= ub {
			m.solveBucket[i].Add(1)
			return
		}
	}
	m.solveBucket[len(solveBuckets)].Add(1)
}

// Snapshot is a point-in-time copy of the service metrics, shaped for
// JSON serving. Quantiles are estimated from the histogram by linear
// interpolation inside the winning bucket (the overflow bucket reports
// the maximum observed value).
type Snapshot struct {
	// Job outcomes. Submitted counts every request handed to the engine;
	// Completed/Failed/TimedOut partition the finished ones.
	JobsSubmitted int64 `json:"jobsSubmitted"`
	JobsCompleted int64 `json:"jobsCompleted"`
	JobsFailed    int64 `json:"jobsFailed"`
	JobsTimedOut  int64 `json:"jobsTimedOut"`

	// Failure counts by kind. Infeasible/Invalid/Panicked break down
	// JobsFailed; TimedOut is its own aggregate above; Shed counts
	// breaker fast-fails, which never reach a worker.
	JobsInfeasible int64 `json:"jobsInfeasible"`
	JobsInvalid    int64 `json:"jobsInvalid"`
	JobsPanicked   int64 `json:"jobsPanicked"`
	JobsShed       int64 `json:"jobsShed"`
	// JobsShedQueue counts admission-queue sheds (watermarks), and
	// JobsDrainRejected requests refused during graceful drain; both are
	// disjoint from JobsShed (breaker) and from the finished buckets.
	JobsShedQueue     int64 `json:"jobsShedQueue"`
	JobsDrainRejected int64 `json:"jobsDrainRejected"`

	// Result-cache effectiveness. A coalesced request neither hit nor
	// missed: it attached to another request's in-flight solve.
	// NegCacheHits are requests answered from the known-infeasible cache;
	// CacheHealed counts corrupted entries dropped and re-solved.
	CacheHits      int64 `json:"cacheHits"`
	CacheMisses    int64 `json:"cacheMisses"`
	DedupCoalesced int64 `json:"dedupCoalesced"`
	NegCacheHits   int64 `json:"negCacheHits"`
	CacheHealed    int64 `json:"cacheHealed"`
	CacheEntries   int   `json:"cacheEntries"`
	NegCacheSize   int   `json:"negCacheEntries"`

	// Durable plan store (the disk tier behind the memory LRU). Enabled
	// reports whether a store is configured; the engine-level counters
	// (Hits/Misses/Healed) count two-tier lookups that reached disk,
	// the gauges mirror the store's own accounting — entries and bytes
	// on disk, completed compactions, and the recovery outcome of the
	// last open (records replayed, torn-tail bytes truncated).
	StoreEnabled        bool  `json:"storeEnabled"`
	StoreHits           int64 `json:"storeHits"`
	StoreMisses         int64 `json:"storeMisses"`
	StoreHealed         int64 `json:"storeHealed"`
	StoreEntries        int   `json:"storeEntries"`
	StoreDiskBytes      int64 `json:"storeDiskBytes"`
	StoreDiskHits       int64 `json:"storeDiskHits"`
	StoreDiskMisses     int64 `json:"storeDiskMisses"`
	StoreCompactions    int64 `json:"storeCompactions"`
	StoreRecovered      int64 `json:"storeRecoveredRecords"`
	StoreTruncatedBytes int64 `json:"storeTruncatedBytes"`
	StoreCorruptEvicted int64 `json:"storeCorruptEvicted"`
	StoreFsyncErrors    int64 `json:"storeFsyncErrors"`

	// Cluster tier (the peer-fill path in front of the local solve).
	// PeerFillEnabled reports whether a fill hook is configured; the
	// counters mirror the Metrics fields of the same names.
	PeerFillEnabled bool  `json:"peerFillEnabled"`
	PeerHits        int64 `json:"peerHits"`
	PeerMisses      int64 `json:"peerMisses"`
	PeerRejected    int64 `json:"peerRejected"`
	PeerImported    int64 `json:"peerImported"`

	// Plan wire format and the verified-bytes digest cache. WireFormat is
	// the encoding this engine produces ("binary" or "json"); the digest
	// gauges mirror planio.VerifiedCache.Stats — a hit means
	// byte-identical plan bytes skipped a redundant re-verify because the
	// exact same bytes already passed the full import check. When the
	// engine shares the process-wide cache, the counters are process-wide
	// too.
	WireFormat          string `json:"wireFormat"`
	DigestCacheEnabled  bool   `json:"digestCacheEnabled"`
	DigestCacheEntries  int    `json:"digestCacheEntries"`
	DigestCacheCapacity int    `json:"digestCacheCapacity"`
	DigestCacheHits     uint64 `json:"digestCacheHits"`
	DigestCacheMisses   uint64 `json:"digestCacheMisses"`
	DigestCacheAdds     uint64 `json:"digestCacheAdds"`

	// Batch intake and streaming (the admission tier's other two jobs).
	BatchRequests       int64 `json:"batchRequests"`
	BatchSpecs          int64 `json:"batchSpecs"`
	BatchDeduped        int64 `json:"batchDeduped"`
	IncumbentsPublished int64 `json:"incumbentsPublished"`
	StreamWatches       int64 `json:"streamWatches"`

	// Engine load. BreakersOpen is the number of canonical keys currently
	// shedding load (open or probing half-open). Admission is the fair
	// queue's own gauge block: per-class depths, sheds, measured dequeue
	// gap and the current Retry-After hint.
	QueueDepth   int             `json:"queueDepth"`
	Workers      int             `json:"workers"`
	BreakersOpen int             `json:"breakersOpen"`
	Admission    admission.Stats `json:"admission"`

	// Exact-solver internals (process-wide, cumulative across every solve
	// in this process — including solves not routed through the engine).
	// SolverWorkers is the engine's default per-solve parallelism;
	// SolverNodesTotal counts branch-and-bound nodes expanded;
	// SolverStealsTotal counts work units claimed by a worker other than
	// their round-robin owner.
	SolverWorkers     int   `json:"solver_workers"`
	SolverNodesTotal  int64 `json:"solver_nodes_total"`
	SolverStealsTotal int64 `json:"solver_steals_total"`

	// Portfolio tier. PortfolioEnabled reports whether racing is
	// configured (the warm-start index has its own gauges below and is on
	// by default). Lane wins sum to the races that served a plan;
	// Disagreements must stay zero — any nonzero value means two
	// independent optimality proofs contradicted each other and the
	// affected solves failed closed.
	PortfolioEnabled       bool  `json:"portfolio_enabled"`
	PortfolioRaces         int64 `json:"portfolio_races"`
	PortfolioWinsSearch    int64 `json:"portfolio_lane_wins_search"`
	PortfolioWinsMILP      int64 `json:"portfolio_lane_wins_milp"`
	PortfolioWinsGreedy    int64 `json:"portfolio_lane_wins_greedy"`
	PortfolioDisagreements int64 `json:"portfolio_disagreements"`

	// Warm-start effectiveness. Hits/Misses count similarity index probes
	// on cold search-engine solves; SeedTightened counts proven solves
	// that strictly beat their seed. SeedsAdopted/SeedsRejected are the
	// optimizer's own seed-validation counters (process-wide, like the
	// solver internals below): a rejected seed was stale or infeasible and
	// was ignored, never trusted.
	WarmStartHits    int64 `json:"portfolio_warmstart_hits"`
	WarmStartMisses  int64 `json:"portfolio_warmstart_misses"`
	SeedTightened    int64 `json:"portfolio_seed_tightened"`
	SeedsAdopted     int64 `json:"portfolio_seeds_adopted"`
	SeedsRejected    int64 `json:"portfolio_seeds_rejected"`
	SimIndexEntries  int   `json:"simindex_entries"`
	SimIndexCapacity int   `json:"simindex_capacity"`
	SimIndexLookups  int64 `json:"simindex_lookups"`
	SimIndexHits     int64 `json:"simindex_hits"`

	// Solve latency (actual optimizer runs only — cache hits excluded).
	SolveCount       int64   `json:"solveCount"`
	SolveMeanSeconds float64 `json:"solveMeanSeconds"`
	SolveP50Seconds  float64 `json:"solveP50Seconds"`
	SolveP90Seconds  float64 `json:"solveP90Seconds"`
	SolveP99Seconds  float64 `json:"solveP99Seconds"`
	SolveMaxSeconds  float64 `json:"solveMaxSeconds"`
}

// snapshot copies the counters; the engine fills in cache/queue gauges.
func (m *Metrics) snapshot() Snapshot {
	s := Snapshot{
		JobsSubmitted:     m.jobsSubmitted.Load(),
		JobsCompleted:     m.jobsCompleted.Load(),
		JobsFailed:        m.jobsFailed.Load(),
		JobsTimedOut:      m.jobsTimedOut.Load(),
		JobsInfeasible:    m.jobsInfeasible.Load(),
		JobsInvalid:       m.jobsInvalid.Load(),
		JobsPanicked:      m.jobsPanicked.Load(),
		JobsShed:          m.jobsShed.Load(),
		JobsShedQueue:     m.jobsShedQueue.Load(),
		JobsDrainRejected: m.jobsDrainRejected.Load(),
		CacheHits:         m.cacheHits.Load(),
		CacheMisses:       m.cacheMisses.Load(),
		DedupCoalesced:    m.dedupCoalesced.Load(),
		NegCacheHits:      m.negCacheHits.Load(),
		CacheHealed:       m.cacheHealed.Load(),
		StoreHits:         m.storeHits.Load(),
		StoreMisses:       m.storeMisses.Load(),
		StoreHealed:       m.storeHealed.Load(),
		PeerHits:          m.peerHits.Load(),
		PeerMisses:        m.peerMisses.Load(),
		PeerRejected:      m.peerRejected.Load(),
		PeerImported:      m.peerImported.Load(),

		BatchRequests:       m.batchRequests.Load(),
		BatchSpecs:          m.batchSpecs.Load(),
		BatchDeduped:        m.batchDeduped.Load(),
		IncumbentsPublished: m.incumbentsPublished.Load(),
		StreamWatches:       m.streamWatches.Load(),

		PortfolioRaces:         m.portfolioRaces.Load(),
		PortfolioWinsSearch:    m.portfolioWinsSearch.Load(),
		PortfolioWinsMILP:      m.portfolioWinsMILP.Load(),
		PortfolioWinsGreedy:    m.portfolioWinsGreedy.Load(),
		PortfolioDisagreements: m.portfolioDisagreements.Load(),
		WarmStartHits:          m.warmStartHits.Load(),
		WarmStartMisses:        m.warmStartMisses.Load(),
		SeedTightened:          m.seedTightened.Load(),

		SolveCount: m.solveCount.Load(),
		SolveMaxSeconds: time.Duration(
			m.solveMaxNano.Load()).Seconds(),
	}
	if s.SolveCount > 0 {
		s.SolveMeanSeconds = time.Duration(m.solveNanos.Load() / s.SolveCount).Seconds()
	}
	var counts [numSolveBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = m.solveBucket[i].Load()
		total += counts[i]
	}
	s.SolveP50Seconds = quantile(counts[:], total, 0.50, s.SolveMaxSeconds)
	s.SolveP90Seconds = quantile(counts[:], total, 0.90, s.SolveMaxSeconds)
	s.SolveP99Seconds = quantile(counts[:], total, 0.99, s.SolveMaxSeconds)
	return s
}

// quantile estimates the q-quantile from cumulative histogram counts.
func quantile(counts []int64, total int64, q, max float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i == len(solveBuckets) {
			return max // overflow bucket: report the observed maximum
		}
		lo := 0.0
		if i > 0 {
			lo = solveBuckets[i-1]
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + frac*(solveBuckets[i]-lo)
	}
	return max
}
