package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"switchsynth"
	"switchsynth/internal/planio"
	"switchsynth/internal/portfolio"
	"switchsynth/internal/spec"
)

// fixedServiceSpec is MILP-tractable: small, Fixed binding. The exact
// MILP lane only races usefully on instances like this; the unfixed
// binding encoding is intractable even at 8 pins.
func fixedServiceSpec(name string) *spec.Spec {
	return &spec.Spec{
		Name:       name,
		SwitchPins: 8,
		Modules:    []string{"a", "b", "o1", "o2"},
		Flows: []spec.Flow{
			{From: "a", To: "o1"},
			{From: "b", To: "o2"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Fixed,
		FixedPins: map[string]int{"a": 0, "o1": 1, "b": 4, "o2": 5},
	}
}

// neighborServiceSpec is serviceSpec plus one module and one flow — one
// similarity edit away, so a solve of serviceSpec warms it.
func neighborServiceSpec(name string) *spec.Spec {
	return &spec.Spec{
		Name:       name,
		SwitchPins: 8,
		Modules:    []string{"sample", "buffer", "mix1", "mix2", "mix3"},
		Flows: []spec.Flow{
			{From: "sample", To: "mix1"},
			{From: "buffer", To: "mix2"},
			{From: "buffer", To: "mix3"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
}

func planBytes(t *testing.T, res *spec.Result) []byte {
	t.Helper()
	data, err := planio.Encode(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// TestPortfolioRaceServesIdenticalPlan races the full default lane set
// on a MILP-tractable spec and demands the served plan be byte-identical
// to a plain (non-raced) engine solve, with the lane wins accounting for
// every race and zero disagreements.
func TestPortfolioRaceServesIdenticalPlan(t *testing.T) {
	before := portfolio.Disagreements()
	plain := newTestEngine(t, Config{Workers: 1})
	raced := newTestEngine(t, Config{Workers: 1, Portfolio: true})

	sp := fixedServiceSpec("raced")
	cold, err := plain.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := raced.Do(context.Background(), fixedServiceSpec("raced"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(planBytes(t, cold.Synthesis.Result), planBytes(t, hot.Synthesis.Result)) {
		t.Error("raced plan differs from plain solve")
	}

	ps := raced.PortfolioStats()
	if !ps.Enabled {
		t.Error("PortfolioStats.Enabled = false on a racing engine")
	}
	if ps.Races != 1 {
		t.Errorf("races = %d, want 1", ps.Races)
	}
	if wins := ps.LaneWinsSearch + ps.LaneWinsMILP + ps.LaneWinsGreedy; wins != ps.Races {
		t.Errorf("lane wins sum to %d, want %d (every served race has exactly one winner)", wins, ps.Races)
	}
	if ps.Disagreements != 0 {
		t.Errorf("disagreements = %d, want 0", ps.Disagreements)
	}
	if got := portfolio.Disagreements() - before; got != 0 {
		t.Errorf("process disagreements grew by %d during the race", got)
	}
	if plainPS := plain.PortfolioStats(); plainPS.Enabled || plainPS.Races != 0 {
		t.Errorf("non-racing engine reports enabled=%v races=%d", plainPS.Enabled, plainPS.Races)
	}
}

// TestPortfolioLaneWinsSumToCompletedRaces pushes several distinct specs
// through a racing engine and checks the invariant the /portfolio
// endpoint documents: every race that served a plan has exactly one
// winning lane.
func TestPortfolioLaneWinsSumToCompletedRaces(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, Portfolio: true, PortfolioLanes: "search,greedy"})
	names := []string{"w1", "w2", "w3"}
	specs := []*spec.Spec{serviceSpec(names[0]), neighborServiceSpec(names[1]), fixedServiceSpec(names[2])}
	for _, sp := range specs {
		if _, err := e.Do(context.Background(), sp, switchsynth.Options{}); err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
	}
	ps := e.PortfolioStats()
	if ps.Races != int64(len(specs)) {
		t.Errorf("races = %d, want %d", ps.Races, len(specs))
	}
	if wins := ps.LaneWinsSearch + ps.LaneWinsMILP + ps.LaneWinsGreedy; wins != ps.Races {
		t.Errorf("lane wins sum to %d, want %d", wins, ps.Races)
	}
	if ps.LaneWinsMILP != 0 {
		t.Errorf("milp lane won %d races but was not configured", ps.LaneWinsMILP)
	}
	if ps.Disagreements != 0 {
		t.Errorf("disagreements = %d, want 0", ps.Disagreements)
	}
	if got, want := ps.Lanes, []string{"search", "greedy"}; len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("lanes = %v, want %v", got, want)
	}
}

// TestWarmStartAcrossNeighborSolves solves a spec, then its one-edit
// neighbor, and expects the second solve to warm-start from the first —
// with the warm plan byte-identical to a cold engine's.
func TestWarmStartAcrossNeighborSolves(t *testing.T) {
	warm := newTestEngine(t, Config{Workers: 1})
	coldEng := newTestEngine(t, Config{Workers: 1, SimIndexSize: -1})

	if _, err := warm.Do(context.Background(), serviceSpec("base"), switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	hot, err := warm.Do(context.Background(), neighborServiceSpec("neighbor"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldEng.Do(context.Background(), neighborServiceSpec("neighbor"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(planBytes(t, cold.Synthesis.Result), planBytes(t, hot.Synthesis.Result)) {
		t.Error("warm-started plan differs from cold solve")
	}

	ps := warm.PortfolioStats()
	if ps.WarmStartHits != 1 {
		t.Errorf("warm-start hits = %d, want 1 (the neighbor solve)", ps.WarmStartHits)
	}
	if ps.WarmStartMisses != 1 {
		t.Errorf("warm-start misses = %d, want 1 (the cold base solve)", ps.WarmStartMisses)
	}
	if ps.SimIndex.Entries != 2 {
		t.Errorf("simindex entries = %d, want 2", ps.SimIndex.Entries)
	}
	if cps := coldEng.PortfolioStats(); cps.WarmStartHits != 0 || cps.WarmStartMisses != 0 || cps.SimIndex.Capacity != 0 {
		t.Errorf("disabled simindex still counting: %+v", cps)
	}

	snap := warm.Snapshot()
	if snap.WarmStartHits != 1 || snap.SimIndexEntries != 2 {
		t.Errorf("snapshot warm-start hits = %d entries = %d, want 1 and 2", snap.WarmStartHits, snap.SimIndexEntries)
	}
	if snap.SeedsRejected != 0 && snap.SeedsAdopted == 0 {
		t.Errorf("seeds: adopted=%d rejected=%d — adapted neighbor seed should adopt", snap.SeedsAdopted, snap.SeedsRejected)
	}
}

// TestPortfolioEndpoint exercises GET /portfolio end to end and checks
// the same counters surface in /metrics under their portfolio_* keys.
func TestPortfolioEndpoint(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Portfolio: true, PortfolioLanes: "search,greedy"})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)

	body, _ := json.Marshal(SynthesizeRequest{Spec: serviceSpec("ep")})
	resp, err := http.Post(srv.URL+"/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize status %d", resp.StatusCode)
	}

	pr, err := http.Get(srv.URL + "/portfolio")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("/portfolio status %d", pr.StatusCode)
	}
	var ps PortfolioStats
	if err := json.NewDecoder(pr.Body).Decode(&ps); err != nil {
		t.Fatal(err)
	}
	if !ps.Enabled || ps.Races != 1 || ps.Disagreements != 0 {
		t.Errorf("portfolio payload enabled=%v races=%d disagreements=%d, want true/1/0", ps.Enabled, ps.Races, ps.Disagreements)
	}
	if wins := ps.LaneWinsSearch + ps.LaneWinsMILP + ps.LaneWinsGreedy; wins != ps.Races {
		t.Errorf("lane wins sum to %d, want %d", wins, ps.Races)
	}

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"portfolio_enabled", "portfolio_races", "portfolio_lane_wins_search",
		"portfolio_disagreements", "portfolio_warmstart_hits", "simindex_entries"} {
		if _, ok := m[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
	if races, _ := m["portfolio_races"].(float64); int64(races) != ps.Races {
		t.Errorf("/metrics portfolio_races = %v, /portfolio races = %d", m["portfolio_races"], ps.Races)
	}

	mm, err := http.NewRequest(http.MethodPost, srv.URL+"/portfolio", nil)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := http.DefaultClient.Do(mm)
	if err != nil {
		t.Fatal(err)
	}
	wr.Body.Close()
	if wr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /portfolio status %d, want 405", wr.StatusCode)
	}
}

// TestPortfolioRaceInfeasibleNegativeCaches proves that a raced
// infeasibility behaves like a plain one: typed ErrNoSolution out, the
// proof lands in the negative cache, and no disagreement fires.
func TestPortfolioRaceInfeasibleNegativeCaches(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Portfolio: true, PortfolioLanes: "search,greedy"})
	// Conflicting flows pinned to adjacent corner pins cannot route
	// node-disjoint: provably infeasible, not invalid.
	sp := &spec.Spec{
		Name:       "impossible",
		SwitchPins: 8,
		Modules:    []string{"in1", "in2", "out1", "out2"},
		Flows: []spec.Flow{
			{From: "in1", To: "out1"},
			{From: "in2", To: "out2"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Fixed,
		FixedPins: map[string]int{"in1": 0, "out1": 2, "in2": 1, "out2": 3},
	}
	var nosol *spec.ErrNoSolution
	if _, err := e.Do(context.Background(), sp, switchsynth.Options{}); !errors.As(err, &nosol) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
	if _, err := e.Do(context.Background(), sp, switchsynth.Options{}); !errors.As(err, &nosol) {
		t.Fatalf("replayed err = %v, want ErrNoSolution", err)
	}
	snap := e.Snapshot()
	if snap.NegCacheHits != 1 {
		t.Errorf("negative-cache hits = %d, want 1", snap.NegCacheHits)
	}
	if ps := e.PortfolioStats(); ps.Disagreements != 0 {
		t.Errorf("disagreements = %d, want 0 on an agreed infeasibility", ps.Disagreements)
	}
}
