package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/spec"
)

// TestCloseNowWithInFlightAndQueuedWaiters races CloseNow against a full
// pipeline: one solve blocked in the worker, more jobs queued behind it,
// and waiters attached to each. Every waiter must return promptly (no
// deadlock), and the pool must not leak goroutines.
func TestCloseNowWithInFlightAndQueuedWaiters(t *testing.T) {
	checkLeaks := checkGoroutineLeaks(t)
	e := New(Config{Workers: 1, QueueDepth: 2})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		// Block until CloseNow cancels the engine context, like a long
		// optimizer run would.
		<-ctx.Done()
		return nil, ctx.Err()
	}

	const waiters = 6
	var wg sync.WaitGroup
	results := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := serviceSpec(fmt.Sprintf("shutdown-%d", i))
			sp.Alpha = float64(i + 1) // distinct canonical keys fill the queue
			_, err := e.Do(context.Background(), sp, switchsynth.Options{})
			results <- err
		}(i)
	}
	// Let the first job occupy the worker and the rest pile up.
	time.Sleep(50 * time.Millisecond)
	e.CloseNow()

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters still blocked 10s after CloseNow")
	}
	close(results)
	for err := range results {
		if err == nil {
			t.Error("a waiter got a plan from a solve that only returns ctx.Err()")
		}
	}
	checkLeaks()
}

// TestDoAfterCloseReturnsTypedError checks the typed rejection on both
// shutdown paths.
func TestDoAfterCloseReturnsTypedError(t *testing.T) {
	for _, tc := range []struct {
		name  string
		close func(e *Engine)
	}{
		{"Close", func(e *Engine) { e.Close() }},
		{"CloseNow", func(e *Engine) { e.CloseNow() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkLeaks := checkGoroutineLeaks(t)
			e := New(Config{Workers: 2})
			tc.close(e)
			_, err := e.Do(context.Background(), serviceSpec("late"), switchsynth.Options{})
			if !errors.Is(err, ErrEngineClosed) {
				t.Fatalf("err = %v, want ErrEngineClosed", err)
			}
			checkLeaks()
		})
	}
}

// TestCloseRacesConcurrentSubmitters hammers Do from many goroutines
// while Close lands in the middle: every call must either complete or
// fail with a typed error, and nothing may hang or leak.
func TestCloseRacesConcurrentSubmitters(t *testing.T) {
	base := solveOnce(t, serviceSpec("race"))
	checkLeaks := checkGoroutineLeaks(t)
	e := New(Config{Workers: 2, BreakerThreshold: -1})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		time.Sleep(time.Millisecond)
		return base, nil
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				sp := serviceSpec(fmt.Sprintf("race-%d", i))
				sp.Alpha = float64(i + 1)
				_, err := e.Do(context.Background(), sp, switchsynth.Options{})
				if err != nil && !errors.Is(err, ErrEngineClosed) &&
					!errors.Is(err, context.Canceled) {
					t.Errorf("goroutine %d: unexpected error %v", g, err)
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	e.CloseNow()

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(10 * time.Second):
		t.Fatal("submitters still blocked 10s after CloseNow")
	}
	checkLeaks()
}
