// Batch intake: many specs, one admission decision per distinct plan.
//
// A synthesis campaign (cmd/experiments, a client's design sweep)
// arrives as a pile of specs, most of which are isomorphic to one
// another under the canonical key. DoBatch canonicalizes the whole pile
// first and performs exactly one solve per distinct canonical key: the
// other members of each group are answered by adapting the shared plan
// onto their own flow indexing — the same adaptation every cache hit
// performs — so a 100-spec batch with 7 distinct keys costs 7 solves.
// Cross-batch dedup is free: each group's representative goes through
// Do, which consults the memory, disk and peer cache tiers and attaches
// to any in-flight solve of the same key.
//
// Failure is per-item: an invalid member, or a representative shed by
// the breaker or the admission queue, fails only its own group, and the
// outcome slice reports each member's error independently.
package service

import (
	"context"
	"errors"
	"sync"

	"switchsynth"
	"switchsynth/internal/admission"
	"switchsynth/internal/spec"
)

// errNilBatchSpec fails a batch member that carries no spec at all. HTTP
// rejects these before the engine, so this guards direct library misuse.
var errNilBatchSpec = errors.New("service: batch item has no spec")

// BatchSpec is one member of a DoBatch call.
type BatchSpec struct {
	Spec *spec.Spec
	Opts switchsynth.Options
}

// BatchOutcome is one member's result, in the batch's original order.
type BatchOutcome struct {
	// Index is the member's position in the DoBatch input.
	Index int
	// Key is the member's canonical job key ("" when the spec was too
	// invalid to canonicalize).
	Key string
	// Dedup reports that this member was answered from another batch
	// member's solve rather than its own admission.
	Dedup bool
	// Resp is the member's synthesis (nil iff Err is non-nil).
	Resp *Response
	// Err is the member's failure, carrying the same typed errors Do
	// returns (*spec.ValidationError, *ErrOverloaded, *admission.ErrShed,
	// *search.ErrTimeout, ...).
	Err error
}

// DoBatch synthesizes every item, solving each distinct canonical key
// exactly once. Groups run concurrently; within a group the first member
// is the representative whose Do call admits, solves (or hits a cache
// tier) and pays the queue wait, and the rest adapt its plan. The
// returned slice has one outcome per input item, in input order.
func (e *Engine) DoBatch(ctx context.Context, items []BatchSpec) []BatchOutcome {
	e.metrics.batchRequests.Add(1)
	e.metrics.batchSpecs.Add(int64(len(items)))
	out := make([]BatchOutcome, len(items))
	groups := make(map[string][]int, len(items))
	order := make([]string, 0, len(items))
	for i, it := range items {
		out[i].Index = i
		if it.Spec == nil {
			e.metrics.jobsSubmitted.Add(1)
			e.metrics.jobsFailed.Add(1)
			e.metrics.jobsInvalid.Add(1)
			out[i].Err = errNilBatchSpec
			continue
		}
		key, err := canonicalJobKey(it.Spec, it.Opts)
		if err != nil {
			e.metrics.jobsSubmitted.Add(1)
			e.classifyFailure(err)
			out[i].Err = err
			continue
		}
		out[i].Key = key
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	var wg sync.WaitGroup
	for _, key := range order {
		members := groups[key]
		wg.Add(1)
		go func(members []int) {
			defer wg.Done()
			rep := members[0]
			resp, err := e.Do(ctx, items[rep].Spec, items[rep].Opts)
			out[rep].Resp, out[rep].Err = resp, err
			for _, i := range members[1:] {
				e.metrics.jobsSubmitted.Add(1)
				out[i].Dedup = true
				if err != nil {
					e.classifyDedupFailure(err)
					out[i].Err = err
					continue
				}
				mresp, merr := e.assemble(&Response{
					Key:       out[i].Key,
					CacheHit:  resp.CacheHit,
					DiskHit:   resp.DiskHit,
					PeerHit:   resp.PeerHit,
					Coalesced: true,
					SolveTime: resp.SolveTime,
				}, resp.Synthesis.Result, items[i].Spec, items[i].Opts)
				if merr != nil {
					e.metrics.jobsFailed.Add(1)
					out[i].Err = merr
					continue
				}
				e.metrics.jobsCompleted.Add(1)
				e.metrics.batchDeduped.Add(1)
				out[i].Resp = mresp
			}
		}(members)
	}
	wg.Wait()
	return out
}

// classifyDedupFailure counts a dedup member inheriting its
// representative's failure, mirroring the buckets Do used for the
// representative itself (shed and drain rejections are not generic job
// failures).
func (e *Engine) classifyDedupFailure(err error) {
	switch {
	case errors.Is(err, &ErrOverloaded{}):
		e.metrics.jobsShed.Add(1)
	case errors.Is(err, &admission.ErrShed{}):
		e.metrics.jobsShedQueue.Add(1)
	case errors.Is(err, &admission.ErrDraining{}):
		e.metrics.jobsDrainRejected.Add(1)
	default:
		e.classifyFailure(err)
	}
}
