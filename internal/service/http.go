// HTTP surface of the synthesis service: the handlers behind cmd/synthd.
//
//	POST /synthesize              JSON SynthesizeRequest in, SynthesizeResponse
//	                              out; with ?wait=proof the response is an
//	                              ndjson stream of improving anytime plans
//	                              ending in the proven one (or an error line)
//	POST /synthesize/batch        JSON BatchRequest in, BatchResponse out: the
//	                              specs are canonicalized and deduped against
//	                              each other and the cache tiers, one solve per
//	                              distinct canonical key, per-item outcomes
//	GET  /synthesize/stream/{key} attach to key's in-flight solve and stream
//	                              its incumbents (ndjson); 404 when the key has
//	                              neither a cached plan nor a running solve
//	GET  /healthz                 liveness + pool shape (alive even while
//	                              draining)
//	GET  /readyz                  readiness: 503 once drain has begun or the
//	                              engine closed, so probes and load balancers
//	                              stop routing here while /healthz still
//	                              reports the process up
//	GET  /metrics                 Snapshot as JSON (plus a "cluster" section
//	                              when a cluster status hook is configured)
//	GET  /portfolio               the portfolio tier's configuration and
//	                              counters: racing lanes, lane wins, backend
//	                              disagreements (must be zero), warm-start
//	                              hit rate and similarity-index gauges
//	GET  /plans                   manifest of locally held canonical plan keys
//	GET  /plans/{key}             the stored planio-encoded plan, 404 when
//	                              absent — the peer cache-fill and anti-entropy
//	                              endpoints
//	PUT  /plans/{key}             receive a replication / read-repair push from
//	                              a peer; the body is re-verified end to end
//	                              (Engine.ImportPlan) before it is stored — 204
//	                              on success, 422 when verification rejects it
//
// Admission identity rides on two request headers: X-Synthd-Tenant names
// the tenant sharing the fair queue (absent means the default tenant)
// and X-Synthd-Priority picks the class — "interactive" (default for
// /synthesize), "batch" (default for /synthesize/batch) or "background".
// An unknown class is a 400.
//
// Error responses are JSON {"error": ..., "kind": ...} where kind is one
// of "invalid" (400, or 413 for an oversized body), "not-found" (404),
// "no-solution" (422), "timeout" (504), "overloaded" (429, circuit
// breaker open or admission queue over its watermarks), "unavailable"
// (503, engine closed or draining) or "panic"/"internal" (500). 429 and
// 503 responses carry a Retry-After header (whole seconds) measured from
// the queue's observed dequeue rate, clamped to [1, 30].
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"switchsynth"
	"switchsynth/internal/admission"
	"switchsynth/internal/faultinject"
	"switchsynth/internal/planio"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// maxRequestBody bounds /synthesize payloads; the largest supported
// switch spec is a few KB, so 1 MiB is generous.
const maxRequestBody = 1 << 20

// MaxRequestBody is the exported body limit, so the cluster middleware
// (which must read the body to compute the routing key) enforces the
// same bound instead of buffering an unbounded payload.
const MaxRequestBody = maxRequestBody

// maxBatchRequestBody bounds /synthesize/batch payloads: room for
// maxBatchSpecs specs of generous size.
const maxBatchRequestBody = 16 << 20

// maxBatchSpecs bounds how many specs one batch may carry.
const maxBatchSpecs = 1024

// maxPlanBody bounds a PUT /plans/{key} replication push; it matches the
// cluster layer's bound on fetched plans.
const maxPlanBody = 8 << 20

// TenantHeader and PriorityHeader carry the admission identity; the
// cluster middleware forwards both when proxying to a key's owner.
const (
	TenantHeader   = "X-Synthd-Tenant"
	PriorityHeader = "X-Synthd-Priority"
)

// PlanFormatsHeader advertises, on /readyz responses, the plan encodings
// this node accepts and serves; PlanFormatsValue is this version's
// capability set. Cluster peers record it from their readiness probes:
// a peer that never advertised "binary" — an older node, or one not yet
// probed — receives replication pushes transcoded to JSON, which every
// version accepts.
const (
	PlanFormatsHeader = "X-Synthd-Plan-Formats"
	PlanFormatsValue  = "binary,json"
)

// acceptsBinaryPlan reports whether the client explicitly listed the
// binary plan content type in its Accept header. A wildcard is not
// enough — JSON stays the answer for every caller that does not name
// the binary format, so old nodes and humans never see frames.
func acceptsBinaryPlan(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), planio.ContentTypeBinary)
}

// SynthesizeRequest is the POST /synthesize payload.
type SynthesizeRequest struct {
	// Spec is the synthesis input (the library's JSON spec format).
	Spec *spec.Spec `json:"spec"`
	// Options tune the solve and the response.
	Options RequestOptions `json:"options"`
}

// RequestOptions is the wire form of switchsynth.Options plus response
// shaping.
type RequestOptions struct {
	// Engine selects the optimizer: "search" (default) or "iqp".
	Engine string `json:"engine,omitempty"`
	// TimeLimitMS bounds the solve in milliseconds; 0 inherits the
	// daemon's default limit.
	TimeLimitMS int64 `json:"timeLimitMs,omitempty"`
	// PressureSharing groups essential valves onto shared control inlets.
	PressureSharing bool `json:"pressureSharing,omitempty"`
	// RouteControl additionally routes the control layer.
	RouteControl bool `json:"routeControl,omitempty"`
	// SolverWorkers is the number of branch-and-bound goroutines inside
	// this request's solve; 0 inherits the daemon's -solver-workers
	// default. The plan is bit-identical for every value.
	SolverWorkers int `json:"solverWorkers,omitempty"`
	// SVG embeds a rendering of the synthesized switch in the response.
	SVG bool `json:"svg,omitempty"`
}

func (ro RequestOptions) toOptions() switchsynth.Options {
	return switchsynth.Options{
		Engine:          ro.Engine,
		TimeLimit:       time.Duration(ro.TimeLimitMS) * time.Millisecond,
		PressureSharing: ro.PressureSharing,
		RouteControl:    ro.RouteControl,
		SolverWorkers:   ro.SolverWorkers,
	}
}

// SynthesizeResponse is the POST /synthesize success payload, and the
// frame format of the streaming endpoints.
type SynthesizeResponse struct {
	Name    string `json:"name"`
	Summary string `json:"summary"`

	// Cache provenance. DiskHit marks a plan served from the durable
	// store (warm boot / memory-tier miss); PeerHit one fetched from the
	// key's owning cluster peer and re-verified locally.
	CacheHit  bool   `json:"cacheHit"`
	DiskHit   bool   `json:"diskHit,omitempty"`
	PeerHit   bool   `json:"peerHit,omitempty"`
	Coalesced bool   `json:"coalesced"`
	Key       string `json:"key"`

	// Streaming frame metadata (ndjson endpoints only). Seq numbers the
	// frames of one stream from 1; Final marks the last frame — the
	// proven plan, identical to what a plain POST /synthesize returns.
	// Earlier frames are anytime incumbents: Degraded with a Gap.
	Seq   int64 `json:"seq,omitempty"`
	Final bool  `json:"final,omitempty"`

	// Paper feature values.
	NumSets       int     `json:"numSets"`
	NumValves     int     `json:"numValves"`
	ControlInlets int     `json:"controlInlets"`
	LengthMM      float64 `json:"lengthMm"`
	Objective     float64 `json:"objective"`
	Proven        bool    `json:"proven"`
	// Degraded marks an anytime plan returned without an optimality
	// proof; LowerBound and Gap quantify how far it may be from optimal.
	Degraded     bool    `json:"degraded,omitempty"`
	LowerBound   float64 `json:"lowerBound,omitempty"`
	Gap          float64 `json:"gap,omitempty"`
	SolveSeconds float64 `json:"solveSeconds"`

	// Plan is the full routed plan in the planio format; feed it to
	// cmd/verifyplan or planio.Decode for independent re-verification.
	Plan json.RawMessage `json:"plan"`
	// SVG is the rendered switch (present when options.svg).
	SVG string `json:"svg,omitempty"`
}

// BatchRequest is the POST /synthesize/batch payload.
type BatchRequest struct {
	// Specs are the batch members, at most maxBatchSpecs of them.
	Specs []BatchRequestItem `json:"specs"`
	// Options are the defaults applied to members without their own.
	Options RequestOptions `json:"options"`
}

// BatchRequestItem is one member of a BatchRequest.
type BatchRequestItem struct {
	Spec *spec.Spec `json:"spec"`
	// Options, when present, replace the batch-level defaults for this
	// member only.
	Options *RequestOptions `json:"options,omitempty"`
}

// BatchResponse is the POST /synthesize/batch payload: always 200 at the
// envelope level once the batch parses, with per-item success or failure
// inside.
type BatchResponse struct {
	// Specs is the number of members received, DistinctKeys how many
	// canonical equivalence classes they collapsed to, Solves how many
	// actually burned a solver slot (the rest were cache or in-flight
	// hits), and Failed how many members errored.
	Specs        int `json:"specs"`
	DistinctKeys int `json:"distinctKeys"`
	Solves       int `json:"solves"`
	Failed       int `json:"failed"`
	// Items has one entry per input spec, in input order.
	Items []BatchItemResponse `json:"items"`
}

// BatchItemResponse is one member's outcome inside a BatchResponse.
type BatchItemResponse struct {
	Index int    `json:"index"`
	Key   string `json:"key,omitempty"`
	// Dedup marks a member answered from another member's solve in this
	// batch (its plan was adapted, not re-admitted).
	Dedup bool `json:"dedup,omitempty"`
	// Response is the member's synthesis; nil when the member failed.
	Response *SynthesizeResponse `json:"response,omitempty"`
	// Error/Kind/Status describe a failed member using the same taxonomy
	// as the top-level error envelope (kind "invalid", "overloaded", ...).
	Error  string `json:"error,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Status int    `json:"status,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// HandlerConfig carries the optional, daemon-level hooks into the HTTP
// surface. The zero value is a plain single-node handler.
type HandlerConfig struct {
	// ClusterStatus, when non-nil, is rendered as the "cluster" section
	// of the /metrics response (cmd/synthd wires the cluster's Status
	// here). /cluster itself is served by the cluster middleware.
	ClusterStatus func() any
}

// NewHandler serves the engine over HTTP with no daemon-level hooks.
func NewHandler(e *Engine) http.Handler {
	return NewHandlerWith(e, HandlerConfig{})
}

// NewHandlerWith serves the engine over HTTP with hc's hooks attached.
func NewHandlerWith(e *Engine, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "invalid", fmt.Errorf("POST required"))
			return
		}
		handleSynthesize(e, w, r)
	})
	mux.HandleFunc("/synthesize/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "invalid", fmt.Errorf("POST required"))
			return
		}
		handleBatch(e, w, r)
	})
	mux.HandleFunc("/synthesize/stream/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "invalid", fmt.Errorf("GET required"))
			return
		}
		handleStreamKey(e, w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := e.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ok",
			"workers":    snap.Workers,
			"queueDepth": snap.QueueDepth,
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness and readiness split: /healthz stays 200 for the whole
		// process lifetime (the drain itself is healthy behavior), while
		// /readyz flips to 503 the moment drain begins so cluster
		// membership probes and load balancers stop routing here. The
		// Retry-After is the queue's measured estimate of when the
		// backlog — the thing the drain is waiting on — will be gone.
		// Advertise the plan encodings this node accepts and serves, so
		// cluster peers probing readiness learn whether binary frames can
		// be pushed here or must be transcoded to JSON first. Sent on the
		// drain path too — capability does not change with readiness.
		w.Header().Set(PlanFormatsHeader, PlanFormatsValue)
		if e.Draining() {
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(e.RetryAfterHint())))
			writeError(w, http.StatusServiceUnavailable, "unavailable", fmt.Errorf("draining"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := e.Snapshot()
		if hc.ClusterStatus != nil {
			writeJSON(w, http.StatusOK, struct {
				Snapshot
				Cluster any `json:"cluster"`
			}{snap, hc.ClusterStatus()})
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("/portfolio", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "invalid", fmt.Errorf("GET required"))
			return
		}
		writeJSON(w, http.StatusOK, e.PortfolioStats())
	})
	plans := func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/plans")
		key = strings.TrimPrefix(key, "/")
		if r.Method == http.MethodPut && key != "" {
			handlePlanPush(e, w, r, key)
			return
		}
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET, PUT")
			writeError(w, http.StatusMethodNotAllowed, "invalid", fmt.Errorf("GET or PUT required"))
			return
		}
		if key == "" {
			writeJSON(w, http.StatusOK, map[string]any{"keys": e.PlanKeys()})
			return
		}
		data, ok := e.PlanBytes(key)
		if !ok {
			writeError(w, http.StatusNotFound, "not-found", fmt.Errorf("no plan for key %q", key))
			return
		}
		// Content negotiation for mixed-version clusters: binary frames go
		// out as-is only to clients that explicitly accept the binary
		// content type; everyone else — older nodes, curl, verifyplan over
		// HTTP — gets the JSON file format, transcoded through full decode
		// validation. JSON-stored plans are format-agnostic and always
		// serve verbatim.
		if planio.IsBinary(data) && !acceptsBinaryPlan(r) {
			jd, err := planio.ToJSON(data)
			if err != nil {
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Errorf("transcoding plan %q: %w", key, err))
				return
			}
			data = jd
		}
		w.Header().Set("Content-Type", planio.ContentTypeOf(data))
		_, _ = w.Write(data)
	}
	mux.HandleFunc("/plans", plans)
	mux.HandleFunc("/plans/", plans)
	// The persistent fetch channel: same plans, no per-request HTTP
	// envelope. A pre-stream node 404s this path and peers fall back to
	// the GETs above.
	mux.HandleFunc(planio.PlanStreamPath, func(w http.ResponseWriter, r *http.Request) {
		handlePlanStream(e, w, r)
	})
	return mux
}

// handlePlanPush receives a replication or read-repair push
// (PUT /plans/{key} from a peer's cluster layer). The body is handed to
// Engine.ImportPlan, which re-verifies everything — decode, Proven,
// canonical-key re-derivation against the URL key, full contamination
// check — before any local tier is touched. Success is 204; bytes that
// fail verification are a 422 and are never stored or served. Pushing
// an already-held key is a cheap 204 no-op.
func handlePlanPush(e *Engine, w http.ResponseWriter, r *http.Request, key string) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPlanBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "invalid",
				fmt.Errorf("plan exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid", fmt.Errorf("reading plan: %w", err))
		return
	}
	if err := e.ImportPlan(key, data); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "invalid", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// callerFromRequest reads the admission identity headers. def is the
// endpoint's default priority class when the header is absent.
func callerFromRequest(r *http.Request, def admission.Class) (admission.Caller, error) {
	c := admission.Caller{Tenant: r.Header.Get(TenantHeader), Class: def}
	if h := r.Header.Get(PriorityHeader); h != "" {
		cl, ok := admission.ParseClass(h)
		if !ok {
			return c, fmt.Errorf("unknown priority class %q (want interactive, batch or background)", h)
		}
		c.Class = cl
	}
	return c, nil
}

func handleSynthesize(e *Engine, w http.ResponseWriter, r *http.Request) {
	e.inj.Fire(faultinject.HTTPDelay)
	caller, err := callerFromRequest(r, admission.Interactive)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid", err)
		return
	}
	var req SynthesizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// An oversized body is not malformed JSON but a limit violation:
		// report 413 so the client knows shrinking (not fixing) the
		// payload is the remedy. Both paths return the JSON error
		// envelope — never a decoder panic or a bare text body.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "invalid",
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid", fmt.Errorf("parsing request: %w", err))
		return
	}
	if req.Spec == nil {
		writeError(w, http.StatusBadRequest, "invalid", fmt.Errorf("request has no spec"))
		return
	}
	ctx := admission.WithCaller(r.Context(), caller)
	opts := req.Options.toOptions()
	if r.URL.Query().Get("wait") == "proof" {
		streamSynthesize(e, w, req.Spec.Name, req.Options.SVG, func(emit func(*Response, bool) error) (*Response, error) {
			return e.DoStream(ctx, req.Spec, opts, emit)
		})
		return
	}
	resp, err := e.Do(ctx, req.Spec, opts)
	if err != nil {
		status, kind := classifyHTTP(err)
		setRetryAfter(w, e, status, err)
		writeError(w, status, kind, err)
		return
	}
	out, err := buildResponse(req.Spec.Name, resp, req.Options.SVG)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	writeJSON(w, http.StatusOK, *out)
}

// handleBatch decodes a BatchRequest, hands the members to Engine.DoBatch
// (one solve per distinct canonical key) and reports per-item outcomes.
// The default priority class is "batch" — a batch must say so explicitly
// to compete with interactive traffic.
func handleBatch(e *Engine, w http.ResponseWriter, r *http.Request) {
	e.inj.Fire(faultinject.HTTPDelay)
	caller, err := callerFromRequest(r, admission.Batch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid", err)
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "invalid",
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid", fmt.Errorf("parsing request: %w", err))
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "invalid", fmt.Errorf("batch has no specs"))
		return
	}
	if len(req.Specs) > maxBatchSpecs {
		writeError(w, http.StatusRequestEntityTooLarge, "invalid",
			fmt.Errorf("batch has %d specs, limit is %d", len(req.Specs), maxBatchSpecs))
		return
	}
	items := make([]BatchSpec, len(req.Specs))
	svg := make([]bool, len(req.Specs))
	for i, it := range req.Specs {
		ro := req.Options
		if it.Options != nil {
			ro = *it.Options
		}
		items[i] = BatchSpec{Spec: it.Spec, Opts: ro.toOptions()}
		svg[i] = ro.SVG
	}
	outcomes := e.DoBatch(admission.WithCaller(r.Context(), caller), items)
	resp := BatchResponse{
		Specs: len(items),
		Items: make([]BatchItemResponse, len(outcomes)),
	}
	keys := map[string]struct{}{}
	for i, oc := range outcomes {
		item := BatchItemResponse{Index: oc.Index, Key: oc.Key, Dedup: oc.Dedup}
		if oc.Key != "" {
			keys[oc.Key] = struct{}{}
		}
		switch {
		case oc.Err != nil:
			status, kind := classifyHTTP(oc.Err)
			item.Error, item.Kind, item.Status = oc.Err.Error(), kind, status
			resp.Failed++
		default:
			out, err := buildResponse(req.Specs[i].Spec.Name, oc.Resp, svg[i])
			if err != nil {
				item.Error, item.Kind, item.Status = err.Error(), "internal", http.StatusInternalServerError
				resp.Failed++
				break
			}
			item.Response = out
			if !oc.Dedup && !oc.Resp.CacheHit && !oc.Resp.Coalesced {
				resp.Solves++
			}
		}
		resp.Items[i] = item
	}
	resp.DistinctKeys = len(keys)
	writeJSON(w, http.StatusOK, resp)
}

// handleStreamKey attaches to the in-flight solve of the key in the URL
// path and streams its incumbents as ndjson; a key already cached is a
// single final frame, an unknown key a 404. Frames are presented on the
// solve's canonical spec (the watcher supplied no spec of its own).
func handleStreamKey(e *Engine, w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/synthesize/stream/")
	if key == "" {
		writeError(w, http.StatusBadRequest, "invalid", fmt.Errorf("no key in path"))
		return
	}
	streamSynthesize(e, w, "", false, func(emit func(*Response, bool) error) (*Response, error) {
		return e.WatchKey(r.Context(), key, emit)
	})
}

// streamSynthesize runs a streaming solve (DoStream or WatchKey via the
// run callback) and renders it as ndjson: one SynthesizeResponse per
// improving incumbent, then the proven plan with final=true — or, if the
// solve fails, an {"error","kind"} line. Errors before the first frame
// still get a clean status code and Retry-After; after the first frame
// the 200 is committed and the error rides in-band as the last line.
func streamSynthesize(e *Engine, w http.ResponseWriter, name string, svg bool,
	run func(emit func(*Response, bool) error) (*Response, error)) {
	var seq int64
	wrote := false
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	emit := func(resp *Response, final bool) error {
		out, err := buildResponse(frameName(name, resp), resp, svg && final)
		if err != nil {
			if final {
				return err
			}
			return nil // skip a frame that fails to encode; the final plan still arrives
		}
		seq++
		out.Seq, out.Final = seq, final
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	resp, err := run(emit)
	if err == nil {
		err = emit(resp, true)
		if err == nil {
			return
		}
	}
	status, kind := classifyHTTP(err)
	if !wrote {
		setRetryAfter(w, e, status, err)
		writeError(w, status, kind, err)
		return
	}
	_ = enc.Encode(errorResponse{Error: err.Error(), Kind: kind})
	if flusher != nil {
		flusher.Flush()
	}
}

// frameName picks the display name for a streamed frame: the requester's
// spec name when there is one (DoStream), else the canonical spec's
// (WatchKey, where no requester spec exists).
func frameName(name string, resp *Response) string {
	if name != "" {
		return name
	}
	if resp.Synthesis != nil && resp.Synthesis.Spec != nil {
		return resp.Synthesis.Spec.Name
	}
	return ""
}

// buildResponse renders one engine Response as the wire payload.
func buildResponse(name string, resp *Response, svg bool) (*SynthesizeResponse, error) {
	syn := resp.Synthesis
	plan, err := planio.EncodeWire(syn.Result)
	if err != nil {
		return nil, err
	}
	out := &SynthesizeResponse{
		Name:          name,
		Summary:       syn.Summary(),
		CacheHit:      resp.CacheHit,
		DiskHit:       resp.DiskHit,
		PeerHit:       resp.PeerHit,
		Coalesced:     resp.Coalesced,
		Key:           resp.Key,
		NumSets:       syn.NumSets,
		NumValves:     syn.NumValves(),
		ControlInlets: syn.ControlInlets(),
		LengthMM:      syn.Length,
		Objective:     syn.Objective,
		Proven:        syn.Proven,
		Degraded:      syn.Degraded,
		LowerBound:    syn.LowerBound,
		Gap:           syn.Gap,
		SolveSeconds:  resp.SolveTime.Seconds(),
		Plan:          plan,
	}
	if svg {
		out.SVG = syn.SVG()
	}
	return out, nil
}

// classifyHTTP maps engine errors onto HTTP statuses using the typed
// error chains — no string matching.
func classifyHTTP(err error) (int, string) {
	var nosol *spec.ErrNoSolution
	switch {
	case errors.As(err, &nosol):
		return http.StatusUnprocessableEntity, "no-solution"
	case errors.Is(err, &ErrOverloaded{}),
		errors.Is(err, &admission.ErrShed{}):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, &ErrSolvePanic{}):
		return http.StatusInternalServerError, "panic"
	case errors.Is(err, &search.ErrTimeout{}),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, ErrEngineClosed),
		errors.Is(err, &admission.ErrDraining{}):
		return http.StatusServiceUnavailable, "unavailable"
	case errors.Is(err, ErrUnknownKey):
		return http.StatusNotFound, "not-found"
	case errors.Is(err, errNilBatchSpec):
		return http.StatusBadRequest, "invalid"
	default:
		var invalid *spec.ValidationError
		if errors.As(err, &invalid) {
			return http.StatusBadRequest, "invalid"
		}
		return http.StatusInternalServerError, "internal"
	}
}

// setRetryAfter attaches a Retry-After header (whole seconds, rounded
// up, clamped to [1, 30]) to shed-load responses. The error's own hint
// wins — the breaker's cooldown remainder, the queue's measured wait
// prediction carried by *admission.ErrShed / *admission.ErrDraining —
// and anything without one falls back to the queue's current measured
// estimate instead of a hardcoded guess.
func setRetryAfter(w http.ResponseWriter, e *Engine, status int, err error) {
	if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
		return
	}
	var (
		over  *ErrOverloaded
		shed  *admission.ErrShed
		drain *admission.ErrDraining
	)
	retry := time.Duration(0)
	switch {
	case errors.As(err, &over):
		retry = over.RetryAfter
	case errors.As(err, &shed):
		retry = shed.RetryAfter
	case errors.As(err, &drain):
		retry = drain.RetryAfter
	}
	if retry <= 0 {
		retry = e.RetryAfterHint()
	}
	w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(retry)))
}

// retrySeconds renders a Retry-After duration as whole seconds in [1, 30].
func retrySeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind string, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: kind})
}
