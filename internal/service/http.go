// HTTP surface of the synthesis service: the handlers behind cmd/synthd.
//
//	POST /synthesize    JSON SynthesizeRequest in, SynthesizeResponse out
//	GET  /healthz       liveness + pool shape (alive even while draining)
//	GET  /readyz        readiness: 503 once drain has begun or the engine
//	                    closed, so probes and load balancers stop routing
//	                    here while /healthz still reports the process up
//	GET  /metrics       Snapshot as JSON (plus a "cluster" section when a
//	                    cluster status hook is configured)
//	GET  /plans         manifest of locally held canonical plan keys
//	GET  /plans/{key}   the stored planio-encoded plan, 404 when absent —
//	                    the peer cache-fill and anti-entropy endpoints
//
// Error responses are JSON {"error": ..., "kind": ...} where kind is one
// of "invalid" (400, or 413 for an oversized body), "not-found" (404),
// "no-solution" (422), "timeout" (504), "overloaded" (429, circuit
// breaker open), "unavailable" (503, engine closed or draining) or
// "panic"/"internal" (500). 429 and 503 responses carry a Retry-After
// header (in seconds).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"switchsynth"
	"switchsynth/internal/faultinject"
	"switchsynth/internal/planio"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// maxRequestBody bounds /synthesize payloads; the largest supported
// switch spec is a few KB, so 1 MiB is generous.
const maxRequestBody = 1 << 20

// MaxRequestBody is the exported body limit, so the cluster middleware
// (which must read the body to compute the routing key) enforces the
// same bound instead of buffering an unbounded payload.
const MaxRequestBody = maxRequestBody

// SynthesizeRequest is the POST /synthesize payload.
type SynthesizeRequest struct {
	// Spec is the synthesis input (the library's JSON spec format).
	Spec *spec.Spec `json:"spec"`
	// Options tune the solve and the response.
	Options RequestOptions `json:"options"`
}

// RequestOptions is the wire form of switchsynth.Options plus response
// shaping.
type RequestOptions struct {
	// Engine selects the optimizer: "search" (default) or "iqp".
	Engine string `json:"engine,omitempty"`
	// TimeLimitMS bounds the solve in milliseconds; 0 inherits the
	// daemon's default limit.
	TimeLimitMS int64 `json:"timeLimitMs,omitempty"`
	// PressureSharing groups essential valves onto shared control inlets.
	PressureSharing bool `json:"pressureSharing,omitempty"`
	// RouteControl additionally routes the control layer.
	RouteControl bool `json:"routeControl,omitempty"`
	// SolverWorkers is the number of branch-and-bound goroutines inside
	// this request's solve; 0 inherits the daemon's -solver-workers
	// default. The plan is bit-identical for every value.
	SolverWorkers int `json:"solverWorkers,omitempty"`
	// SVG embeds a rendering of the synthesized switch in the response.
	SVG bool `json:"svg,omitempty"`
}

// SynthesizeResponse is the POST /synthesize success payload.
type SynthesizeResponse struct {
	Name    string `json:"name"`
	Summary string `json:"summary"`

	// Cache provenance. DiskHit marks a plan served from the durable
	// store (warm boot / memory-tier miss); PeerHit one fetched from the
	// key's owning cluster peer and re-verified locally.
	CacheHit  bool   `json:"cacheHit"`
	DiskHit   bool   `json:"diskHit,omitempty"`
	PeerHit   bool   `json:"peerHit,omitempty"`
	Coalesced bool   `json:"coalesced"`
	Key       string `json:"key"`

	// Paper feature values.
	NumSets       int     `json:"numSets"`
	NumValves     int     `json:"numValves"`
	ControlInlets int     `json:"controlInlets"`
	LengthMM      float64 `json:"lengthMm"`
	Objective     float64 `json:"objective"`
	Proven        bool    `json:"proven"`
	// Degraded marks an anytime plan returned without an optimality
	// proof; LowerBound and Gap quantify how far it may be from optimal.
	Degraded     bool    `json:"degraded,omitempty"`
	LowerBound   float64 `json:"lowerBound,omitempty"`
	Gap          float64 `json:"gap,omitempty"`
	SolveSeconds float64 `json:"solveSeconds"`

	// Plan is the full routed plan in the planio format; feed it to
	// cmd/verifyplan or planio.Decode for independent re-verification.
	Plan json.RawMessage `json:"plan"`
	// SVG is the rendered switch (present when options.svg).
	SVG string `json:"svg,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// HandlerConfig carries the optional, daemon-level hooks into the HTTP
// surface. The zero value is a plain single-node handler.
type HandlerConfig struct {
	// ClusterStatus, when non-nil, is rendered as the "cluster" section
	// of the /metrics response (cmd/synthd wires the cluster's Status
	// here). /cluster itself is served by the cluster middleware.
	ClusterStatus func() any
}

// NewHandler serves the engine over HTTP with no daemon-level hooks.
func NewHandler(e *Engine) http.Handler {
	return NewHandlerWith(e, HandlerConfig{})
}

// NewHandlerWith serves the engine over HTTP with hc's hooks attached.
func NewHandlerWith(e *Engine, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "invalid", fmt.Errorf("POST required"))
			return
		}
		handleSynthesize(e, w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := e.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ok",
			"workers":    snap.Workers,
			"queueDepth": snap.QueueDepth,
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness and readiness split: /healthz stays 200 for the whole
		// process lifetime (the drain itself is healthy behavior), while
		// /readyz flips to 503 the moment drain begins so cluster
		// membership probes and load balancers stop routing here.
		if e.Draining() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "unavailable", fmt.Errorf("draining"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := e.Snapshot()
		if hc.ClusterStatus != nil {
			writeJSON(w, http.StatusOK, struct {
				Snapshot
				Cluster any `json:"cluster"`
			}{snap, hc.ClusterStatus()})
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	plans := func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "invalid", fmt.Errorf("GET required"))
			return
		}
		key := strings.TrimPrefix(r.URL.Path, "/plans")
		key = strings.TrimPrefix(key, "/")
		if key == "" {
			writeJSON(w, http.StatusOK, map[string]any{"keys": e.PlanKeys()})
			return
		}
		data, ok := e.PlanBytes(key)
		if !ok {
			writeError(w, http.StatusNotFound, "not-found", fmt.Errorf("no plan for key %q", key))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	}
	mux.HandleFunc("/plans", plans)
	mux.HandleFunc("/plans/", plans)
	return mux
}

func handleSynthesize(e *Engine, w http.ResponseWriter, r *http.Request) {
	e.inj.Fire(faultinject.HTTPDelay)
	var req SynthesizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// An oversized body is not malformed JSON but a limit violation:
		// report 413 so the client knows shrinking (not fixing) the
		// payload is the remedy. Both paths return the JSON error
		// envelope — never a decoder panic or a bare text body.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "invalid",
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "invalid", fmt.Errorf("parsing request: %w", err))
		return
	}
	if req.Spec == nil {
		writeError(w, http.StatusBadRequest, "invalid", fmt.Errorf("request has no spec"))
		return
	}
	opts := switchsynth.Options{
		Engine:          req.Options.Engine,
		TimeLimit:       time.Duration(req.Options.TimeLimitMS) * time.Millisecond,
		PressureSharing: req.Options.PressureSharing,
		RouteControl:    req.Options.RouteControl,
		SolverWorkers:   req.Options.SolverWorkers,
	}
	resp, err := e.Do(r.Context(), req.Spec, opts)
	if err != nil {
		status, kind := classifyHTTP(err)
		setRetryAfter(w, status, err)
		writeError(w, status, kind, err)
		return
	}
	syn := resp.Synthesis
	plan, err := planio.EncodeWire(syn.Result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	out := SynthesizeResponse{
		Name:          req.Spec.Name,
		Summary:       syn.Summary(),
		CacheHit:      resp.CacheHit,
		DiskHit:       resp.DiskHit,
		PeerHit:       resp.PeerHit,
		Coalesced:     resp.Coalesced,
		Key:           resp.Key,
		NumSets:       syn.NumSets,
		NumValves:     syn.NumValves(),
		ControlInlets: syn.ControlInlets(),
		LengthMM:      syn.Length,
		Objective:     syn.Objective,
		Proven:        syn.Proven,
		Degraded:      syn.Degraded,
		LowerBound:    syn.LowerBound,
		Gap:           syn.Gap,
		SolveSeconds:  resp.SolveTime.Seconds(),
		Plan:          plan,
	}
	if req.Options.SVG {
		out.SVG = syn.SVG()
	}
	writeJSON(w, http.StatusOK, out)
}

// classifyHTTP maps engine errors onto HTTP statuses using the typed
// error chains — no string matching.
func classifyHTTP(err error) (int, string) {
	var nosol *spec.ErrNoSolution
	switch {
	case errors.As(err, &nosol):
		return http.StatusUnprocessableEntity, "no-solution"
	case errors.Is(err, &ErrOverloaded{}):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, &ErrSolvePanic{}):
		return http.StatusInternalServerError, "panic"
	case errors.Is(err, &search.ErrTimeout{}),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, ErrEngineClosed):
		return http.StatusServiceUnavailable, "unavailable"
	default:
		var invalid *spec.ValidationError
		if errors.As(err, &invalid) {
			return http.StatusBadRequest, "invalid"
		}
		return http.StatusInternalServerError, "internal"
	}
}

// setRetryAfter attaches a Retry-After header (whole seconds, rounded
// up, minimum 1) to shed-load responses: 429 carries the breaker's
// cooldown remainder, 503 a fixed hint for the drain window.
func setRetryAfter(w http.ResponseWriter, status int, err error) {
	switch status {
	case http.StatusTooManyRequests:
		retry := time.Second
		var over *ErrOverloaded
		if errors.As(err, &over) && over.RetryAfter > 0 {
			retry = over.RetryAfter
		}
		secs := int(math.Ceil(retry.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind string, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: kind})
}
