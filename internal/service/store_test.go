// Tests of the durable tier behind the engine: warm boot from disk with
// zero solver invocations, the disk-only configuration (memory cache
// off, store on), write-through exclusion of degraded plans, and healing
// of persisted entries that no longer decode or verify.
package service

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/spec"
	"switchsynth/internal/store"
)

// openStoreT opens a synchronous-durability store in its own temp dir.
func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// countingEngine wraps the engine's solver with an invocation counter.
func countingEngine(t *testing.T, cfg Config) (*Engine, *atomic.Int64) {
	t.Helper()
	e := newTestEngine(t, cfg)
	var solves atomic.Int64
	inner := e.solve
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		solves.Add(1)
		return inner(ctx, sp, opts)
	}
	return e, &solves
}

func TestEngineWarmBootServesFromDiskWithZeroSolves(t *testing.T) {
	dir := t.TempDir()

	// First life: solve once, write through to disk.
	st1 := openStoreT(t, dir)
	e1, solves1 := countingEngine(t, Config{Workers: 2, Store: st1})
	resp, err := e1.Do(context.Background(), serviceSpec("a"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit || resp.DiskHit || solves1.Load() != 1 {
		t.Fatalf("first life: hit=%v disk=%v solves=%d, want one cold solve",
			resp.CacheHit, resp.DiskHit, solves1.Load())
	}
	if st1.Len() != 1 {
		t.Fatalf("store entries = %d after write-through, want 1", st1.Len())
	}
	e1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: fresh engine, empty memory cache, same directory.
	st2 := openStoreT(t, dir)
	e2, solves2 := countingEngine(t, Config{Workers: 2, Store: st2})
	warm, err := e2.Do(context.Background(), serviceSpec("a"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || !warm.DiskHit {
		t.Fatalf("warm boot: hit=%v disk=%v, want a disk hit", warm.CacheHit, warm.DiskHit)
	}
	if err := switchsynth.Verify(warm.Synthesis.Result); err != nil {
		t.Fatalf("warm-boot plan verify: %v", err)
	}
	// A rotated/permuted equivalent of the solved spec is the same
	// canonical key, so it is a hit too — now from the memory tier the
	// disk hit populated.
	iso, err := e2.Do(context.Background(), permutedServiceSpec("a-rotated"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !iso.CacheHit || iso.DiskHit {
		t.Fatalf("isomorphic resubmit: hit=%v disk=%v, want promoted memory hit", iso.CacheHit, iso.DiskHit)
	}
	if got := solves2.Load(); got != 0 {
		t.Fatalf("warm boot ran %d solver invocations, want 0", got)
	}
	snap := e2.Snapshot()
	if !snap.StoreEnabled || snap.StoreHits != 1 || snap.StoreEntries != 1 {
		t.Fatalf("snapshot store gauges = %+v", snap)
	}
}

func TestEngineDiskOnlyConfiguration(t *testing.T) {
	st := openStoreT(t, t.TempDir())
	e, solves := countingEngine(t, Config{Workers: 2, CacheSize: -1, Store: st})

	if _, err := e.Do(context.Background(), serviceSpec("a"), switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Do(context.Background(), serviceSpec("a"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With the memory tier disabled, repeat requests are disk hits —
	// not re-solves (the pre-fix behavior: capacity <= 0 dropped stores
	// silently, so nothing was ever reusable).
	if !resp.DiskHit || solves.Load() != 1 {
		t.Fatalf("disk-only repeat: disk=%v solves=%d, want disk hit after one solve",
			resp.DiskHit, solves.Load())
	}
	snap := e.Snapshot()
	if snap.CacheEntries != 0 {
		t.Fatalf("memory tier disabled but holds %d entries", snap.CacheEntries)
	}
	if snap.StoreHits != 1 || snap.StoreMisses == 0 {
		t.Fatalf("store counters = %+v", snap)
	}
}

func TestEngineHealsUndecodablePersistedPlan(t *testing.T) {
	st := openStoreT(t, t.TempDir())
	e, solves := countingEngine(t, Config{Workers: 2, Store: st})

	sp := serviceSpec("a")
	key, err := canonicalJobKey(sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A persisted record that passes its CRC but is not a decodable
	// plan: the engine must evict it and re-solve, never serve it.
	if err := st.Put(key, "search", []byte(`{"version":1,"spec":null}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.DiskHit || resp.CacheHit {
		t.Fatalf("undecodable entry served: %+v", resp)
	}
	if err := switchsynth.Verify(resp.Synthesis.Result); err != nil {
		t.Fatalf("healed plan verify: %v", err)
	}
	if solves.Load() != 1 {
		t.Fatalf("solves = %d, want 1 re-solve", solves.Load())
	}
	if e.Snapshot().StoreHealed != 1 {
		t.Fatalf("storeHealed = %d, want 1", e.Snapshot().StoreHealed)
	}
	// The re-solve wrote a good plan back; the next fresh-memory lookup
	// is a genuine disk hit.
	e2, solves2 := countingEngine(t, Config{Workers: 2, Store: st})
	again, err := e2.Do(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.DiskHit || solves2.Load() != 0 {
		t.Fatalf("post-heal lookup: disk=%v solves=%d", again.DiskHit, solves2.Load())
	}
}

func TestEngineNeverPersistsDegradedPlans(t *testing.T) {
	st := openStoreT(t, t.TempDir())
	e := newTestEngine(t, Config{Workers: 1, Store: st})
	base := solveOnce(t, serviceSpec("a"))
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		c := *base
		c.Proven = false
		c.Degraded = true
		c.Gap = 0.5
		return &c, nil
	}
	resp, err := e.Do(context.Background(), serviceSpec("a"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Synthesis.Degraded {
		t.Fatal("stub should produce a degraded plan")
	}
	// Give any (buggy) async write-through a moment, then assert the
	// degraded plan reached neither tier.
	time.Sleep(10 * time.Millisecond)
	if st.Len() != 0 {
		t.Fatalf("degraded plan persisted: %d entries", st.Len())
	}
	if e.Snapshot().CacheEntries != 0 {
		t.Fatal("degraded plan cached in memory")
	}
}
