package service

import (
	"context"
	"net/http"
	"testing"

	"switchsynth"
	"switchsynth/internal/search"
)

func TestSnapshotSolverGauges(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, SolverWorkers: 3})
	if got := e.Snapshot().SolverWorkers; got != 3 {
		t.Errorf("SolverWorkers gauge = %d, want 3", got)
	}

	def := newTestEngine(t, Config{Workers: 1})
	if got := def.Snapshot().SolverWorkers; got != 1 {
		t.Errorf("default SolverWorkers gauge = %d, want 1 (sequential)", got)
	}

	// The node counter is process-wide, so assert on the delta across one
	// real solve.
	before, _ := search.Counters()
	if _, err := def.Do(context.Background(), serviceSpec("gauge"), switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	after := def.Snapshot().SolverNodesTotal
	if after <= before {
		t.Errorf("solver_nodes_total did not advance: before=%d after=%d", before, after)
	}
}

// TestSolverWorkersNotInCacheKey pins the determinism contract's service
// consequence: the worker count must never partition the result cache,
// because plans are bit-identical at every value.
func TestSolverWorkersNotInCacheKey(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})

	seq, err := e.Do(context.Background(), serviceSpec("keyed"), switchsynth.Options{SolverWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Do(context.Background(), serviceSpec("keyed"), switchsynth.Options{SolverWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !par.CacheHit {
		t.Error("same spec at a different -solver-workers missed the cache")
	}
	if par.Key != seq.Key {
		t.Errorf("cache keys differ across worker counts: %q vs %q", seq.Key, par.Key)
	}
	if par.Synthesis.Objective != seq.Synthesis.Objective || par.Synthesis.Length != seq.Synthesis.Length {
		t.Errorf("plan values differ: %+v vs %+v", par.Synthesis, seq.Synthesis)
	}
}

// TestHTTPSolverWorkersOption exercises the wire form of the knob; with
// DisallowUnknownFields on the decoder, this also pins the field name.
func TestHTTPSolverWorkersOption(t *testing.T) {
	srv, _ := newTestServer(t)

	req := `{
		"spec": {
			"name": "http-parallel",
			"switchPins": 8,
			"modules": ["sample", "buffer", "mix1", "mix2"],
			"flows": [
				{"from": "sample", "to": "mix1"},
				{"from": "buffer", "to": "mix2"}
			],
			"conflicts": [[0, 1]],
			"binding": 2
		},
		"options": {"solverWorkers": 4}
	}`
	resp, body := postJSON(t, srv.URL+"/synthesize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}
