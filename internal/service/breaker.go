// Admission control: a per-canonical-key circuit breaker and a bounded
// negative-result cache.
//
// The breaker sheds load for keys that repeatedly burn a worker slot
// without producing a plan (timeouts, solver panics): after Threshold
// consecutive failures the key opens and requests fast-fail with
// *ErrOverloaded (HTTP 429 + Retry-After) instead of queueing. Once the
// cooldown elapses a single half-open probe is admitted; its outcome
// closes the breaker again or re-opens it.
//
// The negative cache remembers proven infeasibility: ErrNoSolution is an
// exhaustive-search proof (timeouts never produce it), so replaying it
// from the cache is sound and saves a full solve.
package service

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"switchsynth/internal/spec"
)

// ErrOverloaded is returned (without queueing a solve) while a key's
// circuit breaker is open. RetryAfter tells the caller when the next
// half-open probe will be admitted.
type ErrOverloaded struct {
	Key        string
	RetryAfter time.Duration
}

// Error implements error.
func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("service: circuit breaker open for this spec, retry in %s", e.RetryAfter.Round(time.Millisecond))
}

// Is makes every *ErrOverloaded match every other under errors.Is.
func (e *ErrOverloaded) Is(target error) bool {
	var other *ErrOverloaded
	return errors.As(target, &other)
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	state      breakerState
	fails      int       // consecutive breaker-relevant failures
	openedAt   time.Time // when the breaker last opened
	probeStart time.Time // when the current half-open probe was admitted
}

// breakerGroup tracks one breaker per canonical job key.
type breakerGroup struct {
	threshold int
	cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakerGroup(threshold int, cooldown time.Duration) *breakerGroup {
	return &breakerGroup{threshold: threshold, cooldown: cooldown, m: make(map[string]*breaker)}
}

// allow reports whether a request for key may proceed; when it may not,
// retryAfter is the time until the next half-open probe.
func (g *breakerGroup) allow(key string) (ok bool, retryAfter time.Duration) {
	if g == nil {
		return true, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.m[key]
	if b == nil {
		return true, 0
	}
	now := time.Now()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if wait := g.cooldown - now.Sub(b.openedAt); wait > 0 {
			return false, wait
		}
		b.state = breakerHalfOpen
		b.probeStart = now
		return true, 0 // the half-open probe
	default: // breakerHalfOpen
		// One probe at a time; if the probe itself got stuck (its job was
		// never recorded — e.g. the engine rejected the enqueue), admit a
		// fresh probe after another cooldown.
		if now.Sub(b.probeStart) >= g.cooldown {
			b.probeStart = now
			return true, 0
		}
		return false, g.cooldown - now.Sub(b.probeStart)
	}
}

// recordFailure notes a breaker-relevant failure (timeout or panic) for
// key, opening the breaker at the threshold or on a failed probe.
func (g *breakerGroup) recordFailure(key string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.m[key]
	if b == nil {
		b = &breaker{}
		g.m[key] = b
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= g.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// recordSuccess resets key's breaker: any completed solve — including a
// proven ErrNoSolution — shows the key is not burning worker slots.
func (g *breakerGroup) recordSuccess(key string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.m, key)
}

// openCount reports how many breakers are currently open or half-open
// (a metrics gauge).
func (g *breakerGroup) openCount() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, b := range g.m {
		if b.state != breakerClosed {
			n++
		}
	}
	return n
}

// negCache is a bounded LRU of canonical key → infeasibility proof.
type negCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	byK map[string]*list.Element
}

type negEntry struct {
	key string
	err *spec.ErrNoSolution
}

// newNegCache creates the negative cache; capacity <= 0 disables it.
func newNegCache(capacity int) *negCache {
	return &negCache{cap: capacity, ll: list.New(), byK: make(map[string]*list.Element)}
}

func (c *negCache) get(key string) (*spec.ErrNoSolution, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*negEntry).err, true
}

func (c *negCache) put(key string, err *spec.ErrNoSolution) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		el.Value.(*negEntry).err = err
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&negEntry{key: key, err: err})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*negEntry).key)
	}
}

func (c *negCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
