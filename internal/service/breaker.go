// Negative-result cache and breaker re-exports. The per-key circuit
// breaker itself lives in internal/admission (it is admission control,
// shared policy with the fair queue); the service keeps the
// ErrOverloaded alias so existing callers' errors.Is/As chains and type
// assertions keep working unchanged.
//
// The negative cache remembers proven infeasibility: ErrNoSolution is an
// exhaustive-search proof (timeouts never produce it), so replaying it
// from the cache is sound and saves a full solve.
package service

import (
	"container/list"
	"sync"

	"switchsynth/internal/admission"
	"switchsynth/internal/spec"
)

// ErrOverloaded is returned (without queueing a solve) while a key's
// circuit breaker is open. RetryAfter tells the caller when the next
// half-open probe will be admitted. It is an alias for the admission
// package's type, where the breaker now lives.
type ErrOverloaded = admission.ErrOverloaded

// negCache is a bounded LRU of canonical key → infeasibility proof.
type negCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	byK map[string]*list.Element
}

type negEntry struct {
	key string
	err *spec.ErrNoSolution
}

// newNegCache creates the negative cache; capacity <= 0 disables it.
func newNegCache(capacity int) *negCache {
	return &negCache{cap: capacity, ll: list.New(), byK: make(map[string]*list.Element)}
}

func (c *negCache) get(key string) (*spec.ErrNoSolution, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*negEntry).err, true
}

func (c *negCache) put(key string, err *spec.ErrNoSolution) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		el.Value.(*negEntry).err = err
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&negEntry{key: key, err: err})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*negEntry).key)
	}
}

func (c *negCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
