// The engine-side halves of plan replication: the OnPlanStored hook
// (fires for fresh proven solves only, with wire-encodable bytes) and
// the PUT /plans/{key} push endpoint (verify-on-receipt before any
// tier is touched).
package service

import (
	"bytes"
	"context"
	"net/http"
	"net/url"
	"sync"
	"testing"

	"switchsynth"
	"switchsynth/internal/planio"
	"switchsynth/internal/spec"
)

// donorSpec is a second spec family whose canonical key is distinct
// from serviceSpec's.
func donorSpec(name string) *spec.Spec {
	return &spec.Spec{
		Name:       name,
		SwitchPins: 8,
		Modules:    []string{"sample", "mix1"},
		Flows:      []spec.Flow{{From: "sample", To: "mix1"}},
		Binding:    spec.Unfixed,
	}
}

func TestOnPlanStoredFiresForFreshSolvesOnly(t *testing.T) {
	var (
		mu    sync.Mutex
		calls []string
		wires = map[string][]byte{}
	)
	e := newTestEngine(t, Config{Workers: 2, OnPlanStored: func(key string, d []byte) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, key)
		wires[key] = d
	}})

	resp, err := e.Do(context.Background(), serviceSpec("hook-a"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(calls) != 1 || calls[0] != resp.Key {
		mu.Unlock()
		t.Fatalf("hook calls = %v, want exactly [%s]", calls, resp.Key)
	}
	wire := wires[resp.Key]
	mu.Unlock()

	// The hook's bytes are a decodable, proven, verifiable wire plan —
	// exactly what a replica's ImportPlan expects.
	plan, err := planio.DecodeAny(wire)
	if err != nil {
		t.Fatalf("hook bytes do not decode: %v", err)
	}
	if err := switchsynth.Verify(plan); err != nil {
		t.Fatalf("hook bytes fail verification: %v", err)
	}

	// A cache hit must not re-fire the hook.
	if _, err := e.Do(context.Background(), serviceSpec("hook-a"), switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(calls) != 1 {
		t.Errorf("cache hit re-fired the hook: %d calls", len(calls))
	}
	mu.Unlock()

	// A peer import must not fire the hook either — otherwise two
	// replicating nodes would push every plan back and forth forever.
	donor := newTestEngine(t, Config{Workers: 2})
	dresp, err := donor.Do(context.Background(), donorSpec("hook-b"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dwire, err := planio.EncodeWire(dresp.Synthesis.Result)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ImportPlan(dresp.Key, dwire); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(calls) != 1 {
		t.Errorf("ImportPlan fired the hook: calls = %v (push amplification loop)", calls)
	}
	mu.Unlock()
}

func TestPlanPushEndpoint(t *testing.T) {
	srv, e := newTestServer(t)

	donor := newTestEngine(t, Config{Workers: 2})
	dresp, err := donor.Do(context.Background(), serviceSpec("push-me"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := planio.EncodeWire(dresp.Synthesis.Result)
	if err != nil {
		t.Fatal(err)
	}
	key := dresp.Key
	put := func(key string, body []byte) *http.Response {
		t.Helper()
		target := srv.URL + "/plans/" + url.PathEscape(key)
		if key == "" {
			target = srv.URL + "/plans/"
		}
		req, err := http.NewRequest(http.MethodPut, target, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// A corrupted push is rejected with 422 and stores nothing.
	bad := append([]byte(nil), wire...)
	bad[len(bad)/2] ^= 0x40
	if resp := put(key, bad); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt push status = %d, want 422", resp.StatusCode)
	}
	if _, ok := e.PlanBytes(key); ok {
		t.Fatal("corrupt push reached the store")
	}
	if snap := e.Snapshot(); snap.PeerRejected != 1 {
		t.Errorf("peerRejected = %d, want 1", snap.PeerRejected)
	}

	// A valid push is verified, stored and then served.
	if resp := put(key, wire); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid push status = %d, want 204", resp.StatusCode)
	}
	if _, ok := e.PlanBytes(key); !ok {
		t.Fatal("valid push not stored")
	}
	if snap := e.Snapshot(); snap.PeerImported != 1 {
		t.Errorf("peerImported = %d, want 1", snap.PeerImported)
	}
	got, err := http.Get(srv.URL + "/plans/" + url.PathEscape(key))
	if err != nil {
		t.Fatal(err)
	}
	got.Body.Close()
	if got.StatusCode != http.StatusOK {
		t.Errorf("GET after push = %d, want 200", got.StatusCode)
	}

	// A push under the wrong key is a key-rederivation mismatch: 422.
	if resp := put("not-the-canonical-key", wire); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("wrong-key push status = %d, want 422", resp.StatusCode)
	}

	// A push with no key in the path is not a push at all.
	if resp := put("", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("keyless PUT status = %d, want 405", resp.StatusCode)
	}

	// An oversized body is refused, not imported.
	if resp := put(key, make([]byte, maxPlanBody+1)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized push status = %d, want 413", resp.StatusCode)
	}
}
