// Admission-tier behavior through the engine and HTTP surface: measured
// Retry-After on queue sheds, priority/tenant header plumbing, and
// two-tenant fairness under saturation.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/admission"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// TestRetryAfterQueueShedPath completes the shed-path Retry-After table
// (breaker 429, drain 503 and closed 503 are pinned in
// TestErrorKindStatusTable): a background-class request arriving with
// the queue over its depth watermark is a 429 "overloaded" whose
// Retry-After is a whole second count in [1, 30].
func TestRetryAfterQueueShedPath(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	e := New(Config{Workers: 1, QueueDepth: 4})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		<-release
		return nil, &search.ErrTimeout{SpecName: sp.Name, Cause: context.DeadlineExceeded}
	}
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		unblock()
		srv.Close()
		e.CloseNow()
	})

	// One request occupies the single worker; the queue (capacity 4)
	// fills until the background depth watermark (total >= 2) sheds.
	// Distinct keys keep the requests from coalescing.
	const n = 5
	type result struct {
		status int
		retry  string
		kind   string
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := serviceSpec(fmt.Sprintf("shed-%d", i))
			sp.Alpha = float64(i + 1)
			body, _ := json.Marshal(SynthesizeRequest{Spec: sp})
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/synthesize", strings.NewReader(string(body)))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(PriorityHeader, "background")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var env errorResponse
			_ = json.NewDecoder(resp.Body).Decode(&env)
			results <- result{resp.StatusCode, resp.Header.Get("Retry-After"), env.Kind}
		}(i)
	}

	// The shed requests return immediately; the admitted ones stay
	// blocked in the stuck solve until unblock(). Wait for the first
	// 429, validate it, then release the worker so the rest drain.
	shed := 0
	timeout := time.After(10 * time.Second)
	for shed == 0 {
		select {
		case r := <-results:
			if r.status != http.StatusTooManyRequests {
				continue
			}
			shed++
			if r.kind != "overloaded" {
				t.Errorf("queue shed kind = %q, want overloaded", r.kind)
			}
			secs, err := strconv.Atoi(r.retry)
			if err != nil || secs < 1 || secs > 30 {
				t.Errorf("queue shed Retry-After = %q, want an integer in [1, 30]", r.retry)
			}
		case <-timeout:
			t.Fatal("no background request was shed with the queue saturated")
		}
	}
	unblock()
	wg.Wait()
	close(results)
	for r := range results {
		if r.status == http.StatusTooManyRequests {
			shed++
		}
	}
	if got := e.Snapshot().JobsShedQueue; int(got) != shed {
		t.Errorf("JobsShedQueue = %d, want %d (one per shed response)", got, shed)
	}
}

// TestInvalidPriorityHeaderRejected: an unknown class never silently
// degrades to a default — it is a 400 before the spec is even parsed.
func TestInvalidPriorityHeaderRejected(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, path := range []string{"/synthesize", "/synthesize/batch"} {
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(PriorityHeader, "urgent")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with bogus priority: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestEngineTwoTenantFairness is the fairness acceptance check at the
// engine level: one tenant floods the queue with background work while
// another submits single interactive solves. The interactive tenant must
// never be shed (the global wait watermark is far away) and its waits
// must stay bounded by a handful of service times, not the flood's
// backlog.
func TestEngineTwoTenantFairness(t *testing.T) {
	const serviceTime = 2 * time.Millisecond
	shared := solveOnce(t, serviceSpec("fair"))
	var solves atomic.Int64
	e := New(Config{Workers: 1, QueueDepth: 64, CacheSize: -1})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		solves.Add(1)
		time.Sleep(serviceTime)
		return shared, nil
	}
	t.Cleanup(e.CloseNow)

	// The flood: keep ~20 background jobs from tenant "flood" in the
	// queue at all times. Distinct keys defeat coalescing.
	floodCtx, stopFlood := context.WithCancel(context.Background())
	defer stopFlood()
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		ctx := admission.WithCaller(floodCtx, admission.Caller{Tenant: "flood", Class: admission.Background})
		var wg sync.WaitGroup
		for i := 0; floodCtx.Err() == nil; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sp := serviceSpec(fmt.Sprintf("flood-%d", i))
				sp.Alpha = float64(i%997 + 1)
				_, _ = e.Do(ctx, sp, switchsynth.Options{})
			}(i)
			if i%20 == 19 {
				time.Sleep(serviceTime)
			}
		}
		wg.Wait()
	}()
	time.Sleep(20 * serviceTime) // let the backlog build

	userCtx := admission.WithCaller(context.Background(),
		admission.Caller{Tenant: "user", Class: admission.Interactive})
	var worst time.Duration
	const probes = 20
	for i := 0; i < probes; i++ {
		sp := serviceSpec(fmt.Sprintf("user-%d", i))
		sp.Beta = float64(i + 1) // distinct keys: every probe queues for real
		start := time.Now()
		if _, err := e.Do(userCtx, sp, switchsynth.Options{}); err != nil {
			t.Fatalf("interactive probe %d failed: %v", i, err)
		}
		if wait := time.Since(start); wait > worst {
			worst = wait
		}
	}
	stopFlood()
	<-floodDone

	// DRR gives interactive a 16:1 weight over background, so a single
	// interactive probe behind one in-service job and its class rotation
	// should wait a few service times — not the flood's whole backlog
	// (~20 jobs). The bound is deliberately loose for CI scheduling
	// noise.
	if limit := 25 * serviceTime; worst > limit {
		t.Errorf("worst interactive wait %s exceeds %s under a background flood", worst, limit)
	}
	if shed := e.Snapshot().JobsShedQueue; shed > 0 {
		// Background floods may shed; the probe tenant must not have.
		// JobsShedQueue counts both, so only fail when the interactive
		// probes themselves errored — which the loop above already
		// catches. Log for context.
		t.Logf("background flood shed %d submissions (expected under saturation)", shed)
	}
}
