// Adapting cached plans onto requesting specs.
//
// A cache entry stores the plan solved for ONE member of a canonical
// equivalence class; a hit may come from any other member, whose flow
// list (and hence the index-based Routes and conflict pairs) can be a
// permutation of the stored spec's. adaptResult re-indexes the stored
// plan onto the requesting spec so the response references the caller's
// own flow numbering and Spec pointer.
package service

import (
	"fmt"

	"switchsynth/internal/spec"
)

// adaptResult returns a copy of cached re-bound to sp, which must be in
// the same canonical equivalence class (same module names, same flow
// multiset, same conflicts — guaranteed by equal CanonicalKeys). The
// returned Result shares the immutable Switch and Path values with the
// cached plan but owns its Routes slice and PinOf map.
func adaptResult(cached *spec.Result, sp *spec.Spec) (*spec.Result, error) {
	// The outlet-once rule makes the destination module a unique flow
	// identifier within a spec, so the (From, To)-keyed lookup is a
	// bijection between the two flow lists.
	byDest := make(map[string]spec.Route, len(cached.Routes))
	for _, rt := range cached.Routes {
		f := cached.Spec.Flows[rt.Flow]
		byDest[f.To] = rt
	}
	out := &spec.Result{
		Spec:         sp,
		Switch:       cached.Switch,
		PinOf:        make(map[string]int, len(cached.PinOf)),
		Routes:       make([]spec.Route, len(sp.Flows)),
		UsedEdgeMask: cached.UsedEdgeMask,
		Length:       cached.Length,
		Proven:       cached.Proven,
		Degraded:     cached.Degraded,
		LowerBound:   cached.LowerBound,
		Gap:          cached.Gap,
		Runtime:      cached.Runtime,
		Engine:       cached.Engine,
	}
	for m, p := range cached.PinOf {
		out.PinOf[m] = p
	}
	for i, f := range sp.Flows {
		rt, ok := byDest[f.To]
		if !ok || cached.Spec.Flows[rt.Flow].From != f.From {
			return nil, fmt.Errorf("service: cached plan for key does not cover flow %s→%s (corrupted cache entry?)", f.From, f.To)
		}
		out.Routes[i] = spec.Route{Flow: i, Set: rt.Set, Path: rt.Path}
	}
	// Renumber sets contiguously in first-use order of the new flow
	// indexing so identical requests always see identical set labels.
	next := 0
	remap := make(map[int]int)
	for i := range out.Routes {
		old := out.Routes[i].Set
		if _, ok := remap[old]; !ok {
			remap[old] = next
			next++
		}
		out.Routes[i].Set = remap[old]
	}
	out.NumSets = next
	out.Objective = sp.EffectiveAlpha()*float64(out.NumSets) + sp.EffectiveBeta()*out.Length
	return out, nil
}
