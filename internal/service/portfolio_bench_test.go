// Portfolio-tier benchmark report for ci.sh: cold vs warm-started vs
// raced synthesis on the saturated 16-pin distribution ring and its
// one-edit neighbor family. Runs only when BENCH_PORTFOLIO_OUT names
// the JSON file to write (ci.sh sets it); plain test runs skip it.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strconv"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/portfolio"
	"switchsynth/internal/spec"
)

// benchRing16 is the saturated 16-module distribution ring from the
// solver benchmarks (BENCH_search.json): five inlets feed the remaining
// eleven modules round-robin under the clockwise policy, proven optimal
// in about a second sequentially. Dropping any one flow frees exactly
// that flow's outlet module, so the drop-one-flow family below is the
// one-module-delta neighborhood the similarity index adapts across.
func benchRing16(name string) *spec.Spec {
	mods := make([]string, 16)
	for i := range mods {
		mods[i] = "m" + strconv.Itoa(i)
	}
	return &spec.Spec{
		Name:       name,
		SwitchPins: 16,
		Modules:    mods,
		Flows: []spec.Flow{
			{From: mods[3], To: mods[1]},
			{From: mods[6], To: mods[2]},
			{From: mods[9], To: mods[4]},
			{From: mods[12], To: mods[5]},
			{From: mods[0], To: mods[7]},
			{From: mods[3], To: mods[8]},
			{From: mods[6], To: mods[10]},
			{From: mods[9], To: mods[11]},
			{From: mods[12], To: mods[13]},
			{From: mods[0], To: mods[14]},
			{From: mods[3], To: mods[15]},
		},
		Binding: spec.Clockwise,
	}
}

// ringNeighbor returns benchRing16 minus flow drop: the outlet module of
// the dropped flow becomes unused and is removed, giving a spec one
// module and one flow away from the base.
func ringNeighbor(name string, drop int) *spec.Spec {
	base := benchRing16(name)
	gone := base.Flows[drop].To
	base.Flows = append(base.Flows[:drop:drop], base.Flows[drop+1:]...)
	mods := base.Modules[:0:0]
	for _, m := range base.Modules {
		if m != gone {
			mods = append(mods, m)
		}
	}
	base.Modules = mods
	return base
}

func TestPortfolioBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_PORTFOLIO_OUT")
	if out == "" {
		t.Skip("set BENCH_PORTFOLIO_OUT to emit the portfolio benchmark report")
	}
	opts := switchsynth.Options{TimeLimit: 5 * time.Minute}
	timed := func(e *Engine, sp *spec.Spec) (*Response, float64) {
		start := time.Now()
		res, err := e.Do(context.Background(), sp, opts)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if !res.Synthesis.Proven {
			t.Fatalf("%s: not proven within the time limit", sp.Name)
		}
		return res, time.Since(start).Seconds()
	}
	neighborDrops := []int{1, 5, 9}

	// Cold reference: no similarity index, no racing.
	cold := newTestEngine(t, Config{Workers: 1, SimIndexSize: -1})
	coldBase, coldBaseSec := timed(cold, benchRing16("ring16"))
	coldNeighbor := make([]float64, len(neighborDrops))
	coldRes := make([]*Response, len(neighborDrops))
	for i, d := range neighborDrops {
		coldRes[i], coldNeighbor[i] = timed(cold, ringNeighbor("ring16-n"+strconv.Itoa(d), d))
	}

	// Warm: the base solve populates the index; every neighbor solve
	// must hit it (restriction adaptation) and still serve plans
	// byte-identical to the cold reference.
	warm := newTestEngine(t, Config{Workers: 1})
	_, warmBaseSec := timed(warm, benchRing16("ring16"))
	warmNeighbor := make([]float64, len(neighborDrops))
	for i, d := range neighborDrops {
		res, sec := timed(warm, ringNeighbor("ring16-n"+strconv.Itoa(d), d))
		warmNeighbor[i] = sec
		if !bytes.Equal(planBytes(t, res.Synthesis.Result), planBytes(t, coldRes[i].Synthesis.Result)) {
			t.Errorf("neighbor %d: warm-started plan differs from cold", d)
		}
	}
	if hits := warm.PortfolioStats().WarmStartHits; hits != int64(len(neighborDrops)) {
		t.Errorf("warm-start hits = %d, want %d (every neighbor solve)", hits, len(neighborDrops))
	}

	// Raced: search vs greedy on the base instance (MILP is intractable
	// at this size), byte-identical to the cold reference.
	before := portfolio.Disagreements()
	raced := newTestEngine(t, Config{Workers: 1, Portfolio: true,
		PortfolioLanes: "search,greedy", SimIndexSize: -1})
	racedBase, racedBaseSec := timed(raced, benchRing16("ring16"))
	if !bytes.Equal(planBytes(t, racedBase.Synthesis.Result), planBytes(t, coldBase.Synthesis.Result)) {
		t.Error("raced plan differs from cold")
	}
	if d := portfolio.Disagreements() - before; d != 0 {
		t.Errorf("disagreement counter moved by %d", d)
	}

	var coldSum, warmSum float64
	for i := range neighborDrops {
		coldSum += coldNeighbor[i]
		warmSum += warmNeighbor[i]
	}
	speedup := coldSum / warmSum
	if speedup <= 1.0 {
		t.Errorf("warm-start speedup %.2fx on the one-module-delta family, want > 1x (cold %.2fs, warm %.2fs)",
			speedup, coldSum, warmSum)
	}

	report := map[string]any{
		"benchmark":              "portfolio-tier",
		"instance":               "saturated 16-pin clockwise ring, drop-one-flow neighbors",
		"coldBaseSeconds":        coldBaseSec,
		"warmBaseSeconds":        warmBaseSec,
		"racedBaseSeconds":       racedBaseSec,
		"coldNeighborSeconds":    coldNeighbor,
		"warmNeighborSeconds":    warmNeighbor,
		"warmStartSpeedup":       speedup,
		"warmStartHits":          warm.PortfolioStats().WarmStartHits,
		"racedLaneWinsSearch":    raced.PortfolioStats().LaneWinsSearch,
		"racedLaneWinsGreedy":    raced.PortfolioStats().LaneWinsGreedy,
		"portfolioDisagreements": raced.PortfolioStats().Disagreements,
		"neighborFlowsDropped":   neighborDrops,
		"neighborByteIdentical":  true,
		"racedBaseByteIdentical": true,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
