// Result cache and in-flight deduplication.
//
// The cache is a bounded LRU keyed by the canonical spec key
// (spec.CanonicalKey plus the engine name): every spec in one
// presentation-equivalence class maps to one entry, so a rotated or
// permuted resubmission of an already-solved spec is a hit. Stored
// Results are treated as immutable — readers adapt them onto their own
// spec (adaptResult) instead of mutating the shared plan.
//
// The flightGroup provides singleflight-style deduplication: of N
// concurrent requests for the same canonical key, exactly one becomes
// the leader and solves; the rest attach to the leader's flight and
// receive its outcome. Failed flights are not cached, so a later
// request retries the solve.
package service

import (
	"container/list"
	"sync"

	"switchsynth/internal/spec"
)

// cache is a mutex-guarded LRU of canonical key → solved plan.
type cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	byK map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *spec.Result
	// wire is the plan's already-encoded frame, kept alongside the decoded
	// result so serving GET /plans/{key} and replication pushes reuse the
	// bytes that were verified (or produced) once instead of re-encoding
	// per request. Nil when no frame is available (e.g. the injected
	// cache-corruption fault, whose entry must not vouch for any bytes).
	wire []byte
}

// newCache creates an LRU holding up to capacity results; capacity <= 0
// disables the memory tier entirely — see enabled.
func newCache(capacity int) *cache {
	return &cache{cap: capacity, ll: list.New(), byK: make(map[string]*list.Element)}
}

// enabled reports whether the memory tier is on. With capacity <= 0 the
// engine explicitly skips both lookups and stores (the methods below
// also guard themselves, but the engine branches on this so the
// disabled path is visible at the call sites): requests still coalesce
// through the flight group, and a configured durable store still serves
// disk hits — the supported disk-only configuration (memory off, store
// on).
func (c *cache) enabled() bool { return c.cap > 0 }

// get returns the cached plan for key, marking it most recently used.
func (c *cache) get(key string) (*spec.Result, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a solved plan and (optionally) its encoded frame, evicting
// the least recently used entry when over capacity.
func (c *cache) put(key string, res *spec.Result, wire []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		e := el.Value.(*cacheEntry)
		e.res, e.wire = res, wire
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, wire: wire})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*cacheEntry).key)
	}
}

// getWire returns the cached encoded frame for key, when one was stored
// with the entry.
func (c *cache) getWire(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok || el.Value.(*cacheEntry).wire == nil {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).wire, true
}

// invalidate drops key's entry (a corrupted-plan heal).
func (c *cache) invalidate(key string) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		c.ll.Remove(el)
		delete(c.byK, key)
	}
}

// keys returns the cached keys in LRU order (front = most recent). Used
// by the cluster tier's plan manifest; order is not part of the contract.
func (c *cache) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// len reports the current number of cached plans.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flight is one in-progress solve; done is closed once res/err are set.
type flight struct {
	done chan struct{}
	res  *spec.Result
	err  error
}

// flightGroup tracks in-flight solves by canonical key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key, creating it when absent. leader is
// true for the caller that created it (and therefore must complete it).
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// complete publishes the flight's outcome and removes it from the group.
// The removal happens before done is closed so that a request arriving
// after completion starts fresh (and finds the cache already populated —
// the caller must put into the cache before calling complete).
// inFlight reports whether a solve for key is queued or running. The
// feed layer consults this on release: a feed whose flight is still in
// flight stays live even at zero refs, because the worker that picks the
// job up will adopt and complete it.
func (g *flightGroup) inFlight(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.m[key]
	return ok
}

func (g *flightGroup) complete(key string, f *flight, res *spec.Result, err error) {
	f.res, f.err = res, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}
