package service

import (
	"context"
	"sync/atomic"
	"testing"

	"switchsynth"
	"switchsynth/internal/spec"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	a, b, d := &spec.Result{}, &spec.Result{}, &spec.Result{}
	c.put("a", a, nil)
	c.put("b", b, nil)
	if _, ok := c.get("a"); !ok { // refresh a → b is now least recent
		t.Fatal("a missing before eviction")
	}
	c.put("d", d, nil)
	if _, ok := c.get("b"); ok {
		t.Error("least-recently-used entry b survived eviction")
	}
	if got, ok := c.get("a"); !ok || got != a {
		t.Error("recently-used entry a evicted")
	}
	if got, ok := c.get("d"); !ok || got != d {
		t.Error("new entry d missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	// Re-putting an existing key replaces in place, no eviction.
	c.put("a", b, nil)
	if got, _ := c.get("a"); got != b {
		t.Error("re-put did not replace the value")
	}
	if c.len() != 2 {
		t.Errorf("len after re-put = %d, want 2", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		c := newCache(capacity)
		c.put("k", &spec.Result{}, nil)
		if _, ok := c.get("k"); ok {
			t.Errorf("capacity %d cached anyway", capacity)
		}
		if c.len() != 0 {
			t.Errorf("capacity %d len = %d", capacity, c.len())
		}
	}
}

func TestFlightGroupLeaderAndWaiters(t *testing.T) {
	g := newFlightGroup()
	f1, lead1 := g.join("k")
	if !lead1 {
		t.Fatal("first join is not leader")
	}
	f2, lead2 := g.join("k")
	if lead2 || f1 != f2 {
		t.Fatal("second join did not attach to the leader's flight")
	}
	res := &spec.Result{}
	g.complete("k", f1, res, nil)
	<-f1.done
	if f1.res != res || f1.err != nil {
		t.Error("flight outcome not published")
	}
	// After completion the key is free again.
	if _, lead := g.join("k"); !lead {
		t.Error("post-completion join is not a fresh leader")
	}
}

// TestCanonicalReuseAcrossPresentations is the cache side of the
// canonicalization property: isomorphic specs (renamed, module-permuted,
// flow-permuted, conflict-flipped) all reuse the single cached solve.
func TestCanonicalReuseAcrossPresentations(t *testing.T) {
	var solves atomic.Int64
	e := newTestEngine(t, Config{Workers: 2})
	realSolve := e.solve
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		solves.Add(1)
		return realSolve(ctx, sp, opts)
	}

	variants := []*spec.Spec{
		serviceSpec("original"),
		serviceSpec("renamed"),
		permutedServiceSpec("permuted"),
	}
	// A clockwise problem and its rotations share one further entry.
	// (No conflicts: this clockwise module order admits no conflict-free
	// plan, and the class must stay solvable.)
	cw := serviceSpec("cw")
	cw.Binding = spec.Clockwise
	cw.Conflicts = nil
	cwRot := serviceSpec("cw-rotated")
	cwRot.Binding = spec.Clockwise
	cwRot.Conflicts = nil
	cwRot.Modules = []string{"mix1", "mix2", "sample", "buffer"} // rotation by 2
	variants = append(variants, cw, cwRot)

	var keys []string
	for _, sp := range variants {
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{})
		if err != nil {
			t.Fatalf("Do(%s): %v", sp.Name, err)
		}
		if err := switchsynth.Verify(resp.Synthesis.Result); err != nil {
			t.Fatalf("verify %s: %v", sp.Name, err)
		}
		keys = append(keys, resp.Key)
	}

	if got := solves.Load(); got != 2 {
		t.Errorf("%d solves for %d specs in 2 equivalence classes", got, len(variants))
	}
	if keys[0] != keys[1] || keys[1] != keys[2] {
		t.Error("unfixed presentation variants got different keys")
	}
	if keys[3] != keys[4] {
		t.Error("clockwise rotation got a different key")
	}
	if keys[0] == keys[3] {
		t.Error("unfixed and clockwise problems share a key")
	}
	snap := e.Snapshot()
	if snap.CacheEntries != 2 {
		t.Errorf("cacheEntries = %d, want 2", snap.CacheEntries)
	}
	if snap.CacheHits != int64(len(variants))-2 {
		t.Errorf("cacheHits = %d, want %d", snap.CacheHits, len(variants)-2)
	}
}

func TestMetricsQuantiles(t *testing.T) {
	var m Metrics
	for i := 0; i < 100; i++ {
		m.observeSolve(2_000_000) // 2ms → bucket (0.001, 0.0025]
	}
	s := m.snapshot()
	if s.SolveCount != 100 {
		t.Fatalf("count = %d", s.SolveCount)
	}
	if s.SolveP50Seconds <= 0.001 || s.SolveP50Seconds > 0.0025 {
		t.Errorf("P50 = %v, want within (0.001, 0.0025]", s.SolveP50Seconds)
	}
	if s.SolveMaxSeconds != 0.002 {
		t.Errorf("max = %v, want 0.002", s.SolveMaxSeconds)
	}
	if s.SolveMeanSeconds != 0.002 {
		t.Errorf("mean = %v, want 0.002", s.SolveMeanSeconds)
	}
}
