// The plan-stream endpoint: a hijacked HTTP/1.1 Upgrade connection that
// serves plan fetches as length-prefixed exchanges, skipping the HTTP
// envelope that dominates a small frame's transfer cost. See
// internal/planio/stream.go for the wire format and the rationale.
package service

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"switchsynth/internal/planio"
)

// trackStreamConn registers a hijacked stream connection for close-time
// hangup; false means the engine is already closed and the connection
// must not be served.
func (e *Engine) trackStreamConn(c net.Conn) bool {
	e.streamMu.Lock()
	defer e.streamMu.Unlock()
	if e.streamClosed {
		return false
	}
	if e.streamConns == nil {
		e.streamConns = make(map[net.Conn]struct{})
	}
	e.streamConns[c] = struct{}{}
	return true
}

func (e *Engine) untrackStreamConn(c net.Conn) {
	e.streamMu.Lock()
	delete(e.streamConns, c)
	e.streamMu.Unlock()
}

// planStreamIdleTimeout bounds how long a stream waits for the next
// fetch request before the server reclaims the connection (and its
// goroutine). Clients reconnect transparently on the next fetch.
const planStreamIdleTimeout = 5 * time.Minute

// upgradesToPlanStream reports whether the request is a well-formed
// upgrade handshake for the plan-stream protocol.
func upgradesToPlanStream(r *http.Request) bool {
	if !strings.EqualFold(r.Header.Get("Upgrade"), planio.PlanStreamProto) {
		return false
	}
	for _, tok := range strings.Split(r.Header.Get("Connection"), ",") {
		if strings.EqualFold(strings.TrimSpace(tok), "Upgrade") {
			return true
		}
	}
	return false
}

// handlePlanStream upgrades the connection and serves fetch exchanges
// until the peer hangs up, the idle timeout fires, or a malformed
// request arrives. It serves stored plan bytes verbatim — exactly what
// GET /plans/{key} hands a binary-accepting peer — so no transcoding
// happens here: a peer that speaks the stream protocol by definition
// decodes every planio format.
func handlePlanStream(e *Engine, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "invalid", fmt.Errorf("GET required"))
		return
	}
	if !upgradesToPlanStream(r) {
		writeError(w, http.StatusUpgradeRequired, "invalid",
			fmt.Errorf("requires Upgrade: %s", planio.PlanStreamProto))
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal",
			fmt.Errorf("connection cannot be hijacked"))
		return
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	if !e.trackStreamConn(conn) {
		conn.Close()
		return
	}
	defer func() {
		e.untrackStreamConn(conn)
		conn.Close()
	}()
	if _, err := fmt.Fprintf(rw, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n",
		planio.PlanStreamProto); err != nil {
		return
	}
	if err := rw.Flush(); err != nil {
		return
	}
	for {
		if err := conn.SetReadDeadline(time.Now().Add(planStreamIdleTimeout)); err != nil {
			return
		}
		key, err := planio.ReadFetchRequest(rw.Reader)
		if err != nil {
			return // clean EOF, idle timeout, or a malformed request: drop the stream
		}
		data, ok := e.PlanBytes(key)
		if err := planio.WriteFetchResponse(rw.Writer, data, ok); err != nil {
			return
		}
		if err := rw.Flush(); err != nil {
			return
		}
	}
}
