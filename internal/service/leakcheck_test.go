package service

import (
	"runtime"
	"testing"
	"time"
)

// checkGoroutineLeaks snapshots the goroutine count and returns a
// function that fails the test if the count has not returned to within
// a small slack of the baseline. Call the returned func after shutting
// the engine down; it polls because worker exit is asynchronous.
func checkGoroutineLeaks(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			runtime.GC()
			now := runtime.NumGoroutine()
			if now <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
