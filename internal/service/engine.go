// Package service turns the switchsynth library into a long-running,
// concurrent synthesis service: a bounded worker pool consumes solve
// jobs from a queue, identical or isomorphic specs are answered from a
// canonical-key result cache, concurrent requests for the same spec are
// coalesced onto a single solve, and atomic metrics expose the service
// health. cmd/synthd serves this engine over HTTP; cmd/experiments runs
// the evaluation campaign through it for parallel speedup.
//
// Life of a request (Engine.Do):
//
//  1. the spec is validated and reduced to its canonical key,
//  2. a cache hit adapts the stored plan onto the request's flow
//     indexing and returns without queueing,
//  3. a miss either attaches to an in-flight solve of the same key
//     (dedup) or enqueues a new job for the worker pool,
//  4. a worker solves with the request's time limit and the engine's
//     shutdown context wired into the optimizer, caches the plan, and
//     wakes every attached waiter,
//  5. the caller runs the per-request analyses (valves, pressure
//     sharing, control routing) on its adapted copy of the plan.
//
// Workers are panic-isolated: a crashing solve fails that one job and
// the pool keeps serving. Close drains queued jobs before returning;
// CloseNow cancels in-flight optimizer runs via their context.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"switchsynth"
	"switchsynth/internal/admission"
	"switchsynth/internal/faultinject"
	"switchsynth/internal/planio"
	"switchsynth/internal/portfolio"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
	"switchsynth/internal/store"
)

// Config sizes the engine.
type Config struct {
	// Workers is the number of concurrent solver goroutines
	// (default runtime.GOMAXPROCS(0)).
	Workers int
	// QueueDepth bounds the job queue (default 4×Workers). Interactive
	// submission blocks — respecting the caller's context — when the
	// queue is full; batch and background submissions shed earlier at
	// their depth watermarks (see internal/admission).
	QueueDepth int
	// MaxQueueWait is the admission queue's wait watermark: once the
	// measured dequeue rate predicts a queue wait beyond it, new
	// submissions of every class are shed with *admission.ErrShed
	// (default 30s; negative disables the wait watermark).
	MaxQueueWait time.Duration
	// CacheSize bounds the result LRU in entries (default 1024; negative
	// disables caching).
	CacheSize int
	// DefaultTimeLimit applies to requests that carry no time limit of
	// their own (default 30s; negative means unlimited).
	DefaultTimeLimit time.Duration
	// BreakerThreshold is the number of consecutive slot-burning failures
	// (timeouts, solver panics) on one canonical key before its circuit
	// breaker opens and requests fast-fail with *ErrOverloaded (default
	// 3; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds load before
	// admitting a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// NegativeCacheSize bounds the known-infeasible LRU in entries
	// (default 256; negative disables it). Only proven ErrNoSolution
	// outcomes are stored, never timeouts.
	NegativeCacheSize int
	// FaultInjector, when non-nil, enables deterministic fault injection
	// at the engine's chaos points (see internal/faultinject). Nil — the
	// default — makes every injection point a nop.
	FaultInjector *faultinject.Injector
	// SolverWorkers is the per-solve parallelism applied to requests that
	// carry no worker count of their own: the number of branch-and-bound
	// goroutines inside one search-engine solve (default 1 = sequential).
	// Plans are bit-identical for every value, so this never partitions
	// the cache; it trades per-job latency against cross-job throughput
	// of the Workers pool above.
	SolverWorkers int
	// Store, when non-nil, is the durable tier of the result cache: on a
	// memory miss the engine consults it before solving, and solved
	// proven plans are written through (degraded plans never persist).
	// Combined with CacheSize < 0 this gives a disk-only configuration.
	// The engine does not close the store; its owner does.
	Store *store.Store
	// PeerFill, when non-nil, is the cluster tier of the result cache: on
	// a full local miss (memory and disk) the engine asks it for the
	// planio-encoded plan before solving — in a sharded deployment this is
	// the key's owning peer (internal/cluster). The fetched plan is
	// decoded, its canonical key re-derived and compared, and the full
	// contamination verifier re-run before it is served or persisted; a
	// plan failing any of those is discarded and the request falls back to
	// a local solve. A (nil, error) or (nil, nil) return is a miss.
	PeerFill func(ctx context.Context, key string) ([]byte, error)
	// OnPlanStored, when non-nil, is called after a freshly solved proven
	// plan lands in the local tiers, with its canonical key and
	// wire-encoded bytes. The cluster layer wires Cluster.ReplicatePlan
	// here to push the plan to the key's replica set at write time. The
	// hook must not block (the cluster's implementation only enqueues);
	// it fires for fresh solves only — plans that arrived from a peer
	// (fill, import) are already replicating and are not re-pushed, so
	// replication cannot amplify into a loop.
	OnPlanStored func(key string, data []byte)
	// Portfolio routes search-engine solves through portfolio.Race:
	// configured backend lanes (branch-and-bound, MILP, greedy) run the
	// same canonical spec concurrently, the first optimality proof wins
	// and cancels the rest, and every completed loser is cross-checked
	// against the winner. Disabled by default; the plan served is
	// byte-identical either way, so this never partitions the cache.
	Portfolio bool
	// PortfolioLanes selects the racing lanes as a comma-separated list
	// ("search,milp,greedy"); empty means every lane. Ignored unless
	// Portfolio is set. Invalid lane names fall back to the full default
	// set — cmd/synthd validates the flag up front and fails fast instead.
	PortfolioLanes string
	// WireFormat selects the encoding of the plan bytes this engine
	// produces — the frame cached next to each plan, the store
	// write-through, replication pushes and GET /plans/{key} responses:
	// "binary" (the default; planio's checksummed frame format) or "json"
	// (the human/audit file format). Decoding always accepts both, so
	// nodes with different wire formats interoperate.
	WireFormat string
	// DigestCacheSize configures the verified-bytes digest cache, which
	// lets byte-identical plan frames that already passed a full import
	// verification skip the redundant re-decode on later fills, imports
	// and disk reads. 0 (the default) shares the process-wide
	// planio.SharedVerified cache; > 0 uses a private cache of that many
	// entries; < 0 disables the fast path (every load takes the full
	// verify).
	DigestCacheSize int
	// SimIndexSize bounds the spec-similarity warm-start index in entries
	// (default 512; negative disables it). The index is populated with
	// every proven plan — solved, filled or imported — and consulted on
	// cold search-engine solves: a stored plan for the same spec family
	// (one module/flow removed or added, one conflict toggled) is adapted
	// into a starting incumbent. Warm starts only tighten the initial
	// bound; plans stay bit-identical to a cold solve.
	SimIndexSize int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 4 * c.workers()
}

func (c Config) cacheSize() int {
	switch {
	case c.CacheSize > 0:
		return c.CacheSize
	case c.CacheSize < 0:
		return 0
	default:
		return 1024
	}
}

func (c Config) defaultTimeLimit() time.Duration {
	switch {
	case c.DefaultTimeLimit > 0:
		return c.DefaultTimeLimit
	case c.DefaultTimeLimit < 0:
		return 0
	default:
		return 30 * time.Second
	}
}

func (c Config) solverWorkers() int {
	if c.SolverWorkers > 0 {
		return c.SolverWorkers
	}
	return 1
}

func (c Config) breakerThreshold() int {
	switch {
	case c.BreakerThreshold > 0:
		return c.BreakerThreshold
	case c.BreakerThreshold < 0:
		return 0
	default:
		return 3
	}
}

func (c Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 5 * time.Second
}

func (c Config) negativeCacheSize() int {
	switch {
	case c.NegativeCacheSize > 0:
		return c.NegativeCacheSize
	case c.NegativeCacheSize < 0:
		return 0
	default:
		return 256
	}
}

func (c Config) simIndexSize() int {
	switch {
	case c.SimIndexSize > 0:
		return c.SimIndexSize
	case c.SimIndexSize < 0:
		return 0
	default:
		return portfolio.DefaultSimIndexCapacity
	}
}

// WireFormatBinary and WireFormatJSON are the valid Config.WireFormat
// values (empty means binary).
const (
	WireFormatBinary = "binary"
	WireFormatJSON   = "json"
)

func (c Config) wireFormat() string {
	if c.WireFormat == WireFormatJSON {
		return WireFormatJSON
	}
	return WireFormatBinary
}

func (c Config) verifiedCache() *planio.VerifiedCache {
	switch {
	case c.DigestCacheSize > 0:
		return planio.NewVerifiedCache(c.DigestCacheSize)
	case c.DigestCacheSize < 0:
		return nil
	default:
		return planio.SharedVerified
	}
}

func (c Config) portfolioLanes() []portfolio.Lane {
	lanes, err := portfolio.ParseLanes(c.PortfolioLanes)
	if err != nil {
		return portfolio.DefaultLanes()
	}
	return lanes
}

// Response is the outcome of one synthesis request.
type Response struct {
	// Synthesis is the routed, analyzed switch (nil on error).
	Synthesis *switchsynth.Synthesis
	// Key is the spec's canonical cache key.
	Key string
	// CacheHit reports that the plan was served from the result cache
	// (either tier) instead of a fresh solve.
	CacheHit bool
	// DiskHit reports that the plan came from the durable store: the
	// memory tier missed (or is disabled) and the plan was decoded and
	// re-verified from disk.
	DiskHit bool
	// PeerHit reports that the plan came from the cluster tier: both
	// local tiers missed and the key's owning peer supplied a plan that
	// passed re-verification here.
	PeerHit bool
	// Coalesced reports that the request attached to another request's
	// in-flight solve instead of starting its own.
	Coalesced bool
	// SolveTime is the optimizer wall-clock time that produced the plan
	// (the original solve's time when served from cache).
	SolveTime time.Duration
}

// ErrEngineClosed is returned for requests submitted after Close.
var ErrEngineClosed = errors.New("service: engine is closed")

// ErrSolvePanic reports that the optimizer panicked inside a worker. The
// worker pool survives; only the job (and its coalesced waiters) fail.
type ErrSolvePanic struct {
	SpecName string
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (e *ErrSolvePanic) Error() string {
	return fmt.Sprintf("service: synthesis of %q panicked: %v", e.SpecName, e.Value)
}

// Is makes every *ErrSolvePanic match every other under errors.Is.
func (e *ErrSolvePanic) Is(target error) bool {
	var other *ErrSolvePanic
	return errors.As(target, &other)
}

type job struct {
	key    string
	sp     *spec.Spec
	opts   switchsynth.Options
	flight *flight
}

// Engine is the concurrent synthesis service. Create with New, serve
// with Do, retire with Close (drain) or CloseNow (cancel).
type Engine struct {
	cfg      Config
	queue    *admission.Queue // fair admission queue feeding the workers
	cache    *cache
	store    *store.Store // nil when no durable tier is configured
	fill     func(ctx context.Context, key string) ([]byte, error)
	onStored func(key string, data []byte) // write-time replication hook
	neg      *negCache
	// verified is the verified-bytes digest cache (nil when disabled):
	// SHA-256 of plan bytes that already passed a full verification, so
	// identical bytes arriving again — repeat fills, anti-entropy sweeps,
	// read-repair, disk re-reads — skip the redundant decode. Unseen
	// bytes always take the full path.
	verified *planio.VerifiedCache
	breakers *admission.Breakers // nil when the breaker is disabled
	inj      *faultinject.Injector
	flights  *flightGroup
	feeds    *feedGroup // per-key anytime incumbent feeds (streaming)
	metrics  *Metrics
	// simIndex is the spec-similarity warm-start index (nil when
	// disabled): proven plans are added as they land, cold search-engine
	// solves probe it for an adapted starting incumbent.
	simIndex *portfolio.SimIndex
	// pfLanes is the parsed racing lane set; empty unless cfg.Portfolio.
	pfLanes []portfolio.Lane

	// draining is set by StartDrain (graceful shutdown has begun):
	// readiness probes — /readyz, cluster membership — steer traffic
	// away, and new solves are rejected with *admission.ErrDraining
	// while in-flight and queued work finishes.
	draining atomic.Bool
	// closed is set by Close before the queue closes, so late Do calls
	// fail with the typed ErrEngineClosed instead of racing the queue.
	closed atomic.Bool

	baseCtx context.Context // cancelled by CloseNow; aborts in-flight solves
	cancel  context.CancelFunc

	closeOnce sync.Once
	drained   chan struct{} // closed when all workers exited

	// Hijacked plan-stream connections served by this engine
	// (planstream.go). Close hangs them up so a retired engine — a
	// killed node in the chaos tests, a drained daemon in production —
	// stops answering fetches that bypass the HTTP server's own
	// connection tracking.
	streamMu     sync.Mutex
	streamConns  map[net.Conn]struct{}
	streamClosed bool

	// solve is the optimizer entry point; tests substitute it to inject
	// slow, panicking or counting solves.
	solve func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error)
}

// New creates and starts an engine with cfg's worker pool.
func New(cfg Config) *Engine {
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg: cfg,
		queue: admission.NewQueue(admission.QueueConfig{
			Capacity: cfg.queueDepth(),
			MaxWait:  cfg.MaxQueueWait,
		}),
		cache:    newCache(cfg.cacheSize()),
		store:    cfg.Store,
		fill:     cfg.PeerFill,
		onStored: cfg.OnPlanStored,
		neg:      newNegCache(cfg.negativeCacheSize()),
		verified: cfg.verifiedCache(),
		inj:      cfg.FaultInjector,
		flights:  newFlightGroup(),
		feeds:    newFeedGroup(),
		metrics:  &Metrics{},
		baseCtx:  ctx,
		cancel:   cancel,
		drained:  make(chan struct{}),
		solve:    switchsynth.SolvePlan,
	}
	if th := cfg.breakerThreshold(); th > 0 {
		e.breakers = admission.NewBreakers(th, cfg.breakerCooldown())
	}
	if size := cfg.simIndexSize(); size > 0 {
		e.simIndex = portfolio.NewSimIndex(size)
	}
	if cfg.Portfolio {
		e.pfLanes = cfg.portfolioLanes()
	}
	workers := cfg.workers()
	done := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				it, ok := e.queue.Next()
				if !ok {
					return
				}
				e.runJob(it.Payload.(job))
			}
		}()
	}
	go func() {
		for i := 0; i < workers; i++ {
			<-done
		}
		close(e.drained)
	}()
	return e
}

// Do synthesizes sp, serving from the cache or an in-flight solve when
// possible. It blocks until the plan is ready, ctx is done, or the
// engine closes. opts.TimeLimit of zero inherits the engine default.
func (e *Engine) Do(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*Response, error) {
	e.metrics.jobsSubmitted.Add(1)
	key, err := canonicalJobKey(sp, opts)
	if err != nil {
		e.classifyFailure(err)
		return nil, err
	}
	if opts.TimeLimit == 0 {
		opts.TimeLimit = e.cfg.defaultTimeLimit()
	}
	if opts.SolverWorkers == 0 {
		opts.SolverWorkers = e.cfg.solverWorkers()
	}
	if nerr, ok := e.neg.get(key); ok {
		// A stored ErrNoSolution is an exhaustive-search proof; replay it
		// without burning a worker slot.
		e.metrics.negCacheHits.Add(1)
		e.classifyFailure(nerr)
		return nil, nerr
	}

	triedPeer := false
	for {
		// Memory tier. A disabled cache (capacity <= 0) explicitly skips
		// both the lookup here and the store in runJob — requests still
		// coalesce through the flight group and, in a disk-only
		// configuration, are served from the durable tier below.
		if e.cache.enabled() {
			if res, ok := e.cache.get(key); ok {
				resp, ferr := e.assemble(&Response{Key: key, CacheHit: true, SolveTime: res.Runtime}, res, sp, opts)
				if ferr != nil {
					// The stored plan no longer adapts or verifies — a
					// corrupted entry. Heal: drop it and re-solve; the fresh
					// flight result is assembled directly, never from the
					// cache, so this cannot loop.
					e.cache.invalidate(key)
					e.metrics.cacheHealed.Add(1)
					continue
				}
				e.metrics.cacheHits.Add(1)
				e.metrics.jobsCompleted.Add(1)
				return resp, nil
			}
		}
		// Disk tier: decode the persisted plan and re-verify it through
		// the same assemble path a memory hit takes (Analyze runs the
		// full contamination verifier), so a record that rotted on disk
		// is healed — evicted and re-solved — never served.
		if e.store != nil {
			if res, data, ok := e.loadFromStore(key); ok {
				resp, ferr := e.assemble(&Response{Key: key, CacheHit: true, DiskHit: true, SolveTime: res.Runtime}, res, sp, opts)
				if ferr != nil {
					_ = e.store.Delete(key)
					e.metrics.storeHealed.Add(1)
					continue
				}
				// Promote to the memory tier — with the stored frame, so the
				// next hit skips the disk read and peers get the exact bytes
				// without a re-encode.
				if e.cache.enabled() {
					e.cache.put(key, res, data)
				}
				e.metrics.jobsCompleted.Add(1)
				return resp, nil
			}
		}
		// Cluster tier: both local tiers missed — ask the key's owning
		// peer before burning a solver slot. The fetched plan passes the
		// same assemble path as any cache hit (full contamination
		// verification), so a corrupt fetch is rejected here and the
		// request falls through to a local solve; only verified plans are
		// written through to the local tiers. Tried at most once per
		// request — a heal-loop retry must not hammer the peer.
		if e.fill != nil && !triedPeer {
			triedPeer = true
			if res, data, seen, ok := e.loadFromPeer(ctx, key); ok {
				resp, ferr := e.assemble(&Response{Key: key, CacheHit: true, PeerHit: true, SolveTime: res.Runtime}, res, sp, opts)
				if ferr == nil {
					e.metrics.peerHits.Add(1)
					// The fetched bytes just passed the full check (or were
					// digest-known to have passed it): remember their digest
					// and reuse them verbatim for the memory frame and the
					// durable tier — no re-encode on the fill path. A
					// digest-seen fill skips the digest and sim-index adds:
					// the first pass of these exact bytes through this path
					// (or through a solve or import) already recorded both,
					// and Lookup refreshed the digest entry's recency. The
					// sim index may meanwhile have evicted the plan — warm
					// starts are best-effort, and re-deriving the canonical
					// spec on every repeat fill costs more than a missed
					// seed.
					if !seen {
						if e.verified != nil {
							e.verified.Add(data, key, res)
						}
						if e.simIndex != nil {
							e.simIndex.Add(res.Spec, res)
						}
					}
					if e.cache.enabled() {
						e.cache.put(key, res, data)
					}
					if e.store != nil {
						_ = e.store.Put(key, engineName(opts), data)
					}
					e.metrics.jobsCompleted.Add(1)
					return resp, nil
				}
				// Fetched plan failed verification: never served, never
				// stored. Fall through to the local solve.
				e.metrics.peerRejected.Add(1)
			}
		}
		if ok, retryAfter := e.breakers.Allow(key); !ok {
			e.metrics.jobsShed.Add(1)
			return nil, &ErrOverloaded{Key: key, RetryAfter: retryAfter}
		}
		f, leader := e.flights.join(key)
		if leader {
			e.metrics.cacheMisses.Add(1)
			if err := e.enqueue(ctx, job{key: key, sp: sp, opts: opts, flight: f}); err != nil {
				// Nobody will run this flight; fail it so attached
				// waiters don't hang, and let later requests retry. A
				// feed held open for this flight (a DoStream whose
				// release deferred to the in-flight check) now has no
				// worker coming — reap it so its watchers unblock too.
				e.flights.complete(key, f, nil, err)
				e.feeds.abandon(key)
				switch {
				case errors.Is(err, &admission.ErrShed{}):
					e.metrics.jobsShedQueue.Add(1)
				case errors.Is(err, &admission.ErrDraining{}):
					e.metrics.jobsDrainRejected.Add(1)
				default:
					e.metrics.jobsFailed.Add(1)
				}
				return nil, err
			}
		} else {
			e.metrics.dedupCoalesced.Add(1)
		}
		select {
		case <-f.done:
		case <-ctx.Done():
			e.metrics.jobsFailed.Add(1)
			return nil, ctx.Err()
		}
		if f.err != nil {
			// A coalesced waiter whose leader was cancelled before its
			// job ran retries its own solve rather than inheriting the
			// leader's private cancellation. Genuine solve timeouts are
			// *search.ErrTimeout, never a bare context error.
			if !leader && ctx.Err() == nil && e.baseCtx.Err() == nil &&
				!errors.Is(f.err, &search.ErrTimeout{}) &&
				(errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
				continue
			}
			e.classifyFailure(f.err)
			return nil, f.err
		}
		resp, ferr := e.assemble(&Response{Key: key, Coalesced: !leader, SolveTime: f.res.Runtime}, f.res, sp, opts)
		if ferr != nil {
			e.metrics.jobsFailed.Add(1)
			return nil, ferr
		}
		e.metrics.jobsCompleted.Add(1)
		return resp, nil
	}
}

// loadFromStore fetches and decodes the persisted plan for key, also
// returning the raw stored bytes so the caller can reuse them as the
// plan's frame. A record that fails its CRC is already evicted by the
// store itself; one that reads back but no longer decodes (or lost its
// optimality proof) is deleted here. Either way the caller sees a miss
// and re-solves — a corrupted persisted plan is never served. Bytes that
// are digest-identical to a previously fully verified frame skip the
// decode (any disk rot changes the digest and takes the full path).
// Counted as storeHits / storeMisses on the engine, mirroring the
// store's own counters.
func (e *Engine) loadFromStore(key string) (*spec.Result, []byte, bool) {
	data, _, ok := e.store.Get(key)
	if !ok {
		e.metrics.storeMisses.Add(1)
		return nil, nil, false
	}
	if e.verified != nil {
		if res, hit := e.verified.Lookup(data, key); hit {
			e.metrics.storeHits.Add(1)
			return res, data, true
		}
	}
	res, err := planio.DecodeAny(data)
	if err != nil || !res.Proven {
		_ = e.store.Delete(key)
		e.metrics.storeHealed.Add(1)
		e.metrics.storeMisses.Add(1)
		return nil, nil, false
	}
	e.metrics.storeHits.Add(1)
	return res, data, true
}

// loadFromPeer asks the cluster tier (the key's owning peer) for the
// plan, returning the decoded plan together with the fetched bytes. The
// bytes are decoded and structurally vetted here — proven, and carrying
// a spec whose re-derived canonical job key matches the requested key,
// so a peer can never poison a foreign cache slot. Contamination
// verification happens in the caller's assemble step, the same path
// every cache hit takes. Bytes digest-identical to a frame that already
// passed the whole of that pipeline under this key skip straight to the
// decoded plan — a corrupt fetch differs in at least one byte, misses
// the digest, and is rejected by the full path as before. Counted as
// peerMisses (no plan) or peerRejected (plan that failed vetting). The
// seen result reports a digest hit — the caller uses it to skip
// re-recording what the first pass already recorded.
func (e *Engine) loadFromPeer(ctx context.Context, key string) (res *spec.Result, data []byte, seen, ok bool) {
	data, err := e.fill(ctx, key)
	if err != nil || data == nil {
		e.metrics.peerMisses.Add(1)
		return nil, nil, false, false
	}
	if e.verified != nil {
		if res, hit := e.verified.Lookup(data, key); hit {
			return res, data, true, true
		}
	}
	res, err = planio.DecodeAny(data)
	if err != nil || !res.Proven {
		e.metrics.peerRejected.Add(1)
		return nil, nil, false, false
	}
	derived, err := canonicalJobKey(res.Spec, switchsynth.Options{Engine: res.Engine})
	if err != nil || derived != key {
		e.metrics.peerRejected.Add(1)
		return nil, nil, false, false
	}
	return res, data, false, true
}

// ImportPlan verifies a planio-encoded plan fetched from a peer and, on
// success, installs it in the local tiers under key. It is the pull side
// of anti-entropy sync (internal/cluster): only proven plans whose
// re-derived canonical job key matches key and which pass the full
// contamination verifier replicate — a corrupt or forged plan is an
// error, never a stored entry. Importing an already-present key is a
// cheap no-op.
func (e *Engine) ImportPlan(key string, data []byte) error {
	if e.cache.enabled() {
		if _, ok := e.cache.get(key); ok {
			return nil
		}
	}
	if e.store != nil && e.store.Has(key) {
		return nil
	}
	res, fullyVerified := (*spec.Result)(nil), false
	if e.verified != nil {
		// Digest fast path: byte-identical frames that already passed the
		// decode → proof → key → contamination pipeline under this key
		// install without repeating it. Anti-entropy sweeps and read-repair
		// re-offer the same bytes constantly; a corrupt copy differs and
		// misses.
		res, fullyVerified = e.verified.Lookup(data, key)
	}
	if !fullyVerified {
		var err error
		res, err = planio.DecodeAny(data)
		if err != nil {
			e.metrics.peerRejected.Add(1)
			return fmt.Errorf("service: import %s: %w", key, err)
		}
		if !res.Proven {
			e.metrics.peerRejected.Add(1)
			return fmt.Errorf("service: import %s: plan is degraded (unproven plans do not replicate)", key)
		}
		derived, err := canonicalJobKey(res.Spec, switchsynth.Options{Engine: res.Engine})
		if err != nil || derived != key {
			e.metrics.peerRejected.Add(1)
			return fmt.Errorf("service: import %s: canonical key mismatch (derived %q)", key, derived)
		}
		if err := switchsynth.Verify(res); err != nil {
			e.metrics.peerRejected.Add(1)
			return fmt.Errorf("service: import %s: %w", key, err)
		}
		if e.verified != nil {
			e.verified.Add(data, key, res)
		}
	}
	if e.cache.enabled() {
		e.cache.put(key, res, data)
	}
	if e.store != nil {
		if err := e.store.Put(key, res.Engine, data); err != nil {
			return err
		}
	}
	if e.simIndex != nil {
		// A verified imported plan warms the similarity index just like a
		// local solve: neighbors of replicated specs warm-start too.
		e.simIndex.Add(res.Spec, res)
	}
	e.metrics.peerImported.Add(1)
	return nil
}

// PlanBytes returns the planio-encoded plan stored under key, serving
// the memory tier first and the durable store second. This is what GET
// /plans/{key} hands to peers; absent keys report ok == false. The
// memory tier serves the frame cached next to the plan — the bytes the
// engine encoded or verified exactly once — and only falls back to a
// fresh compact encode for entries that carry no frame.
func (e *Engine) PlanBytes(key string) ([]byte, bool) {
	if e.cache.enabled() {
		if data, ok := e.cache.getWire(key); ok {
			return data, true
		}
		if res, ok := e.cache.get(key); ok {
			if data, err := e.encodeFrame(res); err == nil {
				return data, true
			}
		}
	}
	if e.store != nil {
		if data, _, ok := e.store.Get(key); ok {
			return data, true
		}
	}
	return nil, false
}

// encodeFrame serializes a plan in the engine's configured wire format.
func (e *Engine) encodeFrame(res *spec.Result) ([]byte, error) {
	if e.cfg.wireFormat() == WireFormatJSON {
		return planio.EncodeWire(res)
	}
	return planio.EncodeBinary(res)
}

// PlanKeys returns the sorted union of the keys held by the local tiers
// (memory cache and durable store) — the manifest anti-entropy peers
// compare against their own.
func (e *Engine) PlanKeys() []string {
	seen := map[string]struct{}{}
	if e.store != nil {
		for _, k := range e.store.Keys() {
			seen[k] = struct{}{}
		}
	}
	for _, k := range e.cache.keys() {
		seen[k] = struct{}{}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// StartDrain marks the engine as draining: /readyz flips to 503 so
// cluster probes and load balancers stop routing here, while in-flight
// and queued work keeps completing. Draining is one-way and idempotent;
// Close/CloseNow imply it.
func (e *Engine) StartDrain() { e.draining.Store(true) }

// Draining reports whether graceful shutdown has begun (StartDrain) or
// the engine is closed — either way this node must not receive new
// traffic.
func (e *Engine) Draining() bool {
	return e.draining.Load() || e.closed.Load()
}

// RetryAfterHint is the admission queue's measured backoff suggestion:
// the predicted wait of a submission arriving now, derived from the
// observed dequeue rate and clamped to [1s, 30s]. HTTP handlers use it
// for Retry-After headers on every shed and drain path.
func (e *Engine) RetryAfterHint() time.Duration {
	return e.queue.RetryAfterHint()
}

// enqueue hands a job to the admission queue, which applies the caller's
// tenant and priority class (admission.CallerFrom): interactive
// submissions block — respecting ctx — while the queue is at capacity;
// batch and background submissions shed earlier at their depth
// watermarks, and every class sheds once the measured wait watermark
// trips. A draining engine rejects new solves with *admission.ErrDraining
// so the HTTP layer can answer 503 with a measured Retry-After; a closed
// engine fails with the typed ErrEngineClosed.
func (e *Engine) enqueue(ctx context.Context, j job) error {
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if e.draining.Load() {
		return &admission.ErrDraining{RetryAfter: e.queue.RetryAfterHint()}
	}
	if err := e.queue.Submit(ctx, admission.CallerFrom(ctx), j); err != nil {
		if errors.Is(err, admission.ErrClosed) {
			return ErrEngineClosed
		}
		return err
	}
	return nil
}

// assemble adapts the shared plan onto the requesting spec and runs the
// per-request analyses (verification, valves, pressure sharing, control
// routing). It records no metrics; callers classify the outcome, since a
// failed assembly of a cached entry is a heal, not a job failure.
func (e *Engine) assemble(resp *Response, shared *spec.Result, sp *spec.Spec, opts switchsynth.Options) (*Response, error) {
	adapted, err := adaptResult(shared, sp)
	if err != nil {
		return nil, err
	}
	syn, err := switchsynth.Analyze(adapted, opts)
	if err != nil {
		return nil, err
	}
	resp.Synthesis = syn
	return resp, nil
}

// classifyFailure counts a failed request, both in the aggregate
// counters (jobsTimedOut vs jobsFailed) and broken down by kind.
func (e *Engine) classifyFailure(err error) {
	var (
		nosol *spec.ErrNoSolution
		inval *spec.ValidationError
		pan   *ErrSolvePanic
	)
	switch {
	case errors.Is(err, &search.ErrTimeout{}):
		e.metrics.jobsTimedOut.Add(1)
	case errors.As(err, &nosol):
		e.metrics.jobsFailed.Add(1)
		e.metrics.jobsInfeasible.Add(1)
	case errors.As(err, &inval):
		e.metrics.jobsFailed.Add(1)
		e.metrics.jobsInvalid.Add(1)
	case errors.As(err, &pan):
		e.metrics.jobsFailed.Add(1)
		e.metrics.jobsPanicked.Add(1)
	default:
		e.metrics.jobsFailed.Add(1)
	}
}

// runJob executes one queued solve inside a worker, with panic
// isolation: a panicking optimizer fails the job (and its attached
// waiters) but never kills the worker pool.
//
// The worker solves the spec's canonical presentation, not the
// requester's: the cached plan is then a pure function of the
// equivalence class and the engine, never of which member happened to
// submit first or of goroutine scheduling. Deterministic cache contents
// are what make cmd/experiments' parallel campaign byte-reproducible.
func (e *Engine) runJob(j job) {
	var (
		res *spec.Result
		err error
	)
	e.inj.Fire(faultinject.QueueStall)
	// Open the key's incumbent feed and stream every anytime improvement
	// the optimizer installs: DoStream watchers see each snapshot as it
	// lands, ahead of the optimality proof. The hook may fire from solver
	// worker goroutines concurrently; the feed serializes and orders by
	// objective internally.
	feed := e.feeds.open(j.key)
	opts := j.opts
	opts.OnIncumbent = func(r *spec.Result) {
		e.metrics.incumbentsPublished.Add(1)
		feed.publish(r)
	}
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, &ErrSolvePanic{SpecName: j.sp.Name, Value: r}
			}
		}()
		if e.inj.Fire(faultinject.SolvePanic) {
			panic("faultinject: injected solver panic")
		}
		e.inj.Fire(faultinject.SolveSlow)
		var canon *spec.Spec
		canon, err = j.sp.CanonicalSpec()
		if err == nil {
			res, err = e.solveCanonical(canon, opts)
		}
	}()
	e.metrics.observeSolve(time.Since(start))
	e.recordBreaker(j.key, err)
	if err == nil {
		// Degraded plans are served but not cached or persisted: the
		// cache key ignores the time limit, so a plan cut short by one
		// caller's tiny budget must not shadow the proven optimum for
		// everyone else — in memory or, worse, durably on disk.
		if res.Proven {
			// Encode the frame exactly once; the same bytes serve the
			// memory tier, the durable tier, the replication hook and every
			// GET /plans/{key} response. The engine's own encoding of its
			// own proof is as verified as bytes get, so its digest enters
			// the verified-bytes cache — a replica receiving this push can
			// skip the redundant re-decode, while any corruption in transit
			// changes the digest and takes the full check.
			wire, _ := e.encodeFrame(res)
			if wire != nil && e.verified != nil {
				e.verified.Add(wire, j.key, res)
			}
			if e.cache.enabled() {
				toCache, cachedWire := res, wire
				if e.inj.Fire(faultinject.CacheCorrupt) {
					toCache, cachedWire = corruptPlan(res), nil
				}
				e.cache.put(j.key, toCache, cachedWire)
			}
			// Write through to the durable tier (always the pristine
			// plan — the cache-corruption fault stays a memory-tier
			// fault; the store has its own disk fault points). Failures
			// are absorbed: the store is a cache, not a system of
			// record, and its error counters surface in the metrics.
			if e.store != nil && wire != nil {
				_ = e.store.Put(j.key, engineName(j.opts), wire)
			}
			// Replicate the freshly proven plan to the key's replica set
			// (the hook only enqueues; pushes happen on the cluster's own
			// workers).
			if e.onStored != nil && wire != nil {
				e.onStored(j.key, wire)
			}
		}
	} else {
		var nosol *spec.ErrNoSolution
		if errors.As(err, &nosol) {
			e.neg.put(j.key, nosol)
		}
	}
	// Cache before completing the flight: a request arriving after the
	// flight disappears must find the entry. The flight always carries
	// the pristine plan, never the possibly-corrupted cache copy. The
	// feed completes last so a stream watcher woken by the final frame
	// already finds the cached entry when it falls back to Do.
	e.flights.complete(j.key, j.flight, res, err)
	e.feeds.complete(j.key, feed, res, err)
}

// seedTightenEps is the margin below which a proven objective counts as
// merely matching its warm-start seed rather than tightening it.
const seedTightenEps = 1e-9

// solveCanonical runs the optimizer on the canonical spec, wiring in the
// portfolio tier: search-engine solves probe the similarity index for a
// warm-start seed, and — when racing is configured — run through
// portfolio.Race instead of a lone solve. Plans are byte-identical on
// every path, so neither feature partitions the cache; proven plans feed
// back into the similarity index for future neighbors. The injectable
// e.solve remains the entry point for every non-raced solve, so tests
// that substitute it see all default-configuration traffic.
func (e *Engine) solveCanonical(canon *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
	isSearch := engineName(opts) == switchsynth.EngineSearch
	var seed *spec.Result
	if isSearch && e.simIndex != nil {
		if seed = e.simIndex.Lookup(canon); seed != nil {
			e.metrics.warmStartHits.Add(1)
			opts.SeedIncumbent = seed
		} else {
			e.metrics.warmStartMisses.Add(1)
		}
	}
	var (
		res *spec.Result
		err error
	)
	if isSearch && len(e.pfLanes) > 0 {
		res, err = e.solveRace(canon, opts, seed)
	} else {
		res, err = e.solve(e.baseCtx, canon, opts)
	}
	if err == nil && res != nil && res.Proven {
		if seed != nil && res.Objective < seed.Objective-seedTightenEps {
			e.metrics.seedTightened.Add(1)
		}
		if e.simIndex != nil {
			e.simIndex.Add(canon, res)
		}
	}
	return res, err
}

// solveRace runs one raced solve through the portfolio supervisor,
// counting the race, the winning lane, and any backend disagreement. A
// disagreement is returned as the job error — the fail-closed posture of
// internal/portfolio — and is never served or cached.
func (e *Engine) solveRace(canon *spec.Spec, opts switchsynth.Options, seed *spec.Result) (*spec.Result, error) {
	e.metrics.portfolioRaces.Add(1)
	out, err := portfolio.Race(e.baseCtx, canon, portfolio.Options{
		Lanes:         e.pfLanes,
		TimeLimit:     opts.TimeLimit,
		SearchWorkers: opts.SolverWorkers,
		Seed:          seed,
		OnIncumbent:   opts.OnIncumbent,
	})
	if err != nil {
		if errors.Is(err, &portfolio.ErrBackendDisagreement{}) {
			e.metrics.portfolioDisagreements.Add(1)
		}
		return nil, err
	}
	switch out.Winner {
	case portfolio.LaneSearch:
		e.metrics.portfolioWinsSearch.Add(1)
	case portfolio.LaneMILP:
		e.metrics.portfolioWinsMILP.Add(1)
	case portfolio.LaneGreedy:
		e.metrics.portfolioWinsGreedy.Add(1)
	}
	return out.Result, nil
}

// recordBreaker feeds a solve outcome into the key's circuit breaker:
// slot-burning failures (timeout, panic) count against it, anything that
// completed — a plan, or even a proven ErrNoSolution — resets it.
func (e *Engine) recordBreaker(key string, err error) {
	if e.breakers == nil {
		return
	}
	if errors.Is(err, &search.ErrTimeout{}) || errors.Is(err, &ErrSolvePanic{}) {
		e.breakers.RecordFailure(key)
		return
	}
	e.breakers.RecordSuccess(key)
}

// corruptPlan is the cache-corruption fault: a shallow copy of the plan
// missing its last route, which can neither adapt onto a requester nor
// pass verification — exercising the heal path in Do.
func corruptPlan(res *spec.Result) *spec.Result {
	c := *res
	if len(c.Routes) > 0 {
		c.Routes = append([]spec.Route(nil), c.Routes[:len(c.Routes)-1]...)
	}
	return &c
}

// Snapshot returns the current metrics, cache and queue gauges.
func (e *Engine) Snapshot() Snapshot {
	s := e.metrics.snapshot()
	s.CacheEntries = e.cache.len()
	s.NegCacheSize = e.neg.len()
	s.Admission = e.queue.Stats()
	s.QueueDepth = s.Admission.Depth
	s.Workers = e.cfg.workers()
	s.BreakersOpen = e.breakers.OpenCount()
	s.PeerFillEnabled = e.fill != nil
	s.WireFormat = e.cfg.wireFormat()
	if e.verified != nil {
		st := e.verified.Stats()
		s.DigestCacheEnabled = true
		s.DigestCacheEntries = st.Entries
		s.DigestCacheCapacity = st.Capacity
		s.DigestCacheHits = st.Hits
		s.DigestCacheMisses = st.Misses
		s.DigestCacheAdds = st.Adds
	}
	s.SolverWorkers = e.cfg.solverWorkers()
	s.SolverNodesTotal, s.SolverStealsTotal = search.Counters()
	s.PortfolioEnabled = len(e.pfLanes) > 0
	s.SeedsAdopted, s.SeedsRejected = search.SeedCounters()
	if e.simIndex != nil {
		st := e.simIndex.Stats()
		s.SimIndexEntries = st.Entries
		s.SimIndexCapacity = st.Capacity
		s.SimIndexLookups = st.Lookups
		s.SimIndexHits = st.Hits
	}
	if e.store != nil {
		st := e.store.Stats()
		s.StoreEnabled = true
		s.StoreEntries = st.Entries
		s.StoreDiskBytes = st.DiskBytes
		s.StoreDiskHits = st.Hits
		s.StoreDiskMisses = st.Misses
		s.StoreCompactions = st.Compactions
		s.StoreRecovered = st.Recovered
		s.StoreTruncatedBytes = st.TruncatedBytes
		s.StoreCorruptEvicted = st.CorruptEvicted
		s.StoreFsyncErrors = st.FsyncErrors
	}
	return s
}

// PortfolioStats is the GET /portfolio payload: the portfolio tier's
// configuration and counters in one focused block (the same counters
// also appear inside the full /metrics snapshot). Disagreements counts
// raced engine solves that failed closed on a backend disagreement;
// ProcessDisagreements is the portfolio package's process-wide counter
// (it also covers races not routed through this engine) — both must stay
// zero in a healthy deployment.
type PortfolioStats struct {
	Enabled              bool               `json:"enabled"`
	Lanes                []string           `json:"lanes,omitempty"`
	Races                int64              `json:"races"`
	LaneWinsSearch       int64              `json:"laneWinsSearch"`
	LaneWinsMILP         int64              `json:"laneWinsMilp"`
	LaneWinsGreedy       int64              `json:"laneWinsGreedy"`
	Disagreements        int64              `json:"disagreements"`
	ProcessDisagreements int64              `json:"processDisagreements"`
	WarmStartHits        int64              `json:"warmStartHits"`
	WarmStartMisses      int64              `json:"warmStartMisses"`
	SeedTightened        int64              `json:"seedTightened"`
	SeedsAdopted         int64              `json:"seedsAdopted"`
	SeedsRejected        int64              `json:"seedsRejected"`
	SimIndex             portfolio.SimStats `json:"simIndex"`
}

// PortfolioStats returns the portfolio tier's current configuration and
// counters (the GET /portfolio payload).
func (e *Engine) PortfolioStats() PortfolioStats {
	ps := PortfolioStats{
		Enabled:        len(e.pfLanes) > 0,
		Races:          e.metrics.portfolioRaces.Load(),
		LaneWinsSearch: e.metrics.portfolioWinsSearch.Load(),
		LaneWinsMILP:   e.metrics.portfolioWinsMILP.Load(),
		LaneWinsGreedy: e.metrics.portfolioWinsGreedy.Load(),
		Disagreements:  e.metrics.portfolioDisagreements.Load(),

		ProcessDisagreements: portfolio.Disagreements(),
		WarmStartHits:        e.metrics.warmStartHits.Load(),
		WarmStartMisses:      e.metrics.warmStartMisses.Load(),
		SeedTightened:        e.metrics.seedTightened.Load(),
	}
	for _, l := range e.pfLanes {
		ps.Lanes = append(ps.Lanes, string(l))
	}
	ps.SeedsAdopted, ps.SeedsRejected = search.SeedCounters()
	if e.simIndex != nil {
		ps.SimIndex = e.simIndex.Stats()
	}
	return ps
}

// Close stops accepting requests, drains queued jobs, and waits for the
// workers to finish in-flight solves. Safe to call multiple times.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		e.queue.Close()
		e.streamMu.Lock()
		e.streamClosed = true
		for c := range e.streamConns {
			_ = c.Close()
		}
		e.streamConns = nil
		e.streamMu.Unlock()
	})
	<-e.drained
}

// CloseNow is Close but also cancels in-flight optimizer runs through
// their context; bounded-incumbent solves return their best plan so far.
func (e *Engine) CloseNow() {
	e.cancel()
	e.Close()
}

// JobKey is the exported form of canonicalJobKey: the canonical cache
// key the engine files sp's plan under when solved with opts. The
// cluster tier (internal/cluster) and clients use it to pick the key's
// owning node consistently with the engine's own cache.
func JobKey(sp *spec.Spec, opts switchsynth.Options) (string, error) {
	return canonicalJobKey(sp, opts)
}

// canonicalJobKey extends the spec's canonical key with the options that
// select a different plan (the engine choice). Analysis-only options
// (pressure sharing, control routing, SVG) run per request and do not
// partition the cache.
func canonicalJobKey(sp *spec.Spec, opts switchsynth.Options) (string, error) {
	base, err := sp.CanonicalKey()
	if err != nil {
		return "", err
	}
	return base + "|" + engineName(opts), nil
}

// engineName resolves the effective engine for opts (the key suffix and
// the provenance recorded alongside persisted plans).
func engineName(opts switchsynth.Options) string {
	if opts.Engine != "" {
		return opts.Engine
	}
	return switchsynth.EngineSearch
}
