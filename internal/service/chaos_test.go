package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/faultinject"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// chaosSeeds is how many deterministic fault schedules the suite replays.
const chaosSeeds = 25

// chaosSpec returns one of three distinct canonical keys so the runs mix
// cache hits, coalescing and fresh solves.
func chaosSpec(i int) *spec.Spec {
	sp := serviceSpec(fmt.Sprintf("chaos-%d", i%3))
	sp.Alpha = float64(i%3 + 1)
	return sp
}

// TestChaosEngineUnderInjectedFaults drives the engine through solver
// panics, slow solves, queue stalls and cache corruption — all from a
// seeded injector — and asserts the resilience invariants: every request
// returns (no deadlock), every error is one of the typed resilience
// errors, every served plan passes verification, and shutting down leaks
// no goroutines. Run under -race.
func TestChaosEngineUnderInjectedFaults(t *testing.T) {
	base := solveOnce(t, chaosSpec(0))
	seeds := chaosSeeds
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			checkLeaks := checkGoroutineLeaks(t)
			inj := faultinject.New(int64(seed)).
				Set(faultinject.SolvePanic, faultinject.Rule{Probability: 0.15}).
				Set(faultinject.SolveSlow, faultinject.Rule{Probability: 0.3, Delay: 2 * time.Millisecond}).
				Set(faultinject.QueueStall, faultinject.Rule{Probability: 0.2, Delay: time.Millisecond}).
				Set(faultinject.CacheCorrupt, faultinject.Rule{Probability: 0.25})
			e := New(Config{
				Workers:         4,
				CacheSize:       4,
				BreakerCooldown: 20 * time.Millisecond,
				FaultInjector:   inj,
			})
			e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
				// The canonicalized chaos specs all adapt from the same
				// base plan; injected faults supply the failures.
				return base, nil
			}

			const (
				goroutines = 4
				perG       = 15
			)
			var wg sync.WaitGroup
			var served, failed atomic.Int64
			fatal := make(chan string, goroutines*perG)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						resp, err := e.Do(context.Background(), chaosSpec(g*perG+i), switchsynth.Options{})
						if err != nil {
							failed.Add(1)
							if !errors.Is(err, &ErrSolvePanic{}) &&
								!errors.Is(err, &ErrOverloaded{}) &&
								!errors.Is(err, &search.ErrTimeout{}) &&
								!errors.Is(err, ErrEngineClosed) {
								fatal <- fmt.Sprintf("untyped chaos error: %v", err)
							}
							continue
						}
						served.Add(1)
						// The core invariant: a served plan is NEVER
						// unverified, no matter what faults fired.
						if verr := switchsynth.Verify(resp.Synthesis.Result); verr != nil {
							fatal <- fmt.Sprintf("served an unverified plan: %v", verr)
						}
					}
				}(g)
			}

			waited := make(chan struct{})
			go func() { wg.Wait(); close(waited) }()
			select {
			case <-waited:
			case <-time.After(60 * time.Second):
				t.Fatal("chaos run deadlocked: requests still blocked after 60s")
			}
			close(fatal)
			for msg := range fatal {
				t.Error(msg)
			}

			snap := e.Snapshot()
			total := int64(goroutines * perG)
			if snap.JobsSubmitted != total {
				t.Errorf("submitted = %d, want %d", snap.JobsSubmitted, total)
			}
			if served.Load()+failed.Load() != total {
				t.Errorf("served %d + failed %d != %d", served.Load(), failed.Load(), total)
			}
			if served.Load() == 0 {
				t.Error("chaos starved every request; expected some plans to be served")
			}

			e.CloseNow()
			checkLeaks()
		})
	}
}

// hardSpec16 is a feasible 16-pin fan-out case whose optimality proof
// takes far longer than the throughput test's 5ms limit, so it exercises
// the anytime degraded path for real.
func hardSpec16(i int) *spec.Spec {
	sp := &spec.Spec{
		Name:       fmt.Sprintf("tp-hard-%d", i),
		SwitchPins: 16,
		Modules:    []string{"a", "b", "c", "o1", "o2", "o3", "o4", "o5", "o6", "o7", "o8", "o9"},
		Flows: []spec.Flow{
			{From: "a", To: "o1"}, {From: "a", To: "o2"}, {From: "a", To: "o3"},
			{From: "b", To: "o4"}, {From: "b", To: "o5"}, {From: "b", To: "o6"},
			{From: "c", To: "o7"}, {From: "c", To: "o8"}, {From: "c", To: "o9"},
		},
		Binding: spec.Unfixed,
		Alpha:   float64(i%4 + 1), // distinct canonical keys defeat the cache
	}
	return sp
}

// TestChaosDegradedThroughput measures the degraded path under a 30%
// slow-solve fault schedule: real solves with a time limit far below the
// injected latency must still serve verified (possibly degraded) plans.
// Every fourth request is a hard 16-pin case that cannot be proven in
// 5ms, so the anytime incumbent path is genuinely on the clock. When
// BENCH_RESILIENCE_OUT is set, the served/error throughput summary is
// written there as JSON for ci.sh.
func TestChaosDegradedThroughput(t *testing.T) {
	inj := faultinject.New(42).
		Set(faultinject.SolveSlow, faultinject.Rule{Probability: 0.3, Delay: 20 * time.Millisecond})
	e := New(Config{Workers: 4, FaultInjector: inj})
	defer e.CloseNow()

	const requests = 40
	var served, degraded, failedCount int64
	start := time.Now()
	for i := 0; i < requests; i++ {
		sp := chaosSpec(i)
		sp.Name = fmt.Sprintf("tp-%d", i)
		if i%4 == 0 {
			sp = hardSpec16(i)
		}
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{TimeLimit: 5 * time.Millisecond})
		if err != nil {
			failedCount++
			continue
		}
		served++
		if resp.Synthesis.Degraded {
			degraded++
		}
		if verr := switchsynth.Verify(resp.Synthesis.Result); verr != nil {
			t.Fatalf("request %d: served unverified plan: %v", i, verr)
		}
	}
	elapsed := time.Since(start)
	if served == 0 {
		t.Fatal("no requests served under slow-solve faults")
	}
	if failedCount > 0 {
		t.Errorf("%d requests failed; the anytime path should degrade, not fail", failedCount)
	}
	if degraded == 0 {
		t.Error("no degraded plans: the hard cases were all proven in 5ms?")
	}

	if out := os.Getenv("BENCH_RESILIENCE_OUT"); out != "" {
		report := map[string]any{
			"benchmark":         "degraded-path-throughput",
			"slowFaultPercent":  30,
			"requests":          requests,
			"served":            served,
			"degraded":          degraded,
			"errors":            failedCount,
			"elapsedSeconds":    elapsed.Seconds(),
			"requestsPerSecond": float64(requests) / elapsed.Seconds(),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
