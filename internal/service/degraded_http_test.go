package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/cases"
	"switchsynth/internal/planio"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// TestDegradedPlansServedUnderTinyLimit is the resilience acceptance
// check: 16-pin artificial cases under a 10ms limit must come back as
// HTTP 200 plans (degraded where the proof didn't finish) or a proven
// 422 — never a 504 — and every served plan must verify.
func TestDegradedPlansServedUnderTinyLimit(t *testing.T) {
	srv, _ := newTestServer(t)

	var served, degraded int
	for i, c := range cases.ArtificialSized(12, 7, []int{16}) {
		// Classify the case with a generous local solve first: the
		// degraded-serving guarantee covers feasible specs; an
		// infeasibility that cannot be proven inside the budget may
		// legitimately time out.
		_, cerr := switchsynth.SolvePlan(context.Background(), c.Spec,
			switchsynth.Options{TimeLimit: 5 * time.Second})
		feasible := cerr == nil

		body, err := json.Marshal(SynthesizeRequest{
			Spec:    c.Spec,
			Options: RequestOptions{TimeLimitMS: 10, PressureSharing: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, raw := postJSON(t, srv.URL+"/synthesize", string(body))
		if !feasible {
			var nosol *spec.ErrNoSolution
			if errors.As(cerr, &nosol) && resp.StatusCode == http.StatusOK {
				t.Errorf("case %d (%s): proven-infeasible spec served a plan", i, c.Spec.Name)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("case %d (%s): status %d, want 200 for a feasible spec: %s",
				i, c.Spec.Name, resp.StatusCode, raw)
		}
		var out SynthesizeResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		served++
		if out.Degraded {
			degraded++
			if out.LowerBound <= 0 || out.LowerBound > out.Objective {
				t.Errorf("case %d: LowerBound %v outside (0, %v]", i, out.LowerBound, out.Objective)
			}
			if out.Gap < 0 || out.Gap > 1 {
				t.Errorf("case %d: Gap %v outside [0, 1]", i, out.Gap)
			}
		}
		plan, err := planio.Decode(out.Plan)
		if err != nil {
			t.Fatalf("case %d: decoding wire plan: %v", i, err)
		}
		if err := switchsynth.Verify(plan); err != nil {
			t.Errorf("case %d: served plan fails verification: %v", i, err)
		}
	}
	if served == 0 {
		t.Fatal("no feasible 16-pin case was served")
	}
	t.Logf("served %d plans, %d degraded", served, degraded)
}

// TestOverloadedResponseCarriesRetryAfter drives a spec's breaker open
// through the HTTP handler and checks the 429 contract plus the
// failure-kind breakdown on /metrics.
func TestOverloadedResponseCarriesRetryAfter(t *testing.T) {
	e := New(Config{Workers: 1, BreakerThreshold: 1, BreakerCooldown: time.Second})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		return nil, &search.ErrTimeout{SpecName: sp.Name, Cause: context.DeadlineExceeded}
	}
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.CloseNow()
	})

	// First request times out and trips the threshold-1 breaker.
	resp, body := postJSON(t, srv.URL+"/synthesize", demoRequest)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("first status %d, want 504: %s", resp.StatusCode, body)
	}
	// Second request is shed: 429, kind overloaded, Retry-After set.
	resp, body = postJSON(t, srv.URL+"/synthesize", demoRequest)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second status %d, want 429: %s", resp.StatusCode, body)
	}
	var e429 errorResponse
	if err := json.Unmarshal(body, &e429); err != nil {
		t.Fatalf("429 body not JSON: %s", body)
	}
	if e429.Kind != "overloaded" {
		t.Errorf("kind = %q, want overloaded", e429.Kind)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	} else if secs := mustAtoi(t, ra); secs < 1 {
		t.Errorf("Retry-After = %d, want >= 1", secs)
	}

	// The /metrics breakdown must attribute both failures to their kinds.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snap.JobsTimedOut == 0 {
		t.Error("metrics show no timed-out jobs")
	}
	if snap.JobsShed == 0 {
		t.Error("metrics show no shed jobs")
	}
	if snap.BreakersOpen != 1 {
		t.Errorf("BreakersOpen = %d, want 1", snap.BreakersOpen)
	}
}

func mustAtoi(t *testing.T, s string) int {
	t.Helper()
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return n
}
