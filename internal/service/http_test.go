package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"switchsynth"
	"switchsynth/internal/planio"
)

func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	e := New(Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.CloseNow()
	})
	return srv, e
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

const demoRequest = `{
	"spec": {
		"name": "http-demo",
		"switchPins": 8,
		"modules": ["sample", "buffer", "mix1", "mix2"],
		"flows": [
			{"from": "sample", "to": "mix1"},
			{"from": "buffer", "to": "mix2"}
		],
		"conflicts": [[0, 1]],
		"binding": 2
	},
	"options": {"pressureSharing": true, "svg": true}
}`

// TestSynthesizeRoundTrip posts a spec, decodes the embedded plan with
// planio, and re-verifies it independently — the full wire round trip.
func TestSynthesizeRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, body := postJSON(t, srv.URL+"/synthesize", demoRequest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var out SynthesizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if out.Name != "http-demo" || out.CacheHit || out.Key == "" {
		t.Errorf("provenance wrong: %+v", out)
	}
	if out.NumSets < 1 || out.LengthMM <= 0 {
		t.Errorf("degenerate plan: sets=%d L=%v", out.NumSets, out.LengthMM)
	}
	if out.ControlInlets > out.NumValves {
		t.Errorf("pressure sharing increased inlets: %d > %d", out.ControlInlets, out.NumValves)
	}
	if !strings.HasPrefix(out.SVG, "<svg ") {
		t.Error("svg requested but missing")
	}

	// Independent re-verification of the wire plan.
	res, err := planio.Decode(out.Plan)
	if err != nil {
		t.Fatalf("decoding wire plan: %v", err)
	}
	if err := switchsynth.Verify(res); err != nil {
		t.Fatalf("wire plan fails verification: %v", err)
	}
	if res.NumSets != out.NumSets {
		t.Errorf("wire plan sets=%d, response says %d", res.NumSets, out.NumSets)
	}

	// The same request again is a cache hit.
	resp2, body2 := postJSON(t, srv.URL+"/synthesize", demoRequest)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status %d", resp2.StatusCode)
	}
	var out2 SynthesizeResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit || out2.Key != out.Key {
		t.Errorf("resubmission not served from cache: %+v", out2)
	}
}

func TestSynthesizeErrorKinds(t *testing.T) {
	srv, _ := newTestServer(t)
	url := srv.URL + "/synthesize"

	cases := []struct {
		name   string
		body   string
		status int
		kind   string
	}{
		{"malformed json", `{"spec": nope}`, http.StatusBadRequest, "invalid"},
		{"unknown field", `{"speck": {}}`, http.StatusBadRequest, "invalid"},
		{"no spec", `{"options": {}}`, http.StatusBadRequest, "invalid"},
		{"invalid spec", `{"spec": {"name": "odd", "switchPins": 9,
			"modules": ["a", "b"], "flows": [{"from": "a", "to": "b"}]}}`,
			http.StatusBadRequest, "invalid"},
		{"no solution", `{"spec": {"name": "nosol", "switchPins": 8,
			"modules": ["in1", "in2", "out1", "out2"],
			"flows": [{"from": "in1", "to": "out1"}, {"from": "in2", "to": "out2"}],
			"conflicts": [[0, 1]], "binding": 0,
			"fixedPins": {"in1": 0, "out1": 2, "in2": 1, "out2": 3}}}`,
			http.StatusUnprocessableEntity, "no-solution"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, url, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body not JSON: %s", body)
			}
			if e.Kind != tc.kind || e.Error == "" {
				t.Errorf("error = %+v, want kind %q", e, tc.kind)
			}
		})
	}
}

func TestSynthesizeMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/synthesize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q", allow)
	}
}

func TestSynthesizeEngineClosed(t *testing.T) {
	srv, e := newTestServer(t)
	e.Close()
	resp, body := postJSON(t, srv.URL+"/synthesize", demoRequest)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d: %s", resp.StatusCode, body)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["workers"].(float64) != 2 {
		t.Errorf("healthz = %v", health)
	}

	// One solve, then the counters must show it.
	if resp, body := postJSON(t, srv.URL+"/synthesize", demoRequest); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup failed: %s", body)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.JobsCompleted != 1 || snap.CacheMisses != 1 || snap.SolveCount != 1 {
		t.Errorf("metrics after one solve: %+v", snap)
	}
	if snap.SolveMaxSeconds <= 0 {
		t.Error("no solve latency recorded")
	}
}
