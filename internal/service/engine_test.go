package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

func serviceSpec(name string) *spec.Spec {
	return &spec.Spec{
		Name:       name,
		SwitchPins: 8,
		Modules:    []string{"sample", "buffer", "mix1", "mix2"},
		Flows: []spec.Flow{
			{From: "sample", To: "mix1"},
			{From: "buffer", To: "mix2"},
		},
		Conflicts: [][2]int{{0, 1}},
		Binding:   spec.Unfixed,
	}
}

// permutedServiceSpec is serviceSpec with modules, flows, and conflict
// orientation shuffled — semantically the same problem.
func permutedServiceSpec(name string) *spec.Spec {
	return &spec.Spec{
		Name:       name,
		SwitchPins: 8,
		Modules:    []string{"mix2", "sample", "mix1", "buffer"},
		Flows: []spec.Flow{
			{From: "buffer", To: "mix2"},
			{From: "sample", To: "mix1"},
		},
		Conflicts: [][2]int{{1, 0}},
		Binding:   spec.Unfixed,
	}
}

// solveOnce solves sp for real so fake solvers can serve a valid plan.
func solveOnce(t *testing.T, sp *spec.Spec) *spec.Result {
	t.Helper()
	res, err := switchsynth.SolvePlan(context.Background(), sp, switchsynth.Options{})
	if err != nil {
		t.Fatalf("SolvePlan(%s): %v", sp.Name, err)
	}
	return res
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	t.Cleanup(e.CloseNow)
	return e
}

func TestEngineMissThenHitThenIsomorphicHit(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})

	cold, err := e.Do(context.Background(), serviceSpec("a"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || cold.Coalesced {
		t.Errorf("first request hit=%v coalesced=%v, want cold", cold.CacheHit, cold.Coalesced)
	}
	if err := switchsynth.Verify(cold.Synthesis.Result); err != nil {
		t.Fatalf("cold plan verify: %v", err)
	}

	warm, err := e.Do(context.Background(), serviceSpec("a"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("identical resubmission missed the cache")
	}

	iso, err := e.Do(context.Background(), permutedServiceSpec("rotated"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !iso.CacheHit {
		t.Error("isomorphic spec missed the cache")
	}
	if iso.Key != warm.Key {
		t.Errorf("isomorphic keys differ: %s vs %s", iso.Key, warm.Key)
	}
	// The adapted plan must verify against the *requester's* spec.
	if iso.Synthesis.Result.Spec.Name != "rotated" {
		t.Errorf("adapted plan kept the cached spec %q", iso.Synthesis.Result.Spec.Name)
	}
	if err := switchsynth.Verify(iso.Synthesis.Result); err != nil {
		t.Fatalf("adapted plan verify: %v", err)
	}

	snap := e.Snapshot()
	if snap.CacheMisses != 1 || snap.CacheHits != 2 {
		t.Errorf("misses=%d hits=%d, want 1/2", snap.CacheMisses, snap.CacheHits)
	}
}

func TestEngineDedupCoalescesConcurrentSolves(t *testing.T) {
	base := solveOnce(t, serviceSpec("dedup"))
	var solves atomic.Int64
	release := make(chan struct{})

	e := newTestEngine(t, Config{Workers: 4})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		solves.Add(1)
		<-release
		return base, nil
	}

	const waiters = 16
	var wg sync.WaitGroup
	var coalesced atomic.Int64
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := e.Do(context.Background(), serviceSpec("dedup"), switchsynth.Options{})
			if err != nil {
				errs <- err
				return
			}
			if resp.Coalesced {
				coalesced.Add(1)
			}
		}()
	}
	// Let the requests pile onto the in-flight solve, then release it.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := solves.Load(); got != 1 {
		t.Errorf("%d solves for %d identical concurrent requests, want 1", got, waiters)
	}
	if coalesced.Load() == 0 {
		t.Error("no request reported coalescing onto the in-flight solve")
	}
	snap := e.Snapshot()
	if snap.JobsCompleted != waiters {
		t.Errorf("completed=%d, want %d", snap.JobsCompleted, waiters)
	}
	if snap.DedupCoalesced+snap.CacheHits+snap.CacheMisses != waiters {
		t.Errorf("hit/miss/coalesce don't partition the requests: %+v", snap)
	}
}

// TestEngineConcurrentMixedLoad hammers the engine from N goroutines
// with a mix of cacheable specs, isomorphic variants, and specs whose
// solve times out, and checks the books balance afterwards.
func TestEngineConcurrentMixedLoad(t *testing.T) {
	base := solveOnce(t, serviceSpec("mixed"))
	var solves atomic.Int64
	// The breaker is disabled: this test re-submits the same timing-out
	// keys on purpose and wants every one to reach the solver.
	e := newTestEngine(t, Config{Workers: 4, CacheSize: 8, BreakerThreshold: -1})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		solves.Add(1)
		time.Sleep(time.Millisecond)
		if strings.HasPrefix(sp.Name, "timeout") {
			return nil, &search.ErrTimeout{SpecName: sp.Name, Cause: context.DeadlineExceeded}
		}
		return base, nil
	}

	const (
		goroutines = 8
		perG       = 25
	)
	var ok, timedOut, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var sp *spec.Spec
				switch i % 3 {
				case 0:
					sp = serviceSpec("mixed")
				case 1:
					sp = permutedServiceSpec("mixed-iso")
				default:
					// Timeout specs carry distinct conflicts so each is a
					// distinct canonical key — but identical across
					// goroutines, so dedup still applies.
					sp = serviceSpec(fmt.Sprintf("timeout-%d", i))
					sp.Conflicts = nil
					sp.Alpha = float64(i + 1)
				}
				resp, err := e.Do(context.Background(), sp, switchsynth.Options{})
				switch {
				case err == nil && resp.Synthesis != nil:
					ok.Add(1)
				case errors.Is(err, &search.ErrTimeout{}):
					timedOut.Add(1)
				default:
					failed.Add(1)
					t.Errorf("goroutine %d job %d: %v", g, i, err)
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if ok.Load()+timedOut.Load() != total {
		t.Errorf("ok=%d timedOut=%d failed=%d, want sum %d", ok.Load(), timedOut.Load(), failed.Load(), total)
	}
	if timedOut.Load() == 0 {
		t.Error("no timeouts observed in mixed load")
	}
	snap := e.Snapshot()
	if snap.JobsSubmitted != total {
		t.Errorf("submitted=%d, want %d", snap.JobsSubmitted, total)
	}
	if snap.JobsCompleted != ok.Load() {
		t.Errorf("completed=%d, want %d", snap.JobsCompleted, ok.Load())
	}
	if snap.JobsTimedOut != timedOut.Load() {
		t.Errorf("timedOut=%d, want %d", snap.JobsTimedOut, timedOut.Load())
	}
	// Timeouts are never cached, so every distinct timeout key solves at
	// least once per round; the cacheable pair solves exactly once.
	if solves.Load() >= total {
		t.Errorf("solves=%d — cache/dedup never kicked in", solves.Load())
	}
	if snap.SolveCount != solves.Load() {
		t.Errorf("latency observations %d != solves %d", snap.SolveCount, solves.Load())
	}
}

func TestEnginePanicIsolation(t *testing.T) {
	base := solveOnce(t, serviceSpec("fine"))
	e := newTestEngine(t, Config{Workers: 1})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		if sp.Name == "boom" {
			panic("synthetic optimizer crash")
		}
		return base, nil
	}

	crash := serviceSpec("boom")
	crash.Conflicts = nil // distinct canonical key from "fine"
	_, err := e.Do(context.Background(), crash, switchsynth.Options{})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic failure", err)
	}

	// The single worker survived the panic and still serves.
	resp, err := e.Do(context.Background(), serviceSpec("fine"), switchsynth.Options{})
	if err != nil {
		t.Fatalf("engine dead after panic: %v", err)
	}
	if resp.Synthesis == nil {
		t.Fatal("no synthesis after panic recovery")
	}
	if e.Snapshot().JobsFailed == 0 {
		t.Error("panic not counted as a failed job")
	}
}

func TestEngineCloseDrainsAndRejects(t *testing.T) {
	e := New(Config{Workers: 2})
	if _, err := e.Do(context.Background(), serviceSpec("drain"), switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent

	// Cached entries are gone from the request path: the queue is closed.
	sp := serviceSpec("post-close")
	sp.Conflicts = nil
	_, err := e.Do(context.Background(), sp, switchsynth.Options{})
	if !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("err = %v, want ErrEngineClosed", err)
	}
}

func TestEngineCallerContextCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	e := newTestEngine(t, Config{Workers: 1})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		<-release
		return nil, errors.New("never reached in this test")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, serviceSpec("stuck"), switchsynth.Options{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not observe caller cancellation")
	}
}

func TestEngineInvalidSpecFailsFast(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	bad := serviceSpec("bad")
	bad.SwitchPins = 9
	_, err := e.Do(context.Background(), bad, switchsynth.Options{})
	var ve *spec.ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *spec.ValidationError", err)
	}
	if got := e.Snapshot().JobsFailed; got != 1 {
		t.Errorf("failed=%d, want 1", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.workers() < 1 || c.queueDepth() != 4*c.workers() || c.cacheSize() != 1024 {
		t.Errorf("zero-value defaults wrong: w=%d q=%d c=%d", c.workers(), c.queueDepth(), c.cacheSize())
	}
	if c.defaultTimeLimit() != 30*time.Second {
		t.Errorf("default time limit = %v", c.defaultTimeLimit())
	}
	c = Config{CacheSize: -1, DefaultTimeLimit: -1}
	if c.cacheSize() != 0 || c.defaultTimeLimit() != 0 {
		t.Errorf("negative overrides wrong: c=%d t=%v", c.cacheSize(), c.defaultTimeLimit())
	}
}
