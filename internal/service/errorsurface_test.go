// The HTTP error surface, pinned as a table: every error kind in the
// service taxonomy maps to exactly one status code, every error body is
// a JSON envelope (never a panic trace or a truncated decode), and the
// readiness endpoint distinguishes "alive" from "routable".
package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"switchsynth"
	"switchsynth/internal/planio"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

// TestErrorKindStatusTable drives each error kind through the real
// handler via a fake solver and asserts the status mapping end to end.
func TestErrorKindStatusTable(t *testing.T) {
	cases := []struct {
		kind    string
		status  int
		solve   func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error)
		prepare func(e *Engine) // optional extra setup (close, trip breaker)
	}{
		{
			kind: "no-solution", status: http.StatusUnprocessableEntity,
			solve: func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
				return nil, &spec.ErrNoSolution{SpecName: sp.Name, Policy: sp.Binding}
			},
		},
		{
			kind: "timeout", status: http.StatusGatewayTimeout,
			solve: func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
				return nil, &search.ErrTimeout{SpecName: sp.Name, Cause: context.DeadlineExceeded}
			},
		},
		{
			kind: "internal", status: http.StatusInternalServerError,
			solve: func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
				return nil, errors.New("disk on fire")
			},
		},
		{
			kind: "unavailable", status: http.StatusServiceUnavailable,
			prepare: func(e *Engine) { e.Close() },
		},
		{
			// A draining engine rejects new solves with the typed
			// *admission.ErrDraining before they reach the queue: same
			// kind and status as closed, but the process is still
			// finishing its backlog.
			kind: "unavailable", status: http.StatusServiceUnavailable,
			prepare: func(e *Engine) { e.StartDrain() },
		},
		{
			// Threshold-1 breaker: the prepare request times out and
			// opens it; the measured request is then shed.
			kind: "overloaded", status: http.StatusTooManyRequests,
			solve: func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
				return nil, &search.ErrTimeout{SpecName: sp.Name, Cause: context.DeadlineExceeded}
			},
			prepare: func(e *Engine) {
				_, _ = e.Do(context.Background(), serviceSpec("surface"), switchsynth.Options{})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			e := New(Config{Workers: 1, BreakerThreshold: 1})
			if tc.solve != nil {
				e.solve = tc.solve
			}
			srv := httptest.NewServer(NewHandler(e))
			t.Cleanup(func() {
				srv.Close()
				e.CloseNow()
			})
			if tc.prepare != nil {
				tc.prepare(e)
			}
			body, err := json.Marshal(SynthesizeRequest{Spec: serviceSpec("surface")})
			if err != nil {
				t.Fatal(err)
			}
			resp, raw := postJSON(t, srv.URL+"/synthesize", string(body))
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, raw)
			}
			var env errorResponse
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("error body not a JSON envelope: %s", raw)
			}
			if env.Kind != tc.kind || env.Error == "" {
				t.Errorf("envelope = %+v, want kind %q with a message", env, tc.kind)
			}
			// Every shed or unavailable response must tell the client
			// when to come back, as whole seconds in [1, 30].
			if tc.status == http.StatusTooManyRequests || tc.status == http.StatusServiceUnavailable {
				ra := resp.Header.Get("Retry-After")
				secs, err := strconv.Atoi(ra)
				if err != nil || secs < 1 || secs > 30 {
					t.Errorf("Retry-After = %q, want an integer in [1, 30]", ra)
				}
			}
		})
	}
	// The "invalid" kind needs no fake solver — validation runs before
	// the solve; TestSynthesizeErrorKinds covers its variants. Assert
	// the mapping itself here so the table names all six kinds.
	srv, _ := newTestServer(t)
	resp, raw := postJSON(t, srv.URL+"/synthesize", `{"spec": {"name": "x"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid: status %d, want 400: %s", resp.StatusCode, raw)
	}
	var env errorResponse
	if err := json.Unmarshal(raw, &env); err != nil || env.Kind != "invalid" {
		t.Errorf("invalid envelope = %+v (err %v), want kind invalid", env, err)
	}
}

// TestOversizedRequestBodyCleanJSON: a body over MaxRequestBody must
// produce a clean 413 JSON envelope from the byte limiter, not a decode
// panic or a confusing unmarshal error.
func TestOversizedRequestBodyCleanJSON(t *testing.T) {
	srv, _ := newTestServer(t)
	huge := `{"spec": {"name": "` + strings.Repeat("A", MaxRequestBody+1024) + `"}}`
	resp, raw := postJSON(t, srv.URL+"/synthesize", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %.200s", resp.StatusCode, raw)
	}
	var env errorResponse
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("413 body not a JSON envelope: %.200s", raw)
	}
	if env.Kind != "invalid" || !strings.Contains(env.Error, "exceeds") {
		t.Errorf("envelope = %+v, want kind invalid mentioning the limit", env)
	}
}

// TestReadyzPhases: /readyz must say 200 while serving, then 503 the
// moment draining begins (before the engine actually closes) and stay
// 503 on a closed engine; /healthz stays 200 throughout — liveness and
// readiness are different questions.
func TestReadyzPhases(t *testing.T) {
	srv, e := newTestServer(t)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("serving phase: /readyz = %d, want 200", code)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("serving phase: /healthz = %d, want 200", code)
	}

	e.StartDrain()
	code, ra := get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining phase: /readyz = %d, want 503", code)
	}
	if ra == "" {
		t.Error("draining /readyz without Retry-After")
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("draining phase: /healthz = %d, want 200 (still alive)", code)
	}

	e.Close()
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("closed phase: /readyz = %d, want 503", code)
	}
}

// TestPlansEndpoints: the manifest and single-plan fetch the cluster
// tier is built on, exercised without a cluster — /plans is a plain
// read-only view of the local tiers.
func TestPlansEndpoints(t *testing.T) {
	srv, e := newTestServer(t)
	resp, err := e.Do(context.Background(), serviceSpec("plans"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}

	mresp, err := http.Get(srv.URL + "/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var manifest struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&manifest); err != nil {
		t.Fatal(err)
	}
	if len(manifest.Keys) != 1 || manifest.Keys[0] != resp.Key {
		t.Fatalf("manifest = %v, want exactly [%s]", manifest.Keys, resp.Key)
	}

	presp, err := http.Get(srv.URL + "/plans/" + resp.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/plans/{key} = %d, want 200", presp.StatusCode)
	}
	// A client with no Accept header (curl, verifyplan over HTTP) gets
	// the JSON transcode of the stored frame; the raw bytes go only to
	// clients that explicitly accept the binary content type.
	want, _ := e.PlanBytes(resp.Key)
	wantJSON, err := planio.ToJSON(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantJSON) {
		t.Error("/plans/{key} bytes differ from the JSON transcode of PlanBytes")
	}

	breq, err := http.NewRequest(http.MethodGet, srv.URL+"/plans/"+resp.Key, nil)
	if err != nil {
		t.Fatal(err)
	}
	breq.Header.Set("Accept", planio.ContentTypeBinary)
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	bgot, err := io.ReadAll(bresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(bgot) != string(want) {
		t.Error("binary-accepting /plans/{key} bytes differ from PlanBytes")
	}

	nresp, err := http.Get(srv.URL + "/plans/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("/plans/missing = %d, want 404", nresp.StatusCode)
	}
	var env errorResponse
	if err := json.NewDecoder(nresp.Body).Decode(&env); err != nil || env.Kind != "not-found" {
		t.Errorf("404 envelope = %+v (err %v), want kind not-found", env, err)
	}
}
