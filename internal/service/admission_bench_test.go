// Admission-tier benchmark report for ci.sh: batch dedup speedup over
// sequential cold solves, per-class queue latency under a mixed load,
// and streamed time-to-first-plan vs time-to-proof. Runs only when
// BENCH_ADMISSION_OUT names the JSON file to write (ci.sh sets it);
// plain test runs skip it.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/admission"
)

func TestAdmissionBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_ADMISSION_OUT")
	if out == "" {
		t.Skip("set BENCH_ADMISSION_OUT to emit the admission benchmark report")
	}

	// Batch dedup: 100 specs over 7 canonical keys, solved as one batch
	// vs one by one. Both engines run with the memory cache disabled so
	// the comparison isolates the batch-level dedup (not the cache tier).
	const batchN, batchKeys = 100, 7
	items := make([]BatchSpec, batchN)
	for i := range items {
		items[i] = BatchSpec{Spec: batchSpecVariant(i, batchKeys)}
	}
	eSeq := newTestEngine(t, Config{Workers: 4, CacheSize: -1})
	seqStart := time.Now()
	for i := range items {
		if _, err := eSeq.Do(context.Background(), items[i].Spec, items[i].Opts); err != nil {
			t.Fatalf("sequential solve %d: %v", i, err)
		}
	}
	seqElapsed := time.Since(seqStart)

	eBatch := newTestEngine(t, Config{Workers: 4, CacheSize: -1})
	batchStart := time.Now()
	outcomes := eBatch.DoBatch(context.Background(), items)
	batchElapsed := time.Since(batchStart)
	for i, oc := range outcomes {
		if oc.Err != nil {
			t.Fatalf("batch item %d: %v", i, oc.Err)
		}
	}
	batchSolves := eBatch.Snapshot().SolveCount
	speedup := seqElapsed.Seconds() / batchElapsed.Seconds()
	if speedup < 5 {
		t.Errorf("batch dedup speedup %.1fx, want >= 5x (sequential %s, batch %s)", speedup, seqElapsed, batchElapsed)
	}

	// Per-class queue latency: one worker, a background flood and
	// interleaved interactive probes; the queue's EWMA wait estimators
	// are the reported per-class latency.
	eQ := newTestEngine(t, Config{Workers: 1, CacheSize: -1, QueueDepth: 64})
	bgCtx := admission.WithCaller(context.Background(), admission.Caller{Tenant: "bench-bg", Class: admission.Background})
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := serviceSpec(fmt.Sprintf("bench-bg-%d", i))
			sp.Alpha = float64(i + 2)
			_, _ = eQ.Do(bgCtx, sp, switchsynth.Options{})
		}(i)
	}
	iaCtx := admission.WithCaller(context.Background(), admission.Caller{Tenant: "bench-ia", Class: admission.Interactive})
	for i := 0; i < 8; i++ {
		sp := serviceSpec(fmt.Sprintf("bench-ia-%d", i))
		sp.Beta = float64(i + 101)
		if _, err := eQ.Do(iaCtx, sp, switchsynth.Options{}); err != nil {
			t.Fatalf("interactive probe %d: %v", i, err)
		}
	}
	wg.Wait()
	queueStats := eQ.Snapshot().Admission

	// Streaming: time to the first usable (degraded) plan vs time to the
	// optimality proof on the saturated 16-pin case.
	eS := newTestEngine(t, Config{Workers: 1})
	streamStart := time.Now()
	var firstPlan time.Duration
	res, err := eS.DoStream(context.Background(), stream16("bench-stream"), switchsynth.Options{TimeLimit: 2 * time.Minute},
		func(*Response, bool) error {
			if firstPlan == 0 {
				firstPlan = time.Since(streamStart)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	proof := time.Since(streamStart)
	if !res.Synthesis.Proven || firstPlan == 0 {
		t.Fatalf("streaming bench degenerate: proven=%v firstPlan=%s", res.Synthesis.Proven, firstPlan)
	}

	waitByClass := map[string]float64{}
	submittedByClass := map[string]int64{}
	shedByClass := map[string]int64{}
	for c := 0; c < admission.NumClasses; c++ {
		name := admission.Class(c).String()
		waitByClass[name] = queueStats.WaitSecondsByClass[c]
		submittedByClass[name] = queueStats.Submitted[c]
		shedByClass[name] = queueStats.Shed[c]
	}
	report := map[string]any{
		"benchmark":               "admission-tier",
		"batchSpecs":              batchN,
		"batchDistinctKeys":       batchKeys,
		"batchSolves":             batchSolves,
		"sequentialSeconds":       seqElapsed.Seconds(),
		"batchSeconds":            batchElapsed.Seconds(),
		"batchDedupSpeedup":       speedup,
		"queueWaitSecondsByClass": waitByClass,
		"queueSubmittedByClass":   submittedByClass,
		"queueShedByClass":        shedByClass,
		"timeToFirstPlanSeconds":  firstPlan.Seconds(),
		"timeToProofSeconds":      proof.Seconds(),
		"streamFirstPlanSpeedup":  proof.Seconds() / firstPlan.Seconds(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
