package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/spec"
)

// stream16 is a 16-pin unfixed case hard enough that the solver installs
// a degraded incumbent well before the optimality proof (roughly a
// second of search), but easy enough that the proof lands — the spot the
// streaming contract needs: frames first, proof after.
func stream16(name string) *spec.Spec {
	return &spec.Spec{
		Name:       name,
		SwitchPins: 16,
		Modules:    []string{"a", "b", "c", "o1", "o2", "o3", "o4"},
		Flows: []spec.Flow{
			{From: "a", To: "o1"}, {From: "b", To: "o2"},
			{From: "c", To: "o3"}, {From: "a", To: "o4"},
		},
		Binding: spec.Unfixed,
	}
}

// TestDoStreamDeliversDegradedIncumbentBeforeProof is the streaming
// acceptance check: a saturated 16-pin solve must hand the watcher at
// least one degraded plan (Gap > 0) before the proven one arrives as the
// call's return value.
func TestDoStreamDeliversDegradedIncumbentBeforeProof(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	var frames []*Response
	res, err := e.DoStream(context.Background(), stream16("stream"), switchsynth.Options{TimeLimit: 2 * time.Minute},
		func(r *Response, final bool) error {
			if final {
				t.Error("DoStream emitted final=true; the proven plan is the return value")
			}
			frames = append(frames, r)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Synthesis.Proven {
		t.Fatal("solve did not prove optimality; raise the time limit")
	}
	if len(frames) == 0 {
		t.Fatal("no degraded incumbents streamed before the proof")
	}
	for i, f := range frames {
		syn := f.Synthesis
		if !syn.Degraded || syn.Proven {
			t.Errorf("frame %d: Degraded=%v Proven=%v, want degraded snapshot", i, syn.Degraded, syn.Proven)
		}
		if syn.Gap <= 0 {
			t.Errorf("frame %d: Gap = %v, want > 0", i, syn.Gap)
		}
		if syn.Objective < res.Synthesis.Objective {
			t.Errorf("frame %d: objective %v beats the proven optimum %v", i, syn.Objective, res.Synthesis.Objective)
		}
		if err := switchsynth.Verify(syn.Result); err != nil {
			t.Errorf("frame %d failed verification: %v", i, err)
		}
	}
}

// TestDoStreamCacheHitHasNoFrames: a spec whose plan is already cached
// resolves through the cache tier like any Do — nothing to stream.
func TestDoStreamCacheHitHasNoFrames(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	if _, err := e.Do(context.Background(), serviceSpec("warm"), switchsynth.Options{}); err != nil {
		t.Fatal(err)
	}
	frames := 0
	res, err := e.DoStream(context.Background(), serviceSpec("warm"), switchsynth.Options{},
		func(*Response, bool) error { frames++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("second DoStream of the same spec missed the cache")
	}
	if frames != 0 {
		t.Errorf("cache hit streamed %d frames, want 0", frames)
	}
}

// TestWatchKeyAttachesToInFlightSolve: a watcher holding only the
// canonical key attaches to someone else's running solve, receives its
// incumbents, and gets the proven plan when it lands.
func TestWatchKeyAttachesToInFlightSolve(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	sp := stream16("watch")
	key, err := JobKey(sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		resp *Response
		err  error
	}
	doCh := make(chan outcome, 1)
	go func() {
		resp, err := e.Do(context.Background(), sp, switchsynth.Options{TimeLimit: 2 * time.Minute})
		doCh <- outcome{resp, err}
	}()

	frames := 0
	var watched *Response
	for {
		resp, err := e.WatchKey(context.Background(), key, func(*Response, bool) error { frames++; return nil })
		if errors.Is(err, ErrUnknownKey) {
			time.Sleep(time.Millisecond) // the solve has not been picked up yet
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		watched = resp
		break
	}
	done := <-doCh
	if done.err != nil {
		t.Fatal(done.err)
	}
	if !watched.Synthesis.Proven {
		t.Error("watcher's final plan is not proven")
	}
	if watched.Synthesis.Objective != done.resp.Synthesis.Objective {
		t.Errorf("watcher objective %v != submitter objective %v",
			watched.Synthesis.Objective, done.resp.Synthesis.Objective)
	}
	if frames == 0 {
		t.Error("watcher attached mid-solve but saw no incumbent frames")
	}
}

// TestDoStreamCancelMidSolveKeepsFeedAliveForWatchers: a ?wait=proof
// client that disconnects mid-solve must not finish the live feed out
// from under the worker — the solve continues on the engine's base
// context for other waiters, and a WatchKey watcher attached to the same
// feed still receives later incumbents and the proven plan, never a
// spurious ErrUnknownKey.
func TestDoStreamCancelMidSolveKeepsFeedAliveForWatchers(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	sp := stream16("cancelkeep")
	key, err := JobKey(sp, switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamFrame := make(chan struct{}, 1)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		_, _ = e.DoStream(ctx, sp, switchsynth.Options{TimeLimit: 2 * time.Minute},
			func(*Response, bool) error {
				select {
				case streamFrame <- struct{}{}:
				default:
				}
				return nil
			})
	}()
	select {
	case <-streamFrame:
	case <-time.After(2 * time.Minute):
		t.Fatal("no incumbent frame arrived; the solve never started publishing")
	}

	// A watcher attaches to the live feed; the already-published
	// incumbent reaches it immediately, proving it is attached before
	// the streaming client goes away.
	watchFrame := make(chan struct{}, 1)
	type outcome struct {
		resp *Response
		err  error
	}
	watchDone := make(chan outcome, 1)
	go func() {
		resp, werr := e.WatchKey(context.Background(), key, func(*Response, bool) error {
			select {
			case watchFrame <- struct{}{}:
			default:
			}
			return nil
		})
		watchDone <- outcome{resp, werr}
	}()
	select {
	case <-watchFrame:
	case <-time.After(2 * time.Minute):
		t.Fatal("watcher saw no frame; it never attached to the live feed")
	}

	// The streaming client disconnects mid-solve. Its deferred feed
	// release runs now; it must leave the worker's feed alone.
	cancel()
	<-streamDone

	out := <-watchDone
	if out.err != nil {
		t.Fatalf("watcher of a still-running solve failed: %v", out.err)
	}
	if !out.resp.Synthesis.Proven {
		t.Error("watcher's final plan is not proven")
	}
}

// TestWatchKeyUnknownKey: no cached plan, no in-flight solve — the typed
// miss, mapped to 404 by HTTP.
func TestWatchKeyUnknownKey(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	_, err := e.WatchKey(context.Background(), "no-such-key", func(*Response, bool) error { return nil })
	if !errors.Is(err, ErrUnknownKey) {
		t.Errorf("WatchKey error = %v, want ErrUnknownKey", err)
	}
}

// TestHTTPWaitProofStreamsAndMatchesCold drives POST /synthesize
// ?wait=proof end to end: an ndjson stream whose first frame is a
// degraded incumbent with a gap, whose seq numbers increase, whose last
// frame carries final=true with the proof — and whose final plan is
// byte-identical to what a plain POST /synthesize returns for the same
// spec.
func TestHTTPWaitProofStreamsAndMatchesCold(t *testing.T) {
	srv, _ := newTestServer(t)
	body, err := json.Marshal(SynthesizeRequest{
		Spec:    stream16("ws"),
		Options: RequestOptions{TimeLimitMS: (2 * time.Minute).Milliseconds()},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/synthesize?wait=proof", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	var framesList []SynthesizeResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var f SynthesizeResponse
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("frame %d is not a SynthesizeResponse: %v: %.200s", len(framesList), err, sc.Text())
		}
		framesList = append(framesList, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(framesList) < 2 {
		t.Fatalf("stream delivered %d frames, want a degraded incumbent before the proof", len(framesList))
	}
	first, last := framesList[0], framesList[len(framesList)-1]
	if !first.Degraded || first.Proven || first.Final {
		t.Errorf("first frame: degraded=%v proven=%v final=%v, want a non-final degraded plan",
			first.Degraded, first.Proven, first.Final)
	}
	if first.Gap <= 0 {
		t.Errorf("first frame gap = %v, want > 0", first.Gap)
	}
	if !last.Final || !last.Proven {
		t.Errorf("last frame: final=%v proven=%v, want the proof", last.Final, last.Proven)
	}
	for i := 1; i < len(framesList); i++ {
		if framesList[i].Seq <= framesList[i-1].Seq {
			t.Errorf("frame %d: seq %d does not increase over %d", i, framesList[i].Seq, framesList[i-1].Seq)
		}
		if framesList[i].Final && i != len(framesList)-1 {
			t.Errorf("frame %d flagged final before the stream ended", i)
		}
	}

	cold, raw := postJSON(t, srv.URL+"/synthesize", string(body))
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("plain POST status %d: %.300s", cold.StatusCode, raw)
	}
	var coldResp SynthesizeResponse
	if err := json.Unmarshal(raw, &coldResp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(last.Plan, coldResp.Plan) {
		t.Error("final streamed plan is not byte-identical to POST /synthesize")
	}
}

// TestHTTPStreamKeyEndpoint: GET /synthesize/stream/{key} for a cached
// plan is a single final frame; an unknown key is a 404 envelope; an
// empty key a 400.
func TestHTTPStreamKeyEndpoint(t *testing.T) {
	srv, e := newTestServer(t)
	resp, err := e.Do(context.Background(), serviceSpec("streamkey"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}

	sresp, err := http.Get(srv.URL + "/synthesize/stream/" + resp.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream of cached key: status %d, want 200", sresp.StatusCode)
	}
	var lines []SynthesizeResponse
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var f SynthesizeResponse
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame: %v: %.200s", err, sc.Text())
		}
		lines = append(lines, f)
	}
	if len(lines) != 1 || !lines[0].Final || !lines[0].Proven || !lines[0].CacheHit {
		t.Errorf("cached-key stream = %d frames (first: final=%v proven=%v cacheHit=%v), want one final cached frame",
			len(lines), lines[0].Final, lines[0].Proven, lines[0].CacheHit)
	}
	if lines[0].Key != resp.Key {
		t.Errorf("frame key %q, want %q", lines[0].Key, resp.Key)
	}

	nresp, err := http.Get(srv.URL + "/synthesize/stream/no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: status %d, want 404", nresp.StatusCode)
	}
	var env errorResponse
	if err := json.NewDecoder(nresp.Body).Decode(&env); err != nil || env.Kind != "not-found" {
		t.Errorf("404 envelope = %+v (err %v), want kind not-found", env, err)
	}

	eresp, err := http.Get(srv.URL + "/synthesize/stream/")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty key: status %d, want 400", eresp.StatusCode)
	}
}

// TestStreamTimeToFirstPlanBench measures, for ci.sh's BENCH_admission
// report, how much sooner a streaming watcher holds a usable plan than a
// blocking caller holds the proof. Skipped unless BENCH_ADMISSION_OUT
// demand pulls it in through the admission bench test (it is cheap
// enough to always run; the numbers are logged for humans here).
func TestStreamTimeToFirstPlanBench(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive benchmark companion")
	}
	e := newTestEngine(t, Config{Workers: 1})
	start := time.Now()
	var firstPlan time.Duration
	res, err := e.DoStream(context.Background(), stream16("ttfp"), switchsynth.Options{TimeLimit: 2 * time.Minute},
		func(*Response, bool) error {
			if firstPlan == 0 {
				firstPlan = time.Since(start)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	proof := time.Since(start)
	if firstPlan == 0 {
		t.Fatal("no streamed frame before the proof")
	}
	if !res.Synthesis.Proven {
		t.Fatal("solve did not prove")
	}
	if firstPlan >= proof {
		t.Errorf("first plan at %s, proof at %s: streaming bought nothing", firstPlan, proof)
	}
	t.Logf("time-to-first-plan %s vs time-to-proof %s (%.1fx earlier)",
		firstPlan, proof, float64(proof)/float64(firstPlan))
}
