// Streaming refinement: per-key anytime incumbent feeds.
//
// The optimizer's branch-and-bound is an anytime algorithm — it installs
// a feasible plan early and keeps tightening it until the optimality
// proof lands. The feed layer turns that into a service primitive: every
// running solve publishes each improving incumbent on its canonical
// key's feed, and watchers (Engine.DoStream, Engine.WatchKey, and the
// ?wait=proof / GET /synthesize/stream/{key} HTTP endpoints on top of
// them) receive the degraded snapshots as they land, ahead of the final
// proven plan.
//
// A feed is strictly improving: out-of-order publishes from parallel
// solver workers are dropped unless they beat the best seen, so every
// watcher observes a monotonically decreasing objective. Feeds are
// created by the worker that runs the solve (and by DoStream, which must
// subscribe before its request races the solve) and removed from the
// group when the solve completes; watchers holding the pointer still
// read the terminal state from it. Openers are refcounted: the worker
// that adopted a feed is its sole authoritative finisher, and a streamer
// that gives up early only finishes a feed no worker (queued or running)
// will ever complete.
package service

import (
	"context"
	"errors"
	"sync"

	"switchsynth"
	"switchsynth/internal/spec"
)

// ErrUnknownKey is returned by WatchKey when the key has no cached plan
// and no in-flight solve to attach to. Degraded (unproven) results are
// never cached, so a watcher arriving after such a solve finished sees
// this too. HTTP maps it to 404.
var ErrUnknownKey = errors.New("service: no cached plan or in-flight solve for this key")

// feed is one canonical key's incumbent stream. All fields are guarded
// by mu; updated is closed (and, while the feed is live, replaced) on
// every state change, so watchers can block on it without polling.
type feed struct {
	mu      sync.Mutex
	seq     int64        // bumped per accepted incumbent
	best    *spec.Result // lowest-objective incumbent published so far
	done    bool         // terminal state reached; res/err are set
	res     *spec.Result
	err     error
	updated chan struct{}
}

// feedState is an atomic snapshot of a feed, taken under its lock so a
// watcher can never observe a seq without the incumbent that produced it
// (the missed-wakeup hazard of reading fields separately).
type feedState struct {
	seq     int64
	best    *spec.Result
	done    bool
	res     *spec.Result
	err     error
	updated chan struct{}
}

func (f *feed) state() feedState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return feedState{seq: f.seq, best: f.best, done: f.done, res: f.res, err: f.err, updated: f.updated}
}

// publish offers an incumbent to the feed. Parallel solver workers may
// call this concurrently and out of objective order; only strict
// improvements over the best seen are kept.
func (f *feed) publish(r *spec.Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done || (f.best != nil && r.Objective >= f.best.Objective) {
		return
	}
	f.best = r
	f.seq++
	close(f.updated)
	f.updated = make(chan struct{})
}

// finish moves the feed to its terminal state. The first finisher wins;
// the updated channel is closed for good (watchers check done before
// blocking on it).
func (f *feed) finish(res *spec.Result, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.done = true
	f.res, f.err = res, err
	close(f.updated)
}

// feedGroup indexes the live feeds by canonical job key. Every opener —
// the worker that runs the solve and each DoStream watcher — holds one
// ref on the entry, so a watcher that gives up (client cancel, early
// return) cannot finish a live feed out from under the others: only the
// last releaser of a feed no worker completed may declare it an orphan.
type feedGroup struct {
	mu sync.Mutex
	m  map[string]*feedEntry
}

// feedEntry pairs a live feed with its open refcount (guarded by the
// group's mu, not the feed's).
type feedEntry struct {
	f    *feed
	refs int
}

func newFeedGroup() *feedGroup {
	return &feedGroup{m: make(map[string]*feedEntry)}
}

// open returns key's live feed, creating it if absent, and takes one
// ref. Both the worker that runs the solve and DoStream watchers land on
// the same feed; each must pair this with exactly one complete or
// release.
func (g *feedGroup) open(key string) *feed {
	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.m[key]
	if e == nil {
		e = &feedEntry{f: &feed{updated: make(chan struct{})}}
		g.m[key] = e
	}
	e.refs++
	return e.f
}

// watch returns key's live feed without creating one and without taking
// a ref: a WatchKey caller can only attach to a solve something else
// started, and reads the terminal state from the pointer it holds.
func (g *feedGroup) watch(key string) (*feed, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.m[key]
	if !ok {
		return nil, false
	}
	return e.f, true
}

// complete finishes f with the solve outcome and unlinks it from the
// group. Only the worker that ran the solve calls this; it is
// authoritative, so the feed terminates regardless of refs still held by
// DoStream watchers (their later release finds the key unlinked and is a
// no-op). Watchers holding the pointer read the terminal state from it;
// later requests for the key get a fresh feed.
func (g *feedGroup) complete(key string, f *feed, res *spec.Result, err error) {
	g.mu.Lock()
	if e := g.m[key]; e != nil && e.f == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	f.finish(res, err)
}

// release returns one open ref. A feed whose last ref drops while it is
// still linked is an orphan — DoStream opened it but no worker ever
// adopted and completed it (the request was served from a cache tier,
// shed, or failed before enqueueing) — so it is unlinked and finished
// with ErrUnknownKey to unblock any watcher that attached in the
// meantime. Two things keep a feed alive past the release: another
// opener's ref (a worker mid-solve, another streamer), or keepAlive(key)
// reporting true — DoStream passes the flight group's in-flight check,
// so a solve still sitting in the admission queue (whose worker has not
// opened the feed yet, but will) is not 404ed out from under concurrent
// WatchKey watchers by a ?wait=proof client that cancelled. A feed left
// linked at zero refs this way is adopted by that worker when it runs,
// or reaped by abandon if the flight fails before reaching one.
func (g *feedGroup) release(key string, f *feed, keepAlive func(string) bool) {
	g.mu.Lock()
	e := g.m[key]
	if e == nil || e.f != f {
		// Already unlinked (the worker completed it) or superseded by a
		// fresh feed for the key; nothing to account.
		g.mu.Unlock()
		return
	}
	e.refs--
	orphan := e.refs == 0 && (keepAlive == nil || !keepAlive(key))
	if orphan {
		delete(g.m, key)
	}
	g.mu.Unlock()
	if orphan {
		f.finish(nil, ErrUnknownKey)
	}
}

// abandon reaps key's feed when no opener holds a ref: the flight that
// would have adopted it failed before reaching a worker (enqueue
// rejected by shed, drain, or close). A feed with live refs is left to
// its holders' own release/complete.
func (g *feedGroup) abandon(key string) {
	g.mu.Lock()
	e := g.m[key]
	orphan := e != nil && e.refs == 0
	if orphan {
		delete(g.m, key)
	}
	g.mu.Unlock()
	if orphan {
		e.f.finish(nil, ErrUnknownKey)
	}
}

// DoStream is Do with streaming refinement: it submits sp like Do, but
// while the solve runs it delivers every improving anytime incumbent to
// emit as a degraded plan (Proven false, Gap > 0), adapted onto sp's own
// flow indexing like any cached result. emit's final parameter is always
// false — the proven plan is DoStream's return value, byte-identical to
// what a plain Do of the same spec returns. A request served from a
// cache tier or coalesced onto a nearly finished solve may see no
// intermediate frames at all. If emit returns an error (the client went
// away), delivery stops; the solve itself continues for other waiters
// and the cache.
func (e *Engine) DoStream(ctx context.Context, sp *spec.Spec, opts switchsynth.Options, emit func(resp *Response, final bool) error) (*Response, error) {
	e.metrics.streamWatches.Add(1)
	key, kerr := canonicalJobKey(sp, opts)
	if kerr != nil {
		// Invalid spec: Do re-derives the key, fails identically, and
		// classifies the failure. Nothing to stream.
		return e.Do(ctx, sp, opts)
	}
	// Subscribe before submitting so no early incumbent slips between
	// the solve starting and the watch attaching. The release consults
	// the flight group: it only orphans the feed when no worker holds it
	// AND no solve for the key is queued or running — this streamer
	// going away (or its client cancelling mid-solve) must never finish
	// the live feed other watchers are attached to.
	f := e.feeds.open(key)
	defer e.feeds.release(key, f, e.flights.inFlight)

	type outcome struct {
		resp *Response
		err  error
	}
	doneCh := make(chan outcome, 1)
	go func() {
		resp, err := e.Do(ctx, sp, opts)
		doneCh <- outcome{resp, err}
	}()

	var lastSeq int64
	emitDead := false
	for {
		st := f.state()
		if !emitDead && st.seq > lastSeq && st.best != nil {
			lastSeq = st.seq
			// Adapt the canonical-presentation incumbent onto the
			// requester's spec exactly like a cache hit. A frame that
			// fails to assemble is skipped, not fatal: the final plan
			// still arrives through Do's own assemble.
			if resp, ferr := e.assemble(&Response{Key: key, SolveTime: st.best.Runtime}, st.best, sp, opts); ferr == nil {
				if err := emit(resp, false); err != nil {
					emitDead = true
				}
			}
			continue // more frames may already have landed
		}
		if st.done {
			// No further frames will be published; just wait for Do.
			out := <-doneCh
			return out.resp, out.err
		}
		select {
		case out := <-doneCh:
			return out.resp, out.err
		case <-st.updated:
		case <-ctx.Done():
			out := <-doneCh // Do respects ctx and returns promptly
			return out.resp, out.err
		}
	}
}

// WatchKey attaches to key's solve without submitting a spec: frames and
// the final plan are presented on the solve's canonical spec (the
// watcher supplied none of its own). A key whose plan is already cached
// (memory or disk tier) returns it immediately with no frames; a key
// with no cached plan and no in-flight solve — including one whose solve
// just finished degraded, since degraded plans are never cached — fails
// with ErrUnknownKey.
func (e *Engine) WatchKey(ctx context.Context, key string, emit func(resp *Response, final bool) error) (*Response, error) {
	e.metrics.streamWatches.Add(1)
	serve := func(shared *spec.Result, resp *Response) (*Response, error) {
		return e.assemble(resp, shared, shared.Spec, switchsynth.Options{Engine: shared.Engine})
	}
	fromTiers := func() (*spec.Result, *Response, bool) {
		if e.cache.enabled() {
			if res, ok := e.cache.get(key); ok {
				return res, &Response{Key: key, CacheHit: true, SolveTime: res.Runtime}, true
			}
		}
		if e.store != nil {
			if res, _, ok := e.loadFromStore(key); ok {
				return res, &Response{Key: key, CacheHit: true, DiskHit: true, SolveTime: res.Runtime}, true
			}
		}
		return nil, nil, false
	}
	if res, resp, ok := fromTiers(); ok {
		return serve(res, resp)
	}
	f, ok := e.feeds.watch(key)
	if !ok {
		// A solve that completed between the tier lookup above and this
		// watch has already cached its plan (runJob caches before the
		// feed unlinks), so a miss here is not yet a 404: re-check the
		// tiers once before declaring the key unknown.
		if res, resp, ok := fromTiers(); ok {
			return serve(res, resp)
		}
		return nil, ErrUnknownKey
	}
	var lastSeq int64
	emitDead := false
	for {
		st := f.state()
		if !emitDead && !st.done && st.seq > lastSeq && st.best != nil {
			lastSeq = st.seq
			if resp, ferr := e.assemble(&Response{Key: key, SolveTime: st.best.Runtime}, st.best, st.best.Spec, switchsynth.Options{Engine: st.best.Engine}); ferr == nil {
				if err := emit(resp, false); err != nil {
					emitDead = true
				}
			}
			continue
		}
		if st.done {
			if st.err != nil {
				return nil, st.err
			}
			return serve(st.res, &Response{Key: key, Coalesced: true, SolveTime: st.res.Runtime})
		}
		select {
		case <-st.updated:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
