// Streaming refinement: per-key anytime incumbent feeds.
//
// The optimizer's branch-and-bound is an anytime algorithm — it installs
// a feasible plan early and keeps tightening it until the optimality
// proof lands. The feed layer turns that into a service primitive: every
// running solve publishes each improving incumbent on its canonical
// key's feed, and watchers (Engine.DoStream, Engine.WatchKey, and the
// ?wait=proof / GET /synthesize/stream/{key} HTTP endpoints on top of
// them) receive the degraded snapshots as they land, ahead of the final
// proven plan.
//
// A feed is strictly improving: out-of-order publishes from parallel
// solver workers are dropped unless they beat the best seen, so every
// watcher observes a monotonically decreasing objective. Feeds are
// created by the worker that runs the solve (and by DoStream, which must
// subscribe before its request races the solve) and removed from the
// group when the solve completes; watchers holding the pointer still
// read the terminal state from it.
package service

import (
	"context"
	"errors"
	"sync"

	"switchsynth"
	"switchsynth/internal/spec"
)

// ErrUnknownKey is returned by WatchKey when the key has no cached plan
// and no in-flight solve to attach to. Degraded (unproven) results are
// never cached, so a watcher arriving after such a solve finished sees
// this too. HTTP maps it to 404.
var ErrUnknownKey = errors.New("service: no cached plan or in-flight solve for this key")

// feed is one canonical key's incumbent stream. All fields are guarded
// by mu; updated is closed (and, while the feed is live, replaced) on
// every state change, so watchers can block on it without polling.
type feed struct {
	mu      sync.Mutex
	seq     int64        // bumped per accepted incumbent
	best    *spec.Result // lowest-objective incumbent published so far
	done    bool         // terminal state reached; res/err are set
	res     *spec.Result
	err     error
	updated chan struct{}
}

// feedState is an atomic snapshot of a feed, taken under its lock so a
// watcher can never observe a seq without the incumbent that produced it
// (the missed-wakeup hazard of reading fields separately).
type feedState struct {
	seq     int64
	best    *spec.Result
	done    bool
	res     *spec.Result
	err     error
	updated chan struct{}
}

func (f *feed) state() feedState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return feedState{seq: f.seq, best: f.best, done: f.done, res: f.res, err: f.err, updated: f.updated}
}

// publish offers an incumbent to the feed. Parallel solver workers may
// call this concurrently and out of objective order; only strict
// improvements over the best seen are kept.
func (f *feed) publish(r *spec.Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done || (f.best != nil && r.Objective >= f.best.Objective) {
		return
	}
	f.best = r
	f.seq++
	close(f.updated)
	f.updated = make(chan struct{})
}

// finish moves the feed to its terminal state. The first finisher wins;
// the updated channel is closed for good (watchers check done before
// blocking on it).
func (f *feed) finish(res *spec.Result, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.done = true
	f.res, f.err = res, err
	close(f.updated)
}

// feedGroup indexes the live feeds by canonical job key.
type feedGroup struct {
	mu sync.Mutex
	m  map[string]*feed
}

func newFeedGroup() *feedGroup {
	return &feedGroup{m: make(map[string]*feed)}
}

// open returns key's live feed, creating it if absent. Both the worker
// that runs the solve and DoStream watchers land on the same feed.
func (g *feedGroup) open(key string) *feed {
	g.mu.Lock()
	defer g.mu.Unlock()
	f := g.m[key]
	if f == nil {
		f = &feed{updated: make(chan struct{})}
		g.m[key] = f
	}
	return f
}

// watch returns key's live feed without creating one: a WatchKey caller
// can only attach to a solve something else started.
func (g *feedGroup) watch(key string) (*feed, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f, ok := g.m[key]
	return f, ok
}

// complete finishes f with the solve outcome and unlinks it from the
// group (watchers holding the pointer read the terminal state from it;
// later requests for the key get a fresh feed).
func (g *feedGroup) complete(key string, f *feed, res *spec.Result, err error) {
	g.mu.Lock()
	if g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	f.finish(res, err)
}

// release drops a feed that DoStream opened but no worker ever ran — the
// request was served from a cache tier, shed, or failed before
// enqueueing. Unlinking only if the group still maps key to f keeps a
// concurrently running worker's feed (same pointer or a successor)
// untouched; finishing with ErrUnknownKey unblocks any watcher that
// attached to the orphan in the meantime.
func (g *feedGroup) release(key string, f *feed) {
	g.mu.Lock()
	owner := g.m[key] == f
	if owner {
		delete(g.m, key)
	}
	g.mu.Unlock()
	if owner {
		f.finish(nil, ErrUnknownKey)
	}
}

// DoStream is Do with streaming refinement: it submits sp like Do, but
// while the solve runs it delivers every improving anytime incumbent to
// emit as a degraded plan (Proven false, Gap > 0), adapted onto sp's own
// flow indexing like any cached result. emit's final parameter is always
// false — the proven plan is DoStream's return value, byte-identical to
// what a plain Do of the same spec returns. A request served from a
// cache tier or coalesced onto a nearly finished solve may see no
// intermediate frames at all. If emit returns an error (the client went
// away), delivery stops; the solve itself continues for other waiters
// and the cache.
func (e *Engine) DoStream(ctx context.Context, sp *spec.Spec, opts switchsynth.Options, emit func(resp *Response, final bool) error) (*Response, error) {
	e.metrics.streamWatches.Add(1)
	key, kerr := canonicalJobKey(sp, opts)
	if kerr != nil {
		// Invalid spec: Do re-derives the key, fails identically, and
		// classifies the failure. Nothing to stream.
		return e.Do(ctx, sp, opts)
	}
	// Subscribe before submitting so no early incumbent slips between
	// the solve starting and the watch attaching.
	f := e.feeds.open(key)
	defer e.feeds.release(key, f)

	type outcome struct {
		resp *Response
		err  error
	}
	doneCh := make(chan outcome, 1)
	go func() {
		resp, err := e.Do(ctx, sp, opts)
		doneCh <- outcome{resp, err}
	}()

	var lastSeq int64
	emitDead := false
	for {
		st := f.state()
		if !emitDead && st.seq > lastSeq && st.best != nil {
			lastSeq = st.seq
			// Adapt the canonical-presentation incumbent onto the
			// requester's spec exactly like a cache hit. A frame that
			// fails to assemble is skipped, not fatal: the final plan
			// still arrives through Do's own assemble.
			if resp, ferr := e.assemble(&Response{Key: key, SolveTime: st.best.Runtime}, st.best, sp, opts); ferr == nil {
				if err := emit(resp, false); err != nil {
					emitDead = true
				}
			}
			continue // more frames may already have landed
		}
		if st.done {
			// No further frames will be published; just wait for Do.
			out := <-doneCh
			return out.resp, out.err
		}
		select {
		case out := <-doneCh:
			return out.resp, out.err
		case <-st.updated:
		case <-ctx.Done():
			out := <-doneCh // Do respects ctx and returns promptly
			return out.resp, out.err
		}
	}
}

// WatchKey attaches to key's solve without submitting a spec: frames and
// the final plan are presented on the solve's canonical spec (the
// watcher supplied none of its own). A key whose plan is already cached
// (memory or disk tier) returns it immediately with no frames; a key
// with no cached plan and no in-flight solve — including one whose solve
// just finished degraded, since degraded plans are never cached — fails
// with ErrUnknownKey.
func (e *Engine) WatchKey(ctx context.Context, key string, emit func(resp *Response, final bool) error) (*Response, error) {
	e.metrics.streamWatches.Add(1)
	serve := func(shared *spec.Result, resp *Response) (*Response, error) {
		return e.assemble(resp, shared, shared.Spec, switchsynth.Options{Engine: shared.Engine})
	}
	if e.cache.enabled() {
		if res, ok := e.cache.get(key); ok {
			return serve(res, &Response{Key: key, CacheHit: true, SolveTime: res.Runtime})
		}
	}
	if e.store != nil {
		if res, ok := e.loadFromStore(key); ok {
			return serve(res, &Response{Key: key, CacheHit: true, DiskHit: true, SolveTime: res.Runtime})
		}
	}
	f, ok := e.feeds.watch(key)
	if !ok {
		return nil, ErrUnknownKey
	}
	var lastSeq int64
	emitDead := false
	for {
		st := f.state()
		if !emitDead && !st.done && st.seq > lastSeq && st.best != nil {
			lastSeq = st.seq
			if resp, ferr := e.assemble(&Response{Key: key, SolveTime: st.best.Runtime}, st.best, st.best.Spec, switchsynth.Options{Engine: st.best.Engine}); ferr == nil {
				if err := emit(resp, false); err != nil {
					emitDead = true
				}
			}
			continue
		}
		if st.done {
			if st.err != nil {
				return nil, st.err
			}
			return serve(st.res, &Response{Key: key, Coalesced: true, SolveTime: st.res.Runtime})
		}
		select {
		case <-st.updated:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
