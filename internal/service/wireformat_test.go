// The engine's plan wire format and the verified-bytes digest cache:
// binary framing is the default and round-trips through every tier,
// JSON mode still works end to end, GET /plans/{key} negotiates the
// response encoding per client, and the digest cache only ever skips
// re-verification for bytes this process has already fully verified.
package service

import (
	"context"
	"net/http"
	"net/url"
	"testing"

	"switchsynth"
	"switchsynth/internal/planio"
)

func TestPlanBytesAreBinaryByDefault(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	resp, err := e.Do(context.Background(), serviceSpec("wf-bin"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, ok := e.PlanBytes(resp.Key)
	if !ok {
		t.Fatal("no plan bytes after a proven solve")
	}
	if !planio.IsBinary(data) {
		t.Fatal("default wire format did not produce a binary frame")
	}
	res, err := planio.DecodeAny(data)
	if err != nil {
		t.Fatalf("binary frame does not decode: %v", err)
	}
	if err := switchsynth.Verify(res); err != nil {
		t.Fatalf("decoded binary plan fails verification: %v", err)
	}
	// The served frame is byte-identical to a fresh canonical encoding —
	// the engine encodes once and reuses the frame across tiers.
	want, err := planio.EncodeBinary(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(want) {
		t.Error("served frame differs from the canonical encoding of its own plan")
	}
}

func TestPlanBytesJSONMode(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, WireFormat: WireFormatJSON})
	resp, err := e.Do(context.Background(), serviceSpec("wf-json"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, ok := e.PlanBytes(resp.Key)
	if !ok {
		t.Fatal("no plan bytes after a proven solve")
	}
	if planio.IsBinary(data) {
		t.Fatal("WireFormat json produced a binary frame")
	}
	if _, err := planio.Decode(data); err != nil {
		t.Fatalf("JSON wire bytes do not decode: %v", err)
	}
	if snap := e.Snapshot(); snap.WireFormat != WireFormatJSON {
		t.Errorf("snapshot wireFormat = %q, want %q", snap.WireFormat, WireFormatJSON)
	}
}

func TestPlanEndpointNegotiatesFormat(t *testing.T) {
	srv, e := newTestServer(t)
	resp, err := e.Do(context.Background(), serviceSpec("wf-nego"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(accept string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/plans/"+url.PathEscape(resp.Key), nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		body := make([]byte, 0, 4096)
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		return r, body
	}

	// No Accept header: a plain client gets validated JSON, never frames.
	r, body := get("")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d, want 200", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q, want application/json", ct)
	}
	if planio.IsBinary(body) {
		t.Fatal("client without Accept received a binary frame")
	}
	jsonRes, err := planio.Decode(body)
	if err != nil {
		t.Fatalf("transcoded JSON does not decode: %v", err)
	}

	// A wildcard Accept is not an opt-in to the binary format either.
	if _, body := get("*/*"); planio.IsBinary(body) {
		t.Fatal("wildcard Accept received a binary frame")
	}

	// Naming the binary content type gets the stored frame verbatim.
	r, body = get(planio.ContentTypeBinary + ", application/json")
	if ct := r.Header.Get("Content-Type"); ct != planio.ContentTypeBinary {
		t.Errorf("binary Content-Type = %q, want %q", ct, planio.ContentTypeBinary)
	}
	if !planio.IsBinary(body) {
		t.Fatal("binary-accepting client did not receive a frame")
	}
	binRes, err := planio.DecodeAny(body)
	if err != nil {
		t.Fatalf("served frame does not decode: %v", err)
	}
	ja, err := jsonRes.Spec.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := binRes.Spec.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb || jsonRes.NumSets != binRes.NumSets || jsonRes.Length != binRes.Length {
		t.Error("JSON and binary views of the same plan disagree")
	}
}

func TestReadyzAdvertisesPlanFormats(t *testing.T) {
	srv, _ := newTestServer(t)
	r, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if got := r.Header.Get(PlanFormatsHeader); got != PlanFormatsValue {
		t.Errorf("%s = %q, want %q", PlanFormatsHeader, got, PlanFormatsValue)
	}
}

// TestDigestCacheSkipsReverifyForSeenBytesOnly is the digest-cache
// soundness test: a byte-identical re-import of already-verified bytes
// skips the redundant re-verification (counted as a hit), while unseen
// bytes — even valid ones — always take the full verification path.
func TestDigestCacheSkipsReverifyForSeenBytesOnly(t *testing.T) {
	// Private digest cache: the process-wide shared cache would leak
	// counter state between tests. The memory cache is disabled so
	// repeated imports reach the digest path instead of the
	// already-present fast exit.
	e := newTestEngine(t, Config{Workers: 2, DigestCacheSize: 64, CacheSize: -1})

	donor := newTestEngine(t, Config{Workers: 2, DigestCacheSize: 64})
	dresp, err := donor.Do(context.Background(), serviceSpec("wf-digest"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wire, ok := donor.PlanBytes(dresp.Key)
	if !ok {
		t.Fatal("donor has no plan bytes")
	}

	// First import: unseen bytes, full verification, digest miss + add.
	if err := e.ImportPlan(dresp.Key, wire); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.DigestCacheHits != 0 || snap.DigestCacheMisses == 0 || snap.DigestCacheAdds == 0 {
		t.Fatalf("first import digest hits/misses/adds = %d/%d/%d, want 0/>0/>0",
			snap.DigestCacheHits, snap.DigestCacheMisses, snap.DigestCacheAdds)
	}

	// Second import of the identical bytes: digest hit, verification
	// skipped, still imported correctly.
	if err := e.ImportPlan(dresp.Key, wire); err != nil {
		t.Fatal(err)
	}
	snap = e.Snapshot()
	if snap.DigestCacheHits != 1 {
		t.Errorf("re-import digest hits = %d, want 1", snap.DigestCacheHits)
	}
	if snap.PeerImported != 2 {
		t.Errorf("peerImported = %d, want 2", snap.PeerImported)
	}

	// Same bytes under the wrong key must NOT hit: the digest vouches
	// for (bytes, key) pairs, and the full path then rejects the key
	// mismatch.
	if err := e.ImportPlan("not-that-key", wire); err == nil {
		t.Fatal("import under a wrong key succeeded")
	}

	// A flipped byte is unseen bytes: digest miss, full path rejects.
	bad := append([]byte(nil), wire...)
	bad[len(bad)/2] ^= 0x01
	if err := e.ImportPlan(dresp.Key, bad); err == nil {
		t.Fatal("corrupted bytes imported")
	}
	if snap := e.Snapshot(); snap.DigestCacheHits != 1 {
		t.Errorf("corrupt/wrong-key imports moved the hit counter: %d, want still 1", snap.DigestCacheHits)
	}
	if !e.Snapshot().DigestCacheEnabled {
		t.Error("digestCacheEnabled = false with a private cache configured")
	}
}

func TestDigestCacheDisabled(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, DigestCacheSize: -1, CacheSize: -1})
	donor := newTestEngine(t, Config{Workers: 2, DigestCacheSize: -1})
	dresp, err := donor.Do(context.Background(), serviceSpec("wf-nodigest"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wire, ok := donor.PlanBytes(dresp.Key)
	if !ok {
		t.Fatal("donor has no plan bytes")
	}
	for i := 0; i < 2; i++ {
		if err := e.ImportPlan(dresp.Key, wire); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Snapshot()
	if snap.DigestCacheEnabled {
		t.Error("digestCacheEnabled = true with DigestCacheSize < 0")
	}
	if snap.DigestCacheHits != 0 || snap.DigestCacheAdds != 0 {
		t.Errorf("disabled digest cache counted hits=%d adds=%d", snap.DigestCacheHits, snap.DigestCacheAdds)
	}
	if snap.PeerImported != 2 {
		t.Errorf("peerImported = %d, want 2 (disabled cache must not break imports)", snap.PeerImported)
	}
}
