package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"switchsynth"
	"switchsynth/internal/faultinject"
	"switchsynth/internal/search"
	"switchsynth/internal/spec"
)

func TestBreakerOpensShedsAndRecovers(t *testing.T) {
	base := solveOnce(t, serviceSpec("breaker"))
	var healthy atomic.Bool
	e := newTestEngine(t, Config{
		Workers:          1,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		if healthy.Load() {
			return base, nil
		}
		return nil, &search.ErrTimeout{SpecName: sp.Name, Cause: context.DeadlineExceeded}
	}
	sp := func() *spec.Spec { return serviceSpec("breaker") }

	// Two consecutive timeouts trip the threshold-2 breaker.
	for i := 0; i < 2; i++ {
		if _, err := e.Do(context.Background(), sp(), switchsynth.Options{}); !errors.Is(err, &search.ErrTimeout{}) {
			t.Fatalf("request %d: err = %v, want timeout", i, err)
		}
	}
	_, err := e.Do(context.Background(), sp(), switchsynth.Options{})
	var over *ErrOverloaded
	if !errors.As(err, &over) {
		t.Fatalf("err = %v, want *ErrOverloaded after %d timeouts", err, 2)
	}
	if over.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", over.RetryAfter)
	}
	if e.Snapshot().JobsShed == 0 {
		t.Error("shed request not counted")
	}
	if e.Snapshot().BreakersOpen != 1 {
		t.Errorf("BreakersOpen = %d, want 1", e.Snapshot().BreakersOpen)
	}

	// After the cooldown a half-open probe is admitted; it still fails,
	// so the breaker re-opens immediately (no threshold accumulation).
	time.Sleep(60 * time.Millisecond)
	if _, err := e.Do(context.Background(), sp(), switchsynth.Options{}); !errors.Is(err, &search.ErrTimeout{}) {
		t.Fatalf("probe err = %v, want timeout", err)
	}
	if _, err := e.Do(context.Background(), sp(), switchsynth.Options{}); !errors.Is(err, &ErrOverloaded{}) {
		t.Fatalf("err after failed probe = %v, want *ErrOverloaded", err)
	}

	// A successful probe closes the breaker for good.
	healthy.Store(true)
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < 2; i++ {
		resp, err := e.Do(context.Background(), sp(), switchsynth.Options{})
		if err != nil {
			t.Fatalf("recovered request %d: %v", i, err)
		}
		if resp.Synthesis == nil {
			t.Fatalf("recovered request %d has no synthesis", i)
		}
	}
	if got := e.Snapshot().BreakersOpen; got != 0 {
		t.Errorf("BreakersOpen = %d after recovery, want 0", got)
	}
}

func TestBreakerDisabledByNegativeThreshold(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, BreakerThreshold: -1})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		return nil, &search.ErrTimeout{SpecName: sp.Name, Cause: context.DeadlineExceeded}
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Do(context.Background(), serviceSpec("nobreaker"), switchsynth.Options{}); !errors.Is(err, &search.ErrTimeout{}) {
			t.Fatalf("request %d: err = %v, want timeout (breaker disabled)", i, err)
		}
	}
	if shed := e.Snapshot().JobsShed; shed != 0 {
		t.Errorf("JobsShed = %d with breaker disabled", shed)
	}
}

func TestNegativeCacheReplaysInfeasibilityProofs(t *testing.T) {
	var solves atomic.Int64
	e := newTestEngine(t, Config{Workers: 1})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		solves.Add(1)
		return nil, &spec.ErrNoSolution{SpecName: sp.Name, Policy: sp.Binding}
	}
	var nosol *spec.ErrNoSolution
	for i := 0; i < 3; i++ {
		if _, err := e.Do(context.Background(), serviceSpec("infeasible"), switchsynth.Options{}); !errors.As(err, &nosol) {
			t.Fatalf("request %d: err = %v, want ErrNoSolution", i, err)
		}
	}
	if got := solves.Load(); got != 1 {
		t.Errorf("solves = %d, want 1 (proof should replay from the negative cache)", got)
	}
	snap := e.Snapshot()
	if snap.NegCacheHits != 2 {
		t.Errorf("NegCacheHits = %d, want 2", snap.NegCacheHits)
	}
	if snap.JobsInfeasible != 3 {
		t.Errorf("JobsInfeasible = %d, want 3", snap.JobsInfeasible)
	}
}

func TestCacheCorruptionHeals(t *testing.T) {
	base := solveOnce(t, serviceSpec("heal"))
	var solves atomic.Int64
	inj := faultinject.New(1).
		Set(faultinject.CacheCorrupt, faultinject.Rule{Probability: 1})
	e := newTestEngine(t, Config{Workers: 1, FaultInjector: inj})
	e.solve = func(ctx context.Context, sp *spec.Spec, opts switchsynth.Options) (*spec.Result, error) {
		solves.Add(1)
		return base, nil
	}

	// First request: miss, solve, corrupted entry stored — but the
	// response is assembled from the flight's pristine copy.
	first, err := e.Do(context.Background(), serviceSpec("heal"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if verr := switchsynth.Verify(first.Synthesis.Result); verr != nil {
		t.Fatalf("first plan failed verification: %v", verr)
	}

	// Second request hits the corrupted entry, heals it, re-solves, and
	// still serves a verified plan.
	second, err := e.Do(context.Background(), serviceSpec("heal"), switchsynth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if verr := switchsynth.Verify(second.Synthesis.Result); verr != nil {
		t.Fatalf("healed plan failed verification: %v", verr)
	}
	snap := e.Snapshot()
	if snap.CacheHealed == 0 {
		t.Error("corrupted entry was never healed")
	}
	if solves.Load() < 2 {
		t.Errorf("solves = %d, want >= 2 (heal re-solves)", solves.Load())
	}
}

func TestNegCacheBounded(t *testing.T) {
	c := newNegCache(2)
	for _, k := range []string{"a", "b", "c"} {
		c.put(k, &spec.ErrNoSolution{SpecName: k})
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry not evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("newest entry missing")
	}
}
